/**
 * @file
 * A producer-consumer style workload — the scenario motivating the
 * paper's synchronization-fault experiments (Section 3.3): threads
 * block on exponentially distributed waits (a consumer waiting for a
 * producer), and the runtime uses the competitive two-phase policy to
 * decide when a blocked context should give up its registers.
 *
 * The demo mixes fine-grained consumer threads (few registers, short
 * run lengths) with coarser producer threads (more registers, longer
 * run lengths) — exactly the "mix of both coarse and fine-grained
 * threads" flexibility argument of Section 2 — and compares register
 * relocation against fixed-size hardware contexts as the mean
 * synchronization latency grows.
 */

#include <cstdio>

#include "base/table.hh"
#include "multithread/workload.hh"

namespace {

using namespace rr;

/**
 * A two-class thread supply: half "producers" (20 registers, mean
 * run 128), half "consumers" (7 registers, mean run 32). Register
 * requirements alternate by thread id through a two-point
 * distribution.
 */
class TwoPointDist : public Distribution
{
  public:
    TwoPointDist(uint64_t a, uint64_t b) : a_(a), b_(b) {}

    uint64_t
    sample(Rng &rng) const override
    {
        return (rng.next() & 1) ? a_ : b_;
    }

    double
    mean() const override
    {
        return (static_cast<double>(a_) + static_cast<double>(b_)) /
               2.0;
    }

    std::string
    describe() const override
    {
        return "two-point";
    }

  private:
    uint64_t a_;
    uint64_t b_;
};

mt::MtConfig
makeConfig(mt::ArchKind arch, double mean_latency, uint64_t seed)
{
    mt::MtConfig config;
    config.workload.numThreads = 64;
    config.workload.workDist = makeConstant(20000);
    // Producers use 20 registers (context of 32 under relocation),
    // consumers 7 (context of 8): flexible packing fits ~3x more
    // consumers than the one-size-fits-all hardware contexts.
    config.workload.regsDist = std::make_shared<TwoPointDist>(20, 7);
    config.faultModel =
        std::make_shared<mt::SyncFaultModel>(48.0, mean_latency);
    config.costs = arch == mt::ArchKind::FixedHw
                       ? runtime::CostModel::paperFixed(8)
                       : runtime::CostModel::paperFlexible(8);
    config.arch = arch;
    config.numRegs = 128;
    config.unloadPolicy = mt::UnloadPolicyKind::TwoPhase;
    config.seed = seed;
    return config;
}

} // namespace

int
main()
{
    using namespace rr;

    std::printf("Producer-consumer synchronization workload\n");
    std::printf("(64 threads: producers C=20, consumers C=7; F=128, "
                "S=8,\n geometric runs, exponential waits, two-phase "
                "unloading)\n\n");

    Table table({"sync latency L", "fixed", "flexible", "speedup",
                 "resident(avg) fixed", "resident(avg) flex"});
    for (const double latency :
         {100.0, 250.0, 500.0, 1000.0, 2000.0, 4000.0}) {
        const mt::MtStats fixed =
            mt::simulate(makeConfig(mt::ArchKind::FixedHw, latency, 1));
        const mt::MtStats flex = mt::simulate(
            makeConfig(mt::ArchKind::Flexible, latency, 1));
        table.addRow({Table::num(latency, 0),
                      Table::num(fixed.efficiencyCentral),
                      Table::num(flex.efficiencyCentral),
                      Table::num(flex.efficiencyCentral /
                                     fixed.efficiencyCentral,
                                 2),
                      Table::num(fixed.avgResidentContexts, 1),
                      Table::num(flex.avgResidentContexts, 1)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Register relocation keeps more producer+consumer "
                "contexts resident,\nso longer waits are hidden "
                "behind other runnable threads. At the deepest\n"
                "latencies every fault rotates threads through the "
                "file and the fixed\nbaseline's zero-cost allocation "
                "edges ahead — the Figure 6(a) effect;\nsee "
                "bench_fig6a_lowcost for the allocator fix.\n");
    return 0;
}
