; Two threads ping-ponging through the Figure 3 yield routine.
;
; Context-relative conventions (per the paper):
;   r0 = resume PC, r1 = PSW save, r2 = NextRRM
;   r3 = loop counter, r4 = accumulator, r5 = constant 1, r6 = 0
;
; The setup stub starts at RRM 0 and initializes two 16-register
; contexts (bases 0x20 and 0x30) by switching the relocation window
; onto each in turn — no memory staging needed, just LDRRM.

.equ CTX_A, 0x20
.equ CTX_B, 0x30
.equ ITERS, 6

entry:                      ; RRM = 0 (setup window)
    li    r10, CTX_A
    ldrrm r10
    nop                     ; LDRRM delay slot
    ; --- window A: initialize thread A's registers ---
    la    r0, thread_body
    li    r2, CTX_B         ; NextRRM: yield to B
    li    r3, ITERS
    li    r4, 0
    li    r5, 1
    li    r6, 0
    li    r7, 0
    ldrrm r7                ; back to the setup window (RRM 0)
    nop
    li    r10, CTX_B
    ldrrm r10
    nop
    ; --- window B: initialize thread B's registers ---
    la    r0, thread_body
    li    r2, CTX_A         ; NextRRM: yield to A
    li    r3, ITERS
    li    r4, 0
    li    r5, 1
    li    r6, 0
    jmp   r0                ; enter thread B

yield:
    ldrrm r2                ; Figure 3: install the next mask
    mov   r1, psw           ; delay slot: still the old context
    mov   psw, r1           ; new context: restore PSW
    jmp   r0                ; resume it

thread_body:
    add   r4, r4, r3        ; accumulate: 6+5+4+3+2+1 = 21
    addi  r3, r3, -1
    jal   r0, yield         ; hand over the processor
    bne   r3, r6, thread_body
    halt                    ; first finisher stops the demo
