; Spinlock-protected shared counter across two declared threads.
;
; Demonstrates the concurrency annotations understood by
; rrlint --races (see docs/LINT.md):
;
;   .thread LABEL        declares a thread entry point
;   .lockdef NAME, A, R  declares a lock with its acquire/release
;                        procedures
;
; Both threads bracket the COUNTER increment with the declared lock,
; so the static lockset analysis proves every shared access is
; protected: `rrlint --all examples/asm/spinlock_counter.s` is clean.
; Delete one jal to lock_acquire and rrlint reports the race.

        .equ COUNTER, 0x80      ; shared word both threads bump
        .equ LOCKWORD, 0x81     ; the spinlock's own state word

        .thread worker_a
        .thread worker_b
        .lockdef counter_lock, lock_acquire, lock_release

entry:
        halt

worker_a:
        jal   r8, lock_acquire
        li    r4, COUNTER
        ld    r1, 0(r4)
        addi  r1, r1, 1
        st    r1, 0(r4)
        jal   r8, lock_release
        halt

worker_b:
        jal   r8, lock_acquire
        li    r4, COUNTER
        ld    r1, 0(r4)
        addi  r1, r1, 1
        st    r1, 0(r4)
        jal   r8, lock_release
        halt

; Lock implementation. Its raw accesses to LOCKWORD are exempt from
; race reporting: the .lockdef annotation is a trust contract that
; these two procedures implement mutual exclusion correctly.
lock_acquire:
        li    r5, LOCKWORD
        li    r6, 1
spin:
        ld    r7, 0(r5)
        beq   r7, r6, spin      ; lock word already 1: spin
        st    r6, 0(r5)         ; claim it
        jmp   r8

lock_release:
        li    r5, LOCKWORD
        li    r6, 0
        st    r6, 0(r5)
        jmp   r8
