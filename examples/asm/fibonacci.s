; fib(10) with context-relative registers; result in r3.
;   r1 = fib(i-1), r2 = fib(i), r3 = scratch/result, r4 = counter
entry:
    li   r1, 0          ; fib(0)
    li   r2, 1          ; fib(1)
    li   r4, 9          ; iterations: fib(10) after 9 steps
    li   r5, 0          ; zero
loop:
    add  r3, r1, r2     ; next = a + b
    mov  r1, r2
    mov  r2, r3
    addi r4, r4, -1
    bne  r4, r5, loop
    halt                ; r3 = fib(10) = 55
