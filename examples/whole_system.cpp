/**
 * @file
 * The whole system in one run: the two-phase slot scheduler — every
 * mechanism of the paper executing as RRISC instructions — with an
 * annotated trace of one thread surrendering its slot to a queued
 * thread.
 *
 * Watch for, in order:
 *   1. `fault 0` — a segment ends with a long-latency event;
 *   2. the Figure 3 yield (ldrrm / mov / mov / jmp) passing the
 *      processor around the slot ring;
 *   3. the poll (`ld r5, 5(r4)` + `bne`) failing BUDGET times;
 *   4. the swap: state saved to the save area, the ready queue
 *      popped, and the new thread resumed with `jmp r0` — all inside
 *      8-register contexts.
 */

#include <cstdio>
#include <string>

#include "assembler/assembler.hh"
#include "base/table.hh"
#include "kernel/twophase_kernel.hh"
#include "runtime/asm_routines.hh"

int
main()
{
    using namespace rr;

    std::printf("The complete software multithreading system, "
                "running as code\n\n");

    // Show the interesting part of the program first.
    const auto prog =
        assembler::assemble(runtime::twoPhaseSchedulerSource(6, 2));
    if (!prog.ok())
        return 1;
    std::printf("The two-phase swap path, as assembled (swap_out .. "
                "swap_in):\n");
    for (uint32_t a = prog.addressOf("swap_out");
         a < prog.addressOf("thread_done"); ++a) {
        std::printf("  %3u: %s\n", a,
                    isa::disassemble(prog.words[a - prog.base])
                        .c_str());
    }
    std::printf("\n");

    // Run a small configuration with long faults and trace around
    // the first swap.
    kernel::TwoPhaseConfig config;
    config.numThreads = 6;
    config.numSlots = 2;
    config.segmentsPerThread = 4;
    config.workUnits = 6;
    config.pollBudget = 2;
    config.latency = makeConstant(500);
    kernel::TwoPhaseKernel kernel(config);

    const uint32_t swap_out = prog.addressOf("swap_out");
    bool tracing = false;
    unsigned printed = 0;
    kernel.setTraceObserver(
        [&](const machine::TraceEntry &entry) {
            if (entry.pc == swap_out && printed == 0)
                tracing = true;
            if (tracing && printed < 26) {
                std::printf("  %5lu  rrm=0x%02x  %3u: %s\n",
                            static_cast<unsigned long>(entry.cycle),
                            entry.rrm, entry.pc,
                            entry.text.c_str());
                ++printed;
            }
        });

    std::printf("Trace of the first slot surrender (cycle / slot "
                "RRM / pc / instruction):\n");
    const kernel::TwoPhaseResult result = kernel.run();

    std::printf("\nRun summary:\n");
    Table table({"metric", "value"});
    table.addRow({"threads / slots", "6 / 2"});
    table.addRow({"halted cleanly", result.halted ? "yes" : "no"});
    table.addRow({"work units", Table::num(result.workUnits)});
    table.addRow({"faults", Table::num(result.faults)});
    table.addRow({"slot surrenders", Table::num(result.swapOuts)});
    table.addRow({"thread (re)loads", Table::num(result.dequeues)});
    table.addRow({"total cycles", Table::num(result.totalCycles)});
    table.addRow({"efficiency", Table::num(result.efficiency())});
    std::printf("%s\n", table.render().c_str());
    std::printf("Everything above — allocation-free slot reuse, "
                "Figure 3 switching,\ncompetitive polling, save/"
                "restore, queueing — executed as RRISC\ninstructions "
                "inside 8-register relocated contexts.\n");
    return 0;
}
