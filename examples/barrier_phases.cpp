/**
 * @file
 * Barrier-synchronized parallel phases on the cycle-level machine —
 * a gang of threads executes a phase of work each, raises a
 * synchronization fault at the barrier, and the fault completes only
 * when every running thread has arrived.
 *
 * Three observations, all with real Figure 3 context switches and
 * APRIL-style polling:
 *
 *  1. Multithreading hides barrier skew completely on one node: the
 *     processor fills a fast thread's wait with the other threads'
 *     phases, so skewed and uniform phase lengths cost the same.
 *  2. The per-phase overhead is one switch + poll per thread
 *     (~11 cycles), so efficiency follows 2U / (2U + 11) in phase
 *     length U — fine-grained gangs need exactly the cheap switches
 *     register relocation provides.
 *  3. The gang must be co-resident: a barrier deadlocks if a member
 *     cannot hold a context. Relocated 16-register contexts fit a
 *     4-thread gang in 64 registers where 32-register fixed contexts
 *     cannot.
 */

#include <cstdio>

#include "base/table.hh"
#include "kernel/machine_mt_kernel.hh"
#include "runtime/context_allocator.hh"

namespace {

using namespace rr;

kernel::KernelConfig
gangConfig(unsigned threads, std::shared_ptr<Distribution> units)
{
    kernel::KernelConfig config;
    config.numThreads = threads;
    config.segmentUnits = std::move(units);
    config.service = kernel::FaultService::Barrier;
    config.segmentsPerThread = 24;
    config.seed = 5;
    return config;
}

} // namespace

int
main()
{
    using namespace rr;

    std::printf("Barrier-synchronized phases on the RRISC machine\n\n");

    // 1. Skew is hidden by multithreading.
    {
        Table table({"phase length dist", "cycles", "efficiency",
                     "barriers"});
        for (const bool skewed : {false, true}) {
            const auto result = kernel::runMachineKernel(gangConfig(
                6, skewed ? makeGeometric(40.0)
                          : std::shared_ptr<Distribution>(
                                makeConstant(40))));
            table.addRow({skewed ? "geometric(40)" : "constant(40)",
                          Table::num(result.totalCycles),
                          Table::num(result.efficiencyTotal),
                          Table::num(result.barriers)});
        }
        std::printf("%s\n", table.render().c_str());
        std::printf("Skewed and uniform phases cost the same: while "
                    "early arrivals wait at the\nbarrier, the "
                    "processor runs the remaining threads' phases — "
                    "the wait is\nentirely hidden (the paper's core "
                    "claim about synchronization faults).\n\n");
    }

    // 2. Overhead amortization: efficiency vs phase grain.
    {
        Table table({"units/phase", "efficiency",
                     "model 2U/(2U+11)"});
        for (const uint64_t units : {5ull, 10ull, 20ull, 40ull,
                                     80ull, 160ull}) {
            const auto result = kernel::runMachineKernel(
                gangConfig(6, makeConstant(units)));
            const double model =
                2.0 * static_cast<double>(units) /
                (2.0 * static_cast<double>(units) + 11.0);
            table.addRow({Table::num(units),
                          Table::num(result.efficiencyTotal),
                          Table::num(model)});
        }
        std::printf("%s\n", table.render().c_str());
        std::printf("Per phase each thread pays one fault + yield + "
                    "poll (~11 cycles); with\n4-6 cycle hardware-free "
                    "switches, even 10-unit phases run at ~65%%\n"
                    "efficiency — the fine-grained regime the paper "
                    "targets.\n\n");
    }

    // 3. Gang co-residency: the packing argument.
    {
        std::printf("Gang co-residency on a 64-register file "
                    "(4-thread gang):\n");
        runtime::ContextAllocator fixed_like(64, 6, 32);
        unsigned fixed_fit = 0;
        while (fixed_like.allocate(32))
            ++fixed_fit;
        runtime::ContextAllocator relocated(64, 6, 16);
        unsigned flex_fit = 0;
        while (relocated.allocate(16))
            ++flex_fit;
        std::printf("  fixed 32-register contexts: %u of 4 gang "
                    "members fit -> the barrier\n  can never "
                    "complete without expensive unload/reload every "
                    "phase.\n",
                    fixed_fit);
        std::printf("  relocated 16-register contexts: %u of 4 fit "
                    "-> the gang runs:\n",
                    flex_fit);

        kernel::KernelConfig config =
            gangConfig(4, makeConstant(40));
        config.numRegs = 64;
        config.forcedContextSize = 16;
        const auto result = kernel::runMachineKernel(config);
        std::printf("    %lu cycles, efficiency %.3f, %lu barriers, "
                    "halted: %s\n",
                    static_cast<unsigned long>(result.totalCycles),
                    result.efficiencyTotal,
                    static_cast<unsigned long>(result.barriers),
                    result.halted ? "yes" : "no");
    }
    return 0;
}
