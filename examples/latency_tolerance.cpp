/**
 * @file
 * Latency tolerance and the saturation point: efficiency grows
 * linearly in the number of resident contexts until
 * N* = 1 + L / (R + S), then flattens at R / (R + S) — Section 3.4
 * of the paper. This example sweeps the resident-context limit on a
 * deterministic workload and prints the simulated efficiency next to
 * the closed-form model, then shows how register relocation moves a
 * register file's capacity past N* where fixed contexts cannot
 * reach it.
 */

#include <cstdio>

#include "analysis/efficiency_model.hh"
#include "base/table.hh"
#include "multithread/simulation_spec.hh"
#include "multithread/workload.hh"

int
main()
{
    using namespace rr;

    constexpr uint64_t run_length = 64;
    constexpr uint64_t latency = 400;
    constexpr double switch_cost = 6.0;

    const analysis::EfficiencyModel model(
        static_cast<double>(run_length),
        static_cast<double>(latency), switch_cost);

    std::printf("R = %lu, L = %lu, S = %.0f -> saturation at N* = "
                "%.2f contexts, E_sat = %.3f\n\n",
                static_cast<unsigned long>(run_length),
                static_cast<unsigned long>(latency), switch_cost,
                model.saturationPoint(), model.saturated());

    std::printf("Efficiency vs resident contexts (deterministic "
                "workload, C = 8):\n");
    Table table({"N", "simulated", "model", "regime"});
    for (unsigned n = 1; n <= 10; ++n) {
        mt::MtConfig config =
            mt::SimulationSpec()
                .deterministicFaults(run_length, latency)
                .threads(n)
                .registerDemand(8)
                .numRegs(256)
                .build();
        const mt::MtStats stats = mt::simulate(std::move(config));
        table.addRow({Table::num(static_cast<uint64_t>(n)),
                      Table::num(stats.efficiencyCentral),
                      Table::num(model.efficiency(n)),
                      model.inLinearRegime(n) ? "linear"
                                              : "saturated"});
    }
    std::printf("%s\n", table.render().c_str());

    // Where the capacity argument bites: F = 64 holds 2 fixed
    // contexts (N < N*), but 8 relocated size-8 contexts (N > N*).
    std::printf("Capacity of a 64-register file for C = 8 threads:\n");
    Table cap({"architecture", "resident contexts", "efficiency"});
    for (const mt::ArchKind arch :
         {mt::ArchKind::FixedHw, mt::ArchKind::Flexible}) {
        mt::MtConfig config =
            mt::SimulationSpec()
                .cacheFaults(static_cast<double>(run_length), latency)
                .arch(arch)
                .numRegs(64)
                .build();
        config.workload = mt::homogeneousWorkload(48, 20000, 8);
        const mt::MtStats stats = mt::simulate(std::move(config));
        cap.addRow({mt::archName(arch),
                    Table::num(stats.avgResidentContexts, 2),
                    Table::num(stats.efficiencyCentral)});
    }
    std::printf("%s\n", cap.render().c_str());
    std::printf("Fixed 32-register contexts strand the file below the "
                "saturation point;\nregister relocation reaches it "
                "with the same silicon (Section 3.4).\n");
    return 0;
}
