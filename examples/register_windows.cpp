/**
 * @file
 * The Section 5.3 extension in action: two active relocation masks.
 *
 * Part 1 — inter-context operations: with the high operand bit
 * selecting between two RRMs, a single instruction can combine
 * values from two different thread contexts
 * (ADD C0.R3, C0.R4, C1.R6), the compilation target the paper
 * suggests for frame-sharing thread languages like TAM.
 *
 * Part 2 — register-window emulation: bank 0 tracks the current
 * procedure's window and bank 1 the callee window, so outgoing
 * arguments are written through bank 1 and procedure call/return is
 * just a pair of mask loads.
 */

#include <cstdio>

#include "ext/multi_rrm.hh"
#include "isa/instruction.hh"
#include "machine/cpu.hh"

int
main()
{
    using namespace rr;

    machine::CpuConfig config;
    config.numRegs = 128;
    config.operandWidth = 6; // top bit selects among 2 banks
    config.rrmBanks = 2;
    config.memWords = 4096;

    // ---- Part 1: inter-context add. --------------------------------
    {
        machine::Cpu cpu(config);
        cpu.setRrmImmediate(0, 0);  // context C0 at base 0
        cpu.setRrmImmediate(64, 1); // context C1 at base 64
        cpu.regs().write(4, 10);      // C0.R4
        cpu.regs().write(64 + 6, 32); // C1.R6

        const auto add = isa::makeR3(
            isa::Opcode::ADD, ext::dualContextOperand(0, 3, 6),
            ext::dualContextOperand(0, 4, 6),
            ext::dualContextOperand(1, 6, 6));
        cpu.mem().write(0, isa::encode(add));
        isa::Instruction halt;
        halt.op = isa::Opcode::HALT;
        cpu.mem().write(1, isa::encode(halt));
        cpu.run(10);

        std::printf("== Inter-context operation (Section 5.3) ==\n");
        std::printf("C0 at base 0, C1 at base 64\n");
        std::printf("add C0.r3, C0.r4, C1.r6  ->  C0.r3 = %u "
                    "(10 + 32), one instruction, one cycle\n\n",
                    cpu.regs().read(3));
    }

    // ---- Part 2: register windows. ---------------------------------
    {
        machine::Cpu cpu(config);
        ext::RegisterWindowEmulator windows(cpu, 32, 8);
        std::printf("== Register-window emulation ==\n");
        std::printf("%u windows of 32 registers; bank 0 = current, "
                    "bank 1 = callee\n",
                    windows.numWindows());

        // Caller computes in its window...
        cpu.writeContextReg(5, 123);
        // ...passes an argument into the callee's r0 through bank 1:
        // addi <bank1:r0>, <bank0:r5>, 1
        const auto pass = isa::makeI(
            isa::Opcode::ADDI, ext::dualContextOperand(1, 0, 6),
            ext::dualContextOperand(0, 5, 6), 1);
        cpu.mem().write(0, isa::encode(pass));
        isa::Instruction halt;
        halt.op = isa::Opcode::HALT;
        cpu.mem().write(1, isa::encode(halt));
        cpu.run(10);

        std::printf("caller (window %u): r5 = %u, writes r5+1 to "
                    "callee's r0 via bank 1\n",
                    windows.currentWindow(), cpu.readContextReg(5));
        windows.push(); // "call"
        std::printf("callee (window %u): sees argument r0 = %u\n",
                    windows.currentWindow(), cpu.readContextReg(0));
        windows.pop(); // "return"
        std::printf("returned to window %u\n",
                    windows.currentWindow());
        std::printf("\nCall/return cost: two LDRRM-class mask loads — "
                    "no register copying,\nno memory traffic, using "
                    "only ceil(lg n)-bit masks (Section 5.3).\n");
    }
    return 0;
}
