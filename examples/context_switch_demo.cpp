/**
 * @file
 * Runs the paper's Figure 3 context-switch code on the cycle-level
 * RRISC machine: three threads share one context-relative code body
 * and hand the processor around through a circular list of
 * relocation masks (NextRRM), switching in ~5 cycles.
 *
 * The demo prints an annotated execution trace of the first few
 * switches (watch the RRM column change two instructions after each
 * LDRRM — the delay slot), then runs to completion and reports each
 * thread's results and the measured switch cost.
 */

#include <cstdio>
#include <vector>

#include "assembler/assembler.hh"
#include "machine/cpu.hh"
#include "runtime/asm_routines.hh"
#include "runtime/context_allocator.hh"
#include "runtime/context_loader.hh"

int
main()
{
    using namespace rr;
    using runtime::Context;

    machine::CpuConfig config;
    config.numRegs = 128;
    config.operandWidth = 6;
    config.ldrrmDelaySlots = 1;
    config.memWords = 1u << 14;
    machine::Cpu cpu(config);

    const auto prog =
        assembler::assemble(runtime::roundRobinDemoSource());
    if (!prog.ok()) {
        for (const auto &error : prog.errors)
            std::fprintf(stderr, "%s\n", error.str().c_str());
        return 1;
    }
    cpu.mem().loadImage(prog.base, prog.words);

    std::printf("Figure 3 yield routine, as assembled:\n");
    const uint32_t yield_addr = prog.addressOf("yield");
    for (uint32_t a = yield_addr; a < yield_addr + 4; ++a) {
        std::printf("  %3u: %s\n", a,
                    isa::disassemble(cpu.mem().read(a)).c_str());
    }
    std::printf("\n");

    // Three threads, 16-register contexts, shared body.
    constexpr uint64_t counter_addr = 0x2000;
    constexpr unsigned num_threads = 3;
    runtime::ContextAllocator allocator(128, 6, 16);
    runtime::MachineScheduler scheduler(cpu, allocator);

    std::vector<Context> contexts;
    for (unsigned i = 0; i < num_threads; ++i) {
        runtime::MachineScheduler::ThreadSpec spec;
        spec.entryPc = prog.addressOf("thread_body");
        spec.usedRegs = 10;
        const auto context = scheduler.createThread(spec);
        if (!context) {
            std::fprintf(stderr, "context allocation failed\n");
            return 1;
        }
        runtime::pokeContextReg(cpu, context->rrm, 4, 4 + i); // iters
        runtime::pokeContextReg(cpu, context->rrm, 6, 1);
        runtime::pokeContextReg(cpu, context->rrm, 7, 0);
        runtime::pokeContextReg(cpu, context->rrm, 9,
                                static_cast<uint32_t>(counter_addr));
        contexts.push_back(*context);
        std::printf("thread %u: context at base %3u (RRM=0x%02x), "
                    "%u iterations\n",
                    i, context->rrm, context->rrm, 4 + i);
    }
    cpu.mem().write(counter_addr, num_threads);
    scheduler.start();

    std::printf("\nFirst 28 executed instructions "
                "(cycle / RRM / pc / instruction):\n");
    unsigned printed = 0;
    uint64_t body_visits = 0;
    const uint32_t body_addr = prog.addressOf("thread_body");
    cpu.setTraceHook([&](const machine::TraceEntry &entry) {
        if (entry.pc == body_addr)
            ++body_visits;
        if (printed < 28) {
            std::printf("  %4lu  rrm=0x%02x  %3u: %s\n",
                        static_cast<unsigned long>(entry.cycle),
                        entry.rrm, entry.pc, entry.text.c_str());
            ++printed;
        }
    });

    cpu.run(100000);
    if (!cpu.halted() ||
        cpu.trap() != machine::TrapKind::None) {
        std::fprintf(stderr, "machine did not halt cleanly (trap: "
                             "%s)\n",
                     machine::trapName(cpu.trap()));
        return 1;
    }

    std::printf("\nmachine halted after %lu cycles, %lu body "
                "iterations across %u threads\n",
                static_cast<unsigned long>(cpu.cycles()),
                static_cast<unsigned long>(body_visits), num_threads);
    for (unsigned i = 0; i < num_threads; ++i) {
        const Context &context = contexts[i];
        std::printf("thread %u: r4(end)=%u  r5(sum)=%u\n", i,
                    runtime::peekContextReg(cpu, context.rrm, 4),
                    runtime::peekContextReg(cpu, context.rrm, 5));
    }
    std::printf("\nThe switch path (jal + ldrrm + mov + mov + jmp) is "
                "5 cycles,\nwithin the paper's 4-6 cycle estimate "
                "(Section 2.2).\n");
    return 0;
}
