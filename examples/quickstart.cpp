/**
 * @file
 * Quickstart: the register relocation mechanism in three acts.
 *
 *  1. Relocate register operands through an RRM (Figure 1).
 *  2. Carve a 128-register file into variable-size contexts with the
 *     software allocator (Appendix A).
 *  3. Simulate a multithreaded node and compare register relocation
 *     against fixed-size hardware contexts (Section 3).
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "base/table.hh"
#include "machine/relocation_unit.hh"
#include "multithread/simulation_spec.hh"
#include "multithread/workload.hh"
#include "runtime/context_allocator.hh"

int
main()
{
    using namespace rr;

    // ---- 1. The hardware mechanism: OR-relocation at decode. ------
    std::printf("== 1. Register relocation (Figure 1) ==\n");
    machine::RelocationUnit unit(128, 5);
    unit.setMask(40); // a size-8 context at registers 40..47
    std::printf("RRM=40 (size-8 context): context-relative r5 -> "
                "absolute r%u\n",
                unit.relocate(5).physical);
    unit.setMask(32); // a size-16 context at registers 32..47
    std::printf("RRM=32 (size-16 context): context-relative r14 -> "
                "absolute r%u\n\n",
                unit.relocate(14).physical);

    // ---- 2. Software context allocation (Appendix A). -------------
    std::printf("== 2. Variable-size context allocation ==\n");
    runtime::ContextAllocator allocator(128, 5);
    for (const unsigned c : {6u, 24u, 12u, 4u, 17u}) {
        const auto context = allocator.allocate(c);
        if (context) {
            std::printf("thread needs %2u regs -> context of %2u at "
                        "base %3u (RRM=0x%02x)\n",
                        c, context->size, context->baseReg(),
                        context->rrm);
        }
    }
    std::printf("registers used: %u / %u\n\n",
                allocator.allocatedRegs(), allocator.numRegs());

    // ---- 3. Flexible vs fixed contexts under cache faults. --------
    std::printf("== 3. Multithreading efficiency (Figure 5 style) ==\n");
    Table table({"R", "L", "fixed", "flexible", "speedup"});
    for (const double run_length : {16.0, 64.0}) {
        for (const uint64_t latency : {100ull, 400ull}) {
            mt::MtConfig fixed =
                mt::SimulationSpec()
                    .cacheFaults(run_length, latency)
                    .arch(mt::ArchKind::FixedHw)
                    .build();
            mt::MtConfig flexible =
                mt::SimulationSpec()
                    .cacheFaults(run_length, latency)
                    .arch(mt::ArchKind::Flexible)
                    .build();
            const double ef =
                mt::simulate(std::move(fixed)).efficiencyCentral;
            const double el =
                mt::simulate(std::move(flexible)).efficiencyCentral;
            table.addRow({Table::num(run_length, 0),
                          Table::num(latency), Table::num(ef),
                          Table::num(el), Table::num(el / ef, 2)});
        }
    }
    std::printf("%s\n(F = 128 registers, C ~ U[6,24], S = 6; "
                "efficiency over the central 20-80%% window)\n",
                table.render().c_str());
    return 0;
}
