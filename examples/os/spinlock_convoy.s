; Two threads forming a lock convoy on a real test-and-set spinlock.
;
; No atomic instructions exist on RRISC, and none are needed: the
; processor switches threads only at the explicit LDRRM inside
; `yield`, so lock_acquire's load/test/store sequence is atomic by
; construction. Each thread yields *while holding the lock* — the
; competitor then burns its turn spinning, which is exactly the
; convoy the fig_contention bench measures at scale.
;
; Context-relative conventions (see docs/KERNEL.md):
;   r0 = resume PC, r1 = PSW save, r2 = NextRRM, r3 = call linkage
;   r4 = argument (&lock), r5/r8 = scratch, r6 = 1, r7 = 0
;   r9 = remaining rounds
;
; Run with `rrsim examples/os/spinlock_convoy.s`; the machine halts
; when the last thread decrements the LIVE latch to zero, with
; COUNTER = 2 * ITERS.

        .equ CTX_A, 0x20
        .equ CTX_B, 0x30
        .equ ITERS, 4
        .equ COUNTER, 0x100      ; shared word both threads bump
        .equ LOCKWORD, 0x101     ; the spinlock's state word
        .equ EXITLOCK, 0x102     ; protects the LIVE latch
        .equ LIVE, 0x103         ; live-thread countdown

        .thread thread_body
        .lockdef mutex, lock_acquire, lock_release

entry:                          ; RRM = 0 (setup window)
        li    r5, LIVE
        li    r8, 2
        st    r8, 0(r5)
        li    r10, CTX_A
        ldrrm r10
        nop                     ; LDRRM delay slot
        ; --- window A: initialize thread A's registers ---
        la    r0, thread_body
        li    r2, CTX_B         ; NextRRM: yield to B
        li    r6, 1
        li    r7, 0
        li    r9, ITERS
        ldrrm r7                ; back to the setup window (RRM 0)
        nop
        li    r10, CTX_B
        ldrrm r10
        nop
        ; --- window B: initialize thread B's registers ---
        la    r0, thread_body
        li    r2, CTX_A         ; NextRRM: yield to A
        li    r6, 1
        li    r7, 0
        li    r9, ITERS
        jmp   r0                ; enter thread B

yield:
        ldrrm r2                ; Figure 3: install the next mask
        mov   r1, psw           ; delay slot: still the old context
        mov   psw, r1           ; new context: restore PSW
        jmp   r0                ; resume it

thread_body:
        li    r4, LOCKWORD
        jal   r3, lock_acquire
        jal   r0, yield         ; hold the lock across a switch:
                                ; the other thread spins (convoy)
        li    r5, COUNTER
        ld    r8, 0(r5)
        add   r8, r8, r6
        st    r8, 0(r5)
        li    r4, LOCKWORD
        jal   r3, lock_release
        jal   r0, yield
        sub   r9, r9, r6
        bne   r9, r7, thread_body

thread_exit:
        li    r4, EXITLOCK
        jal   r3, lock_acquire
        li    r5, LIVE
        ld    r8, 0(r5)
        sub   r8, r8, r6
        st    r8, 0(r5)
        li    r4, EXITLOCK
        jal   r3, lock_release
        bne   r8, r7, parked
        halt                    ; last thread out stops the machine
parked:
        jal   r0, yield
        b     parked

; Test-and-set spinlock (r4 = &lock, clobbers r5, link r3). The
; .lockdef trust contract exempts these lock-word accesses from race
; reporting; everything else must hold the lock.
lock_acquire:
        ld    r5, 0(r4)
        bne   r5, r7, la_spin
        st    r6, 0(r4)
        jmp   r3
la_spin:
        jal   r0, yield
        b     lock_acquire

lock_release:
        st    r7, 0(r4)
        jmp   r3
