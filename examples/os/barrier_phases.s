; Two threads running barrier-synchronized phases with skewed work —
; a sense-reversing barrier built from plain loads and stores.
;
; Thread A does 3 work units per phase, thread B does 9: every phase
; lasts as long as B, and A spends the difference spinning on the
; barrier generation word (through yield, so B keeps the pipeline).
; The arrive/update sequence in barrier_wait is atomic because the
; processor switches threads only at LDRRM.
;
; Context-relative conventions (see docs/KERNEL.md):
;   r0 = resume PC, r1 = PSW save, r2 = NextRRM, r3 = call linkage
;   r4 = argument (&barrier), r5/r8 = scratch, r6 = 1, r7 = 0
;   r9 = remaining phases, r10 = work units per phase
;
; Run with `rrsim examples/os/barrier_phases.s`; halts after PHASES
; phases when the LIVE latch reaches zero.

        .equ CTX_A, 0x20
        .equ CTX_B, 0x30
        .equ PHASES, 3
        .equ UNITS_A, 3
        .equ UNITS_B, 9
        .equ BARRIER_A, 0x100   ; {count, generation, size}
        .equ EXITLOCK, 0x103    ; protects the LIVE latch
        .equ LIVE, 0x104        ; live-thread countdown

        .thread thread_body
        .lockdef mutex, lock_acquire, lock_release
        .lockdef barrier, barrier_wait, barrier_wait

entry:                          ; RRM = 0 (setup window)
        li    r5, LIVE
        li    r8, 2
        st    r8, 0(r5)
        li    r5, BARRIER_A
        st    r8, 2(r5)         ; barrier size = 2
        li    r10, CTX_A
        ldrrm r10
        nop                     ; LDRRM delay slot
        ; --- window A: the fast thread ---
        la    r0, thread_body
        li    r2, CTX_B         ; NextRRM: yield to B
        li    r6, 1
        li    r7, 0
        li    r9, PHASES
        li    r10, UNITS_A
        ldrrm r7                ; back to the setup window (RRM 0)
        nop
        li    r10, CTX_B
        ldrrm r10
        nop
        ; --- window B: the slow thread ---
        la    r0, thread_body
        li    r2, CTX_A         ; NextRRM: yield to A
        li    r6, 1
        li    r7, 0
        li    r9, PHASES
        li    r10, UNITS_B
        jmp   r0                ; enter thread B

yield:
        ldrrm r2                ; Figure 3: install the next mask
        mov   r1, psw           ; delay slot: still the old context
        mov   psw, r1           ; new context: restore PSW
        jmp   r0                ; resume it

thread_body:
        add   r4, r10, r7       ; this phase's work budget
work:
        sub   r4, r4, r6
        jal   r0, yield         ; interleave with the other thread
        bne   r4, r7, work
        li    r4, BARRIER_A
        jal   r3, barrier_wait
        sub   r9, r9, r6
        bne   r9, r7, thread_body

thread_exit:
        li    r4, EXITLOCK
        jal   r3, lock_acquire
        li    r5, LIVE
        ld    r8, 0(r5)
        sub   r8, r8, r6
        st    r8, 0(r5)
        li    r4, EXITLOCK
        jal   r3, lock_release
        bne   r8, r7, parked
        halt                    ; last thread out stops the machine
parked:
        jal   r0, yield
        b     parked

; Sense-reversing barrier (r4 = &{count, generation, size}, clobbers
; r5 and r8, link r3). Arrivals increment count; the last arriver
; resets it and bumps the generation, releasing the spinners.
barrier_wait:
        ld    r5, 0(r4)
        add   r5, r5, r6
        ld    r8, 2(r4)
        beq   r5, r8, bw_last
        st    r5, 0(r4)
        ld    r8, 1(r4)
bw_spin:
        jal   r0, yield
        ld    r5, 1(r4)
        beq   r5, r8, bw_spin
        jmp   r3
bw_last:
        st    r7, 0(r4)
        ld    r8, 1(r4)
        add   r8, r8, r6
        st    r8, 1(r4)
        jmp   r3

; Exit-latch spinlock (r4 = &lock, clobbers r5, link r3).
lock_acquire:
        ld    r5, 0(r4)
        bne   r5, r7, la_spin
        st    r6, 0(r4)
        jmp   r3
la_spin:
        jal   r0, yield
        b     lock_acquire

lock_release:
        st    r7, 0(r4)
        jmp   r3
