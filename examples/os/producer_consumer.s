; One producer, one consumer, and a two-slot ring buffer guarded by
; counting semaphores — the textbook bounded-buffer protocol written
; for RRISC's cooperative multithreading.
;
; sem_p blocks by yielding (the only way to wait on this machine) and
; its load/decrement/store is atomic because preemption happens only
; at LDRRM. The producer P's SPACES before taking the mutex and never
; blocks while holding it, so the pipeline cannot deadlock; the
; unbalanced loop bodies make the consumer wait on ITEMS — an
; endogenous wait, caused by the producer's code, not a drawn number.
;
; Context-relative conventions (see docs/KERNEL.md):
;   r0 = resume PC, r1 = PSW save, r2 = NextRRM, r3 = call linkage
;   r4 = argument (&sem / &lock), r5/r8 = scratch, r6 = 1, r7 = 0
;   r9 = items remaining, r10 = ring index scratch
;
; Run with `rrsim examples/os/producer_consumer.s`; halts after all
; ITEMS_N items pass through the ring.

        .equ CTX_A, 0x20        ; producer context
        .equ CTX_B, 0x30        ; consumer context
        .equ ITEMS_N, 5
        .equ MUTEX, 0x100       ; ring mutex state word
        .equ SEM_ITEMS, 0x101    ; full slots (consumer P's this)
        .equ SEM_SPACES, 0x102   ; free slots (producer P's this)
        .equ HEAD_A, 0x103       ; consumer index
        .equ TAIL_A, 0x104       ; producer index
        .equ EXITLOCK, 0x105     ; protects the LIVE latch
        .equ LIVE, 0x106         ; live-thread countdown
        .equ RING_BASE, 0x110
        .equ RING_SIZE, 2

        .thread producer
        .thread consumer
        .lockdef mutex, lock_acquire, lock_release
        .lockdef sem, sem_p, sem_v

entry:                          ; RRM = 0 (setup window)
        li    r5, LIVE
        li    r8, 2
        st    r8, 0(r5)
        li    r5, SEM_SPACES
        li    r8, RING_SIZE
        st    r8, 0(r5)         ; the ring starts empty
        li    r10, CTX_A
        ldrrm r10
        nop                     ; LDRRM delay slot
        ; --- window A: the producer ---
        la    r0, producer
        li    r2, CTX_B
        li    r6, 1
        li    r7, 0
        li    r9, ITEMS_N
        ldrrm r7                ; back to the setup window (RRM 0)
        nop
        li    r10, CTX_B
        ldrrm r10
        nop
        ; --- window B: the consumer ---
        la    r0, consumer
        li    r2, CTX_A
        li    r6, 1
        li    r7, 0
        li    r9, ITEMS_N
        jmp   r0                ; enter the consumer

yield:
        ldrrm r2                ; Figure 3: install the next mask
        mov   r1, psw           ; delay slot: still the old context
        mov   psw, r1           ; new context: restore PSW
        jmp   r0                ; resume it

producer:
        li    r4, SEM_SPACES
        jal   r3, sem_p         ; wait for a free slot
        li    r4, MUTEX
        jal   r3, lock_acquire
        li    r4, TAIL_A
        ld    r5, 0(r4)
        li    r8, RING_BASE
        add   r8, r8, r5
        st    r9, 0(r8)         ; item payload: countdown value
        add   r5, r5, r6
        li    r8, RING_SIZE
        bne   r5, r8, p_nowrap
        add   r5, r7, r7        ; wrap the index to zero
p_nowrap:
        st    r5, 0(r4)
        li    r4, MUTEX
        jal   r3, lock_release
        li    r4, SEM_ITEMS
        jal   r3, sem_v         ; publish the item
        jal   r0, yield
        sub   r9, r9, r6
        bne   r9, r7, producer
        b     thread_exit

consumer:
        li    r4, SEM_ITEMS
        jal   r3, sem_p         ; wait for an item
        li    r4, MUTEX
        jal   r3, lock_acquire
        li    r4, HEAD_A
        ld    r5, 0(r4)
        li    r8, RING_BASE
        add   r8, r8, r5
        ld    r10, 0(r8)        ; take the item
        add   r5, r5, r6
        li    r8, RING_SIZE
        bne   r5, r8, c_nowrap
        add   r5, r7, r7
c_nowrap:
        st    r5, 0(r4)
        li    r4, MUTEX
        jal   r3, lock_release
        li    r4, SEM_SPACES
        jal   r3, sem_v         ; return the slot
        jal   r0, yield
        sub   r9, r9, r6
        bne   r9, r7, consumer

thread_exit:
        li    r4, EXITLOCK
        jal   r3, lock_acquire
        li    r5, LIVE
        ld    r8, 0(r5)
        sub   r8, r8, r6
        st    r8, 0(r5)
        li    r4, EXITLOCK
        jal   r3, lock_release
        bne   r8, r7, parked
        halt                    ; last thread out stops the machine
parked:
        jal   r0, yield
        b     parked

; Synchronization runtime (r4 = argument address, clobbers r5,
; link r3). The .lockdef trust contracts exempt these state-word
; accesses from race reporting.
lock_acquire:
        ld    r5, 0(r4)
        bne   r5, r7, la_spin
        st    r6, 0(r4)
        jmp   r3
la_spin:
        jal   r0, yield
        b     lock_acquire

lock_release:
        st    r7, 0(r4)
        jmp   r3

sem_p:
        ld    r5, 0(r4)
        bne   r5, r7, sp_take
        jal   r0, yield         ; zero: block until a V
        b     sem_p
sp_take:
        sub   r5, r5, r6
        st    r5, 0(r4)
        jmp   r3

sem_v:
        ld    r5, 0(r4)
        add   r5, r5, r6
        st    r5, 0(r4)
        jmp   r3
