# Empty compiler generated dependencies file for bench_fig6_sync.
# This may be replaced when dependencies are built.
