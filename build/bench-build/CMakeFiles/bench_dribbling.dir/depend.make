# Empty dependencies file for bench_dribbling.
# This may be replaced when dependencies are built.
