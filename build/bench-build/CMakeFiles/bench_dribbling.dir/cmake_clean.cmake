file(REMOVE_RECURSE
  "../bench/bench_dribbling"
  "../bench/bench_dribbling.pdb"
  "CMakeFiles/bench_dribbling.dir/bench_dribbling.cpp.o"
  "CMakeFiles/bench_dribbling.dir/bench_dribbling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dribbling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
