file(REMOVE_RECURSE
  "../bench/bench_fig6a_lowcost"
  "../bench/bench_fig6a_lowcost.pdb"
  "CMakeFiles/bench_fig6a_lowcost.dir/bench_fig6a_lowcost.cpp.o"
  "CMakeFiles/bench_fig6a_lowcost.dir/bench_fig6a_lowcost.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6a_lowcost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
