# Empty dependencies file for bench_fig6a_lowcost.
# This may be replaced when dependencies are built.
