file(REMOVE_RECURSE
  "../bench/bench_fig4_costs"
  "../bench/bench_fig4_costs.pdb"
  "CMakeFiles/bench_fig4_costs.dir/bench_fig4_costs.cpp.o"
  "CMakeFiles/bench_fig4_costs.dir/bench_fig4_costs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
