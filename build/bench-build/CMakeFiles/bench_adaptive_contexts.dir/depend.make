# Empty dependencies file for bench_adaptive_contexts.
# This may be replaced when dependencies are built.
