file(REMOVE_RECURSE
  "../bench/bench_adaptive_contexts"
  "../bench/bench_adaptive_contexts.pdb"
  "CMakeFiles/bench_adaptive_contexts.dir/bench_adaptive_contexts.cpp.o"
  "CMakeFiles/bench_adaptive_contexts.dir/bench_adaptive_contexts.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adaptive_contexts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
