file(REMOVE_RECURSE
  "../bench/bench_twophase_runtime"
  "../bench/bench_twophase_runtime.pdb"
  "CMakeFiles/bench_twophase_runtime.dir/bench_twophase_runtime.cpp.o"
  "CMakeFiles/bench_twophase_runtime.dir/bench_twophase_runtime.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_twophase_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
