# Empty dependencies file for bench_twophase_runtime.
# This may be replaced when dependencies are built.
