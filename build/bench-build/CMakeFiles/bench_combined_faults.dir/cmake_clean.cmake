file(REMOVE_RECURSE
  "../bench/bench_combined_faults"
  "../bench/bench_combined_faults.pdb"
  "CMakeFiles/bench_combined_faults.dir/bench_combined_faults.cpp.o"
  "CMakeFiles/bench_combined_faults.dir/bench_combined_faults.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_combined_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
