# Empty compiler generated dependencies file for bench_combined_faults.
# This may be replaced when dependencies are built.
