# Empty compiler generated dependencies file for bench_file_sizing.
# This may be replaced when dependencies are built.
