file(REMOVE_RECURSE
  "../bench/bench_file_sizing"
  "../bench/bench_file_sizing.pdb"
  "CMakeFiles/bench_file_sizing.dir/bench_file_sizing.cpp.o"
  "CMakeFiles/bench_file_sizing.dir/bench_file_sizing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_file_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
