# Empty dependencies file for bench_homogeneous.
# This may be replaced when dependencies are built.
