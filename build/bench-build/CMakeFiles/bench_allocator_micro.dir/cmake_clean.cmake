file(REMOVE_RECURSE
  "../bench/bench_allocator_micro"
  "../bench/bench_allocator_micro.pdb"
  "CMakeFiles/bench_allocator_micro.dir/bench_allocator_micro.cpp.o"
  "CMakeFiles/bench_allocator_micro.dir/bench_allocator_micro.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_allocator_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
