file(REMOVE_RECURSE
  "../bench/bench_rotation_runtime"
  "../bench/bench_rotation_runtime.pdb"
  "CMakeFiles/bench_rotation_runtime.dir/bench_rotation_runtime.cpp.o"
  "CMakeFiles/bench_rotation_runtime.dir/bench_rotation_runtime.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rotation_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
