# Empty compiler generated dependencies file for bench_pipeline_effects.
# This may be replaced when dependencies are built.
