file(REMOVE_RECURSE
  "../bench/bench_pipeline_effects"
  "../bench/bench_pipeline_effects.pdb"
  "CMakeFiles/bench_pipeline_effects.dir/bench_pipeline_effects.cpp.o"
  "CMakeFiles/bench_pipeline_effects.dir/bench_pipeline_effects.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pipeline_effects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
