# Empty dependencies file for bench_compiler_tradeoff.
# This may be replaced when dependencies are built.
