file(REMOVE_RECURSE
  "../bench/bench_compiler_tradeoff"
  "../bench/bench_compiler_tradeoff.pdb"
  "CMakeFiles/bench_compiler_tradeoff.dir/bench_compiler_tradeoff.cpp.o"
  "CMakeFiles/bench_compiler_tradeoff.dir/bench_compiler_tradeoff.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compiler_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
