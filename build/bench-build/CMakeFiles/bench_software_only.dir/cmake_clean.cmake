file(REMOVE_RECURSE
  "../bench/bench_software_only"
  "../bench/bench_software_only.pdb"
  "CMakeFiles/bench_software_only.dir/bench_software_only.cpp.o"
  "CMakeFiles/bench_software_only.dir/bench_software_only.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_software_only.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
