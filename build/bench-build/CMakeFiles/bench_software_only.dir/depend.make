# Empty dependencies file for bench_software_only.
# This may be replaced when dependencies are built.
