file(REMOVE_RECURSE
  "../bench/bench_switch_ablation"
  "../bench/bench_switch_ablation.pdb"
  "CMakeFiles/bench_switch_ablation.dir/bench_switch_ablation.cpp.o"
  "CMakeFiles/bench_switch_ablation.dir/bench_switch_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_switch_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
