# Empty compiler generated dependencies file for bench_switch_ablation.
# This may be replaced when dependencies are built.
