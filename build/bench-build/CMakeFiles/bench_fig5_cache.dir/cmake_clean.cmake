file(REMOVE_RECURSE
  "../bench/bench_fig5_cache"
  "../bench/bench_fig5_cache.pdb"
  "CMakeFiles/bench_fig5_cache.dir/bench_fig5_cache.cpp.o"
  "CMakeFiles/bench_fig5_cache.dir/bench_fig5_cache.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
