# Empty dependencies file for bench_fig5_cache.
# This may be replaced when dependencies are built.
