# Empty compiler generated dependencies file for bench_add_vs_or.
# This may be replaced when dependencies are built.
