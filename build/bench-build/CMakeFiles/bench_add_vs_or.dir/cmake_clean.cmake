file(REMOVE_RECURSE
  "../bench/bench_add_vs_or"
  "../bench/bench_add_vs_or.pdb"
  "CMakeFiles/bench_add_vs_or.dir/bench_add_vs_or.cpp.o"
  "CMakeFiles/bench_add_vs_or.dir/bench_add_vs_or.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_add_vs_or.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
