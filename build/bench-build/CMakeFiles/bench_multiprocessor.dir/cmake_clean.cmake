file(REMOVE_RECURSE
  "../bench/bench_multiprocessor"
  "../bench/bench_multiprocessor.pdb"
  "CMakeFiles/bench_multiprocessor.dir/bench_multiprocessor.cpp.o"
  "CMakeFiles/bench_multiprocessor.dir/bench_multiprocessor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multiprocessor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
