# Empty compiler generated dependencies file for bench_machine_vs_event.
# This may be replaced when dependencies are built.
