file(REMOVE_RECURSE
  "../bench/bench_machine_vs_event"
  "../bench/bench_machine_vs_event.pdb"
  "CMakeFiles/bench_machine_vs_event.dir/bench_machine_vs_event.cpp.o"
  "CMakeFiles/bench_machine_vs_event.dir/bench_machine_vs_event.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_machine_vs_event.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
