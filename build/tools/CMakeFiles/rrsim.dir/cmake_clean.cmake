file(REMOVE_RECURSE
  "CMakeFiles/rrsim.dir/rrsim.cc.o"
  "CMakeFiles/rrsim.dir/rrsim.cc.o.d"
  "rrsim"
  "rrsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
