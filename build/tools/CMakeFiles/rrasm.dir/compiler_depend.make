# Empty compiler generated dependencies file for rrasm.
# This may be replaced when dependencies are built.
