file(REMOVE_RECURSE
  "CMakeFiles/rrasm.dir/rrasm.cc.o"
  "CMakeFiles/rrasm.dir/rrasm.cc.o.d"
  "rrasm"
  "rrasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
