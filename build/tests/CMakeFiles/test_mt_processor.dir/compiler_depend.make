# Empty compiler generated dependencies file for test_mt_processor.
# This may be replaced when dependencies are built.
