file(REMOVE_RECURSE
  "CMakeFiles/test_mt_processor.dir/test_mt_processor.cc.o"
  "CMakeFiles/test_mt_processor.dir/test_mt_processor.cc.o.d"
  "test_mt_processor"
  "test_mt_processor.pdb"
  "test_mt_processor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mt_processor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
