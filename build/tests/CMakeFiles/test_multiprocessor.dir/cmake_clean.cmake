file(REMOVE_RECURSE
  "CMakeFiles/test_multiprocessor.dir/test_multiprocessor.cc.o"
  "CMakeFiles/test_multiprocessor.dir/test_multiprocessor.cc.o.d"
  "test_multiprocessor"
  "test_multiprocessor.pdb"
  "test_multiprocessor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multiprocessor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
