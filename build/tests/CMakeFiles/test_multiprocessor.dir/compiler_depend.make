# Empty compiler generated dependencies file for test_multiprocessor.
# This may be replaced when dependencies are built.
