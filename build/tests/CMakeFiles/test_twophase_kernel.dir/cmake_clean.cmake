file(REMOVE_RECURSE
  "CMakeFiles/test_twophase_kernel.dir/test_twophase_kernel.cc.o"
  "CMakeFiles/test_twophase_kernel.dir/test_twophase_kernel.cc.o.d"
  "test_twophase_kernel"
  "test_twophase_kernel.pdb"
  "test_twophase_kernel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_twophase_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
