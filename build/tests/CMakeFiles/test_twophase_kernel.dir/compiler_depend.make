# Empty compiler generated dependencies file for test_twophase_kernel.
# This may be replaced when dependencies are built.
