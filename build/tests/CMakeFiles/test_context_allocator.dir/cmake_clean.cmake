file(REMOVE_RECURSE
  "CMakeFiles/test_context_allocator.dir/test_context_allocator.cc.o"
  "CMakeFiles/test_context_allocator.dir/test_context_allocator.cc.o.d"
  "test_context_allocator"
  "test_context_allocator.pdb"
  "test_context_allocator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_context_allocator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
