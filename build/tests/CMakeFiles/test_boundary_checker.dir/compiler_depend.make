# Empty compiler generated dependencies file for test_boundary_checker.
# This may be replaced when dependencies are built.
