file(REMOVE_RECURSE
  "CMakeFiles/test_boundary_checker.dir/test_boundary_checker.cc.o"
  "CMakeFiles/test_boundary_checker.dir/test_boundary_checker.cc.o.d"
  "test_boundary_checker"
  "test_boundary_checker.pdb"
  "test_boundary_checker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_boundary_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
