file(REMOVE_RECURSE
  "CMakeFiles/test_context_loader.dir/test_context_loader.cc.o"
  "CMakeFiles/test_context_loader.dir/test_context_loader.cc.o.d"
  "test_context_loader"
  "test_context_loader.pdb"
  "test_context_loader[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_context_loader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
