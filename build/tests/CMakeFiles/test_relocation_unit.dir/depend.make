# Empty dependencies file for test_relocation_unit.
# This may be replaced when dependencies are built.
