file(REMOVE_RECURSE
  "CMakeFiles/test_relocation_unit.dir/test_relocation_unit.cc.o"
  "CMakeFiles/test_relocation_unit.dir/test_relocation_unit.cc.o.d"
  "test_relocation_unit"
  "test_relocation_unit.pdb"
  "test_relocation_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_relocation_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
