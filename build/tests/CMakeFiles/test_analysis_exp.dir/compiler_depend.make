# Empty compiler generated dependencies file for test_analysis_exp.
# This may be replaced when dependencies are built.
