file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_exp.dir/test_analysis_exp.cc.o"
  "CMakeFiles/test_analysis_exp.dir/test_analysis_exp.cc.o.d"
  "test_analysis_exp"
  "test_analysis_exp.pdb"
  "test_analysis_exp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
