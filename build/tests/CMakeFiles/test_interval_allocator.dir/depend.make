# Empty dependencies file for test_interval_allocator.
# This may be replaced when dependencies are built.
