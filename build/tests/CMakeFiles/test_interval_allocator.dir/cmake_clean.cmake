file(REMOVE_RECURSE
  "CMakeFiles/test_interval_allocator.dir/test_interval_allocator.cc.o"
  "CMakeFiles/test_interval_allocator.dir/test_interval_allocator.cc.o.d"
  "test_interval_allocator"
  "test_interval_allocator.pdb"
  "test_interval_allocator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interval_allocator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
