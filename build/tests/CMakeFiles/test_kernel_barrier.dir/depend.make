# Empty dependencies file for test_kernel_barrier.
# This may be replaced when dependencies are built.
