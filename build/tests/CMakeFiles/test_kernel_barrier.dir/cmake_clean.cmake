file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_barrier.dir/test_kernel_barrier.cc.o"
  "CMakeFiles/test_kernel_barrier.dir/test_kernel_barrier.cc.o.d"
  "test_kernel_barrier"
  "test_kernel_barrier.pdb"
  "test_kernel_barrier[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_barrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
