# Empty dependencies file for test_rotation_kernel.
# This may be replaced when dependencies are built.
