file(REMOVE_RECURSE
  "CMakeFiles/test_rotation_kernel.dir/test_rotation_kernel.cc.o"
  "CMakeFiles/test_rotation_kernel.dir/test_rotation_kernel.cc.o.d"
  "test_rotation_kernel"
  "test_rotation_kernel.pdb"
  "test_rotation_kernel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rotation_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
