# Empty compiler generated dependencies file for test_rng_distributions.
# This may be replaced when dependencies are built.
