file(REMOVE_RECURSE
  "CMakeFiles/test_asm_integration.dir/test_asm_integration.cc.o"
  "CMakeFiles/test_asm_integration.dir/test_asm_integration.cc.o.d"
  "test_asm_integration"
  "test_asm_integration.pdb"
  "test_asm_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_asm_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
