# Empty compiler generated dependencies file for test_asm_integration.
# This may be replaced when dependencies are built.
