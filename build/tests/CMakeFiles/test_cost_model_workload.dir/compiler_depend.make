# Empty compiler generated dependencies file for test_cost_model_workload.
# This may be replaced when dependencies are built.
