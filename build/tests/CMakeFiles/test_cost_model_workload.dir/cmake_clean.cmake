file(REMOVE_RECURSE
  "CMakeFiles/test_cost_model_workload.dir/test_cost_model_workload.cc.o"
  "CMakeFiles/test_cost_model_workload.dir/test_cost_model_workload.cc.o.d"
  "test_cost_model_workload"
  "test_cost_model_workload.pdb"
  "test_cost_model_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cost_model_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
