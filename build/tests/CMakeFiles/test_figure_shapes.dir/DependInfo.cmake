
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_figure_shapes.cc" "tests/CMakeFiles/test_figure_shapes.dir/test_figure_shapes.cc.o" "gcc" "tests/CMakeFiles/test_figure_shapes.dir/test_figure_shapes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/rr_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/rr_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ext/CMakeFiles/rr_ext.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/rr_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/checker/CMakeFiles/rr_checker.dir/DependInfo.cmake"
  "/root/repo/build/src/system/CMakeFiles/rr_system.dir/DependInfo.cmake"
  "/root/repo/build/src/multithread/CMakeFiles/rr_mt.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/rr_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/assembler/CMakeFiles/rr_assembler.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/rr_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/rr_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/rr_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
