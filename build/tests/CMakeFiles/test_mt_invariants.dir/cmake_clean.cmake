file(REMOVE_RECURSE
  "CMakeFiles/test_mt_invariants.dir/test_mt_invariants.cc.o"
  "CMakeFiles/test_mt_invariants.dir/test_mt_invariants.cc.o.d"
  "test_mt_invariants"
  "test_mt_invariants.pdb"
  "test_mt_invariants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mt_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
