# Empty dependencies file for test_mt_invariants.
# This may be replaced when dependencies are built.
