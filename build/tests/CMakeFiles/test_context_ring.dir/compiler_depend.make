# Empty compiler generated dependencies file for test_context_ring.
# This may be replaced when dependencies are built.
