file(REMOVE_RECURSE
  "CMakeFiles/test_context_ring.dir/test_context_ring.cc.o"
  "CMakeFiles/test_context_ring.dir/test_context_ring.cc.o.d"
  "test_context_ring"
  "test_context_ring.pdb"
  "test_context_ring[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_context_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
