file(REMOVE_RECURSE
  "CMakeFiles/rr_isa.dir/disasm.cc.o"
  "CMakeFiles/rr_isa.dir/disasm.cc.o.d"
  "CMakeFiles/rr_isa.dir/encoding.cc.o"
  "CMakeFiles/rr_isa.dir/encoding.cc.o.d"
  "CMakeFiles/rr_isa.dir/opcodes.cc.o"
  "CMakeFiles/rr_isa.dir/opcodes.cc.o.d"
  "librr_isa.a"
  "librr_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
