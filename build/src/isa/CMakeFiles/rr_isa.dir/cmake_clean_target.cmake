file(REMOVE_RECURSE
  "librr_isa.a"
)
