# Empty compiler generated dependencies file for rr_isa.
# This may be replaced when dependencies are built.
