file(REMOVE_RECURSE
  "librr_checker.a"
)
