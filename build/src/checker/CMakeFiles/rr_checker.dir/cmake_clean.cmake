file(REMOVE_RECURSE
  "CMakeFiles/rr_checker.dir/boundary_checker.cc.o"
  "CMakeFiles/rr_checker.dir/boundary_checker.cc.o.d"
  "librr_checker.a"
  "librr_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
