# Empty dependencies file for rr_checker.
# This may be replaced when dependencies are built.
