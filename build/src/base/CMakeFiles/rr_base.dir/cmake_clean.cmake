file(REMOVE_RECURSE
  "CMakeFiles/rr_base.dir/distributions.cc.o"
  "CMakeFiles/rr_base.dir/distributions.cc.o.d"
  "CMakeFiles/rr_base.dir/logging.cc.o"
  "CMakeFiles/rr_base.dir/logging.cc.o.d"
  "CMakeFiles/rr_base.dir/rng.cc.o"
  "CMakeFiles/rr_base.dir/rng.cc.o.d"
  "CMakeFiles/rr_base.dir/stats.cc.o"
  "CMakeFiles/rr_base.dir/stats.cc.o.d"
  "CMakeFiles/rr_base.dir/table.cc.o"
  "CMakeFiles/rr_base.dir/table.cc.o.d"
  "librr_base.a"
  "librr_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
