file(REMOVE_RECURSE
  "librr_base.a"
)
