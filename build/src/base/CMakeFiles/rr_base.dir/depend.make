# Empty dependencies file for rr_base.
# This may be replaced when dependencies are built.
