
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/system/multiprocessor.cc" "src/system/CMakeFiles/rr_system.dir/multiprocessor.cc.o" "gcc" "src/system/CMakeFiles/rr_system.dir/multiprocessor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/multithread/CMakeFiles/rr_mt.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/rr_base.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/rr_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/rr_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/assembler/CMakeFiles/rr_assembler.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/rr_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
