file(REMOVE_RECURSE
  "librr_system.a"
)
