# Empty dependencies file for rr_system.
# This may be replaced when dependencies are built.
