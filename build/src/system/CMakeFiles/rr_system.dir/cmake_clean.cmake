file(REMOVE_RECURSE
  "CMakeFiles/rr_system.dir/multiprocessor.cc.o"
  "CMakeFiles/rr_system.dir/multiprocessor.cc.o.d"
  "librr_system.a"
  "librr_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
