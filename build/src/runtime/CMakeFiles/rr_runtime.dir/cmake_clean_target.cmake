file(REMOVE_RECURSE
  "librr_runtime.a"
)
