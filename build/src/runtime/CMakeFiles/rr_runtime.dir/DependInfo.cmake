
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/asm_routines.cc" "src/runtime/CMakeFiles/rr_runtime.dir/asm_routines.cc.o" "gcc" "src/runtime/CMakeFiles/rr_runtime.dir/asm_routines.cc.o.d"
  "/root/repo/src/runtime/context_allocator.cc" "src/runtime/CMakeFiles/rr_runtime.dir/context_allocator.cc.o" "gcc" "src/runtime/CMakeFiles/rr_runtime.dir/context_allocator.cc.o.d"
  "/root/repo/src/runtime/context_loader.cc" "src/runtime/CMakeFiles/rr_runtime.dir/context_loader.cc.o" "gcc" "src/runtime/CMakeFiles/rr_runtime.dir/context_loader.cc.o.d"
  "/root/repo/src/runtime/context_ring.cc" "src/runtime/CMakeFiles/rr_runtime.dir/context_ring.cc.o" "gcc" "src/runtime/CMakeFiles/rr_runtime.dir/context_ring.cc.o.d"
  "/root/repo/src/runtime/cost_model.cc" "src/runtime/CMakeFiles/rr_runtime.dir/cost_model.cc.o" "gcc" "src/runtime/CMakeFiles/rr_runtime.dir/cost_model.cc.o.d"
  "/root/repo/src/runtime/interval_allocator.cc" "src/runtime/CMakeFiles/rr_runtime.dir/interval_allocator.cc.o" "gcc" "src/runtime/CMakeFiles/rr_runtime.dir/interval_allocator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/machine/CMakeFiles/rr_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/assembler/CMakeFiles/rr_assembler.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/rr_base.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/rr_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
