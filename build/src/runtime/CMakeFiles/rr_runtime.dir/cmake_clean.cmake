file(REMOVE_RECURSE
  "CMakeFiles/rr_runtime.dir/asm_routines.cc.o"
  "CMakeFiles/rr_runtime.dir/asm_routines.cc.o.d"
  "CMakeFiles/rr_runtime.dir/context_allocator.cc.o"
  "CMakeFiles/rr_runtime.dir/context_allocator.cc.o.d"
  "CMakeFiles/rr_runtime.dir/context_loader.cc.o"
  "CMakeFiles/rr_runtime.dir/context_loader.cc.o.d"
  "CMakeFiles/rr_runtime.dir/context_ring.cc.o"
  "CMakeFiles/rr_runtime.dir/context_ring.cc.o.d"
  "CMakeFiles/rr_runtime.dir/cost_model.cc.o"
  "CMakeFiles/rr_runtime.dir/cost_model.cc.o.d"
  "CMakeFiles/rr_runtime.dir/interval_allocator.cc.o"
  "CMakeFiles/rr_runtime.dir/interval_allocator.cc.o.d"
  "librr_runtime.a"
  "librr_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
