# Empty compiler generated dependencies file for rr_exp.
# This may be replaced when dependencies are built.
