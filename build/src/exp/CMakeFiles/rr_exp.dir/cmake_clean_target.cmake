file(REMOVE_RECURSE
  "librr_exp.a"
)
