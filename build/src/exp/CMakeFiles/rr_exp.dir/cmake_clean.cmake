file(REMOVE_RECURSE
  "CMakeFiles/rr_exp.dir/env.cc.o"
  "CMakeFiles/rr_exp.dir/env.cc.o.d"
  "CMakeFiles/rr_exp.dir/sweep.cc.o"
  "CMakeFiles/rr_exp.dir/sweep.cc.o.d"
  "librr_exp.a"
  "librr_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
