
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/machine_mt_kernel.cc" "src/kernel/CMakeFiles/rr_kernel.dir/machine_mt_kernel.cc.o" "gcc" "src/kernel/CMakeFiles/rr_kernel.dir/machine_mt_kernel.cc.o.d"
  "/root/repo/src/kernel/rotation_kernel.cc" "src/kernel/CMakeFiles/rr_kernel.dir/rotation_kernel.cc.o" "gcc" "src/kernel/CMakeFiles/rr_kernel.dir/rotation_kernel.cc.o.d"
  "/root/repo/src/kernel/twophase_kernel.cc" "src/kernel/CMakeFiles/rr_kernel.dir/twophase_kernel.cc.o" "gcc" "src/kernel/CMakeFiles/rr_kernel.dir/twophase_kernel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/rr_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/rr_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/rr_base.dir/DependInfo.cmake"
  "/root/repo/build/src/assembler/CMakeFiles/rr_assembler.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/rr_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
