# Empty compiler generated dependencies file for rr_kernel.
# This may be replaced when dependencies are built.
