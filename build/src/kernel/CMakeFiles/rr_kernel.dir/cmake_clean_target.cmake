file(REMOVE_RECURSE
  "librr_kernel.a"
)
