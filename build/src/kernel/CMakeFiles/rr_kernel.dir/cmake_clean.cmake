file(REMOVE_RECURSE
  "CMakeFiles/rr_kernel.dir/machine_mt_kernel.cc.o"
  "CMakeFiles/rr_kernel.dir/machine_mt_kernel.cc.o.d"
  "CMakeFiles/rr_kernel.dir/rotation_kernel.cc.o"
  "CMakeFiles/rr_kernel.dir/rotation_kernel.cc.o.d"
  "CMakeFiles/rr_kernel.dir/twophase_kernel.cc.o"
  "CMakeFiles/rr_kernel.dir/twophase_kernel.cc.o.d"
  "librr_kernel.a"
  "librr_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
