file(REMOVE_RECURSE
  "librr_machine.a"
)
