file(REMOVE_RECURSE
  "CMakeFiles/rr_machine.dir/cpu.cc.o"
  "CMakeFiles/rr_machine.dir/cpu.cc.o.d"
  "CMakeFiles/rr_machine.dir/memory.cc.o"
  "CMakeFiles/rr_machine.dir/memory.cc.o.d"
  "CMakeFiles/rr_machine.dir/pipeline_timing.cc.o"
  "CMakeFiles/rr_machine.dir/pipeline_timing.cc.o.d"
  "CMakeFiles/rr_machine.dir/register_file.cc.o"
  "CMakeFiles/rr_machine.dir/register_file.cc.o.d"
  "CMakeFiles/rr_machine.dir/relocation_unit.cc.o"
  "CMakeFiles/rr_machine.dir/relocation_unit.cc.o.d"
  "librr_machine.a"
  "librr_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
