# Empty dependencies file for rr_machine.
# This may be replaced when dependencies are built.
