
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machine/cpu.cc" "src/machine/CMakeFiles/rr_machine.dir/cpu.cc.o" "gcc" "src/machine/CMakeFiles/rr_machine.dir/cpu.cc.o.d"
  "/root/repo/src/machine/memory.cc" "src/machine/CMakeFiles/rr_machine.dir/memory.cc.o" "gcc" "src/machine/CMakeFiles/rr_machine.dir/memory.cc.o.d"
  "/root/repo/src/machine/pipeline_timing.cc" "src/machine/CMakeFiles/rr_machine.dir/pipeline_timing.cc.o" "gcc" "src/machine/CMakeFiles/rr_machine.dir/pipeline_timing.cc.o.d"
  "/root/repo/src/machine/register_file.cc" "src/machine/CMakeFiles/rr_machine.dir/register_file.cc.o" "gcc" "src/machine/CMakeFiles/rr_machine.dir/register_file.cc.o.d"
  "/root/repo/src/machine/relocation_unit.cc" "src/machine/CMakeFiles/rr_machine.dir/relocation_unit.cc.o" "gcc" "src/machine/CMakeFiles/rr_machine.dir/relocation_unit.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/rr_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/rr_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
