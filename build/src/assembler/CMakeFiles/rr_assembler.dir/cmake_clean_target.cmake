file(REMOVE_RECURSE
  "librr_assembler.a"
)
