# Empty compiler generated dependencies file for rr_assembler.
# This may be replaced when dependencies are built.
