file(REMOVE_RECURSE
  "CMakeFiles/rr_assembler.dir/assembler.cc.o"
  "CMakeFiles/rr_assembler.dir/assembler.cc.o.d"
  "librr_assembler.a"
  "librr_assembler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_assembler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
