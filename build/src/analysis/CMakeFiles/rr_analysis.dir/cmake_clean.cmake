file(REMOVE_RECURSE
  "CMakeFiles/rr_analysis.dir/efficiency_model.cc.o"
  "CMakeFiles/rr_analysis.dir/efficiency_model.cc.o.d"
  "librr_analysis.a"
  "librr_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
