# Empty dependencies file for rr_ext.
# This may be replaced when dependencies are built.
