
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ext/adaptive.cc" "src/ext/CMakeFiles/rr_ext.dir/adaptive.cc.o" "gcc" "src/ext/CMakeFiles/rr_ext.dir/adaptive.cc.o.d"
  "/root/repo/src/ext/context_cache.cc" "src/ext/CMakeFiles/rr_ext.dir/context_cache.cc.o" "gcc" "src/ext/CMakeFiles/rr_ext.dir/context_cache.cc.o.d"
  "/root/repo/src/ext/multi_rrm.cc" "src/ext/CMakeFiles/rr_ext.dir/multi_rrm.cc.o" "gcc" "src/ext/CMakeFiles/rr_ext.dir/multi_rrm.cc.o.d"
  "/root/repo/src/ext/software_only.cc" "src/ext/CMakeFiles/rr_ext.dir/software_only.cc.o" "gcc" "src/ext/CMakeFiles/rr_ext.dir/software_only.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/multithread/CMakeFiles/rr_mt.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/rr_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/rr_base.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/rr_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/assembler/CMakeFiles/rr_assembler.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/rr_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
