file(REMOVE_RECURSE
  "librr_ext.a"
)
