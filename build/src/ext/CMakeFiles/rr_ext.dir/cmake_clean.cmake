file(REMOVE_RECURSE
  "CMakeFiles/rr_ext.dir/adaptive.cc.o"
  "CMakeFiles/rr_ext.dir/adaptive.cc.o.d"
  "CMakeFiles/rr_ext.dir/context_cache.cc.o"
  "CMakeFiles/rr_ext.dir/context_cache.cc.o.d"
  "CMakeFiles/rr_ext.dir/multi_rrm.cc.o"
  "CMakeFiles/rr_ext.dir/multi_rrm.cc.o.d"
  "CMakeFiles/rr_ext.dir/software_only.cc.o"
  "CMakeFiles/rr_ext.dir/software_only.cc.o.d"
  "librr_ext.a"
  "librr_ext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
