file(REMOVE_RECURSE
  "librr_mt.a"
)
