file(REMOVE_RECURSE
  "CMakeFiles/rr_mt.dir/context_policy.cc.o"
  "CMakeFiles/rr_mt.dir/context_policy.cc.o.d"
  "CMakeFiles/rr_mt.dir/fault_model.cc.o"
  "CMakeFiles/rr_mt.dir/fault_model.cc.o.d"
  "CMakeFiles/rr_mt.dir/mt_processor.cc.o"
  "CMakeFiles/rr_mt.dir/mt_processor.cc.o.d"
  "CMakeFiles/rr_mt.dir/stats_report.cc.o"
  "CMakeFiles/rr_mt.dir/stats_report.cc.o.d"
  "CMakeFiles/rr_mt.dir/workload.cc.o"
  "CMakeFiles/rr_mt.dir/workload.cc.o.d"
  "librr_mt.a"
  "librr_mt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rr_mt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
