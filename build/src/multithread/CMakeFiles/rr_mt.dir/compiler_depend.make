# Empty compiler generated dependencies file for rr_mt.
# This may be replaced when dependencies are built.
