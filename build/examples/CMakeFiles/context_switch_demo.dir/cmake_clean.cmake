file(REMOVE_RECURSE
  "CMakeFiles/context_switch_demo.dir/context_switch_demo.cpp.o"
  "CMakeFiles/context_switch_demo.dir/context_switch_demo.cpp.o.d"
  "context_switch_demo"
  "context_switch_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/context_switch_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
