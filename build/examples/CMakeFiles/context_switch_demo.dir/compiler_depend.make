# Empty compiler generated dependencies file for context_switch_demo.
# This may be replaced when dependencies are built.
