file(REMOVE_RECURSE
  "CMakeFiles/latency_tolerance.dir/latency_tolerance.cpp.o"
  "CMakeFiles/latency_tolerance.dir/latency_tolerance.cpp.o.d"
  "latency_tolerance"
  "latency_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
