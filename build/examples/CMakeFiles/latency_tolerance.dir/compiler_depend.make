# Empty compiler generated dependencies file for latency_tolerance.
# This may be replaced when dependencies are built.
