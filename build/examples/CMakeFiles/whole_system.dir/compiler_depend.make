# Empty compiler generated dependencies file for whole_system.
# This may be replaced when dependencies are built.
