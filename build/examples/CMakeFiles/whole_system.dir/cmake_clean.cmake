file(REMOVE_RECURSE
  "CMakeFiles/whole_system.dir/whole_system.cpp.o"
  "CMakeFiles/whole_system.dir/whole_system.cpp.o.d"
  "whole_system"
  "whole_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whole_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
