file(REMOVE_RECURSE
  "CMakeFiles/barrier_phases.dir/barrier_phases.cpp.o"
  "CMakeFiles/barrier_phases.dir/barrier_phases.cpp.o.d"
  "barrier_phases"
  "barrier_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/barrier_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
