# Empty compiler generated dependencies file for register_windows.
# This may be replaced when dependencies are built.
