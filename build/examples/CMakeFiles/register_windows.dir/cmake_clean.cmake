file(REMOVE_RECURSE
  "CMakeFiles/register_windows.dir/register_windows.cpp.o"
  "CMakeFiles/register_windows.dir/register_windows.cpp.o.d"
  "register_windows"
  "register_windows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/register_windows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
