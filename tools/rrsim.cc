/**
 * @file
 * rrsim — run an RRISC program on the cycle-level machine.
 *
 * Usage:
 *   rrsim [options] program.s | program.hex
 *     --regs N        register file size (default 128)
 *     --width W       operand width w (default 6)
 *     --banks B       RRM banks (default 1)
 *     --mode M        relocation mode: or | mux | add (default or)
 *     --delay D       LDRRM delay slots (default 1)
 *     --mem WORDS     memory size in words (default 65536)
 *     --steps S       maximum instructions (default 1000000)
 *     --start LABEL   start at a label (default: 'entry' if present,
 *                     else the image base)
 *     --rrm MASK      initial relocation mask (default 0)
 *     --trace         print every executed instruction
 *     --dump K        dump the first K registers on exit (default 16)
 *
 * A '.hex' input is a plain list of 32-bit words in hex (as written
 * by rrasm -o); anything else is assembled as source.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "assembler/assembler.hh"
#include "machine/cpu.hh"
#include "arg_num.hh"

namespace {

void
usage()
{
    std::fprintf(stderr, "usage: rrsim [options] program.s\n"
                         "see the file header for options\n");
}

bool
endsWith(const std::string &text, const std::string &suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string input;
    std::string start_label;
    rr::machine::CpuConfig config;
    config.memWords = 1u << 16;
    uint64_t max_steps = 1'000'000;
    uint32_t initial_rrm = 0;
    bool trace = false;
    unsigned dump = 16;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        uint64_t value = 0;
        auto parse = [&](const char *option, uint64_t max) {
            return rr::tools::requireUnsigned("rrsim", option,
                                              next_value(), value,
                                              max);
        };
        if (arg == "--regs") {
            if (!parse("--regs", 1u << 20))
                return 64;
            config.numRegs = static_cast<unsigned>(value);
        } else if (arg == "--width") {
            if (!parse("--width", 6))
                return 64;
            config.operandWidth = static_cast<unsigned>(value);
        } else if (arg == "--banks") {
            if (!parse("--banks", 64))
                return 64;
            config.rrmBanks = static_cast<unsigned>(value);
        } else if (arg == "--mode") {
            const char *mode_arg = next_value();
            const std::string mode = mode_arg ? mode_arg : "";
            if (mode == "or") {
                config.relocationMode =
                    rr::machine::RelocationMode::Or;
            } else if (mode == "mux") {
                config.relocationMode =
                    rr::machine::RelocationMode::Mux;
            } else if (mode == "add") {
                config.relocationMode =
                    rr::machine::RelocationMode::Add;
            } else {
                std::fprintf(stderr, "rrsim: bad mode '%s'\n",
                             mode.c_str());
                return 64;
            }
        } else if (arg == "--delay") {
            if (!parse("--delay", 64))
                return 64;
            config.ldrrmDelaySlots = static_cast<unsigned>(value);
        } else if (arg == "--mem") {
            if (!parse("--mem", 1u << 28))
                return 64;
            config.memWords = static_cast<size_t>(value);
        } else if (arg == "--steps") {
            if (!parse("--steps",
                       std::numeric_limits<uint64_t>::max()))
                return 64;
            max_steps = value;
        } else if (arg == "--start") {
            const char *label = next_value();
            if (label == nullptr) {
                usage();
                return 64;
            }
            start_label = label;
        } else if (arg == "--rrm") {
            if (!parse("--rrm", 0xffffffffull))
                return 64;
            initial_rrm = static_cast<uint32_t>(value);
        } else if (arg == "--trace") {
            trace = true;
        } else if (arg == "--dump") {
            if (!parse("--dump", 1u << 20))
                return 64;
            dump = static_cast<unsigned>(value);
        } else if (arg == "-h" || arg == "--help") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "rrsim: unknown option '%s'\n",
                         arg.c_str());
            return 64;
        } else if (input.empty()) {
            input = arg;
        } else {
            usage();
            return 64;
        }
    }
    if (input.empty()) {
        usage();
        return 64;
    }

    std::ifstream in(input);
    if (!in) {
        std::fprintf(stderr, "rrsim: cannot open '%s'\n",
                     input.c_str());
        return 64;
    }

    uint32_t base = 0;
    std::vector<uint32_t> image;
    uint32_t start_pc = 0;
    bool have_start = false;

    if (endsWith(input, ".hex")) {
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty())
                continue;
            image.push_back(static_cast<uint32_t>(
                std::strtoul(line.c_str(), nullptr, 16)));
        }
    } else {
        std::ostringstream source;
        source << in.rdbuf();
        const rr::assembler::Program program =
            rr::assembler::assemble(source.str());
        if (!program.ok()) {
            for (const auto &error : program.errors) {
                std::fprintf(stderr, "%s: %s\n", input.c_str(),
                             error.str().c_str());
            }
            return 1;
        }
        base = program.base;
        image = program.words;
        const std::string label =
            start_label.empty() ? "entry" : start_label;
        const auto it = program.symbols.find(label);
        if (it != program.symbols.end()) {
            start_pc = it->second;
            have_start = true;
        } else if (!start_label.empty()) {
            std::fprintf(stderr, "rrsim: no label '%s'\n",
                         start_label.c_str());
            return 64;
        }
    }

    rr::machine::Cpu cpu(config);
    cpu.mem().loadImage(base, image);
    cpu.setPc(have_start ? start_pc : base);
    cpu.setRrmImmediate(initial_rrm);

    if (trace) {
        cpu.setTraceHook([](const rr::machine::TraceEntry &entry) {
            std::printf("%8lu  rrm=0x%02x  %6u: %s\n",
                        static_cast<unsigned long>(entry.cycle),
                        entry.rrm, entry.pc, entry.text.c_str());
        });
    }

    cpu.run(max_steps);

    std::printf("\ncycles: %lu  instructions: %lu  pc: %u\n",
                static_cast<unsigned long>(cpu.cycles()),
                static_cast<unsigned long>(
                    cpu.instructionsRetired()),
                cpu.pc());
    std::printf("state: %s%s  trap: %s  psw: 0x%x  rrm: 0x%x  "
                "faults: %lu\n",
                cpu.halted() ? "halted" : "running",
                cpu.instructionsRetired() >= max_steps
                    ? " (step limit)"
                    : "",
                rr::machine::trapName(cpu.trap()), cpu.psw(),
                cpu.rrm(),
                static_cast<unsigned long>(cpu.faultCount()));
    for (unsigned r = 0; r < dump && r < config.numRegs; ++r) {
        std::printf("r%-3u = 0x%08x%s", r, cpu.regs().read(r),
                    (r % 4 == 3) ? "\n" : "  ");
    }
    if (dump % 4 != 0)
        std::printf("\n");
    return cpu.trap() == rr::machine::TrapKind::None ? 0 : 3;
}
