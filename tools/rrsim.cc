/**
 * @file
 * rrsim — run an RRISC program on the cycle-level machine.
 *
 * Usage:
 *   rrsim [options] program.s | program.hex
 *     --regs N        register file size (default 128)
 *     --width W       operand width w (default 6)
 *     --banks B       RRM banks (default 1)
 *     --mode M        relocation mode: or | mux | add (default or)
 *     --delay D       LDRRM delay slots (default 1)
 *     --mem WORDS     memory size in words (default 65536)
 *     --steps S       maximum instructions (default 1000000)
 *     --start LABEL   start at a label (default: 'entry' if present,
 *                     else the image base)
 *     --rrm MASK      initial relocation mask (default 0)
 *     --trace         print every executed instruction
 *     --trace=FILE    write a structured "rr.trace.v1" JSONL trace
 *                     (one Instruction event per executed
 *                     instruction; docs/TRACE.md)
 *     --dump K        dump the first K registers on exit (default 16)
 *     --json          print the final machine state as JSON
 *     --quiet         suppress the state and register dump
 *
 * Checkpointing (rr.ckpt.v1, docs/CKPT.md):
 *     --checkpoint FILE     write a snapshot to FILE every
 *                           checkpoint interval and at exit
 *     --checkpoint-every N  snapshot cadence in instructions
 *                           (default 1024)
 *     --resume FILE         restore the machine from FILE and
 *                           continue; takes no program argument —
 *                           the machine configuration, memory, and
 *                           registers all come from the snapshot
 *     --rewind N            run to the end, then restore the nearest
 *                           in-memory snapshot and deterministically
 *                           re-execute; only the final N
 *                           instructions are traced/printed
 *
 * A '.hex' input is a plain list of 32-bit words in hex (as written
 * by rrasm -o); anything else is assembled as source.
 *
 * Exit status (docs/TOOLS.md): 0 on a clean halt, 1 on assembly
 * errors or a machine trap, 2 when files cannot be read or written
 * or a checkpoint is corrupt/incompatible, 64 on usage errors
 * (including unknown trailing arguments).
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "assembler/assembler.hh"
#include "ckpt/io.hh"
#include "ckpt/snapshot.hh"
#include "machine/cpu.hh"
#include "trace/sink.hh"
#include "cli.hh"

namespace {

const char *const kUsage =
    "usage: rrsim [options] program.s | program.hex\n"
    "  --regs N      register file size (default 128)\n"
    "  --width W     operand width w (default 6)\n"
    "  --banks B     RRM banks (default 1)\n"
    "  --mode M      relocation mode: or | mux | add (default or)\n"
    "  --delay D     LDRRM delay slots (default 1)\n"
    "  --mem WORDS   memory size in words (default 65536)\n"
    "  --steps S     maximum instructions (default 1000000)\n"
    "  --start LABEL start at a label (default 'entry' or base)\n"
    "  --rrm MASK    initial relocation mask (default 0)\n"
    "  --trace       print every executed instruction\n"
    "  --trace=FILE  write a structured JSONL trace to FILE\n"
    "  --dump K      dump the first K registers on exit\n"
    "  --json        print the final machine state as JSON\n"
    "  --quiet       suppress the state and register dump\n"
    "  --checkpoint FILE     write rr.ckpt.v1 snapshots to FILE\n"
    "  --checkpoint-every N  snapshot cadence (default 1024)\n"
    "  --resume FILE         restore from FILE (no program arg)\n"
    "  --rewind N            re-execute only the last N instructions\n";

/** One in-memory snapshot for --rewind. */
struct RewindSnap
{
    uint64_t instructions = 0;
    std::vector<uint8_t> doc;
};

/** Sealed rr.ckpt.v1 document of @p cpu's current state. */
std::vector<uint8_t>
machineSnapshot(const rr::machine::Cpu &cpu)
{
    rr::ckpt::Writer writer;
    rr::ckpt::writeMeta(writer, "machine", cpu.fingerprint());
    cpu.saveState(writer);
    return writer.seal();
}

bool
endsWith(const std::string &text, const std::string &suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rr::tools;

    rr::machine::CpuConfig config;
    config.memWords = 1u << 16;
    uint64_t regs = 0;
    bool regs_seen = false;
    uint64_t width = 0;
    bool width_seen = false;
    uint64_t banks = 0;
    bool banks_seen = false;
    std::string mode;
    uint64_t delay = 0;
    bool delay_seen = false;
    uint64_t mem = 0;
    bool mem_seen = false;
    uint64_t max_steps = 1'000'000;
    std::string start_label;
    uint64_t initial_rrm = 0;
    bool rrm_seen = false;
    bool trace = false;
    std::string trace_file;
    uint64_t dump = 16;
    bool json = false;
    bool quiet = false;
    std::string ckpt_path;
    uint64_t ckpt_every = 1024;
    bool ckpt_every_seen = false;
    std::string resume_path;
    uint64_t rewind = 0;

    OptionParser parser("rrsim", kUsage);
    parser.number("--regs", &regs, 1, 1u << 20, &regs_seen);
    parser.number("--width", &width, 1, 6, &width_seen);
    parser.number("--banks", &banks, 1, 64, &banks_seen);
    parser.choice("--mode", &mode, {"or", "mux", "add"});
    parser.number("--delay", &delay, 0, 64, &delay_seen);
    parser.number("--mem", &mem, 1, 1u << 28, &mem_seen);
    parser.number("--steps", &max_steps, 0,
                  std::numeric_limits<uint64_t>::max());
    parser.value("--start", &start_label);
    parser.number("--rrm", &initial_rrm, 0, 0xffffffffull,
                  &rrm_seen);
    parser.flagOrValue("--trace", &trace, &trace_file);
    parser.number("--dump", &dump, 0, 1u << 20);
    parser.flag("--json", &json);
    parser.flag("--quiet", &quiet);
    parser.value("--checkpoint", &ckpt_path);
    parser.number("--checkpoint-every", &ckpt_every, 1,
                  std::numeric_limits<uint64_t>::max(),
                  &ckpt_every_seen);
    parser.value("--resume", &resume_path);
    parser.number("--rewind", &rewind, 1,
                  std::numeric_limits<uint64_t>::max());
    const int parse_status = parser.parse(argc, argv);
    if (parse_status >= 0)
        return parse_status;

    const bool resuming = !resume_path.empty();
    if (ckpt_every_seen && ckpt_path.empty())
        return parser.fail(
            "--checkpoint-every needs --checkpoint FILE");
    if (rewind > 0 && (resuming || !ckpt_path.empty()))
        return parser.fail(
            "--rewind cannot be combined with --resume/--checkpoint");
    if (resuming) {
        if (!parser.positionals().empty())
            return parser.fail("--resume takes no program file; the "
                               "snapshot holds the whole machine");
        if (regs_seen || width_seen || banks_seen || !mode.empty() ||
            delay_seen || mem_seen || !start_label.empty() ||
            rrm_seen)
            return parser.fail("machine configuration flags cannot "
                               "be combined with --resume; the "
                               "snapshot defines the machine");
    } else if (parser.positionals().size() != 1) {
        return parser.positionals().empty()
                   ? parser.fail("expects one program file")
                   : parser.fail("unexpected argument '%s'",
                                 parser.positionals()[1].c_str());
    }
    const std::string input =
        resuming ? resume_path : parser.positionals().front();

    if (regs_seen)
        config.numRegs = static_cast<unsigned>(regs);
    if (width_seen)
        config.operandWidth = static_cast<unsigned>(width);
    if (banks_seen)
        config.rrmBanks = static_cast<unsigned>(banks);
    if (mode == "mux")
        config.relocationMode = rr::machine::RelocationMode::Mux;
    else if (mode == "add")
        config.relocationMode = rr::machine::RelocationMode::Add;
    else if (mode == "or" || mode.empty())
        config.relocationMode = rr::machine::RelocationMode::Or;
    if (delay_seen)
        config.ldrrmDelaySlots = static_cast<unsigned>(delay);
    if (mem_seen)
        config.memWords = static_cast<size_t>(mem);

    std::unique_ptr<rr::machine::Cpu> resumed;
    if (resuming) {
        // The snapshot defines the machine: geometry, memory,
        // registers, relocation state, and position. Any corruption
        // or incompatibility is an rr.ckpt error (exit 2), never an
        // abort.
        try {
            const std::vector<uint8_t> doc =
                rr::ckpt::readFile(resume_path);
            const rr::ckpt::Reader reader(doc);
            const std::string kind = rr::ckpt::metaKind(reader);
            if (kind != "machine")
                throw rr::ckpt::Error(
                    "'" + resume_path + "' is a \"" + kind +
                    "\" snapshot, not a machine snapshot");
            config =
                rr::machine::Cpu::configFromCheckpoint(reader);
            resumed = std::make_unique<rr::machine::Cpu>(config);
            rr::ckpt::checkMeta(reader, "machine",
                                resumed->fingerprint());
            resumed->restoreState(reader);
        } catch (const rr::ckpt::Error &error) {
            std::fprintf(stderr, "rrsim: %s\n", error.what());
            return kExitFailure;
        }
    }

    std::ifstream in;
    if (!resuming) {
        in.open(input);
        if (!in) {
            std::fprintf(stderr, "rrsim: cannot open '%s'\n",
                         input.c_str());
            return kExitFailure;
        }
    }

    uint32_t base = 0;
    std::vector<uint32_t> image;
    uint32_t start_pc = 0;
    bool have_start = false;

    if (resuming) {
        // Nothing to load; the snapshot already holds memory.
    } else if (endsWith(input, ".hex")) {
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty())
                continue;
            image.push_back(static_cast<uint32_t>(
                std::strtoul(line.c_str(), nullptr, 16)));
        }
    } else {
        std::ostringstream source;
        source << in.rdbuf();
        const rr::assembler::Program program =
            rr::assembler::assemble(source.str());
        if (!program.ok()) {
            for (const auto &error : program.errors) {
                std::fprintf(stderr, "%s: %s\n", input.c_str(),
                             error.str().c_str());
            }
            return kExitProblems;
        }
        base = program.base;
        image = program.words;
        const std::string label =
            start_label.empty() ? "entry" : start_label;
        const auto it = program.symbols.find(label);
        if (it != program.symbols.end()) {
            start_pc = it->second;
            have_start = true;
        } else if (!start_label.empty()) {
            std::fprintf(stderr, "rrsim: no label '%s' in '%s'\n",
                         start_label.c_str(), input.c_str());
            return kExitProblems;
        }
    }

    if (!resumed) {
        resumed = std::make_unique<rr::machine::Cpu>(config);
        resumed->mem().loadImage(base, image);
        resumed->setPc(have_start ? start_pc : base);
        resumed->setRrmImmediate(static_cast<uint32_t>(initial_rrm));
    }
    rr::machine::Cpu &cpu = *resumed;

    std::ofstream trace_out;
    std::unique_ptr<rr::trace::StreamJsonSink> trace_sink;
    if (!trace_file.empty()) {
        trace_out.open(trace_file, std::ios::binary);
        if (!trace_out) {
            std::fprintf(stderr, "rrsim: cannot write '%s'\n",
                         trace_file.c_str());
            return kExitFailure;
        }
        trace_sink =
            std::make_unique<rr::trace::StreamJsonSink>(trace_out);
    }
    const auto attachTraceHook = [&]() {
        if (trace_sink != nullptr) {
            cpu.setTraceHook(
                [&](const rr::machine::TraceEntry &entry) {
                    rr::trace::TraceEvent event;
                    event.kind = rr::trace::EventKind::Instruction;
                    event.ctx = entry.rrm;
                    event.cycle = entry.cycle;
                    event.aux = entry.pc;
                    trace_sink->emit(event);
                });
        } else if (trace) {
            cpu.setTraceHook(
                [](const rr::machine::TraceEntry &entry) {
                    std::printf(
                        "%8lu  rrm=0x%02x  %6u: %s\n",
                        static_cast<unsigned long>(entry.cycle),
                        entry.rrm, entry.pc, entry.text.c_str());
                });
        }
    };

    uint64_t executed = 0;
    try {
        if (rewind > 0) {
            // Flight-recorder mode: run silently, snapshotting at a
            // fixed cadence, then restore the nearest snapshot and
            // deterministically re-execute — attaching the trace
            // hooks only for the final N instructions. The re-run
            // retraces the straight run's suffix exactly
            // (docs/CKPT.md, rewind semantics).
            constexpr uint64_t kRewindCadence = 1024;
            constexpr std::size_t kRewindRing = 64;
            const RewindSnap initial{0, machineSnapshot(cpu)};
            std::deque<RewindSnap> ring;
            while (executed < max_steps) {
                const uint64_t chunk = std::min(
                    kRewindCadence, max_steps - executed);
                const uint64_t n = cpu.run(chunk);
                executed += n;
                if (n < chunk)
                    break;
                ring.push_back({executed, machineSnapshot(cpu)});
                if (ring.size() > kRewindRing)
                    ring.pop_front();
            }
            const uint64_t total = executed;
            const uint64_t target =
                total - std::min(rewind, total);
            const RewindSnap *nearest = &initial;
            for (const RewindSnap &snap : ring)
                if (snap.instructions <= target)
                    nearest = &snap;
            {
                const rr::ckpt::Reader reader(nearest->doc);
                rr::ckpt::checkMeta(reader, "machine",
                                    cpu.fingerprint());
                cpu.restoreState(reader);
            }
            if (target > nearest->instructions)
                cpu.run(target - nearest->instructions);
            attachTraceHook();
            if (total > target)
                cpu.run(total - target);
        } else if (!ckpt_path.empty()) {
            attachTraceHook();
            while (executed < max_steps) {
                const uint64_t chunk =
                    std::min(ckpt_every, max_steps - executed);
                const uint64_t n = cpu.run(chunk);
                executed += n;
                rr::ckpt::writeFile(ckpt_path,
                                    machineSnapshot(cpu));
                if (n < chunk)
                    break;
            }
        } else {
            attachTraceHook();
            executed = cpu.run(max_steps);
        }
    } catch (const rr::ckpt::Error &error) {
        std::fprintf(stderr, "rrsim: %s\n", error.what());
        return kExitFailure;
    }
    if (trace_sink != nullptr)
        trace_sink->flush();

    const bool step_limit = executed >= max_steps;
    if (json) {
        std::printf(
            "{\"schema\":\"rr.rrsim.v1\",\"input\":\"%s\","
            "\"cycles\":%llu,\"instructions\":%llu,\"pc\":%u,"
            "\"halted\":%s,\"stepLimit\":%s,\"trap\":\"%s\","
            "\"psw\":%u,\"rrm\":%u,\"faults\":%llu",
            jsonEscape(input).c_str(),
            static_cast<unsigned long long>(cpu.cycles()),
            static_cast<unsigned long long>(
                cpu.instructionsRetired()),
            cpu.pc(), cpu.halted() ? "true" : "false",
            step_limit ? "true" : "false",
            rr::machine::trapName(cpu.trap()), cpu.psw(), cpu.rrm(),
            static_cast<unsigned long long>(cpu.faultCount()));
        if (trace_sink != nullptr)
            std::printf(",\"traceEvents\":%llu",
                        static_cast<unsigned long long>(
                            trace_sink->emitted()));
        std::printf("}\n");
    } else if (!quiet) {
        std::printf("\ncycles: %lu  instructions: %lu  pc: %u\n",
                    static_cast<unsigned long>(cpu.cycles()),
                    static_cast<unsigned long>(
                        cpu.instructionsRetired()),
                    cpu.pc());
        std::printf("state: %s%s  trap: %s  psw: 0x%x  rrm: 0x%x  "
                    "faults: %lu\n",
                    cpu.halted() ? "halted" : "running",
                    step_limit ? " (step limit)" : "",
                    rr::machine::trapName(cpu.trap()), cpu.psw(),
                    cpu.rrm(),
                    static_cast<unsigned long>(cpu.faultCount()));
        for (unsigned r = 0;
             r < dump && r < config.numRegs; ++r) {
            std::printf("r%-3u = 0x%08x%s", r, cpu.regs().read(r),
                        (r % 4 == 3) ? "\n" : "  ");
        }
        if (dump % 4 != 0)
            std::printf("\n");
    }
    return cpu.trap() == rr::machine::TrapKind::None ? kExitOk
                                                     : kExitProblems;
}
