/**
 * @file
 * rrfuzz — seeded differential fuzzing over the RRISC simulators.
 *
 * Two modes:
 *
 *   rrfuzz --seed N --samples K [--kind NAME]...
 *       Generate and check K samples. Deterministic: the same seed
 *       and sample count always produce the same samples, the same
 *       verdicts, and byte-identical repro files (--out-dir).
 *
 *   rrfuzz FILE...
 *       Replay repro files (the corpus-replay mode ctest uses).
 *
 * Exit codes follow docs/TOOLS.md: 0 all samples clean, 1 oracle
 * violations found, 2 unreadable/invalid repro files, 64 usage.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "cli.hh"
#include "fuzz/fuzz.hh"

namespace {

constexpr const char *kUsage =
    "usage: rrfuzz [options] [repro-file...]\n"
    "\n"
    "Fuzzing (no positional arguments):\n"
    "  --seed N             master seed (default 1)\n"
    "  --samples K          number of samples to run (default 100)\n"
    "  --kind NAME          restrict to a sample kind (repeatable;\n"
    "                       see --list-kinds)\n"
    "  --out-dir DIR        write minimized repro files into DIR\n"
    "  --max-failures N     stop after N failures (default: no limit)\n"
    "  --no-shrink          keep failing samples unminimized\n"
    "  --max-shrink-steps N oracle budget per shrink (default 400)\n"
    "\n"
    "Replay (positional arguments): check each repro file; exit 1 on\n"
    "any oracle violation, 2 on unreadable or invalid files.\n"
    "\n"
    "Common:\n"
    "  --list-kinds         print the sample kinds and exit\n"
    "  --json               machine-readable report on stdout\n"
    "  --quiet              suppress per-failure output\n"
    "  --help, --version\n";

int
replayFiles(const std::vector<std::string> &paths, bool quiet,
            bool json)
{
    using namespace rr;
    bool readError = false;
    unsigned violations = 0;
    std::string jsonBody;
    for (const std::string &path : paths) {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "rrfuzz: cannot read %s\n",
                         path.c_str());
            readError = true;
            continue;
        }
        std::ostringstream text;
        text << in.rdbuf();

        fuzz::AnySample sample;
        std::string error;
        if (!fuzz::parseRepro(text.str(), sample, error)) {
            std::fprintf(stderr, "rrfuzz: %s: %s\n", path.c_str(),
                         error.c_str());
            readError = true;
            continue;
        }
        const fuzz::Problems problems = fuzz::checkSample(sample);
        if (json) {
            if (!jsonBody.empty())
                jsonBody += ",";
            jsonBody += "\n    {\"file\": \"" +
                        tools::jsonEscape(path) + "\", \"kind\": \"" +
                        fuzz::kindName(fuzz::kindOf(sample)) +
                        "\", \"problems\": [";
            for (size_t i = 0; i < problems.size(); ++i) {
                if (i)
                    jsonBody += ", ";
                jsonBody +=
                    "\"" + tools::jsonEscape(problems[i]) + "\"";
            }
            jsonBody += "]}";
        }
        if (problems.empty()) {
            if (!quiet && !json)
                std::printf("PASS %s\n", path.c_str());
            continue;
        }
        ++violations;
        if (!quiet && !json) {
            std::printf("FAIL %s\n", path.c_str());
            for (const std::string &p : problems)
                std::printf("  %s\n", p.c_str());
        }
    }
    if (json) {
        std::printf("{\n  \"mode\": \"replay\",\n  \"files\": %zu,\n"
                    "  \"violations\": %u,\n  \"results\": [%s\n  ]\n"
                    "}\n",
                    paths.size(), violations, jsonBody.c_str());
    }
    if (readError)
        return rr::tools::kExitFailure;
    return violations == 0 ? rr::tools::kExitOk
                           : rr::tools::kExitProblems;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rr;

    uint64_t seed = 1;
    uint64_t samples = 100;
    uint64_t maxFailures = 0;
    uint64_t maxShrinkSteps = 400;
    std::vector<std::string> kindNames;
    std::string outDir;
    bool noShrink = false;
    bool listKinds = false;
    bool quiet = false;
    bool json = false;

    tools::OptionParser parser("rrfuzz", kUsage);
    parser.number("--seed", &seed, 0, ~0ull);
    parser.number("--samples", &samples, 1, ~0ull);
    parser.number("--max-failures", &maxFailures, 0, ~0ull);
    parser.number("--max-shrink-steps", &maxShrinkSteps, 0, 1u << 20);
    parser.repeated("--kind", &kindNames);
    parser.value("--out-dir", &outDir);
    parser.flag("--no-shrink", &noShrink);
    parser.flag("--list-kinds", &listKinds);
    parser.flag("--quiet", &quiet);
    parser.flag("--json", &json);
    const int early = parser.parse(argc, argv);
    if (early >= 0)
        return early;

    if (listKinds) {
        for (unsigned i = 0; i < fuzz::numSampleKinds; ++i)
            std::printf(
                "%s\n",
                fuzz::kindName(static_cast<fuzz::SampleKind>(i)));
        return tools::kExitOk;
    }

    if (!parser.positionals().empty())
        return replayFiles(parser.positionals(), quiet, json);

    fuzz::FuzzOptions options;
    options.seed = seed;
    options.samples = samples;
    options.outDir = outDir;
    options.shrink = !noShrink;
    options.maxShrinkSteps = static_cast<unsigned>(maxShrinkSteps);
    options.maxFailures = maxFailures;
    for (const std::string &name : kindNames) {
        fuzz::SampleKind kind;
        if (!fuzz::kindFromName(name, kind))
            return parser.fail("unknown sample kind '%s'",
                               name.c_str());
        options.kinds.push_back(kind);
    }

    const fuzz::FuzzReport report =
        fuzz::runFuzz(options, quiet ? nullptr : &std::cerr);

    if (json) {
        std::printf("{\n  \"mode\": \"fuzz\",\n  \"seed\": %llu,\n"
                    "  \"samples\": %llu,\n  \"failures\": [",
                    static_cast<unsigned long long>(seed),
                    static_cast<unsigned long long>(
                        report.samplesRun));
        for (size_t i = 0; i < report.failures.size(); ++i) {
            const fuzz::Failure &f = report.failures[i];
            if (i)
                std::printf(",");
            std::printf("\n    {\"kind\": \"%s\", \"index\": %llu, "
                        "\"sampleSeed\": %llu, \"problems\": [",
                        fuzz::kindName(f.kind),
                        static_cast<unsigned long long>(f.index),
                        static_cast<unsigned long long>(
                            f.sampleSeed));
            for (size_t j = 0; j < f.problems.size(); ++j) {
                if (j)
                    std::printf(", ");
                std::printf(
                    "\"%s\"",
                    tools::jsonEscape(f.problems[j]).c_str());
            }
            std::printf("]}");
        }
        std::printf("\n  ]\n}\n");
    } else if (!quiet) {
        std::fprintf(stderr, "rrfuzz: %llu samples, %zu failure(s)\n",
                     static_cast<unsigned long long>(
                         report.samplesRun),
                     report.failures.size());
    }
    return report.clean() ? tools::kExitOk : tools::kExitProblems;
}
