/**
 * @file
 * rrserve — the simulation-as-a-service daemon (docs/SERVE.md).
 *
 * Default mode binds 127.0.0.1 and serves POST /v1/simulate,
 * GET /v1/stats, and GET /healthz until SIGTERM/SIGINT, then drains
 * the admission queue and exits 0. `--hammer` instead runs the
 * built-in load generator against an in-process server and reports
 * p50/p99 latency plus the identity and backpressure checks.
 */

#include <csignal>
#include <cstdio>
#include <iostream>

#include "cli.hh"
#include "serve/hammer.hh"
#include "serve/server.hh"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

constexpr const char *kUsage =
    "usage: rrserve [options]\n"
    "\n"
    "Serve register-relocation simulations over HTTP/1.1 on the\n"
    "loopback (docs/SERVE.md documents the protocol).\n"
    "\n"
    "daemon options:\n"
    "  --port N           port to bind (default 8377, 0 = ephemeral)\n"
    "  --queue-depth N    admission queue capacity (default 64)\n"
    "  --batch-max N      scheduler batch size (default 32)\n"
    "  --cache-entries N  result-cache entries (default 256, 0 off)\n"
    "  --jobs N           simulation worker threads (0 = auto)\n"
    "  --max-body N       request body cap in bytes (default 1 MiB)\n"
    "\n"
    "load generator:\n"
    "  --hammer           run the built-in load generator and exit\n"
    "  --requests N       hammer request count (default 1024)\n"
    "  --clients N        hammer client threads (default 8)\n"
    "  --specs N          distinct specs to cycle (default 16)\n"
    "  --json             hammer: machine-readable report\n"
    "\n"
    "common:\n"
    "  --quiet            suppress progress output\n"
    "  --help, --version\n";

} // namespace

int
main(int argc, char **argv)
{
    using namespace rr;

    tools::OptionParser parser("rrserve", kUsage);
    uint64_t port = 8377;
    uint64_t queue_depth = 64;
    uint64_t batch_max = 32;
    uint64_t cache_entries = 256;
    uint64_t jobs = 0;
    uint64_t max_body = 1u << 20;
    bool hammer = false;
    uint64_t requests = 1024;
    uint64_t clients = 8;
    uint64_t specs = 16;
    bool json = false;
    bool quiet = false;

    parser.number("--port", &port, 0, 65535);
    parser.number("--queue-depth", &queue_depth, 1, 1u << 16);
    parser.number("--batch-max", &batch_max, 1, 1u << 12);
    parser.number("--cache-entries", &cache_entries, 0, 1u << 20);
    parser.number("--jobs", &jobs, 0, 256);
    parser.number("--max-body", &max_body, 1, 1u << 26);
    parser.flag("--hammer", &hammer);
    parser.number("--requests", &requests, 1, 1u << 24);
    parser.number("--clients", &clients, 1, 256);
    parser.number("--specs", &specs, 1, 4096);
    parser.flag("--json", &json);
    parser.flag("--quiet", &quiet);

    const int early = parser.parse(argc, argv);
    if (early >= 0)
        return early;
    if (!parser.positionals().empty()) {
        return parser.fail("unexpected argument '%s'",
                           parser.positionals().front().c_str());
    }

    if (hammer) {
        serve::HammerOptions options;
        options.requests = requests;
        options.clients = static_cast<unsigned>(clients);
        options.specs = static_cast<unsigned>(specs);
        options.cacheEntries = cache_entries;
        options.jobs = static_cast<unsigned>(jobs);
        options.json = json;
        options.quiet = quiet;
        return serve::runHammer(options, std::cout) == 0
                   ? tools::kExitOk
                   : tools::kExitProblems;
    }

    serve::ServeOptions options;
    options.port = static_cast<uint16_t>(port);
    options.queueDepth = queue_depth;
    options.batchMax = batch_max;
    options.cacheEntries = cache_entries;
    options.jobs = static_cast<unsigned>(jobs);
    options.maxBody = max_body;
    options.stopFlag = &g_stop;

    serve::Server server(options);
    if (!server.start()) {
        std::fprintf(stderr, "rrserve: %s\n", server.error().c_str());
        return tools::kExitFailure;
    }

    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);
    std::signal(SIGPIPE, SIG_IGN);

    if (!quiet) {
        std::printf("rrserve: listening on 127.0.0.1:%u\n",
                    static_cast<unsigned>(server.port()));
        std::fflush(stdout);
    }

    server.run(); // returns after the stop signal, fully drained

    if (!quiet)
        std::printf("rrserve: drained, exiting\n");
    return tools::kExitOk;
}
