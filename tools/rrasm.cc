/**
 * @file
 * rrasm — the RRISC assembler as a command-line tool.
 *
 * Usage:
 *   rrasm [options] input.s
 *     -o FILE       write the image as hex words, one per line
 *     -l            print a listing (address, word, disassembly)
 *     --check N     statically check context boundaries against a
 *                   context of N registers (Section 2.4)
 *     --banks B     interpret operands as bank-selected (Section 5.3)
 *                   when checking
 *
 * Exit status: 0 on success, 1 on assembly errors, 2 on boundary
 * violations, 64 on usage errors.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "assembler/assembler.hh"
#include "checker/boundary_checker.hh"
#include "isa/instruction.hh"

namespace {

void
usage()
{
    std::fprintf(stderr,
                 "usage: rrasm [-o out.hex] [-l] [--check N] "
                 "[--banks B] input.s\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string input;
    std::string output;
    bool listing = false;
    unsigned check_size = 0;
    unsigned banks = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-o" && i + 1 < argc) {
            output = argv[++i];
        } else if (arg == "-l") {
            listing = true;
        } else if (arg == "--check" && i + 1 < argc) {
            check_size = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
        } else if (arg == "--banks" && i + 1 < argc) {
            banks = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
        } else if (arg == "-h" || arg == "--help") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "rrasm: unknown option '%s'\n",
                         arg.c_str());
            usage();
            return 64;
        } else if (input.empty()) {
            input = arg;
        } else {
            usage();
            return 64;
        }
    }
    if (input.empty()) {
        usage();
        return 64;
    }

    std::ifstream in(input);
    if (!in) {
        std::fprintf(stderr, "rrasm: cannot open '%s'\n",
                     input.c_str());
        return 64;
    }
    std::ostringstream source;
    source << in.rdbuf();

    const rr::assembler::Program program =
        rr::assembler::assemble(source.str());
    if (!program.ok()) {
        for (const auto &error : program.errors) {
            std::fprintf(stderr, "%s: %s\n", input.c_str(),
                         error.str().c_str());
        }
        return 1;
    }

    if (listing) {
        for (size_t i = 0; i < program.words.size(); ++i) {
            const uint32_t addr =
                program.base + static_cast<uint32_t>(i);
            std::printf("%6u  %08x  %s\n", addr, program.words[i],
                        rr::isa::disassemble(program.words[i])
                            .c_str());
        }
        if (!program.symbols.empty()) {
            std::printf("\nsymbols:\n");
            for (const auto &[name, addr] : program.symbols)
                std::printf("  %6u  %s\n", addr, name.c_str());
        }
    }

    if (!output.empty()) {
        std::ofstream out(output);
        if (!out) {
            std::fprintf(stderr, "rrasm: cannot write '%s'\n",
                         output.c_str());
            return 64;
        }
        for (const uint32_t word : program.words) {
            char buffer[16];
            std::snprintf(buffer, sizeof(buffer), "%08x\n", word);
            out << buffer;
        }
    }

    if (check_size != 0) {
        rr::checker::CheckOptions options;
        options.multiRrmBanks = banks;
        const auto violations =
            rr::checker::checkProgram(program, check_size, options);
        for (const auto &violation : violations) {
            std::fprintf(stderr, "%s: %s\n", input.c_str(),
                         violation.str().c_str());
        }
        if (!violations.empty()) {
            std::fprintf(stderr,
                         "rrasm: %zu context-boundary violation(s)\n",
                         violations.size());
            return 2;
        }
    }
    return 0;
}
