/**
 * @file
 * rrasm — the RRISC assembler as a command-line tool.
 *
 * Usage:
 *   rrasm [options] input.s
 *     -o FILE       write the image as hex words, one per line
 *     -l            print a listing (address, word, disassembly)
 *     --check N     statically check context boundaries against a
 *                   context of N registers (Section 2.4). This is a
 *                   thin wrapper over the rrlint analyses; run
 *                   `rrlint` directly for the full flow-sensitive
 *                   report.
 *     --banks B     interpret operands as bank-selected (Section 5.3)
 *                   when checking
 *     --json        emit a machine-readable summary on stdout
 *     --quiet       suppress the listing and symbol output
 *
 * Exit status (docs/TOOLS.md): 0 on success, 1 on assembly errors or
 * boundary violations, 2 when files cannot be read or written, 64 on
 * usage errors.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/static/lint.hh"
#include "assembler/assembler.hh"
#include "isa/instruction.hh"
#include "cli.hh"

namespace {

const char *const kUsage =
    "usage: rrasm [-o out.hex] [-l] [--check N] [--banks B]\n"
    "             [--json] [--quiet] input.s\n";

} // namespace

int
main(int argc, char **argv)
{
    using namespace rr::tools;

    std::string output;
    bool listing = false;
    uint64_t check_size = 0;
    uint64_t banks = 0;
    bool json = false;
    bool quiet = false;

    OptionParser parser("rrasm", kUsage);
    parser.value("-o", &output);
    parser.flag("-l", &listing);
    parser.number("--check", &check_size, 1, 64);
    parser.number("--banks", &banks, 0, 64);
    parser.flag("--json", &json);
    parser.flag("--quiet", &quiet);
    const int parse_status = parser.parse(argc, argv);
    if (parse_status >= 0)
        return parse_status;
    if (parser.positionals().size() != 1) {
        return parser.positionals().empty()
                   ? parser.fail("expects one input file")
                   : parser.fail("unexpected argument '%s'",
                                 parser.positionals()[1].c_str());
    }
    const std::string input = parser.positionals().front();

    std::ifstream in(input);
    if (!in) {
        std::fprintf(stderr, "rrasm: cannot open '%s'\n",
                     input.c_str());
        return kExitFailure;
    }
    std::ostringstream source;
    source << in.rdbuf();

    const rr::assembler::Program program =
        rr::assembler::assemble(source.str());
    if (!program.ok()) {
        if (json) {
            std::printf("{\"schema\":\"rr.rrasm.v1\",\"input\":\"%s\","
                        "\"ok\":false,\"errors\":[",
                        jsonEscape(input).c_str());
            for (size_t i = 0; i < program.errors.size(); ++i)
                std::printf("%s\"%s\"", i != 0 ? "," : "",
                            jsonEscape(program.errors[i].str())
                                .c_str());
            std::printf("]}\n");
        }
        for (const auto &error : program.errors) {
            std::fprintf(stderr, "%s: %s\n", input.c_str(),
                         error.str().c_str());
        }
        return kExitProblems;
    }

    if (listing && !quiet) {
        for (size_t i = 0; i < program.words.size(); ++i) {
            const uint32_t addr =
                program.base + static_cast<uint32_t>(i);
            std::printf("%6u  %08x  %s\n", addr, program.words[i],
                        rr::isa::disassemble(program.words[i])
                            .c_str());
        }
        if (!program.symbols.empty()) {
            std::printf("\nsymbols:\n");
            for (const auto &[name, addr] : program.symbols)
                std::printf("  %6u  %s\n", addr, name.c_str());
        }
    }

    if (!output.empty()) {
        std::ofstream out(output);
        if (!out) {
            std::fprintf(stderr, "rrasm: cannot write '%s'\n",
                         output.c_str());
            return kExitFailure;
        }
        for (const uint32_t word : program.words) {
            char buffer[16];
            std::snprintf(buffer, sizeof(buffer), "%08x\n", word);
            out << buffer;
        }
    }

    rr::lint::LintResult check;
    if (check_size != 0) {
        rr::lint::LintOptions options;
        options.declaredContext = static_cast<unsigned>(check_size);
        options.banks = banks > 1 ? static_cast<unsigned>(banks) : 1;
        check = rr::lint::lintProgram(program, options);
        for (const auto &finding : check.findings) {
            std::fprintf(stderr, "%s: %s\n", input.c_str(),
                         finding.str().c_str());
        }
        if (!check.clean()) {
            std::fprintf(stderr,
                         "rrasm: %u error(s), %u warning(s); run "
                         "rrlint for the full report\n",
                         check.errors, check.warnings);
        }
    }

    if (json) {
        std::printf("{\"schema\":\"rr.rrasm.v1\",\"input\":\"%s\","
                    "\"ok\":%s,\"words\":%zu,\"base\":%u",
                    jsonEscape(input).c_str(),
                    check.clean() ? "true" : "false",
                    program.words.size(), program.base);
        if (check_size != 0)
            std::printf(",\"checkErrors\":%u,\"checkWarnings\":%u",
                        check.errors, check.warnings);
        std::printf("}\n");
    }
    return check.clean() ? kExitOk : kExitProblems;
}
