/**
 * @file
 * rrasm — the RRISC assembler as a command-line tool.
 *
 * Usage:
 *   rrasm [options] input.s
 *     -o FILE       write the image as hex words, one per line
 *     -l            print a listing (address, word, disassembly)
 *     --check N     statically check context boundaries against a
 *                   context of N registers (Section 2.4). This is a
 *                   thin wrapper over the rrlint analyses; run
 *                   `rrlint` directly for the full flow-sensitive
 *                   report.
 *     --banks B     interpret operands as bank-selected (Section 5.3)
 *                   when checking
 *
 * Exit status: 0 on success, 1 on assembly errors, 2 on boundary
 * violations, 64 on usage errors.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/static/lint.hh"
#include "assembler/assembler.hh"
#include "isa/instruction.hh"
#include "arg_num.hh"

namespace {

void
usage()
{
    std::fprintf(stderr,
                 "usage: rrasm [-o out.hex] [-l] [--check N] "
                 "[--banks B] input.s\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string input;
    std::string output;
    bool listing = false;
    unsigned check_size = 0;
    unsigned banks = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        uint64_t value = 0;
        if (arg == "-o") {
            const char *name = next_value();
            if (name == nullptr) {
                usage();
                return 64;
            }
            output = name;
        } else if (arg == "-l") {
            listing = true;
        } else if (arg == "--check") {
            if (!rr::tools::requireUnsigned("rrasm", "--check",
                                            next_value(), value, 64) ||
                value == 0) {
                std::fprintf(stderr,
                             "rrasm: --check expects 1..64\n");
                return 64;
            }
            check_size = static_cast<unsigned>(value);
        } else if (arg == "--banks") {
            if (!rr::tools::requireUnsigned("rrasm", "--banks",
                                            next_value(), value, 64))
                return 64;
            banks = static_cast<unsigned>(value);
        } else if (arg == "-h" || arg == "--help") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "rrasm: unknown option '%s'\n",
                         arg.c_str());
            usage();
            return 64;
        } else if (input.empty()) {
            input = arg;
        } else {
            usage();
            return 64;
        }
    }
    if (input.empty()) {
        usage();
        return 64;
    }

    std::ifstream in(input);
    if (!in) {
        std::fprintf(stderr, "rrasm: cannot open '%s'\n",
                     input.c_str());
        return 64;
    }
    std::ostringstream source;
    source << in.rdbuf();

    const rr::assembler::Program program =
        rr::assembler::assemble(source.str());
    if (!program.ok()) {
        for (const auto &error : program.errors) {
            std::fprintf(stderr, "%s: %s\n", input.c_str(),
                         error.str().c_str());
        }
        return 1;
    }

    if (listing) {
        for (size_t i = 0; i < program.words.size(); ++i) {
            const uint32_t addr =
                program.base + static_cast<uint32_t>(i);
            std::printf("%6u  %08x  %s\n", addr, program.words[i],
                        rr::isa::disassemble(program.words[i])
                            .c_str());
        }
        if (!program.symbols.empty()) {
            std::printf("\nsymbols:\n");
            for (const auto &[name, addr] : program.symbols)
                std::printf("  %6u  %s\n", addr, name.c_str());
        }
    }

    if (!output.empty()) {
        std::ofstream out(output);
        if (!out) {
            std::fprintf(stderr, "rrasm: cannot write '%s'\n",
                         output.c_str());
            return 64;
        }
        for (const uint32_t word : program.words) {
            char buffer[16];
            std::snprintf(buffer, sizeof(buffer), "%08x\n", word);
            out << buffer;
        }
    }

    if (check_size != 0) {
        rr::lint::LintOptions options;
        options.declaredContext = check_size;
        options.banks = banks > 1 ? banks : 1;
        const rr::lint::LintResult result =
            rr::lint::lintProgram(program, options);
        for (const auto &finding : result.findings) {
            std::fprintf(stderr, "%s: %s\n", input.c_str(),
                         finding.str().c_str());
        }
        if (!result.clean()) {
            std::fprintf(stderr,
                         "rrasm: %u error(s), %u warning(s); run "
                         "rrlint for the full report\n",
                         result.errors, result.warnings);
            return 2;
        }
    }
    return 0;
}
