/**
 * @file
 * rrlint — CFG + dataflow static analysis for RRISC images (the
 * grown-up version of the Section 2.4 checking tool).
 *
 * Usage:
 *   rrlint [options] input.s [input2.s ...]
 *     --context N   also run the flat check against a declared
 *                   context of N registers (like rrasm --check)
 *     --delay D     LDRRM delay slots (default 1)
 *     --rrm MASK    initial relocation mask at entry (default 0)
 *     --banks B     RRM banks (default 1; Section 5.3 extension)
 *     --width W     operand field width w (default 6)
 *     --mode M      relocation mode: or | mux | add (default or)
 *     --flag-data   treat undecodable words as findings
 *     --no-flow     disable the CFG/dataflow passes (flat check only)
 *     --calls       interprocedural analysis: call graph, procedure
 *                   summaries, cross-call hazards with call paths
 *     --races       lockset race detection over `.thread` roots and
 *                   `.lockdef` annotations
 *     --all         shorthand for --calls --races
 *     --strict      notes also fail the lint (warnings-as-errors for
 *                   every new finding class; used by lint-examples)
 *     --json        emit one `rr.lint.v1` document covering every
 *                   input file (docs/LINT.md documents the schema)
 *     --quiet       suppress the reports (exit status only)
 *
 *   rrlint --validate doc.json [doc2.json ...]
 *     structurally validate `rr.lint.v1` documents produced by
 *     --json (the lint-schema CI step)
 *
 * Output reports, per discovered context window (constant RRM value),
 * the registers referenced, the minimal viable power-of-two context
 * size, and the registers that must be live when the context is
 * entered — plus findings for boundary violations, RRM-overlap
 * escapes, delay-slot hazards, cross-context writes, and (in the
 * interprocedural modes) cross-call hazards and races.
 *
 * Exit status (docs/TOOLS.md): 0 clean, 1 on assembly errors or
 * findings in *any* input, 2 when an input cannot be read or a
 * --validate document is invalid, 64 on usage errors. Multiple
 * inputs: the worst status across all files wins; later files are
 * still processed.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/static/lint.hh"
#include "assembler/assembler.hh"
#include "cli.hh"
#include "exp/json_in.hh"

namespace {

const char *const kUsage =
    "usage: rrlint [--context N] [--delay D] [--rrm MASK] [--banks B]"
    " [--width W]\n"
    "              [--mode or|mux|add] [--flag-data] [--no-flow]\n"
    "              [--calls] [--races] [--all] [--strict]"
    " [--json] [--quiet]\n"
    "              input.s...\n"
    "       rrlint --validate doc.json...\n";

/** Read @p path fully; false when it cannot be opened. */
bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream text;
    text << in.rdbuf();
    out = text.str();
    return true;
}

// ---- rr.lint.v1 structural validation ------------------------------

/** Collects schema violations for one document. */
struct Validator
{
    std::vector<std::string> problems;

    void
    fail(const std::string &where, const std::string &what)
    {
        problems.push_back(where + ": " + what);
    }

    bool
    requireNumber(const rr::exp::JsonValue &obj,
                  const std::string &where, const char *key)
    {
        const rr::exp::JsonValue *v = obj.find(key);
        if (v == nullptr || !v->isNumber()) {
            fail(where, std::string("missing number '") + key + "'");
            return false;
        }
        return true;
    }

    bool
    requireString(const rr::exp::JsonValue &obj,
                  const std::string &where, const char *key)
    {
        const rr::exp::JsonValue *v = obj.find(key);
        if (v == nullptr || !v->isString()) {
            fail(where, std::string("missing string '") + key + "'");
            return false;
        }
        return true;
    }

    const rr::exp::JsonValue *
    requireArray(const rr::exp::JsonValue &obj,
                 const std::string &where, const char *key)
    {
        const rr::exp::JsonValue *v = obj.find(key);
        if (v == nullptr || !v->isArray()) {
            fail(where, std::string("missing array '") + key + "'");
            return nullptr;
        }
        return v;
    }

    void
    checkFinding(const rr::exp::JsonValue &f, const std::string &where)
    {
        if (!f.isObject()) {
            fail(where, "finding is not an object");
            return;
        }
        requireString(f, where, "code");
        requireNumber(f, where, "address");
        requireNumber(f, where, "line");
        requireString(f, where, "message");
        const std::string severity = f.stringOr("severity", "");
        if (severity != "error" && severity != "warning" &&
            severity != "note") {
            fail(where, "severity must be error|warning|note");
        }
        if (const rr::exp::JsonValue *path = f.find("path")) {
            if (!path->isArray()) {
                fail(where, "'path' must be an array");
            } else {
                for (const rr::exp::JsonValue &hop : path->elements) {
                    if (!hop.isString())
                        fail(where, "'path' entries must be strings");
                }
            }
        }
    }

    void
    checkFile(const rr::exp::JsonValue &file, const std::string &where)
    {
        if (!file.isObject()) {
            fail(where, "file entry is not an object");
            return;
        }
        requireString(file, where, "file");
        const rr::exp::JsonValue *readable = file.find("readable");
        if (readable == nullptr || !readable->isBool())
            fail(where, "missing bool 'readable'");

        if (const rr::exp::JsonValue *findings =
                requireArray(file, where, "findings")) {
            for (size_t i = 0; i < findings->elements.size(); ++i) {
                checkFinding(findings->elements[i],
                             where + ".findings[" +
                                 std::to_string(i) + "]");
            }
        }
        if (const rr::exp::JsonValue *threads =
                requireArray(file, where, "threads")) {
            for (size_t i = 0; i < threads->elements.size(); ++i) {
                const std::string twhere =
                    where + ".threads[" + std::to_string(i) + "]";
                const rr::exp::JsonValue &t = threads->elements[i];
                if (!t.isObject()) {
                    fail(twhere, "thread entry is not an object");
                    continue;
                }
                requireNumber(t, twhere, "rrm");
                requireNumber(t, twhere, "registers");
                requireNumber(t, twhere, "min_context");
                requireArray(t, twhere, "footprint");
                requireArray(t, twhere, "live_in");
            }
        }
        if (const rr::exp::JsonValue *procs =
                requireArray(file, where, "procedures")) {
            for (size_t i = 0; i < procs->elements.size(); ++i) {
                const std::string pwhere =
                    where + ".procedures[" + std::to_string(i) + "]";
                const rr::exp::JsonValue &p = procs->elements[i];
                if (!p.isObject()) {
                    fail(pwhere, "procedure entry is not an object");
                    continue;
                }
                requireString(p, pwhere, "name");
                requireNumber(p, pwhere, "entry");
                requireNumber(p, pwhere, "registers");
                requireNumber(p, pwhere, "min_context");
                requireArray(p, pwhere, "call_path");
            }
        }
        if (const rr::exp::JsonValue *races =
                requireArray(file, where, "races")) {
            for (size_t i = 0; i < races->elements.size(); ++i) {
                const std::string rwhere =
                    where + ".races[" + std::to_string(i) + "]";
                const rr::exp::JsonValue &race = races->elements[i];
                if (!race.isObject()) {
                    fail(rwhere, "race entry is not an object");
                    continue;
                }
                requireNumber(race, rwhere, "mem");
                const rr::exp::JsonValue *sites =
                    requireArray(race, rwhere, "sites");
                if (sites == nullptr)
                    continue;
                if (sites->elements.size() != 2) {
                    fail(rwhere, "'sites' must hold exactly 2 sites");
                    continue;
                }
                for (size_t j = 0; j < 2; ++j) {
                    const std::string swhere =
                        rwhere + ".sites[" + std::to_string(j) + "]";
                    const rr::exp::JsonValue &site =
                        sites->elements[j];
                    if (!site.isObject()) {
                        fail(swhere, "site is not an object");
                        continue;
                    }
                    requireNumber(site, swhere, "address");
                    requireNumber(site, swhere, "line");
                    requireString(site, swhere, "thread");
                    requireArray(site, swhere, "locks");
                    const rr::exp::JsonValue *write =
                        site.find("write");
                    if (write == nullptr || !write->isBool())
                        fail(swhere, "missing bool 'write'");
                }
            }
        }
        const rr::exp::JsonValue *summary = file.find("summary");
        if (summary == nullptr || !summary->isObject()) {
            fail(where, "missing object 'summary'");
        } else {
            requireNumber(*summary, where + ".summary", "errors");
            requireNumber(*summary, where + ".summary", "warnings");
            requireNumber(*summary, where + ".summary", "notes");
        }
    }

    void
    checkDocument(const rr::exp::JsonValue &doc)
    {
        if (!doc.isObject()) {
            fail("$", "document is not an object");
            return;
        }
        if (doc.stringOr("schema", "") != "rr.lint.v1")
            fail("$", "'schema' must be \"rr.lint.v1\"");
        const rr::exp::JsonValue *tool = doc.find("tool");
        if (tool == nullptr || !tool->isObject()) {
            fail("$", "missing object 'tool'");
        } else {
            requireString(*tool, "$.tool", "name");
            requireString(*tool, "$.tool", "version");
        }
        if (const rr::exp::JsonValue *files =
                requireArray(doc, "$", "files")) {
            for (size_t i = 0; i < files->elements.size(); ++i) {
                checkFile(files->elements[i],
                          "$.files[" + std::to_string(i) + "]");
            }
        }
        const rr::exp::JsonValue *summary = doc.find("summary");
        if (summary == nullptr || !summary->isObject()) {
            fail("$", "missing object 'summary'");
        } else {
            requireNumber(*summary, "$.summary", "files");
            requireNumber(*summary, "$.summary", "errors");
            requireNumber(*summary, "$.summary", "warnings");
            requireNumber(*summary, "$.summary", "notes");
            requireNumber(*summary, "$.summary", "exit");
        }
    }
};

int
validateDocuments(const std::vector<std::string> &inputs, bool quiet)
{
    using namespace rr::tools;
    int status = kExitOk;
    for (const std::string &input : inputs) {
        std::string text;
        if (!readFile(input, text)) {
            std::fprintf(stderr, "rrlint: cannot open '%s'\n",
                         input.c_str());
            status = std::max(status, kExitFailure);
            continue;
        }
        std::string parse_error;
        const auto doc = rr::exp::parseJson(text, &parse_error);
        if (!doc) {
            std::fprintf(stderr, "rrlint: %s: %s\n", input.c_str(),
                         parse_error.c_str());
            status = std::max(status, kExitFailure);
            continue;
        }
        Validator validator;
        validator.checkDocument(*doc);
        if (!validator.problems.empty()) {
            for (const std::string &problem : validator.problems) {
                std::fprintf(stderr, "rrlint: %s: %s\n",
                             input.c_str(), problem.c_str());
            }
            status = std::max(status, kExitFailure);
            continue;
        }
        if (!quiet) {
            std::printf("%s: valid rr.lint.v1 document\n",
                        input.c_str());
        }
    }
    return status;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rr::tools;

    rr::lint::LintOptions options;
    uint64_t context = 0;
    uint64_t delay = 0;
    bool delay_seen = false;
    uint64_t rrm = 0;
    uint64_t banks = 0;
    bool banks_seen = false;
    uint64_t width = 0;
    bool width_seen = false;
    std::string mode;
    bool flag_data = false;
    bool no_flow = false;
    bool calls = false;
    bool races = false;
    bool all = false;
    bool strict = false;
    bool validate = false;
    bool json = false;
    bool quiet = false;

    OptionParser parser("rrlint", kUsage);
    parser.number("--context", &context, 0, 64);
    parser.number("--delay", &delay, 0, 64, &delay_seen);
    parser.number("--rrm", &rrm, 0, 0xffffffffull);
    parser.number("--banks", &banks, 0, 64, &banks_seen);
    parser.number("--width", &width, 1, 6, &width_seen);
    parser.choice("--mode", &mode, {"or", "mux", "add"});
    parser.flag("--flag-data", &flag_data);
    parser.flag("--no-flow", &no_flow);
    parser.flag("--calls", &calls);
    parser.flag("--races", &races);
    parser.flag("--all", &all);
    parser.flag("--strict", &strict);
    parser.flag("--validate", &validate);
    parser.flag("--json", &json);
    parser.flag("--quiet", &quiet);
    const int parse_status = parser.parse(argc, argv);
    if (parse_status >= 0)
        return parse_status;
    const std::vector<std::string> &inputs = parser.positionals();
    if (inputs.empty())
        return parser.fail("expects at least one input file");

    if (validate)
        return validateDocuments(inputs, quiet);

    options.declaredContext = static_cast<unsigned>(context);
    if (delay_seen)
        options.delaySlots = static_cast<unsigned>(delay);
    options.initialRrm = static_cast<uint32_t>(rrm);
    if (banks_seen)
        options.banks = static_cast<unsigned>(banks);
    if (width_seen)
        options.operandWidth = static_cast<unsigned>(width);
    if (mode == "mux")
        options.mode = rr::lint::RelocMode::Mux;
    else if (mode == "add")
        options.mode = rr::lint::RelocMode::Add;
    else if (mode == "or" || mode.empty())
        options.mode = rr::lint::RelocMode::Or;
    if (flag_data)
        options.flagInvalidWords = true;
    if (no_flow)
        options.flowSensitive = false;
    if (calls || all)
        options.interprocedural = true;
    if (races || all)
        options.lockset = true;

    int status = kExitOk;
    std::vector<rr::lint::FileReport> reports;
    for (const std::string &input : inputs) {
        rr::lint::FileReport report;
        report.file = input;

        std::string source;
        if (!readFile(input, source)) {
            std::fprintf(stderr, "rrlint: cannot open '%s'\n",
                         input.c_str());
            report.readable = false;
            reports.push_back(std::move(report));
            status = std::max(status, kExitFailure);
            continue;
        }

        const rr::assembler::Program program =
            rr::assembler::assemble(source);
        if (!program.ok()) {
            for (const auto &error : program.errors) {
                std::fprintf(stderr, "%s: %s\n", input.c_str(),
                             error.str().c_str());
            }
            report.assemblyErrors = program.errors;
            reports.push_back(std::move(report));
            status = std::max(status, kExitProblems);
            continue;
        }

        report.result = rr::lint::lintProgram(program, options);
        if (!json && !quiet) {
            const std::string rendered =
                rr::lint::renderText(report.result, input);
            std::fputs(rendered.c_str(), stdout);
        }
        if (!report.result.clean() ||
            (strict && report.result.notes > 0)) {
            status = std::max(status, kExitProblems);
        }
        reports.push_back(std::move(report));
    }

    if (json && !quiet) {
        const std::string rendered = rr::lint::renderJsonDocument(
            reports, kToolsVersion, status);
        std::fputs(rendered.c_str(), stdout);
    }
    return status;
}
