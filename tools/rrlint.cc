/**
 * @file
 * rrlint — CFG + dataflow static analysis for RRISC images (the
 * grown-up version of the Section 2.4 checking tool).
 *
 * Usage:
 *   rrlint [options] input.s [input2.s ...]
 *     --context N   also run the flat check against a declared
 *                   context of N registers (like rrasm --check)
 *     --delay D     LDRRM delay slots (default 1)
 *     --rrm MASK    initial relocation mask at entry (default 0)
 *     --banks B     RRM banks (default 1; Section 5.3 extension)
 *     --width W     operand field width w (default 6)
 *     --mode M      relocation mode: or | mux | add (default or)
 *     --flag-data   treat undecodable words as findings
 *     --no-flow     disable the CFG/dataflow passes (flat check only)
 *     --json        emit JSON instead of text
 *     --quiet       suppress the reports (exit status only)
 *
 * Output reports, per discovered context window (constant RRM value),
 * the registers referenced, the minimal viable power-of-two context
 * size, and the registers that must be live when the context is
 * entered — plus findings for boundary violations, RRM-overlap
 * escapes, delay-slot hazards, and cross-context writes.
 *
 * Exit status (docs/TOOLS.md): 0 clean, 1 on assembly errors or
 * findings, 2 when an input cannot be read, 64 on usage errors.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/static/lint.hh"
#include "assembler/assembler.hh"
#include "cli.hh"

namespace {

const char *const kUsage =
    "usage: rrlint [--context N] [--delay D] [--rrm MASK] [--banks B]"
    " [--width W]\n"
    "              [--mode or|mux|add] [--flag-data] [--no-flow]"
    " [--json] [--quiet]\n"
    "              input.s...\n";

} // namespace

int
main(int argc, char **argv)
{
    using namespace rr::tools;

    rr::lint::LintOptions options;
    uint64_t context = 0;
    uint64_t delay = 0;
    bool delay_seen = false;
    uint64_t rrm = 0;
    uint64_t banks = 0;
    bool banks_seen = false;
    uint64_t width = 0;
    bool width_seen = false;
    std::string mode;
    bool flag_data = false;
    bool no_flow = false;
    bool json = false;
    bool quiet = false;

    OptionParser parser("rrlint", kUsage);
    parser.number("--context", &context, 0, 64);
    parser.number("--delay", &delay, 0, 64, &delay_seen);
    parser.number("--rrm", &rrm, 0, 0xffffffffull);
    parser.number("--banks", &banks, 0, 64, &banks_seen);
    parser.number("--width", &width, 1, 6, &width_seen);
    parser.choice("--mode", &mode, {"or", "mux", "add"});
    parser.flag("--flag-data", &flag_data);
    parser.flag("--no-flow", &no_flow);
    parser.flag("--json", &json);
    parser.flag("--quiet", &quiet);
    const int parse_status = parser.parse(argc, argv);
    if (parse_status >= 0)
        return parse_status;
    const std::vector<std::string> &inputs = parser.positionals();
    if (inputs.empty())
        return parser.fail("expects at least one input file");

    options.declaredContext = static_cast<unsigned>(context);
    if (delay_seen)
        options.delaySlots = static_cast<unsigned>(delay);
    options.initialRrm = static_cast<uint32_t>(rrm);
    if (banks_seen)
        options.banks = static_cast<unsigned>(banks);
    if (width_seen)
        options.operandWidth = static_cast<unsigned>(width);
    if (mode == "mux")
        options.mode = rr::lint::RelocMode::Mux;
    else if (mode == "add")
        options.mode = rr::lint::RelocMode::Add;
    else if (mode == "or" || mode.empty())
        options.mode = rr::lint::RelocMode::Or;
    if (flag_data)
        options.flagInvalidWords = true;
    if (no_flow)
        options.flowSensitive = false;

    int status = kExitOk;
    for (const std::string &input : inputs) {
        std::ifstream in(input);
        if (!in) {
            std::fprintf(stderr, "rrlint: cannot open '%s'\n",
                         input.c_str());
            return kExitFailure;
        }
        std::ostringstream source;
        source << in.rdbuf();

        const rr::assembler::Program program =
            rr::assembler::assemble(source.str());
        if (!program.ok()) {
            for (const auto &error : program.errors) {
                std::fprintf(stderr, "%s: %s\n", input.c_str(),
                             error.str().c_str());
            }
            status = std::max(status, kExitProblems);
            continue;
        }

        const rr::lint::LintResult result =
            rr::lint::lintProgram(program, options);
        if (!quiet) {
            const std::string rendered =
                json ? rr::lint::renderJson(result, input)
                     : rr::lint::renderText(result, input);
            std::fputs(rendered.c_str(), stdout);
        }
        if (!result.clean())
            status = std::max(status, kExitProblems);
    }
    return status;
}
