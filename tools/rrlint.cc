/**
 * @file
 * rrlint — CFG + dataflow static analysis for RRISC images (the
 * grown-up version of the Section 2.4 checking tool).
 *
 * Usage:
 *   rrlint [options] input.s [input2.s ...]
 *     --context N   also run the flat check against a declared
 *                   context of N registers (like rrasm --check)
 *     --delay D     LDRRM delay slots (default 1)
 *     --rrm MASK    initial relocation mask at entry (default 0)
 *     --banks B     RRM banks (default 1; Section 5.3 extension)
 *     --width W     operand field width w (default 6)
 *     --mode M      relocation mode: or | mux | add (default or)
 *     --flag-data   treat undecodable words as findings
 *     --no-flow     disable the CFG/dataflow passes (flat check only)
 *     --json        emit JSON instead of text
 *
 * Output reports, per discovered context window (constant RRM value),
 * the registers referenced, the minimal viable power-of-two context
 * size, and the registers that must be live when the context is
 * entered — plus findings for boundary violations, RRM-overlap
 * escapes, delay-slot hazards, and cross-context writes.
 *
 * Exit status: 0 clean, 1 on assembly errors, 2 on findings, 64 on
 * usage errors.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/static/lint.hh"
#include "assembler/assembler.hh"
#include "arg_num.hh"

namespace {

void
usage()
{
    std::fprintf(stderr,
                 "usage: rrlint [--context N] [--delay D] "
                 "[--rrm MASK] [--banks B] [--width W]\n"
                 "              [--mode or|mux|add] [--flag-data] "
                 "[--no-flow] [--json] input.s...\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> inputs;
    rr::lint::LintOptions options;
    bool json = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        uint64_t value = 0;
        if (arg == "--context") {
            if (!rr::tools::requireUnsigned("rrlint", "--context",
                                            next_value(), value, 64))
                return 64;
            options.declaredContext = static_cast<unsigned>(value);
        } else if (arg == "--delay") {
            if (!rr::tools::requireUnsigned("rrlint", "--delay",
                                            next_value(), value, 64))
                return 64;
            options.delaySlots = static_cast<unsigned>(value);
        } else if (arg == "--rrm") {
            if (!rr::tools::requireUnsigned("rrlint", "--rrm",
                                            next_value(), value,
                                            0xffffffffull))
                return 64;
            options.initialRrm = static_cast<uint32_t>(value);
        } else if (arg == "--banks") {
            if (!rr::tools::requireUnsigned("rrlint", "--banks",
                                            next_value(), value, 64))
                return 64;
            options.banks = static_cast<unsigned>(value);
        } else if (arg == "--width") {
            if (!rr::tools::requireUnsigned("rrlint", "--width",
                                            next_value(), value, 6) ||
                value == 0) {
                std::fprintf(stderr,
                             "rrlint: --width expects 1..6\n");
                return 64;
            }
            options.operandWidth = static_cast<unsigned>(value);
        } else if (arg == "--mode") {
            const char *mode = next_value();
            const std::string text = mode ? mode : "";
            if (text == "or") {
                options.mode = rr::lint::RelocMode::Or;
            } else if (text == "mux") {
                options.mode = rr::lint::RelocMode::Mux;
            } else if (text == "add") {
                options.mode = rr::lint::RelocMode::Add;
            } else {
                std::fprintf(stderr, "rrlint: bad mode '%s'\n",
                             text.c_str());
                return 64;
            }
        } else if (arg == "--flag-data") {
            options.flagInvalidWords = true;
        } else if (arg == "--no-flow") {
            options.flowSensitive = false;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "-h" || arg == "--help") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "rrlint: unknown option '%s'\n",
                         arg.c_str());
            usage();
            return 64;
        } else {
            inputs.push_back(arg);
        }
    }
    if (inputs.empty()) {
        usage();
        return 64;
    }

    int status = 0;
    for (const std::string &input : inputs) {
        std::ifstream in(input);
        if (!in) {
            std::fprintf(stderr, "rrlint: cannot open '%s'\n",
                         input.c_str());
            return 64;
        }
        std::ostringstream source;
        source << in.rdbuf();

        const rr::assembler::Program program =
            rr::assembler::assemble(source.str());
        if (!program.ok()) {
            for (const auto &error : program.errors) {
                std::fprintf(stderr, "%s: %s\n", input.c_str(),
                             error.str().c_str());
            }
            status = std::max(status, 1);
            continue;
        }

        const rr::lint::LintResult result =
            rr::lint::lintProgram(program, options);
        const std::string rendered =
            json ? rr::lint::renderJson(result, input)
                 : rr::lint::renderText(result, input);
        std::fputs(rendered.c_str(), stdout);
        if (!result.clean())
            status = std::max(status, 2);
    }
    return status;
}
