/**
 * @file
 * rrbench — the single driver for every paper figure and table
 * reproduction (docs/BENCH.md is the full reference).
 *
 * Figures register themselves with RR_BENCH_FIGURE (exp/registry.hh);
 * rrbench lists, filters, and runs them, prints the human-readable
 * report, and writes one machine-readable BENCH_<figure>.json per
 * figure (schema "rr.bench.v1"). Sweeps fan out over a fixed-size
 * worker pool; --jobs changes wall-clock time only, never a result
 * digit — including the bytes of --trace-figure output.
 *
 * Usage:
 *   rrbench [--list] [--filter SUBSTR]... [--fast] [--jobs N]
 *           [--seeds N] [--threads N] [--out-dir DIR] [--quiet]
 *           [--compare PATH] [--tolerance X] [--audit]
 *           [--trace-figure NAME]... [--json] [--perf]
 *   rrbench --validate FILE...
 *
 * --perf switches to the performance microbenchmarks (RR_PERF_FIGURE,
 * docs/PERF.md): simulator throughput in Minstr/s / Mevents/s. Perf
 * figures are excluded from normal runs and vice versa; all other
 * options (filters, baselines, output) work unchanged.
 *
 * --audit attaches a streaming cycle-conservation auditor
 * (docs/TRACE.md) to every simulation of every sweep; any violation
 * fails the run. --trace-figure NAME captures a representative event
 * trace of that figure and writes TRACE_<NAME>.json (Chrome
 * trace_event format, opens in Perfetto).
 *
 * Exit status (docs/TOOLS.md): 0 on success, 1 when --compare
 * detects a shape regression, 2 on I/O, validation, or audit
 * failure, 64 on usage errors.
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "exp/compare.hh"
#include "exp/engine.hh"
#include "exp/env.hh"
#include "exp/json_in.hh"
#include "exp/registry.hh"
#include "exp/report.hh"
#include "exp/tracectl.hh"
#include "trace/chrome_export.hh"
#include "cli.hh"

namespace {

using namespace rr;
using namespace rr::tools;

const char *const kUsage =
    "usage: rrbench [options]\n"
    "       rrbench --validate FILE...\n"
    "\n"
    "  --list             list registered figures and exit\n"
    "  --filter SUBSTR    run only figures whose name contains\n"
    "                     SUBSTR (repeatable)\n"
    "  --fast             trimmed sweeps (same as RR_BENCH_FAST=1)\n"
    "  --seeds N          replications per point (RR_BENCH_SEEDS)\n"
    "  --threads N        thread supply per simulation "
    "(RR_BENCH_THREADS)\n"
    "  --jobs N           worker threads; results are identical\n"
    "                     for every N (0 = all cores)\n"
    "  --out-dir DIR      write BENCH_<figure>.json here (default .)\n"
    "  --quiet            suppress the text reports\n"
    "  --compare PATH     baseline BENCH_<figure>.json file, or a\n"
    "                     directory of them; exit 1 on shape\n"
    "                     regressions\n"
    "  --tolerance X      relative drift allowed by --compare\n"
    "                     (default 0.05)\n"
    "  --audit            audit cycle conservation of every\n"
    "                     simulation; violations exit 2\n"
    "  --trace-figure N   capture a representative trace of figure N\n"
    "                     and write TRACE_<N>.json (repeatable)\n"
    "  --json             print a machine-readable run summary\n"
    "  --perf             run the performance microbenchmarks\n"
    "                     (simulator throughput) instead of the\n"
    "                     paper figures\n"
    "  --validate         treat remaining arguments as result\n"
    "                     files; check them against the schema\n";

std::optional<std::string>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** Parse a results document or explain why it failed. */
std::optional<exp::JsonValue>
loadDocument(const std::string &path)
{
    const auto text = readFile(path);
    if (!text) {
        std::fprintf(stderr, "rrbench: cannot read %s\n",
                     path.c_str());
        return std::nullopt;
    }
    std::string error;
    auto doc = exp::parseJson(*text, &error);
    if (!doc) {
        std::fprintf(stderr, "rrbench: %s: %s\n", path.c_str(),
                     error.c_str());
        return std::nullopt;
    }
    return doc;
}

int
validateFiles(const std::vector<std::string> &paths)
{
    int status = kExitOk;
    for (const std::string &path : paths) {
        const auto doc = loadDocument(path);
        if (!doc) {
            status = kExitFailure;
            continue;
        }
        const auto issues = exp::validateReportJson(*doc);
        if (issues.empty()) {
            std::printf("%s: ok (%s)\n", path.c_str(),
                        doc->stringOr("figure", "?").c_str());
            continue;
        }
        status = kExitFailure;
        for (const std::string &issue : issues)
            std::fprintf(stderr, "%s: %s\n", path.c_str(),
                         issue.c_str());
    }
    return status;
}

/** Locate the baseline document for @p figure under --compare PATH. */
std::optional<std::string>
baselinePath(const std::string &compare_path,
             const std::string &figure)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    if (fs::is_directory(compare_path, ec)) {
        const fs::path candidate =
            fs::path(compare_path) / ("BENCH_" + figure + ".json");
        if (fs::exists(candidate, ec))
            return candidate.string();
        return std::nullopt;
    }
    return compare_path;
}

bool
matchesFilters(const std::string &name,
               const std::vector<std::string> &filters)
{
    if (filters.empty())
        return true;
    for (const std::string &filter : filters) {
        if (name.find(filter) != std::string::npos)
            return true;
    }
    return false;
}

bool
contains(const std::vector<std::string> &names,
         const std::string &name)
{
    for (const std::string &candidate : names) {
        if (candidate == name)
            return true;
    }
    return false;
}

/** Per-figure record for the --json run summary. */
struct FigureOutcome
{
    std::string name;
    std::string out;
    std::string compare; ///< "ok" | "regression" | "skipped" | ""
    std::string trace;   ///< TRACE_<name>.json path when captured
    bool audited = false;
    uint64_t simulations = 0;
    uint64_t events = 0;
    uint64_t problems = 0;
};

void
printRunSummaryJson(const std::vector<FigureOutcome> &outcomes,
                    unsigned regressions, uint64_t audit_problems)
{
    std::printf("{\"schema\":\"rr.rrbench.v1\",\"figures\":[");
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const FigureOutcome &o = outcomes[i];
        std::printf("%s{\"name\":\"%s\",\"out\":\"%s\"",
                    i != 0 ? "," : "", jsonEscape(o.name).c_str(),
                    jsonEscape(o.out).c_str());
        if (!o.compare.empty())
            std::printf(",\"compare\":\"%s\"", o.compare.c_str());
        if (o.audited) {
            std::printf(",\"audit\":{\"simulations\":%llu,"
                        "\"events\":%llu,\"problems\":%llu}",
                        static_cast<unsigned long long>(
                            o.simulations),
                        static_cast<unsigned long long>(o.events),
                        static_cast<unsigned long long>(o.problems));
        }
        if (!o.trace.empty())
            std::printf(",\"trace\":\"%s\"",
                        jsonEscape(o.trace).c_str());
        std::printf("}");
    }
    std::printf("],\"regressions\":%u,\"auditProblems\":%llu}\n",
                regressions,
                static_cast<unsigned long long>(audit_problems));
}

} // namespace

int
main(int argc, char **argv)
{
    bool list = false;
    bool fast = false;
    bool quiet = false;
    bool validate = false;
    bool audit = false;
    bool json = false;
    bool perf = false;
    std::vector<std::string> filters;
    std::vector<std::string> trace_figures;
    uint64_t seeds = 0;
    bool seeds_seen = false;
    uint64_t threads = 0;
    bool threads_seen = false;
    uint64_t jobs = 0;
    bool jobs_seen = false;
    std::string out_dir = ".";
    std::string compare;
    bool compare_seen = false;
    double tolerance = 0.05;

    OptionParser parser("rrbench", kUsage);
    parser.flag("--list", &list);
    parser.flag("--fast", &fast);
    parser.flag("--quiet", &quiet);
    parser.flag("--validate", &validate);
    parser.flag("--audit", &audit);
    parser.flag("--json", &json);
    parser.flag("--perf", &perf);
    parser.repeated("--filter", &filters);
    parser.repeated("--trace-figure", &trace_figures);
    parser.number("--seeds", &seeds, 1, 1u << 20, &seeds_seen);
    parser.number("--threads", &threads, 1, 1u << 20, &threads_seen);
    parser.number("--jobs", &jobs, 0, 4096, &jobs_seen);
    parser.value("--out-dir", &out_dir);
    parser.value("--compare", &compare, &compare_seen);
    parser.real("--tolerance", &tolerance);
    const int parse_status = parser.parse(argc, argv);
    if (parse_status >= 0)
        return parse_status;

    if (!validate && !parser.positionals().empty()) {
        return parser.fail("unexpected argument '%s' (use --validate "
                           "for files)",
                           parser.positionals().front().c_str());
    }
    if (validate && parser.positionals().empty())
        return parser.fail("--validate expects result files");
    if (validate)
        return validateFiles(parser.positionals());

    const auto figures = exp::Registry::instance().figures();
    for (const std::string &name : trace_figures) {
        bool known = false;
        for (const auto &figure : figures)
            known = known || figure.name == name;
        if (!known)
            return parser.fail("--trace-figure: no figure named "
                               "'%s' (see --list)",
                               name.c_str());
    }

    if (list) {
        for (const auto &figure : figures)
            std::printf("%-22s %s%s\n", figure.name.c_str(),
                        figure.perf ? "[perf] " : "",
                        figure.title.c_str());
        return kExitOk;
    }

    // CLI flags override the RR_BENCH_* environment; the figures read
    // their sweep configuration through exp/env.hh either way.
    if (seeds_seen)
        ::setenv("RR_BENCH_SEEDS",
                 std::to_string(seeds).c_str(), 1);
    if (threads_seen)
        ::setenv("RR_BENCH_THREADS",
                 std::to_string(threads).c_str(), 1);
    if (fast)
        ::setenv("RR_BENCH_FAST", "1", 1);
    if (jobs_seen)
        exp::setDefaultJobs(static_cast<unsigned>(jobs));

    exp::RunMeta run;
    run.seeds = exp::benchSeeds();
    run.threads = exp::benchThreads();
    run.fast = exp::benchFast();

    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    if (ec) {
        std::fprintf(stderr, "rrbench: cannot create %s: %s\n",
                     out_dir.c_str(), ec.message().c_str());
        return kExitFailure;
    }

    unsigned ran = 0;
    unsigned regressions = 0;
    uint64_t audit_problems = 0;
    std::vector<FigureOutcome> outcomes;
    for (const auto &figure : figures) {
        // --perf selects exactly the microbenchmark set; paper runs
        // never pay for timing loops and perf baselines never mix
        // with figure baselines.
        if (figure.perf != perf)
            continue;
        if (!matchesFilters(figure.name, filters))
            continue;
        ++ran;
        FigureOutcome outcome;
        outcome.name = figure.name;

        const bool capture = contains(trace_figures, figure.name);
        std::optional<exp::TraceController> controller;
        if (audit || capture) {
            exp::TraceController::Options topts;
            topts.audit = audit;
            topts.capture = capture;
            controller.emplace(topts);
            exp::TraceController::activate(&*controller);
        }
        const exp::Report report = exp::Registry::run(figure, run);
        exp::TraceController::activate(nullptr);

        if (!quiet) {
            std::fputs(report.renderText().c_str(), stdout);
            std::fputc('\n', stdout);
        }

        if (controller) {
            const exp::TraceSummary summary = controller->summary();
            outcome.audited = audit;
            outcome.simulations = summary.simulations;
            outcome.events = summary.events;
            outcome.problems = summary.problemsTotal;
            if (audit) {
                audit_problems += summary.problemsTotal;
                for (const std::string &problem : summary.problems)
                    std::fprintf(stderr, "AUDIT: %s: %s\n",
                                 figure.name.c_str(),
                                 problem.c_str());
                if (!quiet) {
                    std::printf(
                        "audit: %s: %llu simulation(s), %llu "
                        "event(s), %llu violation(s)\n",
                        figure.name.c_str(),
                        static_cast<unsigned long long>(
                            summary.simulations),
                        static_cast<unsigned long long>(
                            summary.events),
                        static_cast<unsigned long long>(
                            summary.problemsTotal));
                }
            }
            if (capture) {
                const std::string trace_path =
                    (std::filesystem::path(out_dir) /
                     ("TRACE_" + figure.name + ".json"))
                        .string();
                std::ofstream out(trace_path, std::ios::binary);
                if (!out) {
                    std::fprintf(stderr,
                                 "rrbench: cannot write %s\n",
                                 trace_path.c_str());
                    return kExitFailure;
                }
                out << trace::exportChromeTrace(summary.captures);
                outcome.trace = trace_path;
                if (!quiet)
                    std::printf("trace: %s: %s (%zu stream(s))\n",
                                figure.name.c_str(),
                                trace_path.c_str(),
                                summary.captures.size());
            }
        }

        const std::string report_json = report.toJson();
        const std::string out_path =
            (std::filesystem::path(out_dir) /
             ("BENCH_" + figure.name + ".json"))
                .string();
        outcome.out = out_path;
        {
            std::ofstream out(out_path, std::ios::binary);
            if (!out) {
                std::fprintf(stderr, "rrbench: cannot write %s\n",
                             out_path.c_str());
                return kExitFailure;
            }
            out << report_json;
        }
        // Sanity: what we wrote must parse and satisfy the schema.
        std::string parse_error;
        const auto reparsed = exp::parseJson(report_json, &parse_error);
        const auto schema_issues =
            reparsed ? exp::validateReportJson(*reparsed)
                     : std::vector<std::string>{parse_error};
        if (!schema_issues.empty()) {
            for (const std::string &issue : schema_issues)
                std::fprintf(stderr, "rrbench: %s: %s\n",
                             out_path.c_str(), issue.c_str());
            return kExitFailure;
        }

        if (compare_seen) {
            const auto base_path = baselinePath(compare, figure.name);
            if (!base_path) {
                std::printf("compare: no baseline for %s, skipped\n",
                            figure.name.c_str());
                outcome.compare = "skipped";
                outcomes.push_back(outcome);
                continue;
            }
            const auto baseline = loadDocument(*base_path);
            if (!baseline)
                return kExitFailure;
            exp::CompareOptions copts;
            copts.tolerance = tolerance;
            const exp::CompareResult result =
                exp::compareReports(*reparsed, *baseline, copts);
            for (const std::string &note : result.notes)
                std::printf("compare: %s\n", note.c_str());
            if (result.ok()) {
                std::printf("compare: %s matches %s "
                            "(tolerance %.2f)\n",
                            figure.name.c_str(), base_path->c_str(),
                            tolerance);
                outcome.compare = "ok";
            } else {
                ++regressions;
                outcome.compare = "regression";
                for (const std::string &issue : result.issues)
                    std::fprintf(stderr, "REGRESSION: %s\n",
                                 issue.c_str());
            }
        }
        outcomes.push_back(outcome);
    }

    if (ran == 0) {
        std::fprintf(stderr, "rrbench: no figures match the filter\n");
        return kExitUsage;
    }
    if (json)
        printRunSummaryJson(outcomes, regressions, audit_problems);
    if (audit_problems > 0) {
        std::fprintf(stderr,
                     "rrbench: cycle-conservation audit failed "
                     "(%llu violation(s))\n",
                     static_cast<unsigned long long>(audit_problems));
        return kExitFailure;
    }
    if (regressions > 0) {
        std::fprintf(stderr,
                     "rrbench: %u figure(s) regressed against the "
                     "baseline\n",
                     regressions);
        return kExitProblems;
    }
    return kExitOk;
}
