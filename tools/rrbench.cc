/**
 * @file
 * rrbench — the single driver for every paper figure and table
 * reproduction (docs/BENCH.md is the full reference).
 *
 * Figures register themselves with RR_BENCH_FIGURE (exp/registry.hh);
 * rrbench lists, filters, and runs them, prints the human-readable
 * report, and writes one machine-readable BENCH_<figure>.json per
 * figure (schema "rr.bench.v1"). Sweeps fan out over a fixed-size
 * worker pool; --jobs changes wall-clock time only, never a result
 * digit.
 *
 * Usage:
 *   rrbench [--list] [--filter SUBSTR]... [--fast] [--jobs N]
 *           [--seeds N] [--threads N] [--out-dir DIR] [--quiet]
 *           [--compare PATH] [--tolerance X]
 *   rrbench --validate FILE...
 *
 * Exit status: 0 on success, 1 when --compare detects a shape
 * regression, 2 on I/O or validation failure, 64 on usage errors.
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "exp/compare.hh"
#include "exp/engine.hh"
#include "exp/env.hh"
#include "exp/json_in.hh"
#include "exp/registry.hh"
#include "exp/report.hh"
#include "arg_num.hh"

namespace {

using namespace rr;

constexpr int kExitOk = 0;
constexpr int kExitRegression = 1;
constexpr int kExitError = 2;
constexpr int kExitUsage = 64;

void
usage(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: rrbench [options]\n"
        "       rrbench --validate FILE...\n"
        "\n"
        "  --list           list registered figures and exit\n"
        "  --filter SUBSTR  run only figures whose name contains\n"
        "                   SUBSTR (repeatable)\n"
        "  --fast           trimmed sweeps (same as RR_BENCH_FAST=1)\n"
        "  --seeds N        replications per point "
        "(RR_BENCH_SEEDS)\n"
        "  --threads N      thread supply per simulation "
        "(RR_BENCH_THREADS)\n"
        "  --jobs N         worker threads; results are identical\n"
        "                   for every N (0 = all cores)\n"
        "  --out-dir DIR    write BENCH_<figure>.json here "
        "(default .)\n"
        "  --quiet          suppress the text reports\n"
        "  --compare PATH   baseline BENCH_<figure>.json file, or a\n"
        "                   directory of them; exit 1 on shape\n"
        "                   regressions\n"
        "  --tolerance X    relative drift allowed by --compare\n"
        "                   (default 0.05)\n"
        "  --validate       treat remaining arguments as result\n"
        "                   files; check them against the schema\n");
}

std::optional<std::string>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** Parse a results document or explain why it failed. */
std::optional<exp::JsonValue>
loadDocument(const std::string &path)
{
    const auto text = readFile(path);
    if (!text) {
        std::fprintf(stderr, "rrbench: cannot read %s\n",
                     path.c_str());
        return std::nullopt;
    }
    std::string error;
    auto doc = exp::parseJson(*text, &error);
    if (!doc) {
        std::fprintf(stderr, "rrbench: %s: %s\n", path.c_str(),
                     error.c_str());
        return std::nullopt;
    }
    return doc;
}

int
validateFiles(const std::vector<std::string> &paths)
{
    int status = kExitOk;
    for (const std::string &path : paths) {
        const auto doc = loadDocument(path);
        if (!doc) {
            status = kExitError;
            continue;
        }
        const auto issues = exp::validateReportJson(*doc);
        if (issues.empty()) {
            std::printf("%s: ok (%s)\n", path.c_str(),
                        doc->stringOr("figure", "?").c_str());
            continue;
        }
        status = kExitError;
        for (const std::string &issue : issues)
            std::fprintf(stderr, "%s: %s\n", path.c_str(),
                         issue.c_str());
    }
    return status;
}

/** Locate the baseline document for @p figure under --compare PATH. */
std::optional<std::string>
baselinePath(const std::string &compare_path,
             const std::string &figure)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    if (fs::is_directory(compare_path, ec)) {
        const fs::path candidate =
            fs::path(compare_path) / ("BENCH_" + figure + ".json");
        if (fs::exists(candidate, ec))
            return candidate.string();
        return std::nullopt;
    }
    return compare_path;
}

struct Options
{
    bool list = false;
    bool fast = false;
    bool quiet = false;
    std::vector<std::string> filters;
    std::optional<unsigned> seeds;
    std::optional<unsigned> threads;
    std::optional<unsigned> jobs;
    std::string out_dir = ".";
    std::optional<std::string> compare;
    double tolerance = 0.05;
    std::vector<std::string> validate_files;
    bool validate = false;
};

bool
matchesFilters(const std::string &name, const Options &options)
{
    if (options.filters.empty())
        return true;
    for (const std::string &filter : options.filters) {
        if (name.find(filter) != std::string::npos)
            return true;
    }
    return false;
}

int
parseArgs(int argc, char **argv, Options &options)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        uint64_t value = 0;
        if (arg == "--help" || arg == "-h") {
            usage(stdout);
            std::exit(kExitOk);
        } else if (arg == "--list") {
            options.list = true;
        } else if (arg == "--fast") {
            options.fast = true;
        } else if (arg == "--quiet") {
            options.quiet = true;
        } else if (arg == "--validate") {
            options.validate = true;
        } else if (arg == "--filter") {
            const char *filter = next();
            if (filter == nullptr) {
                std::fprintf(stderr,
                             "rrbench: --filter expects a value\n");
                return kExitUsage;
            }
            options.filters.emplace_back(filter);
        } else if (arg == "--seeds") {
            if (!tools::requireUnsigned("rrbench", "--seeds", next(),
                                        value, 1u << 20))
                return kExitUsage;
            options.seeds = static_cast<unsigned>(value);
        } else if (arg == "--threads") {
            if (!tools::requireUnsigned("rrbench", "--threads",
                                        next(), value, 1u << 20))
                return kExitUsage;
            options.threads = static_cast<unsigned>(value);
        } else if (arg == "--jobs") {
            if (!tools::requireUnsigned("rrbench", "--jobs", next(),
                                        value, 4096))
                return kExitUsage;
            options.jobs = static_cast<unsigned>(value);
        } else if (arg == "--out-dir") {
            const char *dir = next();
            if (dir == nullptr) {
                std::fprintf(stderr,
                             "rrbench: --out-dir expects a value\n");
                return kExitUsage;
            }
            options.out_dir = dir;
        } else if (arg == "--compare") {
            const char *path = next();
            if (path == nullptr) {
                std::fprintf(stderr,
                             "rrbench: --compare expects a value\n");
                return kExitUsage;
            }
            options.compare = path;
        } else if (arg == "--tolerance") {
            const char *text = next();
            char *end = nullptr;
            const double tolerance =
                text != nullptr ? std::strtod(text, &end) : 0.0;
            if (text == nullptr || end == text || *end != '\0' ||
                tolerance < 0.0) {
                std::fprintf(
                    stderr,
                    "rrbench: --tolerance expects a non-negative "
                    "number\n");
                return kExitUsage;
            }
            options.tolerance = tolerance;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "rrbench: unknown option '%s'\n",
                         arg.c_str());
            usage(stderr);
            return kExitUsage;
        } else {
            options.validate_files.push_back(arg);
        }
    }
    if (!options.validate && !options.validate_files.empty()) {
        std::fprintf(stderr,
                     "rrbench: unexpected argument '%s' (use "
                     "--validate for files)\n",
                     options.validate_files.front().c_str());
        return kExitUsage;
    }
    if (options.validate && options.validate_files.empty()) {
        std::fprintf(stderr,
                     "rrbench: --validate expects result files\n");
        return kExitUsage;
    }
    return -1; // continue
}

} // namespace

int
main(int argc, char **argv)
{
    Options options;
    const int parse_status = parseArgs(argc, argv, options);
    if (parse_status >= 0)
        return parse_status;

    if (options.validate)
        return validateFiles(options.validate_files);

    const auto figures = exp::Registry::instance().figures();
    if (options.list) {
        for (const auto &figure : figures)
            std::printf("%-22s %s\n", figure.name.c_str(),
                        figure.title.c_str());
        return kExitOk;
    }

    // CLI flags override the RR_BENCH_* environment; the figures read
    // their sweep configuration through exp/env.hh either way.
    if (options.seeds)
        ::setenv("RR_BENCH_SEEDS",
                 std::to_string(*options.seeds).c_str(), 1);
    if (options.threads)
        ::setenv("RR_BENCH_THREADS",
                 std::to_string(*options.threads).c_str(), 1);
    if (options.fast)
        ::setenv("RR_BENCH_FAST", "1", 1);
    if (options.jobs)
        exp::setDefaultJobs(*options.jobs);

    exp::RunMeta run;
    run.seeds = exp::benchSeeds();
    run.threads = exp::benchThreads();
    run.fast = exp::benchFast();

    std::error_code ec;
    std::filesystem::create_directories(options.out_dir, ec);
    if (ec) {
        std::fprintf(stderr, "rrbench: cannot create %s: %s\n",
                     options.out_dir.c_str(),
                     ec.message().c_str());
        return kExitError;
    }

    unsigned ran = 0;
    unsigned regressions = 0;
    for (const auto &figure : figures) {
        if (!matchesFilters(figure.name, options))
            continue;
        ++ran;
        const exp::Report report = exp::Registry::run(figure, run);
        if (!options.quiet) {
            std::fputs(report.renderText().c_str(), stdout);
            std::fputc('\n', stdout);
        }

        const std::string json = report.toJson();
        const std::string out_path =
            (std::filesystem::path(options.out_dir) /
             ("BENCH_" + figure.name + ".json"))
                .string();
        {
            std::ofstream out(out_path, std::ios::binary);
            if (!out) {
                std::fprintf(stderr, "rrbench: cannot write %s\n",
                             out_path.c_str());
                return kExitError;
            }
            out << json;
        }
        // Sanity: what we wrote must parse and satisfy the schema.
        std::string parse_error;
        const auto reparsed = exp::parseJson(json, &parse_error);
        const auto schema_issues =
            reparsed ? exp::validateReportJson(*reparsed)
                     : std::vector<std::string>{parse_error};
        if (!schema_issues.empty()) {
            for (const std::string &issue : schema_issues)
                std::fprintf(stderr, "rrbench: %s: %s\n",
                             out_path.c_str(), issue.c_str());
            return kExitError;
        }

        if (options.compare) {
            const auto base_path =
                baselinePath(*options.compare, figure.name);
            if (!base_path) {
                std::printf("compare: no baseline for %s, skipped\n",
                            figure.name.c_str());
                continue;
            }
            const auto baseline = loadDocument(*base_path);
            if (!baseline)
                return kExitError;
            exp::CompareOptions copts;
            copts.tolerance = options.tolerance;
            const exp::CompareResult result =
                exp::compareReports(*reparsed, *baseline, copts);
            for (const std::string &note : result.notes)
                std::printf("compare: %s\n", note.c_str());
            if (result.ok()) {
                std::printf("compare: %s matches %s "
                            "(tolerance %.2f)\n",
                            figure.name.c_str(), base_path->c_str(),
                            options.tolerance);
            } else {
                ++regressions;
                for (const std::string &issue : result.issues)
                    std::fprintf(stderr, "REGRESSION: %s\n",
                                 issue.c_str());
            }
        }
    }

    if (ran == 0) {
        std::fprintf(stderr, "rrbench: no figures match the filter\n");
        return kExitUsage;
    }
    if (regressions > 0) {
        std::fprintf(stderr,
                     "rrbench: %u figure(s) regressed against the "
                     "baseline\n",
                     regressions);
        return kExitRegression;
    }
    return kExitOk;
}
