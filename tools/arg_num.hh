/**
 * @file
 * Strict numeric command-line argument parsing shared by the RRISC
 * tools. `std::strtoul(arg, nullptr, 0)` silently maps garbage to 0
 * ("--check foo" used to disable the check instead of failing); these
 * helpers reject non-numeric and out-of-range values so callers can
 * exit with the usage status (64). The underlying whole-string parse
 * lives in base/parse_num.hh, where the benchmark harness's
 * environment knobs (exp/env.hh) reuse it.
 */

#ifndef RR_TOOLS_ARG_NUM_HH
#define RR_TOOLS_ARG_NUM_HH

#include <cstdint>
#include <cstdio>
#include <limits>

#include "base/parse_num.hh"

namespace rr::tools {

/**
 * Parse @p text as an unsigned integer (decimal, or 0x/0X hex;
 * leading zeros are decimal, never octal).
 * @return true and sets @p out only when the whole string is a valid
 *         number no greater than @p max.
 */
inline bool
parseUnsigned(const char *text, uint64_t &out,
              uint64_t max = std::numeric_limits<uint64_t>::max())
{
    return rr::parseUnsigned(text, out, max);
}

/**
 * Parse the value of option @p option (typically `argv[++i]`) or
 * complain on stderr as "<tool>: <option> expects a number...".
 * @return true and sets @p out on success.
 */
inline bool
requireUnsigned(const char *tool, const char *option, const char *text,
                uint64_t &out,
                uint64_t max = std::numeric_limits<uint64_t>::max())
{
    if (text == nullptr) {
        std::fprintf(stderr, "%s: %s expects a value\n", tool, option);
        return false;
    }
    if (!parseUnsigned(text, out, max)) {
        std::fprintf(stderr,
                     "%s: %s expects an unsigned number <= %llu, "
                     "got '%s'\n",
                     tool, option,
                     static_cast<unsigned long long>(max), text);
        return false;
    }
    return true;
}

} // namespace rr::tools

#endif // RR_TOOLS_ARG_NUM_HH
