/**
 * @file
 * Shared command-line option parser for the RRISC tools (rrasm,
 * rrsim, rrlint, rrbench). One registration API, one parsing loop,
 * and one convention — docs/TOOLS.md is the single reference:
 *
 *   exit 0   success
 *   exit 1   problems found in the input (assembly errors, lint
 *            findings, simulator traps, benchmark regressions)
 *   exit 2   operational failure (unreadable or unwritable files,
 *            invalid result documents, failed audits)
 *   exit 64  usage errors (unknown options, malformed numbers,
 *            missing or unexpected arguments)
 *
 * Every tool accepts `--name value` and `--name=value` spellings,
 * plus the uniform `--help`, `--version`, `--quiet`, and (where it
 * has a machine-readable form) `--json`. Numeric options reuse the
 * strict whole-string parser from arg_num.hh, so `--steps banana` is
 * a usage error, never a silent zero.
 */

#ifndef RR_TOOLS_CLI_HH
#define RR_TOOLS_CLI_HH

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "arg_num.hh"

namespace rr::tools {

/** One version string for the whole tool suite. */
inline constexpr const char *kToolsVersion = "0.3.0";

/** The uniform exit codes (documented in docs/TOOLS.md). */
inline constexpr int kExitOk = 0;
inline constexpr int kExitProblems = 1;
inline constexpr int kExitFailure = 2;
inline constexpr int kExitUsage = 64;

/**
 * Declarative option parser.
 *
 * Register options against output locations, then call parse().
 * parse() returns a negative value when the program should continue,
 * or a ready exit status (0 after --help/--version, 64 on usage
 * errors). Positional arguments are collected for the caller to
 * validate — see positionals().
 */
class OptionParser
{
  public:
    /**
     * @param tool  the program name used in messages ("rrsim")
     * @param usage full usage text, printed by --help and after
     *              usage errors
     */
    OptionParser(std::string tool, std::string usage)
        : tool_(std::move(tool)), usage_(std::move(usage))
    {
    }

    /** `--name` sets @p out to true; a `=value` form is rejected. */
    void
    flag(const std::string &name, bool *out)
    {
        specs_.push_back({name, Kind::Flag, out, nullptr, nullptr,
                          nullptr, nullptr, 0, 0, {}});
    }

    /** `--name V` / `--name=V` stores V into @p out. */
    void
    value(const std::string &name, std::string *out,
          bool *seen = nullptr)
    {
        specs_.push_back({name, Kind::Value, seen, out, nullptr,
                          nullptr, nullptr, 0, 0, {}});
    }

    /** Repeatable `--name V`: every occurrence appends to @p out. */
    void
    repeated(const std::string &name, std::vector<std::string> *out)
    {
        specs_.push_back({name, Kind::Repeated, nullptr, nullptr, out,
                          nullptr, nullptr, 0, 0, {}});
    }

    /**
     * Strict unsigned option: whole-string numeric in
     * [@p min, @p max], else a usage error.
     */
    void
    number(const std::string &name, uint64_t *out, uint64_t min,
           uint64_t max, bool *seen = nullptr)
    {
        specs_.push_back({name, Kind::Number, seen, nullptr, nullptr,
                          out, nullptr, min, max, {}});
    }

    /** Non-negative real option (for tolerances). */
    void
    real(const std::string &name, double *out)
    {
        specs_.push_back({name, Kind::Real, nullptr, nullptr, nullptr,
                          nullptr, out, 0, 0, {}});
    }

    /**
     * `--name` alone sets @p out_flag; `--name=V` additionally
     * stores V (rrsim's `--trace` vs `--trace=FILE`).
     */
    void
    flagOrValue(const std::string &name, bool *out_flag,
                std::string *out_value)
    {
        specs_.push_back({name, Kind::FlagOrValue, out_flag, out_value,
                          nullptr, nullptr, nullptr, 0, 0, {}});
    }

    /** String option restricted to an enumerated set. */
    void
    choice(const std::string &name, std::string *out,
           std::vector<std::string> allowed)
    {
        specs_.push_back({name, Kind::Choice, nullptr, out, nullptr,
                          nullptr, nullptr, 0, 0, std::move(allowed)});
    }

    /**
     * Print "tool: message" and the usage text to stderr.
     * @return kExitUsage, so callers can `return parser.fail(...)`.
     */
    int
    fail(const char *format, ...) const
    {
        std::va_list args;
        va_start(args, format);
        std::fprintf(stderr, "%s: ", tool_.c_str());
        std::vfprintf(stderr, format, args);
        std::fputc('\n', stderr);
        va_end(args);
        std::fputs(usage_.c_str(), stderr);
        return kExitUsage;
    }

    /**
     * Parse the command line.
     * @return a negative value to continue, or the exit status the
     *         program should return immediately.
     */
    int
    parse(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--help" || arg == "-h") {
                std::fputs(usage_.c_str(), stdout);
                return kExitOk;
            }
            if (arg == "--version") {
                std::printf("%s (rr-tools) %s\n", tool_.c_str(),
                            kToolsVersion);
                return kExitOk;
            }

            std::string name = arg;
            std::string inline_value;
            bool has_inline = false;
            if (arg.size() > 1 && arg[0] == '-') {
                const std::size_t eq = arg.find('=');
                if (eq != std::string::npos) {
                    name = arg.substr(0, eq);
                    inline_value = arg.substr(eq + 1);
                    has_inline = true;
                }
            }

            Spec *spec = find(name);
            if (spec == nullptr) {
                if (arg.size() > 1 && arg[0] == '-')
                    return fail("unknown option '%s'", arg.c_str());
                positionals_.push_back(arg);
                continue;
            }

            auto take = [&]() -> const char * {
                if (has_inline)
                    return inline_value.c_str();
                return i + 1 < argc ? argv[++i] : nullptr;
            };

            switch (spec->kind) {
            case Kind::Flag:
                if (has_inline)
                    return fail("option '%s' does not take a value",
                                name.c_str());
                *spec->flag_out = true;
                break;
            case Kind::FlagOrValue:
                *spec->flag_out = true;
                if (has_inline)
                    *spec->string_out = inline_value;
                break;
            case Kind::Value:
            case Kind::Choice: {
                const char *text = take();
                if (text == nullptr)
                    return fail("%s expects a value", name.c_str());
                if (spec->kind == Kind::Choice &&
                    !allowedChoice(*spec, text)) {
                    return fail("%s expects one of %s, got '%s'",
                                name.c_str(),
                                choiceList(*spec).c_str(), text);
                }
                *spec->string_out = text;
                if (spec->flag_out != nullptr)
                    *spec->flag_out = true; // `seen` marker
                break;
            }
            case Kind::Repeated: {
                const char *text = take();
                if (text == nullptr)
                    return fail("%s expects a value", name.c_str());
                spec->list_out->push_back(text);
                break;
            }
            case Kind::Number: {
                const char *text = take();
                uint64_t parsed = 0;
                if (text == nullptr)
                    return fail("%s expects a value", name.c_str());
                if (!parseUnsigned(text, parsed, spec->max) ||
                    parsed < spec->min) {
                    return fail("%s expects an unsigned number in "
                                "[%llu, %llu], got '%s'",
                                name.c_str(),
                                static_cast<unsigned long long>(
                                    spec->min),
                                static_cast<unsigned long long>(
                                    spec->max),
                                text);
                }
                *spec->number_out = parsed;
                if (spec->flag_out != nullptr)
                    *spec->flag_out = true; // `seen` marker
                break;
            }
            case Kind::Real: {
                const char *text = take();
                char *end = nullptr;
                const double parsed =
                    text != nullptr ? std::strtod(text, &end) : 0.0;
                if (text == nullptr || end == text || *end != '\0' ||
                    parsed < 0.0) {
                    return fail("%s expects a non-negative number",
                                name.c_str());
                }
                *spec->real_out = parsed;
                break;
            }
            }
        }
        return -1; // continue
    }

    const std::vector<std::string> &
    positionals() const
    {
        return positionals_;
    }

    const std::string &tool() const { return tool_; }

  private:
    enum class Kind
    {
        Flag,
        FlagOrValue,
        Value,
        Repeated,
        Number,
        Real,
        Choice,
    };

    struct Spec
    {
        std::string name;
        Kind kind;
        bool *flag_out;   ///< flag target, or `seen` marker
        std::string *string_out;
        std::vector<std::string> *list_out;
        uint64_t *number_out;
        double *real_out;
        uint64_t min;
        uint64_t max;
        std::vector<std::string> allowed;
    };

    Spec *
    find(const std::string &name)
    {
        for (Spec &spec : specs_) {
            if (spec.name == name)
                return &spec;
        }
        return nullptr;
    }

    static bool
    allowedChoice(const Spec &spec, const std::string &text)
    {
        for (const std::string &candidate : spec.allowed) {
            if (candidate == text)
                return true;
        }
        return false;
    }

    static std::string
    choiceList(const Spec &spec)
    {
        std::string list;
        for (const std::string &candidate : spec.allowed) {
            if (!list.empty())
                list += "|";
            list += candidate;
        }
        return list;
    }

    std::string tool_;
    std::string usage_;
    std::vector<Spec> specs_;
    std::vector<std::string> positionals_;
};

/** Minimal JSON string escaping for the tools' --json output. */
inline std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (const char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
                out += buffer;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace rr::tools

#endif // RR_TOOLS_CLI_HH
