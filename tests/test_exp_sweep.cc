/**
 * @file
 * Tests for the rrbench infrastructure: the deterministic worker
 * pool (engine.hh), jobs-invariance of sweep results, the JSON
 * writer/parser round trip, report schema validation, and baseline
 * comparison (drift and crossover detection).
 */

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/compare.hh"
#include "exp/engine.hh"
#include "exp/json_in.hh"
#include "exp/json_out.hh"
#include "exp/registry.hh"
#include "exp/report.hh"
#include "exp/sweep.hh"
#include "exp/tracectl.hh"
#include "multithread/simulation_spec.hh"
#include "multithread/workload.hh"
#include "trace/chrome_export.hh"

namespace rr {
namespace {

/** A small, cheap panel used for the determinism tests. */
exp::FigurePanel
cheapPanel(unsigned jobs)
{
    exp::setDefaultJobs(jobs);
    const exp::PanelMaker maker = [](mt::ArchKind arch, double r,
                                     double l, uint64_t seed) {
        mt::MtConfig config =
            mt::SimulationSpec()
                .cacheFaults(r, static_cast<uint64_t>(l))
                .arch(arch)
                .numRegs(128)
                .threads(10)
                .workPerThread(3000)
                .seed(seed)
                .build();
        return config;
    };
    exp::FigurePanel panel =
        exp::sweepPanel(128, maker, {16.0, 64.0}, {100.0, 400.0}, 2);
    exp::setDefaultJobs(1);
    return panel;
}

/** Serialize a panel through the report layer for byte comparison. */
std::string
panelJson(const exp::FigurePanel &panel)
{
    exp::ReportBuilder builder("test", "test", {2, 10, true});
    builder.panel("p", "", panel);
    return builder.takeReport().toJson();
}

TEST(Engine, RunParallelVisitsEveryIndexOnce)
{
    for (const unsigned jobs : {1u, 4u}) {
        std::vector<std::atomic<int>> visits(100);
        exp::runParallel(
            visits.size(), [&](std::size_t i) { visits[i]++; }, jobs);
        for (const auto &count : visits)
            EXPECT_EQ(count.load(), 1);
    }
}

TEST(Engine, RunParallelHandlesEmptyAndSingle)
{
    int calls = 0;
    exp::runParallel(0, [&](std::size_t) { ++calls; }, 4);
    EXPECT_EQ(calls, 0);
    exp::runParallel(1, [&](std::size_t) { ++calls; }, 4);
    EXPECT_EQ(calls, 1);
}

TEST(Engine, RunParallelPropagatesExceptions)
{
    EXPECT_THROW(exp::runParallel(
                     8,
                     [](std::size_t i) {
                         if (i == 3)
                             throw std::runtime_error("boom");
                     },
                     4),
                 std::runtime_error);
}

// The acceptance contract: the job count changes wall-clock time
// only, never a single result digit.
TEST(Sweep, PanelIsByteIdenticalAcrossJobCounts)
{
    const std::string serial = panelJson(cheapPanel(1));
    const std::string parallel = panelJson(cheapPanel(8));
    EXPECT_EQ(serial, parallel);
}

TEST(Sweep, ReplicateManyMatchesReplicate)
{
    const exp::ConfigMaker maker = [](mt::ArchKind arch,
                                      uint64_t seed) {
        mt::MtConfig config = mt::SimulationSpec()
                                  .cacheFaults(32.0, 200)
                                  .arch(arch)
                                  .numRegs(128)
                                  .threads(8)
                                  .workPerThread(3000)
                                  .seed(seed)
                                  .build();
        return config;
    };
    const std::vector<exp::Replicated> many = exp::replicateMany(
        {{maker, mt::ArchKind::FixedHw},
         {maker, mt::ArchKind::Flexible}},
        2);
    ASSERT_EQ(many.size(), 2u);
    const exp::Replicated fixed =
        exp::replicate(maker, mt::ArchKind::FixedHw, 2);
    const exp::Replicated flex =
        exp::replicate(maker, mt::ArchKind::Flexible, 2);
    EXPECT_DOUBLE_EQ(many[0].meanEfficiency, fixed.meanEfficiency);
    EXPECT_DOUBLE_EQ(many[1].meanEfficiency, flex.meanEfficiency);
    EXPECT_DOUBLE_EQ(many[0].stddev, fixed.stddev);
}

TEST(Sweep, Ci95HalfWidth)
{
    EXPECT_DOUBLE_EQ(exp::ci95HalfWidth(1.0, 0), 0.0);
    EXPECT_DOUBLE_EQ(exp::ci95HalfWidth(1.0, 1), 0.0);
    // n = 2, df = 1: t = 12.706, / sqrt(2).
    EXPECT_NEAR(exp::ci95HalfWidth(1.0, 2), 12.706 / std::sqrt(2.0),
                1e-9);
    // Large n: normal approximation.
    EXPECT_NEAR(exp::ci95HalfWidth(1.0, 100), 1.96 / 10.0, 1e-9);
}

TEST(Json, WriterProducesParseableDocument)
{
    exp::JsonWriter w;
    w.beginObject();
    w.key("name");
    w.value("a \"quoted\" string\nwith control \x01 bytes");
    w.key("pi");
    w.value(3.25);
    w.key("list");
    w.beginArray();
    w.value(uint64_t{42});
    w.value(true);
    w.value(-1);
    w.endArray();
    w.endObject();

    std::string error;
    const auto doc = exp::parseJson(w.str(), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    ASSERT_TRUE(doc->isObject());
    EXPECT_EQ(doc->stringOr("name", ""),
              "a \"quoted\" string\nwith control \x01 bytes");
    EXPECT_DOUBLE_EQ(doc->numberOr("pi", 0.0), 3.25);
    const exp::JsonValue *list = doc->find("list");
    ASSERT_NE(list, nullptr);
    ASSERT_EQ(list->elements.size(), 3u);
    EXPECT_DOUBLE_EQ(list->elements[0].number, 42.0);
    EXPECT_TRUE(list->elements[1].boolean);
    EXPECT_DOUBLE_EQ(list->elements[2].number, -1.0);
}

TEST(Json, NumberFormattingRoundTrips)
{
    for (const double v : {0.0, 1.0, -0.5, 0.1, 1e-12, 123456.789}) {
        const std::string text = exp::jsonNumber(v);
        const auto parsed = exp::parseJson(text);
        ASSERT_TRUE(parsed.has_value()) << text;
        EXPECT_DOUBLE_EQ(parsed->number, v) << text;
    }
    // JSON cannot represent non-finite values.
    EXPECT_EQ(exp::jsonNumber(std::nan("")), "null");
}

TEST(Json, ParserRejectsMalformedInput)
{
    for (const char *bad :
         {"", "{", "[1,]", "{\"a\":}", "tru", "1 2", "{\"a\" 1}",
          "\"unterminated", "[1] trailing"}) {
        std::string error;
        EXPECT_FALSE(exp::parseJson(bad, &error).has_value()) << bad;
        EXPECT_FALSE(error.empty()) << bad;
    }
}

TEST(Json, ParserRejectsExcessiveNesting)
{
    std::string deep;
    for (int i = 0; i < 100; ++i)
        deep += "[";
    EXPECT_FALSE(exp::parseJson(deep).has_value());
}

/** Build a tiny but complete report for schema/compare tests. */
exp::Report
sampleReport()
{
    exp::setDefaultJobs(1);
    exp::ReportBuilder builder("sample", "a sample figure",
                               {2, 10, true});
    builder.text("a note");
    Table table({"R", "value"});
    table.addRow({"8", "0.5"});
    table.addRow({"32", "0.75"});
    builder.table("tbl", "numbers", std::move(table));
    builder.panel("p", "panel", cheapPanel(1));
    return builder.takeReport();
}

TEST(Report, JsonValidatesAgainstSchema)
{
    const std::string json = sampleReport().toJson();
    std::string error;
    const auto doc = exp::parseJson(json, &error);
    ASSERT_TRUE(doc.has_value()) << error;
    const std::vector<std::string> issues =
        exp::validateReportJson(*doc);
    EXPECT_TRUE(issues.empty())
        << "first issue: " << (issues.empty() ? "" : issues[0]);
}

TEST(Report, ValidatorFlagsBrokenDocuments)
{
    // Wrong schema string.
    auto doc = exp::parseJson(
        "{\"schema\":\"other.v9\",\"figure\":\"f\",\"title\":\"t\","
        "\"run\":{\"seeds\":1,\"threads\":1,\"fast\":false},"
        "\"sections\":[]}");
    ASSERT_TRUE(doc.has_value());
    EXPECT_FALSE(exp::validateReportJson(*doc).empty());

    // Missing sections array.
    doc = exp::parseJson(
        "{\"schema\":\"rr.bench.v1\",\"figure\":\"f\","
        "\"title\":\"t\","
        "\"run\":{\"seeds\":1,\"threads\":1,\"fast\":false}}");
    ASSERT_TRUE(doc.has_value());
    EXPECT_FALSE(exp::validateReportJson(*doc).empty());
}

TEST(Report, RenderTextMentionsEverySection)
{
    const exp::Report report = sampleReport();
    const std::string text = report.renderText();
    EXPECT_NE(text.find("a sample figure"), std::string::npos);
    EXPECT_NE(text.find("a note"), std::string::npos);
    EXPECT_NE(text.find("numbers"), std::string::npos);
    EXPECT_NE(text.find("flex/fixed"), std::string::npos);
}

TEST(Compare, SelfComparisonIsClean)
{
    const auto doc = exp::parseJson(sampleReport().toJson());
    ASSERT_TRUE(doc.has_value());
    const exp::CompareResult result =
        exp::compareReports(*doc, *doc, {});
    EXPECT_TRUE(result.ok())
        << (result.issues.empty() ? "" : result.issues[0]);
}

/** Scale every flexible mean in the report's panel by @p factor. */
exp::Report
scaledFlexible(double factor)
{
    exp::Report report = sampleReport();
    for (auto &section : report.sections) {
        if (!section.panel)
            continue;
        for (auto &point : section.panel->points)
            point.flexible.meanEfficiency *= factor;
    }
    return report;
}

TEST(Compare, DetectsInjectedEfficiencyRegression)
{
    const auto baseline = exp::parseJson(sampleReport().toJson());
    // A 10% flexible-efficiency drop must fail at 5% tolerance...
    const auto degraded = exp::parseJson(scaledFlexible(0.9).toJson());
    ASSERT_TRUE(baseline.has_value() && degraded.has_value());
    exp::CompareOptions options;
    options.tolerance = 0.05;
    EXPECT_FALSE(
        exp::compareReports(*degraded, *baseline, options).ok());
    // ... while a 1% perturbation passes.
    const auto wiggled = exp::parseJson(scaledFlexible(0.99).toJson());
    ASSERT_TRUE(wiggled.has_value());
    EXPECT_TRUE(
        exp::compareReports(*wiggled, *baseline, options).ok());
}

TEST(Compare, DetectsStructuralChanges)
{
    const auto baseline = exp::parseJson(sampleReport().toJson());
    exp::Report trimmed = sampleReport();
    trimmed.sections.pop_back(); // drop the panel
    const auto current = exp::parseJson(trimmed.toJson());
    ASSERT_TRUE(baseline.has_value() && current.has_value());
    EXPECT_FALSE(exp::compareReports(*current, *baseline, {}).ok());
}

TEST(Compare, RejectsMismatchedRunConfig)
{
    const auto baseline = exp::parseJson(sampleReport().toJson());
    exp::Report other = sampleReport();
    other.run.seeds = 7;
    const auto current = exp::parseJson(other.toJson());
    ASSERT_TRUE(baseline.has_value() && current.has_value());
    EXPECT_FALSE(exp::compareReports(*current, *baseline, {}).ok());
}

/** Deactivate the global controller even if a test fails. */
struct ControllerGuard
{
    explicit ControllerGuard(exp::TraceController &controller)
    {
        exp::TraceController::activate(&controller);
    }
    ~ControllerGuard() { exp::TraceController::activate(nullptr); }
};

/** cheapPanel() under a trace controller; returns its summary. */
exp::TraceSummary
tracedCheapPanel(unsigned jobs)
{
    exp::TraceController::Options options;
    options.audit = true;
    options.capture = true;
    exp::TraceController controller(options);
    ControllerGuard guard(controller);
    cheapPanel(jobs);
    return controller.summary();
}

// Auditing an entire sweep: every (point, arch, seed) simulation is
// independently reconciled, and the capture grabs exactly the
// representative pair (point 0, seed 1, both architectures).
TEST(TraceControl, SweepAuditsEverySimulationCleanly)
{
    const exp::TraceSummary summary = tracedCheapPanel(2);
    // cheapPanel: 2 run lengths x 2 latencies x 2 archs x 2 seeds.
    EXPECT_EQ(summary.simulations, 16u);
    EXPECT_GT(summary.events, 0u);
    EXPECT_EQ(summary.problemsTotal, 0u)
        << (summary.problems.empty() ? "" : summary.problems[0]);
    ASSERT_EQ(summary.captures.size(), 2u);
    for (const trace::ChromeStream &stream : summary.captures)
        EXPECT_FALSE(stream.events.empty()) << stream.process;
}

// The determinism contract extended to traces: the captured event
// streams — and therefore the exported Chrome trace bytes — are
// identical for every job count.
TEST(TraceControl, CapturedTraceIsByteIdenticalAcrossJobCounts)
{
    const exp::TraceSummary serial = tracedCheapPanel(1);
    const exp::TraceSummary parallel = tracedCheapPanel(8);
    EXPECT_EQ(trace::exportChromeTrace(serial.captures),
              trace::exportChromeTrace(parallel.captures));
    EXPECT_EQ(serial.events, parallel.events);
    EXPECT_EQ(serial.simulations, parallel.simulations);
}

// Without a controller the sweep path must not trace at all (the
// null-sink fast path), and results must match the traced run.
TEST(TraceControl, ControllerIsResultNeutral)
{
    const std::string plain = panelJson(cheapPanel(2));

    exp::TraceController::Options options;
    options.audit = true;
    exp::TraceController controller(options);
    std::string traced;
    {
        ControllerGuard guard(controller);
        traced = panelJson(cheapPanel(2));
    }
    EXPECT_EQ(plain, traced);
}

TEST(Registry, FiguresAreRegisteredAndSorted)
{
    // The test binary does not link the figure objects; register two
    // locally and check ordering plus run().
    exp::Registry &registry = exp::Registry::instance();
    registry.add({"zz_test_figure", "z", [](exp::ReportBuilder &b) {
                      b.text("ran");
                  }});
    registry.add({"aa_test_figure", "a", [](exp::ReportBuilder &) {}});
    const std::vector<exp::FigureInfo> figures = registry.figures();
    ASSERT_GE(figures.size(), 2u);
    for (std::size_t i = 1; i < figures.size(); ++i)
        EXPECT_LT(figures[i - 1].name, figures[i].name);

    for (const exp::FigureInfo &figure : figures) {
        if (figure.name != "zz_test_figure")
            continue;
        const exp::Report report =
            exp::Registry::run(figure, {1, 2, true});
        EXPECT_EQ(report.figure, "zz_test_figure");
        ASSERT_EQ(report.sections.size(), 1u);
        EXPECT_EQ(report.sections[0].note, "ran");
    }
}

} // namespace
} // namespace rr
