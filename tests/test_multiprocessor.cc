/**
 * @file
 * Tests for the multiprocessor fixed-point model: convergence,
 * monotone contention in the node count, the uncontended limit, and
 * the flexible-vs-fixed comparison under endogenous latency.
 */

#include <gtest/gtest.h>

#include "multithread/simulation_spec.hh"
#include "multithread/workload.hh"
#include "system/multiprocessor.hh"

namespace rr::system {
namespace {

SystemConfig
makeConfig(unsigned nodes, mt::ArchKind arch, double run_length = 16.0)
{
    SystemConfig config;
    config.numNodes = nodes;
    config.baseLatency = 50.0;
    config.msgServiceCycles = 2.0;
    config.nodeConfig = [arch, run_length](uint64_t latency) {
        mt::MtConfig node = mt::SimulationSpec()
                                .cacheFaults(run_length, latency)
                                .arch(arch)
                                .numRegs(128)
                                .threads(24)
                                .workPerThread(6000)
                                .build();
        return node;
    };
    return config;
}

TEST(Multiprocessor, ConvergesQuickly)
{
    const SystemResult result =
        simulateSystem(makeConfig(16, mt::ArchKind::Flexible));
    EXPECT_TRUE(result.converged);
    EXPECT_LE(result.iterations, 25u);
    EXPECT_GT(result.effectiveLatency, 50.0);
    EXPECT_GT(result.nodeEfficiency, 0.0);
    EXPECT_LE(result.networkUtilization, 0.95);
}

TEST(Multiprocessor, SingleNodeNearBaseLatency)
{
    const SystemResult result =
        simulateSystem(makeConfig(1, mt::ArchKind::Flexible));
    ASSERT_TRUE(result.converged);
    // One node barely loads the interconnect: L ~ base + service.
    EXPECT_LT(result.effectiveLatency, 56.0);
    EXPECT_LT(result.networkUtilization, 0.3);
}

TEST(Multiprocessor, ContentionGrowsWithNodeCount)
{
    const SystemResult small =
        simulateSystem(makeConfig(2, mt::ArchKind::Flexible));
    const SystemResult large =
        simulateSystem(makeConfig(64, mt::ArchKind::Flexible));
    EXPECT_GT(large.effectiveLatency, small.effectiveLatency);
    EXPECT_GT(large.networkUtilization, small.networkUtilization);
    // Per-node efficiency drops, aggregate still scales.
    EXPECT_LT(large.nodeEfficiency, small.nodeEfficiency);
    EXPECT_GT(large.aggregateThroughput, small.aggregateThroughput);
}

TEST(Multiprocessor, FlexibleSustainsHigherAggregate)
{
    const SystemResult fixed =
        simulateSystem(makeConfig(64, mt::ArchKind::FixedHw, 8.0));
    const SystemResult flex =
        simulateSystem(makeConfig(64, mt::ArchKind::Flexible, 8.0));
    ASSERT_TRUE(fixed.converged);
    ASSERT_TRUE(flex.converged);
    EXPECT_GT(flex.aggregateThroughput,
              1.1 * fixed.aggregateThroughput);
}

TEST(Multiprocessor, UtilizationClampHolds)
{
    SystemConfig config = makeConfig(1024, mt::ArchKind::Flexible, 4.0);
    config.msgServiceCycles = 8.0;
    const SystemResult result = simulateSystem(config);
    EXPECT_LE(result.networkUtilization, 0.95);
    EXPECT_GT(result.effectiveLatency, config.baseLatency);
}

TEST(MultiprocessorDeath, MissingNodeBuilderPanics)
{
    SystemConfig config;
    config.nodeConfig = nullptr;
    EXPECT_DEATH(simulateSystem(config), "node builder");
}

} // namespace
} // namespace rr::system
