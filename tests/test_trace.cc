/**
 * @file
 * Tests for the structured event-trace subsystem (src/trace/): the
 * sinks, the JSONL serialization, the Chrome trace_event exporter,
 * the cycle-conservation auditor (including a deliberately
 * mis-charged cost model it must catch), and the event emission of
 * both the event-driven MT simulator and the machine-level kernels.
 */

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/json_in.hh"
#include "kernel/machine_mt_kernel.hh"
#include "multithread/simulation_spec.hh"
#include "multithread/workload.hh"
#include "trace/audit.hh"
#include "trace/chrome_export.hh"
#include "trace/sink.hh"

namespace rr {
namespace {

trace::TraceEvent
makeEvent(trace::EventKind kind, uint64_t cycle, uint64_t cycles = 0)
{
    trace::TraceEvent event;
    event.kind = kind;
    event.cycle = cycle;
    event.cycles = cycles;
    return event;
}

/** A small, fast Figure 5 style configuration. */
mt::MtConfig
smallConfig(mt::ArchKind arch, bool sync)
{
    mt::SimulationSpec spec;
    if (sync)
        spec.syncFaults(32.0, 400.0);
    else
        spec.cacheFaults(16.0, 200);
    return spec.arch(arch)
        .numRegs(128)
        .threads(12)
        .workPerThread(4000)
        .seed(7)
        .build();
}

TEST(RingBufferSink, KeepsMostRecentAndCountsDropped)
{
    trace::RingBufferSink ring(4);
    for (uint64_t i = 0; i < 10; ++i)
        ring.emit(makeEvent(trace::EventKind::RunSegment, i));
    EXPECT_EQ(ring.emitted(), 10u);
    EXPECT_EQ(ring.dropped(), 6u);
    const std::vector<trace::TraceEvent> kept = ring.snapshot();
    ASSERT_EQ(kept.size(), 4u);
    // Oldest first: cycles 6, 7, 8, 9.
    for (std::size_t i = 0; i < kept.size(); ++i)
        EXPECT_EQ(kept[i].cycle, 6u + i);
}

TEST(RingBufferSink, PartiallyFilledSnapshotIsInOrder)
{
    trace::RingBufferSink ring(8);
    for (uint64_t i = 0; i < 3; ++i)
        ring.emit(makeEvent(trace::EventKind::Switch, i, 6));
    EXPECT_EQ(ring.dropped(), 0u);
    const auto kept = ring.snapshot();
    ASSERT_EQ(kept.size(), 3u);
    EXPECT_EQ(kept[0].cycle, 0u);
    EXPECT_EQ(kept[2].cycle, 2u);
}

TEST(StreamJsonSink, EmitsHeaderAndParseableLines)
{
    std::ostringstream out;
    trace::StreamJsonSink sink(out);

    trace::TraceEvent alloc = makeEvent(trace::EventKind::Alloc, 25,
                                        25);
    alloc.tid = 3;
    alloc.ctx = 16;
    alloc.ok = true;
    sink.emit(alloc);

    trace::TraceEvent fault =
        makeEvent(trace::EventKind::FaultIssue, 100);
    fault.tid = 3;
    fault.aux = 250;
    sink.emit(fault);
    sink.flush();
    EXPECT_EQ(sink.emitted(), 2u);

    std::istringstream lines(out.str());
    std::string line;
    std::vector<std::string> all;
    while (std::getline(lines, line))
        all.push_back(line);
    ASSERT_EQ(all.size(), 3u);

    // Header carries the schema id; every line is valid JSON.
    std::string error;
    const auto header = exp::parseJson(all[0], &error);
    ASSERT_TRUE(header.has_value()) << error;
    EXPECT_EQ(header->stringOr("schema", ""), "rr.trace.v1");

    const auto first = exp::parseJson(all[1], &error);
    ASSERT_TRUE(first.has_value()) << error;
    EXPECT_EQ(first->stringOr("ev", ""), "alloc");
    EXPECT_DOUBLE_EQ(first->numberOr("cycle", -1), 25.0);
    EXPECT_DOUBLE_EQ(first->numberOr("tid", -1), 3.0);

    const auto second = exp::parseJson(all[2], &error);
    ASSERT_TRUE(second.has_value()) << error;
    EXPECT_EQ(second->stringOr("ev", ""), "fault_issue");
    EXPECT_DOUBLE_EQ(second->numberOr("aux", -1), 250.0);
}

TEST(TeeSink, ToleratesNullBranchesAndDuplicates)
{
    trace::VectorSink a;
    trace::VectorSink b;
    trace::TeeSink both(&a, &b);
    both.emit(makeEvent(trace::EventKind::Queue, 10, 10));
    EXPECT_EQ(a.events().size(), 1u);
    EXPECT_EQ(b.events().size(), 1u);

    trace::TeeSink half(nullptr, &a);
    half.emit(makeEvent(trace::EventKind::Queue, 20, 10));
    half.flush();
    EXPECT_EQ(a.events().size(), 2u);
}

// The conservation contract, end to end: for both fault processes
// and all architectures, the trace the simulator emits reconciles
// exactly with the statistics it reports.
TEST(Audit, EventSimulatorConservesCycles)
{
    for (const bool sync : {false, true}) {
        for (const mt::ArchKind arch :
             {mt::ArchKind::Flexible, mt::ArchKind::FixedHw,
              mt::ArchKind::AddReloc}) {
            mt::MtConfig config = smallConfig(arch, sync);
            trace::TraceAuditor auditor(config.costs);
            config.traceSink = &auditor;
            const mt::MtStats stats = mt::simulate(config);
            EXPECT_GT(auditor.eventsSeen(), 0u);
            const std::vector<std::string> problems =
                auditor.reconcile(mt::auditTotals(stats));
            EXPECT_TRUE(problems.empty())
                << "arch " << mt::archName(arch) << " sync " << sync
                << ": " << problems.front();
        }
    }
}

TEST(Audit, TwoPhaseUnloadingConservesCycles)
{
    mt::MtConfig config = mt::SimulationSpec()
                              .syncFaults(24.0, 600.0)
                              .arch(mt::ArchKind::Flexible)
                              .numRegs(64)
                              .threads(16)
                              .workPerThread(3000)
                              .seed(3)
                              .build();
    ASSERT_EQ(config.unloadPolicy, mt::UnloadPolicyKind::TwoPhase);
    trace::TraceAuditor auditor(config.costs);
    config.traceSink = &auditor;
    const mt::MtStats stats = mt::simulate(config);
    EXPECT_GT(stats.unloads, 0u);
    const auto problems = auditor.reconcile(mt::auditTotals(stats));
    EXPECT_TRUE(problems.empty())
        << (problems.empty() ? "" : problems.front());
}

// An auditor built on the WRONG cost model must report the
// mis-charge: every Figure 4 charge is checked against the model,
// not just summed.
TEST(Audit, CatchesMischargedCosts)
{
    mt::MtConfig config =
        smallConfig(mt::ArchKind::Flexible, false);
    runtime::CostModel wrong = config.costs;
    wrong.allocSucceed += 3;
    trace::TraceAuditor auditor(wrong);
    config.traceSink = &auditor;
    const mt::MtStats stats = mt::simulate(config);
    ASSERT_GT(stats.allocSuccesses, 0u);
    const auto problems = auditor.reconcile(mt::auditTotals(stats));
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems.front().find("alloc"), std::string::npos);
}

// Tracing must not change a single digit of any result: the sink
// observes charges that are made regardless.
TEST(Trace, AttachingASinkIsBehaviorNeutral)
{
    mt::MtConfig plain = smallConfig(mt::ArchKind::Flexible, true);
    const mt::MtStats expected = mt::simulate(plain);

    mt::MtConfig traced = smallConfig(mt::ArchKind::Flexible, true);
    trace::VectorSink sink;
    traced.traceSink = &sink;
    const mt::MtStats observed = mt::simulate(traced);

    EXPECT_GT(sink.events().size(), 0u);
    EXPECT_EQ(observed.totalCycles, expected.totalCycles);
    EXPECT_EQ(observed.usefulCycles, expected.usefulCycles);
    EXPECT_EQ(observed.idleCycles, expected.idleCycles);
    EXPECT_EQ(observed.faults, expected.faults);
    EXPECT_DOUBLE_EQ(observed.efficiencyCentral,
                     expected.efficiencyCentral);
}

TEST(Trace, EventsArriveInSimulationOrder)
{
    mt::MtConfig config = smallConfig(mt::ArchKind::Flexible, false);
    trace::VectorSink sink;
    config.traceSink = &sink;
    mt::simulate(config);
    ASSERT_GT(sink.events().size(), 2u);
    uint64_t last = 0;
    for (const trace::TraceEvent &event : sink.events()) {
        EXPECT_GE(event.cycle, last);
        EXPECT_LE(event.cycles, event.cycle);
        last = event.cycle;
    }
}

TEST(ChromeExport, ProducesValidViewerDocument)
{
    mt::MtConfig config = smallConfig(mt::ArchKind::Flexible, false);
    trace::VectorSink sink;
    config.traceSink = &sink;
    mt::simulate(config);

    trace::ChromeStream stream;
    stream.process = "flexible";
    stream.events = sink.events();
    const std::string doc = trace::exportChromeTrace({stream});

    std::string error;
    const auto parsed = exp::parseJson(doc, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    const exp::JsonValue *events = parsed->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_GT(events->elements.size(), 2u);

    // First records are process/thread metadata; the body must
    // contain both complete slices and instants on pid 1.
    EXPECT_EQ(events->elements[0].stringOr("ph", ""), "M");
    bool slices = false;
    bool instants = false;
    for (const exp::JsonValue &event : events->elements) {
        const std::string ph = event.stringOr("ph", "");
        slices = slices || ph == "X";
        instants = instants || ph == "i";
        if (ph == "X") {
            EXPECT_GE(event.numberOr("dur", -1.0), 0.0);
        }
    }
    EXPECT_TRUE(slices);
    EXPECT_TRUE(instants);
}

TEST(ChromeExport, TruncationIsVisible)
{
    trace::ChromeStream stream;
    stream.process = "flexible";
    stream.dropped = 123;
    stream.events = {makeEvent(trace::EventKind::RunSegment, 5, 5)};
    const std::string doc = trace::exportChromeTrace({stream});
    EXPECT_NE(doc.find("truncated"), std::string::npos);
    EXPECT_NE(doc.find("123"), std::string::npos);
}

// The machine-level kernel emits matching issue/completion pairs
// with machine-cycle stamps.
TEST(KernelTrace, MachineKernelEmitsFaultPairs)
{
    kernel::KernelConfig config;
    config.numThreads = 4;
    config.segmentUnits = makeConstant(40);
    config.latency = makeConstant(300);
    config.segmentsPerThread = 8;
    trace::VectorSink sink;
    config.traceSink = &sink;
    const kernel::KernelResult result =
        kernel::runMachineKernel(config);
    ASSERT_TRUE(result.halted);

    uint64_t issued = 0;
    uint64_t completed = 0;
    uint64_t polls = 0;
    for (const trace::TraceEvent &event : sink.events()) {
        if (event.kind == trace::EventKind::FaultIssue)
            ++issued;
        else if (event.kind == trace::EventKind::FaultComplete)
            ++completed;
        else if (event.kind == trace::EventKind::SchedulerPoll)
            ++polls;
    }
    EXPECT_EQ(issued, result.faults);
    EXPECT_EQ(completed, result.faults);
    EXPECT_EQ(polls, result.failedPolls);
}

TEST(KernelTrace, BarrierModeEmitsBarrierReleases)
{
    kernel::KernelConfig config;
    config.numThreads = 4;
    config.segmentUnits = makeGeometric(24.0);
    config.service = kernel::FaultService::Barrier;
    config.segmentsPerThread = 6;
    trace::VectorSink sink;
    config.traceSink = &sink;
    const kernel::KernelResult result =
        kernel::runMachineKernel(config);
    ASSERT_TRUE(result.halted);
    uint64_t barriers = 0;
    for (const trace::TraceEvent &event : sink.events())
        if (event.kind == trace::EventKind::Barrier)
            ++barriers;
    EXPECT_EQ(barriers, result.barriers);
    EXPECT_GT(barriers, 0u);
}

} // namespace
} // namespace rr
