/**
 * @file
 * Differential test of the CPU's ALU against an independent oracle:
 * random operands through every arithmetic/logic opcode, checked
 * against a second, straight-line implementation of the semantics.
 */

#include <gtest/gtest.h>

#include "base/rng.hh"
#include "machine/cpu.hh"

namespace rr::machine {
namespace {

/** Independent re-statement of the RRISC ALU semantics. */
uint32_t
oracle(isa::Opcode op, uint32_t a, uint32_t b, int32_t imm)
{
    using isa::Opcode;
    const auto sa = static_cast<int32_t>(a);
    const auto ib = static_cast<uint32_t>(imm);
    switch (op) {
      case Opcode::ADD:
        return a + b;
      case Opcode::SUB:
        return a - b;
      case Opcode::AND:
        return a & b;
      case Opcode::OR:
        return a | b;
      case Opcode::XOR:
        return a ^ b;
      case Opcode::SLL:
        return a << (b & 31);
      case Opcode::SRL:
        return a >> (b & 31);
      case Opcode::SRA:
        return static_cast<uint32_t>(sa >> (b & 31));
      case Opcode::SLT:
        return sa < static_cast<int32_t>(b) ? 1 : 0;
      case Opcode::SLTU:
        return a < b ? 1 : 0;
      case Opcode::ADDI:
        return a + ib;
      case Opcode::ANDI:
        return a & ib;
      case Opcode::ORI:
        return a | ib;
      case Opcode::XORI:
        return a ^ ib;
      case Opcode::SLTI:
        return sa < imm ? 1 : 0;
      case Opcode::SLLI:
        return a << (ib & 31);
      case Opcode::SRLI:
        return a >> (ib & 31);
      case Opcode::SRAI:
        return static_cast<uint32_t>(sa >> (ib & 31));
      default:
        return 0;
    }
}

CpuConfig
config128()
{
    CpuConfig config;
    config.numRegs = 128;
    config.operandWidth = 5;
    config.memWords = 64;
    return config;
}

TEST(CpuDifferential, RegisterRegisterOpsMatchOracle)
{
    const isa::Opcode ops[] = {
        isa::Opcode::ADD, isa::Opcode::SUB, isa::Opcode::AND,
        isa::Opcode::OR,  isa::Opcode::XOR, isa::Opcode::SLL,
        isa::Opcode::SRL, isa::Opcode::SRA, isa::Opcode::SLT,
        isa::Opcode::SLTU};
    Rng rng(606);
    for (int trial = 0; trial < 2000; ++trial) {
        const isa::Opcode op = ops[rng.nextRange(0, 9)];
        const auto a = static_cast<uint32_t>(rng.next());
        const auto b = static_cast<uint32_t>(rng.next());

        Cpu cpu(config128());
        cpu.regs().write(1, a);
        cpu.regs().write(2, b);
        cpu.mem().write(0, isa::encode(isa::makeR3(op, 3, 1, 2)));
        isa::Instruction halt;
        halt.op = isa::Opcode::HALT;
        cpu.mem().write(1, isa::encode(halt));
        cpu.run(5);

        ASSERT_EQ(cpu.trap(), TrapKind::None);
        EXPECT_EQ(cpu.regs().read(3), oracle(op, a, b, 0))
            << isa::mnemonicOf(op) << " a=" << a << " b=" << b;
    }
}

TEST(CpuDifferential, ImmediateOpsMatchOracle)
{
    const isa::Opcode ops[] = {
        isa::Opcode::ADDI, isa::Opcode::ANDI, isa::Opcode::ORI,
        isa::Opcode::XORI, isa::Opcode::SLTI, isa::Opcode::SLLI,
        isa::Opcode::SRLI, isa::Opcode::SRAI};
    Rng rng(707);
    for (int trial = 0; trial < 2000; ++trial) {
        const isa::Opcode op = ops[rng.nextRange(0, 7)];
        const auto a = static_cast<uint32_t>(rng.next());
        const auto imm = static_cast<int32_t>(
                             rng.nextRange(0, 4095)) -
                         2048;

        Cpu cpu(config128());
        cpu.regs().write(1, a);
        cpu.mem().write(0, isa::encode(isa::makeI(op, 3, 1, imm)));
        isa::Instruction halt;
        halt.op = isa::Opcode::HALT;
        cpu.mem().write(1, isa::encode(halt));
        cpu.run(5);

        ASSERT_EQ(cpu.trap(), TrapKind::None);
        EXPECT_EQ(cpu.regs().read(3), oracle(op, a, 0, imm))
            << isa::mnemonicOf(op) << " a=" << a << " imm=" << imm;
    }
}

TEST(CpuDifferential, BranchDecisionsMatchOracle)
{
    const isa::Opcode ops[] = {isa::Opcode::BEQ, isa::Opcode::BNE,
                               isa::Opcode::BLT, isa::Opcode::BGE};
    Rng rng(808);
    for (int trial = 0; trial < 1000; ++trial) {
        const isa::Opcode op = ops[rng.nextRange(0, 3)];
        // Mix wide-random and near-equal operands.
        const auto a = static_cast<uint32_t>(
            rng.nextRange(0, 3) == 0 ? rng.nextRange(0, 3)
                                     : rng.next());
        const auto b = static_cast<uint32_t>(
            rng.nextRange(0, 3) == 0 ? rng.nextRange(0, 3)
                                     : rng.next());

        bool expect_taken = false;
        switch (op) {
          case isa::Opcode::BEQ:
            expect_taken = a == b;
            break;
          case isa::Opcode::BNE:
            expect_taken = a != b;
            break;
          case isa::Opcode::BLT:
            expect_taken = static_cast<int32_t>(a) <
                           static_cast<int32_t>(b);
            break;
          default:
            expect_taken = static_cast<int32_t>(a) >=
                           static_cast<int32_t>(b);
            break;
        }

        Cpu cpu(config128());
        cpu.regs().write(1, a);
        cpu.regs().write(2, b);
        // Branch over one instruction: r3 = 1 only when NOT taken.
        cpu.mem().write(0, isa::encode(isa::makeB(op, 1, 2, 2)));
        cpu.mem().write(1, isa::encode(isa::makeI(
                               isa::Opcode::ADDI, 3, 4, 1)));
        isa::Instruction halt;
        halt.op = isa::Opcode::HALT;
        cpu.mem().write(2, isa::encode(halt));
        cpu.run(5);

        ASSERT_EQ(cpu.trap(), TrapKind::None);
        EXPECT_EQ(cpu.regs().read(3), expect_taken ? 0u : 1u)
            << isa::mnemonicOf(op) << " a=" << a << " b=" << b;
    }
}

} // namespace
} // namespace rr::machine
