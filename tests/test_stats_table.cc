/**
 * @file
 * Tests for the statistics accumulators (RunningStats,
 * IntervalRecorder with transient exclusion, Histogram) and the table
 * printer.
 */

#include <gtest/gtest.h>

#include "base/stats.hh"
#include "base/table.hh"

namespace rr {
namespace {

TEST(RunningStats, Empty)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments)
{
    RunningStats s;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsCombinedStream)
{
    RunningStats a, b, all;
    for (int i = 0; i < 50; ++i) {
        const double x = i * 0.37;
        (i % 2 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(IntervalRecorder, TotalRate)
{
    IntervalRecorder rec;
    rec.record(0, 0);
    rec.record(100, 50);
    EXPECT_DOUBLE_EQ(rec.totalRate(), 0.5);
    EXPECT_EQ(rec.endTime(), 100u);
    EXPECT_EQ(rec.endValue(), 50u);
}

TEST(IntervalRecorder, WindowRateInterpolates)
{
    IntervalRecorder rec;
    rec.record(0, 0);
    rec.record(100, 100); // rate 1.0
    rec.record(200, 100); // rate 0.0
    EXPECT_DOUBLE_EQ(rec.windowRate(0, 100), 1.0);
    EXPECT_DOUBLE_EQ(rec.windowRate(100, 200), 0.0);
    EXPECT_DOUBLE_EQ(rec.windowRate(50, 150), 0.5);
}

// The central window must exclude a slow startup transient: here the
// first and last 25% of the run accrue nothing.
TEST(IntervalRecorder, CentralRateExcludesTransients)
{
    IntervalRecorder rec;
    rec.record(0, 0);
    rec.record(250, 0);    // startup transient: idle
    rec.record(750, 500);  // steady state: rate 1.0
    rec.record(1000, 500); // completion transient: idle
    EXPECT_DOUBLE_EQ(rec.centralRate(0.25, 0.75), 1.0);
    EXPECT_DOUBLE_EQ(rec.totalRate(), 0.5);
}

TEST(IntervalRecorder, RepeatedTimestampsCollapse)
{
    IntervalRecorder rec;
    rec.record(0, 0);
    rec.record(10, 5);
    rec.record(10, 8);
    EXPECT_EQ(rec.size(), 2u);
    EXPECT_EQ(rec.endValue(), 8u);
}

TEST(IntervalRecorder, EmptyIsZero)
{
    IntervalRecorder rec;
    EXPECT_DOUBLE_EQ(rec.totalRate(), 0.0);
    EXPECT_DOUBLE_EQ(rec.centralRate(), 0.0);
    EXPECT_DOUBLE_EQ(rec.windowRate(0, 10), 0.0);
}

TEST(Histogram, BinsAndOverflow)
{
    Histogram h(10, 4); // bins [0,10) [10,20) [20,30) [30,40)
    h.add(0);
    h.add(9);
    h.add(10);
    h.add(35);
    h.add(40); // overflow
    h.add(400); // overflow
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(2), 0u);
    EXPECT_EQ(h.binCount(3), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 6u);
    EXPECT_FALSE(h.render().empty());
}

TEST(Table, RenderAligned)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("-----"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
    EXPECT_EQ(t.numCols(), 2u);
}

TEST(Table, RenderCsv)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    EXPECT_EQ(t.renderCsv(), "a,b\n1,2\n");
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(Table::num(0.5, 3), "0.500");
    EXPECT_EQ(Table::num(uint64_t{42}), "42");
    EXPECT_EQ(Table::num(-3), "-3");
}

} // namespace
} // namespace rr
