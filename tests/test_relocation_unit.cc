/**
 * @file
 * Tests for the decode-stage relocation unit: the paper's OR
 * mechanism (including the Figure 1 worked examples), the Mux
 * bounds-checking variant (footnote 3), the Am29000 ADD variant, and
 * the multi-bank extension (Section 5.3).
 */

#include <gtest/gtest.h>

#include "machine/relocation_unit.hh"

namespace rr::machine {
namespace {

// Figure 1(a): 128 registers, RRM relocating a context of size 8 at
// base 40: context-relative register 5 -> absolute register 45.
TEST(RelocationUnit, Figure1aExample)
{
    RelocationUnit unit(128, 5);
    unit.setMask(40);
    EXPECT_EQ(unit.relocate(5).physical, 45u);
}

// Figure 1(b): context of size 16 at base 32: context-relative
// register 14 -> absolute register 46.
TEST(RelocationUnit, Figure1bExample)
{
    RelocationUnit unit(128, 5);
    unit.setMask(32);
    EXPECT_EQ(unit.relocate(14).physical, 46u);
}

TEST(RelocationUnit, OrIsBitwiseOr)
{
    RelocationUnit unit(128, 5);
    for (const uint32_t mask : {0u, 8u, 16u, 40u, 96u}) {
        unit.setMask(mask);
        for (unsigned operand = 0; operand < 32; ++operand) {
            EXPECT_EQ(unit.relocate(operand).physical,
                      (mask | operand) & 0x7fu);
            EXPECT_TRUE(unit.relocate(operand).ok);
        }
    }
}

// For size-aligned contexts, OR relocation equals base + offset —
// the property that makes the RRM double as a base register number.
TEST(RelocationUnit, OrEqualsAddForAlignedContexts)
{
    RelocationUnit unit(256, 6);
    for (const unsigned size : {4u, 8u, 16u, 32u, 64u}) {
        for (unsigned base = 0; base + size <= 256; base += size) {
            unit.setMask(base);
            for (unsigned offset = 0; offset < size; ++offset) {
                EXPECT_EQ(unit.relocate(offset).physical, base + offset)
                    << "size=" << size << " base=" << base
                    << " offset=" << offset;
            }
        }
    }
}

TEST(RelocationUnit, MaskTruncatedToMaskBits)
{
    RelocationUnit unit(128, 5);
    EXPECT_EQ(unit.maskBits(), 7u); // ceil(lg 128)
    unit.setMask(0xffffff80u | 40u);
    EXPECT_EQ(unit.mask(), 40u);
}

TEST(RelocationUnit, MuxModeRelocatesWithinContext)
{
    RelocationUnit unit(128, 5, RelocationMode::Mux);
    unit.setContextSize(8);
    unit.setMask(40);
    const RelocationResult ok = unit.relocate(5);
    EXPECT_TRUE(ok.ok);
    EXPECT_EQ(ok.physical, 45u);
}

// Footnote 3: the Mux variant catches a thread reaching outside its
// allocated context, which plain OR silently permits.
TEST(RelocationUnit, MuxModeFlagsBoundsViolation)
{
    RelocationUnit unit(128, 5, RelocationMode::Mux);
    unit.setContextSize(8);
    unit.setMask(40);
    const RelocationResult bad = unit.relocate(9); // >= size 8
    EXPECT_FALSE(bad.ok);
}

TEST(RelocationUnit, AddModeSupportsUnalignedBases)
{
    RelocationUnit unit(128, 5, RelocationMode::Add);
    unit.setMask(12); // not a power-of-two-aligned base
    EXPECT_EQ(unit.relocate(5).physical, 17u);
    EXPECT_TRUE(unit.relocate(5).ok);
}

TEST(RelocationUnit, OrDiffersFromAddOnUnalignedBase)
{
    RelocationUnit or_unit(128, 5, RelocationMode::Or);
    RelocationUnit add_unit(128, 5, RelocationMode::Add);
    or_unit.setMask(12);
    add_unit.setMask(12);
    // 12 | 5 = 13, but 12 + 5 = 17: OR requires aligned contexts.
    EXPECT_EQ(or_unit.relocate(5).physical, 13u);
    EXPECT_EQ(add_unit.relocate(5).physical, 17u);
}

// Section 5.3: with two banks, the top operand bit selects the mask.
TEST(RelocationUnit, DualBankSelection)
{
    RelocationUnit unit(128, 6, RelocationMode::Or, 2);
    unit.setMask(32, 0);
    unit.setMask(64, 1);
    // Operand 0b0_00101 -> bank 0, offset 5.
    EXPECT_EQ(unit.relocate(5).physical, 37u);
    // Operand 0b1_00101 -> bank 1, offset 5.
    EXPECT_EQ(unit.relocate(32 + 5).physical, 69u);
}

TEST(RelocationUnit, BankCountAndWidthValidation)
{
    RelocationUnit unit(256, 6, RelocationMode::Or, 4);
    EXPECT_EQ(unit.numBanks(), 4u);
    unit.setMask(128, 3);
    // Top two bits select bank 3; remaining 4 bits are the offset.
    EXPECT_EQ(unit.relocate(0b110101).physical, 128u + 0b0101u);
}

TEST(RelocationUnitDeath, InvalidConfigPanics)
{
    EXPECT_DEATH(RelocationUnit(100, 5), "power of two");
    EXPECT_DEATH(RelocationUnit(128, 9), "operand width");
    EXPECT_DEATH(RelocationUnit(16, 6), "addresses more registers");
}

TEST(RelocationUnitDeath, BadContextSizePanics)
{
    RelocationUnit unit(128, 5, RelocationMode::Mux);
    EXPECT_DEATH(unit.setContextSize(12), "power of two");
    EXPECT_DEATH(unit.setContextSize(64), "exceeds");
}

} // namespace
} // namespace rr::machine
