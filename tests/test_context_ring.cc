/**
 * @file
 * Tests for the NextRRM scheduler ring (Section 2.2) and the
 * priority-list extension.
 */

#include <gtest/gtest.h>

#include "runtime/context_ring.hh"

namespace rr::runtime {
namespace {

TEST(ContextRing, EmptyAndSingle)
{
    ContextRing ring;
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.size(), 0u);

    ring.insert(8);
    EXPECT_FALSE(ring.empty());
    EXPECT_EQ(ring.current(), 8u);
    EXPECT_EQ(ring.advance(), 8u); // self-loop
    EXPECT_EQ(ring.nextOf(8), 8u);
}

TEST(ContextRing, RoundRobinOrder)
{
    ContextRing ring;
    ring.insert(0);
    ring.insert(32);
    ring.insert(64);
    // Members visited in a full cycle from current.
    const auto members = ring.members();
    ASSERT_EQ(members.size(), 3u);
    // A full traversal visits every member exactly once and returns.
    EXPECT_EQ(ring.current(), 0u);
    const uint32_t a = ring.advance();
    const uint32_t b = ring.advance();
    const uint32_t c = ring.advance();
    EXPECT_EQ(c, 0u); // back to start after size() advances
    EXPECT_NE(a, b);
    EXPECT_NE(a, 0u);
    EXPECT_NE(b, 0u);
}

TEST(ContextRing, RemoveCurrentAdvances)
{
    ContextRing ring;
    ring.insert(1);
    ring.insert(2);
    ring.insert(3);
    const uint32_t cur = ring.current();
    const uint32_t next = ring.nextOf(cur);
    ring.remove(cur);
    EXPECT_EQ(ring.current(), next);
    EXPECT_EQ(ring.size(), 2u);
    EXPECT_FALSE(ring.contains(cur));
}

TEST(ContextRing, RemoveToEmpty)
{
    ContextRing ring;
    ring.insert(5);
    ring.remove(5);
    EXPECT_TRUE(ring.empty());
    ring.insert(9);
    EXPECT_EQ(ring.current(), 9u);
}

TEST(ContextRing, InterleavedInsertRemoveKeepsRingClosed)
{
    ContextRing ring;
    for (uint32_t i = 0; i < 16; ++i)
        ring.insert(i * 8);
    for (uint32_t i = 0; i < 8; ++i)
        ring.remove(i * 16); // remove every other member
    EXPECT_EQ(ring.size(), 8u);
    // Every remaining member is reachable in exactly size() steps.
    const uint32_t start = ring.current();
    size_t steps = 0;
    do {
        ring.advance();
        ++steps;
    } while (ring.current() != start && steps <= 16);
    EXPECT_EQ(steps, ring.size());
}

TEST(ContextRing, SingleMemberSurvivesChurn)
{
    // The degenerate one-context ring: every link points at itself,
    // and insert/remove churn must keep that invariant.
    ContextRing ring;
    ring.insert(16);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(ring.advance(), 16u);
    ring.remove(16);
    EXPECT_TRUE(ring.empty());
    ring.insert(24);
    EXPECT_EQ(ring.current(), 24u);
    EXPECT_EQ(ring.nextOf(24), 24u);
    EXPECT_EQ(ring.members(), std::vector<uint32_t>{24});
}

TEST(ContextRing, UnlinkHeadWhileIterating)
{
    // Removing the current (head) member mid-iteration promotes its
    // successor without consuming an advance() — a scheduler that
    // calls advance() after removing the running context would
    // otherwise skip a ready thread.
    ContextRing ring;
    ring.insert(1);
    ring.insert(2);
    ring.insert(3);
    const uint32_t head = ring.current();
    const uint32_t succ = ring.nextOf(head);
    const uint32_t last = ring.nextOf(succ);
    ring.remove(head);
    EXPECT_EQ(ring.current(), succ);
    // The two survivors still form a closed 2-cycle.
    EXPECT_EQ(ring.advance(), last);
    EXPECT_EQ(ring.advance(), succ);
    EXPECT_EQ(ring.advance(), last);
    EXPECT_EQ(ring.nextOf(last), succ);
}

TEST(ContextRing, UnlinkPredecessorOfCurrent)
{
    ContextRing ring;
    ring.insert(1);
    ring.insert(2);
    ring.insert(3);
    const uint32_t head = ring.current();
    // tail is the member whose NextRRM is the head.
    uint32_t tail = head;
    while (ring.nextOf(tail) != head)
        tail = ring.nextOf(tail);
    ring.remove(tail);
    EXPECT_EQ(ring.current(), head);
    EXPECT_EQ(ring.size(), 2u);
    // The splice re-closed the ring around the removal.
    const uint32_t other = ring.nextOf(head);
    EXPECT_EQ(ring.nextOf(other), head);
}

TEST(ContextRing, RemoveDownToSingleThenIterate)
{
    ContextRing ring;
    ring.insert(10);
    ring.insert(20);
    ring.insert(30);
    ring.remove(20);
    ring.remove(30);
    // Exactly the single-member degenerate case again, reached by
    // removal instead of construction.
    EXPECT_EQ(ring.size(), 1u);
    EXPECT_EQ(ring.current(), 10u);
    EXPECT_EQ(ring.advance(), 10u);
    EXPECT_EQ(ring.nextOf(10), 10u);
}

TEST(ContextRingDeath, DuplicateInsertPanics)
{
    ContextRing ring;
    ring.insert(4);
    EXPECT_DEATH(ring.insert(4), "already in ring");
}

TEST(ContextRingDeath, RemoveAbsentPanics)
{
    ContextRing ring;
    ring.insert(4);
    EXPECT_DEATH(ring.remove(5), "not in ring");
}

TEST(ContextRingDeath, EmptyAccessPanics)
{
    ContextRing ring;
    EXPECT_DEATH(ring.current(), "empty");
    EXPECT_DEATH(ring.advance(), "empty");
}

TEST(PriorityRing, HigherLevelWins)
{
    PriorityRing rings(3);
    rings.insert(100, 2); // low priority
    rings.insert(200, 0); // high priority
    rings.insert(201, 0);
    EXPECT_EQ(rings.size(), 3u);
    // advance() always serves level 0 while it has members.
    for (int i = 0; i < 6; ++i) {
        const uint32_t got = rings.advance();
        EXPECT_TRUE(got == 200 || got == 201);
    }
    rings.remove(200);
    rings.remove(201);
    EXPECT_EQ(rings.advance(), 100u);
}

TEST(PriorityRing, LevelOf)
{
    PriorityRing rings(2);
    rings.insert(7, 1);
    EXPECT_EQ(rings.levelOf(7), 1);
    EXPECT_EQ(rings.levelOf(8), -1);
    rings.remove(7);
    EXPECT_TRUE(rings.empty());
}

TEST(PriorityRing, SingleMemberSelfLoops)
{
    PriorityRing rings(4);
    rings.insert(48, 3);
    EXPECT_EQ(rings.current(), 48u);
    EXPECT_EQ(rings.advance(), 48u);
    EXPECT_EQ(rings.advance(), 48u);
    rings.remove(48);
    EXPECT_TRUE(rings.empty());
}

TEST(PriorityRing, RemovingHeadOfHighestLevelFallsThrough)
{
    // Unlink the head of the active (highest) level while a lower
    // level holds members: dispatch must fall through immediately.
    PriorityRing rings(2);
    rings.insert(100, 1);
    rings.insert(200, 0);
    EXPECT_EQ(rings.current(), 200u);
    rings.remove(200);
    EXPECT_EQ(rings.current(), 100u);
    EXPECT_EQ(rings.advance(), 100u);
    // And promotion back: a new high-priority member preempts.
    rings.insert(201, 0);
    EXPECT_EQ(rings.current(), 201u);
}

TEST(PriorityRing, DirectLevelAccessSeesSameRing)
{
    PriorityRing rings(2);
    rings.insert(7, 1);
    EXPECT_TRUE(rings.level(0).empty());
    EXPECT_EQ(rings.level(1).current(), 7u);
    rings.level(1).remove(7);
    EXPECT_TRUE(rings.empty());
    EXPECT_EQ(rings.levelOf(7), -1);
}

TEST(PriorityRingDeath, EmptyAccessPanics)
{
    PriorityRing rings(2);
    EXPECT_DEATH(rings.current(), "empty");
    EXPECT_DEATH(rings.advance(), "empty");
}

TEST(PriorityRingDeath, DoubleQueuePanics)
{
    PriorityRing rings(2);
    rings.insert(7, 0);
    EXPECT_DEATH(rings.insert(7, 1), "already queued");
}

} // namespace
} // namespace rr::runtime
