/**
 * @file
 * CPU tests: instruction semantics, LDRRM delay-slot behaviour
 * (Section 2.1), relocated operand access, traps, fault hooks, and
 * tracing.
 */

#include <gtest/gtest.h>

#include "assembler/assembler.hh"
#include "machine/cpu.hh"

namespace rr::machine {
namespace {

CpuConfig
smallConfig()
{
    CpuConfig config;
    config.numRegs = 128;
    config.operandWidth = 5;
    config.ldrrmDelaySlots = 1;
    config.memWords = 4096;
    return config;
}

/** Assemble and load @p source; panics on assembly errors. */
void
load(Cpu &cpu, const std::string &source)
{
    const assembler::Program prog = assembler::assemble(source);
    for (const auto &error : prog.errors)
        ADD_FAILURE() << error.str();
    ASSERT_TRUE(prog.ok());
    cpu.mem().loadImage(prog.base, prog.words);
    cpu.setPc(prog.base);
}

TEST(Cpu, AluBasics)
{
    Cpu cpu(smallConfig());
    cpu.regs().write(1, 7);
    cpu.regs().write(2, 5);
    load(cpu, "add r3, r1, r2\n"
              "sub r4, r1, r2\n"
              "and r5, r1, r2\n"
              "or  r6, r1, r2\n"
              "xor r7, r1, r2\n"
              "slt r8, r2, r1\n"
              "halt\n");
    cpu.run(100);
    EXPECT_EQ(cpu.regs().read(3), 12u);
    EXPECT_EQ(cpu.regs().read(4), 2u);
    EXPECT_EQ(cpu.regs().read(5), 5u);
    EXPECT_EQ(cpu.regs().read(6), 7u);
    EXPECT_EQ(cpu.regs().read(7), 2u);
    EXPECT_EQ(cpu.regs().read(8), 1u);
    EXPECT_TRUE(cpu.halted());
    EXPECT_EQ(cpu.trap(), TrapKind::None);
}

TEST(Cpu, ShiftsAndImmediates)
{
    Cpu cpu(smallConfig());
    cpu.regs().write(1, 0xf0);
    load(cpu, "slli r2, r1, 4\n"
              "srli r3, r1, 4\n"
              "addi r4, r1, -1\n"
              "srai r5, r4, 2\n"
              "halt\n");
    cpu.run(100);
    EXPECT_EQ(cpu.regs().read(2), 0xf00u);
    EXPECT_EQ(cpu.regs().read(3), 0xfu);
    EXPECT_EQ(cpu.regs().read(4), 0xefu);
    EXPECT_EQ(cpu.regs().read(5), 0xefu >> 2);
}

TEST(Cpu, SraSignExtends)
{
    Cpu cpu(smallConfig());
    cpu.regs().write(1, 0x80000000u);
    load(cpu, "srai r2, r1, 4\nhalt\n");
    cpu.run(10);
    EXPECT_EQ(cpu.regs().read(2), 0xf8000000u);
}

TEST(Cpu, LoadStore)
{
    Cpu cpu(smallConfig());
    cpu.regs().write(1, 100);
    cpu.regs().write(2, 0xdead);
    load(cpu, "st r2, 4(r1)\n"
              "ld r3, 4(r1)\n"
              "halt\n");
    cpu.run(10);
    EXPECT_EQ(cpu.mem().read(104), 0xdeadu);
    EXPECT_EQ(cpu.regs().read(3), 0xdeadu);
}

TEST(Cpu, BranchesAndLoop)
{
    Cpu cpu(smallConfig());
    cpu.regs().write(1, 5);  // counter
    cpu.regs().write(2, 1);  // one
    cpu.regs().write(3, 0);  // zero / sum
    load(cpu, "loop: add r3, r3, r1\n"
              "  sub r1, r1, r2\n"
              "  bne r1, r4, loop\n"
              "  halt\n");
    cpu.run(100);
    EXPECT_EQ(cpu.regs().read(3), 5u + 4 + 3 + 2 + 1);
}

TEST(Cpu, JalLinksNextPc)
{
    Cpu cpu(smallConfig());
    load(cpu, "  jal r1, target\n"
              "  halt\n"
              "target: halt\n");
    cpu.run(10);
    EXPECT_EQ(cpu.regs().read(1), 1u); // link = pc + 1
    EXPECT_EQ(cpu.pc(), 3u);           // halted at word 2, pc advanced
}

TEST(Cpu, JalrAndJmp)
{
    Cpu cpu(smallConfig());
    cpu.regs().write(2, 3);
    load(cpu, "  jalr r1, r2\n" // jump to word 3
              "  halt\n"
              "  halt\n"
              "  jmp r1\n" // back to word 1
              "  halt\n");
    cpu.run(10);
    EXPECT_TRUE(cpu.halted());
    EXPECT_EQ(cpu.pc(), 2u); // halted at word 1, pc advanced to 2
    EXPECT_EQ(cpu.regs().read(1), 1u);
}

// Section 2.1: "there may be one or more delay slots following a
// LDRRM instruction" — the instruction in the delay slot must still
// relocate through the old mask.
TEST(Cpu, LdrrmDelaySlotUsesOldMask)
{
    Cpu cpu(smallConfig());
    // Context A at base 32, context B at base 64.
    cpu.setRrmImmediate(32);
    cpu.regs().write(32 | 2, 64); // A.r2 = mask of B
    cpu.regs().write(32 | 3, 111); // A.r3
    cpu.regs().write(64 | 3, 222); // B.r3
    load(cpu, "ldrrm r2\n"
              "addi r4, r3, 0\n" // delay slot: reads A.r3
              "addi r5, r3, 0\n" // after: reads B.r3
              "halt\n");
    cpu.run(10);
    EXPECT_EQ(cpu.regs().read(32 | 4), 111u); // written under A
    EXPECT_EQ(cpu.regs().read(64 | 5), 222u); // written under B
    EXPECT_EQ(cpu.rrm(), 64u);
}

TEST(Cpu, LdrrmZeroDelaySlots)
{
    CpuConfig config = smallConfig();
    config.ldrrmDelaySlots = 0;
    Cpu cpu(config);
    cpu.setRrmImmediate(0);
    cpu.regs().write(2, 64);       // r2 = new mask
    cpu.regs().write(64 | 3, 9);   // B.r3
    load(cpu, "ldrrm r2\n"
              "addi r4, r3, 0\n" // immediately under new mask
              "halt\n");
    cpu.run(10);
    EXPECT_EQ(cpu.regs().read(64 | 4), 9u);
}

TEST(Cpu, RdrrmReadsActiveMask)
{
    Cpu cpu(smallConfig());
    cpu.setRrmImmediate(40);
    load(cpu, "rdrrm r1\nhalt\n");
    cpu.run(10);
    EXPECT_EQ(cpu.regs().read(40 | 1), 40u);
}

TEST(Cpu, PswMoves)
{
    Cpu cpu(smallConfig());
    cpu.setPsw(0x5a);
    load(cpu, "mfpsw r1\n"
              "addi r2, r1, 1\n"
              "mtpsw r2\n"
              "halt\n");
    cpu.run(10);
    EXPECT_EQ(cpu.psw(), 0x5bu);
}

TEST(Cpu, Ff1Instruction)
{
    Cpu cpu(smallConfig());
    cpu.regs().write(1, 0x10);
    cpu.regs().write(2, 0);
    load(cpu, "ff1 r3, r1\n"
              "ff1 r4, r2\n"
              "halt\n");
    cpu.run(10);
    EXPECT_EQ(cpu.regs().read(3), 4u);
    EXPECT_EQ(cpu.regs().read(4), 0xffffffffu); // -1: no bit set
}

TEST(Cpu, FaultHookInvoked)
{
    Cpu cpu(smallConfig());
    uint32_t seen_class = 0;
    unsigned calls = 0;
    cpu.setFaultHook([&](Cpu &, uint32_t fault_class) {
        seen_class = fault_class;
        ++calls;
    });
    load(cpu, "fault 3\n"
              "fault 7\n"
              "halt\n");
    cpu.run(10);
    EXPECT_EQ(calls, 2u);
    EXPECT_EQ(seen_class, 7u);
    EXPECT_EQ(cpu.faultCount(), 2u);
    EXPECT_EQ(cpu.lastFaultClass(), 7u);
}

TEST(Cpu, FaultHookMayRedirectPc)
{
    Cpu cpu(smallConfig());
    cpu.setFaultHook([](Cpu &c, uint32_t) { c.setPc(4); });
    load(cpu, "fault 0\n"
              "halt\n" // skipped
              "halt\n"
              "halt\n"
              "addi r1, r2, 42\n"
              "halt\n");
    cpu.run(10);
    EXPECT_EQ(cpu.regs().read(1), 42u);
}

TEST(Cpu, OperandWidthTrap)
{
    CpuConfig config = smallConfig();
    config.operandWidth = 4; // only r0..r15 addressable
    Cpu cpu(config);
    load(cpu, "addi r1, r16, 0\nhalt\n");
    cpu.run(10);
    EXPECT_EQ(cpu.trap(), TrapKind::OperandTooWide);
    EXPECT_EQ(cpu.instructionsRetired(), 0u);
}

TEST(Cpu, MemoryTrap)
{
    Cpu cpu(smallConfig());
    cpu.regs().write(1, 100000); // beyond 4096-word memory
    load(cpu, "ld r2, 0(r1)\nhalt\n");
    cpu.run(10);
    EXPECT_EQ(cpu.trap(), TrapKind::MemOutOfRange);
}

TEST(Cpu, InvalidOpcodeTrap)
{
    Cpu cpu(smallConfig());
    cpu.mem().write(0, 0xff000000u);
    cpu.run(10);
    EXPECT_EQ(cpu.trap(), TrapKind::InvalidOpcode);
}

TEST(Cpu, MuxModeContextBoundsTrap)
{
    CpuConfig config = smallConfig();
    config.relocationMode = RelocationMode::Mux;
    Cpu cpu(config);
    cpu.relocation().setContextSize(8);
    cpu.setRrmImmediate(40);
    load(cpu, "addi r1, r9, 0\nhalt\n"); // r9 outside size-8 context
    cpu.run(10);
    EXPECT_EQ(cpu.trap(), TrapKind::ContextBounds);
}

TEST(Cpu, ResumeAfterTrap)
{
    Cpu cpu(smallConfig());
    cpu.mem().write(0, 0xff000000u);
    cpu.run(10);
    EXPECT_EQ(cpu.trap(), TrapKind::InvalidOpcode);
    cpu.resume();
    cpu.setPc(1);
    cpu.mem().write(1, isa::encode(isa::makeI(isa::Opcode::ADDI, 1,
                                              2, 5)));
    EXPECT_TRUE(cpu.step());
    EXPECT_EQ(cpu.trap(), TrapKind::None);
}

TEST(Cpu, CyclesCountInstructions)
{
    Cpu cpu(smallConfig());
    load(cpu, "nop\nnop\nnop\nhalt\n");
    cpu.run(100);
    EXPECT_EQ(cpu.cycles(), 4u);
    EXPECT_EQ(cpu.instructionsRetired(), 4u);
    cpu.stall(10);
    EXPECT_EQ(cpu.cycles(), 14u);
    EXPECT_EQ(cpu.instructionsRetired(), 4u);
}

TEST(Cpu, TraceHookSeesInstructions)
{
    Cpu cpu(smallConfig());
    std::vector<std::string> trace;
    cpu.setTraceHook([&](const TraceEntry &entry) {
        trace.push_back(entry.text);
    });
    load(cpu, "addi r1, r2, 3\nhalt\n");
    cpu.run(10);
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace[0], "addi r1, r2, 3");
    EXPECT_EQ(trace[1], "halt");
}

TEST(Cpu, ContextRegAccessors)
{
    Cpu cpu(smallConfig());
    cpu.setRrmImmediate(64);
    cpu.writeContextReg(3, 77);
    EXPECT_EQ(cpu.regs().read(64 | 3), 77u);
    EXPECT_EQ(cpu.readContextReg(3), 77u);
}

TEST(Cpu, TrapNames)
{
    EXPECT_STREQ(trapName(TrapKind::None), "none");
    EXPECT_STREQ(trapName(TrapKind::InvalidOpcode), "invalid-opcode");
    EXPECT_STREQ(trapName(TrapKind::ContextBounds),
                 "context-bounds-violation");
}

CpuConfig
loadUseOnlyConfig()
{
    CpuConfig config = smallConfig();
    config.timing.loadUsePenalty = 1;
    return config;
}

// Regression for the operand-read recorder: ST and branches read two
// registers and the load-use hazard can sit on the *second* read.
// The recorder used to be sized (and silently guarded) for four
// reads; it now holds exactly the audited maximum of two and must not
// lose either.
TEST(Cpu, LoadUseHazardOnStoreSecondRead)
{
    Cpu cpu(loadUseOnlyConfig());
    load(cpu, "li  r5, 100\n"
              "ld  r2, 0(r5)\n"
              "st  r2, 1(r5)\n" // reads r5 then r2: hazard on r2
              "halt\n");
    cpu.run(100);
    EXPECT_TRUE(cpu.halted());
    EXPECT_EQ(cpu.instructionsRetired(), 5u); // li expands to two
    EXPECT_EQ(cpu.timingStats().loadUseStalls, 1u);
    EXPECT_EQ(cpu.cycles(), 6u);
}

TEST(Cpu, LoadUseHazardOnBranchSecondRead)
{
    Cpu cpu(loadUseOnlyConfig());
    load(cpu, "li  r5, 100\n"
              "ld  r2, 0(r5)\n"
              "bne r5, r2, skip\n" // reads r5 then r2
              "skip: halt\n");
    cpu.run(100);
    EXPECT_TRUE(cpu.halted());
    EXPECT_EQ(cpu.timingStats().loadUseStalls, 1u);
    EXPECT_EQ(cpu.cycles(), 6u);
}

// Regression for the hazard tracker's destination capture: the
// physical destination must be recorded when the write happens, under
// the mask that was active then. A load in an LDRRM delay slot writes
// its result into the *old* context; the consumer after the switch
// reads the same architectural name in the *new* context — a
// different physical register, so no stall. Recomputing the
// destination from the architectural name after the switch used to
// charge a spurious stall here.
TEST(Cpu, NoLoadUseStallAcrossContextSwitch)
{
    Cpu cpu(loadUseOnlyConfig());
    load(cpu, "li    r9, 0x20\n"
              "li    r5, 100\n"
              "ldrrm r9\n"
              "ld    r2, 0(r5)\n" // delay slot: old context (mask 0)
              "addi  r3, r2, 1\n" // new context: different physical
              "halt\n");
    cpu.run(100);
    EXPECT_TRUE(cpu.halted());
    EXPECT_EQ(cpu.instructionsRetired(), 8u);
    EXPECT_EQ(cpu.timingStats().loadUseStalls, 0u);
    EXPECT_EQ(cpu.cycles(), 8u);
    // The addi read physical 0x22 (untouched, zero), not the loaded
    // value; its result lands in the new window.
    EXPECT_EQ(cpu.regs().read(0x20 | 3), 1u);
}

// Control for the test above: identical shape without the context
// switch does stall — pinning both cycle counts keeps the differential
// honest.
TEST(Cpu, LoadUseStallWithoutContextSwitch)
{
    Cpu cpu(loadUseOnlyConfig());
    load(cpu, "li    r9, 0x20\n"
              "li    r5, 100\n"
              "nop\n"
              "ld    r2, 0(r5)\n"
              "addi  r3, r2, 1\n"
              "halt\n");
    cpu.run(100);
    EXPECT_TRUE(cpu.halted());
    EXPECT_EQ(cpu.instructionsRetired(), 8u);
    EXPECT_EQ(cpu.timingStats().loadUseStalls, 1u);
    EXPECT_EQ(cpu.cycles(), 9u);
}

} // namespace
} // namespace rr::machine
