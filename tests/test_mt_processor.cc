/**
 * @file
 * Tests for the multithreaded-node simulator: cycle accounting
 * invariants, saturation/linear-regime behaviour, the two-phase
 * unloading policy, and flexible-vs-fixed comparisons on the paper's
 * workloads.
 */

#include <gtest/gtest.h>

#include "base/stats.hh"
#include "multithread/mt_processor.hh"
#include "multithread/simulation_spec.hh"
#include "multithread/workload.hh"

namespace rr::mt {
namespace {

/** Figure 5 settings: cache faults, constant latency. */
MtConfig
cacheConfig(ArchKind arch, unsigned num_regs, double mean_run,
            uint64_t latency, uint64_t seed = 1)
{
    return SimulationSpec()
        .cacheFaults(mean_run, latency)
        .arch(arch)
        .numRegs(num_regs)
        .seed(seed)
        .build();
}

/** Figure 6 settings: sync faults, exponential latency. */
MtConfig
syncConfig(ArchKind arch, unsigned num_regs, double mean_run,
           double mean_latency, uint64_t seed = 1)
{
    return SimulationSpec()
        .syncFaults(mean_run, mean_latency)
        .arch(arch)
        .numRegs(num_regs)
        .seed(seed)
        .build();
}

/** Section 3.4 settings: deterministic runs, identical threads. */
MtConfig
detConfig(ArchKind arch, unsigned num_regs, uint64_t run,
          uint64_t latency, unsigned num_threads, unsigned regs_used)
{
    return SimulationSpec()
        .deterministicFaults(run, latency)
        .threads(num_threads)
        .registerDemand(regs_used)
        .arch(arch)
        .numRegs(num_regs)
        .build();
}

TEST(MtProcessor, CompletesAllThreads)
{
    MtConfig config = cacheConfig(ArchKind::Flexible, 128, 32.0, 100);
    config.workload.numThreads = 16;
    const MtStats stats = simulate(std::move(config));
    EXPECT_EQ(stats.threadsFinished, 16u);
    EXPECT_GT(stats.totalCycles, 0u);
    EXPECT_GT(stats.usefulCycles, 0u);
}

TEST(MtProcessor, CycleAccountingPartitionsTotal)
{
    for (const ArchKind arch :
         {ArchKind::Flexible, ArchKind::FixedHw, ArchKind::AddReloc}) {
        MtConfig config = cacheConfig(arch, 128, 16.0, 200);
        config.workload.numThreads = 24;
        const MtStats stats = simulate(std::move(config));
        EXPECT_EQ(stats.accountedCycles(), stats.totalCycles)
            << "arch = " << archName(arch);
    }
}

TEST(MtProcessor, UsefulCyclesEqualTotalWork)
{
    MtConfig config = cacheConfig(ArchKind::Flexible, 128, 32.0, 100);
    config.workload.numThreads = 8;
    config.workload.workDist = makeConstant(5000);
    const MtStats stats = simulate(std::move(config));
    EXPECT_EQ(stats.usefulCycles, 8u * 5000u);
}

TEST(MtProcessor, EfficiencyWithinUnitInterval)
{
    MtConfig config = syncConfig(ArchKind::Flexible, 128, 32.0, 500.0);
    config.workload.numThreads = 32;
    const MtStats stats = simulate(std::move(config));
    EXPECT_GT(stats.efficiencyCentral, 0.0);
    EXPECT_LE(stats.efficiencyCentral, 1.0);
    EXPECT_GT(stats.efficiencyTotal, 0.0);
    EXPECT_LE(stats.efficiencyTotal, 1.0);
}

// With deterministic R and L and a saturating number of contexts,
// efficiency approaches R / (R + S) (Section 3.4).
TEST(MtProcessor, SaturatedEfficiencyMatchesClosedForm)
{
    // R = 100, S = 6, L = 50: a single extra context suffices;
    // 8 contexts of 8 registers fit easily in 128 registers.
    MtConfig config = detConfig(ArchKind::Flexible, 128,
                                          100, 50, 8, 8);
    const MtStats stats = simulate(std::move(config));
    const double expected = 100.0 / (100.0 + 6.0);
    EXPECT_NEAR(stats.efficiencyCentral, expected, 0.02);
}

// One thread alone: efficiency ~ R / (R + S + L) in the linear
// regime with N = 1.
TEST(MtProcessor, SingleThreadLinearRegime)
{
    MtConfig config = detConfig(ArchKind::Flexible, 128,
                                          100, 400, 1, 8);
    const MtStats stats = simulate(std::move(config));
    const double expected = 100.0 / (100.0 + 6.0 + 400.0);
    EXPECT_NEAR(stats.efficiencyCentral, expected, 0.02);
}

TEST(MtProcessor, FlexibleBeatsFixedOnSmallContexts)
{
    // Homogeneous C = 8 on F = 64: flexible fits 8 contexts, fixed
    // only 2. Short run lengths + long latency => linear regime,
    // where residency wins (Section 3.4 discussion).
    MtConfig flexible = cacheConfig(ArchKind::Flexible, 64, 16.0, 400);
    flexible.workload = homogeneousWorkload(48, 20000, 8);
    MtConfig fixed = cacheConfig(ArchKind::FixedHw, 64, 16.0, 400);
    fixed.workload = homogeneousWorkload(48, 20000, 8);

    const MtStats fs = simulate(std::move(flexible));
    const MtStats xs = simulate(std::move(fixed));
    EXPECT_GT(fs.efficiencyCentral, 1.5 * xs.efficiencyCentral);
}

TEST(MtProcessor, ResidencyTracksRegisterFileCapacity)
{
    MtConfig config = cacheConfig(ArchKind::FixedHw, 128, 32.0, 400);
    config.workload.numThreads = 32;
    const MtStats stats = simulate(std::move(config));
    // F = 128 / 32 regs per fixed context -> at most 4 resident.
    EXPECT_LE(stats.maxResidentContexts, 4u);
    EXPECT_GT(stats.avgResidentContexts, 0.0);
    EXPECT_LE(stats.avgResidentContexts, 4.0);
}

TEST(MtProcessor, TwoPhaseUnloadsUnderLongLatency)
{
    MtConfig config = syncConfig(ArchKind::Flexible, 64, 32.0, 2000.0);
    config.workload.numThreads = 32;
    const MtStats stats = simulate(std::move(config));
    EXPECT_GT(stats.unloads, 0u);
    // Every unloaded thread must be reloaded before finishing.
    EXPECT_GE(stats.loads, stats.unloads);
}

TEST(MtProcessor, NeverPolicyNeverUnloads)
{
    MtConfig config = cacheConfig(ArchKind::Flexible, 64, 8.0, 2000);
    config.workload.numThreads = 32;
    const MtStats stats = simulate(std::move(config));
    EXPECT_EQ(stats.unloads, 0u);
}

TEST(MtProcessor, DeterministicGivenSeed)
{
    MtConfig a = syncConfig(ArchKind::Flexible, 128, 32.0, 300.0, 7);
    MtConfig b = syncConfig(ArchKind::Flexible, 128, 32.0, 300.0, 7);
    const MtStats sa = simulate(std::move(a));
    const MtStats sb = simulate(std::move(b));
    EXPECT_EQ(sa.totalCycles, sb.totalCycles);
    EXPECT_EQ(sa.faults, sb.faults);
    EXPECT_DOUBLE_EQ(sa.efficiencyCentral, sb.efficiencyCentral);
}

TEST(MtProcessor, SeedChangesStochasticOutcome)
{
    MtConfig a = syncConfig(ArchKind::Flexible, 128, 32.0, 300.0, 7);
    MtConfig b = syncConfig(ArchKind::Flexible, 128, 32.0, 300.0, 8);
    const MtStats sa = simulate(std::move(a));
    const MtStats sb = simulate(std::move(b));
    EXPECT_NE(sa.totalCycles, sb.totalCycles);
}

TEST(MtProcessor, FixedArchHasZeroAllocCycles)
{
    MtConfig config = syncConfig(ArchKind::FixedHw, 128, 32.0, 500.0);
    config.workload.numThreads = 32;
    const MtStats stats = simulate(std::move(config));
    EXPECT_EQ(stats.allocCycles, 0u);
    EXPECT_GT(stats.loads, 0u);
}

TEST(MtProcessor, LongerLatencyLowersEfficiency)
{
    MtConfig lo = cacheConfig(ArchKind::Flexible, 128, 32.0, 50);
    MtConfig hi = cacheConfig(ArchKind::Flexible, 128, 32.0, 1600);
    const MtStats slo = simulate(std::move(lo));
    const MtStats shi = simulate(std::move(hi));
    EXPECT_GT(slo.efficiencyCentral, shi.efficiencyCentral);
}

TEST(MtProcessor, LongerRunLengthRaisesEfficiency)
{
    MtConfig lo = cacheConfig(ArchKind::Flexible, 128, 8.0, 400);
    MtConfig hi = cacheConfig(ArchKind::Flexible, 128, 128.0, 400);
    const MtStats slo = simulate(std::move(lo));
    const MtStats shi = simulate(std::move(hi));
    EXPECT_GT(shi.efficiencyCentral, slo.efficiencyCentral);
}


// Section 2.2: "separate linked lists of register relocation masks
// could be maintained to implement different thread classes or
// priorities." High-priority threads monopolize the processor
// whenever they are runnable, so they finish far earlier.
TEST(MtProcessor, PriorityClassesFinishInOrder)
{
    MtConfig config = cacheConfig(ArchKind::Flexible, 128, 32.0, 200);
    config.priorityLevels = 2;
    // 16 threads of 8 registers fill the 128-register file exactly:
    // everyone is resident, so dispatch order is purely the priority
    // rings (queue refill order plays no role).
    config.workload = homogeneousWorkload(16, 8000, 8);
    config.workload.priorityDist = makeUniformInt(0, 1);
    MtProcessor processor(std::move(config));
    processor.run();

    RunningStats high, low;
    for (const Thread &t : processor.threads()) {
        (t.priority == 0 ? high : low)
            .add(static_cast<double>(t.finishTime));
    }
    ASSERT_GT(high.count(), 0u);
    ASSERT_GT(low.count(), 0u);
    EXPECT_LT(high.max(), low.mean());
}

TEST(MtProcessor, SinglePriorityLevelUnchangedByDistribution)
{
    // With one level, priorities clamp to 0 and results match the
    // default configuration exactly.
    MtConfig a = cacheConfig(ArchKind::Flexible, 128, 32.0, 200, 3);
    a.workload.numThreads = 12;
    MtConfig b = cacheConfig(ArchKind::Flexible, 128, 32.0, 200, 3);
    b.workload.numThreads = 12;
    b.workload.priorityDist = makeUniformInt(0, 5);
    const MtStats sa = simulate(std::move(a));
    const MtStats sb = simulate(std::move(b));
    EXPECT_EQ(sa.totalCycles, sb.totalCycles);
}

TEST(MtProcessor, FinishTimesRecorded)
{
    MtConfig config = cacheConfig(ArchKind::Flexible, 128, 32.0, 100);
    config.workload.numThreads = 6;
    MtProcessor processor(std::move(config));
    const MtStats stats = processor.run();
    for (const Thread &t : processor.threads()) {
        EXPECT_GT(t.finishTime, 0u);
        EXPECT_LE(t.finishTime, stats.totalCycles);
    }
}

// The completion heap must stay bounded by the thread count: at most
// one live event per thread, and every superseded event is either
// pruned at the top or compacted away. On the paper's workloads no
// event is ever stranded (pushes and pops pair exactly), so the heap
// never needs a compaction pass at all — which is itself worth
// pinning, because a compaction on these workloads would mean the
// epoch bookkeeping disagrees with the scheduler.
TEST(MtProcessor, CompletionHeapBoundedByThreadCount)
{
    for (const unsigned threads : {8u, 64u}) {
        MtConfig config =
            cacheConfig(ArchKind::Flexible, 128, 32.0, 100);
        config.workload.numThreads = threads;
        MtProcessor processor(std::move(config));
        processor.run();
        EXPECT_LE(processor.completionCore().maxSize(), threads);
        EXPECT_EQ(processor.completionCore().compactions(), 0u);
        EXPECT_TRUE(processor.completionCore().empty());
    }
}

TEST(MtProcessor, CompletionHeapBoundedUnderSyncFaults)
{
    MtConfig config = syncConfig(ArchKind::Flexible, 128, 32.0, 500.0);
    config.workload.numThreads = 48;
    MtProcessor processor(std::move(config));
    processor.run();
    EXPECT_LE(processor.completionCore().maxSize(), 48u);
    EXPECT_EQ(processor.completionCore().compactions(), 0u);
    EXPECT_TRUE(processor.completionCore().empty());
}

} // namespace
} // namespace rr::mt
