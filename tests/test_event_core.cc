/**
 * @file
 * EventCore: the zero-allocation completion heap behind MtProcessor.
 *
 * Three contracts matter:
 *  1. Pop order is bit-for-bit the order a std::priority_queue with
 *     the same comparator would produce — including tie-breaking among
 *     equal completion times — because the event simulator's outputs
 *     are compared byte-for-byte against committed baselines.
 *  2. Lazy deletion stays bounded: once stale (epoch-superseded)
 *     entries outnumber live ones the heap compacts, so a thread that
 *     re-faults forever cannot grow the heap without limit.
 *  3. The staleness bookkeeping (invalidateThread / popStale) agrees
 *     with the epochs the producer actually pushed.
 */

#include <cstdint>
#include <functional>
#include <queue>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/io.hh"
#include "multithread/event_core.hh"

namespace {

using rr::mt::CompletionEvent;
using rr::mt::EventCore;

/** Reference: the container EventCore replaced. */
struct RefEvent
{
    uint64_t time;
    uint64_t epoch;
    unsigned tid;

    bool operator>(const RefEvent &other) const
    {
        return time > other.time;
    }
};

using RefHeap = std::priority_queue<RefEvent, std::vector<RefEvent>,
                                    std::greater<RefEvent>>;

TEST(EventCore, StartsEmpty)
{
    EventCore core;
    core.reserve(8);
    EXPECT_TRUE(core.empty());
    EXPECT_EQ(core.size(), 0u);
    EXPECT_EQ(core.live(), 0u);
    EXPECT_EQ(core.stale(), 0u);
    EXPECT_EQ(core.maxSize(), 0u);
    EXPECT_EQ(core.compactions(), 0u);
}

TEST(EventCore, PopsInTimeOrder)
{
    EventCore core;
    core.reserve(4);
    core.push({30, 1, 0});
    core.push({10, 1, 1});
    core.push({20, 1, 2});

    EXPECT_EQ(core.top().time, 10u);
    EXPECT_EQ(core.top().tid, 1u);
    core.pop();
    EXPECT_EQ(core.top().time, 20u);
    core.pop();
    EXPECT_EQ(core.top().time, 30u);
    core.pop();
    EXPECT_TRUE(core.empty());
}

// The heap must replicate std::priority_queue's exact mechanics
// (push_back + push_heap / pop_heap + pop_back), so ties among equal
// times resolve identically. Exercise a deterministic pseudo-random
// sequence heavy in duplicate times and interleaved pops.
TEST(EventCore, PopOrderMatchesPriorityQueueIncludingTies)
{
    EventCore core;
    core.reserve(8);
    RefHeap ref;

    uint32_t state = 12345;
    const auto next = [&state]() {
        // xorshift32: deterministic, no <random> needed.
        state ^= state << 13;
        state ^= state >> 17;
        state ^= state << 5;
        return state;
    };

    uint64_t epoch = 0;
    for (int round = 0; round < 2000; ++round) {
        const bool push = ref.empty() || next() % 3 != 0;
        if (push) {
            // Only 8 distinct times: collisions everywhere.
            const uint64_t time = next() % 8;
            const unsigned tid = next() % 5;
            core.push({time, ++epoch, tid});
            ref.push({time, epoch, tid});
        } else {
            ASSERT_FALSE(core.empty());
            EXPECT_EQ(core.top().time, ref.top().time);
            EXPECT_EQ(core.top().epoch, ref.top().epoch);
            EXPECT_EQ(core.top().tid, ref.top().tid);
            core.pop();
            ref.pop();
        }
    }
    while (!ref.empty()) {
        ASSERT_FALSE(core.empty());
        EXPECT_EQ(core.top().epoch, ref.top().epoch);
        core.pop();
        ref.pop();
    }
    EXPECT_TRUE(core.empty());
}

TEST(EventCore, TracksLiveCountAndMaxSize)
{
    EventCore core;
    core.reserve(2);
    core.push({5, 1, 0});
    core.push({7, 1, 1});
    core.push({9, 2, 0});
    EXPECT_EQ(core.live(), 3u);
    EXPECT_EQ(core.maxSize(), 3u);
    core.pop();
    core.pop();
    core.pop();
    EXPECT_EQ(core.live(), 0u);
    EXPECT_EQ(core.maxSize(), 3u); // high-water mark persists
}

TEST(EventCore, InvalidateThreadMarksOnlyThatThreadStale)
{
    EventCore core;
    core.reserve(2);
    core.push({5, 1, 0});
    core.push({7, 1, 1});
    core.invalidateThread(0);
    EXPECT_EQ(core.stale(), 1u);
    EXPECT_EQ(core.live(), 1u);

    // tid 0's entry is stale (epoch 1 <= invalidated epoch 1); the
    // consumer's prune loop drops it with popStale.
    EXPECT_EQ(core.top().tid, 0u);
    core.popStale();
    EXPECT_EQ(core.stale(), 0u);
    EXPECT_EQ(core.top().tid, 1u);
    core.pop();
    EXPECT_TRUE(core.empty());
}

TEST(EventCore, NewerEpochSurvivesInvalidationOfOlder)
{
    EventCore core;
    core.reserve(2);
    core.push({5, 1, 0});
    core.push({7, 2, 1}); // keeps live > stale: no compaction yet
    core.invalidateThread(0); // kills tid 0's epoch <= 1
    core.push({9, 3, 0});     // the re-issued completion
    EXPECT_EQ(core.stale(), 1u);
    EXPECT_EQ(core.live(), 2u);
    core.popStale(); // time 5, epoch 1
    EXPECT_EQ(core.top().epoch, 2u);
    core.pop(); // time 7, tid 1
    EXPECT_EQ(core.top().epoch, 3u);
    EXPECT_EQ(core.top().time, 9u);
}

// When a thread's only events are stale, invalidation compacts at
// once (stale > live) and the heap returns to empty.
TEST(EventCore, LoneStaleEventCompactsImmediately)
{
    EventCore core;
    core.reserve(1);
    core.push({5, 1, 0});
    core.invalidateThread(0);
    EXPECT_TRUE(core.empty());
    EXPECT_EQ(core.compactions(), 1u);
    core.push({9, 2, 0});
    EXPECT_EQ(core.live(), 1u);
    EXPECT_EQ(core.top().epoch, 2u);
}

// The lazy-deletion bugfix: a thread that re-faults forever (push,
// invalidate, push, invalidate, ...) must not grow the heap without
// bound. Before compaction existed, every superseded completion
// lingered until its time arrived, so N re-faults meant N dead heap
// entries.
TEST(EventCore, ReFaultingThreadKeepsHeapBounded)
{
    EventCore core;
    core.reserve(4);

    uint64_t epoch = 0;
    for (int i = 0; i < 10'000; ++i) {
        // Completion far in the future, superseded before it fires.
        core.push({1'000'000 + static_cast<uint64_t>(i), ++epoch, 0});
        core.invalidateThread(0);
    }
    EXPECT_GT(core.compactions(), 0u);
    // Stale entries never exceed live ones after an invalidation, so
    // the heap holds at most one dead entry per live event (plus the
    // single in-flight push).
    EXPECT_LE(core.size(), 3u);
    EXPECT_LE(core.maxSize(), 4u);
}

// Same pattern across many threads: the bound scales with the thread
// count, not with the number of superseded completions.
TEST(EventCore, ManyReFaultingThreadsStayBounded)
{
    constexpr unsigned kThreads = 32;
    EventCore core;
    core.reserve(kThreads);

    uint64_t epoch = 0;
    for (unsigned tid = 0; tid < kThreads; ++tid)
        core.push({100 + tid, ++epoch, tid});
    for (int round = 0; round < 1'000; ++round) {
        const unsigned tid = static_cast<unsigned>(round) % kThreads;
        core.invalidateThread(tid);
        core.push({10'000 + static_cast<uint64_t>(round), ++epoch,
                   tid});
    }
    EXPECT_LE(core.size(), 2 * kThreads + 1);
    EXPECT_EQ(core.live(), kThreads);
}

// Compaction must preserve pop order for the surviving events.
TEST(EventCore, CompactionPreservesOrderOfLiveEvents)
{
    EventCore core;
    core.reserve(8);

    uint64_t epoch = 0;
    // Live events for tids 1..4 at descending times.
    for (unsigned tid = 1; tid <= 4; ++tid)
        core.push({100 - tid, ++epoch, tid});
    // Flood tid 0 with superseded completions until compaction runs.
    const uint64_t before = core.compactions();
    for (int i = 0; i < 64; ++i) {
        core.push({500 + static_cast<uint64_t>(i), ++epoch, 0});
        core.invalidateThread(0);
    }
    EXPECT_GT(core.compactions(), before);

    std::vector<unsigned> order;
    while (!core.empty()) {
        if (core.top().tid == 0) { // superseded, never delivered
            core.popStale();
            continue;
        }
        order.push_back(core.top().tid);
        core.pop();
    }
    EXPECT_EQ(order, (std::vector<unsigned>{4, 3, 2, 1}));
}

// A restored core must carry the *stale-epoch* bookkeeping, not just
// the heap: after a checkpoint restore, a terminated thread's id can
// be reused by a new thread at a higher epoch, and the very next
// invalidation can trigger compaction. If staleBelow_/lastEpoch_
// were rebuilt wrong, compaction would either drop the reused
// thread's live events or keep the dead ones — both diverge from a
// never-snapshotted run.
TEST(EventCore, RestoreWithThreadIdReuseMatchesUninterruptedRun)
{
    const auto prelude = [](EventCore &core) {
        core.reserve(4);
        core.push({100, 1, 0});
        core.push({90, 1, 1});
        core.push({110, 1, 2});
        core.push({90, 2, 1}); // equal-time tie with tid 1's first
        core.push({120, 1, 2});
        // tid 1 unblocks through another path: 2 stale, 3 live — not
        // enough to compact yet.
        core.invalidateThread(1);
    };

    EventCore uninterrupted;
    prelude(uninterrupted);

    EventCore source;
    prelude(source);
    rr::ckpt::Writer writer;
    source.saveState(writer);
    const std::vector<uint8_t> doc = writer.seal();

    EventCore restored;
    restored.restoreState(rr::ckpt::Reader(doc));
    EXPECT_EQ(restored.size(), 5u);
    EXPECT_EQ(restored.live(), 3u);
    EXPECT_EQ(restored.stale(), 2u);
    EXPECT_EQ(restored.compactions(), 0u);

    const auto postlude = [](EventCore &core) {
        // tid 2 terminates; its two pending events join tid 1's as
        // stale (4 of 5) and compaction must fire, erasing exactly
        // the events at or below each thread's invalidation epoch.
        core.invalidateThread(2);
        // A new thread reuses tid 2 at a higher epoch; its events
        // are live and must survive every later compaction.
        core.push({85, 7, 2});
        core.push({115, 7, 2});
        core.push({100, 2, 3}); // equal-time tie with tid 0's event
        core.invalidateThread(0);
    };
    postlude(uninterrupted);
    postlude(restored);

    EXPECT_EQ(restored.compactions(), uninterrupted.compactions());
    EXPECT_GT(restored.compactions(), 0u);
    EXPECT_EQ(restored.live(), uninterrupted.live());
    EXPECT_EQ(restored.stale(), uninterrupted.stale());
    EXPECT_EQ(restored.maxSize(), uninterrupted.maxSize());

    // The raw heap layout (and with it equal-time tie-breaking)
    // must match byte-for-byte, compaction included.
    rr::ckpt::Writer fromRestored, fromUninterrupted;
    restored.saveState(fromRestored);
    uninterrupted.saveState(fromUninterrupted);
    EXPECT_EQ(fromRestored.seal(), fromUninterrupted.seal());

    // Finally, drain both: identical pop order, with the reused id's
    // old-epoch events never delivered and its new-epoch events
    // always delivered. Invalidation floors per tid: 0 and 1 died at
    // their last epochs, tid 2's *first* incarnation died at epoch 1.
    const std::vector<uint64_t> floor = {1, 2, 1, 0};
    const auto drain = [&floor](EventCore &core) {
        std::vector<std::tuple<uint64_t, uint64_t, unsigned>> popped;
        while (!core.empty()) {
            const CompletionEvent event = core.top();
            if (event.epoch <= floor[event.tid]) {
                core.popStale();
                continue;
            }
            popped.emplace_back(event.time, event.epoch, event.tid);
            core.pop();
        }
        return popped;
    };
    const auto wantPops = drain(uninterrupted);
    EXPECT_EQ(drain(restored), wantPops);
    for (const auto &[time, epoch, tid] : wantPops)
        EXPECT_FALSE(tid == 2 && epoch <= 1)
            << "stale event from the reused id was delivered";
}

} // namespace
