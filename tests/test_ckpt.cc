/**
 * @file
 * rr.ckpt.v1 checkpoint/restore tests (docs/CKPT.md).
 *
 * The determinism contract under test: snapshot a simulation at any
 * event boundary, restore it into a *fresh* processor, and the
 * remaining trace and the final statistics are identical to the
 * uninterrupted run. Plus: the container format round-trips exactly,
 * every corrupted or cross-spec document is rejected with a
 * ckpt::Error (never an assertion abort), and a restored
 * RelocationUnit never trusts memo epochs minted before the restore.
 */

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/distributions.hh"
#include "ckpt/io.hh"
#include "ckpt/snapshot.hh"
#include "machine/relocation_unit.hh"
#include "multithread/event_core.hh"
#include "multithread/mt_processor.hh"
#include "multithread/simulation_spec.hh"
#include "trace/audit.hh"
#include "trace/sink.hh"

namespace rr {
namespace {

using mt::ArchKind;
using mt::MtConfig;
using mt::MtProcessor;
using mt::MtStats;
using mt::SimulationSpec;
using trace::TraceEvent;
using trace::VectorSink;

// ---------------------------------------------------------------------
// Container format

TEST(CkptIo, RoundTripsEveryFieldType)
{
    ckpt::Writer writer;
    writer.beginSection(0x50);
    writer.u64(1, 0xdeadbeefcafef00dull);
    writer.f64(2, -0.1);
    writer.str(3, "hello ckpt");
    writer.bytes(4, {0x00, 0xff, 0x7f});
    writer.u64vec(5, {1, 2, 3});
    writer.u32vec(6, {});
    writer.endSection();
    writer.beginSection(0x51);
    writer.u64(1, 7);
    writer.endSection();
    const std::vector<uint8_t> doc = writer.seal();

    const ckpt::Reader reader(doc);
    EXPECT_TRUE(reader.hasSection(0x50));
    EXPECT_TRUE(reader.hasSection(0x51));
    EXPECT_FALSE(reader.hasSection(0x52));
    EXPECT_EQ(reader.u64(0x50, 1), 0xdeadbeefcafef00dull);
    EXPECT_EQ(reader.f64(0x50, 2), -0.1);
    EXPECT_EQ(reader.str(0x50, 3), "hello ckpt");
    EXPECT_EQ(reader.bytes(0x50, 4),
              (std::vector<uint8_t>{0x00, 0xff, 0x7f}));
    EXPECT_EQ(reader.u64vec(0x50, 5),
              (std::vector<uint64_t>{1, 2, 3}));
    EXPECT_TRUE(reader.u32vec(0x50, 6).empty());
    EXPECT_EQ(reader.u64(0x51, 1), 7u);
    EXPECT_FALSE(reader.has(0x50, 9));
    EXPECT_THROW(reader.u64(0x50, 9), ckpt::Error);
    EXPECT_THROW(reader.str(0x50, 1), ckpt::Error); // wrong type
}

TEST(CkptIo, RejectsEveryTruncation)
{
    ckpt::Writer writer;
    writer.beginSection(0x50);
    writer.u64(1, 42);
    writer.str(2, "payload");
    writer.endSection();
    const std::vector<uint8_t> doc = writer.seal();

    for (std::size_t n = 0; n < doc.size(); ++n) {
        const std::vector<uint8_t> cut(doc.begin(),
                                       doc.begin() +
                                           static_cast<long>(n));
        EXPECT_THROW(ckpt::Reader reader(cut), ckpt::Error)
            << "truncation to " << n << " bytes was accepted";
    }
}

TEST(CkptIo, RejectsEverySingleBitFlip)
{
    ckpt::Writer writer;
    writer.beginSection(0x50);
    writer.u64vec(1, {5, 6, 7});
    writer.endSection();
    const std::vector<uint8_t> doc = writer.seal();

    // Any flipped bit lands in the magic (rejected outright) or in
    // the body/trailer (rejected by the FNV-1a checksum).
    for (std::size_t byte = 0; byte < doc.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            std::vector<uint8_t> bad = doc;
            bad[byte] ^= static_cast<uint8_t>(1u << bit);
            EXPECT_THROW(ckpt::Reader reader(bad), ckpt::Error)
                << "flip at byte " << byte << " bit " << bit;
        }
    }
}

TEST(CkptIo, ErrorsCarryTheSchemaPrefix)
{
    try {
        ckpt::Reader reader(std::vector<uint8_t>{});
        FAIL() << "empty document was accepted";
    } catch (const ckpt::Error &error) {
        EXPECT_EQ(std::string(error.what()).rfind("rr.ckpt: ", 0), 0u)
            << error.what();
    }
}

TEST(CkptMeta, RejectsKindAndFingerprintMismatches)
{
    ckpt::Writer writer;
    ckpt::writeMeta(writer, "mt", "spec-a");
    const std::vector<uint8_t> doc = writer.seal();
    const ckpt::Reader reader(doc);

    EXPECT_EQ(ckpt::metaKind(reader), "mt");
    EXPECT_NO_THROW(ckpt::checkMeta(reader, "mt", "spec-a"));
    EXPECT_THROW(ckpt::checkMeta(reader, "machine", "spec-a"),
                 ckpt::Error);
    try {
        ckpt::checkMeta(reader, "mt", "spec-b");
        FAIL() << "cross-spec restore was accepted";
    } catch (const ckpt::Error &error) {
        EXPECT_NE(std::string(error.what()).find("cross-spec"),
                  std::string::npos)
            << error.what();
    }
}

// ---------------------------------------------------------------------
// MT simulator: snapshot/restore equals the straight run

void
expectSameEvent(const TraceEvent &a, const TraceEvent &b,
                std::size_t index)
{
    EXPECT_EQ(a.kind, b.kind) << "event " << index;
    EXPECT_EQ(a.arch, b.arch) << "event " << index;
    EXPECT_EQ(a.ok, b.ok) << "event " << index;
    EXPECT_EQ(a.tid, b.tid) << "event " << index;
    EXPECT_EQ(a.ctx, b.ctx) << "event " << index;
    EXPECT_EQ(a.regs, b.regs) << "event " << index;
    EXPECT_EQ(a.cycle, b.cycle) << "event " << index;
    EXPECT_EQ(a.cycles, b.cycles) << "event " << index;
    EXPECT_EQ(a.aux, b.aux) << "event " << index;
}

void
expectSameStats(const MtStats &a, const MtStats &b)
{
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.usefulCycles, b.usefulCycles);
    EXPECT_EQ(a.idleCycles, b.idleCycles);
    EXPECT_EQ(a.switchCycles, b.switchCycles);
    EXPECT_EQ(a.allocCycles, b.allocCycles);
    EXPECT_EQ(a.deallocCycles, b.deallocCycles);
    EXPECT_EQ(a.loadCycles, b.loadCycles);
    EXPECT_EQ(a.unloadCycles, b.unloadCycles);
    EXPECT_EQ(a.queueCycles, b.queueCycles);
    EXPECT_EQ(a.faults, b.faults);
    EXPECT_EQ(a.cacheFaults, b.cacheFaults);
    EXPECT_EQ(a.syncFaults, b.syncFaults);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.unloads, b.unloads);
    EXPECT_EQ(a.allocSuccesses, b.allocSuccesses);
    EXPECT_EQ(a.allocFailures, b.allocFailures);
    EXPECT_EQ(a.efficiencyCentral, b.efficiencyCentral);
    EXPECT_EQ(a.efficiencyTotal, b.efficiencyTotal);
    EXPECT_EQ(a.avgResidentContexts, b.avgResidentContexts);
    EXPECT_EQ(a.maxResidentContexts, b.maxResidentContexts);
    EXPECT_EQ(a.threadsFinished, b.threadsFinished);
}

/**
 * Run @p spec straight through, then again split at event boundary
 * @p splitAt (snapshot, restore into a fresh processor, continue),
 * and require identical traces, statistics, and thread tables.
 */
void
checkResumeEqualsStraight(const SimulationSpec &spec,
                          uint64_t splitAt)
{
    SCOPED_TRACE("split at event " + std::to_string(splitAt));

    // The uninterrupted reference run.
    VectorSink straightSink;
    SimulationSpec straightSpec = spec;
    MtProcessor straight(straightSpec.traceSink(&straightSink).build());
    const MtStats straightStats = straight.run();

    // Head: run to the boundary and snapshot.
    VectorSink headSink;
    SimulationSpec headSpec = spec;
    MtProcessor head(headSpec.traceSink(&headSink).build());
    head.begin();
    while (!head.done() && head.eventIndex() < splitAt)
        head.step();
    const std::vector<uint8_t> doc = head.snapshot();

    // Tail: a fresh processor restored from the document.
    VectorSink tailSink;
    SimulationSpec tailSpec = spec;
    MtProcessor tail(tailSpec.traceSink(&tailSink).build());
    tail.restore(doc);
    const MtStats tailStats = tail.run();

    expectSameStats(straightStats, tailStats);

    const std::vector<TraceEvent> &straightEvents =
        straightSink.events();
    ASSERT_EQ(straightEvents.size(),
              headSink.events().size() + tailSink.events().size());
    for (std::size_t i = 0; i < straightEvents.size(); ++i) {
        const bool inHead = i < headSink.events().size();
        expectSameEvent(straightEvents[i],
                        inHead ? headSink.events()[i]
                               : tailSink.events()
                                     [i - headSink.events().size()],
                        i);
    }

    ASSERT_EQ(straight.threads().size(), tail.threads().size());
    for (std::size_t i = 0; i < straight.threads().size(); ++i) {
        const mt::Thread &a = straight.threads()[i];
        const mt::Thread &b = tail.threads()[i];
        EXPECT_EQ(a.totalWork, b.totalWork) << "thread " << i;
        EXPECT_EQ(a.faults, b.faults) << "thread " << i;
        EXPECT_EQ(a.timesLoaded, b.timesLoaded) << "thread " << i;
        EXPECT_EQ(a.timesUnloaded, b.timesUnloaded) << "thread " << i;
        EXPECT_EQ(a.finishTime, b.finishTime) << "thread " << i;
    }
}

SimulationSpec
cacheSpec()
{
    return SimulationSpec()
        .cacheFaults(20, 60)
        .threads(24)
        .workPerThread(2000)
        .numRegs(128)
        .seed(7);
}

TEST(CkptMt, CacheFlexibleResumeEqualsStraightRun)
{
    for (const uint64_t splitAt : {0ull, 1ull, 57ull, 400ull})
        checkResumeEqualsStraight(cacheSpec(), splitAt);
}

TEST(CkptMt, SnapshotPastTheEndRestoresAFinishedRun)
{
    // splitAt beyond the run length: the head finishes, the snapshot
    // captures the final state, and the tail has nothing left to do.
    checkResumeEqualsStraight(cacheSpec(), ~0ull);
}

TEST(CkptMt, SyncFixedTwoPhaseResumeEqualsStraightRun)
{
    const SimulationSpec spec = SimulationSpec()
                                    .syncFaults(20, 100)
                                    .arch(ArchKind::FixedHw)
                                    .threads(16)
                                    .workPerThread(1500)
                                    .numRegs(128)
                                    .seed(3);
    for (const uint64_t splitAt : {1ull, 123ull})
        checkResumeEqualsStraight(spec, splitAt);
}

TEST(CkptMt, CombinedAddRelocResumeEqualsStraightRun)
{
    const SimulationSpec spec = SimulationSpec()
                                    .combinedFaults(20, 60, 40, 100)
                                    .arch(ArchKind::AddReloc)
                                    .threads(16)
                                    .workPerThread(1500)
                                    .numRegs(128)
                                    .seed(5);
    for (const uint64_t splitAt : {1ull, 123ull})
        checkResumeEqualsStraight(spec, splitAt);
}

TEST(CkptMt, PrioritizedWorkloadResumeEqualsStraightRun)
{
    const SimulationSpec spec = SimulationSpec()
                                    .cacheFaults(20, 60)
                                    .threads(24)
                                    .workPerThread(1500)
                                    .priorities(3, makeUniformInt(0, 2))
                                    .numRegs(128)
                                    .seed(11);
    for (const uint64_t splitAt : {1ull, 200ull})
        checkResumeEqualsStraight(spec, splitAt);
}

TEST(CkptMt, SnapshotIsByteStableAcrossRestore)
{
    MtProcessor head(cacheSpec().build());
    head.begin();
    for (int i = 0; i < 150 && !head.done(); ++i)
        head.step();
    const std::vector<uint8_t> doc = head.snapshot();
    EXPECT_EQ(doc, head.snapshot()); // snapshotting is pure

    MtProcessor restored(cacheSpec().build());
    restored.restore(doc);
    EXPECT_EQ(doc, restored.snapshot()); // restore loses nothing
}

TEST(CkptMt, ResumeViaConfigReproducesFinalStats)
{
    const std::string path =
        testing::TempDir() + "/rr_ckpt_resume_test.ckpt";

    SimulationSpec straightSpec = cacheSpec();
    const MtStats straightStats = straightSpec.run();

    SimulationSpec writeSpec = cacheSpec();
    const MtStats writeStats =
        writeSpec.checkpointEvery(100, path).run();
    expectSameStats(straightStats, writeStats);

    SimulationSpec resumeSpec = cacheSpec();
    const MtStats resumedStats = resumeSpec.resumeFrom(path).run();
    expectSameStats(straightStats, resumedStats);

    std::remove(path.c_str());
}

TEST(CkptMt, CrossSpecRestoreThrows)
{
    MtProcessor source(cacheSpec().build());
    source.begin();
    const std::vector<uint8_t> doc = source.snapshot();

    SimulationSpec other = cacheSpec();
    MtProcessor target(other.seed(8).build());
    EXPECT_THROW(target.restore(doc), ckpt::Error);
}

TEST(CkptMt, HostileDocumentsThrowNotAbort)
{
    MtProcessor source(cacheSpec().build());
    source.begin();
    for (int i = 0; i < 50 && !source.done(); ++i)
        source.step();
    const std::vector<uint8_t> doc = source.snapshot();

    // Truncations die in the Reader.
    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{7}, std::size_t{20},
          doc.size() / 2, doc.size() - 1}) {
        MtProcessor target(cacheSpec().build());
        const std::vector<uint8_t> cut(doc.begin(),
                                       doc.begin() +
                                           static_cast<long>(keep));
        EXPECT_THROW(target.restore(cut), ckpt::Error)
            << "kept " << keep << " bytes";
    }

    // A structurally valid document with the right meta but no
    // component sections dies in restoreState, not on an assert.
    ckpt::Writer writer;
    ckpt::writeMeta(writer, "mt", source.fingerprint());
    MtProcessor target(cacheSpec().build());
    EXPECT_THROW(target.restore(writer.seal()), ckpt::Error);
}

TEST(CkptSpec, ValidatesCheckpointSettings)
{
    EXPECT_THROW(SimulationSpec()
                     .cacheFaults(20, 60)
                     .checkpointEvery(10, "")
                     .build(),
                 mt::SpecError);
    EXPECT_THROW(SimulationSpec()
                     .cacheFaults(20, 60)
                     .checkpointEvery(0, "somewhere.ckpt")
                     .build(),
                 mt::SpecError);
}

// ---------------------------------------------------------------------
// Component round trips

TEST(CkptEventCore, RoundTripsLiveAndStaleEvents)
{
    mt::EventCore core;
    core.push({100, 1, 0});
    core.push({90, 1, 1});
    core.push({110, 1, 2});
    core.push({90, 2, 1}); // equal-time tie with the earlier event
    core.invalidateThread(2);

    ckpt::Writer writer;
    core.saveState(writer);
    const std::vector<uint8_t> doc = writer.seal();

    mt::EventCore restored;
    restored.restoreState(ckpt::Reader(doc));
    EXPECT_EQ(restored.size(), core.size());
    EXPECT_EQ(restored.live(), core.live());
    EXPECT_EQ(restored.stale(), core.stale());

    // Byte-for-byte round trip: the raw heap order (and with it the
    // pop tie-breaking among equal times) survives.
    ckpt::Writer again;
    restored.saveState(again);
    EXPECT_EQ(again.seal(), doc);
}

TEST(CkptAuditor, SplitAuditReconcilesLikeAWholeRun)
{
    VectorSink sink;
    SimulationSpec spec = cacheSpec();
    MtConfig config = spec.traceSink(&sink).build();
    const MtStats stats = mt::simulate(config);
    const std::vector<TraceEvent> &events = sink.events();
    ASSERT_GT(events.size(), 100u);

    trace::TraceAuditor whole(config.costs);
    for (const TraceEvent &event : events)
        whole.emit(event);
    EXPECT_TRUE(whole.reconcile(mt::auditTotals(stats)).empty());

    const std::size_t split = events.size() / 3;
    trace::TraceAuditor headAuditor(config.costs);
    for (std::size_t i = 0; i < split; ++i)
        headAuditor.emit(events[i]);
    ckpt::Writer writer;
    headAuditor.saveState(writer);
    const std::vector<uint8_t> doc = writer.seal();

    trace::TraceAuditor tailAuditor(config.costs);
    tailAuditor.restoreState(ckpt::Reader(doc));
    for (std::size_t i = split; i < events.size(); ++i)
        tailAuditor.emit(events[i]);
    EXPECT_TRUE(tailAuditor.reconcile(mt::auditTotals(stats)).empty());
    EXPECT_EQ(tailAuditor.eventsSeen(), whole.eventsSeen());
}

// ---------------------------------------------------------------------
// RelocationUnit: the memo-epoch restore regression

TEST(CkptReloc, RestoredMasksNeverTrustPreRestoreEpochs)
{
    using machine::RelocationResult;
    using machine::RelocationUnit;

    RelocationUnit unit(128, 5);

    // Churn through more mask states than the 16-slot table cache
    // holds, forcing recycling, and remember one mid-churn state.
    std::vector<uint32_t> savedMasks;
    unsigned savedSize = 0;
    for (unsigned i = 0; i < 24; ++i) {
        unit.setMask((i * 8) % 128);
        unit.setContextSize(8);
        (void)unit.table();
        if (i == 10) {
            savedMasks = unit.masks();
            savedSize = unit.contextSize();
        }
    }

    // More churn after the save, then restore. The unit's cache now
    // holds tables for masks the snapshot never saw; a restore that
    // trusted pre-restore epochs could serve one of them.
    for (unsigned i = 0; i < 8; ++i) {
        unit.setMask(16 + i * 8);
        unit.setContextSize(16);
        (void)unit.table();
    }
    const uint64_t epochBefore = unit.epoch();
    unit.restoreMasks(savedMasks, savedSize);
    EXPECT_GT(unit.epoch(), epochBefore);

    RelocationUnit fresh(128, 5);
    fresh.setMask(savedMasks[0]);
    fresh.setContextSize(savedSize);
    const RelocationResult *restored = unit.table();
    const RelocationResult *expected = fresh.table();
    for (unsigned operand = 0; operand < unit.tableSize();
         ++operand) {
        EXPECT_EQ(restored[operand].physical,
                  expected[operand].physical)
            << "operand " << operand;
        EXPECT_EQ(restored[operand].ok, expected[operand].ok)
            << "operand " << operand;
    }
    for (unsigned operand = 0; operand < unit.tableSize();
         ++operand) {
        EXPECT_EQ(unit.relocate(operand).physical,
                  fresh.relocate(operand).physical);
    }
}

TEST(CkptReloc, RestoreRejectsHostileMaskState)
{
    machine::RelocationUnit unit(128, 5);
    EXPECT_THROW(unit.restoreMasks({}, 8), ckpt::Error);
    EXPECT_THROW(unit.restoreMasks({0, 8}, 8), ckpt::Error);
    EXPECT_THROW(unit.restoreMasks({8}, 3), ckpt::Error);
    EXPECT_THROW(unit.restoreMasks({8}, 256), ckpt::Error);
    EXPECT_THROW(unit.restoreMasks({0xffffu}, 8), ckpt::Error);
}

} // namespace
} // namespace rr
