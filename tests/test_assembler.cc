/**
 * @file
 * Assembler tests: labels, directives, pseudo-instructions, PC-
 * relative branch resolution, memory operands, comments, and error
 * diagnostics.
 */

#include <gtest/gtest.h>

#include "assembler/assembler.hh"
#include "base/rng.hh"
#include "isa/instruction.hh"

namespace rr::assembler {
namespace {

using isa::Instruction;
using isa::Opcode;

Instruction
decodeWord(const Program &prog, size_t index)
{
    Instruction inst;
    EXPECT_TRUE(isa::decode(prog.words.at(index), inst));
    return inst;
}

TEST(Assembler, BasicInstructions)
{
    const Program prog = assemble("add r1, r2, r3\n"
                                  "addi r4, r5, -7\n"
                                  "halt\n");
    ASSERT_TRUE(prog.ok());
    ASSERT_EQ(prog.words.size(), 3u);
    EXPECT_EQ(decodeWord(prog, 0), isa::makeR3(Opcode::ADD, 1, 2, 3));
    EXPECT_EQ(decodeWord(prog, 1), isa::makeI(Opcode::ADDI, 4, 5, -7));
    EXPECT_EQ(decodeWord(prog, 2).op, Opcode::HALT);
}

TEST(Assembler, CommentsAndBlankLines)
{
    const Program prog = assemble("; leading comment\n"
                                  "\n"
                                  "nop // trailing\n"
                                  "nop # hash comment\n"
                                  "   \t \n");
    ASSERT_TRUE(prog.ok());
    EXPECT_EQ(prog.words.size(), 2u);
}

TEST(Assembler, LabelsAndBranches)
{
    const Program prog = assemble("start:\n"
                                  "  nop\n"
                                  "loop: addi r1, r1, -1\n"
                                  "  bne r1, r2, loop\n"
                                  "  b start\n");
    ASSERT_TRUE(prog.ok());
    EXPECT_EQ(prog.addressOf("start"), 0u);
    EXPECT_EQ(prog.addressOf("loop"), 1u);
    // bne at word 2, target word 1 -> offset -1.
    EXPECT_EQ(decodeWord(prog, 2), isa::makeB(Opcode::BNE, 1, 2, -1));
    // b at word 3 -> beq r0, r0 with offset -3.
    EXPECT_EQ(decodeWord(prog, 3), isa::makeB(Opcode::BEQ, 0, 0, -3));
}

TEST(Assembler, ForwardReferences)
{
    const Program prog = assemble("  jal r0, target\n"
                                  "  nop\n"
                                  "target: halt\n");
    ASSERT_TRUE(prog.ok());
    EXPECT_EQ(decodeWord(prog, 0), isa::makeJ(Opcode::JAL, 0, 2));
}

TEST(Assembler, MemoryOperands)
{
    const Program prog = assemble("ld r1, 4(r2)\n"
                                  "st r3, (r4)\n"
                                  "ld r5, -1(r6)\n");
    ASSERT_TRUE(prog.ok());
    EXPECT_EQ(decodeWord(prog, 0), isa::makeI(Opcode::LD, 1, 2, 4));
    EXPECT_EQ(decodeWord(prog, 1), isa::makeI(Opcode::ST, 3, 4, 0));
    EXPECT_EQ(decodeWord(prog, 2), isa::makeI(Opcode::LD, 5, 6, -1));
}

TEST(Assembler, MovPseudo)
{
    const Program prog = assemble("mov r1, r2\n"
                                  "mov r3, psw\n"
                                  "mov psw, r4\n");
    ASSERT_TRUE(prog.ok());
    EXPECT_EQ(decodeWord(prog, 0), isa::makeI(Opcode::ADDI, 1, 2, 0));
    Instruction mfpsw = decodeWord(prog, 1);
    EXPECT_EQ(mfpsw.op, Opcode::MFPSW);
    EXPECT_EQ(mfpsw.rd, 3);
    Instruction mtpsw = decodeWord(prog, 2);
    EXPECT_EQ(mtpsw.op, Opcode::MTPSW);
    EXPECT_EQ(mtpsw.rs1, 4);
}

TEST(Assembler, LiExpandsToLuiOri)
{
    const Program prog = assemble("li r1, 0x12345\n");
    ASSERT_TRUE(prog.ok());
    ASSERT_EQ(prog.words.size(), 2u);
    const Instruction lui = decodeWord(prog, 0);
    const Instruction ori = decodeWord(prog, 1);
    EXPECT_EQ(lui.op, Opcode::LUI);
    EXPECT_EQ(ori.op, Opcode::ORI);
    const uint32_t value = (static_cast<uint32_t>(lui.imm) << 12) |
                           static_cast<uint32_t>(ori.imm);
    EXPECT_EQ(value, 0x12345u);
}

TEST(Assembler, LaResolvesLabelAddress)
{
    const Program prog = assemble("  la r1, data\n"
                                  "  halt\n"
                                  "data: .word 99\n");
    ASSERT_TRUE(prog.ok());
    EXPECT_EQ(prog.addressOf("data"), 3u);
    const Instruction lui = decodeWord(prog, 0);
    const Instruction ori = decodeWord(prog, 1);
    const uint32_t value = (static_cast<uint32_t>(lui.imm) << 12) |
                           static_cast<uint32_t>(ori.imm);
    EXPECT_EQ(value, 3u);
    EXPECT_EQ(prog.words[3], 99u);
}

TEST(Assembler, EquConstants)
{
    const Program prog = assemble(".equ LIMIT, 42\n"
                                  "addi r1, r2, LIMIT\n");
    ASSERT_TRUE(prog.ok());
    EXPECT_EQ(decodeWord(prog, 0), isa::makeI(Opcode::ADDI, 1, 2, 42));
}

TEST(Assembler, OrgPadsImage)
{
    const Program prog = assemble("nop\n"
                                  ".org 4\n"
                                  "halt\n");
    ASSERT_TRUE(prog.ok());
    ASSERT_EQ(prog.words.size(), 5u);
    EXPECT_EQ(decodeWord(prog, 4).op, Opcode::HALT);
}

TEST(Assembler, LeadingOrgSetsBase)
{
    const Program prog = assemble(".org 100\n"
                                  "start: halt\n");
    ASSERT_TRUE(prog.ok());
    EXPECT_EQ(prog.base, 100u);
    EXPECT_EQ(prog.addressOf("start"), 100u);
    EXPECT_EQ(prog.words.size(), 1u);
}

TEST(Assembler, AlignPads)
{
    const Program prog = assemble("nop\n"
                                  ".align 4\n"
                                  "aligned: halt\n");
    ASSERT_TRUE(prog.ok());
    EXPECT_EQ(prog.addressOf("aligned"), 4u);
}

TEST(Assembler, HexAndNegativeLiterals)
{
    const Program prog = assemble("addi r1, r2, 0x7f\n"
                                  "addi r3, r4, -0x10\n");
    ASSERT_TRUE(prog.ok());
    EXPECT_EQ(decodeWord(prog, 0).imm, 0x7f);
    EXPECT_EQ(decodeWord(prog, 1).imm, -16);
}

TEST(Assembler, JalrTwoOperandForm)
{
    const Program prog = assemble("jalr r1, r2\n");
    ASSERT_TRUE(prog.ok());
    EXPECT_EQ(decodeWord(prog, 0), isa::makeI(Opcode::JALR, 1, 2, 0));
}

TEST(AssemblerErrors, UnknownMnemonic)
{
    const Program prog = assemble("frobnicate r1\n");
    ASSERT_FALSE(prog.ok());
    EXPECT_NE(prog.errors[0].message.find("unknown"),
              std::string::npos);
    EXPECT_EQ(prog.errors[0].line, 1);
}

TEST(AssemblerErrors, UndefinedLabel)
{
    const Program prog = assemble("b nowhere\n");
    ASSERT_FALSE(prog.ok());
    EXPECT_NE(prog.errors[0].message.find("nowhere"),
              std::string::npos);
}

TEST(AssemblerErrors, DuplicateLabel)
{
    const Program prog = assemble("x: nop\nx: nop\n");
    ASSERT_FALSE(prog.ok());
    EXPECT_NE(prog.errors[0].message.find("duplicate"),
              std::string::npos);
    EXPECT_EQ(prog.errors[0].line, 2);
}

TEST(AssemblerErrors, BadRegister)
{
    const Program prog = assemble("add r1, r64, r2\n");
    ASSERT_FALSE(prog.ok());
}

TEST(AssemblerErrors, WrongOperandCount)
{
    const Program prog = assemble("add r1, r2\n");
    ASSERT_FALSE(prog.ok());
    EXPECT_NE(prog.errors[0].message.find("expects"),
              std::string::npos);
}

TEST(AssemblerErrors, BackwardOrgRejected)
{
    const Program prog = assemble("nop\nnop\n.org 1\nnop\n");
    ASSERT_FALSE(prog.ok());
}

TEST(Assembler, LineMappingTracksSource)
{
    const Program prog = assemble("nop\n"
                                  "nop\n"
                                  "halt\n");
    ASSERT_TRUE(prog.ok());
    EXPECT_EQ(prog.lines[0], 1);
    EXPECT_EQ(prog.lines[1], 2);
    EXPECT_EQ(prog.lines[2], 3);
}

TEST(Assembler, ThreadDirectiveRecordsEntryPoints)
{
    const Program prog = assemble(".thread worker\n"
                                  ".thread other, 0x20\n"
                                  "entry:\n"
                                  "    halt\n"
                                  "worker:\n"
                                  "    halt\n"
                                  "other:\n"
                                  "    halt\n");
    ASSERT_TRUE(prog.ok());
    ASSERT_EQ(prog.threads.size(), 2u);
    EXPECT_EQ(prog.threads[0].address, prog.addressOf("worker"));
    EXPECT_FALSE(prog.threads[0].hasRrm);
    EXPECT_EQ(prog.threads[1].address, prog.addressOf("other"));
    EXPECT_TRUE(prog.threads[1].hasRrm);
    EXPECT_EQ(prog.threads[1].rrm, 0x20u);
    // Directives emit no words.
    EXPECT_EQ(prog.words.size(), 3u);
}

TEST(Assembler, LockdefDirectiveRecordsLockProcedures)
{
    const Program prog = assemble(".lockdef m, take, drop\n"
                                  "take:\n"
                                  "    jmp r8\n"
                                  "drop:\n"
                                  "    jmp r8\n");
    ASSERT_TRUE(prog.ok());
    ASSERT_EQ(prog.lockdefs.size(), 1u);
    EXPECT_EQ(prog.lockdefs[0].name, "m");
    EXPECT_EQ(prog.lockdefs[0].acquire, prog.addressOf("take"));
    EXPECT_EQ(prog.lockdefs[0].release, prog.addressOf("drop"));
}

TEST(Assembler, AddressTakenTracksLabelMaterialisations)
{
    // Labels materialised via la/li or .word are potential JALR
    // targets; plain numbers and .equ constants are not.
    const Program prog = assemble("    .equ K, 0x40\n"
                                  "entry:\n"
                                  "    la r4, helper\n"
                                  "    li r5, K\n"
                                  "    li r6, 7\n"
                                  "    halt\n"
                                  "helper:\n"
                                  "    jmp r8\n"
                                  "    .word tail\n"
                                  "tail:\n"
                                  "    halt\n");
    ASSERT_TRUE(prog.ok());
    const std::vector<uint32_t> expect = {prog.addressOf("helper"),
                                          prog.addressOf("tail")};
    EXPECT_EQ(prog.addressTaken, expect);
}

TEST(AssemblerErrors, MalformedConcurrencyDirectives)
{
    EXPECT_FALSE(assemble(".thread\nhalt\n").ok());
    EXPECT_FALSE(assemble(".thread nowhere\nhalt\n").ok());
    EXPECT_FALSE(assemble(".lockdef m, onlyone\nhalt\n").ok());
    EXPECT_FALSE(
        assemble(".lockdef m, a, nowhere\na:\n jmp r8\n").ok());
}


/**
 * Property: disassembly is valid assembler input, and re-assembling
 * it reproduces the original word — for every opcode with random
 * legal operands.
 */
class DisasmRoundTrip : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(DisasmRoundTrip, TextSurvivesReassembly)
{
    const auto op = static_cast<isa::Opcode>(GetParam());
    const isa::Format fmt = isa::formatOf(op);
    const isa::FormatInfo info = isa::formatInfo(fmt);
    rr::Rng rng(GetParam() * 131 + 5);

    for (int trial = 0; trial < 50; ++trial) {
        isa::Instruction inst;
        inst.op = op;
        if (info.hasRd)
            inst.rd = static_cast<uint8_t>(rng.nextRange(0, 63));
        if (info.hasRs1)
            inst.rs1 = static_cast<uint8_t>(rng.nextRange(0, 63));
        if (info.hasRs2)
            inst.rs2 = static_cast<uint8_t>(rng.nextRange(0, 63));
        if (info.hasImm) {
            if (info.immSigned) {
                const int32_t lo = -(1 << (info.immBits - 1));
                const int32_t hi = (1 << (info.immBits - 1)) - 1;
                inst.imm = static_cast<int32_t>(rng.nextRange(
                               0, static_cast<uint64_t>(hi - lo))) +
                           lo;
            } else {
                inst.imm = static_cast<int32_t>(
                    rng.nextRange(0, (1u << info.immBits) - 1));
            }
        }

        const uint32_t word = isa::encode(inst);
        const std::string text = isa::disassemble(inst);
        const Program prog = assemble(text + "\n");
        ASSERT_TRUE(prog.ok()) << text;
        ASSERT_EQ(prog.words.size(), 1u) << text;
        EXPECT_EQ(prog.words[0], word) << text;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, DisasmRoundTrip,
    ::testing::Range(0u, isa::numOpcodes),
    [](const ::testing::TestParamInfo<unsigned> &info) {
        return std::string(
            isa::mnemonicOf(static_cast<isa::Opcode>(info.param)));
    });

} // namespace
} // namespace rr::assembler
