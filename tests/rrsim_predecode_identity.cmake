# Runs rrsim over the example programs with the predecoded
# instruction cache forced on (RR_CPU_PREDECODE=1) and off (=0) and
# fails unless the structured traces and final-state JSON dumps are
# byte-identical — the cache must be architecturally invisible
# (docs/PERF.md). Invoked by ctest; see tests/CMakeLists.txt.

foreach(var RRSIM ASM_DIR WORK_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "${var} is required")
    endif()
endforeach()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

file(GLOB programs ${ASM_DIR}/*.s)
list(SORT programs)
if(programs STREQUAL "")
    message(FATAL_ERROR "no example programs under ${ASM_DIR}")
endif()

foreach(program ${programs})
    get_filename_component(name ${program} NAME_WE)
    foreach(mode 0 1)
        execute_process(
            COMMAND ${CMAKE_COMMAND} -E env RR_CPU_PREDECODE=${mode}
                ${RRSIM} --trace=${WORK_DIR}/${name}.${mode}.jsonl
                --json ${program}
            OUTPUT_FILE ${WORK_DIR}/${name}.${mode}.json
            RESULT_VARIABLE status)
        if(NOT status EQUAL 0)
            message(FATAL_ERROR
                "rrsim failed on ${name} with RR_CPU_PREDECODE=${mode}")
        endif()
    endforeach()
    foreach(ext jsonl json)
        execute_process(
            COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORK_DIR}/${name}.0.${ext}
                ${WORK_DIR}/${name}.1.${ext}
            RESULT_VARIABLE diff)
        if(NOT diff EQUAL 0)
            message(FATAL_ERROR
                "${name}: ${ext} output differs between cache modes")
        endif()
    endforeach()
endforeach()
