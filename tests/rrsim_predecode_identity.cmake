# Runs rrsim over the example programs with the predecoded
# instruction cache forced off (RR_CPU_PREDECODE=0) and on — the
# latter under every run() dispatch strategy (RR_CPU_DISPATCH =
# switch, threaded, fused) — and fails unless the structured traces
# and final-state JSON dumps are byte-identical across all four legs:
# the cache and the superblock dispatch engine must be
# architecturally invisible (docs/PERF.md). Invoked by ctest; see
# tests/CMakeLists.txt.

foreach(var RRSIM ASM_DIR WORK_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "${var} is required")
    endif()
endforeach()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

file(GLOB programs ${ASM_DIR}/*.s)
list(SORT programs)
if(programs STREQUAL "")
    message(FATAL_ERROR "no example programs under ${ASM_DIR}")
endif()

# leg name -> environment for that leg. "off" is the decode-per-step
# reference every cached leg must match.
set(legs off switch threaded fused)
set(env_off RR_CPU_PREDECODE=0)
set(env_switch RR_CPU_PREDECODE=1 RR_CPU_DISPATCH=switch)
set(env_threaded RR_CPU_PREDECODE=1 RR_CPU_DISPATCH=threaded)
set(env_fused RR_CPU_PREDECODE=1 RR_CPU_DISPATCH=fused)

foreach(program ${programs})
    get_filename_component(name ${program} NAME_WE)
    foreach(leg ${legs})
        execute_process(
            COMMAND ${CMAKE_COMMAND} -E env ${env_${leg}}
                ${RRSIM} --trace=${WORK_DIR}/${name}.${leg}.jsonl
                --json ${program}
            OUTPUT_FILE ${WORK_DIR}/${name}.${leg}.json
            RESULT_VARIABLE status)
        if(NOT status EQUAL 0)
            message(FATAL_ERROR
                "rrsim failed on ${name} (${leg} leg)")
        endif()
    endforeach()
    foreach(leg switch threaded fused)
        foreach(ext jsonl json)
            execute_process(
                COMMAND ${CMAKE_COMMAND} -E compare_files
                    ${WORK_DIR}/${name}.off.${ext}
                    ${WORK_DIR}/${name}.${leg}.${ext}
                RESULT_VARIABLE diff)
            if(NOT diff EQUAL 0)
                message(FATAL_ERROR
                    "${name}: ${ext} output differs between the "
                    "uncached run and ${leg} dispatch")
            endif()
        endforeach()
    endforeach()
endforeach()
