# Runs one figure at --jobs 1 and --jobs 8 and fails unless the two
# JSON result files are byte-identical — the rrbench determinism
# contract (docs/BENCH.md). Invoked by ctest; see tests/CMakeLists.txt.

foreach(var RRBENCH WORK_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "${var} is required")
    endif()
endforeach()

file(REMOVE_RECURSE ${WORK_DIR})

foreach(jobs 1 8)
    execute_process(
        COMMAND ${RRBENCH} --filter fig5_cache --fast --quiet
            --jobs ${jobs} --out-dir ${WORK_DIR}/jobs${jobs}
        RESULT_VARIABLE status)
    if(NOT status EQUAL 0)
        message(FATAL_ERROR
            "rrbench --jobs ${jobs} failed with status ${status}")
    endif()
endforeach()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
        ${WORK_DIR}/jobs1/BENCH_fig5_cache.json
        ${WORK_DIR}/jobs8/BENCH_fig5_cache.json
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR
        "BENCH_fig5_cache.json differs between --jobs 1 and --jobs 8")
endif()
