/**
 * @file
 * Tests for the shared tools-layer CLI contract (tools/cli.hh,
 * tools/arg_num.hh): the strict numeric grammar at its edges —
 * INT64/UINT64 boundaries, signs, whitespace, 0x prefixes, leading
 * zeros — and the option parser's exit-status behaviour
 * (docs/TOOLS.md documents the accepted forms).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "cli.hh"
#include "exp/json_in.hh"

namespace rr::tools {
namespace {

/** Run @p parser over synthetic arguments; returns parse()'s code. */
int
parseArgs(OptionParser &parser, std::vector<std::string> args)
{
    std::vector<char *> argv;
    static char tool[] = "testtool";
    argv.push_back(tool);
    for (std::string &arg : args)
        argv.push_back(arg.data());
    return parser.parse(static_cast<int>(argv.size()), argv.data());
}

/** Typed pair so EXPECT_EQ compares against uint64_t exactly. */
std::pair<int, uint64_t>
P(int code, uint64_t value)
{
    return {code, value};
}

/** Parse `--n <text>` with bounds; returns {code, value}. */
std::pair<int, uint64_t>
parseNumber(const std::string &text, uint64_t min = 0,
            uint64_t max = std::numeric_limits<uint64_t>::max())
{
    OptionParser parser("testtool", "usage\n");
    uint64_t value = 0;
    parser.number("--n", &value, min, max);
    const int code = parseArgs(parser, {"--n", text});
    return {code, value};
}

TEST(CliNumber, AcceptsPlainDecimal)
{
    EXPECT_EQ(parseNumber("0"), P(-1, 0ull));
    EXPECT_EQ(parseNumber("5"), P(-1, 5ull));
    EXPECT_EQ(parseNumber("123456789"),
              P(-1, 123456789ull));
}

TEST(CliNumber, Int64AndUint64Boundaries)
{
    // INT64_MAX and its neighbours: an implementation detouring
    // through a signed type breaks exactly here.
    EXPECT_EQ(parseNumber("9223372036854775807"),
              P(-1, 9223372036854775807ull));
    EXPECT_EQ(parseNumber("9223372036854775808"),
              P(-1, 9223372036854775808ull));
    // UINT64_MAX is the last representable value...
    EXPECT_EQ(parseNumber("18446744073709551615"),
              P(-1, 18446744073709551615ull));
    // ... and one past it must be an overflow error, not a wrap.
    EXPECT_EQ(parseNumber("18446744073709551616").first, kExitUsage);
    EXPECT_EQ(parseNumber("99999999999999999999999").first,
              kExitUsage);
}

TEST(CliNumber, RejectsSignsAndWhitespace)
{
    // The grammar admits digits only: no '+' (strtoull would accept
    // it), no '-', no locale whitespace, no trailing junk.
    EXPECT_EQ(parseNumber("+5").first, kExitUsage);
    EXPECT_EQ(parseNumber("-5").first, kExitUsage);
    EXPECT_EQ(parseNumber(" 5").first, kExitUsage);
    EXPECT_EQ(parseNumber("5 ").first, kExitUsage);
    EXPECT_EQ(parseNumber("\t5").first, kExitUsage);
    EXPECT_EQ(parseNumber("5\n").first, kExitUsage);
    EXPECT_EQ(parseNumber("").first, kExitUsage);
    EXPECT_EQ(parseNumber("banana").first, kExitUsage);
    EXPECT_EQ(parseNumber("5x").first, kExitUsage);
    EXPECT_EQ(parseNumber("12 34").first, kExitUsage);
}

TEST(CliNumber, HexPrefixes)
{
    EXPECT_EQ(parseNumber("0x10"), P(-1, 16ull));
    EXPECT_EQ(parseNumber("0XfF"), P(-1, 255ull));
    EXPECT_EQ(parseNumber("0xffffffffffffffff"),
              P(-1, 18446744073709551615ull));
    // "0x" with no digits is not a number.
    EXPECT_EQ(parseNumber("0x").first, kExitUsage);
    EXPECT_EQ(parseNumber("0xg").first, kExitUsage);
    // Hex overflow must be caught too.
    EXPECT_EQ(parseNumber("0x10000000000000000").first, kExitUsage);
}

TEST(CliNumber, LeadingZerosAreDecimalNotOctal)
{
    // strtoull(text, nullptr, 0) would read these as C octal; the
    // documented grammar says leading zeros are plain decimal.
    EXPECT_EQ(parseNumber("010"), P(-1, 10ull));
    EXPECT_EQ(parseNumber("0010"), P(-1, 10ull));
    EXPECT_EQ(parseNumber("08"), P(-1, 8ull));
    EXPECT_EQ(parseNumber("00"), P(-1, 0ull));
}

TEST(CliNumber, EnforcesRange)
{
    EXPECT_EQ(parseNumber("8", 2, 8), P(-1, 8ull));
    EXPECT_EQ(parseNumber("2", 2, 8), P(-1, 2ull));
    EXPECT_EQ(parseNumber("1", 2, 8).first, kExitUsage);
    EXPECT_EQ(parseNumber("9", 2, 8).first, kExitUsage);
}

TEST(CliNumber, InlineEqualsForm)
{
    OptionParser parser("testtool", "usage\n");
    uint64_t value = 0;
    parser.number("--n", &value, 0, 100);
    EXPECT_EQ(parseArgs(parser, {"--n=17"}), -1);
    EXPECT_EQ(value, 17u);

    OptionParser bad("testtool", "usage\n");
    bad.number("--n", &value, 0, 100);
    EXPECT_EQ(parseArgs(bad, {"--n=+17"}), kExitUsage);
}

TEST(CliParser, UnknownOptionIsUsageError)
{
    OptionParser parser("testtool", "usage\n");
    EXPECT_EQ(parseArgs(parser, {"--frobnicate"}), kExitUsage);
}

TEST(CliParser, MissingValueIsUsageError)
{
    OptionParser parser("testtool", "usage\n");
    uint64_t value = 0;
    parser.number("--n", &value, 0, 100);
    EXPECT_EQ(parseArgs(parser, {"--n"}), kExitUsage);
}

TEST(CliParser, PositionalsCollected)
{
    OptionParser parser("testtool", "usage\n");
    bool quiet = false;
    parser.flag("--quiet", &quiet);
    EXPECT_EQ(parseArgs(parser, {"a.s", "--quiet", "b.s"}), -1);
    EXPECT_TRUE(quiet);
    ASSERT_EQ(parser.positionals().size(), 2u);
    EXPECT_EQ(parser.positionals()[0], "a.s");
    EXPECT_EQ(parser.positionals()[1], "b.s");
}

TEST(CliParser, RequireUnsignedReportsGarbage)
{
    uint64_t value = 0;
    EXPECT_TRUE(requireUnsigned("t", "--n", "12", value));
    EXPECT_EQ(value, 12u);
    EXPECT_FALSE(requireUnsigned("t", "--n", "12x", value));
    EXPECT_FALSE(requireUnsigned("t", "--n", nullptr, value));
    EXPECT_FALSE(requireUnsigned("t", "--n", "300", value, 255));
}

TEST(CliJsonEscape, ControlCharsSurviveTheParser)
{
    // Every byte the tools may interpolate into --json output must
    // come back unchanged through the strict exp:: JSON parser.
    std::string all;
    for (unsigned c = 1; c < 0x20; ++c)
        all += static_cast<char>(c);
    all += "plain \"quoted\" back\\slash";
    const std::string doc = "\"" + jsonEscape(all) + "\"";
    const auto parsed = exp::parseJson(doc);
    ASSERT_TRUE(parsed.has_value()) << doc;
    ASSERT_TRUE(parsed->isString());
    EXPECT_EQ(parsed->string, all);
}

} // namespace
} // namespace rr::tools
