/**
 * @file
 * Tests for the Section 3 fault models: distribution shapes, means,
 * fault classes, and the combined model's race semantics.
 */

#include <gtest/gtest.h>

#include "base/stats.hh"
#include "multithread/fault_model.hh"
#include "multithread/mt_processor.hh"

namespace rr::mt {
namespace {

TEST(CacheFaultModel, ConstantLatencyGeometricRuns)
{
    CacheFaultModel model(32.0, 100);
    Rng rng(5);
    RunningStats runs;
    for (int i = 0; i < 100000; ++i) {
        const FaultSample sample = model.next(rng);
        EXPECT_EQ(sample.latency, 100u);
        EXPECT_EQ(sample.kind, FaultClass::Cache);
        EXPECT_GE(sample.runLength, 1u);
        runs.add(static_cast<double>(sample.runLength));
    }
    EXPECT_NEAR(runs.mean(), 32.0, 1.0);
    EXPECT_DOUBLE_EQ(model.meanRunLength(), 32.0);
    EXPECT_DOUBLE_EQ(model.meanLatency(), 100.0);
}

TEST(SyncFaultModel, ExponentialLatency)
{
    SyncFaultModel model(128.0, 500.0);
    Rng rng(6);
    RunningStats runs, lats;
    for (int i = 0; i < 100000; ++i) {
        const FaultSample sample = model.next(rng);
        EXPECT_EQ(sample.kind, FaultClass::Synchronization);
        runs.add(static_cast<double>(sample.runLength));
        lats.add(static_cast<double>(sample.latency));
    }
    EXPECT_NEAR(runs.mean(), 128.0, 4.0);
    EXPECT_NEAR(lats.mean(), 500.0, 15.0);
    // Exponential: stddev ~ mean.
    EXPECT_NEAR(lats.stddev(), 500.0, 30.0);
}

TEST(CombinedFaultModel, MixesBothClasses)
{
    CombinedFaultModel model(64.0, 100, 64.0, 400.0);
    Rng rng(7);
    uint64_t cache = 0, sync = 0;
    RunningStats runs;
    for (int i = 0; i < 50000; ++i) {
        const FaultSample sample = model.next(rng);
        (sample.kind == FaultClass::Cache ? cache : sync) += 1;
        runs.add(static_cast<double>(sample.runLength));
    }
    // Equal rates: roughly half each (cache wins ties).
    EXPECT_GT(cache, 20000u);
    EXPECT_GT(sync, 15000u);
    // Combined rate: faster than either alone.
    EXPECT_LT(runs.mean(), 64.0);
    EXPECT_NEAR(runs.mean(), model.meanRunLength(),
                model.meanRunLength() * 0.05);
}

TEST(CombinedFaultModel, DegenerateRatesFavourFasterProcess)
{
    // Sync faults far rarer than cache faults.
    CombinedFaultModel model(16.0, 50, 100000.0, 1000.0);
    Rng rng(8);
    uint64_t cache = 0, sync = 0;
    for (int i = 0; i < 20000; ++i) {
        (model.next(rng).kind == FaultClass::Cache ? cache : sync) +=
            1;
    }
    EXPECT_GT(cache, 19500u);
    EXPECT_LT(sync, 500u);
}

TEST(DeterministicFaultModel, ExactValues)
{
    DeterministicFaultModel model(100, 300);
    Rng rng(9);
    for (int i = 0; i < 10; ++i) {
        const FaultSample sample = model.next(rng);
        EXPECT_EQ(sample.runLength, 100u);
        EXPECT_EQ(sample.latency, 300u);
    }
}

TEST(FaultModels, Describe)
{
    EXPECT_EQ(CacheFaultModel(8, 100).describe(),
              "cache(R=8, L=100)");
    EXPECT_EQ(SyncFaultModel(32, 500).describe(),
              "sync(R=32, L=500)");
    EXPECT_EQ(DeterministicFaultModel(10, 20).describe(),
              "deterministic(R=10, L=20)");
    EXPECT_FALSE(
        CombinedFaultModel(8, 100, 32, 500).describe().empty());
}


TEST(PhasedFaultModel, PhaseScheduleCycles)
{
    PhasedFaultModel model({
        {3, 200.0, 50.0, false, FaultClass::Cache},
        {2, 16.0, 800.0, true, FaultClass::Synchronization},
    });
    // Sequence 0,1,2 -> phase 0; 3,4 -> phase 1; 5 wraps to phase 0.
    EXPECT_DOUBLE_EQ(model.phaseFor(0).meanRun, 200.0);
    EXPECT_DOUBLE_EQ(model.phaseFor(2).meanRun, 200.0);
    EXPECT_DOUBLE_EQ(model.phaseFor(3).meanRun, 16.0);
    EXPECT_DOUBLE_EQ(model.phaseFor(4).meanRun, 16.0);
    EXPECT_DOUBLE_EQ(model.phaseFor(5).meanRun, 200.0);
    EXPECT_DOUBLE_EQ(model.phaseFor(1000).meanRun, 200.0);
}

TEST(PhasedFaultModel, SamplesFollowThePhase)
{
    PhasedFaultModel model({
        {1, 500.0, 10.0, false, FaultClass::Cache},
        {1, 4.0, 900.0, true, FaultClass::Synchronization},
    });
    Rng rng(21);
    RunningStats compute_runs, comm_runs;
    for (int i = 0; i < 20000; ++i) {
        const FaultSample a = model.next(rng, 0);
        EXPECT_EQ(a.kind, FaultClass::Cache);
        EXPECT_EQ(a.latency, 10u);
        compute_runs.add(static_cast<double>(a.runLength));
        const FaultSample b = model.next(rng, 1);
        EXPECT_EQ(b.kind, FaultClass::Synchronization);
        comm_runs.add(static_cast<double>(b.runLength));
    }
    EXPECT_NEAR(compute_runs.mean(), 500.0, 15.0);
    EXPECT_NEAR(comm_runs.mean(), 4.0, 0.2);
}

TEST(PhasedFaultModel, WeightedMeans)
{
    PhasedFaultModel model({
        {3, 100.0, 10.0, false, FaultClass::Cache},
        {1, 20.0, 50.0, true, FaultClass::Synchronization},
    });
    EXPECT_DOUBLE_EQ(model.meanRunLength(), (3 * 100.0 + 20.0) / 4.0);
    EXPECT_DOUBLE_EQ(model.meanLatency(), (3 * 10.0 + 50.0) / 4.0);
    EXPECT_EQ(model.describe(), "phased(2 phases, cycle 4 faults)");
}

TEST(PhasedFaultModel, DrivesSimulatorThroughPhases)
{
    // A compute/communicate cycle: the simulator must complete and
    // account cycles exactly as with stationary models.
    MtConfig config;
    config.workload.numThreads = 12;
    config.workload.workDist = makeConstant(8000);
    config.workload.regsDist = makeUniformInt(6, 24);
    config.faultModel = std::make_shared<PhasedFaultModel>(
        std::vector<PhasedFaultModel::Phase>{
            {4, 128.0, 60.0, false, FaultClass::Cache},
            {4, 16.0, 400.0, true, FaultClass::Synchronization},
        });
    config.costs = runtime::CostModel::paperFlexible(8);
    config.numRegs = 128;
    config.unloadPolicy = UnloadPolicyKind::TwoPhase;
    const MtStats stats = simulate(std::move(config));
    EXPECT_EQ(stats.threadsFinished, 12u);
    EXPECT_EQ(stats.accountedCycles(), stats.totalCycles);
    EXPECT_GT(stats.cacheFaults, 0u);
    EXPECT_GT(stats.syncFaults, 0u);
}

} // namespace
} // namespace rr::mt
