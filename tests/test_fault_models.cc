/**
 * @file
 * Tests for the Section 3 fault models: distribution shapes, means,
 * fault classes, and the combined model's race semantics.
 */

#include <gtest/gtest.h>

#include "base/stats.hh"
#include "ext/context_cache.hh"
#include "multithread/fault_model.hh"
#include "multithread/mt_processor.hh"

namespace rr::mt {
namespace {

TEST(CacheFaultModel, ConstantLatencyGeometricRuns)
{
    CacheFaultModel model(32.0, 100);
    Rng rng(5);
    RunningStats runs;
    for (int i = 0; i < 100000; ++i) {
        const FaultSample sample = model.next(rng, static_cast<uint64_t>(i));
        EXPECT_EQ(sample.latency, 100u);
        EXPECT_EQ(sample.kind, FaultClass::Cache);
        EXPECT_GE(sample.runLength, 1u);
        runs.add(static_cast<double>(sample.runLength));
    }
    EXPECT_NEAR(runs.mean(), 32.0, 1.0);
    EXPECT_DOUBLE_EQ(model.meanRunLength(), 32.0);
    EXPECT_DOUBLE_EQ(model.meanLatency(), 100.0);
}

TEST(SyncFaultModel, ExponentialLatency)
{
    SyncFaultModel model(128.0, 500.0);
    Rng rng(6);
    RunningStats runs, lats;
    for (int i = 0; i < 100000; ++i) {
        const FaultSample sample = model.next(rng, static_cast<uint64_t>(i));
        EXPECT_EQ(sample.kind, FaultClass::Synchronization);
        runs.add(static_cast<double>(sample.runLength));
        lats.add(static_cast<double>(sample.latency));
    }
    EXPECT_NEAR(runs.mean(), 128.0, 4.0);
    EXPECT_NEAR(lats.mean(), 500.0, 15.0);
    // Exponential: stddev ~ mean.
    EXPECT_NEAR(lats.stddev(), 500.0, 30.0);
}

TEST(CombinedFaultModel, MixesBothClasses)
{
    CombinedFaultModel model(64.0, 100, 64.0, 400.0);
    Rng rng(7);
    uint64_t cache = 0, sync = 0;
    RunningStats runs;
    for (int i = 0; i < 50000; ++i) {
        const FaultSample sample = model.next(rng, static_cast<uint64_t>(i));
        (sample.kind == FaultClass::Cache ? cache : sync) += 1;
        runs.add(static_cast<double>(sample.runLength));
    }
    // Equal rates: roughly half each (cache wins ties).
    EXPECT_GT(cache, 20000u);
    EXPECT_GT(sync, 15000u);
    // Combined rate: faster than either alone.
    EXPECT_LT(runs.mean(), 64.0);
    EXPECT_NEAR(runs.mean(), model.meanRunLength(),
                model.meanRunLength() * 0.05);
}

TEST(CombinedFaultModel, DegenerateRatesFavourFasterProcess)
{
    // Sync faults far rarer than cache faults.
    CombinedFaultModel model(16.0, 50, 100000.0, 1000.0);
    Rng rng(8);
    uint64_t cache = 0, sync = 0;
    for (int i = 0; i < 20000; ++i) {
        (model.next(rng, static_cast<uint64_t>(i)).kind == FaultClass::Cache ? cache : sync) +=
            1;
    }
    EXPECT_GT(cache, 19500u);
    EXPECT_LT(sync, 500u);
}

TEST(DeterministicFaultModel, ExactValues)
{
    DeterministicFaultModel model(100, 300);
    Rng rng(9);
    for (int i = 0; i < 10; ++i) {
        const FaultSample sample = model.next(rng, static_cast<uint64_t>(i));
        EXPECT_EQ(sample.runLength, 100u);
        EXPECT_EQ(sample.latency, 300u);
    }
}

TEST(FaultModels, Describe)
{
    EXPECT_EQ(CacheFaultModel(8, 100).describe(),
              "cache(R=8, L=100)");
    EXPECT_EQ(SyncFaultModel(32, 500).describe(),
              "sync(R=32, L=500)");
    EXPECT_EQ(DeterministicFaultModel(10, 20).describe(),
              "deterministic(R=10, L=20)");
    EXPECT_FALSE(
        CombinedFaultModel(8, 100, 32, 500).describe().empty());
}


TEST(PhasedFaultModel, PhaseScheduleCycles)
{
    PhasedFaultModel model({
        {3, 200.0, 50.0, false, FaultClass::Cache},
        {2, 16.0, 800.0, true, FaultClass::Synchronization},
    });
    // Sequence 0,1,2 -> phase 0; 3,4 -> phase 1; 5 wraps to phase 0.
    EXPECT_DOUBLE_EQ(model.phaseFor(0).meanRun, 200.0);
    EXPECT_DOUBLE_EQ(model.phaseFor(2).meanRun, 200.0);
    EXPECT_DOUBLE_EQ(model.phaseFor(3).meanRun, 16.0);
    EXPECT_DOUBLE_EQ(model.phaseFor(4).meanRun, 16.0);
    EXPECT_DOUBLE_EQ(model.phaseFor(5).meanRun, 200.0);
    EXPECT_DOUBLE_EQ(model.phaseFor(1000).meanRun, 200.0);
}

TEST(PhasedFaultModel, SamplesFollowThePhase)
{
    PhasedFaultModel model({
        {1, 500.0, 10.0, false, FaultClass::Cache},
        {1, 4.0, 900.0, true, FaultClass::Synchronization},
    });
    Rng rng(21);
    RunningStats compute_runs, comm_runs;
    for (int i = 0; i < 20000; ++i) {
        const FaultSample a = model.next(rng, 0);
        EXPECT_EQ(a.kind, FaultClass::Cache);
        EXPECT_EQ(a.latency, 10u);
        compute_runs.add(static_cast<double>(a.runLength));
        const FaultSample b = model.next(rng, 1);
        EXPECT_EQ(b.kind, FaultClass::Synchronization);
        comm_runs.add(static_cast<double>(b.runLength));
    }
    EXPECT_NEAR(compute_runs.mean(), 500.0, 15.0);
    EXPECT_NEAR(comm_runs.mean(), 4.0, 0.2);
}

TEST(PhasedFaultModel, WeightedMeans)
{
    PhasedFaultModel model({
        {3, 100.0, 10.0, false, FaultClass::Cache},
        {1, 20.0, 50.0, true, FaultClass::Synchronization},
    });
    EXPECT_DOUBLE_EQ(model.meanRunLength(), (3 * 100.0 + 20.0) / 4.0);
    EXPECT_DOUBLE_EQ(model.meanLatency(), (3 * 10.0 + 50.0) / 4.0);
    EXPECT_EQ(model.describe(), "phased(2 phases, cycle 4 faults)");
}

TEST(PhasedFaultModel, DrivesSimulatorThroughPhases)
{
    // A compute/communicate cycle: the simulator must complete and
    // account cycles exactly as with stationary models.
    MtConfig config;
    config.workload.numThreads = 12;
    config.workload.workDist = makeConstant(8000);
    config.workload.regsDist = makeUniformInt(6, 24);
    config.faultModel = std::make_shared<PhasedFaultModel>(
        std::vector<PhasedFaultModel::Phase>{
            {4, 128.0, 60.0, false, FaultClass::Cache},
            {4, 16.0, 400.0, true, FaultClass::Synchronization},
        });
    config.costs = runtime::CostModel::paperFlexible(8);
    config.numRegs = 128;
    config.unloadPolicy = UnloadPolicyKind::TwoPhase;
    const MtStats stats = simulate(std::move(config));
    EXPECT_EQ(stats.threadsFinished, 12u);
    EXPECT_EQ(stats.accountedCycles(), stats.totalCycles);
    EXPECT_GT(stats.cacheFaults, 0u);
    EXPECT_GT(stats.syncFaults, 0u);
}

// ---------------------------------------------------------------------
// The single-entry-point draw contract: FaultModel::next(rng, seq)
// is the only way to draw, stateless models must ignore the sequence
// index entirely (same rng stream => same samples regardless of the
// sequence values a caller passes), and every caller that tracks
// sequences correctly gets phase-structured behaviour for free.

bool
sameSample(const FaultSample &a, const FaultSample &b)
{
    return a.runLength == b.runLength && a.latency == b.latency &&
           a.kind == b.kind;
}

TEST(FaultModelContract, StatelessModelsIgnoreSequenceIndex)
{
    const CacheFaultModel cache(32.0, 100);
    const SyncFaultModel sync(64.0, 500.0);
    const CombinedFaultModel combined(64.0, 100, 128.0, 400.0);
    const DeterministicFaultModel det(100, 300);
    const FaultModel *models[] = {&cache, &sync, &combined, &det};

    for (const FaultModel *model : models) {
        Rng a(11), b(11);
        for (uint64_t i = 0; i < 500; ++i) {
            // Wildly different sequence values, identical streams:
            // the draws must match sample for sample.
            const FaultSample x = model->next(a, i);
            const FaultSample y = model->next(b, 1000003 * i + 17);
            EXPECT_TRUE(sameSample(x, y)) << model->describe();
        }
    }
}

TEST(FaultModelContract, PhasedModelDependsOnlyOnSequence)
{
    PhasedFaultModel model({
        {2, 300.0, 10.0, false, FaultClass::Cache},
        {2, 8.0, 700.0, false, FaultClass::Synchronization},
    });
    Rng a(13), b(13);
    for (uint64_t i = 0; i < 200; ++i) {
        EXPECT_TRUE(sameSample(model.next(a, i), model.next(b, i)));
    }
}

/** Run the context-cache simulator under @p model twice. */
void
expectContextCacheDeterministic(
    std::shared_ptr<const FaultModel> model)
{
    ext::ContextCacheConfig config;
    config.numThreads = 8;
    config.workDist = makeConstant(4000);
    config.regsDist = makeUniformInt(8, 16);
    config.faultModel = std::move(model);
    config.numRegs = 96;
    config.seed = 77;

    const ext::ContextCacheStats a = simulateContextCache(config);
    const ext::ContextCacheStats b = simulateContextCache(config);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.usefulCycles, b.usefulCycles);
    EXPECT_EQ(a.idleCycles, b.idleCycles);
    EXPECT_EQ(a.switchCycles, b.switchCycles);
    EXPECT_EQ(a.spillFillCycles, b.spillFillCycles);
    EXPECT_EQ(a.faults, b.faults);
    EXPECT_EQ(a.refills, b.refills);
    EXPECT_DOUBLE_EQ(a.efficiencyTotal, b.efficiencyTotal);
    EXPECT_DOUBLE_EQ(a.efficiencyCentral, b.efficiencyCentral);
}

TEST(FaultModelContract, SimulationRepeatsExactlyForEveryFamily)
{
    // The jobs-invariance pin: identical configuration => identical
    // statistics, for every fault-model family. This is what makes
    // parallel benchmark sweeps byte-identical to serial ones.
    expectContextCacheDeterministic(
        std::make_shared<CacheFaultModel>(32.0, 100));
    expectContextCacheDeterministic(
        std::make_shared<SyncFaultModel>(64.0, 300.0));
    expectContextCacheDeterministic(
        std::make_shared<CombinedFaultModel>(64.0, 100, 128.0,
                                             400.0));
    expectContextCacheDeterministic(
        std::make_shared<DeterministicFaultModel>(50, 200));
    expectContextCacheDeterministic(std::make_shared<PhasedFaultModel>(
        std::vector<PhasedFaultModel::Phase>{
            {2, 128.0, 40.0, false, FaultClass::Cache},
            {2, 16.0, 600.0, true, FaultClass::Synchronization},
        }));
}

TEST(FaultModelContract, ContextCacheAdvancesThroughPhases)
{
    // Unit version of the rrfuzz phase oracle: raising only the
    // phase-1 latency must slow the clock without changing the work,
    // which can only happen if the simulator passes a per-thread
    // fault sequence index into the model.
    const auto makeModel = [](uint64_t phase1_latency) {
        return std::make_shared<PhasedFaultModel>(
            std::vector<PhasedFaultModel::Phase>{
                {2, 32.0, 20.0, false, FaultClass::Cache},
                {1ull << 60, 32.0,
                 static_cast<double>(phase1_latency), false,
                 FaultClass::Cache},
            });
    };
    ext::ContextCacheConfig config;
    config.numThreads = 4;
    config.workDist = makeConstant(4096);
    config.regsDist = makeConstant(12);
    config.numRegs = 128;
    config.seed = 5;

    config.faultModel = makeModel(20);
    const ext::ContextCacheStats fast = simulateContextCache(config);
    config.faultModel = makeModel(2000);
    const ext::ContextCacheStats slow = simulateContextCache(config);

    EXPECT_EQ(fast.usefulCycles, slow.usefulCycles);
    EXPECT_NE(fast.totalCycles, slow.totalCycles);
}

} // namespace
} // namespace rr::mt
