/**
 * @file
 * Unit tests for the rrserve subsystem (docs/SERVE.md), all without
 * sockets except the HTTP framing cases, which run over a local
 * socketpair: canonical-key stability, the result cache's
 * byte-identity and LRU contracts, coalescing equivalence against
 * independently-served requests, admission-queue backpressure, and
 * the protocol parser's hostile-input behavior.
 */

#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/json_in.hh"
#include "exp/report.hh"
#include "serve/admission.hh"
#include "serve/broker.hh"
#include "serve/cache.hh"
#include "serve/coalesce.hh"
#include "serve/http.hh"
#include "serve/protocol.hh"

namespace {

using namespace rr;
using namespace rr::serve;

ErrorCode
rejectionCode(const std::string &body)
{
    try {
        (void)parseRequest(body);
    } catch (const ProtocolError &error) {
        return error.code;
    }
    ADD_FAILURE() << "parseRequest accepted: " << body;
    return ErrorCode::AuditFailure;
}

// --- canonical keys ---------------------------------------------------

TEST(ServeProtocol, CanonicalKeyIgnoresSpellingAndOrder)
{
    // Same request: different key order, whitespace, list order, and
    // one spells out defaults the other leaves implicit.
    const ServeRequest a = parseRequest(
        "{\"spec\": {\"family\": \"cache\", \"runLength\": 16, "
        "\"threads\": 8, \"seeds\": 2, \"archs\": [\"flexible\", "
        "\"fixed\"]}, "
        "\"sweep\": {\"runLengths\": [16, 8, 16]}}");
    const ServeRequest b = parseRequest(
        "{ \"sweep\" : { \"runLengths\" : [ 8 , 16 ] } ,\n"
        "  \"spec\" : { \"seeds\" : 2, \"archs\": [\"fixed\", "
        "\"flexible\"], \"numRegs\": 128, \"latency\": 200,\n"
        "    \"threads\" : 8, \"runLength\": 16, "
        "\"family\" : \"cache\" } }");
    EXPECT_EQ(canonicalKey(a), canonicalKey(b));

    // Different requests must not collide on the canonical key.
    const ServeRequest c = parseRequest(
        "{\"spec\": {\"family\": \"cache\", \"runLength\": 16, "
        "\"threads\": 8, \"seeds\": 3}}");
    EXPECT_NE(canonicalKey(a), canonicalKey(c));
}

TEST(ServeProtocol, DefaultsAreFilledIntoTheKey)
{
    // An empty spec and one spelling out every default are the same
    // request, so the cache must treat them as one entry.
    const ServeRequest bare = parseRequest("{\"spec\": {}}");
    const ServeRequest spelled = parseRequest(
        "{\"spec\": {\"family\": \"cache\", \"runLength\": 32, "
        "\"latency\": 200, \"threads\": 64, \"numRegs\": 128, "
        "\"minContextSize\": 4, \"regsLo\": 6, \"regsHi\": 24, "
        "\"fixedContextRegs\": 32, \"seeds\": 3, "
        "\"archs\": [\"flexible\", \"fixed\"]}}");
    EXPECT_EQ(canonicalKey(bare), canonicalKey(spelled));
}

TEST(ServeProtocol, UnitExpansionMatchesDeclaredCount)
{
    const ServeRequest request = parseRequest(
        "{\"spec\": {\"threads\": 8, \"seeds\": 2}, "
        "\"sweep\": {\"runLengths\": [8, 16], "
        "\"latencies\": [100, 200]}}");
    const std::vector<SimUnit> units = expandUnits(request);
    EXPECT_EQ(units.size(), request.units());
    EXPECT_EQ(units.size(), 2u * 2u * 2u * 2u);

    // Unit keys are unique within one request.
    std::vector<std::string> keys;
    for (const SimUnit &unit : units)
        keys.push_back(unitKey(unit));
    std::sort(keys.begin(), keys.end());
    EXPECT_EQ(std::unique(keys.begin(), keys.end()), keys.end());
}

// --- result cache -----------------------------------------------------

TEST(ServeCache, HitReturnsStoredBytesAndCounts)
{
    ResultCache cache(4);
    EXPECT_FALSE(cache.get("k1").has_value());
    cache.put("k1", "payload-one");
    const auto hit = cache.get("k1");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, "payload-one");

    const CacheCounters counters = cache.counters();
    EXPECT_EQ(counters.hits, 1u);
    EXPECT_EQ(counters.misses, 1u);
    EXPECT_EQ(counters.insertions, 1u);
    EXPECT_EQ(counters.evictions, 0u);
    EXPECT_EQ(counters.entries, 1u);
}

TEST(ServeCache, EvictsLeastRecentlyUsed)
{
    ResultCache cache(2);
    cache.put("a", "A");
    cache.put("b", "B");
    // Touch "a" so "b" becomes the eviction candidate.
    ASSERT_TRUE(cache.get("a").has_value());
    cache.put("c", "C");

    EXPECT_FALSE(cache.get("b").has_value());
    EXPECT_TRUE(cache.get("a").has_value());
    EXPECT_TRUE(cache.get("c").has_value());
    EXPECT_EQ(cache.counters().evictions, 1u);
    EXPECT_EQ(cache.counters().entries, 2u);
}

TEST(ServeCache, ZeroCapacityDisablesStorage)
{
    ResultCache cache(0);
    cache.put("k", "v");
    EXPECT_FALSE(cache.get("k").has_value());
    EXPECT_EQ(cache.counters().insertions, 0u);
}

// --- coalescing -------------------------------------------------------

TEST(ServeCoalesce, OverlappingSweepsShareUnits)
{
    const ServeRequest a = parseRequest(
        "{\"spec\": {\"threads\": 8, \"seeds\": 2}, "
        "\"sweep\": {\"runLengths\": [8, 16]}}");
    const ServeRequest b = parseRequest(
        "{\"spec\": {\"threads\": 8, \"seeds\": 2}, "
        "\"sweep\": {\"runLengths\": [16, 32]}}");

    const BatchPlan plan = planBatch({a, b});
    EXPECT_EQ(plan.totalUnits, a.units() + b.units());
    // The R=16 units (2 archs x 2 seeds) are simulated only once.
    EXPECT_EQ(plan.saved(), 4u);
    ASSERT_EQ(plan.assignments.size(), 2u);
    EXPECT_EQ(plan.assignments[0].size(), a.units());
    EXPECT_EQ(plan.assignments[1].size(), b.units());
}

TEST(ServeCoalesce, CoalescedEqualsIndependentByteForByte)
{
    const std::string body_a =
        "{\"spec\": {\"threads\": 8, \"seeds\": 2}, "
        "\"sweep\": {\"runLengths\": [8, 16]}}";
    const std::string body_b =
        "{\"spec\": {\"threads\": 8, \"seeds\": 2}, "
        "\"sweep\": {\"runLengths\": [16, 32]}}";

    // One broker serves both requests as a coalesced batch; two
    // fresh brokers serve them independently. The response bytes
    // must be identical either way.
    Broker batched(0, 2);
    const std::vector<ServeResult> together =
        batched.serveBatch({parseRequest(body_a),
                            parseRequest(body_b)});
    ASSERT_EQ(together.size(), 2u);
    EXPECT_EQ(together[0].status, 200);
    EXPECT_EQ(together[1].status, 200);

    Broker alone_a(0, 2);
    Broker alone_b(0, 2);
    const ServeResult solo_a = alone_a.serveBody(body_a);
    const ServeResult solo_b = alone_b.serveBody(body_b);
    EXPECT_EQ(together[0].body, solo_a.body);
    EXPECT_EQ(together[1].body, solo_b.body);

    // Coalescing really happened: 16 units requested, 12 simulated.
    EXPECT_EQ(batched.counters().unitsTotal, 16u);
    EXPECT_EQ(batched.counters().unitsUnique, 12u);
}

TEST(ServeBroker, CacheHitIsByteIdenticalToColdRun)
{
    const std::string body =
        "{\"spec\": {\"family\": \"sync\", \"runLength\": 12, "
        "\"threads\": 8, \"seeds\": 2}}";
    Broker broker(8, 2);
    const ServeResult cold = broker.serveBody(body);
    const ServeResult hot = broker.serveBody(body);
    EXPECT_EQ(cold.status, 200);
    EXPECT_FALSE(cold.cacheHit);
    EXPECT_TRUE(hot.cacheHit);
    EXPECT_EQ(cold.body, hot.body);

    // A respelled-but-equal request also hits.
    const ServeResult respelled = broker.serveBody(
        "{\"spec\": {\"seeds\": 2, \"threads\": 8, "
        "\"runLength\": 12, \"family\": \"sync\"}}");
    EXPECT_TRUE(respelled.cacheHit);
    EXPECT_EQ(respelled.body, cold.body);

    const CacheCounters counters = broker.cacheCounters();
    EXPECT_EQ(counters.hits, 2u);
    EXPECT_EQ(counters.misses, 1u);
}

TEST(ServeBroker, ServedDocumentValidatesAsBenchV1)
{
    Broker broker(0, 2);
    const ServeResult result = broker.serveBody(
        "{\"spec\": {\"threads\": 8, \"seeds\": 2}}");
    ASSERT_EQ(result.status, 200);
    std::string error;
    const auto doc = exp::parseJson(result.body, &error);
    ASSERT_TRUE(doc) << error;
    EXPECT_TRUE(exp::validateReportJson(*doc).empty());
}

TEST(ServeBroker, AuditedUnitConservesCycles)
{
    SimUnit unit;
    unit.point.threads = 8;
    const UnitResult result = runAuditedUnit(unit);
    EXPECT_TRUE(result.auditOk) << result.auditProblem;
    EXPECT_GT(result.efficiency, 0.0);
}

// --- admission control ------------------------------------------------

TEST(ServeAdmission, RejectsWhenFullAndDrainsAfterClose)
{
    AdmissionQueue<int> queue(2);
    EXPECT_TRUE(queue.tryPush(1));
    EXPECT_TRUE(queue.tryPush(2));
    EXPECT_FALSE(queue.tryPush(3)); // full: the 429 path
    EXPECT_EQ(queue.depth(), 2u);

    queue.close();
    EXPECT_FALSE(queue.tryPush(4)); // closed: refuse new work

    // Graceful drain: queued work is still handed out after close.
    const std::vector<int> first = queue.popBatch(1);
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0], 1);
    const std::vector<int> rest = queue.popBatch(8);
    ASSERT_EQ(rest.size(), 1u);
    EXPECT_EQ(rest[0], 2);
    EXPECT_TRUE(queue.popBatch(8).empty()); // closed-and-drained

    const AdmissionCounters counters = queue.counters();
    EXPECT_EQ(counters.accepted, 2u);
    EXPECT_EQ(counters.rejected, 2u);
    EXPECT_EQ(counters.maxDepth, 2u);
}

// --- hostile inputs: protocol parser ----------------------------------

TEST(ServeHostile, MalformedJsonIsBadJson)
{
    EXPECT_EQ(rejectionCode("not json at all"), ErrorCode::BadJson);
    EXPECT_EQ(rejectionCode("{\"spec\": {\"fam"), ErrorCode::BadJson);
    EXPECT_EQ(rejectionCode(""), ErrorCode::BadJson);
}

TEST(ServeHostile, WrongShapesAreBadRequest)
{
    EXPECT_EQ(rejectionCode("[1, 2]"), ErrorCode::BadRequest);
    EXPECT_EQ(rejectionCode("{}"), ErrorCode::BadRequest);
    EXPECT_EQ(rejectionCode("{\"bogus\": 1}"), ErrorCode::BadRequest);
    EXPECT_EQ(rejectionCode("{\"spec\": {\"bogus\": 1}}"),
              ErrorCode::BadRequest);
    EXPECT_EQ(rejectionCode("{\"spec\": {\"family\": 5}}"),
              ErrorCode::BadRequest);
    EXPECT_EQ(rejectionCode("{\"spec\": {\"family\": \"quantum\"}}"),
              ErrorCode::BadRequest);
    EXPECT_EQ(rejectionCode("{\"spec\": {\"runLength\": -4}}"),
              ErrorCode::BadRequest);
    EXPECT_EQ(rejectionCode("{\"spec\": {\"archs\": []}}"),
              ErrorCode::BadRequest);
    EXPECT_EQ(rejectionCode(
                  "{\"spec\": {}, \"sweep\": {\"runLengths\": "
                  "[1, \"two\"]}}"),
              ErrorCode::BadRequest);
}

TEST(ServeHostile, LimitsAreEnforced)
{
    EXPECT_EQ(rejectionCode("{\"spec\": {\"seeds\": 1000}}"),
              ErrorCode::Limit);
    EXPECT_EQ(rejectionCode("{\"spec\": {\"threads\": 0}}"),
              ErrorCode::Limit);
    std::string long_sweep = "{\"spec\": {}, \"sweep\": "
                             "{\"runLengths\": [1";
    for (int i = 2; i <= 17; ++i)
        long_sweep += ", " + std::to_string(i);
    long_sweep += "]}}";
    EXPECT_EQ(rejectionCode(long_sweep), ErrorCode::Limit);

    // 16 runs x 16 latencies x 3 archs x 16 seeds > 1024 units.
    std::string runs;
    std::string lats;
    for (int i = 1; i <= 16; ++i) {
        runs += (i > 1 ? ", " : "") + std::to_string(i * 2);
        lats += (i > 1 ? ", " : "") + std::to_string(i * 100);
    }
    EXPECT_EQ(rejectionCode(
                  "{\"spec\": {\"seeds\": 16, \"archs\": "
                  "[\"flexible\", \"fixed\", \"add\"]}, "
                  "\"sweep\": {\"runLengths\": [" +
                  runs + "], \"latencies\": [" + lats + "]}}"),
              ErrorCode::Limit);
}

TEST(ServeHostile, SpecValidatorRejectionsAreBadSpec)
{
    // Non-power-of-two minimum context size: the SimulationSpec
    // builder's rule, surfaced as a clean protocol error.
    EXPECT_EQ(rejectionCode(
                  "{\"spec\": {\"minContextSize\": 3}}"),
              ErrorCode::BadSpec);
    // Register demand exceeding the register file.
    EXPECT_EQ(rejectionCode(
                  "{\"spec\": {\"numRegs\": 32, \"regsLo\": 6, "
                  "\"regsHi\": 64}}"),
              ErrorCode::BadSpec);
}

TEST(ServeHostile, ErrorsBecomeCleanDocumentsNotAborts)
{
    Broker broker(0, 1);
    const ServeResult result =
        broker.serveBody("{\"spec\": {\"minContextSize\": 3}}");
    EXPECT_EQ(result.status, 400);
    EXPECT_NE(result.body.find("rr.serve.error.v1"),
              std::string::npos);
    EXPECT_NE(result.body.find("bad-spec"), std::string::npos);
    EXPECT_EQ(broker.counters().simulations, 0u);
}

// --- hostile inputs: HTTP framing -------------------------------------

namespace {

/** Feed @p wire to readHttpRequest over a socketpair. */
HttpRequest
parseWire(const std::string &wire, std::size_t max_body)
{
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    EXPECT_EQ(::write(fds[1], wire.data(), wire.size()),
              static_cast<ssize_t>(wire.size()));
    ::close(fds[1]); // EOF after the payload
    HttpRequest request = readHttpRequest(fds[0], max_body);
    ::close(fds[0]);
    return request;
}

} // namespace

TEST(ServeHttp, ParsesAWellFormedPost)
{
    const HttpRequest request = parseWire(
        "POST /v1/simulate HTTP/1.1\r\n"
        "Content-Length: 4\r\n\r\nbody",
        1024);
    ASSERT_TRUE(request.ok()) << request.errorReason;
    EXPECT_EQ(request.method, "POST");
    EXPECT_EQ(request.target, "/v1/simulate");
    EXPECT_EQ(request.body, "body");
}

TEST(ServeHttp, OversizedBodyIs413WithoutReadingIt)
{
    const HttpRequest request = parseWire(
        "POST /v1/simulate HTTP/1.1\r\n"
        "Content-Length: 99999\r\n\r\n",
        1024);
    EXPECT_EQ(request.errorStatus, 413);
}

TEST(ServeHttp, TruncatedAndMalformedFramesAre400)
{
    EXPECT_EQ(parseWire("POST /v1/sim", 1024).errorStatus, 400);
    EXPECT_EQ(parseWire("BANANAS\r\n\r\n", 1024).errorStatus, 400);
    EXPECT_EQ(parseWire("POST /x HTTP/1.1\r\nNoColonHere\r\n\r\n",
                        1024)
                  .errorStatus,
              400);
    EXPECT_EQ(parseWire("POST /x HTTP/1.1\r\n"
                        "Content-Length: 10x\r\n\r\n",
                        1024)
                  .errorStatus,
              400);
    // Declared length shorter than the delivered body.
    EXPECT_EQ(parseWire("POST /x HTTP/1.1\r\n"
                        "Content-Length: 2\r\n\r\nbody",
                        1024)
                  .errorStatus,
              400);
}

TEST(ServeHttp, UnsupportedFramingIsRejectedCleanly)
{
    EXPECT_EQ(parseWire("POST /x HTTP/1.1\r\n"
                        "Transfer-Encoding: chunked\r\n\r\n",
                        1024)
                  .errorStatus,
              501);
    EXPECT_EQ(parseWire("POST /x HTTP/1.1\r\n\r\n", 1024)
                  .errorStatus,
              411);
    std::string huge = "GET / HTTP/1.1\r\n";
    huge.append(kMaxHeaderBytes + 16, 'x');
    EXPECT_EQ(parseWire(huge, 1024).errorStatus, 431);
}

} // namespace
