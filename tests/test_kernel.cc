/**
 * @file
 * Tests for the machine-level multithreading kernel — the paper's
 * system executing as real RRISC code — including cross-validation
 * of the event-driven simulator and the analytical model against
 * actual machine execution.
 */

#include <gtest/gtest.h>

#include "analysis/efficiency_model.hh"
#include "kernel/machine_mt_kernel.hh"
#include "multithread/workload.hh"

namespace rr::kernel {
namespace {

KernelConfig
baseConfig(unsigned threads, uint64_t units, uint64_t latency)
{
    KernelConfig config;
    config.numThreads = threads;
    config.segmentUnits = makeConstant(units);
    config.latency = makeConstant(latency);
    config.segmentsPerThread = 24;
    return config;
}

TEST(MachineKernel, RunsToCompletion)
{
    const KernelResult result =
        runMachineKernel(baseConfig(4, 40, 300));
    EXPECT_TRUE(result.halted);
    EXPECT_EQ(result.residentContexts, 4u);
    // 4 threads x 24 segments x 40 units.
    EXPECT_EQ(result.workUnits, 4u * 24u * 40u);
    EXPECT_EQ(result.faults, 4u * 24u);
    EXPECT_GT(result.efficiencyTotal, 0.0);
    EXPECT_LE(result.efficiencyTotal, 1.0);
}

TEST(MachineKernel, SingleThreadMatchesHandCount)
{
    // One thread, one segment of U units, zero effective concurrency.
    KernelConfig config = baseConfig(1, 50, 200);
    config.segmentsPerThread = 4;
    const KernelResult result = runMachineKernel(config);
    ASSERT_TRUE(result.halted);
    EXPECT_EQ(result.workUnits, 4u * 50u);
    // With latency 200 and nothing else to run, the thread spins
    // through yield-polls for each fault; total cycles must exceed
    // 4 * (2*50 + 200).
    EXPECT_GT(result.totalCycles, 4u * (100u + 200u));
    EXPECT_GT(result.failedPolls, 0u);
}

TEST(MachineKernel, StochasticWorkloadCompletes)
{
    KernelConfig config = baseConfig(6, 0, 0);
    config.segmentUnits = makeGeometric(32.0);
    config.latency = makeExponential(250.0);
    config.segmentsPerThread = 16;
    const KernelResult result = runMachineKernel(config);
    EXPECT_TRUE(result.halted);
    EXPECT_EQ(result.faults, 6u * 16u);
    EXPECT_GT(result.efficiencyCentral, 0.0);
}

TEST(MachineKernel, DeterministicGivenSeed)
{
    KernelConfig a = baseConfig(4, 0, 0);
    a.segmentUnits = makeGeometric(24.0);
    a.latency = makeExponential(300.0);
    a.seed = 9;
    KernelConfig b = a;
    const KernelResult ra = runMachineKernel(a);
    const KernelResult rb = runMachineKernel(b);
    EXPECT_EQ(ra.totalCycles, rb.totalCycles);
    EXPECT_EQ(ra.workUnits, rb.workUnits);
    EXPECT_EQ(ra.failedPolls, rb.failedPolls);
}

// More resident contexts hide more latency — on the machine, with
// real context switches, exactly as in the simulator.
TEST(MachineKernel, MoreContextsRaiseEfficiency)
{
    KernelConfig two = baseConfig(2, 40, 600);
    KernelConfig six = baseConfig(6, 40, 600);
    const KernelResult r2 = runMachineKernel(two);
    const KernelResult r6 = runMachineKernel(six);
    EXPECT_GT(r6.efficiencyCentral, 1.5 * r2.efficiencyCentral);
}

// The residency argument with real code: on a 64-register file,
// 32-register "hardware-style" contexts admit 2 threads while
// relocated 16-register contexts admit 4 — and that doubles
// efficiency in the linear regime.
TEST(MachineKernel, FlexiblePackingBeatsFixedPacking)
{
    KernelConfig fixed = baseConfig(2, 40, 800);
    fixed.numRegs = 64;
    fixed.forcedContextSize = 32;

    KernelConfig flexible = baseConfig(4, 40, 800);
    flexible.numRegs = 64;
    flexible.regsUsed = 12; // 16-register contexts

    const KernelResult rfixed = runMachineKernel(fixed);
    const KernelResult rflex = runMachineKernel(flexible);
    ASSERT_TRUE(rfixed.halted);
    ASSERT_TRUE(rflex.halted);
    EXPECT_EQ(rfixed.residentContexts, 2u);
    EXPECT_EQ(rflex.residentContexts, 4u);
    EXPECT_GT(rflex.efficiencyCentral,
              1.7 * rfixed.efficiencyCentral);
}

// Cross-validation: machine execution vs the closed-form model. The
// per-segment overhead on the machine is the fault + jal + yield
// path (6 cycles) plus the resume poll and segment reload (5), so
// S_eff ~ 11 against a run length of 2 * units.
TEST(MachineKernel, MatchesAnalyticalModelInLinearRegime)
{
    const uint64_t units = 50;
    const uint64_t latency = 2000;
    for (const unsigned n : {1u, 2u, 3u}) {
        KernelConfig config = baseConfig(n, units, latency);
        const KernelResult result = runMachineKernel(config);
        const analysis::EfficiencyModel model(2.0 * units, latency,
                                              11.0);
        EXPECT_NEAR(result.efficiencyCentral, model.linear(n),
                    model.linear(n) * 0.10 + 0.01)
            << "n=" << n;
    }
}

TEST(MachineKernel, MatchesAnalyticalModelAtSaturation)
{
    // R = 100, L = 300: N* ~ 3.7; six contexts saturate.
    KernelConfig config = baseConfig(6, 50, 300);
    const KernelResult result = runMachineKernel(config);
    const analysis::EfficiencyModel model(100.0, 300.0, 11.0);
    EXPECT_NEAR(result.efficiencyCentral, model.saturated(), 0.05);
}

// Cross-validation: machine execution vs the event-driven simulator
// on matched parameters (the simulator charges S = 11, load/alloc
// costs zeroed since the kernel never unloads and allocates only at
// startup).
TEST(MachineKernel, MatchesEventSimulator)
{
    const uint64_t units = 40;
    for (const uint64_t latency : {300ull, 900ull}) {
        for (const unsigned n : {2u, 4u}) {
            KernelConfig kconfig = baseConfig(n, units, latency);
            kconfig.segmentsPerThread = 32;
            const KernelResult machine = runMachineKernel(kconfig);

            mt::MtConfig sim;
            sim.workload = mt::homogeneousWorkload(
                n, 2 * units * 32, 12);
            sim.faultModel =
                std::make_shared<mt::DeterministicFaultModel>(
                    2 * units, latency);
            sim.costs = runtime::CostModel::paperFixed(11);
            sim.costs.queueOp = 0;
            sim.costs.blockOverhead = 0;
            sim.numRegs = 128;
            sim.unloadPolicy = mt::UnloadPolicyKind::Never;
            const mt::MtStats stats = mt::simulate(std::move(sim));

            EXPECT_NEAR(machine.efficiencyCentral,
                        stats.efficiencyCentral,
                        stats.efficiencyCentral * 0.10 + 0.01)
                << "n=" << n << " L=" << latency;
        }
    }
}

TEST(MachineKernelDeath, OverfullFileRejected)
{
    KernelConfig config = baseConfig(5, 40, 300);
    config.numRegs = 64;
    config.forcedContextSize = 32; // only 2 fit
    EXPECT_DEATH(runMachineKernel(config), "does not fit");
}

} // namespace
} // namespace rr::kernel
