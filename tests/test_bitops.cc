/**
 * @file
 * Unit tests for base/bitops.hh, including the Appendix A
 * bit-parallel prefix scan primitives.
 */

#include <gtest/gtest.h>

#include "base/bitops.hh"

namespace rr {
namespace {

TEST(BitOps, IsPowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_FALSE(isPowerOfTwo(65));
    EXPECT_TRUE(isPowerOfTwo(uint64_t{1} << 63));
}

TEST(BitOps, Log2Ceil)
{
    EXPECT_EQ(log2Ceil(1), 0u);
    EXPECT_EQ(log2Ceil(2), 1u);
    EXPECT_EQ(log2Ceil(3), 2u);
    EXPECT_EQ(log2Ceil(4), 2u);
    EXPECT_EQ(log2Ceil(5), 3u);
    // The paper's RRM width examples: 128 regs -> 7 bits, 256 -> 8.
    EXPECT_EQ(log2Ceil(128), 7u);
    EXPECT_EQ(log2Ceil(256), 8u);
}

TEST(BitOps, Log2Floor)
{
    EXPECT_EQ(log2Floor(1), 0u);
    EXPECT_EQ(log2Floor(2), 1u);
    EXPECT_EQ(log2Floor(3), 1u);
    EXPECT_EQ(log2Floor(255), 7u);
    EXPECT_EQ(log2Floor(256), 8u);
}

TEST(BitOps, RoundUpPowerOfTwo)
{
    EXPECT_EQ(roundUpPowerOfTwo(0), 1u);
    EXPECT_EQ(roundUpPowerOfTwo(1), 1u);
    EXPECT_EQ(roundUpPowerOfTwo(5), 8u);
    EXPECT_EQ(roundUpPowerOfTwo(6), 8u);
    EXPECT_EQ(roundUpPowerOfTwo(17), 32u);
    EXPECT_EQ(roundUpPowerOfTwo(24), 32u);
    EXPECT_EQ(roundUpPowerOfTwo(32), 32u);
}

TEST(BitOps, FindFirstSet)
{
    EXPECT_EQ(findFirstSet(0), -1);
    EXPECT_EQ(findFirstSet(1), 0);
    EXPECT_EQ(findFirstSet(0x10), 4);
    EXPECT_EQ(findFirstSet(0xf0f0), 4);
    EXPECT_EQ(findFirstSet(uint64_t{1} << 63), 63);
}

TEST(BitOps, LowMask)
{
    EXPECT_EQ(lowMask(0), 0u);
    EXPECT_EQ(lowMask(1), 1u);
    EXPECT_EQ(lowMask(7), 0x7fu);
    EXPECT_EQ(lowMask(32), 0xffffffffull);
    EXPECT_EQ(lowMask(64), ~uint64_t{0});
}

// The prefix scan must reproduce the Appendix A behaviour: marking
// positions that start a run of `run` consecutive free (set) bits.
TEST(BitOps, ContiguousRunMapMatchesBruteForce)
{
    const uint64_t maps[] = {0x0ull, ~0ull, 0x11111111ull,
                             0xff00ff00ff00ff00ull,
                             0x123456789abcdef0ull, 0x8000000000000001ull};
    for (const uint64_t map : maps) {
        for (const unsigned run : {1u, 2u, 4u, 8u, 16u}) {
            const uint64_t got = contiguousRunMap(map, run);
            for (unsigned i = 0; i + run <= 64; ++i) {
                bool all = true;
                for (unsigned j = 0; j < run; ++j) {
                    if (!((map >> (i + j)) & 1)) {
                        all = false;
                        break;
                    }
                }
                EXPECT_EQ((got >> i) & 1, all ? 1u : 0u)
                    << "map=" << std::hex << map << " run=" << std::dec
                    << run << " bit=" << i;
            }
        }
    }
}

TEST(BitOps, AlignedPositionsMask)
{
    EXPECT_EQ(alignedPositionsMask(1), ~uint64_t{0});
    // Every fourth bit — the Appendix A 0x11111111 pattern widened
    // to 64 bits.
    EXPECT_EQ(alignedPositionsMask(4) & 0xffffffffull, 0x11111111ull);
    EXPECT_EQ(alignedPositionsMask(16),
              0x0001000100010001ull);
    EXPECT_EQ(alignedPositionsMask(64), 1ull);
}

TEST(BitOps, PopCount)
{
    EXPECT_EQ(popCount(0), 0u);
    EXPECT_EQ(popCount(0xff), 8u);
    EXPECT_EQ(popCount(~uint64_t{0}), 64u);
}

} // namespace
} // namespace rr
