/**
 * @file
 * Tests for the barrier fault-service mode of the machine kernel:
 * gang execution of parallel phases with endogenous completion.
 */

#include <gtest/gtest.h>

#include "kernel/machine_mt_kernel.hh"

namespace rr::kernel {
namespace {

KernelConfig
barrierConfig(unsigned threads, uint64_t units, unsigned segments)
{
    KernelConfig config;
    config.numThreads = threads;
    config.segmentUnits = makeConstant(units);
    config.service = FaultService::Barrier;
    config.segmentsPerThread = segments;
    return config;
}

TEST(BarrierKernel, GangCompletesAllPhases)
{
    const KernelResult result =
        runMachineKernel(barrierConfig(4, 30, 16));
    EXPECT_TRUE(result.halted);
    EXPECT_EQ(result.workUnits, 4u * 16u * 30u);
    EXPECT_EQ(result.faults, 4u * 16u);
    // Lockstep gang: one release per phase.
    EXPECT_EQ(result.barriers, 16u);
}

TEST(BarrierKernel, SingleThreadBarrierIsSelfReleasing)
{
    const KernelResult result =
        runMachineKernel(barrierConfig(1, 30, 8));
    EXPECT_TRUE(result.halted);
    EXPECT_EQ(result.barriers, 8u);
}

TEST(BarrierKernel, SkewIsHiddenByMultithreading)
{
    KernelConfig uniform = barrierConfig(6, 40, 16);
    KernelConfig skewed = barrierConfig(6, 40, 16);
    skewed.segmentUnits = makeGeometric(40.0);
    const KernelResult ru = runMachineKernel(uniform);
    const KernelResult rs = runMachineKernel(skewed);
    ASSERT_TRUE(ru.halted);
    ASSERT_TRUE(rs.halted);
    // Same expected work; efficiency within a few percent — the
    // single-node processor absorbs arrival skew entirely.
    EXPECT_NEAR(rs.efficiencyTotal, ru.efficiencyTotal, 0.05);
}

TEST(BarrierKernel, EfficiencyFollowsPhaseGrainModel)
{
    // E ~ 2U / (2U + 11): fault+yield+poll overhead per phase.
    for (const uint64_t units : {10ull, 40ull, 160ull}) {
        const KernelResult result =
            runMachineKernel(barrierConfig(6, units, 16));
        const double model = 2.0 * static_cast<double>(units) /
                             (2.0 * static_cast<double>(units) + 11.0);
        EXPECT_NEAR(result.efficiencyTotal, model, 0.03)
            << "units=" << units;
    }
}

TEST(BarrierKernel, UnevenSegmentCountsStillTerminate)
{
    // Threads drop out of the gang as they finish; the barrier must
    // shrink to the remaining participants. Different per-thread
    // totals arise from the geometric segment draw plus a shared
    // segment count; termination is the property under test.
    KernelConfig config = barrierConfig(5, 0, 12);
    config.segmentUnits = makeGeometric(25.0);
    config.seed = 11;
    const KernelResult result = runMachineKernel(config);
    EXPECT_TRUE(result.halted);
    EXPECT_EQ(result.faults, 5u * 12u);
    EXPECT_GE(result.barriers, 12u);
}

// Regression: a thread that halts while others are blocked at the
// barrier must not strand them. The live counter shrinks between the
// blocked threads' poll windows, and the release check has to pick
// the new, smaller gang size up — if it compared against the
// original thread count the remaining threads would spin forever and
// the run would only end at the step cap.
TEST(BarrierKernel, GangShrinksWhenAThreadFinishesEarly)
{
    KernelConfig config = barrierConfig(4, 30, 6);
    config.segmentsByThread = {2, 6, 6, 6};
    const KernelResult result = runMachineKernel(config);
    EXPECT_TRUE(result.halted);
    EXPECT_EQ(result.faults, 2u + 6u + 6u + 6u);
    EXPECT_EQ(result.workUnits, 30u * (2u + 6u + 6u + 6u));
    // Two full-gang phases, then four phases of the surviving trio:
    // exactly one release each, no spurious re-releases while the
    // finished thread parks.
    EXPECT_EQ(result.barriers, 6u);
}

TEST(BarrierKernel, LastRaiserExitingBetweenPollWindowsReleasesRest)
{
    // Thread 0 leaves after the first phase: the moment it
    // decrements the live counter, the other three — already blocked
    // and polling — form a complete gang and every later phase must
    // release on their arrivals alone.
    KernelConfig config = barrierConfig(4, 25, 3);
    config.segmentsByThread = {1, 3, 3, 3};
    const KernelResult result = runMachineKernel(config);
    EXPECT_TRUE(result.halted);
    EXPECT_EQ(result.faults, 1u + 3u + 3u + 3u);
    EXPECT_EQ(result.barriers, 3u);
}

TEST(BarrierKernel, ZeroSegmentThreadNeverJoinsTheGang)
{
    // A thread with an empty table exits before ever faulting; the
    // barrier accounting must treat it as finished, not pending.
    KernelConfig config = barrierConfig(3, 30, 4);
    config.segmentsByThread = {0, 4, 4};
    const KernelResult result = runMachineKernel(config);
    EXPECT_TRUE(result.halted);
    EXPECT_EQ(result.faults, 8u);
    EXPECT_EQ(result.workUnits, 30u * 8u);
    EXPECT_EQ(result.barriers, 4u);
}

TEST(BarrierKernel, AllThreadsEmptyStillHaltsCleanly)
{
    KernelConfig config = barrierConfig(3, 30, 4);
    config.segmentsByThread = {0, 0, 0};
    const KernelResult result = runMachineKernel(config);
    EXPECT_TRUE(result.halted);
    EXPECT_EQ(result.faults, 0u);
    EXPECT_EQ(result.barriers, 0u);
    EXPECT_EQ(result.workUnits, 0u);
}

TEST(BarrierKernel, DeterministicGivenSeed)
{
    KernelConfig a = barrierConfig(4, 0, 10);
    a.segmentUnits = makeGeometric(30.0);
    a.seed = 3;
    KernelConfig b = a;
    const KernelResult ra = runMachineKernel(a);
    const KernelResult rb = runMachineKernel(b);
    EXPECT_EQ(ra.totalCycles, rb.totalCycles);
    EXPECT_EQ(ra.barriers, rb.barriers);
}

} // namespace
} // namespace rr::kernel
