/**
 * @file
 * Tests for the all-assembly rotation runtime: every software
 * mechanism of Section 2 (Appendix A allocation/deallocation,
 * Section 2.5 unload/reload, queueing, dispatch) executing as RRISC
 * code with the C++ side only preparing initial state.
 */

#include <gtest/gtest.h>

#include "assembler/assembler.hh"
#include "checker/boundary_checker.hh"
#include "kernel/rotation_kernel.hh"
#include "runtime/asm_routines.hh"

namespace rr::kernel {
namespace {

TEST(RotationKernel, CompletesAndRestoresAllocationBitmap)
{
    RotationConfig config;
    config.numThreads = 6;
    config.segmentsPerThread = 8;
    config.workUnits = 50;
    const RotationResult result = runRotationKernel(config);

    EXPECT_TRUE(result.halted);
    EXPECT_FALSE(result.allocPanic);
    // Exact work: every thread ran every unit of every segment.
    EXPECT_EQ(result.workUnits, 6u * 8u * 50u);
    // One fault per segment except the last (which retires).
    EXPECT_EQ(result.faults, 6u * 7u);
    EXPECT_EQ(result.rotations, result.faults);
    // Every context was deallocated: the bitmap is back to its
    // initial image (scheduler chunks used, the rest free).
    EXPECT_EQ(result.finalAllocMap, 0xffffff00u);
}

TEST(RotationKernel, SingleThreadRotatesThroughItself)
{
    RotationConfig config;
    config.numThreads = 1;
    config.segmentsPerThread = 5;
    config.workUnits = 30;
    const RotationResult result = runRotationKernel(config);
    EXPECT_TRUE(result.halted);
    EXPECT_EQ(result.workUnits, 5u * 30u);
    EXPECT_EQ(result.rotations, 4u);
}

TEST(RotationKernel, ManyThreadsStillExact)
{
    RotationConfig config;
    config.numThreads = 40; // far beyond the 24 free chunks
    config.segmentsPerThread = 3;
    config.workUnits = 20;
    const RotationResult result = runRotationKernel(config);
    EXPECT_TRUE(result.halted);
    EXPECT_FALSE(result.allocPanic);
    EXPECT_EQ(result.workUnits, 40u * 3u * 20u);
    EXPECT_EQ(result.finalAllocMap, 0xffffff00u);
}

TEST(RotationKernel, OverheadAmortizesWithSegmentLength)
{
    RotationConfig coarse;
    coarse.numThreads = 4;
    coarse.segmentsPerThread = 6;
    coarse.workUnits = 400;
    RotationConfig fine = coarse;
    fine.workUnits = 20;
    const RotationResult rc = runRotationKernel(coarse);
    const RotationResult rf = runRotationKernel(fine);
    EXPECT_GT(rc.efficiency(), rf.efficiency());
    EXPECT_GT(rc.efficiency(), 0.85);
}

TEST(RotationKernel, PerRotationOverheadWithinBudget)
{
    // Per segment: 2 * workUnits useful + the full software path
    // (fault, unload, mailbox, scheduler, dealloc, dequeue, alloc,
    // reload, resume). That path is ~70-85 cycles — remarkable for a
    // complete dynamic runtime, and the reason software management
    // is viable at all (Section 2).
    RotationConfig config;
    config.numThreads = 4;
    config.segmentsPerThread = 10;
    config.workUnits = 50;
    const RotationResult result = runRotationKernel(config);
    ASSERT_TRUE(result.halted);
    const double overhead_per_segment =
        static_cast<double>(result.totalCycles -
                            result.usefulCycles) /
        static_cast<double>(4 * 10);
    EXPECT_GE(overhead_per_segment, 40.0);
    EXPECT_LE(overhead_per_segment, 95.0);
}

// The boundary checker (Section 2.4) proves the runtime honours its
// own context sizes: thread-side code addresses only r0..r7, the
// scheduler side fits its 32-register context.
TEST(RotationKernel, RuntimeRespectsDeclaredContextBounds)
{
    const auto prog = assembler::assemble(
        runtime::rotationSchedulerSource(50));
    ASSERT_TRUE(prog.ok());

    const uint32_t thread_begin = prog.addressOf("thread_start");
    const uint32_t thread_end = prog.addressOf("sched_rotate");
    const uint32_t sched_begin = prog.addressOf("sched_rotate");
    const uint32_t sched_end = prog.addressOf("boot");
    const uint32_t boot_begin = prog.addressOf("boot");
    const uint32_t boot_end = prog.addressOf("ctx_alloc8");
    const uint32_t alloc_begin = prog.addressOf("ctx_alloc8");
    const auto image_end = static_cast<uint32_t>(
        prog.base + prog.words.size());

    const std::vector<checker::Region> regions = {
        {thread_begin, thread_end, 8},  // thread contexts
        {boot_begin, boot_end, 8},      // reload runs in the target
        {sched_begin, sched_end, 32},   // scheduler context
        {alloc_begin, image_end, 32},   // allocators (scheduler ctx)
    };
    const auto violations = checker::checkRegions(prog, regions);
    for (const auto &violation : violations)
        ADD_FAILURE() << violation.str();
    EXPECT_TRUE(violations.empty());

    // And the thread region genuinely needs all 8 registers.
    const std::vector<checker::Region> too_small = {
        {thread_begin, thread_end, 4}};
    EXPECT_FALSE(checker::checkRegions(prog, too_small).empty());
}

TEST(RotationKernel, SaveAreasHoldFinalThreadState)
{
    RotationConfig config;
    config.numThreads = 3;
    config.segmentsPerThread = 4;
    config.workUnits = 25;
    RotationKernel kernel(config);
    const RotationResult result = kernel.run();
    ASSERT_TRUE(result.halted);
    for (unsigned tid = 0; tid < 3; ++tid) {
        const uint64_t area = kernel.saveAreaOf(tid);
        // The last save happened entering the final segment: one
        // segment remained (r6 slot == 1).
        EXPECT_EQ(kernel.cpu().mem().read(area + 4), 1u)
            << "tid " << tid;
        // r7 image stays the constant zero.
        EXPECT_EQ(kernel.cpu().mem().read(area + 5), 0u);
    }
}

} // namespace
} // namespace rr::kernel
