/**
 * @file
 * Tests for the rr::fuzz subsystem itself: generator determinism,
 * repro round-trip exactness, parse-time validation of hostile repro
 * files, shrinker contracts, and end-to-end runFuzz determinism.
 * The *oracles* are exercised continuously by tool_rrfuzz_smoke and
 * the pinned corpus (tests/fuzz/corpus/); this file pins the
 * machinery those runs depend on.
 */

#include <gtest/gtest.h>

#include "fuzz/fuzz.hh"

namespace rr::fuzz {
namespace {

const SampleKind kAllKinds[] = {
    SampleKind::Reloc,   SampleKind::Heap, SampleKind::Json,
    SampleKind::Num,     SampleKind::Phase, SampleKind::Program,
    SampleKind::Mt,      SampleKind::Xsim, SampleKind::Callgraph,
};

TEST(FuzzGen, SameSeedSameSample)
{
    for (const SampleKind kind : kAllKinds) {
        const uint64_t seed =
            1234 + static_cast<uint64_t>(kind) * 17;
        Rng a(seed), b(seed);
        const std::string first =
            serializeRepro(generateSample(kind, a));
        const std::string second =
            serializeRepro(generateSample(kind, b));
        EXPECT_EQ(first, second) << kindName(kind);
    }
}

TEST(FuzzGen, DifferentSeedsDiffer)
{
    // Not a hard guarantee for every kind/seed pair, but these seeds
    // must not collide — a generator ignoring its rng would pass
    // SameSeedSameSample trivially.
    Rng a(1), b(2);
    EXPECT_NE(serializeRepro(generateSample(SampleKind::Program, a)),
              serializeRepro(generateSample(SampleKind::Program, b)));
}

TEST(FuzzRepro, RoundTripIsByteExact)
{
    for (const SampleKind kind : kAllKinds) {
        for (uint64_t seed = 1; seed <= 3; ++seed) {
            Rng rng(seed * 1000 + static_cast<uint64_t>(kind));
            const AnySample sample = generateSample(kind, rng);
            const std::string text = serializeRepro(sample);

            AnySample parsed;
            std::string error;
            ASSERT_TRUE(parseRepro(text, parsed, error))
                << kindName(kind) << ": " << error;
            EXPECT_EQ(kindOf(parsed), kind);
            EXPECT_EQ(serializeRepro(parsed), text)
                << kindName(kind);
        }
    }
}

TEST(FuzzRepro, RejectsGarbage)
{
    AnySample out;
    std::string error;
    EXPECT_FALSE(parseRepro("", out, error));
    EXPECT_FALSE(parseRepro("not a repro", out, error));
    EXPECT_FALSE(parseRepro("rrfuzz.repro.v1\n", out, error));
    EXPECT_FALSE(
        parseRepro("rrfuzz.repro.v1\nkind nope\nend\n", out, error));
    // Missing terminator: a truncated file must not parse.
    EXPECT_FALSE(parseRepro(
        "rrfuzz.repro.v1\nkind num\ntext 5\nmax 10\n", out, error));
}

TEST(FuzzRepro, RejectsOutOfDomainValues)
{
    // Hand-edited repro files are parsed before any simulator runs;
    // values outside the generator domains must be parse errors, not
    // assertion failures or multi-hour simulations.
    AnySample out;
    std::string error;
    EXPECT_FALSE(parseRepro("rrfuzz.repro.v1\nkind xsim\n"
                            "threads 9\nregsUsed 16\nlatency 100\n"
                            "segments 4\nseed 1\ntolerance 0.15\n"
                            "script 10\nend\n",
                            out, error));
    EXPECT_NE(error.find("threads"), std::string::npos) << error;

    EXPECT_FALSE(parseRepro("rrfuzz.repro.v1\nkind reloc\n"
                            "numRegs 33\noperandWidth 5\nbanks 1\n"
                            "mode 0\nend\n",
                            out, error));

    EXPECT_FALSE(parseRepro("rrfuzz.repro.v1\nkind phase\n"
                            "threads 1\nworkPerThread 0\n"
                            "phase0Faults 1\nmeanRun 8\nlatency0 10\n"
                            "latency1 100\nnumRegs 128\nseed 1\n"
                            "end\n",
                            out, error));
}

TEST(FuzzRepro, RejectsMalformedCallgraphs)
{
    AnySample out;
    std::string error;
    // A procedure with two callers breaks the forest invariant the
    // ground-truth locksets depend on.
    EXPECT_FALSE(parseRepro("rrfuzz.repro.v1\nkind callgraph\n"
                            "numCells 1\nnumLocks 0\nmaxSteps 100\n"
                            "proc 0 0 0 0 2\nproc 0 0 0 0 2\n"
                            "proc 0 0 0 0\nroot 0 1\nend\n",
                            out, error));
    EXPECT_NE(error.find("two callers"), std::string::npos) << error;

    // A lock held by both a procedure and its forest ancestor would
    // make the generated spinlock deadlock at runtime.
    EXPECT_FALSE(parseRepro("rrfuzz.repro.v1\nkind callgraph\n"
                            "numCells 1\nnumLocks 1\nmaxSteps 100\n"
                            "proc 0 0 0 1 1\nproc 0 0 0 1\n"
                            "root 0\nend\n",
                            out, error));
    EXPECT_NE(error.find("ancestor"), std::string::npos) << error;

    // Roots may only call parentless procedures (unique call paths).
    EXPECT_FALSE(parseRepro("rrfuzz.repro.v1\nkind callgraph\n"
                            "numCells 1\nnumLocks 0\nmaxSteps 100\n"
                            "proc 0 0 0 0 1\nproc 0 0 0 0\n"
                            "root 1\nend\n",
                            out, error));

    // Back or self call targets would make the graph cyclic.
    EXPECT_FALSE(parseRepro("rrfuzz.repro.v1\nkind callgraph\n"
                            "numCells 1\nnumLocks 0\nmaxSteps 100\n"
                            "proc 0 0 0 0 0\nroot 0\nend\n",
                            out, error));
}

/** A two-thread unlocked write/write conflict on one shared cell. */
CallgraphSample
racyCallgraphSample()
{
    CallgraphSample s;
    s.numCells = 1;
    s.numLocks = 1;
    s.maxSteps = 20000;
    CgProc writer;
    writer.cell = 0;
    writer.write = true;
    CgProc locked_writer;
    locked_writer.cell = 0;
    locked_writer.write = true;
    locked_writer.lock = 0;
    s.procs = {writer, locked_writer};
    s.roots.resize(3);
    s.roots[1].calls = {0}; // t1: unlocked write
    s.roots[2].calls = {1}; // t2: write under lk0
    return s;
}

TEST(FuzzCheck, CallgraphOracleAcceptsARacyConstruction)
{
    // The oracle demands the lint race set *equal* the construction's
    // — a sample with a genuine race passes only if the analysis
    // reports exactly that race.
    const AnySample sample = racyCallgraphSample();
    const Problems problems = checkSample(sample);
    EXPECT_TRUE(problems.empty())
        << (problems.empty() ? "" : problems.front());
}

TEST(FuzzCheck, CallgraphSourceIsDeterministic)
{
    const CallgraphSample s = racyCallgraphSample();
    const std::string a = callgraphSource(s);
    EXPECT_EQ(a, callgraphSource(s));
    EXPECT_NE(a.find(".lockdef lk0"), std::string::npos);
    EXPECT_NE(a.find(".thread t2"), std::string::npos);
}

/** A sample that fails checkSample deterministically: the phase
 * oracle demands that raising only the phase-1 latency changes the
 * clock, which is impossible when both latencies are equal. */
PhaseSample
degeneratePhaseSample()
{
    PhaseSample s;
    s.threads = 6;
    s.workPerThread = 2048;
    s.phase0Faults = 2;
    s.meanRun = 32.0;
    s.latency0 = 50;
    s.latency1 = 50;
    s.numRegs = 128;
    s.seed = 3;
    return s;
}

TEST(FuzzShrink, PassingSampleReturnedUnchanged)
{
    NumSample s;
    s.text = "42";
    const AnySample sample = s;
    ASSERT_TRUE(checkSample(sample).empty());
    unsigned steps = 0;
    const AnySample shrunk = shrinkSample(sample, 100, steps);
    EXPECT_EQ(serializeRepro(shrunk), serializeRepro(sample));
}

TEST(FuzzShrink, FailingSampleStaysFailingAndShrinks)
{
    const AnySample sample = degeneratePhaseSample();
    ASSERT_FALSE(checkSample(sample).empty());

    unsigned steps = 0;
    const AnySample shrunk = shrinkSample(sample, 200, steps);
    EXPECT_FALSE(checkSample(shrunk).empty());
    EXPECT_GT(steps, 0u);
    EXPECT_LE(serializeRepro(shrunk).size(),
              serializeRepro(sample).size());
}

TEST(FuzzShrink, IsDeterministic)
{
    const AnySample sample = degeneratePhaseSample();
    unsigned steps1 = 0, steps2 = 0;
    const AnySample a = shrinkSample(sample, 200, steps1);
    const AnySample b = shrinkSample(sample, 200, steps2);
    EXPECT_EQ(serializeRepro(a), serializeRepro(b));
    EXPECT_EQ(steps1, steps2);
}

TEST(FuzzCheck, GeneratedSamplesPassAllOracles)
{
    // Spot check; the CI smoke run covers far more samples.
    for (const SampleKind kind : kAllKinds) {
        Rng rng(77 + static_cast<uint64_t>(kind));
        const AnySample sample = generateSample(kind, rng);
        const Problems problems = checkSample(sample);
        EXPECT_TRUE(problems.empty())
            << kindName(kind) << ": "
            << (problems.empty() ? "" : problems.front());
    }
}

TEST(FuzzRun, SameOptionsSameReport)
{
    FuzzOptions options;
    options.seed = 42;
    options.samples = 16;

    const FuzzReport a = runFuzz(options);
    const FuzzReport b = runFuzz(options);
    EXPECT_EQ(a.samplesRun, 16u);
    EXPECT_EQ(a.samplesRun, b.samplesRun);
    EXPECT_EQ(a.perKind, b.perKind);
    EXPECT_EQ(a.failures.size(), b.failures.size());
    EXPECT_TRUE(a.clean());
}

TEST(FuzzRun, KindFilterRestrictsSamples)
{
    FuzzOptions options;
    options.seed = 7;
    options.samples = 8;
    options.kinds = {SampleKind::Num, SampleKind::Json};

    const FuzzReport report = runFuzz(options);
    EXPECT_EQ(report.samplesRun, 8u);
    EXPECT_EQ(report.perKind[static_cast<unsigned>(SampleKind::Num)],
              4u);
    EXPECT_EQ(report.perKind[static_cast<unsigned>(SampleKind::Json)],
              4u);
    EXPECT_EQ(
        report.perKind[static_cast<unsigned>(SampleKind::Reloc)], 0u);
}

TEST(FuzzKinds, NamesRoundTrip)
{
    for (const SampleKind kind : kAllKinds) {
        SampleKind back = SampleKind::Reloc;
        ASSERT_TRUE(kindFromName(kindName(kind), back));
        EXPECT_EQ(back, kind);
    }
    SampleKind ignored;
    EXPECT_FALSE(kindFromName("frobnicate", ignored));
}

} // namespace
} // namespace rr::fuzz
