/**
 * @file
 * Integration tests that execute the paper's runtime routines as real
 * RRISC code on the cycle-level machine:
 *
 *  - the Figure 3 fast context switch, including measuring its cost
 *    against the paper's "approximately 4 to 6 RISC cycles";
 *  - the Appendix A allocation/deallocation routines, measured
 *    against Figure 4's 25 / 15 / 5 cycle assumptions, and checked
 *    for behavioural equivalence with the C++ ContextAllocator;
 *  - the Section 2.5 multi-entry-point save/restore code (1 cycle
 *    per register).
 */

#include <gtest/gtest.h>

#include <vector>

#include "assembler/assembler.hh"
#include "machine/cpu.hh"
#include "runtime/asm_routines.hh"
#include "runtime/context_allocator.hh"
#include "runtime/context_loader.hh"

namespace rr::runtime {
namespace {

using assembler::Program;
using machine::Cpu;
using machine::CpuConfig;

CpuConfig
machineConfig()
{
    CpuConfig config;
    config.numRegs = 128;
    config.operandWidth = 6;
    config.ldrrmDelaySlots = 1;
    config.memWords = 1u << 14;
    return config;
}

Program
assembleOrDie(const std::string &source)
{
    Program prog = assembler::assemble(source);
    for (const auto &error : prog.errors)
        ADD_FAILURE() << error.str();
    EXPECT_TRUE(prog.ok());
    return prog;
}

// ---- Figure 3 context switch ---------------------------------------

class Figure3Switch : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        cpu_ = std::make_unique<Cpu>(machineConfig());
        const Program prog =
            assembleOrDie(roundRobinDemoSource());
        cpu_->mem().loadImage(prog.base, prog.words);
        threadBody_ = prog.addressOf("thread_body");
        spin_ = prog.addressOf("spin");
        entry_ = prog.addressOf("entry");
        allocator_ =
            std::make_unique<ContextAllocator>(128, 6, 16);
        scheduler_ =
            std::make_unique<MachineScheduler>(*cpu_, *allocator_);
    }

    /** Create one demo thread with the body's register conventions. */
    Context
    makeThread(uint32_t iterations, uint64_t counter_addr)
    {
        MachineScheduler::ThreadSpec spec;
        spec.entryPc = threadBody_;
        spec.usedRegs = 10;
        const auto context = scheduler_->createThread(spec);
        EXPECT_TRUE(context.has_value());
        pokeContextReg(*cpu_, context->rrm, 4, iterations);
        pokeContextReg(*cpu_, context->rrm, 6, 1);
        pokeContextReg(*cpu_, context->rrm, 7, 0);
        pokeContextReg(*cpu_, context->rrm, 9,
                       static_cast<uint32_t>(counter_addr));
        return *context;
    }

    std::unique_ptr<Cpu> cpu_;
    std::unique_ptr<ContextAllocator> allocator_;
    std::unique_ptr<MachineScheduler> scheduler_;
    uint32_t threadBody_ = 0;
    uint32_t spin_ = 0;
    uint32_t entry_ = 0;
};

TEST_F(Figure3Switch, RoundRobinDemoRunsToCompletion)
{
    constexpr uint64_t counter_addr = 0x2000;
    constexpr unsigned num_threads = 3;
    constexpr uint32_t iterations = 5;

    std::vector<Context> contexts;
    for (unsigned i = 0; i < num_threads; ++i)
        contexts.push_back(makeThread(iterations, counter_addr));
    cpu_->mem().write(counter_addr, num_threads);
    scheduler_->start();

    cpu_->run(100000);
    ASSERT_TRUE(cpu_->halted());
    EXPECT_EQ(cpu_->trap(), machine::TrapKind::None);
    EXPECT_EQ(cpu_->mem().read(counter_addr), 0u);

    // Each thread decremented r4 from `iterations` to 0, accumulating
    // 4+3+2+1+0 = 10 into r5.
    for (const Context &context : contexts) {
        EXPECT_EQ(peekContextReg(*cpu_, context.rrm, 4), 0u);
        EXPECT_EQ(peekContextReg(*cpu_, context.rrm, 5), 10u);
    }
}

// The paper: a transfer of control to the next runnable context takes
// approximately 4 to 6 cycles. Our path is jal + ldrrm + mov + mov +
// jmp = 5 cycles of switch machinery per yield.
TEST_F(Figure3Switch, SwitchCostWithinPaperRange)
{
    constexpr uint64_t counter_addr = 0x2000;
    // Two threads whose r4 wraps to a huge count: each loop pass is
    // sub + add + (jal + yield) + bne — three body instructions plus
    // the full switch path.
    makeThread(0, counter_addr);
    makeThread(0, counter_addr);
    cpu_->mem().write(counter_addr, 1000);
    scheduler_->start();

    uint64_t body_visits = 0;
    cpu_->setTraceHook([&](const machine::TraceEntry &entry) {
        if (entry.pc == threadBody_)
            ++body_visits;
    });

    cpu_->run(4000);
    ASSERT_GE(body_visits, 100u);
    const double cycles_per_visit =
        static_cast<double>(cpu_->cycles()) /
        static_cast<double>(body_visits);
    // 3 of the cycles per visit are loop body; the rest is the
    // Figure 3 transfer of control. The paper claims 4 to 6 cycles.
    const double switch_cost = cycles_per_visit - 3.0;
    EXPECT_GE(switch_cost, 4.0);
    EXPECT_LE(switch_cost, 6.0);
}

TEST_F(Figure3Switch, PswIsSavedAndRestoredAcrossSwitch)
{
    constexpr uint64_t counter_addr = 0x2000;
    const Context a = makeThread(3, counter_addr);
    const Context b = makeThread(3, counter_addr);
    cpu_->mem().write(counter_addr, 2);
    // Give each context a distinctive PSW image in r1.
    pokeContextReg(*cpu_, a.rrm, 1, 0xaa);
    pokeContextReg(*cpu_, b.rrm, 1, 0xbb);
    scheduler_->start();

    // After the first switch (a -> b), the PSW must hold b's image.
    uint32_t psw_after_first_switch = 0;
    bool seen = false;
    cpu_->setTraceHook([&](const machine::TraceEntry &entry) {
        if (!seen && entry.pc == threadBody_ &&
            entry.rrm == b.rrm) {
            psw_after_first_switch = cpu_->psw();
            seen = true;
        }
    });
    cpu_->run(100000);
    ASSERT_TRUE(seen);
    EXPECT_EQ(psw_after_first_switch, 0xbbu);
    ASSERT_TRUE(cpu_->halted());
}

// ---- Appendix A allocator -------------------------------------------

class AppendixAAllocator : public ::testing::Test
{
  protected:
    static constexpr uint64_t allocMapAddr = 0x1000;
    static constexpr uint64_t threadAddr = 0x1010;

    void
    SetUp() override
    {
        cpu_ = std::make_unique<Cpu>(machineConfig());
        const std::string source = "entry16:  jal r15, ctx_alloc16\n"
                                   "          halt\n"
                                   "entry64:  jal r15, ctx_alloc64\n"
                                   "          halt\n"
                                   "entryff1: jal r15, ctx_alloc16_ff1\n"
                                   "          halt\n"
                                   "entrydel: jal r15, ctx_dealloc\n"
                                   "          halt\n" +
                                   appendixAAllocatorSource();
        const Program prog = assembleOrDie(source);
        cpu_->mem().loadImage(prog.base, prog.words);
        prog_ = prog;

        // Calling convention constants (Appendix A registers).
        cpu_->regs().write(6, 0);
        cpu_->regs().write(8, 0x11111111u);
        cpu_->regs().write(9, 0x0000ffffu);
        cpu_->regs().write(13, 0x0000000fu);
        cpu_->regs().write(10, allocMapAddr);
        cpu_->regs().write(11, threadAddr);

        cpu_->mem().write(allocMapAddr, 0xffffffffu); // all free
    }

    /** Run one routine; @return cycles including call and return. */
    uint64_t
    call(const std::string &entry)
    {
        cpu_->resume();
        cpu_->setPc(prog_.addressOf(entry));
        const uint64_t before = cpu_->cycles();
        cpu_->run(1000);
        EXPECT_TRUE(cpu_->halted());
        EXPECT_EQ(cpu_->trap(), machine::TrapKind::None);
        // Exclude the final halt instruction.
        return cpu_->cycles() - before - 1;
    }

    uint32_t result() const { return cpu_->regs().read(12); }
    uint32_t allocMap() const { return cpu_->mem().read(allocMapAddr); }
    uint32_t threadRrm() const { return cpu_->mem().read(threadAddr); }
    uint32_t threadMask() const
    {
        return cpu_->mem().read(threadAddr + 1);
    }

    std::unique_ptr<Cpu> cpu_;
    Program prog_;
};

TEST_F(AppendixAAllocator, Alloc16SucceedsOnEmptyMap)
{
    const uint64_t cycles = call("entry16");
    EXPECT_EQ(result(), 1u);
    EXPECT_EQ(threadRrm(), 0u);
    EXPECT_EQ(threadMask(), 0x0000000fu);
    EXPECT_EQ(allocMap(), 0xfffffff0u);
    // Figure 4: successful allocation ~ 25 cycles.
    EXPECT_GE(cycles, 18u);
    EXPECT_LE(cycles, 30u);
}

TEST_F(AppendixAAllocator, Alloc16BinarySearchFindsHighBlock)
{
    // Only chunks 28..31 free: a size-16 context at registers
    // 112..127 (rrm = 112).
    cpu_->mem().write(allocMapAddr, 0xf0000000u);
    const uint64_t cycles = call("entry16");
    EXPECT_EQ(result(), 1u);
    EXPECT_EQ(threadRrm(), 112u);
    EXPECT_EQ(threadMask(), 0xf0000000u);
    EXPECT_EQ(allocMap(), 0u);
    EXPECT_LE(cycles, 30u);
}

TEST_F(AppendixAAllocator, Alloc16FailsWhenFragmented)
{
    // Every other chunk free: no aligned run of 4 chunks anywhere.
    cpu_->mem().write(allocMapAddr, 0x55555555u);
    const uint64_t cycles = call("entry16");
    EXPECT_EQ(result(), 0u);
    EXPECT_EQ(allocMap(), 0x55555555u); // untouched
    // Figure 4: failed allocation ~ 15 cycles (ours is leaner).
    EXPECT_GE(cycles, 5u);
    EXPECT_LE(cycles, 16u);
}

TEST_F(AppendixAAllocator, Alloc64LowHalf)
{
    const uint64_t cycles = call("entry64");
    EXPECT_EQ(result(), 1u);
    EXPECT_EQ(threadRrm(), 0u);
    EXPECT_EQ(threadMask(), 0x0000ffffu);
    EXPECT_EQ(allocMap(), 0xffff0000u);
    EXPECT_LE(cycles, 16u);
}

TEST_F(AppendixAAllocator, Alloc64HighHalf)
{
    cpu_->mem().write(allocMapAddr, 0xffff0000u);
    const uint64_t cycles = call("entry64");
    EXPECT_EQ(result(), 1u);
    EXPECT_EQ(threadRrm(), 64u); // 16 chunks << 2
    EXPECT_EQ(threadMask(), 0xffff0000u);
    EXPECT_EQ(allocMap(), 0u);
    EXPECT_LE(cycles, 20u);
}

TEST_F(AppendixAAllocator, Alloc64Fails)
{
    cpu_->mem().write(allocMapAddr, 0x0000fff0u);
    const uint64_t cycles = call("entry64");
    EXPECT_EQ(result(), 0u);
    EXPECT_LE(cycles, 16u);
}

TEST_F(AppendixAAllocator, Ff1VariantFasterThanBinarySearch)
{
    const uint64_t ff1_cycles = call("entryff1");
    EXPECT_EQ(result(), 1u);
    EXPECT_EQ(threadRrm(), 0u);
    cpu_->mem().write(allocMapAddr, 0xffffffffu);
    const uint64_t bin_cycles = call("entry16");
    EXPECT_EQ(result(), 1u);
    // Footnote 2: FF1 cuts allocation to ~15 cycles.
    EXPECT_LT(ff1_cycles, bin_cycles);
    EXPECT_GE(ff1_cycles, 12u);
    EXPECT_LE(ff1_cycles, 20u);
}

TEST_F(AppendixAAllocator, DeallocCostMatchesPaper)
{
    call("entry16");
    ASSERT_EQ(result(), 1u);
    const uint32_t map_after_alloc = allocMap();
    ASSERT_EQ(map_after_alloc, 0xfffffff0u);
    const uint64_t cycles = call("entrydel");
    EXPECT_EQ(allocMap(), 0xffffffffu);
    // Figure 4 / Appendix A: deallocation ~ 5 cycles.
    EXPECT_GE(cycles, 4u);
    EXPECT_LE(cycles, 7u);
}

// Behavioural equivalence: the assembly allocator and the C++
// ContextAllocator choose identical blocks for identical histories.
TEST_F(AppendixAAllocator, MatchesCxxAllocatorSequence)
{
    ContextAllocator cxx(128, 6, 16);
    std::vector<Context> cxx_contexts;
    for (int i = 0; i < 8; ++i) {
        const uint64_t cycles = call("entry16");
        const auto context = cxx.allocate(16);
        ASSERT_TRUE(context.has_value());
        ASSERT_EQ(result(), 1u) << "allocation " << i;
        EXPECT_EQ(threadRrm(), context->rrm) << "allocation " << i;
        cxx_contexts.push_back(*context);
        (void)cycles;
    }
    // Both views agree the file is now full for size-16 contexts.
    EXPECT_EQ(allocMap(), 0u);
    EXPECT_FALSE(cxx.allocate(16).has_value());
    const uint64_t cycles = call("entry16");
    EXPECT_EQ(result(), 0u);
    (void)cycles;
}

// ---- Section 2.5 save/restore ---------------------------------------

TEST(SaveRestore, UnloadStoresExactlyCRegisters)
{
    Cpu cpu(machineConfig());
    const std::string source = "ret: halt\n" + saveRestoreSource(30);
    const Program prog = assembleOrDie(source);
    cpu.mem().loadImage(prog.base, prog.words);

    constexpr uint64_t save_area = 0x3000;
    for (unsigned r = 0; r < 12; ++r)
        cpu.regs().write(r, 1000 + r);
    cpu.regs().write(30, save_area);
    cpu.regs().write(31, prog.addressOf("ret"));

    cpu.setPc(prog.addressOf("unload_8"));
    const uint64_t before = cpu.cycles();
    cpu.run(100);
    ASSERT_TRUE(cpu.halted());
    // Registers r7..r0 stored; r8.. untouched in memory.
    for (unsigned r = 0; r < 8; ++r)
        EXPECT_EQ(cpu.mem().read(save_area + r), 1000 + r);
    EXPECT_EQ(cpu.mem().read(save_area + 8), 0u);
    // Cost: C stores + return jmp + halt = C + 2 (paper: 1 cycle per
    // register).
    EXPECT_EQ(cpu.cycles() - before, 8u + 2u);
}

TEST(SaveRestore, LoadRestoresExactlyCRegisters)
{
    Cpu cpu(machineConfig());
    const std::string source = "ret: halt\n" + saveRestoreSource(30);
    const Program prog = assembleOrDie(source);
    cpu.mem().loadImage(prog.base, prog.words);

    constexpr uint64_t save_area = 0x3000;
    for (unsigned r = 0; r < 10; ++r)
        cpu.mem().write(save_area + r, 2000 + r);
    cpu.regs().write(30, save_area);
    cpu.regs().write(31, prog.addressOf("ret"));

    cpu.setPc(prog.addressOf("load_10"));
    cpu.run(100);
    ASSERT_TRUE(cpu.halted());
    for (unsigned r = 0; r < 10; ++r)
        EXPECT_EQ(cpu.regs().read(r), 2000 + r);
    EXPECT_EQ(cpu.regs().read(10), 0u);
}

TEST(SaveRestore, EveryEntryPointAssembles)
{
    const Program prog =
        assembleOrDie("ret: halt\n" + saveRestoreSource(30));
    for (unsigned k = 1; k <= 30; ++k) {
        EXPECT_NO_FATAL_FAILURE(
            prog.addressOf("unload_" + std::to_string(k)));
        EXPECT_NO_FATAL_FAILURE(
            prog.addressOf("load_" + std::to_string(k)));
    }
}


// The embedded runtime sources must assemble cleanly across their
// whole parameter spaces.
TEST(AsmSources, AllGeneratedSourcesAssemble)
{
    for (const unsigned units : {1u, 50u, 2047u}) {
        EXPECT_TRUE(assembler::assemble(
                        rotationSchedulerSource(units))
                        .ok())
            << "rotation units=" << units;
        for (const unsigned budget : {1u, 3u, 2047u}) {
            EXPECT_TRUE(assembler::assemble(twoPhaseSchedulerSource(
                                                units, budget))
                            .ok())
                << "two-phase units=" << units
                << " budget=" << budget;
        }
    }
    for (const unsigned regs : {1u, 15u, 30u}) {
        EXPECT_TRUE(assembler::assemble("ret: halt\n" +
                                        saveRestoreSource(regs))
                        .ok())
            << "save/restore regs=" << regs;
    }
    EXPECT_TRUE(
        assembler::assemble(roundRobinDemoSource()).ok());
    EXPECT_TRUE(assembler::assemble("yield_host: nop\n" +
                                    figure3YieldSource())
                    .ok());
}

TEST(AsmSourcesDeath, OutOfRangeParametersPanic)
{
    EXPECT_DEATH(rotationSchedulerSource(0), "work units");
    EXPECT_DEATH(rotationSchedulerSource(5000), "work units");
    EXPECT_DEATH(twoPhaseSchedulerSource(50, 0), "poll budget");
    EXPECT_DEATH(saveRestoreSource(31), "1..30");
}

} // namespace
} // namespace rr::runtime
