/**
 * @file
 * Figure-shape regression suite: the paper's qualitative claims,
 * pinned as tests on reduced sweeps so a behavioural regression in
 * the simulator is caught immediately (EXPERIMENTS.md records the
 * full-sweep numbers).
 */

#include <gtest/gtest.h>

#include "multithread/simulation_spec.hh"
#include "multithread/workload.hh"

namespace rr::mt {
namespace {

double
meanEff(ArchKind arch, const MtConfig &proto, unsigned seeds = 2)
{
    double total = 0.0;
    for (uint64_t seed = 1; seed <= seeds; ++seed) {
        MtConfig config = proto;
        config.arch = arch;
        config.costs = arch == ArchKind::FixedHw
                           ? runtime::CostModel::paperFixed(
                                 proto.costs.contextSwitch)
                           : proto.costs;
        config.seed = seed;
        total += simulate(std::move(config)).efficiencyCentral;
    }
    return total / seeds;
}

MtConfig
cacheProto(unsigned num_regs, double run, uint64_t latency)
{
    return SimulationSpec()
        .cacheFaults(run, latency)
        .numRegs(num_regs)
        .threads(32)
        .build();
}

MtConfig
syncProto(unsigned num_regs, double run, double latency)
{
    return SimulationSpec()
        .syncFaults(run, latency)
        .numRegs(num_regs)
        .threads(32)
        .build();
}

// Figure 5: "register relocation consistently outperforms
// conventional fixed-size contexts" under cache faults, despite the
// large-context bias of C ~ U[6,24].
TEST(FigureShapes, Fig5FlexibleNeverLoses)
{
    for (const unsigned num_regs : {64u, 128u}) {
        for (const double run : {8.0, 32.0}) {
            for (const uint64_t latency : {64ull, 256ull, 1024ull}) {
                const MtConfig proto =
                    cacheProto(num_regs, run, latency);
                const double fixed = meanEff(ArchKind::FixedHw, proto);
                const double flex =
                    meanEff(ArchKind::Flexible, proto);
                EXPECT_GE(flex + 0.01, fixed)
                    << "F=" << num_regs << " R=" << run
                    << " L=" << latency;
            }
        }
    }
}

// Figure 5's axes: efficiency falls with L and rises with R.
TEST(FigureShapes, Fig5Monotonicity)
{
    const double e_l64 =
        meanEff(ArchKind::Flexible, cacheProto(128, 32.0, 64));
    const double e_l1024 =
        meanEff(ArchKind::Flexible, cacheProto(128, 32.0, 1024));
    EXPECT_GT(e_l64, e_l1024);

    const double e_r8 =
        meanEff(ArchKind::Flexible, cacheProto(128, 8.0, 256));
    const double e_r128 =
        meanEff(ArchKind::Flexible, cacheProto(128, 128.0, 256));
    EXPECT_GT(e_r128, e_r8);
}

// Figure 6(a): at F = 64 the flexible advantage fades with L and
// fixed contexts win at large L — but only there; at moderate L the
// flexible scheme leads.
TEST(FigureShapes, Fig6aCrossover)
{
    const double fixed_small =
        meanEff(ArchKind::FixedHw, syncProto(64, 32.0, 64.0));
    const double flex_small =
        meanEff(ArchKind::Flexible, syncProto(64, 32.0, 64.0));
    EXPECT_GT(flex_small, fixed_small);

    const double fixed_large =
        meanEff(ArchKind::FixedHw, syncProto(64, 32.0, 2048.0));
    const double flex_large =
        meanEff(ArchKind::Flexible, syncProto(64, 32.0, 2048.0));
    EXPECT_GT(fixed_large, flex_large);
}

// Section 3.3's ablation: lower allocation costs recover the
// flexible advantage where the general-purpose allocator loses it.
TEST(FigureShapes, Fig6aLowCostAllocationRecovers)
{
    MtConfig proto = syncProto(64, 32.0, 1024.0);
    const double fixed = meanEff(ArchKind::FixedHw, proto);
    const double general = meanEff(ArchKind::Flexible, proto);
    proto.costs = runtime::CostModel::lowCostFlexible(8);
    const double lowcost = meanEff(ArchKind::Flexible, proto);
    EXPECT_GT(lowcost, general);
    EXPECT_GT(lowcost + 0.01, fixed);
}

// Section 3.4: homogeneous small contexts multiply the gains; the
// abstract's "factor of two" appears exactly at C = 16 and roughly
// quadruples at C = 8.
TEST(FigureShapes, HomogeneousHeadlineFactors)
{
    MtConfig proto = cacheProto(64, 16.0, 1024);
    proto.workload = homogeneousWorkload(32, 20000, 16);
    const double ratio16 = meanEff(ArchKind::Flexible, proto) /
                           meanEff(ArchKind::FixedHw, proto);
    EXPECT_GT(ratio16, 1.8);
    EXPECT_LT(ratio16, 2.2);

    proto.workload = homogeneousWorkload(32, 20000, 8);
    const double ratio8 = meanEff(ArchKind::Flexible, proto) /
                          meanEff(ArchKind::FixedHw, proto);
    EXPECT_GT(ratio8, 3.0);
}

// Section 3: combined faults sit below either single-fault workload
// with the ordering preserved.
TEST(FigureShapes, CombinedFaultsLowerBothArchitectures)
{
    for (const ArchKind arch :
         {ArchKind::FixedHw, ArchKind::Flexible}) {
        MtConfig cache = cacheProto(128, 64.0, 64);
        cache.costs.contextSwitch = 8;
        MtConfig sync = syncProto(128, 128.0, 512.0);
        MtConfig combined = SimulationSpec()
                                .combinedFaults(64.0, 64, 128.0,
                                                512.0)
                                .arch(arch)
                                .numRegs(128)
                                .threads(32)
                                .build();
        const double e_cache = meanEff(arch, cache);
        const double e_sync = meanEff(arch, sync);
        const double e_combined = meanEff(arch, combined);
        EXPECT_LT(e_combined, e_cache) << archName(arch);
        EXPECT_LT(e_combined, e_sync) << archName(arch);
    }
}

// Section 1's headline: "register relocation can improve processor
// utilization by a factor of two for many workloads."
TEST(FigureShapes, FactorOfTwoExistsForManyWorkloads)
{
    unsigned workloads_with_2x = 0;
    unsigned total = 0;
    for (const unsigned c : {8u, 12u, 16u}) {
        for (const uint64_t latency : {512ull, 1024ull}) {
            MtConfig proto = cacheProto(64, 16.0, latency);
            proto.workload = homogeneousWorkload(32, 20000, c);
            const double ratio =
                meanEff(ArchKind::Flexible, proto) /
                meanEff(ArchKind::FixedHw, proto);
            ++total;
            workloads_with_2x += ratio >= 1.95 ? 1 : 0;
        }
    }
    // "Many": at least half of this grid.
    EXPECT_GE(workloads_with_2x * 2, total);
}

} // namespace
} // namespace rr::mt
