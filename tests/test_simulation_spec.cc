/**
 * @file
 * Tests for mt::SimulationSpec, the validated builder that is the
 * single entry point to the event-driven simulator: validation error
 * messages, conventional per-family defaults (Figure 5 vs Figure 6
 * settings), override precedence, and exact equivalence between the
 * builder's sugar and direct MtConfig field overrides.
 */

#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "multithread/simulation_spec.hh"
#include "multithread/workload.hh"

namespace rr {
namespace {

using mt::ArchKind;
using mt::SimulationSpec;
using mt::SpecError;

/** Expect build() to throw a SpecError mentioning @p needle. */
void
expectSpecError(SimulationSpec &spec, const std::string &needle)
{
    try {
        spec.build();
        FAIL() << "expected SpecError containing '" << needle << "'";
    } catch (const SpecError &error) {
        EXPECT_NE(std::string(error.what()).find(needle),
                  std::string::npos)
            << "actual message: " << error.what();
        EXPECT_NE(std::string(error.what()).find("SimulationSpec:"),
                  std::string::npos);
    }
}

TEST(SimulationSpec, RequiresAFaultProcess)
{
    SimulationSpec spec;
    expectSpecError(spec, "no fault process");
}

TEST(SimulationSpec, RejectsSettingTwoFaultProcesses)
{
    SimulationSpec spec;
    spec.cacheFaults(16.0, 100);
    EXPECT_THROW(spec.syncFaults(32.0, 400.0), SpecError);
    try {
        SimulationSpec().syncFaults(32.0, 400.0)
            .combinedFaults(16.0, 100, 32.0, 400.0);
        FAIL();
    } catch (const SpecError &error) {
        EXPECT_NE(std::string(error.what()).find("set twice"),
                  std::string::npos);
    }
}

TEST(SimulationSpec, RejectsNonPositiveRunLengths)
{
    SimulationSpec a;
    EXPECT_THROW(a.cacheFaults(0.0, 100), SpecError);
    SimulationSpec b;
    EXPECT_THROW(b.syncFaults(-1.0, 400.0), SpecError);
    SimulationSpec c;
    EXPECT_THROW(c.deterministicFaults(0, 100), SpecError);
}

TEST(SimulationSpec, RejectsImpossibleGeometry)
{
    // Demand above the largest expressible context (2^w).
    SimulationSpec wide;
    wide.cacheFaults(16.0, 100).registerDemand(6, 40).operandWidth(5);
    expectSpecError(wide, "largest context");

    // Register file smaller than one rounded-up context.
    SimulationSpec tiny;
    tiny.cacheFaults(16.0, 100).numRegs(16).registerDemand(6, 24);
    expectSpecError(tiny, "cannot hold a context of 32");

    // Fixed contexts that cannot satisfy the demand.
    SimulationSpec fixed;
    fixed.cacheFaults(16.0, 100)
        .arch(ArchKind::FixedHw)
        .fixedContextRegs(16)
        .registerDemand(6, 24);
    expectSpecError(fixed, "fixed hardware contexts hold 16");

    // Inverted demand range.
    SimulationSpec inverted;
    inverted.cacheFaults(16.0, 100).registerDemand(24, 6);
    expectSpecError(inverted, "inverted");

    // Broken stats window.
    SimulationSpec window;
    window.cacheFaults(16.0, 100).statsWindow(0.9, 0.1);
    expectSpecError(window, "stats window");
}

TEST(SimulationSpec, AppliesFigureConventionsPerFaultFamily)
{
    // Cache faults: S = 6, never unload, flexible Figure 4 costs.
    const mt::MtConfig cache = SimulationSpec()
                                   .cacheFaults(32.0, 200)
                                   .build();
    EXPECT_EQ(cache.unloadPolicy, mt::UnloadPolicyKind::Never);
    EXPECT_EQ(cache.costs.contextSwitch, 6u);

    // Sync faults: S = 8, two-phase unloading.
    const mt::MtConfig sync = SimulationSpec()
                                  .syncFaults(32.0, 400.0)
                                  .build();
    EXPECT_EQ(sync.unloadPolicy, mt::UnloadPolicyKind::TwoPhase);
    EXPECT_EQ(sync.costs.contextSwitch, 8u);

    // Explicit overrides beat the conventions.
    const mt::MtConfig overridden = SimulationSpec()
                                        .syncFaults(32.0, 400.0)
                                        .switchCost(3)
                                        .neverUnload()
                                        .build();
    EXPECT_EQ(overridden.unloadPolicy, mt::UnloadPolicyKind::Never);
    EXPECT_EQ(overridden.costs.contextSwitch, 3u);

    // Fixed-context architecture gets the fixed cost model (free
    // allocation, Figure 4's right column).
    const mt::MtConfig fixed = SimulationSpec()
                                   .cacheFaults(32.0, 200)
                                   .arch(ArchKind::FixedHw)
                                   .build();
    EXPECT_EQ(fixed.costs.allocSucceed, 0u);
    EXPECT_EQ(fixed.costs.contextSwitch, 6u);
}

// The builder's workload sugar (threads/workPerThread) is pure
// convenience; overriding the same fields on a built MtConfig must
// drive the simulator to identical results.
TEST(SimulationSpec, WorkloadSugarMatchesDirectOverrides)
{
    for (const ArchKind arch :
         {ArchKind::Flexible, ArchKind::FixedHw}) {
        mt::MtConfig direct = SimulationSpec()
                                  .cacheFaults(16.0, 200)
                                  .arch(arch)
                                  .numRegs(128)
                                  .seed(5)
                                  .build();
        direct.workload.numThreads = 10;
        direct.workload.workDist = makeConstant(3000);

        mt::MtConfig built = SimulationSpec()
                                 .cacheFaults(16.0, 200)
                                 .arch(arch)
                                 .numRegs(128)
                                 .threads(10)
                                 .workPerThread(3000)
                                 .seed(5)
                                 .build();

        const mt::MtStats a = mt::simulate(direct);
        const mt::MtStats b = mt::simulate(built);
        EXPECT_EQ(a.totalCycles, b.totalCycles)
            << mt::archName(arch);
        EXPECT_EQ(a.usefulCycles, b.usefulCycles);
        EXPECT_EQ(a.faults, b.faults);
        EXPECT_DOUBLE_EQ(a.efficiencyCentral, b.efficiencyCentral);
    }

    mt::MtConfig direct6 = SimulationSpec()
                               .syncFaults(32.0, 400.0)
                               .numRegs(64)
                               .seed(2)
                               .build();
    direct6.workload.numThreads = 10;
    direct6.workload.workDist = makeConstant(3000);
    mt::MtConfig built6 = SimulationSpec()
                              .syncFaults(32.0, 400.0)
                              .arch(ArchKind::Flexible)
                              .numRegs(64)
                              .threads(10)
                              .workPerThread(3000)
                              .seed(2)
                              .build();
    const mt::MtStats a6 = mt::simulate(direct6);
    const mt::MtStats b6 = mt::simulate(built6);
    EXPECT_EQ(a6.totalCycles, b6.totalCycles);
    EXPECT_EQ(a6.unloads, b6.unloads);
}

TEST(SimulationSpec, RunIsBuildPlusSimulate)
{
    SimulationSpec spec;
    spec.cacheFaults(16.0, 100)
        .threads(8)
        .workPerThread(2000)
        .seed(11);
    const mt::MtStats direct = spec.run();
    const mt::MtStats indirect = mt::simulate(spec.build());
    EXPECT_EQ(direct.totalCycles, indirect.totalCycles);
    EXPECT_GT(direct.totalCycles, 0u);
}

TEST(SimulationSpec, DeterministicFamilyUsesCacheConventions)
{
    const mt::MtConfig config = SimulationSpec()
                                    .deterministicFaults(64, 200)
                                    .registerDemand(8)
                                    .threads(6)
                                    .build();
    EXPECT_EQ(config.unloadPolicy, mt::UnloadPolicyKind::Never);
    EXPECT_EQ(config.costs.contextSwitch, 6u);
    const mt::MtStats stats = mt::simulate(config);
    EXPECT_GT(stats.faults, 0u);
}

} // namespace
} // namespace rr
