# Runs the same fixed-seed rrfuzz invocation twice and fails unless
# the two --json reports are byte-identical — the rrfuzz determinism
# contract (docs/FUZZ.md). Invoked by ctest; see tests/CMakeLists.txt.

foreach(var RRFUZZ WORK_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "${var} is required")
    endif()
endforeach()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

foreach(run 1 2)
    execute_process(
        COMMAND ${RRFUZZ} --seed 7 --samples 32 --quiet --json
        OUTPUT_FILE ${WORK_DIR}/run${run}.json
        RESULT_VARIABLE status)
    if(NOT status EQUAL 0)
        message(FATAL_ERROR
            "rrfuzz run ${run} failed with status ${status}")
    endif()
endforeach()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
        ${WORK_DIR}/run1.json ${WORK_DIR}/run2.json
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR
        "rrfuzz --json output differs between identical runs")
endif()
