/**
 * @file
 * Tests for the runtime/machine glue: context-relative peek/poke,
 * the C++-level exact-count save/restore (Section 2.5), runUntilPc,
 * and MachineScheduler's NextRRM ring wiring.
 */

#include <gtest/gtest.h>

#include "assembler/assembler.hh"
#include "machine/cpu.hh"
#include "runtime/context_loader.hh"

namespace rr::runtime {
namespace {

using machine::Cpu;
using machine::CpuConfig;

CpuConfig
config128()
{
    CpuConfig config;
    config.numRegs = 128;
    config.operandWidth = 5;
    config.memWords = 8192;
    return config;
}

TEST(ContextLoader, PeekPokeRelocate)
{
    Cpu cpu(config128());
    pokeContextReg(cpu, 64, 3, 0xabc);
    EXPECT_EQ(cpu.regs().read(64 | 3), 0xabcu);
    EXPECT_EQ(peekContextReg(cpu, 64, 3), 0xabcu);
    // Independent of the CPU's active RRM.
    cpu.setRrmImmediate(32);
    EXPECT_EQ(peekContextReg(cpu, 64, 3), 0xabcu);
}

TEST(ContextLoader, UnloadLoadRoundTrip)
{
    Cpu cpu(config128());
    Context context;
    context.rrm = 32;
    context.size = 16;

    for (unsigned r = 0; r < 12; ++r)
        pokeContextReg(cpu, context.rrm, r, 5000 + r);

    unloadContext(cpu, context, 12, 0x1000);
    for (unsigned r = 0; r < 12; ++r)
        EXPECT_EQ(cpu.mem().read(0x1000 + r), 5000 + r);
    // Only C registers spilled (Section 2.5).
    EXPECT_EQ(cpu.mem().read(0x1000 + 12), 0u);

    // Clobber and restore.
    for (unsigned r = 0; r < 12; ++r)
        pokeContextReg(cpu, context.rrm, r, 0);
    loadContext(cpu, context, 12, 0x1000);
    for (unsigned r = 0; r < 12; ++r)
        EXPECT_EQ(peekContextReg(cpu, context.rrm, r), 5000 + r);
}

TEST(ContextLoaderDeath, UnloadMoreThanContextPanics)
{
    Cpu cpu(config128());
    Context context;
    context.rrm = 32;
    context.size = 8;
    EXPECT_DEATH(unloadContext(cpu, context, 9, 0x1000), "context");
}

TEST(ContextLoader, RunUntilPcMeasuresCycles)
{
    Cpu cpu(config128());
    const auto prog = assembler::assemble("nop\nnop\nnop\n"
                                          "target: halt\n");
    ASSERT_TRUE(prog.ok());
    cpu.mem().loadImage(0, prog.words);
    const auto cycles = runUntilPc(cpu, prog.addressOf("target"), 100);
    ASSERT_TRUE(cycles.has_value());
    EXPECT_EQ(*cycles, 3u);
}

TEST(ContextLoader, RunUntilPcTimesOut)
{
    Cpu cpu(config128());
    const auto prog = assembler::assemble("loop: b loop\n");
    ASSERT_TRUE(prog.ok());
    cpu.mem().loadImage(0, prog.words);
    EXPECT_FALSE(runUntilPc(cpu, 50, 100).has_value());
}

TEST(MachineScheduler, WiresNextRrmRing)
{
    Cpu cpu(config128());
    ContextAllocator allocator(128, 5, 8);
    MachineScheduler scheduler(cpu, allocator);

    MachineScheduler::ThreadSpec spec;
    spec.entryPc = 100;
    spec.usedRegs = 8;
    const auto a = scheduler.createThread(spec);
    const auto b = scheduler.createThread(spec);
    const auto c = scheduler.createThread(spec);
    ASSERT_TRUE(a && b && c);
    scheduler.start();

    // r2 of each context holds the next context's mask, circularly.
    EXPECT_EQ(peekContextReg(cpu, a->rrm, 2), b->rrm);
    EXPECT_EQ(peekContextReg(cpu, b->rrm, 2), c->rrm);
    EXPECT_EQ(peekContextReg(cpu, c->rrm, 2), a->rrm);
    // The machine starts in the first context, at its entry PC.
    EXPECT_EQ(cpu.rrm(), a->rrm);
    EXPECT_EQ(cpu.pc(), 100u);
    EXPECT_EQ(scheduler.ring().size(), 3u);
}

TEST(MachineScheduler, AllocationFailureReported)
{
    Cpu cpu(config128());
    ContextAllocator allocator(128, 5, 8);
    MachineScheduler scheduler(cpu, allocator);

    MachineScheduler::ThreadSpec spec;
    spec.entryPc = 0;
    spec.usedRegs = 32;
    // 128 / 32 = 4 contexts fit.
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(scheduler.createThread(spec).has_value());
    EXPECT_FALSE(scheduler.createThread(spec).has_value());
}

TEST(MachineSchedulerDeath, StartWithoutThreadsPanics)
{
    Cpu cpu(config128());
    ContextAllocator allocator(128, 5, 8);
    MachineScheduler scheduler(cpu, allocator);
    EXPECT_DEATH(scheduler.start(), "no threads");
}

} // namespace
} // namespace rr::runtime
