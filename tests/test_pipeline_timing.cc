/**
 * @file
 * Tests for the optional pipeline timing model: taken-branch
 * bubbles, load-use stalls, LDRRM decode stalls, and the headline
 * check — with classic 5-stage penalties, the Figure 3 context
 * switch costs ~11 cycles, matching the APRIL measurement the paper
 * cites against its 4-6 cycle ideal.
 */

#include <gtest/gtest.h>

#include "assembler/assembler.hh"
#include "machine/cpu.hh"
#include "runtime/asm_routines.hh"
#include "runtime/context_allocator.hh"
#include "runtime/context_loader.hh"

namespace rr::machine {
namespace {

CpuConfig
timedConfig()
{
    CpuConfig config;
    config.numRegs = 128;
    config.operandWidth = 6;
    config.memWords = 1u << 14;
    config.timing = PipelineTimingConfig::classicFiveStage();
    return config;
}

void
load(Cpu &cpu, const std::string &source)
{
    const auto prog = assembler::assemble(source);
    ASSERT_TRUE(prog.ok());
    cpu.mem().loadImage(prog.base, prog.words);
    cpu.setPc(prog.base);
}

TEST(PipelineTiming, DisabledByDefault)
{
    CpuConfig config = timedConfig();
    config.timing = PipelineTimingConfig{};
    EXPECT_FALSE(config.timing.enabled());
    Cpu cpu(config);
    load(cpu, "ld r1, 100(r2)\n"
              "add r3, r1, r1\n" // load-use, but timing off
              "halt\n");
    cpu.run(10);
    EXPECT_EQ(cpu.cycles(), 3u);
    EXPECT_EQ(cpu.timingStats().total(), 0u);
}

TEST(PipelineTiming, LoadUseStall)
{
    Cpu cpu(timedConfig());
    load(cpu, "ld r1, 100(r2)\n"
              "add r3, r1, r1\n" // depends on the load: +1
              "halt\n");
    cpu.run(10);
    EXPECT_EQ(cpu.timingStats().loadUseStalls, 1u);
    EXPECT_EQ(cpu.cycles(), 4u);
}

TEST(PipelineTiming, IndependentInstructionAfterLoadNoStall)
{
    Cpu cpu(timedConfig());
    load(cpu, "ld r1, 100(r2)\n"
              "add r3, r4, r5\n" // independent
              "add r6, r1, r1\n" // one cycle later: forwarded
              "halt\n");
    cpu.run(10);
    EXPECT_EQ(cpu.timingStats().loadUseStalls, 0u);
    EXPECT_EQ(cpu.cycles(), 4u);
}

TEST(PipelineTiming, TakenBranchPenalty)
{
    Cpu cpu(timedConfig());
    load(cpu, "beq r1, r2, target\n" // taken (both zero): +2
              "nop\n"
              "target: halt\n");
    cpu.run(10);
    EXPECT_EQ(cpu.timingStats().branchStalls, 2u);
    EXPECT_EQ(cpu.cycles(), 2u + 2u); // beq + halt + 2 bubbles
}

TEST(PipelineTiming, NotTakenBranchIsFree)
{
    Cpu cpu(timedConfig());
    cpu.regs().write(1, 1);
    load(cpu, "beq r1, r2, 2\n" // not taken (1 != 0)
              "halt\n");
    cpu.run(10);
    EXPECT_EQ(cpu.timingStats().branchStalls, 0u);
}

TEST(PipelineTiming, JumpsAndFaultRedirectsPay)
{
    Cpu cpu(timedConfig());
    cpu.setFaultHook([](Cpu &c, uint32_t) { c.setPc(4); });
    load(cpu, "jal r1, 2\n" // +2
              "nop\n"
              "fault 0\n" // redirected by the hook: +2
              "nop\n"
              "halt\n");
    cpu.run(10);
    EXPECT_EQ(cpu.timingStats().branchStalls, 4u);
}

TEST(PipelineTiming, LdrrmPenaltyConfigurable)
{
    CpuConfig config = timedConfig();
    config.timing.ldrrmPenalty = 3; // no-delay-slot architecture
    Cpu cpu(config);
    cpu.regs().write(2, 0);
    load(cpu, "ldrrm r2\nnop\nhalt\n");
    cpu.run(10);
    EXPECT_EQ(cpu.timingStats().ldrrmStalls, 3u);
}

// The paper cites APRIL's 11-cycle context switch; our Figure 3 path
// (jal + ldrrm + 2 movs + jmp) with classic 5-stage penalties pays
// the two redirects (jal, jmp) plus the loop's own taken branch:
// switch cost rises from ~5 ideal to ~11 cycles.
TEST(PipelineTiming, Figure3SwitchCostsElevenCyclesOnRealPipeline)
{
    Cpu cpu(timedConfig());
    const auto prog =
        assembler::assemble(runtime::roundRobinDemoSource());
    ASSERT_TRUE(prog.ok());
    cpu.mem().loadImage(prog.base, prog.words);

    runtime::ContextAllocator allocator(128, 6, 16);
    runtime::MachineScheduler scheduler(cpu, allocator);
    for (int i = 0; i < 2; ++i) {
        runtime::MachineScheduler::ThreadSpec spec;
        spec.entryPc = prog.addressOf("thread_body");
        spec.usedRegs = 10;
        const auto context = scheduler.createThread(spec);
        ASSERT_TRUE(context.has_value());
        runtime::pokeContextReg(cpu, context->rrm, 4, 0);
        runtime::pokeContextReg(cpu, context->rrm, 6, 1);
        runtime::pokeContextReg(cpu, context->rrm, 7, 0);
        runtime::pokeContextReg(cpu, context->rrm, 9, 0x2000);
    }
    cpu.mem().write(0x2000, 1000);
    scheduler.start();

    uint64_t body_visits = 0;
    const uint32_t body = prog.addressOf("thread_body");
    cpu.setTraceHook([&](const TraceEntry &entry) {
        if (entry.pc == body)
            ++body_visits;
    });
    cpu.run(6000);
    ASSERT_GE(body_visits, 100u);

    // Per visit: sub + add + bne(taken, +2) + jal(+2) + yield(4) +
    // jmp(+2) = 8 ideal + 6 bubbles = 14; minus the 3 loop-body
    // instructions leaves ~11 cycles of switch machinery.
    const double per_visit = static_cast<double>(cpu.cycles()) /
                             static_cast<double>(body_visits);
    const double switch_cost = per_visit - 3.0;
    EXPECT_GE(switch_cost, 9.0);
    EXPECT_LE(switch_cost, 12.0);
}

} // namespace
} // namespace rr::machine
