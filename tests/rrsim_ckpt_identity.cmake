# End-to-end rr.ckpt.v1 contract for rrsim (docs/CKPT.md): for every
# example program, a run that snapshots, "dies", and resumes in a
# fresh process must retrace the straight run exactly — the
# concatenated traces are byte-identical modulo the per-file
# "rr.trace.v1" header line, and the final-state JSON matches modulo
# the input path and per-process trace-event count. --rewind N must
# re-emit exactly the straight trace's last N events, and hostile
# checkpoint files must be rejected with exit 2 and an "rr.ckpt"
# message, never a crash. Invoked by ctest; see tests/CMakeLists.txt.

foreach(var RRSIM ASM_DIR WORK_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "${var} is required")
    endif()
endforeach()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

# Drop the "rr.trace.v1" schema header (the first line) so trace
# bodies from separate processes can be concatenated and compared.
function(trace_body in out)
    file(READ ${in} content)
    string(FIND "${content}" "\n" header_end)
    if(header_end GREATER -1)
        math(EXPR body_start "${header_end} + 1")
        string(SUBSTRING "${content}" ${body_start} -1 content)
    endif()
    file(WRITE ${out} "${content}")
endfunction()

# Blank out the fields that legitimately differ between a straight
# run and a resumed one: the input path (program vs checkpoint) and
# the number of trace events this process emitted.
function(normalized_state in out)
    file(READ ${in} content)
    string(REGEX REPLACE "\"input\":\"[^\"]*\"" "\"input\":\"-\""
        content "${content}")
    string(REGEX REPLACE "\"traceEvents\":[0-9]+" "\"traceEvents\":0"
        content "${content}")
    file(WRITE ${out} "${content}")
endfunction()

function(must_match a b what)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files ${a} ${b}
        RESULT_VARIABLE diff)
    if(NOT diff EQUAL 0)
        message(FATAL_ERROR "${what}: ${a} and ${b} differ")
    endif()
endfunction()

file(GLOB programs ${ASM_DIR}/*.s)
list(SORT programs)
if(programs STREQUAL "")
    message(FATAL_ERROR "no example programs under ${ASM_DIR}")
endif()

foreach(program ${programs})
    get_filename_component(name ${program} NAME_WE)
    set(work ${WORK_DIR}/${name})

    # The oracle: one uninterrupted run.
    execute_process(
        COMMAND ${RRSIM} --trace=${work}.straight.jsonl --json
            ${program}
        OUTPUT_FILE ${work}.straight.json
        RESULT_VARIABLE status)
    if(NOT status EQUAL 0)
        message(FATAL_ERROR "rrsim failed on ${name} (straight run)")
    endif()
    trace_body(${work}.straight.jsonl ${work}.straight.body)
    normalized_state(${work}.straight.json ${work}.straight.norm)

    # Snapshot at several boundaries (including past-the-end for the
    # short programs), kill the process, resume fresh: the head and
    # tail traces must concatenate to the straight trace and the
    # final states must agree.
    foreach(split 7 64 100000)
        set(leg ${work}.s${split})
        execute_process(
            COMMAND ${RRSIM} --steps ${split}
                --checkpoint ${leg}.ckpt
                --trace=${leg}.head.jsonl --quiet ${program}
            RESULT_VARIABLE status)
        if(NOT status EQUAL 0)
            message(FATAL_ERROR
                "rrsim failed on ${name} (head, split ${split})")
        endif()
        execute_process(
            COMMAND ${RRSIM} --resume ${leg}.ckpt
                --trace=${leg}.tail.jsonl --json
            OUTPUT_FILE ${leg}.json
            RESULT_VARIABLE status)
        if(NOT status EQUAL 0)
            message(FATAL_ERROR
                "rrsim failed on ${name} (resume, split ${split})")
        endif()
        trace_body(${leg}.head.jsonl ${leg}.head.body)
        trace_body(${leg}.tail.jsonl ${leg}.tail.body)
        file(READ ${leg}.head.body head)
        file(READ ${leg}.tail.body tail)
        file(WRITE ${leg}.concat.body "${head}${tail}")
        must_match(${leg}.concat.body ${work}.straight.body
            "${name} split ${split}: head+tail trace vs straight")
        normalized_state(${leg}.json ${leg}.norm)
        must_match(${leg}.norm ${work}.straight.norm
            "${name} split ${split}: resumed final state")
    endforeach()

    # Flight-recorder rewind: the re-executed suffix must be exactly
    # the straight trace's last N events, ending in the same state.
    set(rewind 25)
    execute_process(
        COMMAND ${RRSIM} --rewind ${rewind}
            --trace=${work}.rewind.jsonl --json ${program}
        OUTPUT_FILE ${work}.rewind.json
        RESULT_VARIABLE status)
    if(NOT status EQUAL 0)
        message(FATAL_ERROR "rrsim failed on ${name} (--rewind)")
    endif()
    trace_body(${work}.rewind.jsonl ${work}.rewind.body)
    file(STRINGS ${work}.straight.body straight_lines)
    list(LENGTH straight_lines total)
    if(total LESS rewind)
        set(keep ${total})
    else()
        set(keep ${rewind})
    endif()
    math(EXPR from "${total} - ${keep}")
    list(SUBLIST straight_lines ${from} ${keep} suffix_lines)
    if(keep EQUAL 0)
        file(WRITE ${work}.suffix.body "")
    else()
        list(JOIN suffix_lines "\n" suffix)
        file(WRITE ${work}.suffix.body "${suffix}\n")
    endif()
    must_match(${work}.rewind.body ${work}.suffix.body
        "${name}: --rewind ${rewind} trace vs straight suffix")
    normalized_state(${work}.rewind.json ${work}.rewind.norm)
    must_match(${work}.rewind.norm ${work}.straight.norm
        "${name}: --rewind final state")
endforeach()

# --rewind edge cases. The flight recorder snapshots every 1024
# instructions into a 64-deep ring, so two rewind targets need their
# own legs: N larger than the whole run, and N landing *before* the
# oldest surviving ring snapshot (only reachable once the ring has
# evicted, i.e. past 65 * 1024 executed instructions). Both must
# replay from the start and exit 0 — never fail, never clamp wrong.
function(must_match_suffix full part what)
    file(READ ${full} full_content)
    file(READ ${part} part_content)
    string(LENGTH "${full_content}" full_len)
    string(LENGTH "${part_content}" part_len)
    if(part_len GREATER full_len)
        message(FATAL_ERROR "${what}: suffix longer than the trace")
    endif()
    math(EXPR from "${full_len} - ${part_len}")
    string(SUBSTRING "${full_content}" ${from} -1 tail)
    if(NOT tail STREQUAL part_content)
        message(FATAL_ERROR "${what}: ${part} is not a suffix of "
            "${full}")
    endif()
endfunction()

# A two-instruction infinite loop, bounded by --steps: cheap to
# execute well past the point where the snapshot ring starts
# evicting its oldest entries.
set(longloop ${WORK_DIR}/longloop.s)
file(WRITE ${longloop} "entry:
loop:
    addi  r1, r1, 1
    beq   r0, r0, loop
")
set(long_steps 67000)
execute_process(
    COMMAND ${RRSIM} --steps ${long_steps}
        --trace=${WORK_DIR}/longloop.straight.jsonl --json
        ${longloop}
    OUTPUT_FILE ${WORK_DIR}/longloop.straight.json
    RESULT_VARIABLE status)
if(NOT status EQUAL 0)
    message(FATAL_ERROR "rrsim failed on longloop (straight run)")
endif()
trace_body(${WORK_DIR}/longloop.straight.jsonl
    ${WORK_DIR}/longloop.straight.body)
normalized_state(${WORK_DIR}/longloop.straight.json
    ${WORK_DIR}/longloop.straight.norm)

# Leg 1: N > executed instructions. The whole run is re-executed
# from the initial state and the full trace re-emitted.
# Leg 2: N inside the run but before the oldest ring snapshot
# (target 1000 < the post-eviction ring floor of 2048): the recorder
# must fall back to the initial snapshot and replay from the start.
foreach(rewind 100000 66000)
    set(leg ${WORK_DIR}/longloop.r${rewind})
    execute_process(
        COMMAND ${RRSIM} --steps ${long_steps} --rewind ${rewind}
            --trace=${leg}.jsonl --json ${longloop}
        OUTPUT_FILE ${leg}.json
        RESULT_VARIABLE status)
    if(NOT status EQUAL 0)
        message(FATAL_ERROR
            "rrsim --rewind ${rewind} on longloop: expected exit 0, "
            "got '${status}'")
    endif()
    trace_body(${leg}.jsonl ${leg}.body)
    must_match_suffix(${WORK_DIR}/longloop.straight.body ${leg}.body
        "longloop --rewind ${rewind}: trace vs straight suffix")
    normalized_state(${leg}.json ${leg}.norm)
    must_match(${leg}.norm ${WORK_DIR}/longloop.straight.norm
        "longloop --rewind ${rewind}: final state")
endforeach()

# Leg 1 specifically promises the *entire* trace back, not just some
# suffix: with N past the end the replay starts at instruction 0.
must_match(${WORK_DIR}/longloop.r100000.body
    ${WORK_DIR}/longloop.straight.body
    "longloop --rewind past the end: full trace re-emitted")

# And on a program that halts almost immediately, an oversized N
# must still exit 0 with the complete trace.
list(GET programs 0 first_short)
get_filename_component(short_name ${first_short} NAME_WE)
set(leg ${WORK_DIR}/${short_name}.rbig)
execute_process(
    COMMAND ${RRSIM} --rewind 1000000 --trace=${leg}.jsonl --json
        ${first_short}
    OUTPUT_FILE ${leg}.json
    RESULT_VARIABLE status)
if(NOT status EQUAL 0)
    message(FATAL_ERROR
        "rrsim --rewind 1000000 on ${short_name}: expected exit 0, "
        "got '${status}'")
endif()
trace_body(${leg}.jsonl ${leg}.body)
must_match(${leg}.body ${WORK_DIR}/${short_name}.straight.body
    "${short_name} --rewind 1000000: full trace re-emitted")
normalized_state(${leg}.json ${leg}.norm)
must_match(${leg}.norm ${WORK_DIR}/${short_name}.straight.norm
    "${short_name} --rewind 1000000: final state")

# Hostile checkpoints: a text file, an empty file, and a valid
# document with trailing garbage must all be rejected with exit 2
# and an rr.ckpt error — never a crash or an abort.
list(GET programs 0 first_program)
set(valid ${WORK_DIR}/hostile.valid.ckpt)
execute_process(
    COMMAND ${RRSIM} --steps 7 --checkpoint ${valid} --quiet
        ${first_program}
    RESULT_VARIABLE status)
if(NOT status EQUAL 0)
    message(FATAL_ERROR "could not produce a hostile-test checkpoint")
endif()

file(WRITE ${WORK_DIR}/hostile.empty.ckpt "")
configure_file(${valid} ${WORK_DIR}/hostile.trailing.ckpt COPYONLY)
file(APPEND ${WORK_DIR}/hostile.trailing.ckpt "trailing garbage")

foreach(hostile ${first_program} ${WORK_DIR}/hostile.empty.ckpt
        ${WORK_DIR}/hostile.trailing.ckpt)
    execute_process(
        COMMAND ${RRSIM} --resume ${hostile} --quiet
        RESULT_VARIABLE status
        ERROR_VARIABLE stderr)
    if(NOT status EQUAL 2)
        message(FATAL_ERROR
            "--resume ${hostile}: expected exit 2, got '${status}'")
    endif()
    if(NOT stderr MATCHES "rr\\.ckpt")
        message(FATAL_ERROR
            "--resume ${hostile}: stderr lacks an rr.ckpt error: "
            "${stderr}")
    endif()
endforeach()
