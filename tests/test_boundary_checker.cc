/**
 * @file
 * Tests for the Section 2.4 static context-boundary checker.
 */

#include <gtest/gtest.h>

#include "assembler/assembler.hh"
#include "checker/boundary_checker.hh"
#include "runtime/asm_routines.hh"

namespace rr::checker {
namespace {

assembler::Program
prog(const std::string &source)
{
    assembler::Program p = assembler::assemble(source);
    EXPECT_TRUE(p.ok());
    return p;
}

TEST(BoundaryChecker, CleanProgramPasses)
{
    const auto p = prog("add r1, r2, r3\n"
                        "ld r4, 0(r5)\n"
                        "beq r6, r7, 0\n"
                        "halt\n");
    EXPECT_TRUE(checkProgram(p, 8).empty());
}

TEST(BoundaryChecker, FlagsEachOperandSlot)
{
    const auto p = prog("add r9, r1, r2\n"  // rd out of 8
                        "add r1, r9, r2\n"  // rs1 out
                        "add r1, r2, r9\n"); // rs2 out
    const auto violations = checkProgram(p, 8);
    ASSERT_EQ(violations.size(), 3u);
    EXPECT_EQ(violations[0].operand, OperandKind::Rd);
    EXPECT_EQ(violations[1].operand, OperandKind::Rs1);
    EXPECT_EQ(violations[2].operand, OperandKind::Rs2);
    for (const auto &v : violations) {
        EXPECT_EQ(v.reg, 9u);
        EXPECT_EQ(v.limit, 8u);
    }
}

TEST(BoundaryChecker, ReportsAddressAndLine)
{
    const auto p = prog("nop\n"
                        "nop\n"
                        "addi r12, r1, 0\n");
    const auto violations = checkProgram(p, 8);
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations[0].address, 2u);
    EXPECT_EQ(violations[0].line, 3);
    EXPECT_NE(violations[0].str().find("r12"), std::string::npos);
}

TEST(BoundaryChecker, BFormatHasNoRd)
{
    // B-format's slot A is rs1; a branch on r9 must report rs1, and
    // exactly once per offending operand.
    const auto p = prog("beq r9, r1, 0\n");
    const auto violations = checkProgram(p, 8);
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations[0].operand, OperandKind::Rs1);
}

TEST(BoundaryChecker, DataWordsIgnoredByDefault)
{
    const auto p = prog(".word 0xffffffff\n"
                        "halt\n");
    EXPECT_TRUE(checkProgram(p, 8).empty());

    CheckOptions options;
    options.flagInvalidWords = true;
    EXPECT_EQ(checkProgram(p, 8, options).size(), 1u);
}

TEST(BoundaryChecker, MultiRrmBankBitExcused)
{
    // Operand 32+5 = r37: illegal in a size-8 single-bank context,
    // legal when the top bit selects bank 1 (offset 5).
    const auto p = prog("add r37, r1, r2\n");
    EXPECT_EQ(checkProgram(p, 8).size(), 1u);

    CheckOptions options;
    options.multiRrmBanks = 2;
    options.operandWidth = 6;
    EXPECT_TRUE(checkProgram(p, 8, options).empty());
}

TEST(BoundaryChecker, RegionsCheckIndependently)
{
    const auto p = prog("a: addi r10, r1, 0\n" // fine in 16, bad in 8
                        "b: addi r10, r1, 0\n");
    const std::vector<Region> regions = {{0, 1, 16}, {1, 2, 8}};
    const auto violations = checkRegions(p, regions);
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations[0].address, 1u);
    EXPECT_EQ(violations[0].limit, 8u);
}

TEST(BoundaryChecker, OverlappingRegionsCheckUnderEachLimit)
{
    // Regions may overlap (e.g. a shared library mapped into two
    // threads' code ranges); an address inside two regions is checked
    // under each declared size independently.
    const auto p = prog("addi r10, r1, 0\n");
    const std::vector<Region> regions = {{0, 1, 8}, {0, 1, 4}};
    const auto violations = checkRegions(p, regions);
    ASSERT_EQ(violations.size(), 2u);
    EXPECT_EQ(violations[0].limit, 8u);
    EXPECT_EQ(violations[1].limit, 4u);

    // A permissive overlap does not excuse the strict one.
    const std::vector<Region> mixed = {{0, 1, 16}, {0, 1, 8}};
    EXPECT_EQ(checkRegions(p, mixed).size(), 1u);
}

TEST(BoundaryChecker, MultiRrmBankNonDefaultOperandWidth)
{
    // With w = 5 and two banks, only the low 4 bits are the offset:
    // r21 = 0b1.0101 is bank 1, offset 5 (fine in a size-8 context);
    // r29 = 0b1.1101 is bank 1, offset 13 (violates it).
    CheckOptions options;
    options.multiRrmBanks = 2;
    options.operandWidth = 5;

    EXPECT_TRUE(
        checkProgram(prog("add r21, r1, r2\n"), 8, options).empty());

    const auto violations =
        checkProgram(prog("add r29, r1, r2\n"), 8, options);
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations[0].reg, 29u);

    // Four banks on the full 6-bit field: r37 = 0b10.0101 is bank 2,
    // offset 5.
    options.multiRrmBanks = 4;
    options.operandWidth = 6;
    EXPECT_TRUE(
        checkProgram(prog("add r37, r1, r2\n"), 8, options).empty());
}

TEST(BoundaryChecker, RegionsFlagInvalidWords)
{
    const auto p = prog("halt\n"
                        ".word 0xffffffff\n"
                        "halt\n");
    CheckOptions options;
    options.flagInvalidWords = true;

    // The data word sits inside the region: flagged, carrying the
    // region's declared size.
    const std::vector<Region> covering = {{0, 3, 8}};
    const auto violations = checkRegions(p, covering, options);
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations[0].address, 1u);
    EXPECT_EQ(violations[0].limit, 8u);

    // Outside every region, data words stay unexamined even with the
    // flag on.
    const std::vector<Region> around = {{0, 1, 8}, {2, 3, 8}};
    EXPECT_TRUE(checkRegions(p, around, options).empty());
}

TEST(BoundaryChecker, RegionsOutsideImageSkipped)
{
    const auto p = prog("halt\n");
    const std::vector<Region> regions = {{0, 100, 4}};
    EXPECT_TRUE(checkRegions(p, regions).empty());
}

// The paper's own runtime code must satisfy its register
// conventions: the yield routine touches only r0..r2 and passes a
// 4-register context check; the allocator uses r4..r15 and fits a
// 16-register scheduler context.
TEST(BoundaryChecker, Figure3YieldFitsMinimalContext)
{
    const auto p = prog(runtime::roundRobinDemoSource());
    const uint32_t yield = p.addressOf("yield");
    const std::vector<Region> regions = {{yield, yield + 4, 4}};
    EXPECT_TRUE(checkRegions(p, regions).empty());
}

TEST(BoundaryChecker, AppendixAAllocatorFitsSchedulerContext)
{
    const auto p = prog(runtime::appendixAAllocatorSource());
    EXPECT_TRUE(checkProgram(p, 16).empty());
    // ...but it would violate an 8-register context.
    EXPECT_FALSE(checkProgram(p, 8).empty());
}

TEST(BoundaryChecker, OperandKindNames)
{
    EXPECT_STREQ(operandKindName(OperandKind::Rd), "rd");
    EXPECT_STREQ(operandKindName(OperandKind::Rs1), "rs1");
    EXPECT_STREQ(operandKindName(OperandKind::Rs2), "rs2");
}

} // namespace
} // namespace rr::checker
