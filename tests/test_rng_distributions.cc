/**
 * @file
 * Tests for the deterministic RNG and the workload distributions,
 * including statistical checks that sample means match the paper's
 * configured parameters (geometric run lengths, exponential
 * latencies, uniform context sizes).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "base/distributions.hh"
#include "base/rng.hh"
#include "base/stats.hh"

namespace rr {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.nextDouble();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, RangeInclusiveBounds)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 20000; ++i) {
        const uint64_t x = rng.nextRange(6, 24);
        EXPECT_GE(x, 6u);
        EXPECT_LE(x, 24u);
        saw_lo |= x == 6;
        saw_hi |= x == 24;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, SplitStreamsAreIndependentlySeeded)
{
    Rng parent(5);
    Rng a = parent.split();
    Rng b = parent.split();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 2);
}

/** Sample @p n values and return the mean. */
double
sampleMean(const Distribution &dist, uint64_t seed, int n)
{
    Rng rng(seed);
    RunningStats stats;
    for (int i = 0; i < n; ++i)
        stats.add(static_cast<double>(dist.sample(rng)));
    return stats.mean();
}

TEST(Distributions, ConstantIsConstant)
{
    ConstantDist dist(17);
    Rng rng(1);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(dist.sample(rng), 17u);
    EXPECT_DOUBLE_EQ(dist.mean(), 17.0);
}

// The paper's run lengths: geometric with mean R, minimum 1.
TEST(Distributions, GeometricMeanMatches)
{
    for (const double mean : {8.0, 32.0, 128.0, 512.0}) {
        GeometricDist dist(mean);
        const double got = sampleMean(dist, 11, 200000);
        EXPECT_NEAR(got, mean, mean * 0.03) << "mean=" << mean;
    }
}

TEST(Distributions, GeometricMinimumIsOne)
{
    GeometricDist dist(2.0);
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GE(dist.sample(rng), 1u);
}

// The paper's synchronization waits: exponential with mean L.
TEST(Distributions, ExponentialMeanMatches)
{
    for (const double mean : {64.0, 500.0, 4000.0}) {
        ExponentialDist dist(mean);
        const double got = sampleMean(dist, 13, 200000);
        EXPECT_NEAR(got, mean, mean * 0.03) << "mean=" << mean;
    }
}

// The paper's context sizes: C uniform on [6, 24], mean 15.
TEST(Distributions, UniformIntMeanAndBounds)
{
    UniformIntDist dist(6, 24);
    Rng rng(17);
    RunningStats stats;
    for (int i = 0; i < 100000; ++i) {
        const uint64_t x = dist.sample(rng);
        ASSERT_GE(x, 6u);
        ASSERT_LE(x, 24u);
        stats.add(static_cast<double>(x));
    }
    EXPECT_NEAR(stats.mean(), 15.0, 0.1);
}

TEST(Distributions, GeometricVarianceRoughlyMatches)
{
    // Var of geometric(mean m) is (1-p)/p^2 with p = 1/m.
    const double mean = 32.0;
    GeometricDist dist(mean);
    Rng rng(23);
    RunningStats stats;
    for (int i = 0; i < 200000; ++i)
        stats.add(static_cast<double>(dist.sample(rng)));
    const double p = 1.0 / mean;
    const double expected_var = (1.0 - p) / (p * p);
    EXPECT_NEAR(stats.variance(), expected_var, expected_var * 0.05);
}

TEST(Distributions, Describe)
{
    EXPECT_EQ(ConstantDist(5).describe(), "constant(5)");
    EXPECT_EQ(GeometricDist(32).describe(), "geometric(mean=32)");
    EXPECT_EQ(ExponentialDist(64).describe(), "exponential(mean=64)");
    EXPECT_EQ(UniformIntDist(6, 24).describe(), "uniform[6, 24]");
}

TEST(Distributions, Factories)
{
    Rng rng(1);
    EXPECT_EQ(makeConstant(3)->sample(rng), 3u);
    EXPECT_GE(makeGeometric(4.0)->sample(rng), 1u);
    EXPECT_GE(makeExponential(4.0)->sample(rng), 1u);
    const uint64_t u = makeUniformInt(2, 9)->sample(rng);
    EXPECT_GE(u, 2u);
    EXPECT_LE(u, 9u);
}

} // namespace
} // namespace rr
