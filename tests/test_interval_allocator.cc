/**
 * @file
 * Tests for the first-fit interval allocator backing the Am29000
 * ADD-relocation comparison (Section 4): exact sizes, coalescing,
 * external fragmentation, and a randomized non-overlap property.
 */

#include <gtest/gtest.h>

#include <vector>

#include "base/rng.hh"
#include "runtime/interval_allocator.hh"

namespace rr::runtime {
namespace {

TEST(IntervalAllocator, ExactSizes)
{
    IntervalAllocator alloc(128);
    const auto a = alloc.allocate(17); // no power-of-two rounding
    ASSERT_TRUE(a);
    EXPECT_EQ(a->size, 17u);
    EXPECT_EQ(a->base, 0u);
    EXPECT_EQ(alloc.freeRegs(), 111u);
}

TEST(IntervalAllocator, FirstFit)
{
    IntervalAllocator alloc(100);
    const auto a = alloc.allocate(30);
    const auto b = alloc.allocate(30);
    const auto c = alloc.allocate(30);
    ASSERT_TRUE(a && b && c);
    alloc.release(*b); // hole [30, 60)
    const auto d = alloc.allocate(10);
    ASSERT_TRUE(d);
    EXPECT_EQ(d->base, 30u); // lands in the hole
}

TEST(IntervalAllocator, CoalescingRestoresFullBlock)
{
    IntervalAllocator alloc(64);
    const auto a = alloc.allocate(20);
    const auto b = alloc.allocate(20);
    const auto c = alloc.allocate(24);
    ASSERT_TRUE(a && b && c);
    EXPECT_EQ(alloc.freeRegs(), 0u);
    // Release out of order; neighbours must coalesce.
    alloc.release(*a);
    alloc.release(*c);
    EXPECT_EQ(alloc.freeBlockCount(), 2u);
    alloc.release(*b);
    EXPECT_EQ(alloc.freeBlockCount(), 1u);
    EXPECT_EQ(alloc.largestFreeBlock(), 64u);
}

TEST(IntervalAllocator, ExternalFragmentation)
{
    IntervalAllocator alloc(60);
    const auto a = alloc.allocate(20);
    const auto b = alloc.allocate(20);
    const auto c = alloc.allocate(20);
    ASSERT_TRUE(a && b && c);
    alloc.release(*a);
    alloc.release(*c);
    // 40 registers free, but the largest hole is 20.
    EXPECT_EQ(alloc.freeRegs(), 40u);
    EXPECT_EQ(alloc.largestFreeBlock(), 20u);
    EXPECT_FALSE(alloc.allocate(21).has_value());
    (void)b;
}

TEST(IntervalAllocatorDeath, DoubleFreePanics)
{
    IntervalAllocator alloc(32);
    const auto a = alloc.allocate(8);
    ASSERT_TRUE(a);
    alloc.release(*a);
    EXPECT_DEATH(alloc.release(*a), "double free|overlap");
}

TEST(IntervalAllocator, RandomizedNonOverlapProperty)
{
    IntervalAllocator alloc(256);
    Rng rng(99);
    std::vector<Interval> live;
    std::vector<bool> owned(256, false);

    for (int step = 0; step < 3000; ++step) {
        if (live.empty() || rng.nextRange(0, 99) < 55) {
            const unsigned size =
                static_cast<unsigned>(rng.nextRange(1, 40));
            const auto interval = alloc.allocate(size);
            if (!interval)
                continue;
            ASSERT_EQ(interval->size, size);
            for (unsigned r = interval->base;
                 r < interval->base + interval->size; ++r) {
                ASSERT_FALSE(owned[r]);
                owned[r] = true;
            }
            live.push_back(*interval);
        } else {
            const size_t idx = rng.nextRange(0, live.size() - 1);
            const Interval interval = live[idx];
            live[idx] = live.back();
            live.pop_back();
            alloc.release(interval);
            for (unsigned r = interval.base;
                 r < interval.base + interval.size; ++r) {
                owned[r] = false;
            }
        }
        unsigned owned_count = 0;
        for (const bool o : owned)
            owned_count += o ? 1 : 0;
        ASSERT_EQ(alloc.freeRegs(), 256u - owned_count);
    }

    for (const auto &interval : live)
        alloc.release(interval);
    EXPECT_EQ(alloc.freeRegs(), 256u);
    EXPECT_EQ(alloc.freeBlockCount(), 1u);
}

} // namespace
} // namespace rr::runtime
