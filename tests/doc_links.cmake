# Documentation link checker (the doc_links_resolve ctest, also run
# as a CI step): every relative markdown link and every backticked
# *.md path referenced from README.md or docs/*.md must resolve to a
# real file in the repository. External (http/mailto) and in-page
# (#anchor) targets are out of scope.
#
# Usage: cmake -DSOURCE_DIR=<repo root> -P tests/doc_links.cmake

if(NOT DEFINED SOURCE_DIR)
    message(FATAL_ERROR "doc_links.cmake requires -DSOURCE_DIR=...")
endif()

file(GLOB DOC_FILES "${SOURCE_DIR}/docs/*.md")
list(APPEND DOC_FILES "${SOURCE_DIR}/README.md")
list(SORT DOC_FILES)

set(BROKEN "")
set(CHECKED 0)

foreach(doc IN LISTS DOC_FILES)
    get_filename_component(doc_dir "${doc}" DIRECTORY)
    file(READ "${doc}" text)
    file(RELATIVE_PATH doc_name "${SOURCE_DIR}" "${doc}")
    # CMake cannot hold list elements with unbalanced square
    # brackets (every "](x)" match has one), so rewrite the link
    # anchor to a bracket-free sentinel before matching. Backslashes
    # (ASCII diagrams) corrupt lists the same way; links never
    # legitimately contain either.
    string(REPLACE "\\" "" text "${text}")
    string(REPLACE "](" "@link@(" text "${text}")

    # [label](target) markdown links, via the sentinel.
    string(REGEX MATCHALL "@link@\\(([^)]+)\\)" links "${text}")
    # `path/to/file.md` backticked path references.
    string(REGEX MATCHALL "`[^`\r\n ]+\\.md`" refs "${text}")

    foreach(match IN LISTS links refs)
        string(REGEX REPLACE "^@link@\\((.*)\\)$" "\\1" target
            "${match}")
        string(REGEX REPLACE "^`(.*)`$" "\\1" target "${target}")
        if(target MATCHES "^(https?|mailto):" OR
           target MATCHES "^#" OR target MATCHES "[*]")
            continue()
        endif()
        string(REGEX REPLACE "#[^#]*$" "" target "${target}")
        if(target STREQUAL "")
            continue()
        endif()
        math(EXPR CHECKED "${CHECKED} + 1")
        # A target may be spelled relative to the document or to the
        # repository root; either resolution counts.
        if(NOT EXISTS "${doc_dir}/${target}" AND
           NOT EXISTS "${SOURCE_DIR}/${target}")
            list(APPEND BROKEN "${doc_name}: ${target}")
        endif()
    endforeach()
endforeach()

if(BROKEN)
    list(JOIN BROKEN "\n  " listing)
    message(FATAL_ERROR "dead documentation links:\n  ${listing}")
endif()
message(STATUS
    "doc links: ${CHECKED} references resolved across README.md "
    "and docs/")
