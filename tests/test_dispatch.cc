/**
 * @file
 * Threaded/fused superblock dispatch (docs/PERF.md): the run() fast
 * path must be architecturally invisible at *every* observation
 * point, not just at halt. These tests pin the properties the
 * corpus-level identity tests cannot see directly:
 *
 *  - a step budget that expires between the two halves of a fused
 *    macro-op pair retires exactly the same instruction prefix as
 *    switch dispatch, for every possible split point;
 *  - step() and run() can be interleaved freely;
 *  - host writes demote superblocks to unverified and the next
 *    lookup re-proves them against memory (cache kept) or flushes
 *    (code actually changed), visible through the diagnostic
 *    counters;
 *  - a store into a chained hot loop (self-modifying code) exits the
 *    block engine and rebuilds, never running stale code;
 *  - the superblock cache is derived state: a checkpoint restore
 *    drops it and the restored CPU rebuilds and finishes identically;
 *  - the 64-entry write journal's boundary is exact: the 64th host
 *    write is still scanned precisely, the 65th degrades to all-dirty
 *    (reverify everything), and neither path ever runs stale code;
 *  - a trap raised from either half of a fused macro-op pair retires
 *    exactly the switch-mode instruction prefix, and FAULT inside a
 *    fused hot loop flushes the pending retirement counters before
 *    the hook observes the CPU — trace bytes and in-hook checkpoints
 *    are identical across all three dispatch modes.
 */

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "assembler/assembler.hh"
#include "ckpt/io.hh"
#include "machine/cpu.hh"

namespace rr::machine {
namespace {

CpuConfig
configWith(DispatchMode dispatch, bool predecode = true)
{
    CpuConfig config;
    config.numRegs = 128;
    config.operandWidth = 5;
    config.ldrrmDelaySlots = 1;
    config.memWords = 4096;
    config.predecode = predecode;
    config.dispatch = dispatch;
    return config;
}

assembler::Program
assembleOrDie(const std::string &source)
{
    assembler::Program prog = assembler::assemble(source);
    for (const auto &error : prog.errors)
        ADD_FAILURE() << error.str();
    EXPECT_TRUE(prog.ok());
    return prog;
}

void
loadAndStart(Cpu &cpu, const assembler::Program &prog)
{
    cpu.mem().loadImage(prog.base, prog.words);
    const auto entry = prog.symbols.find("entry");
    cpu.setPc(entry != prog.symbols.end() ? entry->second
                                          : prog.base);
}

/** The externally observable execution state, counters included. */
struct Observation
{
    uint64_t instret = 0;
    uint64_t cycles = 0;
    uint64_t stalls = 0;
    uint32_t pc = 0;
    uint32_t psw = 0;
    bool halted = false;
    TrapKind trap = TrapKind::None;
    std::vector<uint32_t> regs;
    std::vector<uint32_t> mem;

    bool operator==(const Observation &other) const = default;
};

Observation
observe(const Cpu &cpu)
{
    Observation obs;
    obs.instret = cpu.instructionsRetired();
    obs.cycles = cpu.cycles();
    obs.stalls = cpu.timingStats().total();
    obs.pc = cpu.pc();
    obs.psw = cpu.psw();
    obs.halted = cpu.halted();
    obs.trap = cpu.trap();
    const uint32_t *regs = cpu.regs().data();
    obs.regs.assign(regs, regs + 128);
    const uint32_t *mem = cpu.mem().data();
    obs.mem.assign(mem, mem + 4096);
    return obs;
}

// li expands to LUI+ORI (a fusable pair), the decrement feeds the
// branch (another fusable pair), and the two back-to-back ADDIs are
// ALU-pair candidates — every fusion rule is on this path.
constexpr const char *kFusionLoop = R"(
entry:
    li    r1, 25
loop:
    addi  r2, r2, 3
    addi  r1, r1, -1
    bne   r1, r0, loop
    halt
)";

// A step budget expiring anywhere — including between the two halves
// of a fused pair — must leave the same architectural state and
// counters as switch dispatch with the same budget. Sweep every
// prefix length of the whole program.
TEST(Dispatch, BudgetSplitsFusedPairsExactly)
{
    const assembler::Program prog = assembleOrDie(kFusionLoop);

    // Total retired instructions at halt: li(2) + 25*3 + halt.
    constexpr uint64_t kTotal = 2 + 25 * 3 + 1;
    for (uint64_t budget = 1; budget <= kTotal + 1; ++budget) {
        Observation want;
        bool first = true;
        for (const DispatchMode mode :
             {DispatchMode::Switch, DispatchMode::Threaded,
              DispatchMode::Fused}) {
            Cpu cpu(configWith(mode));
            loadAndStart(cpu, prog);
            cpu.run(budget);
            const Observation got = observe(cpu);
            if (first) {
                want = got;
                first = false;
                continue;
            }
            EXPECT_EQ(got, want)
                << "budget " << budget << ", mode "
                << dispatchModeName(mode);
        }
    }
}

// step() must observe and produce exactly the state the block engine
// left behind, at any interleaving.
TEST(Dispatch, StepAndRunInterleaveFreely)
{
    const assembler::Program prog = assembleOrDie(kFusionLoop);

    Observation want;
    bool first = true;
    for (const DispatchMode mode :
         {DispatchMode::Switch, DispatchMode::Threaded,
          DispatchMode::Fused}) {
        Cpu cpu(configWith(mode));
        loadAndStart(cpu, prog);
        for (int i = 0; i < 3; ++i)
            cpu.step();
        cpu.run(10);
        for (int i = 0; i < 5; ++i)
            cpu.step();
        cpu.run(100'000);
        const Observation got = observe(cpu);
        if (first) {
            want = got;
            first = false;
            continue;
        }
        EXPECT_EQ(got, want) << dispatchModeName(mode);
    }
}

// A host write that does not change the covered words demotes every
// block to unverified; the next lookup re-proves each against memory
// and keeps it — no flush, no rebuild.
TEST(Dispatch, HostWriteWithUnchangedCodeReverifiesBlocks)
{
    const assembler::Program prog = assembleOrDie(kFusionLoop);
    Cpu cpu(configWith(DispatchMode::Fused));
    ASSERT_TRUE(cpu.dispatchActive());
    loadAndStart(cpu, prog);
    cpu.run(100'000);
    ASSERT_TRUE(cpu.halted());
    EXPECT_EQ(cpu.regs().read(2), 75u);

    const uint64_t built = cpu.superblocksBuilt();
    const uint64_t flushes = cpu.superblockFlushes();
    ASSERT_GT(built, 0u);
    EXPECT_EQ(cpu.superblocksReverified(), 0u);

    // Rewrite a covered instruction word with its own value: the
    // journal records the touch, but the code is unchanged.
    const auto entry = prog.symbols.find("entry");
    ASSERT_NE(entry, prog.symbols.end());
    cpu.mem().write(entry->second, cpu.mem().read(entry->second));

    cpu.setPc(entry->second);
    cpu.resume();
    cpu.run(100'000);
    ASSERT_TRUE(cpu.halted());
    EXPECT_EQ(cpu.regs().read(2), 150u);

    EXPECT_GT(cpu.superblocksReverified(), 0u);
    EXPECT_EQ(cpu.superblockFlushes(), flushes);
    EXPECT_EQ(cpu.superblocksBuilt(), built);
}

// A host write that *does* change covered code fails re-verification:
// the cache flushes and rebuilds, and the new code runs.
TEST(Dispatch, HostWriteWithChangedCodeFlushesAndRebuilds)
{
    const assembler::Program prog = assembleOrDie(kFusionLoop);
    // The replacement body: "addi r2, r2, 5" instead of "+3".
    const assembler::Program patched = assembleOrDie(R"(
entry:
    addi  r2, r2, 5
)");

    Cpu cpu(configWith(DispatchMode::Fused));
    loadAndStart(cpu, prog);
    cpu.run(100'000);
    ASSERT_TRUE(cpu.halted());
    EXPECT_EQ(cpu.regs().read(2), 75u);

    const uint64_t built = cpu.superblocksBuilt();
    const uint64_t flushes = cpu.superblockFlushes();

    const auto loop = prog.symbols.find("loop");
    ASSERT_NE(loop, prog.symbols.end());
    cpu.mem().write(loop->second, patched.words.at(0));

    const auto entry = prog.symbols.find("entry");
    ASSERT_NE(entry, prog.symbols.end());
    cpu.setPc(entry->second);
    cpu.resume();
    cpu.run(100'000);
    ASSERT_TRUE(cpu.halted());
    EXPECT_EQ(cpu.regs().read(2), 75u + 25 * 5);

    EXPECT_GT(cpu.superblockFlushes(), flushes);
    EXPECT_GT(cpu.superblocksBuilt(), built);
}

// Self-modifying code inside a hot (chained) loop: the store lands in
// a covered word every iteration, so the block engine must exit,
// rebuild, and pick up the patched instruction — in every mode.
constexpr const char *kSmcLoop = R"(
entry:
    li    r1, 6
    la    r4, patch
    la    r5, newinst
    ld    r6, 0(r5)
loop:
patch:
    addi  r2, r2, 1
    st    r6, 0(r4)
    addi  r1, r1, -1
    bne   r1, r0, loop
    halt
newinst:
    addi  r2, r2, 4
)";

TEST(Dispatch, StoreIntoChainedLoopNeverRunsStaleCode)
{
    const assembler::Program prog = assembleOrDie(kSmcLoop);

    Observation want;
    bool first = true;
    for (const DispatchMode mode :
         {DispatchMode::Switch, DispatchMode::Threaded,
          DispatchMode::Fused}) {
        Cpu cpu(configWith(mode));
        loadAndStart(cpu, prog);
        cpu.run(100'000);
        ASSERT_TRUE(cpu.halted()) << dispatchModeName(mode);
        // Iteration 1 adds 1 and patches; iterations 2..6 add 4.
        EXPECT_EQ(cpu.regs().read(2), 1u + 5 * 4)
            << dispatchModeName(mode);
        const Observation got = observe(cpu);
        if (first) {
            want = got;
            first = false;
            continue;
        }
        EXPECT_EQ(got, want) << dispatchModeName(mode);
    }

    // And against the undecoded reference path.
    Cpu off(configWith(DispatchMode::Switch, false));
    loadAndStart(off, prog);
    off.run(100'000);
    EXPECT_EQ(observe(off), want);
}

// The superblock cache is derived state: it is never serialized, a
// restore drops it, and the restored CPU rebuilds it on demand and
// finishes byte-identically to the uninterrupted run.
TEST(Dispatch, CheckpointRestoreRebuildsDerivedBlocks)
{
    const assembler::Program prog = assembleOrDie(kFusionLoop);

    // Uninterrupted fused run, as reference.
    Cpu whole(configWith(DispatchMode::Fused));
    loadAndStart(whole, prog);
    whole.run(100'000);
    ASSERT_TRUE(whole.halted());
    const Observation want = observe(whole);

    // Pause mid-loop (and mid-pair: budget 40 lands between the
    // decrement and its fused branch), checkpoint, restore into a
    // fresh CPU, finish there.
    Cpu source(configWith(DispatchMode::Fused));
    loadAndStart(source, prog);
    source.run(40);
    ASSERT_FALSE(source.halted());
    ckpt::Writer writer;
    source.saveState(writer);
    const std::vector<uint8_t> doc = writer.seal();

    Cpu target(configWith(DispatchMode::Fused));
    target.restoreState(ckpt::Reader(doc));
    EXPECT_EQ(target.superblocksBuilt(), 0u)
        << "restore must drop derived superblocks";
    target.run(100'000);
    ASSERT_TRUE(target.halted());
    EXPECT_GT(target.superblocksBuilt(), 0u);
    EXPECT_EQ(observe(target), want);

    // Restoring into a switch-dispatch CPU gives the same result:
    // the dispatch mode is not part of the checkpointed state.
    Cpu plain(configWith(DispatchMode::Switch));
    plain.restoreState(ckpt::Reader(doc));
    plain.run(100'000);
    EXPECT_EQ(observe(plain), want);
}

// ---- write-journal overflow boundary --------------------------------
//
// Memory journals host-visible writes in a 64-entry log; on overflow
// it degrades to an all-dirty flag. The boundary must be exact: 64
// writes still scan precisely (blocks stay verified when none is
// covered), the 65th demotes everything to unverified (reverify), and
// a code patch is caught whether it lands in the journal (covered
// scan -> flush) or is dropped by the overflow (all-dirty -> flush).

/** One halt -> host-write -> resume sequence, counters around it. */
struct JournalRun
{
    Observation obs;          ///< state after the resumed run
    uint64_t built = 0;       ///< superblocks built by the resume
    uint64_t flushes = 0;     ///< cache flushes during the resume
    uint64_t reverified = 0;  ///< blocks re-proved during the resume
    size_t journalDepth = 0;  ///< journal entries before the resume
    bool overflowed = false;  ///< overflow flag before the resume
};

JournalRun
runJournalScenario(DispatchMode mode, size_t data_writes,
                   bool patch_code)
{
    const assembler::Program prog = assembleOrDie(kFusionLoop);
    Cpu cpu(configWith(mode));
    loadAndStart(cpu, prog);
    cpu.run(100'000);
    EXPECT_TRUE(cpu.halted()) << dispatchModeName(mode);
    EXPECT_EQ(cpu.regs().read(2), 75u) << dispatchModeName(mode);

    // The block engine consumes the journal at block boundaries; a
    // halted CPU must not sit on stale entries. Switch dispatch has
    // no consumer, so start its count from a clean journal instead.
    if (mode == DispatchMode::Switch) {
        cpu.mem().clearWriteLog();
    } else {
        EXPECT_TRUE(cpu.mem().writeLog().empty())
            << dispatchModeName(mode);
        EXPECT_FALSE(cpu.mem().writeLogOverflowed())
            << dispatchModeName(mode);
    }

    // Host writes into data words no superblock covers.
    constexpr uint32_t kDataBase = 0x800;
    for (size_t i = 0; i < data_writes; ++i)
        cpu.mem().write(kDataBase + static_cast<uint32_t>(i),
                        0xD000 + static_cast<uint32_t>(i));
    if (patch_code) {
        // "addi r2, r2, 5" replaces the "+3" at the loop head.
        const assembler::Program patched = assembleOrDie(R"(
entry:
    addi  r2, r2, 5
)");
        const auto loop = prog.symbols.find("loop");
        EXPECT_NE(loop, prog.symbols.end());
        cpu.mem().write(loop->second, patched.words.at(0));
    }

    JournalRun out;
    out.journalDepth = cpu.mem().writeLog().size();
    out.overflowed = cpu.mem().writeLogOverflowed();

    const uint64_t built = cpu.superblocksBuilt();
    const uint64_t flushes = cpu.superblockFlushes();
    const uint64_t reverified = cpu.superblocksReverified();

    const auto entry = prog.symbols.find("entry");
    EXPECT_NE(entry, prog.symbols.end());
    cpu.setPc(entry->second);
    cpu.resume();
    cpu.run(100'000);
    EXPECT_TRUE(cpu.halted()) << dispatchModeName(mode);

    out.obs = observe(cpu);
    out.built = cpu.superblocksBuilt() - built;
    out.flushes = cpu.superblockFlushes() - flushes;
    out.reverified = cpu.superblocksReverified() - reverified;
    return out;
}

// 64 writes exactly fill the journal without overflowing: the covered
// scan still runs precisely, sees only data words, and leaves every
// block verified — no demotion, no reverify, no flush.
TEST(Dispatch, JournalSixtyFourthWriteStillScansPrecisely)
{
    const JournalRun sw =
        runJournalScenario(DispatchMode::Switch, 64, false);
    for (const DispatchMode mode :
         {DispatchMode::Threaded, DispatchMode::Fused}) {
        const JournalRun got = runJournalScenario(mode, 64, false);
        EXPECT_EQ(got.journalDepth, Memory::kWriteLogCap)
            << dispatchModeName(mode);
        EXPECT_FALSE(got.overflowed) << dispatchModeName(mode);
        EXPECT_EQ(got.reverified, 0u) << dispatchModeName(mode);
        EXPECT_EQ(got.flushes, 0u) << dispatchModeName(mode);
        EXPECT_EQ(got.built, 0u) << dispatchModeName(mode);
        EXPECT_EQ(got.obs, sw.obs) << dispatchModeName(mode);
    }
}

// The 65th write degrades the journal to all-dirty: every block is
// demoted and must re-prove itself against memory. The code did not
// change, so each re-proof succeeds — reverified grows, nothing
// flushes or rebuilds.
TEST(Dispatch, JournalSixtyFifthWriteDegradesToAllDirty)
{
    const JournalRun sw =
        runJournalScenario(DispatchMode::Switch, 65, false);
    for (const DispatchMode mode :
         {DispatchMode::Threaded, DispatchMode::Fused}) {
        const JournalRun got = runJournalScenario(mode, 65, false);
        EXPECT_TRUE(got.overflowed) << dispatchModeName(mode);
        EXPECT_GT(got.reverified, 0u) << dispatchModeName(mode);
        EXPECT_EQ(got.flushes, 0u) << dispatchModeName(mode);
        EXPECT_EQ(got.built, 0u) << dispatchModeName(mode);
        EXPECT_EQ(got.obs, sw.obs) << dispatchModeName(mode);
    }
}

// A code patch recorded as the journal's 64th (last) entry: full but
// not overflowed, the precise scan must still see the covered word,
// fail re-verification, and flush + rebuild with the patched code.
TEST(Dispatch, JournalFullButNotOverflowedCatchesCodePatch)
{
    const JournalRun sw =
        runJournalScenario(DispatchMode::Switch, 63, true);
    for (const DispatchMode mode :
         {DispatchMode::Threaded, DispatchMode::Fused}) {
        const JournalRun got = runJournalScenario(mode, 63, true);
        EXPECT_EQ(got.journalDepth, Memory::kWriteLogCap)
            << dispatchModeName(mode);
        EXPECT_FALSE(got.overflowed) << dispatchModeName(mode);
        EXPECT_GT(got.flushes, 0u) << dispatchModeName(mode);
        EXPECT_GT(got.built, 0u) << dispatchModeName(mode);
        EXPECT_EQ(got.obs.regs[2], 75u + 25 * 5)
            << dispatchModeName(mode);
        EXPECT_EQ(got.obs, sw.obs) << dispatchModeName(mode);
    }
}

// A code patch as the 65th write: the journal dropped its address,
// but the overflow flag demotes everything, the patched block fails
// its re-proof, and the new code runs — stale code is impossible on
// either side of the boundary.
TEST(Dispatch, JournalOverflowNeverRunsStaleCode)
{
    const JournalRun sw =
        runJournalScenario(DispatchMode::Switch, 64, true);
    for (const DispatchMode mode :
         {DispatchMode::Threaded, DispatchMode::Fused}) {
        const JournalRun got = runJournalScenario(mode, 64, true);
        EXPECT_TRUE(got.overflowed) << dispatchModeName(mode);
        EXPECT_GT(got.flushes, 0u) << dispatchModeName(mode);
        EXPECT_EQ(got.obs.regs[2], 75u + 25 * 5)
            << dispatchModeName(mode);
        EXPECT_EQ(got.obs, sw.obs) << dispatchModeName(mode);
    }
}

// ---- traps and faults inside fused macro-op pairs -------------------

// li expands to a fused LUI+ORI pair; the ld fuses with the addi that
// consumes its result (FUSED_LD_ADDI). The load address 5000 is past
// memWords = 4096, so the *first* constituent traps MemOutOfRange.
constexpr const char *kLdPairTrap = R"(
entry:
    li    r4, 5000
    ld    r5, 0(r4)
    addi  r5, r5, 1
    halt
)";

TEST(Dispatch, TrapOnFirstHalfOfFusedPairMatchesSwitch)
{
    const assembler::Program prog = assembleOrDie(kLdPairTrap);

    for (uint64_t budget = 1; budget <= 4; ++budget) {
        Observation want;
        bool first = true;
        for (const DispatchMode mode :
             {DispatchMode::Switch, DispatchMode::Threaded,
              DispatchMode::Fused}) {
            Cpu cpu(configWith(mode));
            loadAndStart(cpu, prog);
            cpu.run(budget);
            const Observation got = observe(cpu);
            if (first) {
                want = got;
                first = false;
                continue;
            }
            EXPECT_EQ(got, want)
                << "budget " << budget << ", mode "
                << dispatchModeName(mode);
        }
    }

    // Absolute semantics under fused dispatch: the li pair retires,
    // the ld traps before retiring, the pc names the ld itself.
    Cpu cpu(configWith(DispatchMode::Fused));
    loadAndStart(cpu, prog);
    cpu.run(100);
    EXPECT_EQ(cpu.trap(), TrapKind::MemOutOfRange);
    EXPECT_EQ(cpu.instructionsRetired(), 2u);
    EXPECT_EQ(cpu.pc(), 2u);
}

// The two ADDIs fuse (the next instruction is not a branch). r40 is
// encodable (6-bit field) but past the configured operand width of
// 5, so the *second* constituent traps OperandTooWide after the first
// already executed: exactly the first half must retire.
constexpr const char *kMidPairTrap = R"(
entry:
    addi  r2, r2, 3
    addi  r3, r40, 1
    halt
)";

TEST(Dispatch, TrapOnSecondHalfRetiresExactlyTheFirstHalf)
{
    const assembler::Program prog = assembleOrDie(kMidPairTrap);

    for (uint64_t budget = 1; budget <= 3; ++budget) {
        Observation want;
        bool first = true;
        for (const DispatchMode mode :
             {DispatchMode::Switch, DispatchMode::Threaded,
              DispatchMode::Fused}) {
            Cpu cpu(configWith(mode));
            loadAndStart(cpu, prog);
            cpu.run(budget);
            const Observation got = observe(cpu);
            if (first) {
                want = got;
                first = false;
                continue;
            }
            EXPECT_EQ(got, want)
                << "budget " << budget << ", mode "
                << dispatchModeName(mode);
        }
    }

    Cpu cpu(configWith(DispatchMode::Fused));
    loadAndStart(cpu, prog);
    cpu.run(100);
    EXPECT_EQ(cpu.trap(), TrapKind::OperandTooWide);
    EXPECT_EQ(cpu.instructionsRetired(), 1u);
    EXPECT_EQ(cpu.pc(), 1u);
    EXPECT_EQ(cpu.regs().read(2), 3u);
}

// A checkpoint taken at a mid-pair trap point must be byte-identical
// to one written by switch dispatch at the same point, and restore
// into any mode with the full trap state intact.
TEST(Dispatch, CheckpointAtMidPairTrapIsModeInvariant)
{
    const assembler::Program prog = assembleOrDie(kMidPairTrap);

    Cpu sw(configWith(DispatchMode::Switch));
    loadAndStart(sw, prog);
    sw.run(100);
    const Observation want = observe(sw);
    EXPECT_EQ(want.trap, TrapKind::OperandTooWide);

    Cpu fused(configWith(DispatchMode::Fused));
    loadAndStart(fused, prog);
    fused.run(100);
    EXPECT_EQ(observe(fused), want);

    ckpt::Writer fusedWriter;
    fused.saveState(fusedWriter);
    const std::vector<uint8_t> doc = fusedWriter.seal();

    ckpt::Writer swWriter;
    sw.saveState(swWriter);
    EXPECT_EQ(doc, swWriter.seal())
        << "trap-point checkpoints must not depend on dispatch mode";

    for (const DispatchMode mode :
         {DispatchMode::Switch, DispatchMode::Threaded,
          DispatchMode::Fused}) {
        Cpu target(configWith(mode));
        target.restoreState(ckpt::Reader(doc));
        EXPECT_EQ(observe(target), want) << dispatchModeName(mode);
    }
}

// FAULT between fused pairs in a hot loop: the ALU pair before it and
// the decrement/branch pair after it both fuse, so the handler's
// counter flush before the hook is on the hot path every iteration.
constexpr const char *kFaultLoop = R"(
entry:
    li    r1, 6
loop:
    addi  r2, r2, 3
    addi  r3, r3, 1
    fault 2
    addi  r1, r1, -1
    bne   r1, r0, loop
    halt
)";

// Retired at halt: li(2) + 6 * (pair(2) + fault + pair(2)) + halt.
constexpr uint64_t kFaultLoopTotal = 2 + 6 * 5 + 1;

// The hook observes flushed counters, trace bytes agree across all
// modes, and a budget expiring anywhere — including right at a FAULT
// or just after the hook's own host write — splits identically.
TEST(Dispatch, FaultInsideFusedLoopFlushesCountersBeforeHook)
{
    const assembler::Program prog = assembleOrDie(kFaultLoop);

    Observation want;
    std::vector<std::string> wantTrace;
    std::vector<uint64_t> wantAtHook;
    bool first = true;
    for (const DispatchMode mode :
         {DispatchMode::Switch, DispatchMode::Threaded,
          DispatchMode::Fused}) {
        Cpu cpu(configWith(mode));
        std::vector<std::string> trace;
        cpu.setTraceHook([&trace](const TraceEntry &e) {
            std::ostringstream os;
            os << e.cycle << ':' << e.pc << ':' << e.rrm << ':'
               << e.text;
            trace.push_back(os.str());
        });
        std::vector<uint64_t> atHook;
        cpu.setFaultHook([&atHook](Cpu &c, uint32_t fault_class) {
            EXPECT_EQ(fault_class, 2u);
            // The retirement counter must already include every
            // instruction before the FAULT — fused pairs flushed.
            atHook.push_back(c.instructionsRetired());
            // A host write from inside the hook: journal interplay.
            c.mem().write(0x700, static_cast<uint32_t>(atHook.size()));
        });
        loadAndStart(cpu, prog);
        cpu.run(100'000);
        EXPECT_TRUE(cpu.halted()) << dispatchModeName(mode);
        EXPECT_EQ(cpu.faultCount(), 6u) << dispatchModeName(mode);
        const Observation got = observe(cpu);
        if (first) {
            want = got;
            wantTrace = trace;
            wantAtHook = atHook;
            first = false;
            continue;
        }
        EXPECT_EQ(got, want) << dispatchModeName(mode);
        EXPECT_EQ(trace, wantTrace) << dispatchModeName(mode);
        EXPECT_EQ(atHook, wantAtHook) << dispatchModeName(mode);
    }
    ASSERT_EQ(wantAtHook.size(), 6u);

    // Budget sweep with the host-writing hook still in place.
    for (uint64_t budget = 1; budget <= kFaultLoopTotal + 1;
         ++budget) {
        Observation bwant;
        bool bfirst = true;
        for (const DispatchMode mode :
             {DispatchMode::Switch, DispatchMode::Threaded,
              DispatchMode::Fused}) {
            Cpu cpu(configWith(mode));
            uint64_t faults = 0;
            cpu.setFaultHook([&faults](Cpu &c, uint32_t) {
                ++faults;
                c.mem().write(0x700, static_cast<uint32_t>(faults));
            });
            loadAndStart(cpu, prog);
            cpu.run(budget);
            const Observation got = observe(cpu);
            if (bfirst) {
                bwant = got;
                bfirst = false;
                continue;
            }
            EXPECT_EQ(got, bwant)
                << "budget " << budget << ", mode "
                << dispatchModeName(mode);
        }
    }
}

// A checkpoint written from *inside* the fault hook (pc already past
// the FAULT, the FAULT itself not yet retired) is byte-identical
// across modes, and every mode resumes from it to the same final
// architectural state.
TEST(Dispatch, CheckpointFromFaultHookIsModeInvariant)
{
    const assembler::Program prog = assembleOrDie(kFaultLoop);

    Observation want;
    std::vector<uint8_t> wantDoc;
    Observation resumedWant;
    bool first = true;
    for (const DispatchMode mode :
         {DispatchMode::Switch, DispatchMode::Threaded,
          DispatchMode::Fused}) {
        Cpu cpu(configWith(mode));
        uint64_t faults = 0;
        std::vector<uint8_t> doc;
        cpu.setFaultHook([&faults, &doc](Cpu &c, uint32_t) {
            ++faults;
            c.mem().write(0x700, static_cast<uint32_t>(faults));
            if (faults == 3) {
                ckpt::Writer writer;
                c.saveState(writer);
                doc = writer.seal();
            }
        });
        loadAndStart(cpu, prog);
        cpu.run(100'000);
        ASSERT_TRUE(cpu.halted()) << dispatchModeName(mode);
        ASSERT_FALSE(doc.empty()) << dispatchModeName(mode);
        const Observation got = observe(cpu);

        // Resume from the in-hook checkpoint under this same mode,
        // with the hook continuing its count where it left off.
        Cpu target(configWith(mode));
        uint64_t resumed = 3;
        target.setFaultHook([&resumed](Cpu &c, uint32_t) {
            ++resumed;
            c.mem().write(0x700, static_cast<uint32_t>(resumed));
        });
        target.restoreState(ckpt::Reader(doc));
        target.run(100'000);
        ASSERT_TRUE(target.halted()) << dispatchModeName(mode);
        EXPECT_EQ(resumed, 6u) << dispatchModeName(mode);
        const Observation res = observe(target);

        if (first) {
            want = got;
            wantDoc = doc;
            resumedWant = res;
            first = false;
            continue;
        }
        EXPECT_EQ(got, want) << dispatchModeName(mode);
        EXPECT_EQ(doc, wantDoc) << dispatchModeName(mode);
        EXPECT_EQ(res, resumedWant) << dispatchModeName(mode);
    }

    // The resumed runs end with the same registers and memory as the
    // uninterrupted ones (the snapshot predates the third FAULT's own
    // retirement, so only the retire counters may differ).
    EXPECT_EQ(resumedWant.regs, want.regs);
    EXPECT_EQ(resumedWant.mem, want.mem);
    EXPECT_EQ(resumedWant.pc, want.pc);
    EXPECT_TRUE(resumedWant.halted);
}

TEST(Dispatch, ModeNamesAreStable)
{
    EXPECT_STREQ(dispatchModeName(DispatchMode::Switch), "switch");
    EXPECT_STREQ(dispatchModeName(DispatchMode::Threaded),
                 "threaded");
    EXPECT_STREQ(dispatchModeName(DispatchMode::Fused), "fused");
}

} // namespace
} // namespace rr::machine
