/**
 * @file
 * Threaded/fused superblock dispatch (docs/PERF.md): the run() fast
 * path must be architecturally invisible at *every* observation
 * point, not just at halt. These tests pin the properties the
 * corpus-level identity tests cannot see directly:
 *
 *  - a step budget that expires between the two halves of a fused
 *    macro-op pair retires exactly the same instruction prefix as
 *    switch dispatch, for every possible split point;
 *  - step() and run() can be interleaved freely;
 *  - host writes demote superblocks to unverified and the next
 *    lookup re-proves them against memory (cache kept) or flushes
 *    (code actually changed), visible through the diagnostic
 *    counters;
 *  - a store into a chained hot loop (self-modifying code) exits the
 *    block engine and rebuilds, never running stale code;
 *  - the superblock cache is derived state: a checkpoint restore
 *    drops it and the restored CPU rebuilds and finishes identically.
 */

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "assembler/assembler.hh"
#include "ckpt/io.hh"
#include "machine/cpu.hh"

namespace rr::machine {
namespace {

CpuConfig
configWith(DispatchMode dispatch, bool predecode = true)
{
    CpuConfig config;
    config.numRegs = 128;
    config.operandWidth = 5;
    config.ldrrmDelaySlots = 1;
    config.memWords = 4096;
    config.predecode = predecode;
    config.dispatch = dispatch;
    return config;
}

assembler::Program
assembleOrDie(const std::string &source)
{
    assembler::Program prog = assembler::assemble(source);
    for (const auto &error : prog.errors)
        ADD_FAILURE() << error.str();
    EXPECT_TRUE(prog.ok());
    return prog;
}

void
loadAndStart(Cpu &cpu, const assembler::Program &prog)
{
    cpu.mem().loadImage(prog.base, prog.words);
    const auto entry = prog.symbols.find("entry");
    cpu.setPc(entry != prog.symbols.end() ? entry->second
                                          : prog.base);
}

/** The externally observable execution state, counters included. */
struct Observation
{
    uint64_t instret = 0;
    uint64_t cycles = 0;
    uint64_t stalls = 0;
    uint32_t pc = 0;
    uint32_t psw = 0;
    bool halted = false;
    TrapKind trap = TrapKind::None;
    std::vector<uint32_t> regs;
    std::vector<uint32_t> mem;

    bool operator==(const Observation &other) const = default;
};

Observation
observe(const Cpu &cpu)
{
    Observation obs;
    obs.instret = cpu.instructionsRetired();
    obs.cycles = cpu.cycles();
    obs.stalls = cpu.timingStats().total();
    obs.pc = cpu.pc();
    obs.psw = cpu.psw();
    obs.halted = cpu.halted();
    obs.trap = cpu.trap();
    const uint32_t *regs = cpu.regs().data();
    obs.regs.assign(regs, regs + 128);
    const uint32_t *mem = cpu.mem().data();
    obs.mem.assign(mem, mem + 4096);
    return obs;
}

// li expands to LUI+ORI (a fusable pair), the decrement feeds the
// branch (another fusable pair), and the two back-to-back ADDIs are
// ALU-pair candidates — every fusion rule is on this path.
constexpr const char *kFusionLoop = R"(
entry:
    li    r1, 25
loop:
    addi  r2, r2, 3
    addi  r1, r1, -1
    bne   r1, r0, loop
    halt
)";

// A step budget expiring anywhere — including between the two halves
// of a fused pair — must leave the same architectural state and
// counters as switch dispatch with the same budget. Sweep every
// prefix length of the whole program.
TEST(Dispatch, BudgetSplitsFusedPairsExactly)
{
    const assembler::Program prog = assembleOrDie(kFusionLoop);

    // Total retired instructions at halt: li(2) + 25*3 + halt.
    constexpr uint64_t kTotal = 2 + 25 * 3 + 1;
    for (uint64_t budget = 1; budget <= kTotal + 1; ++budget) {
        Observation want;
        bool first = true;
        for (const DispatchMode mode :
             {DispatchMode::Switch, DispatchMode::Threaded,
              DispatchMode::Fused}) {
            Cpu cpu(configWith(mode));
            loadAndStart(cpu, prog);
            cpu.run(budget);
            const Observation got = observe(cpu);
            if (first) {
                want = got;
                first = false;
                continue;
            }
            EXPECT_EQ(got, want)
                << "budget " << budget << ", mode "
                << dispatchModeName(mode);
        }
    }
}

// step() must observe and produce exactly the state the block engine
// left behind, at any interleaving.
TEST(Dispatch, StepAndRunInterleaveFreely)
{
    const assembler::Program prog = assembleOrDie(kFusionLoop);

    Observation want;
    bool first = true;
    for (const DispatchMode mode :
         {DispatchMode::Switch, DispatchMode::Threaded,
          DispatchMode::Fused}) {
        Cpu cpu(configWith(mode));
        loadAndStart(cpu, prog);
        for (int i = 0; i < 3; ++i)
            cpu.step();
        cpu.run(10);
        for (int i = 0; i < 5; ++i)
            cpu.step();
        cpu.run(100'000);
        const Observation got = observe(cpu);
        if (first) {
            want = got;
            first = false;
            continue;
        }
        EXPECT_EQ(got, want) << dispatchModeName(mode);
    }
}

// A host write that does not change the covered words demotes every
// block to unverified; the next lookup re-proves each against memory
// and keeps it — no flush, no rebuild.
TEST(Dispatch, HostWriteWithUnchangedCodeReverifiesBlocks)
{
    const assembler::Program prog = assembleOrDie(kFusionLoop);
    Cpu cpu(configWith(DispatchMode::Fused));
    ASSERT_TRUE(cpu.dispatchActive());
    loadAndStart(cpu, prog);
    cpu.run(100'000);
    ASSERT_TRUE(cpu.halted());
    EXPECT_EQ(cpu.regs().read(2), 75u);

    const uint64_t built = cpu.superblocksBuilt();
    const uint64_t flushes = cpu.superblockFlushes();
    ASSERT_GT(built, 0u);
    EXPECT_EQ(cpu.superblocksReverified(), 0u);

    // Rewrite a covered instruction word with its own value: the
    // journal records the touch, but the code is unchanged.
    const auto entry = prog.symbols.find("entry");
    ASSERT_NE(entry, prog.symbols.end());
    cpu.mem().write(entry->second, cpu.mem().read(entry->second));

    cpu.setPc(entry->second);
    cpu.resume();
    cpu.run(100'000);
    ASSERT_TRUE(cpu.halted());
    EXPECT_EQ(cpu.regs().read(2), 150u);

    EXPECT_GT(cpu.superblocksReverified(), 0u);
    EXPECT_EQ(cpu.superblockFlushes(), flushes);
    EXPECT_EQ(cpu.superblocksBuilt(), built);
}

// A host write that *does* change covered code fails re-verification:
// the cache flushes and rebuilds, and the new code runs.
TEST(Dispatch, HostWriteWithChangedCodeFlushesAndRebuilds)
{
    const assembler::Program prog = assembleOrDie(kFusionLoop);
    // The replacement body: "addi r2, r2, 5" instead of "+3".
    const assembler::Program patched = assembleOrDie(R"(
entry:
    addi  r2, r2, 5
)");

    Cpu cpu(configWith(DispatchMode::Fused));
    loadAndStart(cpu, prog);
    cpu.run(100'000);
    ASSERT_TRUE(cpu.halted());
    EXPECT_EQ(cpu.regs().read(2), 75u);

    const uint64_t built = cpu.superblocksBuilt();
    const uint64_t flushes = cpu.superblockFlushes();

    const auto loop = prog.symbols.find("loop");
    ASSERT_NE(loop, prog.symbols.end());
    cpu.mem().write(loop->second, patched.words.at(0));

    const auto entry = prog.symbols.find("entry");
    ASSERT_NE(entry, prog.symbols.end());
    cpu.setPc(entry->second);
    cpu.resume();
    cpu.run(100'000);
    ASSERT_TRUE(cpu.halted());
    EXPECT_EQ(cpu.regs().read(2), 75u + 25 * 5);

    EXPECT_GT(cpu.superblockFlushes(), flushes);
    EXPECT_GT(cpu.superblocksBuilt(), built);
}

// Self-modifying code inside a hot (chained) loop: the store lands in
// a covered word every iteration, so the block engine must exit,
// rebuild, and pick up the patched instruction — in every mode.
constexpr const char *kSmcLoop = R"(
entry:
    li    r1, 6
    la    r4, patch
    la    r5, newinst
    ld    r6, 0(r5)
loop:
patch:
    addi  r2, r2, 1
    st    r6, 0(r4)
    addi  r1, r1, -1
    bne   r1, r0, loop
    halt
newinst:
    addi  r2, r2, 4
)";

TEST(Dispatch, StoreIntoChainedLoopNeverRunsStaleCode)
{
    const assembler::Program prog = assembleOrDie(kSmcLoop);

    Observation want;
    bool first = true;
    for (const DispatchMode mode :
         {DispatchMode::Switch, DispatchMode::Threaded,
          DispatchMode::Fused}) {
        Cpu cpu(configWith(mode));
        loadAndStart(cpu, prog);
        cpu.run(100'000);
        ASSERT_TRUE(cpu.halted()) << dispatchModeName(mode);
        // Iteration 1 adds 1 and patches; iterations 2..6 add 4.
        EXPECT_EQ(cpu.regs().read(2), 1u + 5 * 4)
            << dispatchModeName(mode);
        const Observation got = observe(cpu);
        if (first) {
            want = got;
            first = false;
            continue;
        }
        EXPECT_EQ(got, want) << dispatchModeName(mode);
    }

    // And against the undecoded reference path.
    Cpu off(configWith(DispatchMode::Switch, false));
    loadAndStart(off, prog);
    off.run(100'000);
    EXPECT_EQ(observe(off), want);
}

// The superblock cache is derived state: it is never serialized, a
// restore drops it, and the restored CPU rebuilds it on demand and
// finishes byte-identically to the uninterrupted run.
TEST(Dispatch, CheckpointRestoreRebuildsDerivedBlocks)
{
    const assembler::Program prog = assembleOrDie(kFusionLoop);

    // Uninterrupted fused run, as reference.
    Cpu whole(configWith(DispatchMode::Fused));
    loadAndStart(whole, prog);
    whole.run(100'000);
    ASSERT_TRUE(whole.halted());
    const Observation want = observe(whole);

    // Pause mid-loop (and mid-pair: budget 40 lands between the
    // decrement and its fused branch), checkpoint, restore into a
    // fresh CPU, finish there.
    Cpu source(configWith(DispatchMode::Fused));
    loadAndStart(source, prog);
    source.run(40);
    ASSERT_FALSE(source.halted());
    ckpt::Writer writer;
    source.saveState(writer);
    const std::vector<uint8_t> doc = writer.seal();

    Cpu target(configWith(DispatchMode::Fused));
    target.restoreState(ckpt::Reader(doc));
    EXPECT_EQ(target.superblocksBuilt(), 0u)
        << "restore must drop derived superblocks";
    target.run(100'000);
    ASSERT_TRUE(target.halted());
    EXPECT_GT(target.superblocksBuilt(), 0u);
    EXPECT_EQ(observe(target), want);

    // Restoring into a switch-dispatch CPU gives the same result:
    // the dispatch mode is not part of the checkpointed state.
    Cpu plain(configWith(DispatchMode::Switch));
    plain.restoreState(ckpt::Reader(doc));
    plain.run(100'000);
    EXPECT_EQ(observe(plain), want);
}

TEST(Dispatch, ModeNamesAreStable)
{
    EXPECT_STREQ(dispatchModeName(DispatchMode::Switch), "switch");
    EXPECT_STREQ(dispatchModeName(DispatchMode::Threaded),
                 "threaded");
    EXPECT_STREQ(dispatchModeName(DispatchMode::Fused), "fused");
}

} // namespace
} // namespace rr::machine
