/**
 * @file
 * Tests for the MtStats reporting helpers and an assembler
 * robustness fuzz: arbitrary garbage input must produce diagnostics,
 * never crashes or bogus images.
 */

#include <gtest/gtest.h>

#include "assembler/assembler.hh"
#include "base/rng.hh"
#include "multithread/stats_report.hh"
#include "multithread/simulation_spec.hh"
#include "multithread/workload.hh"

namespace rr {
namespace {

TEST(StatsReport, BreakdownPartitionsTotal)
{
    mt::MtConfig config = mt::SimulationSpec()
                              .syncFaults(32.0, 400.0)
                              .threads(16)
                              .build();
    const mt::MtStats stats = mt::simulate(std::move(config));

    const Table table = mt::cycleBreakdownTable(stats);
    EXPECT_EQ(table.numRows(), 9u); // 8 categories + total
    const std::string text = table.render();
    EXPECT_NE(text.find("useful work"), std::string::npos);
    EXPECT_NE(text.find("context switch"), std::string::npos);
    EXPECT_NE(text.find("total"), std::string::npos);
}

TEST(StatsReport, SummaryLineMentionsKeyNumbers)
{
    mt::MtConfig config = mt::SimulationSpec()
                              .cacheFaults(32.0, 100)
                              .arch(mt::ArchKind::FixedHw)
                              .numRegs(64)
                              .threads(8)
                              .build();
    const mt::MtStats stats = mt::simulate(std::move(config));
    const std::string line = mt::summaryLine(stats);
    EXPECT_NE(line.find("eff "), std::string::npos);
    EXPECT_NE(line.find("faults"), std::string::npos);
    EXPECT_NE(line.find("resident avg"), std::string::npos);
}

TEST(StatsReport, ZeroStatsRenderWithoutDivideByZero)
{
    const mt::MtStats empty;
    const Table table = mt::cycleBreakdownTable(empty);
    EXPECT_EQ(table.numRows(), 9u);
    EXPECT_FALSE(mt::summaryLine(empty).empty());
}

// Robustness fuzz: random printable garbage through the assembler.
TEST(AssemblerFuzz, GarbageNeverCrashes)
{
    Rng rng(2026);
    const char charset[] =
        "abcdefghijklmnopqrstuvwxyz0123456789 ,():.#;-rx\n\t";
    for (int trial = 0; trial < 500; ++trial) {
        std::string source;
        const size_t len = 1 + rng.nextRange(0, 200);
        for (size_t i = 0; i < len; ++i) {
            source.push_back(
                charset[rng.nextRange(0, sizeof(charset) - 2)]);
        }
        const assembler::Program prog = assembler::assemble(source);
        // Either it assembled (tiny chance) or produced diagnostics;
        // both must leave a consistent Program.
        if (!prog.ok()) {
            EXPECT_FALSE(prog.errors.empty());
        }
        EXPECT_EQ(prog.words.size(), prog.lines.size());
    }
}

// Mutation fuzz: start from valid code, flip characters.
TEST(AssemblerFuzz, MutatedValidProgramsNeverCrash)
{
    const std::string valid = "start: addi r1, r2, 10\n"
                              "  ld r3, 4(r1)\n"
                              "  bne r1, r3, start\n"
                              "  jal r0, start\n"
                              "  halt\n";
    Rng rng(77);
    for (int trial = 0; trial < 500; ++trial) {
        std::string source = valid;
        const int mutations = 1 + static_cast<int>(rng.nextRange(0, 4));
        for (int m = 0; m < mutations; ++m) {
            const size_t pos = rng.nextRange(0, source.size() - 1);
            source[pos] =
                static_cast<char>(32 + rng.nextRange(0, 94));
        }
        const assembler::Program prog = assembler::assemble(source);
        EXPECT_EQ(prog.words.size(), prog.lines.size());
    }
}

} // namespace
} // namespace rr
