/**
 * @file
 * Randomized invariant sweep over the multithreading simulator: for
 * a grid of architectures, unload policies, fault models, and
 * register file sizes (parameterized gtest), every run must satisfy
 * the structural invariants of the model regardless of the stochastic
 * outcome.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "multithread/simulation_spec.hh"
#include "multithread/workload.hh"

namespace rr::mt {
namespace {

struct SweepParam
{
    ArchKind arch;
    UnloadPolicyKind unload;
    bool sync_faults;
    unsigned numRegs;
    uint64_t seed;
};

std::string
paramName(const ::testing::TestParamInfo<SweepParam> &info)
{
    const SweepParam &p = info.param;
    std::string name = archName(p.arch);
    name += p.unload == UnloadPolicyKind::TwoPhase ? "_twophase"
                                                   : "_never";
    name += p.sync_faults ? "_sync" : "_cache";
    name += "_F" + std::to_string(p.numRegs);
    name += "_s" + std::to_string(p.seed);
    return name;
}

class MtInvariants : public ::testing::TestWithParam<SweepParam>
{
  protected:
    MtConfig
    makeConfig() const
    {
        const SweepParam &p = GetParam();
        SimulationSpec spec;
        if (p.sync_faults)
            spec.syncFaults(32.0, 400.0);
        else
            spec.cacheFaults(32.0, 400);
        MtConfig config = spec.arch(p.arch)
                              .numRegs(p.numRegs)
                              .threads(24)
                              .workPerThread(6000)
                              .seed(p.seed)
                              .build();
        config.unloadPolicy = p.unload;
        return config;
    }
};

TEST_P(MtInvariants, StructuralInvariantsHold)
{
    MtConfig config = makeConfig();
    const unsigned num_threads = config.workload.numThreads;
    MtProcessor processor(std::move(config));
    const MtStats stats = processor.run();

    // Every thread ran to completion.
    EXPECT_EQ(stats.threadsFinished, num_threads);
    for (const Thread &t : processor.threads()) {
        EXPECT_EQ(t.state, ThreadState::Finished);
        EXPECT_EQ(t.remainingWork, 0u);
        EXPECT_FALSE(t.context.has_value());
    }

    // Cycle accounting partitions the total exactly.
    EXPECT_EQ(stats.accountedCycles(), stats.totalCycles);
    // Useful work equals the configured supply.
    EXPECT_EQ(stats.usefulCycles, num_threads * 6000u);

    // Efficiency bounds.
    EXPECT_GT(stats.efficiencyTotal, 0.0);
    EXPECT_LE(stats.efficiencyTotal, 1.0);
    EXPECT_GE(stats.efficiencyCentral, 0.0);
    EXPECT_LE(stats.efficiencyCentral, 1.0);

    // Load/unload bookkeeping: every thread loads at least once;
    // every unload implies a subsequent reload before completion.
    EXPECT_GE(stats.loads, static_cast<uint64_t>(num_threads));
    EXPECT_EQ(stats.loads, stats.allocSuccesses);
    EXPECT_EQ(stats.loads, stats.unloads + num_threads);

    // Fault classes partition the fault count.
    EXPECT_EQ(stats.faults, stats.cacheFaults + stats.syncFaults);

    // Never-unload policy never unloads.
    if (GetParam().unload == UnloadPolicyKind::Never) {
        EXPECT_EQ(stats.unloads, 0u);
    }

    // Residency can never exceed the file capacity for the smallest
    // context.
    EXPECT_LE(stats.maxResidentContexts, GetParam().numRegs / 4);
    EXPECT_LE(stats.avgResidentContexts,
              static_cast<double>(stats.maxResidentContexts));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MtInvariants,
    ::testing::ValuesIn([] {
        std::vector<SweepParam> params;
        for (const ArchKind arch :
             {ArchKind::Flexible, ArchKind::FixedHw,
              ArchKind::AddReloc}) {
            for (const UnloadPolicyKind unload :
                 {UnloadPolicyKind::Never,
                  UnloadPolicyKind::TwoPhase}) {
                for (const bool sync_faults : {false, true}) {
                    for (const unsigned num_regs : {64u, 128u}) {
                        for (const uint64_t seed : {1ull, 2ull}) {
                            params.push_back({arch, unload,
                                              sync_faults, num_regs,
                                              seed});
                        }
                    }
                }
            }
        }
        return params;
    }()),
    paramName);

// Per-thread statistics are consistent with the aggregates.
TEST(MtPerThread, ThreadCountersSumToAggregates)
{
    MtConfig config = SimulationSpec()
                          .syncFaults(32.0, 800.0)
                          .numRegs(64)
                          .threads(24)
                          .build();
    MtProcessor processor(std::move(config));
    const MtStats stats = processor.run();

    uint64_t faults = 0, loads = 0, unloads = 0;
    for (const Thread &t : processor.threads()) {
        faults += t.faults;
        loads += t.timesLoaded;
        unloads += t.timesUnloaded;
        EXPECT_GE(t.timesLoaded, 1u);
        EXPECT_EQ(t.timesLoaded, t.timesUnloaded + 1);
    }
    EXPECT_EQ(faults, stats.faults);
    EXPECT_EQ(loads, stats.loads);
    EXPECT_EQ(unloads, stats.unloads);
}

} // namespace
} // namespace rr::mt
