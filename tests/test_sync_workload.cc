/**
 * @file
 * Tests for the synchronization workloads: real concurrent programs
 * (spinlocks, semaphores, ring buffers, barriers) running on the
 * cycle-level machine, with every wait endogenous.
 */

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "analysis/static/lint.hh"
#include "assembler/assembler.hh"
#include "kernel/sync_workload.hh"
#include "trace/sink.hh"

namespace rr::kernel {
namespace {

using runtime::SyncScenario;

SyncWorkloadConfig
baseConfig(SyncScenario scenario)
{
    SyncWorkloadConfig config;
    config.scenario = scenario;
    config.numThreads = 4;
    config.rounds = 3;
    config.itemsPerProducer = 4;
    return config;
}

uint64_t
expectedWork(const SyncWorkloadConfig &c)
{
    switch (c.scenario) {
      case SyncScenario::UncontendedLock:
      case SyncScenario::LockConvoy:
        return uint64_t{c.numThreads} * c.rounds *
               (c.csUnits + c.ncUnits);
      case SyncScenario::ProducerConsumer: {
        const unsigned producers =
            c.producers != 0 ? c.producers : c.numThreads / 2;
        const uint64_t items =
            uint64_t{producers} * c.itemsPerProducer;
        return items * c.produceUnits + items * c.consumeUnits;
      }
      case SyncScenario::BarrierSkew: {
        uint64_t per_phase = 0;
        for (unsigned t = 0; t < c.numThreads; ++t)
            per_phase += c.barrierBaseUnits +
                         c.barrierSkewUnits * (t % 4);
        return per_phase * c.rounds;
      }
    }
    return 0;
}

TEST(SyncWorkload, ScenariosHaltAndConserveWork)
{
    for (const auto scenario :
         {SyncScenario::UncontendedLock, SyncScenario::LockConvoy,
          SyncScenario::ProducerConsumer, SyncScenario::BarrierSkew}) {
        const SyncWorkloadConfig config = baseConfig(scenario);
        const SyncWorkloadResult result = runSyncWorkload(config);
        EXPECT_TRUE(result.halted)
            << runtime::syncScenarioName(scenario);
        EXPECT_EQ(result.workUnits, expectedWork(config))
            << runtime::syncScenarioName(scenario);
        EXPECT_EQ(result.usefulCycles, 2 * result.workUnits);
    }
}

TEST(SyncWorkload, PrivateLocksNeverContend)
{
    const SyncWorkloadResult result =
        runSyncWorkload(baseConfig(SyncScenario::UncontendedLock));
    EXPECT_TRUE(result.halted);
    EXPECT_EQ(result.lockSpins, 0u);
    // Each round takes the thread's own lock once; thread_exit takes
    // the exit latch once per thread.
    EXPECT_EQ(result.lockAcquires, 4u * 3u + 4u);
    EXPECT_EQ(result.faults, 4u * 3u);
}

TEST(SyncWorkload, SharedLockConvoysUnderFaultsInTheCriticalSection)
{
    const SyncWorkloadConfig uncontended =
        baseConfig(SyncScenario::UncontendedLock);
    const SyncWorkloadConfig convoy =
        baseConfig(SyncScenario::LockConvoy);
    const SyncWorkloadResult ru = runSyncWorkload(uncontended);
    const SyncWorkloadResult rc = runSyncWorkload(convoy);
    ASSERT_TRUE(ru.halted);
    ASSERT_TRUE(rc.halted);
    // Identical instruction streams — only the lock address differs —
    // yet the shared lock serializes the critical sections and the
    // holder's FAULT makes everyone else spin.
    EXPECT_GT(rc.lockSpins, 0u);
    EXPECT_GT(rc.totalCycles, ru.totalCycles);
    EXPECT_EQ(rc.workUnits, ru.workUnits);
    EXPECT_EQ(rc.lockAcquires, ru.lockAcquires);
}

TEST(SyncWorkload, ProducerConsumerConservesItems)
{
    SyncWorkloadConfig config =
        baseConfig(SyncScenario::ProducerConsumer);
    const SyncWorkloadResult result = runSyncWorkload(config);
    ASSERT_TRUE(result.halted);
    const uint64_t items = 2u * config.itemsPerProducer;
    EXPECT_EQ(result.itemsProduced, items);
    EXPECT_EQ(result.itemsConsumed, items);
    // Unbalanced sides (producers work 3x per item) starve the
    // consumers into semaphore waits.
    EXPECT_GT(result.semWaits, 0u);
    // Ring mutex once per item on each side, exit latch per thread.
    EXPECT_EQ(result.lockAcquires, 2 * items + config.numThreads);
}

TEST(SyncWorkload, BarrierReleasesOncePerPhase)
{
    SyncWorkloadConfig config = baseConfig(SyncScenario::BarrierSkew);
    const SyncWorkloadResult result = runSyncWorkload(config);
    ASSERT_TRUE(result.halted);
    EXPECT_EQ(result.barrierReleases, config.rounds);
    // Work skew (10 vs 55 units) forces fast threads to spin.
    EXPECT_GT(result.barrierWaits, 0u);
    EXPECT_EQ(result.faults, 0u);
}

TEST(SyncWorkload, SmallRingThrottlesProducers)
{
    SyncWorkloadConfig wide = baseConfig(SyncScenario::ProducerConsumer);
    wide.ringSize = 8;
    SyncWorkloadConfig tight = wide;
    tight.ringSize = 1;
    const SyncWorkloadResult rw = runSyncWorkload(wide);
    const SyncWorkloadResult rt = runSyncWorkload(tight);
    ASSERT_TRUE(rw.halted);
    ASSERT_TRUE(rt.halted);
    EXPECT_EQ(rw.itemsConsumed, rt.itemsConsumed);
    // One slot forces strict alternation: more blocked semaphore
    // waits, never fewer.
    EXPECT_GE(rt.semWaits, rw.semWaits);
}

void
expectSameResult(const SyncWorkloadResult &a, const SyncWorkloadResult &b,
                 const char *what)
{
    EXPECT_EQ(a.totalCycles, b.totalCycles) << what;
    EXPECT_EQ(a.workUnits, b.workUnits) << what;
    EXPECT_EQ(a.faults, b.faults) << what;
    EXPECT_EQ(a.failedPolls, b.failedPolls) << what;
    EXPECT_EQ(a.lockAcquires, b.lockAcquires) << what;
    EXPECT_EQ(a.lockSpins, b.lockSpins) << what;
    EXPECT_EQ(a.semWaits, b.semWaits) << what;
    EXPECT_EQ(a.barrierWaits, b.barrierWaits) << what;
    EXPECT_EQ(a.barrierReleases, b.barrierReleases) << what;
    EXPECT_EQ(a.itemsProduced, b.itemsProduced) << what;
    EXPECT_EQ(a.itemsConsumed, b.itemsConsumed) << what;
    EXPECT_EQ(a.halted, b.halted) << what;
}

TEST(SyncWorkload, DispatchModesAgreeToTheByte)
{
    // FAULT-heavy spin loops under superblock caching: every
    // scenario must produce identical counters *and* an identical
    // event stream under all three dispatch modes.
    for (const auto scenario :
         {SyncScenario::LockConvoy, SyncScenario::ProducerConsumer,
          SyncScenario::BarrierSkew}) {
        std::string reference_trace;
        SyncWorkloadResult reference;
        bool first = true;
        for (const auto mode : {machine::DispatchMode::Switch,
                                machine::DispatchMode::Threaded,
                                machine::DispatchMode::Fused}) {
            SyncWorkloadConfig config = baseConfig(scenario);
            config.dispatch = mode;
            std::ostringstream out;
            trace::StreamJsonSink sink(out);
            config.traceSink = &sink;
            const SyncWorkloadResult result =
                runSyncWorkload(config);
            EXPECT_TRUE(result.halted);
            if (first) {
                reference = result;
                reference_trace = out.str();
                first = false;
            } else {
                expectSameResult(reference, result,
                                 machine::dispatchModeName(mode));
                EXPECT_EQ(reference_trace, out.str())
                    << machine::dispatchModeName(mode);
            }
        }
    }
}

TEST(SyncWorkload, TraceCountsReconcileWithResultCounters)
{
    trace::VectorSink sink;
    SyncWorkloadConfig config = baseConfig(SyncScenario::LockConvoy);
    config.traceSink = &sink;
    const SyncWorkloadResult result = runSyncWorkload(config);
    ASSERT_TRUE(result.halted);

    uint64_t issues = 0, completes = 0, polls = 0;
    for (const auto &event : sink.events()) {
        switch (event.kind) {
          case trace::EventKind::FaultIssue: ++issues; break;
          case trace::EventKind::FaultComplete: ++completes; break;
          case trace::EventKind::SchedulerPoll: ++polls; break;
          default: break;
        }
    }
    EXPECT_EQ(issues, result.faults);
    EXPECT_EQ(completes, result.faults);
    EXPECT_EQ(polls, result.failedPolls);
}

TEST(SyncWorkload, GeneratedProgramsLintCleanUnderStrict)
{
    for (const auto scenario :
         {SyncScenario::UncontendedLock, SyncScenario::LockConvoy,
          SyncScenario::ProducerConsumer, SyncScenario::BarrierSkew}) {
        runtime::SyncProgramParams params;
        params.scenario = scenario;
        const std::string source =
            runtime::syncScenarioSource(params);
        const assembler::Program program =
            assembler::assemble(source);
        ASSERT_TRUE(program.errors.empty())
            << runtime::syncScenarioName(scenario);

        lint::LintOptions options;
        options.interprocedural = true;
        options.lockset = true;
        const lint::LintResult lint =
            lint::lintProgram(program, options);
        EXPECT_EQ(lint.errors, 0u)
            << runtime::syncScenarioName(scenario);
        EXPECT_EQ(lint.warnings, 0u)
            << runtime::syncScenarioName(scenario);
        EXPECT_TRUE(lint.races.empty())
            << runtime::syncScenarioName(scenario);
    }
}

TEST(SyncWorkload, FlexibleContextsDoubleResidencyAtEqualWork)
{
    // The paper's capacity argument on a real workload: a 128-entry
    // file holds eight 16-register contexts or four fixed 32-register
    // contexts. Same total work (16 thread-rounds of the convoy);
    // flexible contexts overlap more lock holders' fault latencies.
    SyncWorkloadConfig flexible = baseConfig(SyncScenario::LockConvoy);
    flexible.numThreads = 8;
    flexible.rounds = 2;
    SyncWorkloadConfig fixed = baseConfig(SyncScenario::LockConvoy);
    fixed.numThreads = 4;
    fixed.rounds = 4;
    fixed.forcedContextSize = 32;

    const SyncWorkloadResult rflex = runSyncWorkload(flexible);
    const SyncWorkloadResult rfix = runSyncWorkload(fixed);
    ASSERT_TRUE(rflex.halted);
    ASSERT_TRUE(rfix.halted);
    EXPECT_EQ(rflex.residentContexts, 8u);
    EXPECT_EQ(rfix.residentContexts, 4u);
    EXPECT_EQ(rflex.workUnits, rfix.workUnits);
}

} // namespace
} // namespace rr::kernel
