/**
 * @file
 * ISA tests: encode/decode round trips across every opcode and
 * format (parameterized), immediate range checking, and the
 * disassembler.
 */

#include <gtest/gtest.h>

#include "base/rng.hh"
#include "isa/instruction.hh"

namespace rr::isa {
namespace {

TEST(Isa, MnemonicLookupRoundTrip)
{
    for (unsigned i = 0; i < numOpcodes; ++i) {
        const auto op = static_cast<Opcode>(i);
        Opcode back;
        ASSERT_TRUE(opcodeFromMnemonic(mnemonicOf(op), back))
            << mnemonicOf(op);
        EXPECT_EQ(back, op);
    }
}

TEST(Isa, UnknownMnemonicRejected)
{
    Opcode op;
    EXPECT_FALSE(opcodeFromMnemonic("bogus", op));
    EXPECT_FALSE(opcodeFromMnemonic("", op));
}

TEST(Isa, InvalidOpcodeFieldRejected)
{
    Instruction inst;
    EXPECT_FALSE(decode(0xff000000u, inst));
}

/**
 * Property: for every opcode, generating random operands legal for
 * its format, encode -> decode is the identity.
 */
class RoundTrip : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(RoundTrip, EncodeDecodeIdentity)
{
    const auto op = static_cast<Opcode>(GetParam());
    const Format fmt = formatOf(op);
    const FormatInfo info = formatInfo(fmt);
    Rng rng(GetParam() * 977 + 1);

    for (int trial = 0; trial < 200; ++trial) {
        Instruction inst;
        inst.op = op;
        if (info.hasRd || fmt == Format::R1D || fmt == Format::R2 ||
            fmt == Format::R3 || fmt == Format::I || fmt == Format::J ||
            fmt == Format::UI) {
            inst.rd = static_cast<uint8_t>(rng.nextRange(0, 63));
        }
        if (fmt == Format::R3 || fmt == Format::R2 ||
            fmt == Format::R1S || fmt == Format::I || fmt == Format::B ||
            fmt == Format::Rs1Imm) {
            inst.rs1 = static_cast<uint8_t>(rng.nextRange(0, 63));
        }
        if (fmt == Format::R3 || fmt == Format::B)
            inst.rs2 = static_cast<uint8_t>(rng.nextRange(0, 63));
        if (info.hasImm) {
            if (info.immSigned) {
                const int32_t lo = -(1 << (info.immBits - 1));
                const int32_t hi = (1 << (info.immBits - 1)) - 1;
                inst.imm = static_cast<int32_t>(rng.nextRange(
                               0, static_cast<uint64_t>(hi - lo))) +
                           lo;
            } else {
                inst.imm = static_cast<int32_t>(
                    rng.nextRange(0, (1u << info.immBits) - 1));
            }
        }

        // Fields not used by the format must be zero for identity.
        const uint32_t word = encode(inst);
        Instruction back;
        ASSERT_TRUE(decode(word, back));
        EXPECT_EQ(back, inst)
            << "op=" << mnemonicOf(op) << " word=" << std::hex << word;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, RoundTrip,
    ::testing::Range(0u, numOpcodes),
    [](const ::testing::TestParamInfo<unsigned> &info) {
        return std::string(mnemonicOf(static_cast<Opcode>(info.param)));
    });

TEST(Isa, SignedImmediateSignExtension)
{
    const Instruction inst = makeI(Opcode::ADDI, 1, 2, -1);
    Instruction back;
    ASSERT_TRUE(decode(encode(inst), back));
    EXPECT_EQ(back.imm, -1);

    const Instruction min_imm = makeI(Opcode::ADDI, 1, 2, -2048);
    ASSERT_TRUE(decode(encode(min_imm), back));
    EXPECT_EQ(back.imm, -2048);
}

TEST(Isa, Jump18BitImmediate)
{
    const Instruction inst = makeJ(Opcode::JAL, 3, -100000);
    Instruction back;
    ASSERT_TRUE(decode(encode(inst), back));
    EXPECT_EQ(back.imm, -100000);
}

TEST(IsaDeath, ImmediateOverflowPanics)
{
    EXPECT_DEATH(encode(makeI(Opcode::ADDI, 1, 2, 5000)), "immediate");
    EXPECT_DEATH(encode(makeI(Opcode::ADDI, 1, 2, -5000)), "immediate");
}

TEST(IsaDeath, RegisterOverflowPanics)
{
    EXPECT_DEATH(encode(makeR3(Opcode::ADD, 64, 0, 0)), "register");
}

TEST(Isa, DisassembleFormats)
{
    EXPECT_EQ(disassemble(makeR3(Opcode::ADD, 1, 2, 3)),
              "add r1, r2, r3");
    EXPECT_EQ(disassemble(makeI(Opcode::ADDI, 1, 2, -4)),
              "addi r1, r2, -4");
    EXPECT_EQ(disassemble(makeI(Opcode::LD, 5, 6, 8)), "ld r5, 8(r6)");
    EXPECT_EQ(disassemble(makeI(Opcode::ST, 5, 6, -2)),
              "st r5, -2(r6)");
    EXPECT_EQ(disassemble(makeB(Opcode::BNE, 1, 2, -3)),
              "bne r1, r2, -3");
    EXPECT_EQ(disassemble(makeJ(Opcode::JAL, 0, 12)), "jal r0, 12");
    Instruction ldrrm;
    ldrrm.op = Opcode::LDRRM;
    ldrrm.rs1 = 2;
    EXPECT_EQ(disassemble(ldrrm), "ldrrm r2");
    Instruction halt;
    halt.op = Opcode::HALT;
    EXPECT_EQ(disassemble(halt), "halt");
    EXPECT_EQ(disassemble(0xff000000u), "<invalid>");
}

} // namespace
} // namespace rr::isa
