/**
 * @file
 * Tests for the static-analysis subsystem behind rrlint: CFG
 * construction, backward liveness with LDRRM window barriers, the
 * forward RRM abstract interpretation, and the lint orchestration
 * (findings, per-window reports, text/JSON rendering).
 */

#include <gtest/gtest.h>

#include "analysis/static/callgraph.hh"
#include "analysis/static/cfg.hh"
#include "analysis/static/lint.hh"
#include "analysis/static/liveness.hh"
#include "analysis/static/lockset.hh"
#include "analysis/static/rrm_state.hh"
#include "assembler/assembler.hh"

namespace rr::lint {
namespace {

assembler::Program
prog(const std::string &source)
{
    assembler::Program p = assembler::assemble(source);
    EXPECT_TRUE(p.ok());
    return p;
}

uint64_t
bit(unsigned r)
{
    return uint64_t{1} << r;
}

// ---- CFG -----------------------------------------------------------------

TEST(Cfg, SplitsAtBranchesAndTargets)
{
    // entry (2 words: li) | loop body ending in bne | halt
    const auto p = prog("entry:\n"
                        "    li   r4, 3\n"
                        "loop:\n"
                        "    addi r4, r4, -1\n"
                        "    bne  r4, r5, loop\n"
                        "    halt\n");
    const Cfg cfg(p);
    ASSERT_EQ(cfg.blocks().size(), 3u);

    const uint32_t entry = cfg.entryBlock();
    ASSERT_NE(entry, Cfg::noBlock);
    EXPECT_EQ(cfg.blocks()[entry].begin, 0u);

    // entry falls through to the loop; the loop branches to itself
    // and falls through to halt.
    const uint32_t loop = cfg.blockAt(p.addressOf("loop"));
    const BasicBlock &loop_block = cfg.blocks()[loop];
    ASSERT_EQ(loop_block.succs.size(), 2u);
    EXPECT_EQ(cfg.blocks()[entry].succs,
              std::vector<uint32_t>{loop});

    const uint32_t halt = cfg.blockAt(loop_block.end);
    EXPECT_TRUE(cfg.blocks()[halt].succs.empty());
}

TEST(Cfg, UnconditionalBPseudoHasNoFallthroughEdge)
{
    const auto p = prog("entry:\n"
                        "    b    skip\n"
                        "    addi r1, r1, 1\n" // unreachable
                        "skip:\n"
                        "    halt\n");
    const Cfg cfg(p);
    const uint32_t entry = cfg.entryBlock();
    const uint32_t skip = cfg.blockAt(p.addressOf("skip"));
    EXPECT_EQ(cfg.blocks()[entry].succs, std::vector<uint32_t>{skip});

    // The unreachable addi block is a root (no predecessors).
    const auto roots = cfg.roots();
    EXPECT_EQ(roots.size(), 2u);
}

TEST(Cfg, IndirectJumpEndsBlockWithoutEdges)
{
    const auto p = prog("entry:\n"
                        "    jmp  r0\n"
                        "after:\n"
                        "    halt\n");
    const Cfg cfg(p);
    const uint32_t entry = cfg.entryBlock();
    EXPECT_TRUE(cfg.blocks()[entry].succs.empty());
    EXPECT_TRUE(cfg.blocks()[entry].indirectExit);
}

TEST(Cfg, DataWordsBelongToNoBlock)
{
    const auto p = prog("entry:\n"
                        "    halt\n"
                        ".word 0xffffffff\n"
                        "code:\n"
                        "    nop\n"
                        "    halt\n");
    const Cfg cfg(p);
    EXPECT_EQ(cfg.blockAt(1), Cfg::noBlock);
    EXPECT_NE(cfg.blockAt(p.addressOf("code")), Cfg::noBlock);
}

TEST(Cfg, DirectTargetsAreInstructionRelative)
{
    const auto p = prog("entry:\n"
                        "    nop\n"
                        "    jal  r1, entry\n");
    const Cfg cfg(p);
    uint32_t target = 99;
    ASSERT_TRUE(cfg.directTarget(cfg.at(1), target));
    EXPECT_EQ(target, 0u);
}

// ---- liveness ------------------------------------------------------------

TEST(Liveness, UseDefSlots)
{
    const auto p = prog("add r3, r1, r2\n"
                        "st  r4, 0(r5)\n"
                        "jal r6, 0\n");
    const Cfg cfg(p);

    const UseDef add = useDef(cfg.at(0).inst);
    EXPECT_EQ(add.uses, bit(1) | bit(2));
    EXPECT_EQ(add.defs, bit(3));

    // ST's slot A is the stored value — a use, not a def.
    const UseDef st = useDef(cfg.at(1).inst);
    EXPECT_EQ(st.uses, bit(4) | bit(5));
    EXPECT_EQ(st.defs, 0u);

    const UseDef jal = useDef(cfg.at(2).inst);
    EXPECT_EQ(jal.defs, bit(6));
}

TEST(Liveness, LoopLiveIn)
{
    const auto p = prog("entry:\n"
                        "    li   r4, 3\n"
                        "loop:\n"
                        "    add  r3, r3, r4\n"
                        "    bne  r4, r5, loop\n"
                        "    halt\n");
    const Cfg cfg(p);
    const Liveness live(cfg);

    // At entry, r3 and r5 are live (read before written anywhere);
    // r4 is defined first.
    const uint64_t in = live.liveIn(cfg.entryBlock());
    EXPECT_TRUE(in & bit(3));
    EXPECT_TRUE(in & bit(5));
    EXPECT_FALSE(in & bit(4));
}

TEST(Liveness, WindowBarrierRecordsEntryLiveSet)
{
    // After the ldrrm+delay, the new window reads r1 before writing
    // it: r1 is the new context's entry requirement, and must NOT
    // propagate into the old window's live-in.
    const auto p = prog("entry:\n"
                        "    li    r9, 0x20\n"
                        "    ldrrm r9\n"
                        "    nop\n"
                        "    add   r2, r1, r1\n"
                        "    halt\n");
    const Cfg cfg(p);
    const Liveness live(cfg);

    const auto &windows = live.windowEntryLive();
    ASSERT_EQ(windows.size(), 1u);
    const auto [addr, mask] = *windows.begin();
    EXPECT_EQ(addr, 4u); // li is 2 words; ldrrm at 2; nop at 3
    EXPECT_EQ(mask, bit(1));

    // Old window: nothing live at entry (r9 is written first; the
    // new window's r1 is a different physical register).
    EXPECT_EQ(live.liveIn(cfg.entryBlock()), 0u);
}

TEST(Liveness, NoBarrierWhenDisabled)
{
    const auto p = prog("entry:\n"
                        "    li    r9, 0x20\n"
                        "    ldrrm r9\n"
                        "    nop\n"
                        "    add   r2, r1, r1\n"
                        "    halt\n");
    const Cfg cfg(p);
    LivenessOptions options;
    options.windowBarriers = false;
    const Liveness live(cfg, options);
    EXPECT_TRUE(live.windowEntryLive().empty());
    // Textbook liveness: r1 leaks across the window switch.
    EXPECT_EQ(live.liveIn(cfg.entryBlock()), bit(1));
}

// ---- RRM abstract interpretation -----------------------------------------

TEST(RrmState, TracksLiLdrrmThroughDelaySlot)
{
    const auto p = prog("entry:\n"
                        "    li    r9, 0x20\n" // addr 0, 1
                        "    ldrrm r9\n"       // addr 2
                        "    nop\n"            // addr 3: delay slot
                        "    nop\n"            // addr 4: new window
                        "    halt\n");
    const Cfg cfg(p);
    const RrmAnalysis rrm(cfg);

    EXPECT_EQ(rrm.rrmBefore(2), AbsVal::constant(0));
    EXPECT_EQ(rrm.rrmBefore(3), AbsVal::constant(0)); // delay slot
    EXPECT_EQ(rrm.rrmBefore(4), AbsVal::constant(0x20));
    EXPECT_EQ(rrm.observedWindows(),
              (std::vector<uint32_t>{0, 0x20}));
    EXPECT_TRUE(rrm.hazards().empty());
}

TEST(RrmState, ConstantsSurviveWindowSwitches)
{
    // Writes under window 0 are keyed by physical register, so the
    // value in r9 (phys 9) is still known after switching windows
    // and back.
    const auto p = prog("entry:\n"
                        "    li    r9, 0x20\n"
                        "    li    r8, 0\n"
                        "    ldrrm r9\n"
                        "    nop\n"
                        "    ldrrm r8\n" // window 0x20: phys 0x28 = ?
                        "    nop\n"
                        "    halt\n");
    const Cfg cfg(p);
    const RrmAnalysis rrm(cfg);
    // The second ldrrm reads r8 under window 0x20 -> phys 0x28,
    // which was never written: the final window is unknown, not a
    // wrong constant.
    EXPECT_TRUE(rrm.rrmBefore(8).isTop()); // halt at addr 8
}

TEST(RrmState, JoinOfDifferentMasksIsTop)
{
    const auto p = prog("entry:\n"
                        "    li    r9, 0x20\n"
                        "    beq   r1, r2, other\n"
                        "    li    r9, 0x30\n"
                        "other:\n"
                        "    ldrrm r9\n"
                        "    nop\n"
                        "    nop\n"
                        "    halt\n");
    const Cfg cfg(p);
    const RrmAnalysis rrm(cfg);
    const uint32_t halt_addr = p.addressOf("other") + 3;
    EXPECT_TRUE(rrm.rrmBefore(halt_addr).isTop());
}

TEST(RrmState, FlagsLdrrmInsideDelayWindow)
{
    const auto p = prog("entry:\n"
                        "    li    r8, 0x10\n"
                        "    ldrrm r8\n"
                        "    ldrrm r8\n"
                        "    halt\n");
    const Cfg cfg(p);
    const RrmAnalysis rrm(cfg);
    ASSERT_EQ(rrm.hazards().size(), 1u);
    EXPECT_EQ(rrm.hazards()[0].kind, RrmHazard::LdrrmInDelay);
    EXPECT_EQ(rrm.hazards()[0].address, 3u);
}

TEST(RrmState, FlagsControlTransferInsideDelayWindow)
{
    const auto p = prog("entry:\n"
                        "    li    r8, 0x10\n"
                        "    ldrrm r8\n"
                        "    b     entry\n");
    const Cfg cfg(p);
    const RrmAnalysis rrm(cfg);
    ASSERT_EQ(rrm.hazards().size(), 1u);
    EXPECT_EQ(rrm.hazards()[0].kind, RrmHazard::ControlInDelay);
    EXPECT_EQ(rrm.hazards()[0].address, 3u);
}

TEST(RrmState, FigureThreeYieldIdiomIsClean)
{
    // The paper's Figure 3 yield: the delay slot is used for the PSW
    // save, and the jmp executes after the window switch - no
    // hazards.
    const auto p = prog("yield:\n"
                        "    ldrrm r2\n"
                        "    mov   r1, psw\n"
                        "    mov   psw, r1\n"
                        "    jmp   r0\n");
    const Cfg cfg(p);
    const RrmAnalysis rrm(cfg);
    EXPECT_TRUE(rrm.hazards().empty());
}

// ---- lint orchestration --------------------------------------------------

TEST(Lint, FlatBoundaryFindingCarriesLine)
{
    const auto p = prog("entry:\n"
                        "    nop\n"
                        "    add r17, r1, r2\n");
    LintOptions options;
    options.declaredContext = 16;
    const LintResult result = lintProgram(p, options);
    ASSERT_EQ(result.errors, 1u);
    const Finding &f = result.findings[0];
    EXPECT_EQ(f.code, "boundary");
    EXPECT_EQ(f.address, 1u);
    EXPECT_EQ(f.line, 3);
    EXPECT_NE(f.message.find("r17"), std::string::npos);
}

TEST(Lint, FlowSensitiveOverlapNeedsNoDeclaredRegions)
{
    // Under RRM 0x10, r17 shares bit 4 with the mask: the access
    // escapes the 16-register window. No Region declarations needed.
    const auto p = prog("entry:\n"
                        "    li    r8, 0x10\n"
                        "    ldrrm r8\n"
                        "    nop\n"
                        "    add   r17, r1, r2\n"
                        "    halt\n");
    const LintResult result = lintProgram(p, {});
    ASSERT_EQ(result.errors, 1u);
    EXPECT_EQ(result.findings[0].code, "rrm-overlap");
    EXPECT_EQ(result.findings[0].address, 4u);
}

TEST(Lint, CrossContextWriteHitsLiveRegister)
{
    // Window 0x20 writes r17 -> phys 0x31, which is r1 of window
    // 0x30 - and window 0x30 reads r1 before writing it.
    const auto p = prog("entry:\n"
                        "    li    r9, 0x20\n"
                        "    ldrrm r9\n"
                        "    nop\n"
                        "    addi  r17, r17, 1\n" // phys 0x31
                        "    li    r8, 0x30\n"
                        "    ldrrm r8\n"
                        "    nop\n"
                        "    add   r2, r1, r1\n" // r1 live at entry
                        "    halt\n");
    const LintResult result = lintProgram(p, {});
    bool found = false;
    for (const Finding &f : result.findings) {
        if (f.code == "cross-context-write") {
            found = true;
            EXPECT_EQ(f.severity, Severity::Warning);
            EXPECT_NE(f.message.find("0x31"), std::string::npos);
        }
    }
    EXPECT_TRUE(found);
    EXPECT_GE(result.warnings, 1u);
}

TEST(Lint, ReportsPerWindowMinimalContext)
{
    const auto p = prog("entry:\n"
                        "    li    r9, 0x20\n"
                        "    ldrrm r9\n"
                        "    nop\n"
                        "    add   r2, r1, r4\n"
                        "    halt\n");
    const LintResult result = lintProgram(p, {});
    ASSERT_EQ(result.threads.size(), 2u);

    // Window 0: r9 referenced -> 10 registers -> context 16.
    EXPECT_EQ(result.threads[0].rrm, 0u);
    EXPECT_EQ(result.threads[0].registers, 10u);
    EXPECT_EQ(result.threads[0].minContext, 16u);

    // Window 0x20: r1, r2, r4 -> 5 registers -> context 8; r1 and
    // r4 are read before being written: the entry requirement.
    EXPECT_EQ(result.threads[1].rrm, 0x20u);
    EXPECT_EQ(result.threads[1].registers, 5u);
    EXPECT_EQ(result.threads[1].minContext, 8u);
    EXPECT_EQ(result.threads[1].liveIn, bit(1) | bit(4));
}

TEST(Lint, MultiRrmBankOperandsExcused)
{
    // r37 = bank 1, offset 5: fine with 2 banks, flagged without.
    const auto p = prog("add r37, r1, r2\nhalt\n");
    LintOptions options;
    options.declaredContext = 8;
    EXPECT_EQ(lintProgram(p, options).errors, 1u);

    options.banks = 2;
    EXPECT_EQ(lintProgram(p, options).errors, 0u);
}

TEST(Lint, InvalidWordsFlaggedOnRequest)
{
    const auto p = prog(".word 0xffffffff\nhalt\n");
    EXPECT_EQ(lintProgram(p, {}).errors, 0u);

    LintOptions options;
    options.flagInvalidWords = true;
    const LintResult result = lintProgram(p, options);
    ASSERT_EQ(result.errors, 1u);
    EXPECT_EQ(result.findings[0].code, "invalid-word");
}

TEST(Lint, RenderTextAndJsonCarrySourceLines)
{
    const auto p = prog("entry:\n"
                        "    nop\n"
                        "    add r17, r1, r2\n");
    LintOptions options;
    options.declaredContext = 16;
    const LintResult result = lintProgram(p, options);

    const std::string text = renderText(result, "input.s");
    EXPECT_NE(text.find("line 3"), std::string::npos);
    EXPECT_NE(text.find("[boundary]"), std::string::npos);
    EXPECT_NE(text.find("1 error(s)"), std::string::npos);

    const std::string json = renderJson(result, "input.s");
    EXPECT_NE(json.find("\"line\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"code\": \"boundary\""), std::string::npos);
    EXPECT_NE(json.find("\"errors\": 1"), std::string::npos);
}

TEST(Lint, JsonEscapesSpecialCharacters)
{
    const auto p = prog("halt\n");
    const LintResult result = lintProgram(p, {});
    const std::string json =
        renderJson(result, "dir\\na\"me.s");
    EXPECT_NE(json.find("dir\\\\na\\\"me.s"), std::string::npos);
}

TEST(Lint, FlatOnlyModeSkipsFlowAnalyses)
{
    const auto p = prog("entry:\n"
                        "    li    r8, 0x10\n"
                        "    ldrrm r8\n"
                        "    ldrrm r8\n"
                        "    halt\n");
    LintOptions options;
    options.flowSensitive = false;
    const LintResult result = lintProgram(p, options);
    EXPECT_TRUE(result.clean());
    EXPECT_TRUE(result.threads.empty());
}

// ---- Call graph ----------------------------------------------------------

// The tests/asm/ fixture sources, pinned inline so behavior changes
// show up here before they show up in the tool-integration tests.

const char *kCrossCallHazard = "entry:\n"
                               "    jal   r8, open_window\n"
                               "    add   r1, r1, r1\n"
                               "    halt\n"
                               "open_window:\n"
                               "    li    r4, 0x10\n"
                               "    ldrrm r4\n"
                               "    jmp   r8\n";

const char *kUndersizedChain = "entry:\n"
                               "    li    r4, 0x10\n"
                               "    ldrrm r4\n"
                               "    nop\n"
                               "    jal   r8, a\n"
                               "    halt\n"
                               "a:\n"
                               "    jal   r9, b\n"
                               "    jmp   r8\n"
                               "b:\n"
                               "    add   r20, r20, r20\n"
                               "    jmp   r9\n";

std::string
counterSource(bool t1Locked)
{
    std::string body = "    li    r4, 0x80\n"
                       "    ld    r1, 0(r4)\n"
                       "    addi  r1, r1, 1\n"
                       "    st    r1, 0(r4)\n";
    std::string locked = "    jal   r8, lock_acquire\n" + body +
                         "    jal   r8, lock_release\n";
    return "    .thread t0\n"
           "    .thread t1\n"
           "    .lockdef m, lock_acquire, lock_release\n"
           "entry:\n"
           "    halt\n"
           "t0:\n" +
           locked + "    halt\n" + "t1:\n" +
           (t1Locked ? locked : body) + "    halt\n" +
           "lock_acquire:\n"
           "    li    r5, 0x81\n"
           "    li    r6, 1\n"
           "spin:\n"
           "    ld    r7, 0(r5)\n"
           "    beq   r7, r6, spin\n"
           "    st    r6, 0(r5)\n"
           "    jmp   r8\n"
           "lock_release:\n"
           "    li    r5, 0x81\n"
           "    li    r6, 0\n"
           "    st    r6, 0(r5)\n"
           "    jmp   r8\n";
}

const Procedure *
procNamed(const CallGraph &cg, const std::string &name)
{
    for (const Procedure &p : cg.procedures())
        if (p.name == name)
            return &p;
    return nullptr;
}

std::vector<const Finding *>
findingsByCode(const LintResult &result, const std::string &code)
{
    std::vector<const Finding *> out;
    for (const Finding &f : result.findings)
        if (f.code == code)
            out.push_back(&f);
    return out;
}

TEST(CallGraph, DiscoversProceduresAndTransitiveSummaries)
{
    const auto p = prog(kUndersizedChain);
    const Cfg cfg(p);
    const CallGraph cg(cfg);

    const Procedure *entry = procNamed(cg, "entry");
    const Procedure *a = procNamed(cg, "a");
    const Procedure *b = procNamed(cg, "b");
    ASSERT_TRUE(entry && a && b);

    EXPECT_TRUE(entry->isEntry);
    EXPECT_FALSE(entry->returns);
    EXPECT_TRUE(a->returns);
    EXPECT_TRUE(b->returns);

    // b's direct footprint covers r20 and its link register r9; a's
    // transitive footprint includes the whole subtree.
    EXPECT_EQ(b->regsRead & bit(20), bit(20));
    EXPECT_EQ(b->registers, 21u);
    EXPECT_EQ(b->minContext, 32u);
    EXPECT_EQ(a->footprint & (bit(8) | bit(9) | bit(20)),
              bit(8) | bit(9) | bit(20));
    EXPECT_EQ(a->registers, 21u);

    // The LDRRM is in entry itself, not in a's subtree.
    EXPECT_TRUE(entry->switchesRrm);
    EXPECT_FALSE(a->switchesRrm);

    const uint32_t bIndex =
        cg.procByEntry(p.addressOf("b"));
    ASSERT_NE(bIndex, CallGraph::noProc);
    const auto path = cg.callPath(bIndex);
    const std::vector<std::string> expect = {"entry", "a", "b"};
    EXPECT_EQ(path, expect);
}

TEST(CallGraph, ThreadAndLockDirectivesMakeEntries)
{
    const auto p = prog(counterSource(true));
    const Cfg cfg(p);
    const CallGraph cg(cfg);

    const Procedure *t0 = procNamed(cg, "t0");
    const Procedure *acquire = procNamed(cg, "lock_acquire");
    const Procedure *release = procNamed(cg, "lock_release");
    ASSERT_TRUE(t0 && acquire && release);

    EXPECT_TRUE(t0->isThread);
    EXPECT_EQ(acquire->lockAcquire, 0);
    EXPECT_EQ(acquire->lockRelease, -1);
    EXPECT_EQ(release->lockRelease, 0);
    ASSERT_EQ(cg.lockNames().size(), 1u);
    EXPECT_EQ(cg.lockNames()[0], "m");
}

TEST(CallGraph, AddressTakenLabelsBecomeJalrTargets)
{
    const auto p = prog("entry:\n"
                        "    la    r4, helper\n"
                        "    jalr  r8, r4\n"
                        "    halt\n"
                        "helper:\n"
                        "    jmp   r8\n");
    const Cfg cfg(p);
    const CallGraph cg(cfg);

    const Procedure *helper = procNamed(cg, "helper");
    ASSERT_TRUE(helper);
    EXPECT_TRUE(helper->addressTaken);

    const Procedure *entry = procNamed(cg, "entry");
    ASSERT_TRUE(entry);
    EXPECT_TRUE(entry->callsIndirect);
}

// ---- Interprocedural lint ------------------------------------------------

TEST(Lint, CrossCallLdrrmHazardWithCallPathWitness)
{
    const auto p = prog(kCrossCallHazard);
    LintOptions options;
    options.interprocedural = true;
    const LintResult result = lintProgram(p, options);

    const auto across = findingsByCode(result, "ldrrm-across-call");
    ASSERT_EQ(across.size(), 1u);
    EXPECT_EQ(across[0]->address, 6u);
    const std::vector<std::string> expect = {"entry", "open_window"};
    EXPECT_EQ(across[0]->path, expect);

    // Without the call graph the return edge does not exist, so the
    // interprocedural hazard cannot be seen (the in-window control
    // transfer still is).
    const LintResult flat = lintProgram(p, {});
    EXPECT_TRUE(findingsByCode(flat, "ldrrm-across-call").empty());
    EXPECT_EQ(findingsByCode(flat, "delay-slot-control").size(), 1u);
}

TEST(Lint, UndersizedContextHiddenBehindCalls)
{
    const auto p = prog(kUndersizedChain);
    LintOptions options;
    options.interprocedural = true;
    const LintResult result = lintProgram(p, options);

    const auto undersized =
        findingsByCode(result, "call-undersized-context");
    ASSERT_EQ(undersized.size(), 2u);
    // Both call sites sit under the 16-register window 0x10 while
    // the callee subtree needs 21 registers; the deeper finding
    // carries the full chain.
    const std::vector<std::string> chain = {"entry", "a", "b"};
    EXPECT_EQ(undersized[1]->path, chain);
    EXPECT_NE(undersized[0]->message.find("21 register(s)"),
              std::string::npos);

    ASSERT_EQ(result.procedures.size(), 3u);
    EXPECT_EQ(result.procedures[0].name, "entry");
    EXPECT_EQ(result.procedures[0].minContext, 32u);
}

// ---- Lockset race detection ----------------------------------------------

TEST(Lockset, LockedCounterIsClean)
{
    const auto p = prog(counterSource(true));
    LintOptions options;
    options.interprocedural = true;
    options.lockset = true;
    const LintResult result = lintProgram(p, options);

    EXPECT_TRUE(result.clean());
    EXPECT_TRUE(result.races.empty());
    EXPECT_TRUE(findingsByCode(result, "race").empty());
}

TEST(Lockset, UnlockedThreadRacesWithStableSitePair)
{
    const auto p = prog(counterSource(false));
    LintOptions options;
    options.interprocedural = true;
    options.lockset = true;
    const LintResult result = lintProgram(p, options);

    ASSERT_EQ(result.races.size(), 1u);
    const RaceReport &race = result.races[0];
    EXPECT_EQ(race.mem, 0x80u);

    // Stable witness pair: t0's locked read vs t1's unlocked write.
    EXPECT_EQ(race.first.thread, "t0");
    EXPECT_FALSE(race.first.write);
    ASSERT_EQ(race.first.locks.size(), 1u);
    EXPECT_EQ(race.first.locks[0], "m");
    EXPECT_EQ(race.second.thread, "t1");
    EXPECT_TRUE(race.second.write);
    EXPECT_TRUE(race.second.locks.empty());

    const auto findings = findingsByCode(result, "race");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0]->severity, Severity::Error);
    EXPECT_NE(findings[0]->message.find("locks none"),
              std::string::npos);
}

TEST(Lockset, PostIndirectCallAccessesStayClassified)
{
    // t0 holds the lock for its first store, then makes an indirect
    // call to a plain helper and stores again. No address-taken
    // procedure switches the RRM, so the caller-side return edge
    // keeps the RRM constant across the JALR and the second store
    // stays classified — still under the lock, since the helper has
    // no .lockdef effect the indirection could apply.
    const auto p = prog("    .thread t0\n"
                        "    .thread t1\n"
                        "    .lockdef m, lock_acquire, lock_release\n"
                        "entry:\n"
                        "    halt\n"
                        "t0:\n"
                        "    jal   r8, lock_acquire\n"
                        "    li    r4, 0x80\n"
                        "    st    r1, 0(r4)\n"
                        "    la    r9, helper\n"
                        "    jalr  r10, r9\n"
                        "    li    r4, 0x80\n"
                        "    st    r1, 0(r4)\n"
                        "    halt\n"
                        "t1:\n"
                        "    jal   r8, lock_acquire\n"
                        "    li    r4, 0x80\n"
                        "    ld    r1, 0(r4)\n"
                        "    jal   r8, lock_release\n"
                        "    halt\n"
                        "helper:\n"
                        "    jmp   r10\n"
                        "lock_acquire:\n"
                        "    jmp   r8\n"
                        "lock_release:\n"
                        "    jmp   r8\n");
    const Cfg cfg(p);
    const CallGraph cg(cfg);
    const RrmAnalysis rrm(cfg, {}, &cg);
    const LocksetAnalysis lockset(cfg, cg, rrm);

    EXPECT_TRUE(lockset.races().empty());
    // The helper is not a lock procedure, so no trust-contract site
    // is reported for the JALR.
    EXPECT_TRUE(lockset.indirectLockSites().empty());
    unsigned counted = 0;
    for (const Access &access : lockset.accesses())
        if (access.mem == 0x80) {
            ++counted;
            EXPECT_NE(access.held, 0u);
        }
    // All three accesses fold and carry the lock: both of t0's
    // stores (the JALR no longer drops the lockset or the constant
    // RRM) and t1's load.
    EXPECT_EQ(counted, 3u);
}

TEST(Lockset, RrmSwitchingIndirectCalleeStopsClassification)
{
    // Same shape, but the address-taken helper executes LDRRM: the
    // RRM after the JALR is genuinely unknown, so the post-call store
    // drops out of classification — the documented caveat, now
    // narrowed to callees that actually switch the mask.
    const auto p = prog("    .thread t0\n"
                        "    .lockdef m, lock_acquire, lock_release\n"
                        "entry:\n"
                        "    halt\n"
                        "t0:\n"
                        "    jal   r8, lock_acquire\n"
                        "    li    r4, 0x80\n"
                        "    st    r1, 0(r4)\n"
                        "    la    r9, helper\n"
                        "    jalr  r10, r9\n"
                        "    li    r4, 0x80\n"
                        "    st    r1, 0(r4)\n"
                        "    halt\n"
                        "helper:\n"
                        "    ldrrm r5\n"
                        "    nop\n"
                        "    jmp   r10\n"
                        "lock_acquire:\n"
                        "    jmp   r8\n"
                        "lock_release:\n"
                        "    jmp   r8\n");
    const Cfg cfg(p);
    const CallGraph cg(cfg);
    const RrmAnalysis rrm(cfg, {}, &cg);
    const LocksetAnalysis lockset(cfg, cg, rrm);

    unsigned counted = 0;
    for (const Access &access : lockset.accesses())
        if (access.mem == 0x80)
            ++counted;
    EXPECT_EQ(counted, 1u);
}

TEST(Lockset, LockAcquireViaJalrKeepsTheTrustContract)
{
    // t0 takes the mutex through `la` + `jalr`, t1 directly. The
    // .lockdef contract must survive the indirection — no race on
    // the counter — and the approximation must surface as an
    // explicit indirect-lock site, never silently.
    const auto p = prog("    .thread t0\n"
                        "    .thread t1\n"
                        "    .lockdef m, lock_acquire, lock_release\n"
                        "entry:\n"
                        "    halt\n"
                        "t0:\n"
                        "    la    r9, lock_acquire\n"
                        "    jalr  r8, r9\n"
                        "    li    r4, 0x80\n"
                        "    st    r1, 0(r4)\n"
                        "    jal   r8, lock_release\n"
                        "    halt\n"
                        "t1:\n"
                        "    jal   r8, lock_acquire\n"
                        "    li    r4, 0x80\n"
                        "    ld    r1, 0(r4)\n"
                        "    jal   r8, lock_release\n"
                        "    halt\n"
                        "lock_acquire:\n"
                        "    jmp   r8\n"
                        "lock_release:\n"
                        "    jmp   r8\n");
    const Cfg cfg(p);
    const CallGraph cg(cfg);
    const RrmAnalysis rrm(cfg, {}, &cg);
    const LocksetAnalysis lockset(cfg, cg, rrm);

    EXPECT_TRUE(lockset.races().empty());
    ASSERT_EQ(lockset.indirectLockSites().size(), 1u);
    const IndirectLockSite &site = lockset.indirectLockSites()[0];
    EXPECT_EQ(site.acquires, 1u); // lock bit 0: "m"
    EXPECT_EQ(site.releases, 0u);

    // t0's store is classified *with* the lock held.
    bool saw_store = false;
    for (const Access &access : lockset.accesses()) {
        if (access.mem != 0x80 || !access.write)
            continue;
        saw_store = true;
        EXPECT_EQ(access.held, 1u);
    }
    EXPECT_TRUE(saw_store);
}

TEST(Lint, IndirectLockCallWarnsInsteadOfStayingSilent)
{
    const auto p = prog("    .thread t0\n"
                        "    .lockdef m, lock_acquire, lock_release\n"
                        "entry:\n"
                        "    halt\n"
                        "t0:\n"
                        "    la    r9, lock_acquire\n"
                        "    jalr  r8, r9\n"
                        "    li    r4, 0x80\n"
                        "    st    r1, 0(r4)\n"
                        "    jal   r8, lock_release\n"
                        "    halt\n"
                        "lock_acquire:\n"
                        "    jmp   r8\n"
                        "lock_release:\n"
                        "    jmp   r8\n");
    LintOptions options;
    options.interprocedural = true;
    options.lockset = true;
    const LintResult result = lintProgram(p, options);

    EXPECT_TRUE(result.races.empty());
    const auto findings =
        findingsByCode(result, "lock-indirect-call");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0]->severity, Severity::Warning);
    EXPECT_NE(findings[0]->message.find("acquires m"),
              std::string::npos);
    // A warning fails the lint: the approximation is never free.
    EXPECT_FALSE(result.clean());
    EXPECT_EQ(result.errors, 0u);
}

// ---- rr.lint.v1 document -------------------------------------------------

TEST(Lint, JsonDocumentCoversAllFileShapes)
{
    FileReport linted;
    linted.file = "racy.s";
    {
        LintOptions options;
        options.interprocedural = true;
        options.lockset = true;
        linted.result =
            lintProgram(prog(counterSource(false)), options);
    }

    FileReport unreadable;
    unreadable.file = "missing.s";
    unreadable.readable = false;

    FileReport broken;
    broken.file = "broken.s";
    broken.assemblyErrors.push_back({3, "unknown mnemonic 'frob'"});

    const std::string doc = renderJsonDocument(
        {linted, unreadable, broken}, "1.2.3", 2);

    EXPECT_NE(doc.find("\"schema\": \"rr.lint.v1\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"version\": \"1.2.3\""), std::string::npos);
    EXPECT_NE(doc.find("\"readable\": false"), std::string::npos);
    EXPECT_NE(doc.find("\"code\": \"assembly-error\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"code\": \"race\""), std::string::npos);
    EXPECT_NE(doc.find("\"races\""), std::string::npos);
    EXPECT_NE(doc.find("\"files\": 3"), std::string::npos);
    EXPECT_NE(doc.find("\"exit\": 2"), std::string::npos);
}

} // namespace
} // namespace rr::lint
