/**
 * @file
 * Tests for the Section 5 extensions: multiple active RRMs
 * (inter-context operations and register-window emulation), the
 * software-only compile-time relocation model, and the adaptive
 * residency controller for cache interference.
 */

#include <gtest/gtest.h>

#include "assembler/assembler.hh"
#include "ext/adaptive.hh"
#include "ext/context_cache.hh"
#include "ext/multi_rrm.hh"
#include "ext/software_only.hh"
#include "machine/cpu.hh"
#include "multithread/simulation_spec.hh"
#include "multithread/workload.hh"

namespace rr::ext {
namespace {

using machine::Cpu;
using machine::CpuConfig;

CpuConfig
dualBankConfig()
{
    CpuConfig config;
    config.numRegs = 128;
    config.operandWidth = 6; // top bit selects the bank
    config.rrmBanks = 2;
    config.memWords = 4096;
    return config;
}

TEST(MultiRrm, DualContextOperandEncoding)
{
    EXPECT_EQ(dualContextOperand(0, 5, 6), 5u);
    EXPECT_EQ(dualContextOperand(1, 5, 6), 32u + 5u);
    EXPECT_EQ(dualContextOperand(1, 0, 5), 16u);
}

TEST(MultiRrmDeath, BadOperandPanics)
{
    EXPECT_DEATH(dualContextOperand(2, 0, 6), "bank");
    EXPECT_DEATH(dualContextOperand(0, 32, 6), "exceeds");
}

// Section 5.3's motivating example: ADD C0.R3, C0.R4, C1.R6 — an
// inter-context add executed as one instruction.
TEST(MultiRrm, InterContextAdd)
{
    Cpu cpu(dualBankConfig());
    cpu.setRrmImmediate(0, 0);  // context 0 at base 0
    cpu.setRrmImmediate(64, 1); // context 1 at base 64
    cpu.regs().write(4, 10);      // C0.R4
    cpu.regs().write(64 + 6, 32); // C1.R6

    // add C0.r3, C0.r4, C1.r6 encoded through bank-select operands.
    const auto inst = isa::makeR3(isa::Opcode::ADD,
                                  dualContextOperand(0, 3, 6),
                                  dualContextOperand(0, 4, 6),
                                  dualContextOperand(1, 6, 6));
    cpu.mem().write(0, isa::encode(inst));
    cpu.mem().write(1, isa::encode(isa::Instruction{
                            isa::Opcode::HALT, 0, 0, 0, 0}));
    cpu.run(10);
    EXPECT_EQ(cpu.regs().read(3), 42u); // C0.R3 = 10 + 32
}

TEST(MultiRrm, LdrrmxLoadsSecondBank)
{
    Cpu cpu(dualBankConfig());
    cpu.regs().write(1, 96);
    const auto prog = assembler::assemble("ldrrmx r1, 1\nhalt\n");
    ASSERT_TRUE(prog.ok());
    cpu.mem().loadImage(0, prog.words);
    cpu.run(10);
    EXPECT_EQ(cpu.relocation().mask(1), 96u);
    EXPECT_EQ(cpu.relocation().mask(0), 0u);
}

TEST(RegisterWindows, LayoutAndSelection)
{
    Cpu cpu(dualBankConfig());
    RegisterWindowEmulator windows(cpu, 32, 8);
    EXPECT_EQ(windows.numWindows(), 4u);
    EXPECT_EQ(windows.windowBase(0), 0u);
    EXPECT_EQ(windows.windowBase(3), 96u);
    EXPECT_EQ(windows.currentWindow(), 0u);
    // Bank 0 -> window 0, bank 1 -> window 1.
    EXPECT_EQ(cpu.relocation().mask(0), 0u);
    EXPECT_EQ(cpu.relocation().mask(1), 32u);
}

// A procedure call passes arguments through bank 1 (the callee's
// in-registers), then pushes; the callee sees them in its own window
// through bank 0.
TEST(RegisterWindows, CallPassesOutgoingArguments)
{
    Cpu cpu(dualBankConfig());
    RegisterWindowEmulator windows(cpu, 32, 8);

    // Caller (window 0) writes outgoing arg to callee's r0 via bank 1.
    const unsigned out_operand = dualContextOperand(1, 0, 6);
    const auto store = isa::makeI(isa::Opcode::ADDI, out_operand, 0,
                                  77); // callee.r0 = r0 + 77
    cpu.mem().write(0, isa::encode(store));
    cpu.mem().write(1, isa::encode(isa::Instruction{
                            isa::Opcode::HALT, 0, 0, 0, 0}));
    cpu.run(10);

    windows.push(); // enter callee: window 1 becomes current
    EXPECT_EQ(windows.currentWindow(), 1u);
    // Callee reads the argument as its own r0 (bank 0).
    EXPECT_EQ(cpu.readContextReg(0), 77u);

    windows.pop();
    EXPECT_EQ(windows.currentWindow(), 0u);
}

TEST(RegisterWindowsDeath, OverflowUnderflowPanic)
{
    Cpu cpu(dualBankConfig());
    RegisterWindowEmulator windows(cpu, 64, 16);
    EXPECT_EQ(windows.numWindows(), 2u);
    windows.push();
    EXPECT_DEATH(windows.push(), "overflow");
    windows.pop();
    EXPECT_DEATH(windows.pop(), "underflow");
}

TEST(SoftwareOnly, PolicyBindsThreadsToSlots)
{
    SoftwareOnlyPolicy policy(64, {16, 16, 32});
    const auto a = policy.allocate(10);
    const auto b = policy.allocate(30);
    ASSERT_TRUE(a && b);
    EXPECT_EQ(a->size, 16u);
    EXPECT_EQ(b->size, 32u);
    // 30 registers only fit the 32-slot; it is taken.
    EXPECT_FALSE(policy.allocate(20).has_value());
    const auto c = policy.allocate(16);
    ASSERT_TRUE(c);
    policy.release(*b);
    EXPECT_TRUE(policy.allocate(20).has_value());
}

TEST(SoftwareOnlyDeath, ForeignContextPanics)
{
    SoftwareOnlyPolicy policy(64, {32, 32});
    runtime::Context bogus;
    bogus.rrm = 5;
    bogus.size = 32;
    EXPECT_DEATH(policy.release(bogus), "slot");
}

TEST(SoftwareOnly, CodeExpansionShortensRuns)
{
    EXPECT_DOUBLE_EQ(codeExpansionRunLength(100.0, 1, 0.05), 100.0);
    EXPECT_NEAR(codeExpansionRunLength(100.0, 2, 0.05), 95.0, 1e-9);
    EXPECT_NEAR(codeExpansionRunLength(100.0, 4, 0.05), 90.25, 1e-9);
}

TEST(SoftwareOnly, MoreVersionsTolerateMoreLatency)
{
    // Long latency: 2 resident contexts beat 1 despite expansion.
    const SoftwareOnlyResult k1 = simulateSoftwareOnly(
        64, 1, 64.0, 800, 24, 20000, 10);
    const SoftwareOnlyResult k2 = simulateSoftwareOnly(
        64, 2, 64.0, 800, 24, 20000, 10);
    EXPECT_GT(k2.stats.efficiencyCentral,
              k1.stats.efficiencyCentral);
    EXPECT_LT(k2.effectiveRunLength, k1.effectiveRunLength);
}

TEST(Adaptive, InterferenceModel)
{
    EXPECT_DOUBLE_EQ(interferenceRunLength(100.0, 0.0, 8), 100.0);
    EXPECT_DOUBLE_EQ(interferenceRunLength(100.0, 0.25, 1), 100.0);
    EXPECT_DOUBLE_EQ(interferenceRunLength(100.0, 0.25, 5), 50.0);
}

TEST(Adaptive, ResidencyCapIsRespected)
{
    mt::MtConfig config = mt::SimulationSpec()
                              .cacheFaults(32.0, 400)
                              .threads(24)
                              .residencyCap(2)
                              .build();
    const mt::MtStats stats = mt::simulate(std::move(config));
    EXPECT_LE(stats.maxResidentContexts, 2u);
}

TEST(Adaptive, SearchFindsInteriorOptimumUnderInterference)
{
    // Latency short enough that the processor can saturate: past the
    // saturation point, additional contexts only add interference.
    mt::MtConfig base = mt::SimulationSpec()
                            .cacheFaults(64.0, 100)
                            .numRegs(256)
                            .build();
    base.workload = mt::homogeneousWorkload(32, 20000, 8);
    // Strong interference: each extra context costs 60% of R.
    const AdaptiveResult result =
        adaptiveSearch(base, 64.0, 100, 0.6, 12);
    ASSERT_EQ(result.samples.size(), 12u);
    EXPECT_GE(result.best.efficiency, result.uncapped.efficiency);
    // With such heavy interference the optimum is a small cap, not
    // the register-file capacity (32 size-8 contexts).
    EXPECT_LT(result.best.cap, 9u);
    EXPECT_GT(result.best.cap, 1u);
}

TEST(Adaptive, NoInterferenceFavoursMoreContexts)
{
    mt::MtConfig base = mt::SimulationSpec()
                            .cacheFaults(64.0, 400)
                            .numRegs(256)
                            .build();
    base.workload = mt::homogeneousWorkload(32, 20000, 8);
    const AdaptiveResult result =
        adaptiveSearch(base, 64.0, 400, 0.0, 8);
    // alpha = 0: efficiency is monotone in the cap.
    for (size_t i = 1; i < result.samples.size(); ++i) {
        EXPECT_GE(result.samples[i].efficiency + 0.01,
                  result.samples[i - 1].efficiency);
    }
    EXPECT_EQ(result.best.cap, 8u);
}


TEST(ContextCache, CompletesAndAccountsCycles)
{
    ContextCacheConfig config;
    config.numThreads = 16;
    config.workDist = makeConstant(6000);
    config.regsDist = makeUniformInt(6, 24);
    config.faultModel =
        std::make_shared<mt::CacheFaultModel>(32.0, 200);
    config.numRegs = 128;
    const ContextCacheStats stats = simulateContextCache(config);
    EXPECT_EQ(stats.usefulCycles, 16u * 6000u);
    EXPECT_EQ(stats.totalCycles,
              stats.usefulCycles + stats.idleCycles +
                  stats.switchCycles + stats.spillFillCycles);
    EXPECT_GT(stats.efficiencyCentral, 0.0);
    EXPECT_LE(stats.efficiencyCentral, 1.0);
}

TEST(ContextCache, NoRefillsWhenEverythingFits)
{
    ContextCacheConfig config;
    config.numThreads = 8;
    config.workDist = makeConstant(4000);
    config.regsDist = makeConstant(8); // 64 regs total
    config.faultModel =
        std::make_shared<mt::CacheFaultModel>(32.0, 200);
    config.numRegs = 128;
    const ContextCacheStats stats = simulateContextCache(config);
    // One cold fill per thread, never evicted afterwards.
    EXPECT_EQ(stats.refills, 8u);
}

TEST(ContextCache, OversubscriptionCausesRefills)
{
    ContextCacheConfig config;
    config.numThreads = 32;
    config.workDist = makeConstant(4000);
    config.regsDist = makeConstant(16); // 512 regs of demand
    config.faultModel =
        std::make_shared<mt::CacheFaultModel>(16.0, 2000);
    config.numRegs = 128;
    const ContextCacheStats stats = simulateContextCache(config);
    EXPECT_GT(stats.refills, 32u);
    EXPECT_GT(stats.spillFillCycles, 0u);
}

TEST(ContextCache, FinerBindingBeatsFixedContexts)
{
    // The Section 4 granularity ordering at a latency-starved point.
    ContextCacheConfig config;
    config.numThreads = 32;
    config.workDist = makeConstant(20000);
    config.regsDist = makeUniformInt(6, 24);
    config.faultModel =
        std::make_shared<mt::CacheFaultModel>(16.0, 512);
    config.numRegs = 64;
    const ContextCacheStats cache = simulateContextCache(config);

    mt::MtConfig fixed = mt::SimulationSpec()
                             .cacheFaults(16.0, 512)
                             .arch(mt::ArchKind::FixedHw)
                             .numRegs(64)
                             .threads(32)
                             .build();
    const double fixed_eff =
        mt::simulate(std::move(fixed)).efficiencyCentral;
    EXPECT_GT(cache.efficiencyCentral, 2.0 * fixed_eff);
}

} // namespace
} // namespace rr::ext
