/**
 * @file
 * Tests for the Figure 4 cost-model presets (including the dribbling
 * extension) and the prebuilt workload/experiment configurations.
 */

#include <gtest/gtest.h>

#include "multithread/simulation_spec.hh"
#include "multithread/workload.hh"
#include "runtime/cost_model.hh"

namespace rr {
namespace {

TEST(CostModel, PaperFlexiblePreset)
{
    const runtime::CostModel m = runtime::CostModel::paperFlexible(6);
    EXPECT_EQ(m.allocSucceed, 25u);
    EXPECT_EQ(m.allocFail, 15u);
    EXPECT_EQ(m.dealloc, 5u);
    EXPECT_EQ(m.queueOp, 10u);
    EXPECT_EQ(m.blockOverhead, 10u);
    EXPECT_EQ(m.contextSwitch, 6u);
}

TEST(CostModel, PaperFixedPresetIsConservative)
{
    const runtime::CostModel m = runtime::CostModel::paperFixed(8);
    EXPECT_EQ(m.allocSucceed, 0u);
    EXPECT_EQ(m.allocFail, 0u);
    EXPECT_EQ(m.dealloc, 0u);
    EXPECT_EQ(m.contextSwitch, 8u);
    // Load/unload still cost C + overhead — shared with flexible.
    EXPECT_EQ(m.loadCost(13), 23u);
    EXPECT_EQ(m.unloadCost(13), 23u);
}

TEST(CostModel, Ff1AndLowCostOrdering)
{
    const runtime::CostModel general =
        runtime::CostModel::paperFlexible(8);
    const runtime::CostModel ff1 =
        runtime::CostModel::ff1Flexible(8);
    const runtime::CostModel low =
        runtime::CostModel::lowCostFlexible(8);
    EXPECT_LT(ff1.allocSucceed, general.allocSucceed);
    EXPECT_LT(low.allocSucceed, ff1.allocSucceed);
    EXPECT_LT(low.dealloc, general.dealloc);
}

TEST(CostModel, DribblingHidesPerRegisterCost)
{
    runtime::CostModel m = runtime::CostModel::paperFlexible(6);
    EXPECT_EQ(m.loadCost(24), 34u);
    m.dribbleRegisters = true;
    EXPECT_EQ(m.loadCost(24), 10u);   // only the block overhead
    EXPECT_EQ(m.unloadCost(24), 10u);
}

TEST(Workload, PaperWorkloadDistributions)
{
    const mt::WorkloadSpec spec = mt::paperWorkload(48, 12345);
    EXPECT_EQ(spec.numThreads, 48u);
    EXPECT_DOUBLE_EQ(spec.workDist->mean(), 12345.0);
    EXPECT_DOUBLE_EQ(spec.regsDist->mean(), 15.0); // U[6,24]
}

TEST(Workload, HomogeneousWorkload)
{
    const mt::WorkloadSpec spec = mt::homogeneousWorkload(8, 500, 16);
    Rng rng(1);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(spec.regsDist->sample(rng), 16u);
}

TEST(Workload, DefaultWorkScalesWithRunLength)
{
    EXPECT_EQ(mt::defaultWorkPerThread(8.0), 20000u);   // floor
    EXPECT_EQ(mt::defaultWorkPerThread(512.0), 128000u); // 250 R
}

TEST(Workload, CacheFamilyMatchesPaperParameters)
{
    const mt::MtConfig flex = mt::SimulationSpec()
                                  .cacheFaults(32.0, 200)
                                  .arch(mt::ArchKind::Flexible)
                                  .numRegs(128)
                                  .build();
    EXPECT_EQ(flex.costs.contextSwitch, 6u); // Section 3.2
    EXPECT_EQ(flex.costs.allocSucceed, 25u);
    EXPECT_EQ(flex.unloadPolicy, mt::UnloadPolicyKind::Never);
    EXPECT_EQ(flex.numRegs, 128u);
    EXPECT_DOUBLE_EQ(flex.faultModel->meanRunLength(), 32.0);
    EXPECT_DOUBLE_EQ(flex.faultModel->meanLatency(), 200.0);

    const mt::MtConfig fixed = mt::SimulationSpec()
                                   .cacheFaults(32.0, 200)
                                   .arch(mt::ArchKind::FixedHw)
                                   .numRegs(128)
                                   .build();
    EXPECT_EQ(fixed.costs.allocSucceed, 0u);
}

TEST(Workload, SyncFamilyMatchesPaperParameters)
{
    const mt::MtConfig config = mt::SimulationSpec()
                                    .syncFaults(128.0, 1000.0)
                                    .numRegs(64)
                                    .build();
    EXPECT_EQ(config.costs.contextSwitch, 8u); // Section 3.3
    EXPECT_EQ(config.unloadPolicy, mt::UnloadPolicyKind::TwoPhase);
    EXPECT_DOUBLE_EQ(config.faultModel->meanLatency(), 1000.0);
}

TEST(Workload, CombinedFamilyRatesCompose)
{
    const mt::MtConfig config = mt::SimulationSpec()
                                    .combinedFaults(64.0, 100, 64.0,
                                                    500.0)
                                    .build();
    // Combined rate ~ half the run length of either process.
    EXPECT_LT(config.faultModel->meanRunLength(), 64.0);
    EXPECT_GT(config.faultModel->meanRunLength(), 20.0);
}

TEST(Workload, DeterministicFamilyIsDeterministic)
{
    const mt::MtConfig config = mt::SimulationSpec()
                                    .deterministicFaults(100, 300)
                                    .threads(4)
                                    .registerDemand(8)
                                    .build();
    Rng rng(9);
    for (int i = 0; i < 5; ++i) {
        const mt::FaultSample sample =
            config.faultModel->next(rng, static_cast<uint64_t>(i));
        EXPECT_EQ(sample.runLength, 100u);
        EXPECT_EQ(sample.latency, 300u);
    }
}

} // namespace
} // namespace rr
