; Racy unprotected shared counter (docs/LINT.md).
;
; Thread t0 takes the declared lock around the COUNTER increment;
; thread t1 skips it. The lockset analysis (rrlint --races) reports
; exactly one empty-lockset race on COUNTER, with a stable site pair:
; t0's locked load races with t1's unlocked store.

        .equ COUNTER, 0x80
        .equ LOCKWORD, 0x81

        .thread t0
        .thread t1
        .lockdef m, lock_acquire, lock_release

entry:
        halt

t0:
        jal   r8, lock_acquire
        li    r4, COUNTER
        ld    r1, 0(r4)
        addi  r1, r1, 1
        st    r1, 0(r4)
        jal   r8, lock_release
        halt

t1:                             ; no lock: races with t0
        li    r4, COUNTER
        ld    r1, 0(r4)
        addi  r1, r1, 1
        st    r1, 0(r4)
        halt

lock_acquire:
        li    r5, LOCKWORD
        li    r6, 1
spin:
        ld    r7, 0(r5)
        beq   r7, r6, spin
        st    r6, 0(r5)
        jmp   r8

lock_release:
        li    r5, LOCKWORD
        li    r6, 0
        st    r6, 0(r5)
        jmp   r8
