; Correct lock-protected shared counter (docs/LINT.md).
;
; Two declared threads increment the shared word COUNTER, both
; bracketing the access with the declared lock's acquire/release
; procedures. The lockset analysis (rrlint --races) finds no shared
; access with an empty lockset: this fixture lints clean.

        .equ COUNTER, 0x80
        .equ LOCKWORD, 0x81

        .thread t0
        .thread t1
        .lockdef m, lock_acquire, lock_release

entry:
        halt

t0:
        jal   r8, lock_acquire
        li    r4, COUNTER
        ld    r1, 0(r4)
        addi  r1, r1, 1
        st    r1, 0(r4)
        jal   r8, lock_release
        halt

t1:
        jal   r8, lock_acquire
        li    r4, COUNTER
        ld    r1, 0(r4)
        addi  r1, r1, 1
        st    r1, 0(r4)
        jal   r8, lock_release
        halt

; The lock implementation itself touches LOCKWORD unprotected, which
; is its job: accesses inside .lockdef procedure bodies are exempt
; (the annotation contract, docs/LINT.md).
lock_acquire:
        li    r5, LOCKWORD
        li    r6, 1
spin:
        ld    r7, 0(r5)
        beq   r7, r6, spin      ; held by someone else: spin
        st    r6, 0(r5)         ; take it
        jmp   r8

lock_release:
        li    r5, LOCKWORD
        li    r6, 0
        st    r6, 0(r5)
        jmp   r8
