; Seeded cross-call LDRRM delay-slot hazard (docs/LINT.md).
;
; The callee loads a new relocation mask and returns while the delay
; window is still open, so the mask lands in the *caller*, which
; continues under a context window it never asked for. Single-image
; analysis sees a hazard at the jmp; the interprocedural pass
; (rrlint --calls) names it ldrrm-across-call and attaches the
; entry -> open_window call path as witness.

entry:
        jal   r8, open_window
        add   r1, r1, r1        ; decodes under the surprise mask
        halt

open_window:
        li    r4, 0x10
        ldrrm r4
        jmp   r8                ; returns inside the delay window
