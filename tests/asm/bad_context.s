; Deliberately broken program — rrlint's negative-test fixture.
;  - line 7: an LDRRM issued inside another LDRRM's delay slot
;  - line 8: r17 addressed inside a declared 16-register context
entry:
    li    r8, 0x10
    ldrrm r8
    ldrrm r8            ; hazard: previous LDRRM still pending
    add   r17, r1, r2   ; boundary: r17 needs a 32-register context
    halt
