; Undersized-context call chain (docs/LINT.md).
;
; entry opens a 16-register window (RRM 0x10) and calls through
; a -> b. b references r20, so the subtree reachable from each call
; needs 21 registers — more than the open window holds. The
; interprocedural pass (rrlint --calls) reports
; call-undersized-context at both call sites with the
; entry -> a -> b call path, alongside the per-instruction
; rrm-overlap findings inside b.

entry:
        li    r4, 0x10
        ldrrm r4
        nop                     ; delay slot
        jal   r8, a
        halt

a:
        jal   r9, b
        jmp   r8

b:
        add   r20, r20, r20     ; r20 escapes the 0x10 window
        jmp   r9
