; Lock acquisition through an indirect call (docs/LINT.md).
;
; Thread t0 takes the declared mutex through `la` + `jalr` — a
; function-pointer call the static analysis cannot resolve — while t1
; calls the same procedures directly. The .lockdef trust contract
; must survive the indirection: both COUNTER accesses are classified
; as lock-protected (no race finding), and the approximation is
; surfaced as an explicit `lock-indirect-call` warning at the jalr,
; never silently.

        .equ COUNTER, 0x80
        .equ LOCKWORD, 0x81

        .thread t0
        .thread t1
        .lockdef m, lock_acquire, lock_release

entry:
        halt

t0:                             ; takes the lock via function pointer
        la    r9, lock_acquire
        jalr  r8, r9
        li    r4, COUNTER
        ld    r1, 0(r4)
        addi  r1, r1, 1
        st    r1, 0(r4)
        jal   r8, lock_release
        halt

t1:                             ; takes the same lock directly
        jal   r8, lock_acquire
        li    r4, COUNTER
        ld    r1, 0(r4)
        addi  r1, r1, 1
        st    r1, 0(r4)
        jal   r8, lock_release
        halt

lock_acquire:
        li    r5, LOCKWORD
        li    r6, 1
spin:
        ld    r7, 0(r5)
        beq   r7, r6, spin
        st    r6, 0(r5)
        jmp   r8

lock_release:
        li    r5, LOCKWORD
        li    r6, 0
        st    r6, 0(r5)
        jmp   r8
