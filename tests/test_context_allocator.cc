/**
 * @file
 * Tests for the bitmap context allocator: sizing rules (power-of-two
 * rounding, Section 2.3), alignment (the RRM must double as an OR
 * mask), capacity, fragmentation behaviour, and a randomized
 * property test that allocations never overlap and frees restore the
 * bitmap — parameterized across the paper's register file sizes.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "base/rng.hh"
#include "runtime/context_allocator.hh"

namespace rr::runtime {
namespace {

TEST(ContextAllocator, SizeRounding)
{
    ContextAllocator alloc(128, 5);
    // Section 2.3 / 2.4: a thread of 17 registers needs a context of
    // 32; 6..8 -> 8; 9..16 -> 16; tiny threads get the minimum 4.
    EXPECT_EQ(alloc.contextSizeFor(1), 4u);
    EXPECT_EQ(alloc.contextSizeFor(4), 4u);
    EXPECT_EQ(alloc.contextSizeFor(5), 8u);
    EXPECT_EQ(alloc.contextSizeFor(8), 8u);
    EXPECT_EQ(alloc.contextSizeFor(9), 16u);
    EXPECT_EQ(alloc.contextSizeFor(16), 16u);
    EXPECT_EQ(alloc.contextSizeFor(17), 32u);
    EXPECT_EQ(alloc.contextSizeFor(24), 32u);
    EXPECT_EQ(alloc.contextSizeFor(32), 32u);
    EXPECT_EQ(alloc.contextSizeFor(33), 0u); // exceeds 2^w
}

TEST(ContextAllocator, AlignmentInvariant)
{
    ContextAllocator alloc(128, 5);
    for (const unsigned c : {3u, 6u, 12u, 20u, 32u}) {
        const auto context = alloc.allocate(c);
        ASSERT_TRUE(context.has_value());
        // Aligned base: OR-relocation == base + offset.
        EXPECT_EQ(context->rrm % context->size, 0u)
            << "C=" << c << " rrm=" << context->rrm;
    }
}

TEST(ContextAllocator, FirstFitLowestBase)
{
    ContextAllocator alloc(128, 5);
    const auto a = alloc.allocate(8);
    const auto b = alloc.allocate(8);
    ASSERT_TRUE(a && b);
    EXPECT_EQ(a->rrm, 0u);
    EXPECT_EQ(b->rrm, 8u);
    alloc.release(*a);
    const auto c = alloc.allocate(4);
    ASSERT_TRUE(c);
    EXPECT_EQ(c->rrm, 0u); // reuses the freed low block
}

TEST(ContextAllocator, CapacityExactForHomogeneousSizes)
{
    // F = 64 holds 8 contexts of size 8 (the Section 3.4 argument
    // for why homogeneous small contexts show the largest gains).
    ContextAllocator alloc(64, 5);
    std::vector<Context> contexts;
    for (int i = 0; i < 8; ++i) {
        const auto context = alloc.allocate(8);
        ASSERT_TRUE(context.has_value()) << "allocation " << i;
        contexts.push_back(*context);
    }
    EXPECT_FALSE(alloc.allocate(8).has_value());
    EXPECT_EQ(alloc.freeRegs(), 0u);
    for (const auto &context : contexts)
        alloc.release(context);
    EXPECT_TRUE(alloc.empty());
}

TEST(ContextAllocator, MixedSizePacking)
{
    ContextAllocator alloc(64, 5);
    const auto a = alloc.allocate(32); // [0, 32)
    const auto b = alloc.allocate(16); // [32, 48)
    const auto c = alloc.allocate(8);  // [48, 56)
    const auto d = alloc.allocate(8);  // [56, 64)
    ASSERT_TRUE(a && b && c && d);
    EXPECT_EQ(alloc.freeRegs(), 0u);
    EXPECT_FALSE(alloc.allocate(1).has_value());
}

TEST(ContextAllocator, FragmentationBlocksLargeContext)
{
    ContextAllocator alloc(64, 5);
    const auto a = alloc.allocate(8); // [0, 8)
    const auto b = alloc.allocate(8); // [8, 16)
    const auto c = alloc.allocate(8); // [16, 24)
    ASSERT_TRUE(a && b && c);
    alloc.release(*b);
    // 48 free registers, but no aligned run of 32: [8,16) + [24,64)
    // only offers [32, 64).
    const auto big = alloc.allocate(32);
    ASSERT_TRUE(big.has_value());
    EXPECT_EQ(big->rrm, 32u);
    // A second 32-register context cannot fit despite 16 free regs.
    EXPECT_FALSE(alloc.allocate(32).has_value());
}

TEST(ContextAllocator, StatsTracking)
{
    ContextAllocator alloc(64, 5);
    const auto a = alloc.allocate(32);
    const auto b = alloc.allocate(32);
    ASSERT_TRUE(a && b);
    EXPECT_FALSE(alloc.allocate(8).has_value());
    alloc.release(*a);
    EXPECT_EQ(alloc.stats().allocCalls, 3u);
    EXPECT_EQ(alloc.stats().allocFailures, 1u);
    EXPECT_EQ(alloc.stats().deallocCalls, 1u);
    EXPECT_DOUBLE_EQ(alloc.utilization(), 0.5);
}

TEST(ContextAllocatorDeath, DoubleFreePanics)
{
    ContextAllocator alloc(64, 5);
    const auto a = alloc.allocate(8);
    ASSERT_TRUE(a);
    alloc.release(*a);
    EXPECT_DEATH(alloc.release(*a), "double free");
}

TEST(ContextAllocatorDeath, MisalignedReleasePanics)
{
    ContextAllocator alloc(64, 5);
    Context bogus;
    bogus.rrm = 4;
    bogus.size = 8;
    EXPECT_DEATH(alloc.release(bogus), "not aligned");
}

/** Randomized property test across register file sizes. */
class AllocatorProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(AllocatorProperty, RandomAllocFreeNeverOverlaps)
{
    const unsigned num_regs = GetParam();
    ContextAllocator alloc(num_regs, 5);
    Rng rng(num_regs * 31 + 7);

    std::vector<Context> live;
    std::vector<bool> owned(num_regs, false);

    for (int step = 0; step < 4000; ++step) {
        const bool do_alloc =
            live.empty() || (rng.nextRange(0, 99) < 55);
        if (do_alloc) {
            const unsigned c =
                static_cast<unsigned>(rng.nextRange(1, 24));
            const auto context = alloc.allocate(c);
            if (!context)
                continue;
            // Size and alignment invariants.
            ASSERT_GE(context->size, alloc.contextSizeFor(c));
            ASSERT_EQ(context->rrm % context->size, 0u);
            ASSERT_LE(context->endReg(), num_regs);
            // No overlap with any live context.
            for (unsigned r = context->baseReg(); r < context->endReg();
                 ++r) {
                ASSERT_FALSE(owned[r]) << "register " << r
                                       << " double-allocated";
                owned[r] = true;
            }
            live.push_back(*context);
        } else {
            const size_t idx = rng.nextRange(0, live.size() - 1);
            const Context context = live[idx];
            live[idx] = live.back();
            live.pop_back();
            alloc.release(context);
            for (unsigned r = context.baseReg(); r < context.endReg();
                 ++r) {
                owned[r] = false;
            }
        }
        // The allocator's free count must match our model.
        unsigned owned_count = 0;
        for (const bool o : owned)
            owned_count += o ? 1 : 0;
        ASSERT_EQ(alloc.allocatedRegs(), owned_count);
    }

    for (const auto &context : live)
        alloc.release(context);
    EXPECT_TRUE(alloc.empty());
}

INSTANTIATE_TEST_SUITE_P(FileSizes, AllocatorProperty,
                         ::testing::Values(64u, 128u, 256u, 512u),
                         [](const auto &info) {
                             return "F" + std::to_string(info.param);
                         });

TEST(ContextAllocator, RegAllocatedProbe)
{
    ContextAllocator alloc(64, 5);
    const auto a = alloc.allocate(8);
    ASSERT_TRUE(a);
    EXPECT_TRUE(alloc.regAllocated(a->rrm));
    EXPECT_TRUE(alloc.regAllocated(a->rrm + 7));
    EXPECT_FALSE(alloc.regAllocated(a->rrm + 8));
}

// Appendix A scale check: a 128-register file is exactly the
// paper's 32-chunk AllocMap; 2 contexts of 64 fill it.
TEST(ContextAllocator, PaperScaleAlloc64)
{
    ContextAllocator alloc(128, 6);
    const auto lo = alloc.allocate(64);
    const auto hi = alloc.allocate(64);
    ASSERT_TRUE(lo && hi);
    EXPECT_EQ(lo->rrm, 0u);
    EXPECT_EQ(hi->rrm, 64u);
    EXPECT_FALSE(alloc.allocate(4).has_value());
}

} // namespace
} // namespace rr::runtime
