/**
 * @file
 * Tests for the all-assembly two-phase slot scheduler: spin-phase
 * behaviour for short faults, swap-outs under long faults, the value
 * of oversubscription, race-free wakeup, and the 8-register
 * boundary-check proof of the whole runtime.
 */

#include <gtest/gtest.h>

#include "assembler/assembler.hh"
#include "checker/boundary_checker.hh"
#include "kernel/twophase_kernel.hh"
#include "runtime/asm_routines.hh"

namespace rr::kernel {
namespace {

TwoPhaseConfig
baseConfig(unsigned threads, unsigned slots, uint64_t latency)
{
    TwoPhaseConfig config;
    config.numThreads = threads;
    config.numSlots = slots;
    config.segmentsPerThread = 8;
    config.workUnits = 50;
    config.latency = makeConstant(latency);
    return config;
}

TEST(TwoPhaseKernel, CompletesAllWorkExactly)
{
    const TwoPhaseResult result =
        runTwoPhaseKernel(baseConfig(12, 4, 400));
    EXPECT_TRUE(result.halted);
    EXPECT_EQ(result.workUnits, 12u * 8u * 50u);
    EXPECT_EQ(result.faults, 12u * 7u); // last segment retires
}

TEST(TwoPhaseKernel, ShortFaultsStayResident)
{
    // Latency shorter than a ring round trip: the first phase (spin)
    // always wins and no thread ever surrenders its slot.
    const TwoPhaseResult result =
        runTwoPhaseKernel(baseConfig(12, 4, 40));
    EXPECT_TRUE(result.halted);
    EXPECT_EQ(result.swapOuts, 0u);
    // Only the initial loads of the queued threads.
    EXPECT_EQ(result.dequeues, 12u - 4u);
    EXPECT_GT(result.efficiency(), 0.8);
}

TEST(TwoPhaseKernel, LongFaultsRotateThroughSlots)
{
    const TwoPhaseResult result =
        runTwoPhaseKernel(baseConfig(12, 4, 4000));
    EXPECT_TRUE(result.halted);
    // Every fault exhausts its poll budget and gives up the slot.
    EXPECT_EQ(result.swapOuts, result.faults);
    // Every swap-out is balanced by a reload, plus the initial loads.
    EXPECT_EQ(result.dequeues, result.swapOuts + (12u - 4u));
}

TEST(TwoPhaseKernel, OversubscriptionHidesLongLatency)
{
    // Same 4 slots; 12 threads vs 4. With only 4 threads the slots
    // can merely spin through the latency; with 12 the scheduler
    // swaps ready threads in — the whole point of the software
    // runtime.
    const TwoPhaseResult four =
        runTwoPhaseKernel(baseConfig(4, 4, 4000));
    const TwoPhaseResult twelve =
        runTwoPhaseKernel(baseConfig(12, 4, 4000));
    ASSERT_TRUE(four.halted);
    ASSERT_TRUE(twelve.halted);
    EXPECT_GT(twelve.efficiency(), 2.0 * four.efficiency());
}

TEST(TwoPhaseKernel, LargerBudgetSpinsLonger)
{
    // With exponential latencies around the swap cost, a larger poll
    // budget means more faults complete in the first phase.
    TwoPhaseConfig eager = baseConfig(12, 4, 0);
    eager.latency = makeExponential(600.0);
    eager.pollBudget = 1;
    TwoPhaseConfig patient = baseConfig(12, 4, 0);
    patient.latency = makeExponential(600.0);
    patient.pollBudget = 8;
    const TwoPhaseResult re = runTwoPhaseKernel(eager);
    const TwoPhaseResult rp = runTwoPhaseKernel(patient);
    ASSERT_TRUE(re.halted);
    ASSERT_TRUE(rp.halted);
    EXPECT_LT(rp.swapOuts, re.swapOuts);
}

TEST(TwoPhaseKernel, StochasticLatencyCompletesAndIsDeterministic)
{
    TwoPhaseConfig a = baseConfig(16, 4, 0);
    a.latency = makeExponential(800.0);
    a.seed = 42;
    TwoPhaseConfig b = a;
    const TwoPhaseResult ra = runTwoPhaseKernel(a);
    const TwoPhaseResult rb = runTwoPhaseKernel(b);
    EXPECT_TRUE(ra.halted);
    EXPECT_EQ(ra.workUnits, 16u * 8u * 50u);
    EXPECT_EQ(ra.totalCycles, rb.totalCycles);
    EXPECT_EQ(ra.swapOuts, rb.swapOuts);
}

TEST(TwoPhaseKernel, SingleSlotSingleThread)
{
    const TwoPhaseResult result =
        runTwoPhaseKernel(baseConfig(1, 1, 300));
    EXPECT_TRUE(result.halted);
    EXPECT_EQ(result.workUnits, 8u * 50u);
    EXPECT_EQ(result.swapOuts, 0u); // queue always empty
}

// The entire runtime — scheduler included — addresses only r0..r7:
// it runs wholly inside 8-register relocated contexts, the paper's
// minimal practical context size rounded to the next power of two.
TEST(TwoPhaseKernel, WholeRuntimeFitsEightRegisterContexts)
{
    const auto prog = assembler::assemble(
        runtime::twoPhaseSchedulerSource(50, 3));
    ASSERT_TRUE(prog.ok());
    const auto violations = checker::checkProgram(prog, 8);
    for (const auto &violation : violations)
        ADD_FAILURE() << violation.str();
    EXPECT_TRUE(violations.empty());
    // And not a 4-register context (r4..r7 are in use).
    EXPECT_FALSE(checker::checkProgram(prog, 4).empty());
}

} // namespace
} // namespace rr::kernel
