/**
 * @file
 * Tests for the Section 3.4 analytical model and the experiment
 * harness (replication + figure-panel sweeps), including agreement
 * between the closed-form model and the simulator in the
 * deterministic setting.
 */

#include <gtest/gtest.h>

#include "analysis/efficiency_model.hh"
#include "exp/env.hh"
#include "exp/sweep.hh"
#include "multithread/simulation_spec.hh"
#include "multithread/workload.hh"

namespace rr {
namespace {

TEST(EfficiencyModel, ClosedForms)
{
    analysis::EfficiencyModel model(100, 400, 6);
    EXPECT_DOUBLE_EQ(model.saturated(), 100.0 / 106.0);
    EXPECT_DOUBLE_EQ(model.linear(2), 200.0 / 506.0);
    EXPECT_DOUBLE_EQ(model.saturationPoint(), 1.0 + 400.0 / 106.0);
    EXPECT_TRUE(model.inLinearRegime(2));
    EXPECT_FALSE(model.inLinearRegime(6));
}

TEST(EfficiencyModel, EfficiencyIsMinOfRegimes)
{
    analysis::EfficiencyModel model(100, 400, 6);
    // Below saturation: linear.
    EXPECT_DOUBLE_EQ(model.efficiency(2), model.linear(2));
    // Above saturation: capped.
    EXPECT_DOUBLE_EQ(model.efficiency(10), model.saturated());
}

// The paper: "processor efficiency increases linearly in the number
// of resident contexts until saturation". Validate the simulator
// against E_lin for N = 1..4 deterministic contexts.
TEST(EfficiencyModel, SimulatorMatchesLinearRegime)
{
    const analysis::EfficiencyModel model(100, 2000, 6);
    for (unsigned n = 1; n <= 4; ++n) {
        // N threads of 8 registers each on a file with room for all.
        mt::MtConfig config = mt::SimulationSpec()
                                  .deterministicFaults(100, 2000)
                                  .threads(n)
                                  .registerDemand(8)
                                  .build();
        const mt::MtStats stats = mt::simulate(std::move(config));
        EXPECT_NEAR(stats.efficiencyCentral, model.linear(n),
                    model.linear(n) * 0.05 + 0.005)
            << "N=" << n;
    }
}

TEST(EfficiencyModel, SimulatorMatchesSaturation)
{
    // N* = 1 + 200/106 ~ 2.9: six contexts saturate comfortably.
    const analysis::EfficiencyModel model(100, 200, 6);
    mt::MtConfig config = mt::SimulationSpec()
                              .deterministicFaults(100, 200)
                              .threads(6)
                              .registerDemand(8)
                              .build();
    const mt::MtStats stats = mt::simulate(std::move(config));
    EXPECT_NEAR(stats.efficiencyCentral, model.saturated(), 0.02);
}

TEST(EfficiencyModelDeath, InvalidParamsPanic)
{
    EXPECT_DEATH(analysis::EfficiencyModel(0, 1, 1), "run length");
    EXPECT_DEATH(analysis::EfficiencyModel(1, -1, 1), "latency");
}

TEST(Sweep, ReplicateAggregatesSeeds)
{
    const exp::ConfigMaker maker = [](mt::ArchKind arch,
                                      uint64_t seed) {
        mt::MtConfig config = mt::SimulationSpec()
                                  .cacheFaults(32.0, 200)
                                  .arch(arch)
                                  .threads(16)
                                  .seed(seed)
                                  .build();
        return config;
    };
    const exp::Replicated rep =
        exp::replicate(maker, mt::ArchKind::Flexible, 3);
    EXPECT_EQ(rep.seeds, 3u);
    EXPECT_GT(rep.meanEfficiency, 0.0);
    EXPECT_LE(rep.meanEfficiency, 1.0);
    EXPECT_GT(rep.meanResident, 0.0);
    // Stochastic workloads: some seed-to-seed variation, but small.
    EXPECT_LT(rep.stddev, 0.1);
}

TEST(Sweep, PanelCoversGridAndBuildsTable)
{
    const exp::PanelMaker maker = [](mt::ArchKind arch, double r,
                                     double l, uint64_t seed) {
        mt::MtConfig config =
            mt::SimulationSpec()
                .cacheFaults(r, static_cast<uint64_t>(l))
                .arch(arch)
                .threads(12)
                .workPerThread(4000)
                .seed(seed)
                .build();
        return config;
    };
    const exp::FigurePanel panel =
        exp::sweepPanel(128, maker, {16.0, 64.0}, {100.0, 400.0}, 1);
    ASSERT_EQ(panel.points.size(), 4u);
    for (const auto &point : panel.points) {
        EXPECT_GT(point.fixed.meanEfficiency, 0.0);
        EXPECT_GT(point.flexible.meanEfficiency, 0.0);
    }
    const Table table = panel.toTable();
    EXPECT_EQ(table.numRows(), 4u);
    EXPECT_EQ(table.numCols(), 6u);
}

TEST(Env, UnsignedParsingAndDefaults)
{
    ::setenv("RR_TEST_ENV_VALUE", "17", 1);
    EXPECT_EQ(exp::envUnsigned("RR_TEST_ENV_VALUE", 3), 17u);
    ::unsetenv("RR_TEST_ENV_VALUE");
    EXPECT_EQ(exp::envUnsigned("RR_TEST_ENV_VALUE", 3), 3u);
    // An empty value counts as unset, not as garbage.
    ::setenv("RR_TEST_ENV_VALUE", "", 1);
    EXPECT_EQ(exp::envUnsigned("RR_TEST_ENV_VALUE", 3), 3u);
    ::unsetenv("RR_TEST_ENV_VALUE");
}

// A set-but-unparseable value must abort the run (exit 64), not be
// silently replaced by the default: a typo in RR_BENCH_SEEDS would
// otherwise change every result without a trace.
TEST(EnvDeath, GarbageValueDies)
{
    ::setenv("RR_TEST_ENV_VALUE", "junk", 1);
    EXPECT_EXIT(exp::envUnsigned("RR_TEST_ENV_VALUE", 3),
                ::testing::ExitedWithCode(64), "RR_TEST_ENV_VALUE");
    ::setenv("RR_TEST_ENV_VALUE", "17x", 1);
    EXPECT_EXIT(exp::envUnsigned("RR_TEST_ENV_VALUE", 3),
                ::testing::ExitedWithCode(64), "17x");
    ::unsetenv("RR_TEST_ENV_VALUE");
}

} // namespace
} // namespace rr
