/**
 * @file
 * Adversarial round-trip tests for the exp:: JSON writer/parser pair
 * and the trace JSONL emitter: control characters, short escapes,
 * \u sequences including surrogate pairs, and non-ASCII bytes must
 * all survive writer -> parser unchanged, and malformed escapes must
 * be rejected rather than smuggled through (docs/FUZZ.md, json
 * oracle). The rrfuzz json generator explores the same space
 * continuously; these are the pinned deterministic cases.
 */

#include <gtest/gtest.h>

#include <string>

#include "base/rng.hh"
#include "exp/json_in.hh"
#include "exp/json_out.hh"
#include "trace/event.hh"
#include "trace/sink.hh"

namespace rr::exp {
namespace {

/** Parse a bare JSON string literal; fails the test on error. */
std::string
parseString(const std::string &doc)
{
    std::string error;
    const auto parsed = parseJson(doc, &error);
    EXPECT_TRUE(parsed.has_value()) << doc << ": " << error;
    if (!parsed.has_value())
        return {};
    EXPECT_TRUE(parsed->isString()) << doc;
    return parsed->string;
}

TEST(JsonRoundTrip, SurrogatePairDecodesToAstralCodePoint)
{
    // U+1F600 as a \u escape pair must decode to its 4-byte UTF-8
    // form, not to two 3-byte CESU-8 halves.
    EXPECT_EQ(parseString("\"\\ud83d\\ude00\""),
              "\xF0\x9F\x98\x80");
    // Round trip: the writer passes raw UTF-8 through untouched.
    EXPECT_EQ(parseString(jsonQuote("\xF0\x9F\x98\x80")),
              "\xF0\x9F\x98\x80");
}

TEST(JsonRoundTrip, UnpairedSurrogatesRejected)
{
    EXPECT_FALSE(parseJson("\"\\ud83d\"").has_value());
    EXPECT_FALSE(parseJson("\"\\ude8b\"").has_value());
    EXPECT_FALSE(parseJson("\"\\ud83dx\"").has_value());
    EXPECT_FALSE(parseJson("\"\\ud83d\\u0041\"").has_value());
    EXPECT_FALSE(parseJson("\"\\ud83d\\ud83d\"").has_value());
}

TEST(JsonRoundTrip, MalformedEscapesRejected)
{
    EXPECT_FALSE(parseJson("\"\\u12\"").has_value());
    EXPECT_FALSE(parseJson("\"\\uzzzz\"").has_value());
    EXPECT_FALSE(parseJson("\"\\q\"").has_value());
    EXPECT_FALSE(parseJson("\"\\u123").has_value());
}

TEST(JsonRoundTrip, BasicMultilingualPlaneEscapes)
{
    EXPECT_EQ(parseString("\"\\u0041\""), "A");
    EXPECT_EQ(parseString("\"\\u00e9\""), "\xC3\xA9");   // é
    EXPECT_EQ(parseString("\"\\u65e5\""), "\xE6\x97\xA5"); // 日
}

TEST(JsonRoundTrip, ControlCharactersRoundTrip)
{
    // Every control byte must be escaped by the writer and decoded
    // back by the parser — raw control bytes in JSON are invalid.
    for (unsigned c = 0; c < 0x20; ++c) {
        const std::string original(1, static_cast<char>(c));
        const std::string doc = jsonQuote(original);
        for (const char byte : doc) {
            EXPECT_GE(static_cast<unsigned char>(byte), 0x20u)
                << "raw control byte " << c << " in " << doc;
        }
        EXPECT_EQ(parseString(doc), original) << "byte " << c;
    }
}

TEST(JsonRoundTrip, WriterUsesShortEscapes)
{
    EXPECT_EQ(jsonQuote("\b\f\n\r\t"),
              "\"\\b\\f\\n\\r\\t\"");
    EXPECT_EQ(jsonQuote("\x01"), "\"\\u0001\"");
    EXPECT_EQ(jsonQuote("a\"b\\c"), "\"a\\\"b\\\\c\"");
}

TEST(JsonRoundTrip, NonAsciiBytesPassThrough)
{
    const std::string text = "h\xC3\xA9llo \xE2\x86\x92 "
                             "\xE6\x97\xA5\xE6\x9C\xAC";
    const std::string doc = jsonQuote(text);
    EXPECT_EQ(parseString(doc), text);
    // Fixpoint: re-quoting the decoded value is stable.
    EXPECT_EQ(jsonQuote(parseString(doc)), doc);
}

TEST(JsonRoundTrip, AdversarialRandomStrings)
{
    // Random ASCII (including every control byte) mixed with multi-
    // byte UTF-8 fragments: quote -> parse must be the identity.
    const std::string fragments[] = {
        "\xC3\xA9", "\xE6\x97\xA5", "\xF0\x9F\x98\x80",
    };
    Rng rng(2026);
    for (int iteration = 0; iteration < 2000; ++iteration) {
        std::string text;
        const unsigned length = rng.nextRange(0, 24);
        for (unsigned i = 0; i < length; ++i) {
            const unsigned pick = rng.nextRange(0, 9);
            if (pick == 0)
                text += fragments[rng.nextRange(0, 2)];
            else
                text += static_cast<char>(rng.nextRange(0, 127));
        }
        const std::string doc = jsonQuote(text);
        std::string error;
        const auto parsed = parseJson(doc, &error);
        ASSERT_TRUE(parsed.has_value()) << doc << ": " << error;
        ASSERT_TRUE(parsed->isString());
        EXPECT_EQ(parsed->string, text);
        EXPECT_EQ(jsonQuote(parsed->string), doc);
    }
}

TEST(JsonRoundTrip, EveryTraceEventKindEmitsValidJson)
{
    // The JSONL trace sink hand-rolls its lines for speed; pin the
    // invariant that every event kind yields parseable JSON with the
    // expected kind name (docs/TRACE.md).
    for (unsigned k = 0; k < trace::numEventKinds; ++k) {
        trace::TraceEvent event;
        event.kind = static_cast<trace::EventKind>(k);
        event.tid = 3;
        event.ctx = 16;
        event.regs = 12;
        event.cycle = 1000;
        event.cycles = 40;
        event.aux = 7;
        const std::string line = trace::eventToJsonLine(event);
        std::string error;
        const auto parsed = parseJson(line, &error);
        ASSERT_TRUE(parsed.has_value()) << line << ": " << error;
        ASSERT_TRUE(parsed->isObject());
        EXPECT_EQ(parsed->stringOr("ev", ""),
                  trace::eventKindName(event.kind));
        EXPECT_EQ(parsed->numberOr("cycle", -1), 1000.0);
    }
}

} // namespace
} // namespace rr::exp
