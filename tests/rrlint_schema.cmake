# Runs rrlint --all --json over the analysis fixtures and the example
# corpus, then feeds the report back through rrlint --validate: the
# emitted document must always be a structurally valid rr.lint.v1
# document, findings or not (docs/LINT.md). Invoked by ctest; see
# tests/CMakeLists.txt.

foreach(var RRLINT WORK_DIR SOURCE_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "${var} is required")
    endif()
endforeach()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

file(GLOB LINT_INPUTS
    ${SOURCE_DIR}/examples/asm/*.s
    ${SOURCE_DIR}/tests/asm/*.s)
if(NOT LINT_INPUTS)
    message(FATAL_ERROR "no assembly inputs found")
endif()

# Findings in the fixtures make this exit 1; only exit 2 (unreadable
# input) or 64 (usage) would mean the report itself is missing.
execute_process(
    COMMAND ${RRLINT} --all --json ${LINT_INPUTS}
    OUTPUT_FILE ${WORK_DIR}/report.json
    RESULT_VARIABLE lint_status)
if(lint_status GREATER 1)
    message(FATAL_ERROR
        "rrlint --all --json failed with status ${lint_status}")
endif()

execute_process(
    COMMAND ${RRLINT} --validate ${WORK_DIR}/report.json
    RESULT_VARIABLE validate_status)
if(NOT validate_status EQUAL 0)
    message(FATAL_ERROR
        "rrlint --json emitted an invalid rr.lint.v1 document "
        "(validate exit ${validate_status})")
endif()
