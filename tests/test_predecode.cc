/**
 * @file
 * The predecoded instruction cache must be architecturally invisible:
 * identical registers, memory, counters, traps, timing stats, and
 * traces with the cache on or off — and, when on, under every run()
 * dispatch strategy (switch, threaded, fused superblocks) — over
 * every example program and the configurations that exercise each
 * relocation mode. Plus the two invalidation paths that keep it
 * sound — simulated stores (self-modifying code) and host writes
 * through Memory — and the fall-back to the uncached path for
 * oversized memories, including the exact cap boundary.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "assembler/assembler.hh"
#include "isa/instruction.hh"
#include "machine/cpu.hh"

namespace rr::machine {
namespace {

CpuConfig
baseConfig()
{
    CpuConfig config;
    config.numRegs = 128;
    config.operandWidth = 5;
    config.ldrrmDelaySlots = 1;
    config.memWords = 4096;
    return config;
}

void
loadAndStart(Cpu &cpu, const assembler::Program &prog)
{
    cpu.mem().loadImage(prog.base, prog.words);
    const auto entry = prog.symbols.find("entry");
    cpu.setPc(entry != prog.symbols.end() ? entry->second
                                          : prog.base);
}

assembler::Program
assembleOrDie(const std::string &source)
{
    assembler::Program prog = assembler::assemble(source);
    for (const auto &error : prog.errors)
        ADD_FAILURE() << error.str();
    EXPECT_TRUE(prog.ok());
    return prog;
}

/** Everything the cache could possibly perturb, in one snapshot. */
struct ArchState
{
    bool cacheActive = false;
    bool dispatchActive = false;
    uint64_t instret = 0;
    uint64_t cycles = 0;
    uint64_t stalls = 0;
    uint32_t pc = 0;
    uint32_t psw = 0;
    bool halted = false;
    TrapKind trap = TrapKind::None;
    std::vector<uint32_t> regs;
    std::vector<uint32_t> mem;
};

/** Run @p prog with the cache forced on or off and @p dispatch. */
ArchState
runWith(const CpuConfig &config, const assembler::Program &prog,
        bool predecode, uint64_t steps = 100'000,
        DispatchMode dispatch = DispatchMode::Switch)
{
    CpuConfig c = config;
    c.predecode = predecode;
    c.dispatch = dispatch;
    Cpu cpu(c);
    loadAndStart(cpu, prog);
    cpu.run(steps);

    ArchState state;
    state.cacheActive = cpu.predecodeActive();
    state.dispatchActive = cpu.dispatchActive();
    state.instret = cpu.instructionsRetired();
    state.cycles = cpu.cycles();
    state.stalls = cpu.timingStats().total();
    state.pc = cpu.pc();
    state.psw = cpu.psw();
    state.halted = cpu.halted();
    state.trap = cpu.trap();
    for (unsigned r = 0; r < c.numRegs; ++r)
        state.regs.push_back(cpu.regs().read(r));
    for (size_t a = 0; a < c.memWords; ++a)
        state.mem.push_back(cpu.mem().read(a));
    return state;
}

/**
 * Full architectural-state comparison across the dispatch matrix:
 * the uncached reference against the cache in every dispatch mode.
 */
void
expectSameArchState(const CpuConfig &config,
                    const assembler::Program &prog,
                    uint64_t steps = 100'000)
{
    const ArchState off = runWith(config, prog, false, steps);
    EXPECT_FALSE(off.cacheActive);

    constexpr DispatchMode kModes[] = {DispatchMode::Switch,
                                       DispatchMode::Threaded,
                                       DispatchMode::Fused};
    for (const DispatchMode mode : kModes) {
        SCOPED_TRACE(dispatchModeName(mode));
        const ArchState on = runWith(config, prog, true, steps, mode);

        EXPECT_TRUE(on.cacheActive);
        EXPECT_EQ(on.dispatchActive, mode != DispatchMode::Switch);

        EXPECT_EQ(on.instret, off.instret);
        EXPECT_EQ(on.cycles, off.cycles);
        EXPECT_EQ(on.pc, off.pc);
        EXPECT_EQ(on.halted, off.halted);
        EXPECT_EQ(on.trap, off.trap);
        EXPECT_EQ(on.psw, off.psw);
        EXPECT_EQ(on.stalls, off.stalls);
        EXPECT_EQ(on.regs, off.regs);
        EXPECT_EQ(on.mem, off.mem);
    }
}

std::vector<assembler::Program>
examplesCorpus()
{
    namespace fs = std::filesystem;
    std::vector<fs::path> files;
    for (const auto &it :
         fs::directory_iterator(RR_EXAMPLES_ASM_DIR)) {
        if (it.path().extension() == ".s")
            files.push_back(it.path());
    }
    std::sort(files.begin(), files.end());
    EXPECT_FALSE(files.empty());

    std::vector<assembler::Program> corpus;
    for (const fs::path &path : files) {
        std::ifstream in(path);
        std::ostringstream source;
        source << in.rdbuf();
        corpus.push_back(assembleOrDie(source.str()));
    }
    return corpus;
}

TEST(Predecode, MatchesUncachedOnExamplesCorpus)
{
    for (const assembler::Program &prog : examplesCorpus())
        expectSameArchState(baseConfig(), prog);
}

TEST(Predecode, MatchesUncachedWithTimingEnabled)
{
    CpuConfig config = baseConfig();
    config.timing = PipelineTimingConfig::classicFiveStage();
    for (const assembler::Program &prog : examplesCorpus())
        expectSameArchState(config, prog);
}

// The LDRRM-heavy path: ping-pong between two contexts, with loads
// feeding dependent uses so the timing model's hazard detection runs
// on both sides of each mask switch.
constexpr const char *kSwitchProgram = R"(
.equ CTX_A, 0x20
.equ CTX_B, 0x40
entry:
    li    r1, 40
    li    r2, CTX_A
    li    r3, CTX_B
    st    r1, 0(r0)
loop:
    ldrrm r2
    nop
    li    r10, 7
    ldrrm r0
    nop
    ldrrm r3
    nop
    li    r10, 9
    ldrrm r0
    nop
    ld    r4, 0(r0)
    addi  r4, r4, -1
    st    r4, 0(r0)
    bne   r4, r0, loop
    halt
)";

TEST(Predecode, MatchesUncachedAcrossContextSwitches)
{
    const assembler::Program prog = assembleOrDie(kSwitchProgram);
    expectSameArchState(baseConfig(), prog);

    CpuConfig timed = baseConfig();
    timed.timing = PipelineTimingConfig::classicFiveStage();
    expectSameArchState(timed, prog);
}

TEST(Predecode, MatchesUncachedInMuxMode)
{
    CpuConfig config = baseConfig();
    config.relocationMode = RelocationMode::Mux;
    const assembler::Program prog = assembleOrDie(kSwitchProgram);
    expectSameArchState(config, prog);
}

TEST(Predecode, MatchesUncachedInAddMode)
{
    CpuConfig config = baseConfig();
    config.relocationMode = RelocationMode::Add;
    const assembler::Program prog = assembleOrDie(kSwitchProgram);
    expectSameArchState(config, prog);
}

TEST(Predecode, MatchesUncachedWithBankedRrm)
{
    CpuConfig config = baseConfig();
    config.rrmBanks = 2;
    // With two banks the operand's top bit selects the mask; the
    // setup just installs a window and runs ALU traffic through both
    // halves of the operand space.
    const assembler::Program prog = assembleOrDie(R"(
entry:
    li    r1, 5
    li    r2, 3
    add   r3, r1, r2
    add   r17, r1, r2
    sub   r18, r17, r2
    xor   r4, r18, r3
    halt
)");
    expectSameArchState(config, prog);
}

// Self-modifying code: the program overwrites an upcoming
// instruction word; the cached predecode of the old word must be
// dropped at the store, not served stale.
TEST(Predecode, StoreInvalidatesCachedInstruction)
{
    // 'patch' starts as "addi r3, r0, 1"; the program first executes
    // it (so it is hot in the predecode cache), then overwrites it
    // with "addi r3, r0, 2" and loops back through it.
    const assembler::Program prog = assembleOrDie(R"(
entry:
    jal   r9, warm
    la    r4, patch
    la    r5, newinst
    ld    r6, 0(r5)
    st    r6, 0(r4)
    jal   r9, warm
    halt
warm:
patch:
    addi  r3, r0, 1
    jmp   r9
newinst:
    addi  r3, r0, 2
)");
    const struct
    {
        bool predecode;
        DispatchMode dispatch;
    } kLegs[] = {{false, DispatchMode::Switch},
                 {true, DispatchMode::Switch},
                 {true, DispatchMode::Threaded},
                 {true, DispatchMode::Fused}};
    for (const auto &leg : kLegs) {
        CpuConfig config = baseConfig();
        config.predecode = leg.predecode;
        config.dispatch = leg.dispatch;
        Cpu cpu(config);
        loadAndStart(cpu, prog);
        cpu.run(100);
        EXPECT_TRUE(cpu.halted());
        EXPECT_EQ(cpu.regs().read(3), 2u)
            << "stale predecode served (predecode=" << leg.predecode
            << ", dispatch=" << dispatchModeName(leg.dispatch)
            << ")";
    }
    const assembler::Program again = prog;
    expectSameArchState(baseConfig(), again, 100);
}

// Host writes bypass the CPU's store path entirely (kernels patch
// completion flags this way); the word-tag compare must still catch
// the change.
TEST(Predecode, HostMemoryWriteInvalidatesCachedInstruction)
{
    const assembler::Program prog = assembleOrDie(R"(
entry:
    addi  r3, r0, 1
    beq   r0, r0, entry
)");
    for (const DispatchMode dispatch :
         {DispatchMode::Switch, DispatchMode::Threaded,
          DispatchMode::Fused}) {
        SCOPED_TRACE(dispatchModeName(dispatch));
        CpuConfig config = baseConfig();
        config.predecode = true;
        config.dispatch = dispatch;
        Cpu cpu(config);
        loadAndStart(cpu, prog);

        // Let the two-instruction loop get cached.
        for (int i = 0; i < 6; ++i)
            cpu.step();
        EXPECT_EQ(cpu.regs().read(3), 1u);

        // Patch the first instruction to "addi r3, r0, 3" from the
        // host.
        isa::Instruction patched;
        ASSERT_TRUE(isa::decode(cpu.mem().read(0), patched));
        patched.imm = 3;
        cpu.mem().write(0, isa::encode(patched));

        for (int i = 0; i < 2; ++i)
            cpu.step();
        EXPECT_EQ(cpu.regs().read(3), 3u)
            << "tag compare missed a host write";
    }
}

// Memories past the predecode cap silently fall back to the uncached
// path rather than allocating a giant side table.
TEST(Predecode, OversizedMemoryFallsBackToUncached)
{
    CpuConfig config = baseConfig();
    config.predecode = true;
    config.memWords = (size_t{1} << 22) + 1;
    Cpu cpu(config);
    EXPECT_FALSE(cpu.predecodeActive());
    EXPECT_FALSE(cpu.dispatchActive());

    config.memWords = 4096;
    Cpu small(config);
    EXPECT_TRUE(small.predecodeActive());
}

// The fallback boundary itself: a memory of exactly kPredecodeMaxWords
// is still shadowed (the cap is inclusive), one word more is not, and
// a self-modifying program sitting right against the cap behaves
// identically on both sides of it — the store-invalidation semantics
// must not depend on which path the memory size selected.
TEST(Predecode, FallbackBoundaryKeepsStoreInvalidationSemantics)
{
    constexpr size_t kCap = Cpu::kPredecodeMaxWords;
    // Same shape as StoreInvalidatesCachedInstruction, but placed in
    // the last few words below the cap so the patched instruction is
    // the highest cacheable address. la cannot encode these addresses
    // (their low 12 bits exceed the signed ORI range), so patch and
    // newinst are reached by backing off from the cap itself:
    // lui 1024 == 1 << 22.
    const assembler::Program prog = assembleOrDie(R"(
.org 4194292
entry:
    jal   r9, warm
    lui   r4, 1024
    addi  r4, r4, -3
    lui   r5, 1024
    addi  r5, r5, -1
    ld    r6, 0(r5)
    st    r6, 0(r4)
    jal   r9, warm
    halt
warm:
patch:
    addi  r3, r0, 1
    jmp   r9
newinst:
    addi  r3, r0, 2
)");
    ASSERT_EQ(prog.base, 4194292u);
    ASSERT_EQ(prog.base + prog.words.size(), kCap);
    const auto patch = prog.symbols.find("patch");
    const auto newinst = prog.symbols.find("newinst");
    ASSERT_NE(patch, prog.symbols.end());
    ASSERT_NE(newinst, prog.symbols.end());
    ASSERT_EQ(patch->second, kCap - 3);
    ASSERT_EQ(newinst->second, kCap - 1);

    uint64_t cachedInstret = 0;
    uint64_t cachedCycles = 0;
    for (const size_t memWords : {kCap, kCap + 1}) {
        SCOPED_TRACE(memWords);
        CpuConfig config = baseConfig();
        config.predecode = true;
        config.memWords = memWords;
        Cpu cpu(config);
        // Inclusive cap: exactly kPredecodeMaxWords still caches,
        // one more word falls back to decode-per-step.
        EXPECT_EQ(cpu.predecodeActive(), memWords <= kCap);
        EXPECT_EQ(cpu.dispatchActive(), memWords <= kCap);
        loadAndStart(cpu, prog);
        cpu.run(100);
        EXPECT_TRUE(cpu.halted());
        EXPECT_EQ(cpu.regs().read(3), 2u)
            << "stale instruction served near the predecode cap";
        if (memWords == kCap) {
            cachedInstret = cpu.instructionsRetired();
            cachedCycles = cpu.cycles();
        } else {
            EXPECT_EQ(cpu.instructionsRetired(), cachedInstret);
            EXPECT_EQ(cpu.cycles(), cachedCycles);
        }
    }
}

TEST(Predecode, ConfigOffDisablesCache)
{
    CpuConfig config = baseConfig();
    config.predecode = false;
    Cpu cpu(config);
    EXPECT_FALSE(cpu.predecodeActive());
}

// Traces must be identical too: the hook sees the same decoded
// instruction, mask, cycle, and disassembly in every mode, including
// the fused dispatcher (which must split each macro-op pair back into
// two per-instruction hook calls).
TEST(Predecode, TraceStreamIdenticalInAllModes)
{
    const assembler::Program prog = assembleOrDie(kSwitchProgram);
    const auto capture = [&](bool predecode, DispatchMode dispatch) {
        CpuConfig config = baseConfig();
        config.predecode = predecode;
        config.dispatch = dispatch;
        Cpu cpu(config);
        std::ostringstream out;
        cpu.setTraceHook([&out](const TraceEntry &entry) {
            out << entry.cycle << ' ' << entry.pc << ' ' << entry.rrm
                << ' ' << entry.text << '\n';
        });
        loadAndStart(cpu, prog);
        cpu.run(100'000);
        return out.str();
    };
    const std::string off = capture(false, DispatchMode::Switch);
    EXPECT_FALSE(off.empty());
    for (const DispatchMode mode :
         {DispatchMode::Switch, DispatchMode::Threaded,
          DispatchMode::Fused}) {
        SCOPED_TRACE(dispatchModeName(mode));
        EXPECT_EQ(capture(true, mode), off);
    }
}

} // namespace
} // namespace rr::machine
