/**
 * @file
 * The predecoded instruction cache must be architecturally invisible:
 * identical registers, memory, counters, traps, timing stats, and
 * traces with the cache on or off, over every example program and the
 * configurations that exercise each relocation mode. Plus the two
 * invalidation paths that keep it sound — simulated stores (self-
 * modifying code) and host writes through Memory — and the fall-back
 * to the uncached path for oversized memories.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "assembler/assembler.hh"
#include "isa/instruction.hh"
#include "machine/cpu.hh"

namespace rr::machine {
namespace {

CpuConfig
baseConfig()
{
    CpuConfig config;
    config.numRegs = 128;
    config.operandWidth = 5;
    config.ldrrmDelaySlots = 1;
    config.memWords = 4096;
    return config;
}

void
loadAndStart(Cpu &cpu, const assembler::Program &prog)
{
    cpu.mem().loadImage(prog.base, prog.words);
    const auto entry = prog.symbols.find("entry");
    cpu.setPc(entry != prog.symbols.end() ? entry->second
                                          : prog.base);
}

assembler::Program
assembleOrDie(const std::string &source)
{
    assembler::Program prog = assembler::assemble(source);
    for (const auto &error : prog.errors)
        ADD_FAILURE() << error.str();
    EXPECT_TRUE(prog.ok());
    return prog;
}

/** Everything the cache could possibly perturb, in one snapshot. */
struct ArchState
{
    bool cacheActive = false;
    uint64_t instret = 0;
    uint64_t cycles = 0;
    uint64_t stalls = 0;
    uint32_t pc = 0;
    uint32_t psw = 0;
    bool halted = false;
    TrapKind trap = TrapKind::None;
    std::vector<uint32_t> regs;
    std::vector<uint32_t> mem;
};

/** Run @p prog under @p config with the cache forced on or off. */
ArchState
runWith(const CpuConfig &config, const assembler::Program &prog,
        bool predecode, uint64_t steps = 100'000)
{
    CpuConfig c = config;
    c.predecode = predecode;
    Cpu cpu(c);
    loadAndStart(cpu, prog);
    cpu.run(steps);

    ArchState state;
    state.cacheActive = cpu.predecodeActive();
    state.instret = cpu.instructionsRetired();
    state.cycles = cpu.cycles();
    state.stalls = cpu.timingStats().total();
    state.pc = cpu.pc();
    state.psw = cpu.psw();
    state.halted = cpu.halted();
    state.trap = cpu.trap();
    for (unsigned r = 0; r < c.numRegs; ++r)
        state.regs.push_back(cpu.regs().read(r));
    for (size_t a = 0; a < c.memWords; ++a)
        state.mem.push_back(cpu.mem().read(a));
    return state;
}

/** Full architectural-state comparison between the two modes. */
void
expectSameArchState(const CpuConfig &config,
                    const assembler::Program &prog,
                    uint64_t steps = 100'000)
{
    const ArchState off = runWith(config, prog, false, steps);
    const ArchState on = runWith(config, prog, true, steps);

    EXPECT_FALSE(off.cacheActive);
    EXPECT_TRUE(on.cacheActive);

    EXPECT_EQ(on.instret, off.instret);
    EXPECT_EQ(on.cycles, off.cycles);
    EXPECT_EQ(on.pc, off.pc);
    EXPECT_EQ(on.halted, off.halted);
    EXPECT_EQ(on.trap, off.trap);
    EXPECT_EQ(on.psw, off.psw);
    EXPECT_EQ(on.stalls, off.stalls);
    EXPECT_EQ(on.regs, off.regs);
    EXPECT_EQ(on.mem, off.mem);
}

std::vector<assembler::Program>
examplesCorpus()
{
    namespace fs = std::filesystem;
    std::vector<fs::path> files;
    for (const auto &it :
         fs::directory_iterator(RR_EXAMPLES_ASM_DIR)) {
        if (it.path().extension() == ".s")
            files.push_back(it.path());
    }
    std::sort(files.begin(), files.end());
    EXPECT_FALSE(files.empty());

    std::vector<assembler::Program> corpus;
    for (const fs::path &path : files) {
        std::ifstream in(path);
        std::ostringstream source;
        source << in.rdbuf();
        corpus.push_back(assembleOrDie(source.str()));
    }
    return corpus;
}

TEST(Predecode, MatchesUncachedOnExamplesCorpus)
{
    for (const assembler::Program &prog : examplesCorpus())
        expectSameArchState(baseConfig(), prog);
}

TEST(Predecode, MatchesUncachedWithTimingEnabled)
{
    CpuConfig config = baseConfig();
    config.timing = PipelineTimingConfig::classicFiveStage();
    for (const assembler::Program &prog : examplesCorpus())
        expectSameArchState(config, prog);
}

// The LDRRM-heavy path: ping-pong between two contexts, with loads
// feeding dependent uses so the timing model's hazard detection runs
// on both sides of each mask switch.
constexpr const char *kSwitchProgram = R"(
.equ CTX_A, 0x20
.equ CTX_B, 0x40
entry:
    li    r1, 40
    li    r2, CTX_A
    li    r3, CTX_B
    st    r1, 0(r0)
loop:
    ldrrm r2
    nop
    li    r10, 7
    ldrrm r0
    nop
    ldrrm r3
    nop
    li    r10, 9
    ldrrm r0
    nop
    ld    r4, 0(r0)
    addi  r4, r4, -1
    st    r4, 0(r0)
    bne   r4, r0, loop
    halt
)";

TEST(Predecode, MatchesUncachedAcrossContextSwitches)
{
    const assembler::Program prog = assembleOrDie(kSwitchProgram);
    expectSameArchState(baseConfig(), prog);

    CpuConfig timed = baseConfig();
    timed.timing = PipelineTimingConfig::classicFiveStage();
    expectSameArchState(timed, prog);
}

TEST(Predecode, MatchesUncachedInMuxMode)
{
    CpuConfig config = baseConfig();
    config.relocationMode = RelocationMode::Mux;
    const assembler::Program prog = assembleOrDie(kSwitchProgram);
    expectSameArchState(config, prog);
}

TEST(Predecode, MatchesUncachedInAddMode)
{
    CpuConfig config = baseConfig();
    config.relocationMode = RelocationMode::Add;
    const assembler::Program prog = assembleOrDie(kSwitchProgram);
    expectSameArchState(config, prog);
}

TEST(Predecode, MatchesUncachedWithBankedRrm)
{
    CpuConfig config = baseConfig();
    config.rrmBanks = 2;
    // With two banks the operand's top bit selects the mask; the
    // setup just installs a window and runs ALU traffic through both
    // halves of the operand space.
    const assembler::Program prog = assembleOrDie(R"(
entry:
    li    r1, 5
    li    r2, 3
    add   r3, r1, r2
    add   r17, r1, r2
    sub   r18, r17, r2
    xor   r4, r18, r3
    halt
)");
    expectSameArchState(config, prog);
}

// Self-modifying code: the program overwrites an upcoming
// instruction word; the cached predecode of the old word must be
// dropped at the store, not served stale.
TEST(Predecode, StoreInvalidatesCachedInstruction)
{
    // 'patch' starts as "addi r3, r0, 1"; the program first executes
    // it (so it is hot in the predecode cache), then overwrites it
    // with "addi r3, r0, 2" and loops back through it.
    const assembler::Program prog = assembleOrDie(R"(
entry:
    jal   r9, warm
    la    r4, patch
    la    r5, newinst
    ld    r6, 0(r5)
    st    r6, 0(r4)
    jal   r9, warm
    halt
warm:
patch:
    addi  r3, r0, 1
    jmp   r9
newinst:
    addi  r3, r0, 2
)");
    for (const bool predecode : {false, true}) {
        CpuConfig config = baseConfig();
        config.predecode = predecode;
        Cpu cpu(config);
        loadAndStart(cpu, prog);
        cpu.run(100);
        EXPECT_TRUE(cpu.halted());
        EXPECT_EQ(cpu.regs().read(3), 2u)
            << "stale predecode served (predecode=" << predecode
            << ")";
    }
    const assembler::Program again = prog;
    expectSameArchState(baseConfig(), again, 100);
}

// Host writes bypass the CPU's store path entirely (kernels patch
// completion flags this way); the word-tag compare must still catch
// the change.
TEST(Predecode, HostMemoryWriteInvalidatesCachedInstruction)
{
    const assembler::Program prog = assembleOrDie(R"(
entry:
    addi  r3, r0, 1
    beq   r0, r0, entry
)");
    CpuConfig config = baseConfig();
    config.predecode = true;
    Cpu cpu(config);
    loadAndStart(cpu, prog);

    // Let the two-instruction loop get cached.
    for (int i = 0; i < 6; ++i)
        cpu.step();
    EXPECT_EQ(cpu.regs().read(3), 1u);

    // Patch the first instruction to "addi r3, r0, 3" from the host.
    isa::Instruction patched;
    ASSERT_TRUE(isa::decode(cpu.mem().read(0), patched));
    patched.imm = 3;
    cpu.mem().write(0, isa::encode(patched));

    for (int i = 0; i < 2; ++i)
        cpu.step();
    EXPECT_EQ(cpu.regs().read(3), 3u) << "tag compare missed a host "
                                         "write";
}

// Memories past the predecode cap silently fall back to the uncached
// path rather than allocating a giant side table.
TEST(Predecode, OversizedMemoryFallsBackToUncached)
{
    CpuConfig config = baseConfig();
    config.predecode = true;
    config.memWords = (size_t{1} << 22) + 1;
    Cpu cpu(config);
    EXPECT_FALSE(cpu.predecodeActive());

    config.memWords = 4096;
    Cpu small(config);
    EXPECT_TRUE(small.predecodeActive());
}

TEST(Predecode, ConfigOffDisablesCache)
{
    CpuConfig config = baseConfig();
    config.predecode = false;
    Cpu cpu(config);
    EXPECT_FALSE(cpu.predecodeActive());
}

// Traces must be identical too: the hook sees the same decoded
// instruction, mask, cycle, and disassembly in both modes.
TEST(Predecode, TraceStreamIdenticalInBothModes)
{
    const assembler::Program prog = assembleOrDie(kSwitchProgram);
    const auto capture = [&](bool predecode) {
        CpuConfig config = baseConfig();
        config.predecode = predecode;
        Cpu cpu(config);
        std::ostringstream out;
        cpu.setTraceHook([&out](const TraceEntry &entry) {
            out << entry.cycle << ' ' << entry.pc << ' ' << entry.rrm
                << ' ' << entry.text << '\n';
        });
        loadAndStart(cpu, prog);
        cpu.run(100'000);
        return out.str();
    };
    const std::string off = capture(false);
    const std::string on = capture(true);
    EXPECT_FALSE(off.empty());
    EXPECT_EQ(on, off);
}

} // namespace
} // namespace rr::machine
