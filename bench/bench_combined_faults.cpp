/**
 * @file
 * Section 3: "We also ran experiments involving both types of
 * faults, with similar results; the main effect was to increase the
 * overall fault rate."
 *
 * Cache and synchronization fault processes race independently per
 * run segment; the earlier one fires. The table shows the combined
 * workload next to each single-fault workload at the same
 * parameters, for both architectures.
 */

#include <vector>

#include "base/table.hh"
#include "exp/registry.hh"
#include "exp/sweep.hh"
#include "multithread/simulation_spec.hh"

RR_BENCH_FIGURE(combined_faults,
                "Combined cache + synchronization faults "
                "(Section 3)")
{
    using namespace rr;

    const unsigned seeds = ctx.run().seeds;
    const unsigned threads = ctx.run().threads;

    ctx.text("(F = 128; cache: R = 64, constant L = 64; sync: "
             "geometric R, exponential L;\n two-phase unloading, "
             "S = 8)");

    const std::vector<double> latencies =
        ctx.run().fast ? std::vector<double>{512.0}
                       : std::vector<double>{256.0, 1024.0};

    struct RowSpec
    {
        double syncRun;
        double syncLatency;
        mt::ArchKind arch;
    };
    std::vector<RowSpec> rows;
    std::vector<exp::ReplicateRequest> requests;
    for (const double sync_run : {128.0, 512.0}) {
        for (const double sync_latency : latencies) {
            for (const mt::ArchKind arch :
                 {mt::ArchKind::FixedHw, mt::ArchKind::Flexible}) {
                const exp::ConfigMaker cache_only =
                    [threads](mt::ArchKind a, uint64_t seed) {
                        return mt::SimulationSpec()
                            .cacheFaults(64.0, 64)
                            .arch(a)
                            .numRegs(128)
                            .threads(threads)
                            .seed(seed)
                            .build();
                    };
                const exp::ConfigMaker sync_only =
                    [sync_run, sync_latency,
                     threads](mt::ArchKind a, uint64_t seed) {
                        return mt::SimulationSpec()
                            .syncFaults(sync_run, sync_latency)
                            .arch(a)
                            .numRegs(128)
                            .threads(threads)
                            .seed(seed)
                            .build();
                    };
                const exp::ConfigMaker combined =
                    [sync_run, sync_latency,
                     threads](mt::ArchKind a, uint64_t seed) {
                        return mt::SimulationSpec()
                            .combinedFaults(64.0, 64, sync_run,
                                            sync_latency)
                            .arch(a)
                            .numRegs(128)
                            .threads(threads)
                            .seed(seed)
                            .build();
                    };
                rows.push_back({sync_run, sync_latency, arch});
                requests.push_back({cache_only, arch});
                requests.push_back({sync_only, arch});
                requests.push_back({combined, arch});
            }
        }
    }
    const std::vector<exp::Replicated> results =
        exp::replicateMany(requests, seeds);

    Table table({"sync R", "sync L", "arch", "cache only",
                 "sync only", "combined"});
    for (std::size_t i = 0; i < rows.size(); ++i) {
        table.addRow(
            {Table::num(rows[i].syncRun, 0),
             Table::num(rows[i].syncLatency, 0),
             mt::archName(rows[i].arch),
             Table::num(results[3 * i].meanEfficiency),
             Table::num(results[3 * i + 1].meanEfficiency),
             Table::num(results[3 * i + 2].meanEfficiency)});
    }
    ctx.table("combined", "", std::move(table));
    ctx.text("Expected shape: the combined column sits below both "
             "single-fault columns\n(higher overall fault rate), "
             "with the same flexible-vs-fixed ordering.");
}
