/**
 * @file
 * Section 3: "We also ran experiments involving both types of
 * faults, with similar results; the main effect was to increase the
 * overall fault rate."
 *
 * Cache and synchronization fault processes race independently per
 * run segment; the earlier one fires. The table shows the combined
 * workload next to each single-fault workload at the same
 * parameters, for both architectures.
 */

#include <cstdio>
#include <vector>

#include "base/table.hh"
#include "exp/env.hh"
#include "exp/sweep.hh"
#include "multithread/workload.hh"

int
main()
{
    using namespace rr;

    const unsigned seeds = exp::benchSeeds();
    const unsigned threads = exp::benchThreads();

    std::printf("Combined cache + synchronization faults "
                "(Section 3)\n");
    std::printf("(F = 128; cache: R = 64, constant L = 64; sync: "
                "geometric R, exponential L;\n two-phase unloading, "
                "S = 8)\n\n");

    Table table({"sync R", "sync L", "arch", "cache only",
                 "sync only", "combined"});
    for (const double sync_run : {128.0, 512.0}) {
        const std::vector<double> latencies =
            exp::benchFast() ? std::vector<double>{512.0}
                             : std::vector<double>{256.0, 1024.0};
        for (const double sync_latency : latencies) {
            for (const mt::ArchKind arch :
                 {mt::ArchKind::FixedHw, mt::ArchKind::Flexible}) {
                const exp::ConfigMaker cache_only =
                    [&](mt::ArchKind a, uint64_t seed) {
                        mt::MtConfig config =
                            mt::fig5Config(a, 128, 64.0, 64, seed);
                        config.workload.numThreads = threads;
                        return config;
                    };
                const exp::ConfigMaker sync_only =
                    [&](mt::ArchKind a, uint64_t seed) {
                        mt::MtConfig config = mt::fig6Config(
                            a, 128, sync_run, sync_latency, seed);
                        config.workload.numThreads = threads;
                        return config;
                    };
                const exp::ConfigMaker combined =
                    [&](mt::ArchKind a, uint64_t seed) {
                        mt::MtConfig config = mt::combinedConfig(
                            a, 128, 64.0, 64, sync_run, sync_latency,
                            seed);
                        config.workload.numThreads = threads;
                        return config;
                    };
                table.addRow(
                    {Table::num(sync_run, 0),
                     Table::num(sync_latency, 0), mt::archName(arch),
                     Table::num(exp::replicate(cache_only, arch, seeds)
                                    .meanEfficiency),
                     Table::num(exp::replicate(sync_only, arch, seeds)
                                    .meanEfficiency),
                     Table::num(exp::replicate(combined, arch, seeds)
                                    .meanEfficiency)});
            }
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Expected shape: the combined column sits below both "
                "single-fault columns\n(higher overall fault rate), "
                "with the same flexible-vs-fixed ordering.\n");
    return 0;
}
