/**
 * @file
 * Section 5.2: cache interference and adaptively limiting the number
 * of resident contexts. Destructive interference shortens the
 * effective run length as residency grows
 * (R_eff = R / (1 + alpha (N - 1))), so beyond some point an extra
 * context costs more in cache misses than it recovers in latency
 * tolerance. The adaptive controller measures efficiency at each
 * residency cap and keeps the best — the working-set style runtime
 * control the paper proposes to investigate.
 */

#include <vector>

#include "base/table.hh"
#include "exp/registry.hh"
#include "ext/adaptive.hh"
#include "multithread/simulation_spec.hh"
#include "multithread/workload.hh"

RR_BENCH_FIGURE(adaptive_contexts,
                "Adaptive residency limiting under cache "
                "interference (Section 5.2)")
{
    using namespace rr;

    const unsigned threads = ctx.run().threads;
    const std::vector<double> alphas =
        ctx.run().fast ? std::vector<double>{0.4}
                       : std::vector<double>{0.0, 0.1, 0.3, 0.6};

    ctx.text("(F = 256, register relocation, homogeneous C = 8, "
             "R = 64, L = 100,\n R_eff = R / (1 + alpha (N - "
             "1)))");

    Table table({"alpha", "best cap", "best eff", "uncapped eff",
                 "gain"});
    for (const double alpha : alphas) {
        mt::MtConfig base = mt::SimulationSpec()
                                .cacheFaults(64.0, 100)
                                .numRegs(256)
                                .build();
        base.workload =
            mt::homogeneousWorkload(threads, 20000, 8);
        const ext::AdaptiveResult result =
            ext::adaptiveSearch(base, 64.0, 100, alpha, 12);
        table.addRow(
            {Table::num(alpha, 2),
             Table::num(static_cast<uint64_t>(result.best.cap)),
             Table::num(result.best.efficiency),
             Table::num(result.uncapped.efficiency),
             Table::num(result.best.efficiency /
                            result.uncapped.efficiency,
                        2)});
    }
    ctx.table("caps", "", std::move(table));

    mt::MtConfig base = mt::SimulationSpec()
                            .cacheFaults(64.0, 100)
                            .numRegs(256)
                            .build();
    base.workload = mt::homogeneousWorkload(threads, 20000, 8);
    const ext::AdaptiveResult sweep =
        ext::adaptiveSearch(base, 64.0, 100, 0.3, 12);
    Table caps({"cap", "R_eff", "efficiency"});
    for (const auto &sample : sweep.samples) {
        caps.addRow({Table::num(static_cast<uint64_t>(sample.cap)),
                     Table::num(sample.effectiveRunLength, 1),
                     Table::num(sample.efficiency)});
    }
    ctx.table("cap_sweep", "Efficiency vs cap at alpha = 0.3",
              std::move(caps));
    ctx.text("Expected shape: with alpha = 0, the best cap is the "
             "largest (no\ninterference penalty); as alpha grows "
             "the optimum moves to an interior\ncap and the "
             "adaptive limit beats the uncapped run.");
}
