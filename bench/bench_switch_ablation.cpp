/**
 * @file
 * Design-choice ablations for the parameters DESIGN.md calls out:
 *
 *  1. Context switch cost S: the paper's software switch costs 4-6
 *     cycles (Figure 3) vs the 11-cycle APRIL implementation it
 *     cites; E_sat = R/(R+S) makes short run lengths hypersensitive
 *     to S.
 *  2. Thread supply: the paper says only "a supply of synthetic
 *     threads"; this sweep shows the figure shapes are insensitive
 *     to the choice (our default is 64).
 *  3. Minimum context size: the paper suggests a minimum of 4
 *     registers; smaller minima only matter for tiny threads.
 */

#include <cstdio>
#include <vector>

#include "base/table.hh"
#include "exp/env.hh"
#include "exp/sweep.hh"
#include "multithread/workload.hh"

int
main()
{
    using namespace rr;

    const unsigned seeds = exp::benchSeeds();

    // ---- 1. Switch cost sweep. -------------------------------------
    std::printf("Ablation 1 — context switch cost (cache faults, "
                "F = 128, L = 200,\nflexible contexts, C ~ U[6,24])\n\n");
    Table s_table({"R", "S=2", "S=6 (paper)", "S=11 (APRIL)", "S=30",
                   "E_sat @ S=6"});
    for (const double run_length : {8.0, 32.0, 128.0}) {
        std::vector<std::string> row = {Table::num(run_length, 0)};
        for (const uint64_t s : {2ull, 6ull, 11ull, 30ull}) {
            const exp::ConfigMaker maker = [&](mt::ArchKind arch,
                                               uint64_t seed) {
                mt::MtConfig config = mt::fig5Config(
                    arch, 128, run_length, 200, seed);
                config.costs.contextSwitch = s;
                return config;
            };
            row.push_back(Table::num(
                exp::replicate(maker, mt::ArchKind::Flexible, seeds)
                    .meanEfficiency));
        }
        row.push_back(Table::num(run_length / (run_length + 6.0)));
        s_table.addRow(row);
    }
    std::printf("%s\n", s_table.render().c_str());
    std::printf("In the latency-bound linear regime S barely "
                "matters, but once the node\napproaches saturation "
                "(R = 32 here) a 30-cycle switch forfeits a quarter\n"
                "of the throughput (E_sat = R/(R+S)) — the case for "
                "the paper's 4-6 cycle\nsoftware switch over heavier "
                "mechanisms.\n\n");

    // ---- 2. Thread-supply sweep. -----------------------------------
    std::printf("Ablation 2 — thread supply (sync faults, F = 128, "
                "R = 32, L = 512)\n\n");
    Table t_table({"threads", "fixed", "flexible", "flex/fixed"});
    for (const unsigned threads : {8u, 16u, 32u, 64u, 128u}) {
        const exp::ConfigMaker maker = [&](mt::ArchKind arch,
                                           uint64_t seed) {
            mt::MtConfig config =
                mt::fig6Config(arch, 128, 32.0, 512.0, seed);
            config.workload.numThreads = threads;
            return config;
        };
        const double fixed =
            exp::replicate(maker, mt::ArchKind::FixedHw, seeds)
                .meanEfficiency;
        const double flex =
            exp::replicate(maker, mt::ArchKind::Flexible, seeds)
                .meanEfficiency;
        t_table.addRow({Table::num(static_cast<uint64_t>(threads)),
                        Table::num(fixed), Table::num(flex),
                        Table::num(flex / fixed, 2)});
    }
    std::printf("%s\n", t_table.render().c_str());
    std::printf("The flexible advantage is stable once the supply "
                "exceeds the register\nfile's capacity — the paper's "
                "unspecified 'supply of synthetic threads'\nis not a "
                "sensitive parameter.\n\n");

    // ---- 3. Minimum context size. ----------------------------------
    std::printf("Ablation 3 — minimum context size (cache faults, "
                "F = 64, R = 16,\nL = 400, homogeneous C = 3)\n\n");
    Table m_table({"min context", "efficiency", "resident avg"});
    for (const unsigned min_size : {4u, 8u, 16u}) {
        const exp::ConfigMaker maker = [&](mt::ArchKind arch,
                                           uint64_t seed) {
            mt::MtConfig config =
                mt::fig5Config(arch, 64, 16.0, 400, seed);
            config.workload = mt::homogeneousWorkload(64, 20000, 3);
            config.minContextSize = min_size;
            return config;
        };
        const auto rep =
            exp::replicate(maker, mt::ArchKind::Flexible, seeds);
        m_table.addRow({Table::num(static_cast<uint64_t>(min_size)),
                        Table::num(rep.meanEfficiency),
                        Table::num(rep.meanResident, 1)});
    }
    std::printf("%s\n", m_table.render().c_str());
    std::printf("Tiny threads benefit from the paper's 4-register "
                "minimum: a 16-register\nminimum quarters the "
                "residency of 3-register threads.\n");
    return 0;
}
