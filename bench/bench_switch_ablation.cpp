/**
 * @file
 * Design-choice ablations for the parameters DESIGN.md calls out:
 *
 *  1. Context switch cost S: the paper's software switch costs 4-6
 *     cycles (Figure 3) vs the 11-cycle APRIL implementation it
 *     cites; E_sat = R/(R+S) makes short run lengths hypersensitive
 *     to S.
 *  2. Thread supply: the paper says only "a supply of synthetic
 *     threads"; this sweep shows the figure shapes are insensitive
 *     to the choice (our default is 64).
 *  3. Minimum context size: the paper suggests a minimum of 4
 *     registers; smaller minima only matter for tiny threads.
 */

#include <vector>

#include "base/table.hh"
#include "exp/registry.hh"
#include "exp/sweep.hh"
#include "multithread/simulation_spec.hh"
#include "multithread/workload.hh"

RR_BENCH_FIGURE(switch_ablation,
                "Design-choice ablations: switch cost, thread "
                "supply, minimum context size")
{
    using namespace rr;

    const unsigned seeds = ctx.run().seeds;

    // ---- 1. Switch cost sweep. -------------------------------------
    ctx.text("Ablation 1 — context switch cost (cache faults, "
             "F = 128, L = 200,\nflexible contexts, C ~ U[6,24])");
    const std::vector<double> run_lengths = {8.0, 32.0, 128.0};
    const std::vector<uint64_t> switch_costs = {2, 6, 11, 30};
    std::vector<exp::ReplicateRequest> s_requests;
    for (const double run_length : run_lengths) {
        for (const uint64_t s : switch_costs) {
            const exp::ConfigMaker maker =
                [run_length, s](mt::ArchKind arch, uint64_t seed) {
                    mt::MtConfig config =
                        mt::SimulationSpec()
                            .cacheFaults(run_length, 200)
                            .arch(arch)
                            .numRegs(128)
                            .seed(seed)
                            .build();
                    config.costs.contextSwitch = s;
                    return config;
                };
            s_requests.push_back({maker, mt::ArchKind::Flexible});
        }
    }
    const std::vector<exp::Replicated> s_results =
        exp::replicateMany(s_requests, seeds);
    Table s_table({"R", "S=2", "S=6 (paper)", "S=11 (APRIL)", "S=30",
                   "E_sat @ S=6"});
    std::size_t slot = 0;
    for (const double run_length : run_lengths) {
        std::vector<std::string> row = {Table::num(run_length, 0)};
        for (std::size_t j = 0; j < switch_costs.size(); ++j)
            row.push_back(
                Table::num(s_results[slot++].meanEfficiency));
        row.push_back(Table::num(run_length / (run_length + 6.0)));
        s_table.addRow(row);
    }
    ctx.table("switch_cost", "", std::move(s_table));
    ctx.text("In the latency-bound linear regime S barely "
             "matters, but once the node\napproaches saturation "
             "(R = 32 here) a 30-cycle switch forfeits a quarter\n"
             "of the throughput (E_sat = R/(R+S)) — the case for "
             "the paper's 4-6 cycle\nsoftware switch over heavier "
             "mechanisms.");

    // ---- 2. Thread-supply sweep. -----------------------------------
    ctx.text("Ablation 2 — thread supply (sync faults, F = 128, "
             "R = 32, L = 512)");
    const std::vector<unsigned> supplies = {8, 16, 32, 64, 128};
    std::vector<exp::ReplicateRequest> t_requests;
    for (const unsigned threads : supplies) {
        const exp::ConfigMaker maker =
            [threads](mt::ArchKind arch, uint64_t seed) {
                mt::MtConfig config = mt::SimulationSpec()
                                          .syncFaults(32.0, 512.0)
                                          .arch(arch)
                                          .numRegs(128)
                                          .threads(threads)
                                          .seed(seed)
                                          .build();
                return config;
            };
        t_requests.push_back({maker, mt::ArchKind::FixedHw});
        t_requests.push_back({maker, mt::ArchKind::Flexible});
    }
    const std::vector<exp::Replicated> t_results =
        exp::replicateMany(t_requests, seeds);
    Table t_table({"threads", "fixed", "flexible", "flex/fixed"});
    for (std::size_t i = 0; i < supplies.size(); ++i) {
        const double fixed = t_results[2 * i].meanEfficiency;
        const double flex = t_results[2 * i + 1].meanEfficiency;
        t_table.addRow(
            {Table::num(static_cast<uint64_t>(supplies[i])),
             Table::num(fixed), Table::num(flex),
             Table::num(flex / fixed, 2)});
    }
    ctx.table("thread_supply", "", std::move(t_table));
    ctx.text("The flexible advantage is stable once the supply "
             "exceeds the register\nfile's capacity — the paper's "
             "unspecified 'supply of synthetic threads'\nis not a "
             "sensitive parameter.");

    // ---- 3. Minimum context size. ----------------------------------
    ctx.text("Ablation 3 — minimum context size (cache faults, "
             "F = 64, R = 16,\nL = 400, homogeneous C = 3)");
    const std::vector<unsigned> minima = {4, 8, 16};
    std::vector<exp::ReplicateRequest> m_requests;
    for (const unsigned min_size : minima) {
        const exp::ConfigMaker maker =
            [min_size](mt::ArchKind arch, uint64_t seed) {
                mt::MtConfig config = mt::SimulationSpec()
                                          .cacheFaults(16.0, 400)
                                          .arch(arch)
                                          .numRegs(64)
                                          .seed(seed)
                                          .build();
                config.workload = mt::homogeneousWorkload(64, 20000,
                                                          3);
                config.minContextSize = min_size;
                return config;
            };
        m_requests.push_back({maker, mt::ArchKind::Flexible});
    }
    const std::vector<exp::Replicated> m_results =
        exp::replicateMany(m_requests, seeds);
    Table m_table({"min context", "efficiency", "resident avg"});
    for (std::size_t i = 0; i < minima.size(); ++i) {
        m_table.addRow(
            {Table::num(static_cast<uint64_t>(minima[i])),
             Table::num(m_results[i].meanEfficiency),
             Table::num(m_results[i].meanResident, 1)});
    }
    ctx.table("min_context", "", std::move(m_table));
    ctx.text("Tiny threads benefit from the paper's 4-register "
             "minimum: a 16-register\nminimum quarters the "
             "residency of 3-register threads.");
}
