/**
 * @file
 * Section 5.1: the software-only approach — compile-time register
 * relocation via multiple code versions over disjoint register
 * subsets. No relocation hardware, no LDRRM; the costs are code
 * expansion (modelled as a run-length degradation per doubling of
 * versions) and the static, inflexible partition.
 *
 * The paper's gcc/MIPS experiment found the technique impractical
 * beyond two contexts on a 32-register file; we sweep K = 1, 2, 4 on
 * 32- and 64-register files.
 */

#include <vector>

#include "base/table.hh"
#include "exp/registry.hh"
#include "ext/software_only.hh"

RR_BENCH_FIGURE(software_only,
                "Software-only register relocation (Section 5.1)")
{
    using namespace rr;

    const unsigned threads = ctx.run().threads;
    const std::vector<uint64_t> latencies =
        ctx.run().fast ? std::vector<uint64_t>{400}
                       : std::vector<uint64_t>{100, 400, 1600};

    ctx.text("(cache faults, R = 64 before code expansion, C = 7 "
             "per thread,\n 5% run-length penalty per doubling of "
             "code versions)");

    for (const unsigned num_regs : {32u, 64u}) {
        Table table({"F", "L", "K=1", "K=2", "K=4"});
        for (const uint64_t latency : latencies) {
            std::vector<std::string> row = {
                Table::num(static_cast<uint64_t>(num_regs)),
                Table::num(latency)};
            for (const unsigned versions : {1u, 2u, 4u}) {
                if (num_regs / versions < 7) {
                    row.push_back("n/a");
                    continue;
                }
                const ext::SoftwareOnlyResult result =
                    ext::simulateSoftwareOnly(num_regs, versions, 64.0,
                                              latency, threads, 20000,
                                              7);
                row.push_back(
                    Table::num(result.stats.efficiencyCentral));
            }
            table.addRow(row);
        }
        ctx.table(exp::strf("f%u", num_regs),
                  exp::strf("F = %u", num_regs), std::move(table));
    }
    ctx.text("Expected shape: more versions tolerate more latency "
             "(K = 2 or 4 beats\nK = 1 whenever latency dominates "
             "the expansion penalty); on a small file\nthe gains "
             "per extra version shrink — consistent with the "
             "paper's finding\nthat the technique was impractical "
             "beyond two contexts on the MIPS.");
}
