/**
 * @file
 * Cross-validation of the three levels of modelling:
 *
 *   1. the cycle-level machine running the paper's actual code
 *      (Figure 3 switches, APRIL-style polling) — MachineMtKernel;
 *   2. the event-driven simulator used for the figure sweeps —
 *      mt::MtProcessor with matched costs;
 *   3. the Section 3.4 closed-form model.
 *
 * If the reproduction is internally consistent, all three agree in
 * the deterministic setting; this bench prints them side by side.
 */

#include "analysis/efficiency_model.hh"
#include "base/table.hh"
#include "exp/registry.hh"
#include "kernel/machine_mt_kernel.hh"
#include "multithread/workload.hh"

RR_BENCH_FIGURE(machine_vs_event,
                "Machine execution vs event simulator vs analytical "
                "model")
{
    using namespace rr;

    ctx.text("(deterministic segments of U work units (2 cycles "
             "each), constant latency,\n never unload, 128 "
             "registers, 16-register contexts; effective switch "
             "cost 11)");

    Table table({"N", "U", "L", "machine", "event sim", "model",
                 "mach/sim"});
    for (const unsigned n : {1u, 2u, 4u, 6u}) {
        for (const uint64_t units : {25ull, 50ull}) {
            for (const uint64_t latency : {200ull, 800ull}) {
                kernel::KernelConfig kconfig;
                kconfig.numThreads = n;
                kconfig.segmentUnits = makeConstant(units);
                kconfig.latency = makeConstant(latency);
                kconfig.segmentsPerThread = 32;
                const kernel::KernelResult machine =
                    kernel::runMachineKernel(kconfig);

                mt::MtConfig sim;
                sim.workload = mt::homogeneousWorkload(
                    n, 2 * units * 32, 12);
                sim.faultModel =
                    std::make_shared<mt::DeterministicFaultModel>(
                        2 * units, latency);
                sim.costs = runtime::CostModel::paperFixed(11);
                sim.costs.queueOp = 0;
                sim.costs.blockOverhead = 0;
                sim.numRegs = 128;
                sim.unloadPolicy = mt::UnloadPolicyKind::Never;
                const double event_eff =
                    mt::simulate(std::move(sim)).efficiencyCentral;

                const analysis::EfficiencyModel model(
                    2.0 * static_cast<double>(units),
                    static_cast<double>(latency), 11.0);

                table.addRow(
                    {Table::num(static_cast<uint64_t>(n)),
                     Table::num(units), Table::num(latency),
                     Table::num(machine.efficiencyCentral),
                     Table::num(event_eff),
                     Table::num(model.efficiency(n)),
                     Table::num(machine.efficiencyCentral /
                                    event_eff,
                                2)});
            }
        }
    }
    ctx.table("crosscheck", "", std::move(table));
    ctx.text("Expected shape: the three columns agree to within a "
             "few percent in the\nlinear regime and at saturation "
             "— the event-driven simulator's cost\naccounting is "
             "validated against real instruction-by-instruction "
             "execution.");
}
