/**
 * @file
 * Reproduces Figure 4's cost tables by *measuring* the runtime
 * routines on the cycle-level RRISC machine instead of assuming
 * them:
 *
 *  - the Appendix A allocation/deallocation routines (general-purpose
 *    binary/linear search and the FF1-accelerated variant);
 *  - the Figure 3 context switch;
 *  - the Section 2.5 exact-count context load/unload.
 *
 * Output: measured cycles next to the paper's assumed values.
 */

#include <string>

#include "assembler/assembler.hh"
#include "base/table.hh"
#include "exp/registry.hh"
#include "machine/cpu.hh"
#include "runtime/asm_routines.hh"
#include "runtime/context_allocator.hh"
#include "runtime/context_loader.hh"

namespace {

using namespace rr;
using assembler::Program;
using machine::Cpu;

machine::CpuConfig
machineConfig()
{
    machine::CpuConfig config;
    config.numRegs = 128;
    config.operandWidth = 6;
    config.ldrrmDelaySlots = 1;
    config.memWords = 1u << 14;
    return config;
}

struct AllocatorHarness
{
    static constexpr uint64_t allocMapAddr = 0x1000;
    static constexpr uint64_t threadAddr = 0x1010;

    Cpu cpu{machineConfig()};
    Program prog;

    AllocatorHarness()
    {
        const std::string source =
            "entry16:  jal r15, ctx_alloc16\n"
            "          halt\n"
            "entry64:  jal r15, ctx_alloc64\n"
            "          halt\n"
            "entryff1: jal r15, ctx_alloc16_ff1\n"
            "          halt\n"
            "entrydel: jal r15, ctx_dealloc\n"
            "          halt\n" +
            runtime::appendixAAllocatorSource();
        prog = assembler::assemble(source);
        cpu.mem().loadImage(prog.base, prog.words);
        cpu.regs().write(6, 0);
        cpu.regs().write(8, 0x11111111u);
        cpu.regs().write(9, 0x0000ffffu);
        cpu.regs().write(13, 0x0000000fu);
        cpu.regs().write(10, allocMapAddr);
        cpu.regs().write(11, threadAddr);
    }

    /** Run one routine; returns cycles including call + return. */
    uint64_t
    call(const std::string &entry, uint32_t alloc_map)
    {
        cpu.mem().write(allocMapAddr, alloc_map);
        cpu.resume();
        cpu.setPc(prog.addressOf(entry));
        const uint64_t before = cpu.cycles();
        cpu.run(1000);
        return cpu.cycles() - before - 1; // exclude the halt
    }
};

/** Measure the Figure 3 switch in the round-robin demo. */
double
measureSwitchCost()
{
    Cpu cpu(machineConfig());
    const Program prog =
        assembler::assemble(runtime::roundRobinDemoSource());
    cpu.mem().loadImage(prog.base, prog.words);

    runtime::ContextAllocator allocator(128, 6, 16);
    runtime::MachineScheduler scheduler(cpu, allocator);
    for (int i = 0; i < 2; ++i) {
        runtime::MachineScheduler::ThreadSpec spec;
        spec.entryPc = prog.addressOf("thread_body");
        spec.usedRegs = 10;
        const auto context = scheduler.createThread(spec);
        runtime::pokeContextReg(cpu, context->rrm, 4, 0); // wraps
        runtime::pokeContextReg(cpu, context->rrm, 6, 1);
        runtime::pokeContextReg(cpu, context->rrm, 7, 0);
        runtime::pokeContextReg(cpu, context->rrm, 9, 0x2000);
    }
    cpu.mem().write(0x2000, 1000);
    scheduler.start();

    uint64_t body_visits = 0;
    const uint32_t body = prog.addressOf("thread_body");
    cpu.setTraceHook([&](const machine::TraceEntry &entry) {
        if (entry.pc == body)
            ++body_visits;
    });
    cpu.run(8000);
    // Per loop pass: 3 body instructions + the full switch path.
    return static_cast<double>(cpu.cycles()) /
               static_cast<double>(body_visits) -
           3.0;
}

/** Measure unload_k on the Section 2.5 multi-entry-point routine. */
uint64_t
measureUnload(unsigned k)
{
    Cpu cpu(machineConfig());
    const Program prog = assembler::assemble(
        "ret: halt\n" + runtime::saveRestoreSource(30));
    cpu.mem().loadImage(prog.base, prog.words);
    cpu.regs().write(30, 0x3000);
    cpu.regs().write(31, prog.addressOf("ret"));
    cpu.setPc(prog.addressOf("unload_" + std::to_string(k)));
    const uint64_t before = cpu.cycles();
    cpu.run(100);
    return cpu.cycles() - before - 2; // exclude return jmp + halt
}

} // namespace

RR_BENCH_FIGURE(fig4_costs,
                "Figure 4 — operation costs, measured on the "
                "cycle-level RRISC machine")
{
    ctx.text("(measured cycles include the call and return "
             "instructions)");

    AllocatorHarness harness;
    Table table({"operation", "paper (cycles)", "measured (cycles)"});

    table.addRow({"context allocate, succeed (binary search)", "25",
                  Table::num(harness.call("entry16", 0xffffffffu))});
    table.addRow({"context allocate, succeed (high block)", "25",
                  Table::num(harness.call("entry16", 0xf0000000u))});
    table.addRow({"context allocate, fail (fragmented map)", "15",
                  Table::num(harness.call("entry16", 0x55555555u))});
    table.addRow({"context allocate 64, succeed (linear)", "25",
                  Table::num(harness.call("entry64", 0xffffffffu))});
    table.addRow({"context allocate 64, fail", "15",
                  Table::num(harness.call("entry64", 0x0000fff0u))});
    table.addRow({"context allocate with FF1 (footnote 2)", "~15",
                  Table::num(harness.call("entryff1", 0xffffffffu))});

    // Prepare a deallocatable context, then measure dealloc.
    harness.call("entry16", 0xffffffffu);
    const uint32_t map_after = harness.cpu.mem().read(
        AllocatorHarness::allocMapAddr);
    table.addRow({"context deallocate", "5",
                  Table::num(harness.call("entrydel", map_after))});

    const double switch_cost = measureSwitchCost();
    table.addRow({"context switch (Figure 3)", "4-6 (S=6)",
                  Table::num(switch_cost, 1)});

    for (const unsigned c : {6u, 16u, 24u}) {
        table.addRow({"context unload, C = " + std::to_string(c),
                      std::to_string(c) + " (1/reg)",
                      Table::num(measureUnload(c))});
    }

    ctx.table("costs", "", std::move(table));
    ctx.text("Thread queue insert/remove (10) and the 10-cycle\n"
             "block/unblock overhead are software bookkeeping "
             "charges taken\nas given in both simulated "
             "architectures (Section 3.1).");
}
