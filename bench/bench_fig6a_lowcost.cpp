/**
 * @file
 * The Section 3.3 ablation: "Re-executing the experiments in Figure
 * 6(a) with lower allocation costs confirmed this explanation; in
 * this case register relocation consistently outperformed the
 * fixed-size contexts."
 *
 * We re-run the F = 64 synchronization panel three ways: the fixed
 * baseline, register relocation with the general-purpose allocator
 * (25/15/5 cycles), and register relocation with the specialized
 * low-cost allocation policy the paper sketches (a four-bit bitmap
 * indexed into a direct lookup table).
 */

#include <vector>

#include "base/table.hh"
#include "exp/registry.hh"
#include "exp/sweep.hh"
#include "multithread/simulation_spec.hh"

RR_BENCH_FIGURE(fig6a_lowcost,
                "Figure 6(a) ablation — F = 64, synchronization "
                "faults, lower allocation costs")
{
    using namespace rr;

    const unsigned seeds = ctx.run().seeds;
    const unsigned threads = ctx.run().threads;
    const std::vector<double> latencies =
        ctx.run().fast
            ? std::vector<double>{256.0, 1024.0, 4096.0}
            : std::vector<double>{64.0, 128.0, 256.0, 512.0,
                                  1024.0, 2048.0, 4096.0};

    ctx.text("(general allocator: 25/15/5 cycles; specialized "
             "lookup-table allocator: 4/2/1)");

    for (const double run_length : {32.0, 128.0}) {
        // Three architecture measurements per latency, fanned out to
        // the worker pool as one batch per table.
        std::vector<exp::ReplicateRequest> requests;
        for (const double latency : latencies) {
            const exp::ConfigMaker general =
                [run_length, latency,
                 threads](mt::ArchKind arch, uint64_t seed) {
                    return mt::SimulationSpec()
                        .syncFaults(run_length, latency)
                        .arch(arch)
                        .numRegs(64)
                        .threads(threads)
                        .seed(seed)
                        .build();
                };
            const exp::ConfigMaker lowcost =
                [run_length, latency,
                 threads](mt::ArchKind arch, uint64_t seed) {
                    mt::SimulationSpec spec;
                    spec.syncFaults(run_length, latency)
                        .arch(arch)
                        .numRegs(64)
                        .threads(threads)
                        .seed(seed);
                    if (arch == mt::ArchKind::Flexible)
                        spec.costs(
                            runtime::CostModel::lowCostFlexible(8));
                    return spec.build();
                };
            requests.push_back({general, mt::ArchKind::FixedHw});
            requests.push_back({general, mt::ArchKind::Flexible});
            requests.push_back({lowcost, mt::ArchKind::Flexible});
        }
        const std::vector<exp::Replicated> results =
            exp::replicateMany(requests, seeds);

        Table table({"R", "L", "fixed", "flex (general)",
                     "flex (low-cost)", "low-cost/fixed"});
        for (std::size_t i = 0; i < latencies.size(); ++i) {
            const double fixed = results[3 * i].meanEfficiency;
            const double flex_general =
                results[3 * i + 1].meanEfficiency;
            const double flex_low = results[3 * i + 2].meanEfficiency;
            table.addRow({Table::num(run_length, 0),
                          Table::num(latencies[i], 0),
                          Table::num(fixed), Table::num(flex_general),
                          Table::num(flex_low),
                          Table::num(flex_low / fixed, 2)});
        }
        ctx.table(exp::strf("r%.0f", run_length),
                  exp::strf("R = %.0f", run_length),
                  std::move(table));
    }
    ctx.text("Expected shape: where 'flex (general)' dips below "
             "'fixed' at large L,\n'flex (low-cost)' recovers the "
             "advantage — the crossover is an allocation-\ncost "
             "artifact, not a limit of the mechanism "
             "(Section 3.3).");
}
