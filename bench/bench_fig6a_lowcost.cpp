/**
 * @file
 * The Section 3.3 ablation: "Re-executing the experiments in Figure
 * 6(a) with lower allocation costs confirmed this explanation; in
 * this case register relocation consistently outperformed the
 * fixed-size contexts."
 *
 * We re-run the F = 64 synchronization panel three ways: the fixed
 * baseline, register relocation with the general-purpose allocator
 * (25/15/5 cycles), and register relocation with the specialized
 * low-cost allocation policy the paper sketches (a four-bit bitmap
 * indexed into a direct lookup table).
 */

#include <cstdio>
#include <vector>

#include "base/table.hh"
#include "exp/env.hh"
#include "exp/sweep.hh"
#include "multithread/workload.hh"

namespace {

using namespace rr;

double
meanEff(const exp::ConfigMaker &maker, mt::ArchKind arch,
        unsigned seeds)
{
    return exp::replicate(maker, arch, seeds).meanEfficiency;
}

} // namespace

int
main()
{
    using namespace rr;

    const unsigned seeds = exp::benchSeeds();
    const unsigned threads = exp::benchThreads();
    const std::vector<double> latencies =
        exp::benchFast()
            ? std::vector<double>{256.0, 1024.0, 4096.0}
            : std::vector<double>{64.0, 128.0, 256.0, 512.0,
                                  1024.0, 2048.0, 4096.0};

    std::printf("Figure 6(a) ablation — F = 64, synchronization "
                "faults, lower allocation costs\n");
    std::printf("(general allocator: 25/15/5 cycles; specialized "
                "lookup-table allocator: 4/2/1)\n\n");

    for (const double run_length : {32.0, 128.0}) {
        Table table({"R", "L", "fixed", "flex (general)",
                     "flex (low-cost)", "low-cost/fixed"});
        for (const double latency : latencies) {
            const exp::ConfigMaker general =
                [&](mt::ArchKind arch, uint64_t seed) {
                    mt::MtConfig config = mt::fig6Config(
                        arch, 64, run_length, latency, seed);
                    config.workload.numThreads = threads;
                    return config;
                };
            const exp::ConfigMaker lowcost =
                [&](mt::ArchKind arch, uint64_t seed) {
                    mt::MtConfig config = mt::fig6Config(
                        arch, 64, run_length, latency, seed);
                    config.workload.numThreads = threads;
                    if (arch == mt::ArchKind::Flexible) {
                        config.costs =
                            runtime::CostModel::lowCostFlexible(8);
                    }
                    return config;
                };
            const double fixed =
                meanEff(general, mt::ArchKind::FixedHw, seeds);
            const double flex_general =
                meanEff(general, mt::ArchKind::Flexible, seeds);
            const double flex_low =
                meanEff(lowcost, mt::ArchKind::Flexible, seeds);
            table.addRow({Table::num(run_length, 0),
                          Table::num(latency, 0), Table::num(fixed),
                          Table::num(flex_general),
                          Table::num(flex_low),
                          Table::num(flex_low / fixed, 2)});
        }
        std::printf("%s\n", table.render().c_str());
    }
    std::printf("Expected shape: where 'flex (general)' dips below "
                "'fixed' at large L,\n'flex (low-cost)' recovers the "
                "advantage — the crossover is an allocation-\ncost "
                "artifact, not a limit of the mechanism "
                "(Section 3.3).\n");
    return 0;
}
