/**
 * @file
 * The compiler tradeoff of Section 2.4: "a compiler may normally
 * achieve some marginal benefit by allocating 17 (versus 16)
 * registers to a thread ... However, due to the power-of-two
 * constraint, a thread that uses 17 registers will require a context
 * of size 32. The 15 extra registers ... could instead be used to
 * support a higher degree of multithreading, and the corresponding
 * increase in processor utilization is likely to exceed the original
 * gain."
 *
 * We quantify it: threads compiled to 17 registers run with their
 * full run length R; threads squeezed to 16 registers pay a spill
 * penalty (shorter effective run length — extra memory traffic),
 * swept over a range of penalties. The paper's prediction: except
 * for implausibly large spill penalties, 16-register compilation
 * wins whenever the register file is the bottleneck.
 */

#include <cstdio>
#include <vector>

#include "base/table.hh"
#include "exp/env.hh"
#include "exp/sweep.hh"
#include "multithread/workload.hh"

int
main()
{
    using namespace rr;

    const unsigned seeds = exp::benchSeeds();

    std::printf("The 17-vs-16 register compiler tradeoff "
                "(Section 2.4)\n");
    std::printf("(cache faults, register relocation, R = 64, spill "
                "penalty = run-length\nreduction from demoting one "
                "value to memory)\n\n");

    for (const unsigned num_regs : {64u, 128u}) {
        Table table({"F", "L", "C=17 (ctx 32)", "C=16, 2% spills",
                     "C=16, 5% spills", "C=16, 10% spills"});
        for (const double latency : {100.0, 400.0, 1600.0}) {
            std::vector<std::string> row = {
                Table::num(static_cast<uint64_t>(num_regs)),
                Table::num(latency, 0)};
            // Wide compilation: 17 registers, full run length.
            {
                const exp::ConfigMaker maker =
                    [&](mt::ArchKind arch, uint64_t seed) {
                        mt::MtConfig config = mt::fig5Config(
                            arch, num_regs, 64.0,
                            static_cast<uint64_t>(latency), seed);
                        config.workload = mt::homogeneousWorkload(
                            64, 20000, 17);
                        return config;
                    };
                row.push_back(Table::num(
                    exp::replicate(maker, mt::ArchKind::Flexible,
                                   seeds)
                        .meanEfficiency));
            }
            // Tight compilation: 16 registers, spill-shortened runs.
            for (const double penalty : {0.02, 0.05, 0.10}) {
                const exp::ConfigMaker maker =
                    [&](mt::ArchKind arch, uint64_t seed) {
                        mt::MtConfig config = mt::fig5Config(
                            arch, num_regs, 64.0 * (1.0 - penalty),
                            static_cast<uint64_t>(latency), seed);
                        config.workload = mt::homogeneousWorkload(
                            64, 20000, 16);
                        return config;
                    };
                row.push_back(Table::num(
                    exp::replicate(maker, mt::ArchKind::Flexible,
                                   seeds)
                        .meanEfficiency));
            }
            table.addRow(row);
        }
        std::printf("%s\n", table.render().c_str());
    }
    std::printf("Expected shape: whenever latency keeps the node in "
                "the linear regime,\ndoubling the resident contexts "
                "(16-register contexts instead of 32)\noutweighs even "
                "a 10%% spill penalty — the paper's argument that "
                "compilers\nshould round register budgets DOWN to "
                "powers of two.\n");
    return 0;
}
