/**
 * @file
 * The compiler tradeoff of Section 2.4: "a compiler may normally
 * achieve some marginal benefit by allocating 17 (versus 16)
 * registers to a thread ... However, due to the power-of-two
 * constraint, a thread that uses 17 registers will require a context
 * of size 32. The 15 extra registers ... could instead be used to
 * support a higher degree of multithreading, and the corresponding
 * increase in processor utilization is likely to exceed the original
 * gain."
 *
 * We quantify it: threads compiled to 17 registers run with their
 * full run length R; threads squeezed to 16 registers pay a spill
 * penalty (shorter effective run length — extra memory traffic),
 * swept over a range of penalties. The paper's prediction: except
 * for implausibly large spill penalties, 16-register compilation
 * wins whenever the register file is the bottleneck.
 */

#include <vector>

#include "base/table.hh"
#include "exp/registry.hh"
#include "exp/sweep.hh"
#include "multithread/simulation_spec.hh"
#include "multithread/workload.hh"

RR_BENCH_FIGURE(compiler_tradeoff,
                "The 17-vs-16 register compiler tradeoff "
                "(Section 2.4)")
{
    using namespace rr;

    const unsigned seeds = ctx.run().seeds;
    const std::vector<double> latencies = {100.0, 400.0, 1600.0};
    const std::vector<double> penalties = {0.02, 0.05, 0.10};

    ctx.text("(cache faults, register relocation, R = 64, spill "
             "penalty = run-length\nreduction from demoting one "
             "value to memory)");

    for (const unsigned num_regs : {64u, 128u}) {
        std::vector<exp::ReplicateRequest> requests;
        for (const double latency : latencies) {
            // Wide compilation: 17 registers, full run length.
            const exp::ConfigMaker wide =
                [num_regs, latency](mt::ArchKind arch, uint64_t seed) {
                    mt::MtConfig config =
                        mt::SimulationSpec()
                            .cacheFaults(
                                64.0, static_cast<uint64_t>(latency))
                            .arch(arch)
                            .numRegs(num_regs)
                            .seed(seed)
                            .build();
                    config.workload = mt::homogeneousWorkload(
                        64, 20000, 17);
                    return config;
                };
            requests.push_back({wide, mt::ArchKind::Flexible});
            // Tight compilation: 16 registers, spill-shortened runs.
            for (const double penalty : penalties) {
                const exp::ConfigMaker tight =
                    [num_regs, latency,
                     penalty](mt::ArchKind arch, uint64_t seed) {
                        mt::MtConfig config =
                            mt::SimulationSpec()
                                .cacheFaults(
                                    64.0 * (1.0 - penalty),
                                    static_cast<uint64_t>(latency))
                                .arch(arch)
                                .numRegs(num_regs)
                                .seed(seed)
                                .build();
                        config.workload = mt::homogeneousWorkload(
                            64, 20000, 16);
                        return config;
                    };
                requests.push_back({tight, mt::ArchKind::Flexible});
            }
        }
        const std::vector<exp::Replicated> results =
            exp::replicateMany(requests, seeds);

        Table table({"F", "L", "C=17 (ctx 32)", "C=16, 2% spills",
                     "C=16, 5% spills", "C=16, 10% spills"});
        std::size_t slot = 0;
        for (const double latency : latencies) {
            std::vector<std::string> row = {
                Table::num(static_cast<uint64_t>(num_regs)),
                Table::num(latency, 0)};
            for (std::size_t j = 0; j < 1 + penalties.size(); ++j)
                row.push_back(
                    Table::num(results[slot++].meanEfficiency));
            table.addRow(row);
        }
        ctx.table(exp::strf("f%u", num_regs),
                  exp::strf("F = %u", num_regs), std::move(table));
    }
    ctx.text("Expected shape: whenever latency keeps the node in "
             "the linear regime,\ndoubling the resident contexts "
             "(16-register contexts instead of 32)\noutweighs even "
             "a 10% spill penalty — the paper's argument that "
             "compilers\nshould round register budgets DOWN to "
             "powers of two.");
}
