/**
 * @file
 * Interpreter-throughput microbenchmark (rrbench --perf): measures
 * Cpu::run() speed in Minstr/s across the full dispatch matrix —
 * predecode off, and predecode on with Switch / Threaded / Fused
 * dispatch (docs/PERF.md) — over the examples/asm corpus plus
 * synthetic hot loops (pure ALU, load/store, and LDRRM context
 * ping-pong, the last stressing the relocation-table rebuild on every
 * mask switch).
 *
 * Only deterministic counters (instret/cycles per repetition) go into
 * the compared table; wall-clock throughput is reported in notes,
 * which --compare ignores, so the committed baseline is stable across
 * machines. Each program additionally asserts that every mode retires
 * the identical instruction and cycle counts — the perf figure
 * doubles as a dispatch-matrix behaviour-neutrality check.
 *
 * Programs that leave memory untouched (verified once per program by
 * comparing post-run memory against the freshly loaded image) skip
 * the per-repetition memory clear + image reload: for the short
 * examples the 4 KiB reset would otherwise dominate the measurement
 * and the benchmark would time the harness, not the interpreter.
 */

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "assembler/assembler.hh"
#include "base/logging.hh"
#include "base/table.hh"
#include "exp/registry.hh"
#include "machine/cpu.hh"

namespace {

using namespace rr;

struct PerfProgram
{
    std::string name;
    assembler::Program program;
    bool example = false; ///< loaded from examples/asm, not embedded
};

// Tight ALU kernel: ten instructions per iteration, no memory.
constexpr const char *kAluLoop = R"(
entry:
    li   r1, 1500
    li   r2, 0
    li   r3, 0
    li   r4, 1
loop:
    add  r2, r2, r4
    xor  r3, r3, r2
    sll  r5, r2, r4
    srl  r6, r5, r4
    sub  r7, r6, r3
    and  r8, r7, r2
    or   r9, r8, r3
    addi r1, r1, -1
    bne  r1, r0, loop
    halt
)";

// Load/store kernel: every store invalidates a (data) cache line.
constexpr const char *kMemLoop = R"(
entry:
    li   r1, 1500
    li   r2, 256
    li   r3, 0
loop:
    st   r3, 0(r2)
    ld   r4, 0(r2)
    addi r3, r4, 1
    st   r3, 1(r2)
    ld   r5, 1(r2)
    addi r1, r1, -1
    bne  r1, r0, loop
    halt
)";

// Context ping-pong: a mask switch every four instructions — the
// adversarial case for cached relocation, which must rebuild its
// operand table at each LDRRM retirement.
constexpr const char *kSwitchLoop = R"(
.equ CTX_A, 0x20
.equ CTX_B, 0x40
entry:
    li    r10, CTX_A
    ldrrm r10
    nop
    li    r1, 1500
    li    r2, CTX_B
    li    r10, 0
    ldrrm r10
    nop
    li    r10, CTX_B
    ldrrm r10
    nop
    li    r1, 1500
    li    r2, CTX_A
loop:
    addi  r1, r1, -1
    ldrrm r2
    nop
    bne   r1, r0, loop
    halt
)";

void
addProgram(std::vector<PerfProgram> &corpus, const std::string &name,
           const std::string &source, bool example = false)
{
    assembler::Program program = assembler::assemble(source);
    rr_assert(program.errors.empty(), "perf program '", name,
              "' failed to assemble");
    corpus.push_back({name, std::move(program), example});
}

/** The .s files under examples/asm in name order, plus hot loops. */
std::vector<PerfProgram>
buildCorpus(exp::ReportBuilder &ctx)
{
    namespace fs = std::filesystem;
    std::vector<PerfProgram> corpus;

    std::vector<fs::path> files;
    std::error_code ec;
    for (const auto &it : fs::directory_iterator(
             RR_EXAMPLES_ASM_DIR, ec)) {
        if (it.path().extension() == ".s")
            files.push_back(it.path());
    }
    if (ec) {
        ctx.text(exp::strf("note: examples corpus unavailable (%s); "
                           "running synthetic programs only",
                           RR_EXAMPLES_ASM_DIR));
    }
    std::sort(files.begin(), files.end());
    for (const fs::path &path : files) {
        std::ifstream in(path);
        std::ostringstream source;
        source << in.rdbuf();
        addProgram(corpus, path.stem().string(), source.str(),
                   /*example=*/true);
    }

    addProgram(corpus, "alu_loop", kAluLoop);
    addProgram(corpus, "mem_loop", kMemLoop);
    addProgram(corpus, "switch_loop", kSwitchLoop);
    return corpus;
}

/** One leg of the dispatch matrix. */
struct ModeSpec
{
    const char *name;
    bool predecode;
    machine::DispatchMode dispatch;
};

constexpr ModeSpec kModes[] = {
    {"off", false, machine::DispatchMode::Switch},
    {"switch", true, machine::DispatchMode::Switch},
    {"threaded", true, machine::DispatchMode::Threaded},
    {"fused", true, machine::DispatchMode::Fused},
};
constexpr size_t kNumModes = std::size(kModes);
constexpr size_t kFusedIdx = kNumModes - 1;

struct Measurement
{
    uint64_t instret = 0; ///< total across repetitions
    uint64_t cycles = 0;
    double seconds = 0.0;
};

constexpr uint64_t kStepCap = 1u << 22;
constexpr uint64_t kMemWords = 1u << 10;

machine::CpuConfig
configFor(const ModeSpec &mode)
{
    machine::CpuConfig config;
    // Small image: keeps per-repetition state resets cheap, so short
    // programs measure the interpreter rather than the harness.
    config.memWords = kMemWords;
    config.predecode = mode.predecode;
    config.dispatch = mode.dispatch;
    return config;
}

/**
 * Does one run of @p program leave memory exactly as loaded? Such
 * programs (all the current examples: they live in registers) can be
 * re-run without the per-repetition clear + reload, which for a
 * 50-instruction program costs more than the instructions do.
 */
bool
memoryClean(const assembler::Program &program, uint32_t entry)
{
    machine::Cpu cpu(configFor(kModes[kFusedIdx]));
    cpu.mem().clear();
    cpu.mem().loadImage(program.base, program.words);
    cpu.setRrmImmediate(0);
    cpu.setPc(entry);
    cpu.run(kStepCap);
    if (!cpu.halted())
        return false;

    machine::Memory ref(kMemWords);
    ref.clear();
    ref.loadImage(program.base, program.words);
    return std::equal(ref.data(), ref.data() + ref.size(),
                      cpu.mem().data());
}

Measurement
runMode(const assembler::Program &program, const ModeSpec &mode,
        uint32_t entry, unsigned reps, bool clean)
{
    machine::Cpu cpu(configFor(mode));
    rr_assert(cpu.predecodeActive() == mode.predecode,
              "predecode activation mismatch in mode ", mode.name);
    rr_assert(cpu.dispatchActive() ==
                  (mode.predecode &&
                   mode.dispatch != machine::DispatchMode::Switch),
              "dispatch activation mismatch in mode ", mode.name);

    const auto start = std::chrono::steady_clock::now();
    for (unsigned rep = 0; rep < reps; ++rep) {
        if (rep == 0 || !clean) {
            cpu.mem().clear();
            cpu.mem().loadImage(program.base, program.words);
        }
        cpu.regs().clear();
        cpu.setRrmImmediate(0);
        cpu.setPc(entry);
        cpu.resume();
        cpu.run(kStepCap);
        rr_assert(cpu.halted(), "perf program did not halt (trap: ",
                  machine::trapName(cpu.trap()), ")");
    }
    const auto stop = std::chrono::steady_clock::now();

    Measurement m;
    m.instret = cpu.instructionsRetired();
    m.cycles = cpu.cycles();
    m.seconds = std::max(
        std::chrono::duration<double>(stop - start).count(), 1e-9);
    return m;
}

/**
 * Best of @p trials timed runs per mode, interleaving the modes so
 * slow drift (frequency scaling, co-tenants) hits every mode equally.
 * The counters are deterministic — identical on every trial — so
 * keeping the fastest wall clock discards scheduler noise, not data.
 */
std::vector<Measurement>
measureMatrix(const assembler::Program &program, uint32_t entry,
              unsigned reps, bool clean, unsigned trials)
{
    std::vector<Measurement> best(kNumModes);
    for (unsigned trial = 0; trial < trials; ++trial) {
        for (size_t m = 0; m < kNumModes; ++m) {
            const Measurement t =
                runMode(program, kModes[m], entry, reps, clean);
            if (trial == 0 || t.seconds < best[m].seconds)
                best[m] = t;
        }
    }
    return best;
}

uint32_t
entryOf(const assembler::Program &program)
{
    const auto entry_sym = program.symbols.find("entry");
    return entry_sym != program.symbols.end() ? entry_sym->second
                                              : program.base;
}

double
minstrPerSec(const Measurement &m)
{
    return static_cast<double>(m.instret) / m.seconds / 1e6;
}

} // namespace

RR_PERF_FIGURE(perf_interp,
               "Interpreter throughput across the dispatch matrix: "
               "predecode off / switch / threaded / fused (Minstr/s)")
{
    using namespace rr;

    ctx.text("Each program runs to HALT repeatedly in all four "
             "dispatch modes;\nrepetition counts are derived from "
             "deterministic instruction counts,\nnever from wall "
             "time. The table holds per-repetition counters\n"
             "(machine-independent); throughput and speedup are "
             "notes.");

    std::vector<PerfProgram> corpus = buildCorpus(ctx);

    // Size every program to a common instruction budget so small
    // examples are repeated enough to time meaningfully. The rep cap
    // bounds degenerate programs (a one-instruction entry) whose
    // measurement beyond ~20k runs only re-times the harness reset.
    const uint64_t target_instr =
        ctx.run().fast ? 150'000 : 2'000'000;
    const uint64_t rep_cap = 20'000;

    Table table({"program", "instr/rep", "cycles/rep", "reps"});
    struct Totals
    {
        double instr[kNumModes] = {};
        double secs[kNumModes] = {};
    };
    Totals all, examples;

    for (const PerfProgram &p : corpus) {
        const uint32_t entry = entryOf(p.program);
        const bool clean = memoryClean(p.program, entry);
        const Measurement probe =
            runMode(p.program, kModes[kFusedIdx], entry, 1, clean);
        const uint64_t per_rep = std::max<uint64_t>(1, probe.instret);
        const unsigned reps = static_cast<unsigned>(std::min(
            std::max<uint64_t>(target_instr / per_rep, 1), rep_cap));

        const std::vector<Measurement> legs = measureMatrix(
            p.program, entry, reps, clean, ctx.run().fast ? 4 : 5);

        // Dispatch must be invisible to the architecture: identical
        // retirement and cycle counts in every mode.
        for (size_t m = 1; m < kNumModes; ++m) {
            rr_assert(legs[m].instret == legs[0].instret &&
                          legs[m].cycles == legs[0].cycles,
                      "dispatch-mode divergence in perf program ",
                      p.name, " (", kModes[m].name, " vs off)");
        }

        const Measurement &fused = legs[kFusedIdx];
        table.addRow({p.name, Table::num(fused.instret / reps),
                      Table::num(fused.cycles / reps),
                      Table::num(static_cast<uint64_t>(reps))});

        ctx.text(exp::strf(
            "%s: off %.1f, switch %.1f, threaded %.1f, fused %.1f "
            "Minstr/s (fused %.2fx off)%s",
            p.name.c_str(), minstrPerSec(legs[0]),
            minstrPerSec(legs[1]), minstrPerSec(legs[2]),
            minstrPerSec(fused),
            minstrPerSec(fused) / minstrPerSec(legs[0]),
            clean ? "" : " [memory-dirty: full reset per rep]"));

        for (size_t m = 0; m < kNumModes; ++m) {
            all.instr[m] += static_cast<double>(legs[m].instret);
            all.secs[m] += legs[m].seconds;
            if (p.example) {
                examples.instr[m] +=
                    static_cast<double>(legs[m].instret);
                examples.secs[m] += legs[m].seconds;
            }
        }
    }
    ctx.table("corpus", "per-repetition architectural counters "
                        "(identical in every dispatch mode)",
              std::move(table));

    const auto aggregate = [&ctx](const char *label, const Totals &t) {
        if (t.secs[0] <= 0.0)
            return;
        double rate[kNumModes];
        for (size_t m = 0; m < kNumModes; ++m)
            rate[m] = t.instr[m] / std::max(t.secs[m], 1e-9) / 1e6;
        ctx.text(exp::strf("%s aggregate: off %.1f, switch %.1f, "
                           "threaded %.1f, fused %.1f Minstr/s "
                           "(fused %.2fx off)",
                           label, rate[0], rate[1], rate[2],
                           rate[3], rate[3] / rate[0]));
    };
    aggregate("examples corpus", examples);
    aggregate("full corpus", all);
}
