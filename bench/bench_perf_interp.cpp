/**
 * @file
 * Interpreter-throughput microbenchmark (rrbench --perf): measures
 * Cpu::step() speed in Minstr/s with the predecoded instruction cache
 * on vs off, over the examples/asm corpus plus synthetic hot loops
 * (pure ALU, load/store, and LDRRM context ping-pong — the last
 * stressing the relocation-table rebuild on every mask switch).
 *
 * Only deterministic counters (instret/cycles per repetition) go into
 * the compared table; wall-clock throughput is reported in notes,
 * which --compare ignores, so the committed baseline is stable across
 * machines. Each program additionally asserts that both cache modes
 * retire the identical instruction and cycle counts — the perf figure
 * doubles as a behaviour-neutrality check.
 */

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "assembler/assembler.hh"
#include "base/logging.hh"
#include "base/table.hh"
#include "exp/registry.hh"
#include "machine/cpu.hh"

namespace {

using namespace rr;

struct PerfProgram
{
    std::string name;
    assembler::Program program;
    bool example = false; ///< loaded from examples/asm, not embedded
};

// Tight ALU kernel: ten instructions per iteration, no memory.
constexpr const char *kAluLoop = R"(
entry:
    li   r1, 1500
    li   r2, 0
    li   r3, 0
    li   r4, 1
loop:
    add  r2, r2, r4
    xor  r3, r3, r2
    sll  r5, r2, r4
    srl  r6, r5, r4
    sub  r7, r6, r3
    and  r8, r7, r2
    or   r9, r8, r3
    addi r1, r1, -1
    bne  r1, r0, loop
    halt
)";

// Load/store kernel: every store invalidates a (data) cache line.
constexpr const char *kMemLoop = R"(
entry:
    li   r1, 1500
    li   r2, 256
    li   r3, 0
loop:
    st   r3, 0(r2)
    ld   r4, 0(r2)
    addi r3, r4, 1
    st   r3, 1(r2)
    ld   r5, 1(r2)
    addi r1, r1, -1
    bne  r1, r0, loop
    halt
)";

// Context ping-pong: a mask switch every four instructions — the
// adversarial case for cached relocation, which must rebuild its
// operand table at each LDRRM retirement.
constexpr const char *kSwitchLoop = R"(
.equ CTX_A, 0x20
.equ CTX_B, 0x40
entry:
    li    r10, CTX_A
    ldrrm r10
    nop
    li    r1, 1500
    li    r2, CTX_B
    li    r10, 0
    ldrrm r10
    nop
    li    r10, CTX_B
    ldrrm r10
    nop
    li    r1, 1500
    li    r2, CTX_A
loop:
    addi  r1, r1, -1
    ldrrm r2
    nop
    bne   r1, r0, loop
    halt
)";

void
addProgram(std::vector<PerfProgram> &corpus, const std::string &name,
           const std::string &source, bool example = false)
{
    assembler::Program program = assembler::assemble(source);
    rr_assert(program.errors.empty(), "perf program '", name,
              "' failed to assemble");
    corpus.push_back({name, std::move(program), example});
}

/** The .s files under examples/asm in name order, plus hot loops. */
std::vector<PerfProgram>
buildCorpus(exp::ReportBuilder &ctx)
{
    namespace fs = std::filesystem;
    std::vector<PerfProgram> corpus;

    std::vector<fs::path> files;
    std::error_code ec;
    for (const auto &it : fs::directory_iterator(
             RR_EXAMPLES_ASM_DIR, ec)) {
        if (it.path().extension() == ".s")
            files.push_back(it.path());
    }
    if (ec) {
        ctx.text(exp::strf("note: examples corpus unavailable (%s); "
                           "running synthetic programs only",
                           RR_EXAMPLES_ASM_DIR));
    }
    std::sort(files.begin(), files.end());
    for (const fs::path &path : files) {
        std::ifstream in(path);
        std::ostringstream source;
        source << in.rdbuf();
        addProgram(corpus, path.stem().string(), source.str(),
                   /*example=*/true);
    }

    addProgram(corpus, "alu_loop", kAluLoop);
    addProgram(corpus, "mem_loop", kMemLoop);
    addProgram(corpus, "switch_loop", kSwitchLoop);
    return corpus;
}

struct Measurement
{
    uint64_t instret = 0; ///< total across repetitions
    uint64_t cycles = 0;
    double seconds = 0.0;
};

constexpr uint64_t kStepCap = 1u << 22;

Measurement
runMode(const assembler::Program &program, bool predecode,
        unsigned reps)
{
    machine::CpuConfig config;
    // Small image: keeps the per-repetition memory reset negligible
    // next to stepping, so short programs measure the interpreter.
    config.memWords = 1u << 10;
    config.predecode = predecode;
    machine::Cpu cpu(config);

    const auto entry_sym = program.symbols.find("entry");
    const uint32_t entry = entry_sym != program.symbols.end()
                               ? entry_sym->second
                               : program.base;

    const auto start = std::chrono::steady_clock::now();
    for (unsigned rep = 0; rep < reps; ++rep) {
        cpu.mem().clear();
        cpu.mem().loadImage(program.base, program.words);
        cpu.regs().clear();
        cpu.setRrmImmediate(0);
        cpu.setPc(entry);
        cpu.resume();
        cpu.run(kStepCap);
        rr_assert(cpu.halted(), "perf program did not halt (trap: ",
                  machine::trapName(cpu.trap()), ")");
    }
    const auto stop = std::chrono::steady_clock::now();

    Measurement m;
    m.instret = cpu.instructionsRetired();
    m.cycles = cpu.cycles();
    m.seconds = std::max(
        std::chrono::duration<double>(stop - start).count(), 1e-9);
    return m;
}

/**
 * Best of @p trials timed runs per mode, interleaving the modes so
 * slow drift (frequency scaling, co-tenants) hits both equally. The
 * counters are deterministic — identical on every trial — so keeping
 * the fastest wall clock discards scheduler noise, not data.
 */
std::pair<Measurement, Measurement>
measureBoth(const assembler::Program &program, unsigned reps,
            unsigned trials)
{
    Measurement off, on;
    for (unsigned trial = 0; trial < trials; ++trial) {
        const Measurement off_t = runMode(program, false, reps);
        const Measurement on_t = runMode(program, true, reps);
        if (trial == 0 || off_t.seconds < off.seconds)
            off = off_t;
        if (trial == 0 || on_t.seconds < on.seconds)
            on = on_t;
    }
    return {off, on};
}

double
minstrPerSec(const Measurement &m)
{
    return static_cast<double>(m.instret) / m.seconds / 1e6;
}

} // namespace

RR_PERF_FIGURE(perf_interp,
               "Interpreter throughput: predecoded instruction cache "
               "on vs off (Minstr/s)")
{
    using namespace rr;

    ctx.text("Each program runs to HALT repeatedly in both cache "
             "modes; repetition\ncounts are derived from "
             "deterministic instruction counts, never from\nwall "
             "time. The table holds per-repetition counters "
             "(machine-independent);\nthroughput and speedup are "
             "notes.");

    std::vector<PerfProgram> corpus = buildCorpus(ctx);

    // Size every program to a common instruction budget so small
    // examples are repeated enough to time meaningfully.
    const uint64_t target_instr =
        ctx.run().fast ? 150'000 : 2'000'000;

    Table table({"program", "instr/rep", "cycles/rep", "reps"});
    struct Totals
    {
        double instr_on = 0.0, secs_on = 0.0;
        double instr_off = 0.0, secs_off = 0.0;
    };
    Totals all, examples;

    for (const PerfProgram &p : corpus) {
        const Measurement probe = runMode(p.program, true, 1);
        const uint64_t per_rep = std::max<uint64_t>(1, probe.instret);
        const unsigned reps = static_cast<unsigned>(std::min<uint64_t>(
            std::max<uint64_t>(target_instr / per_rep, 1), 100'000));

        const auto [off, on] =
            measureBoth(p.program, reps, ctx.run().fast ? 4 : 5);

        // The predecode cache must be invisible to the architecture:
        // identical retirement and cycle counts in both modes.
        rr_assert(on.instret == off.instret &&
                      on.cycles == off.cycles,
                  "cache-on/off divergence in perf program ", p.name);

        table.addRow({p.name, Table::num(on.instret / reps),
                      Table::num(on.cycles / reps),
                      Table::num(static_cast<uint64_t>(reps))});

        ctx.text(exp::strf("%s: off %.1f Minstr/s, on %.1f Minstr/s, "
                           "speedup %.2fx",
                           p.name.c_str(), minstrPerSec(off),
                           minstrPerSec(on),
                           minstrPerSec(on) / minstrPerSec(off)));

        all.instr_on += static_cast<double>(on.instret);
        all.secs_on += on.seconds;
        all.instr_off += static_cast<double>(off.instret);
        all.secs_off += off.seconds;
        if (p.example) {
            examples.instr_on += static_cast<double>(on.instret);
            examples.secs_on += on.seconds;
            examples.instr_off += static_cast<double>(off.instret);
            examples.secs_off += off.seconds;
        }
    }
    ctx.table("corpus", "per-repetition architectural counters "
                        "(identical in both cache modes)",
              std::move(table));

    const auto aggregate = [&ctx](const char *label, const Totals &t) {
        if (t.secs_on <= 0.0 || t.secs_off <= 0.0)
            return;
        const double on = t.instr_on / t.secs_on / 1e6;
        const double off = t.instr_off / t.secs_off / 1e6;
        ctx.text(exp::strf("%s aggregate: predecode off %.1f "
                           "Minstr/s, on %.1f Minstr/s, speedup "
                           "%.2fx",
                           label, off, on, on / off));
    };
    aggregate("examples corpus", examples);
    aggregate("full corpus", all);
}
