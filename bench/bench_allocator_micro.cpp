/**
 * @file
 * google-benchmark microbenchmarks of the runtime primitives (host
 * nanoseconds, not simulated cycles): the bitmap context allocator,
 * the interval allocator backing the ADD comparison, the NextRRM
 * scheduler ring, the relocation unit, the RNG/distributions, and a
 * whole multithreading simulation per iteration.
 */

#include <benchmark/benchmark.h>

#include <optional>
#include <vector>

#include "base/distributions.hh"
#include "base/rng.hh"
#include "machine/relocation_unit.hh"
#include "multithread/simulation_spec.hh"
#include "multithread/workload.hh"
#include "runtime/context_allocator.hh"
#include "runtime/context_ring.hh"
#include "runtime/interval_allocator.hh"

namespace {

using namespace rr;

void
BM_ContextAllocatorAllocRelease(benchmark::State &state)
{
    const unsigned num_regs = static_cast<unsigned>(state.range(0));
    runtime::ContextAllocator alloc(num_regs, 5);
    Rng rng(1);
    std::vector<runtime::Context> live;
    for (auto _ : state) {
        if (live.size() < num_regs / 16 &&
            (live.empty() || (rng.next() & 1))) {
            const auto context = alloc.allocate(
                static_cast<unsigned>(rng.nextRange(4, 24)));
            if (context)
                live.push_back(*context);
        } else if (!live.empty()) {
            alloc.release(live.back());
            live.pop_back();
        }
        benchmark::DoNotOptimize(alloc.freeRegs());
    }
}
BENCHMARK(BM_ContextAllocatorAllocRelease)->Arg(64)->Arg(128)->Arg(256);

void
BM_IntervalAllocatorAllocRelease(benchmark::State &state)
{
    runtime::IntervalAllocator alloc(256);
    Rng rng(2);
    std::vector<runtime::Interval> live;
    for (auto _ : state) {
        if (live.size() < 12 && (live.empty() || (rng.next() & 1))) {
            const auto interval = alloc.allocate(
                static_cast<unsigned>(rng.nextRange(4, 24)));
            if (interval)
                live.push_back(*interval);
        } else if (!live.empty()) {
            alloc.release(live.back());
            live.pop_back();
        }
        benchmark::DoNotOptimize(alloc.freeRegs());
    }
}
BENCHMARK(BM_IntervalAllocatorAllocRelease);

void
BM_ContextRingRotate(benchmark::State &state)
{
    runtime::ContextRing ring;
    for (uint32_t i = 0; i < 16; ++i)
        ring.insert(i * 8);
    for (auto _ : state)
        benchmark::DoNotOptimize(ring.advance());
}
BENCHMARK(BM_ContextRingRotate);

void
BM_RelocationUnitOr(benchmark::State &state)
{
    machine::RelocationUnit unit(128, 5);
    unit.setMask(40);
    unsigned operand = 0;
    for (auto _ : state) {
        operand = (operand + 1) & 31;
        benchmark::DoNotOptimize(unit.relocate(operand).physical);
    }
}
BENCHMARK(BM_RelocationUnitOr);

void
BM_GeometricSample(benchmark::State &state)
{
    GeometricDist dist(static_cast<double>(state.range(0)));
    Rng rng(3);
    for (auto _ : state)
        benchmark::DoNotOptimize(dist.sample(rng));
}
BENCHMARK(BM_GeometricSample)->Arg(8)->Arg(512);

void
BM_MtSimulation(benchmark::State &state)
{
    const auto arch = state.range(0) == 0 ? mt::ArchKind::FixedHw
                                          : mt::ArchKind::Flexible;
    uint64_t seed = 1;
    for (auto _ : state) {
        mt::MtConfig config = mt::SimulationSpec()
                                  .cacheFaults(32.0, 200)
                                  .arch(arch)
                                  .numRegs(128)
                                  .threads(16)
                                  .workPerThread(4000)
                                  .seed(seed++)
                                  .build();
        benchmark::DoNotOptimize(
            mt::simulate(std::move(config)).efficiencyCentral);
    }
}
BENCHMARK(BM_MtSimulation)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMicrosecond);

} // namespace
