/**
 * @file
 * Reproduces Figure 5 (a), (b), (c): processor efficiency vs memory
 * latency under cache faults, for register files of 64, 128, and 256
 * registers; curves for run lengths R = 8, 32, 128; context sizes
 * C ~ U[6, 24]; S = 6; constant latency; contexts never unloaded.
 *
 * Paper shapes to look for: the flexible (register relocation)
 * column above the fixed column at nearly every point, with the gap
 * widening for shorter run lengths and larger files; efficiency
 * falling with L and rising with R.
 */

#include <vector>

#include "exp/registry.hh"
#include "exp/sweep.hh"
#include "multithread/simulation_spec.hh"

RR_BENCH_FIGURE(fig5_cache,
                "Figure 5 — cache faults: efficiency vs memory "
                "latency")
{
    using namespace rr;

    const unsigned seeds = ctx.run().seeds;
    const unsigned threads = ctx.run().threads;
    const std::vector<double> run_lengths = {8.0, 32.0, 128.0};
    const std::vector<double> latencies =
        ctx.run().fast
            ? std::vector<double>{32.0, 128.0, 512.0}
            : std::vector<double>{16.0, 32.0, 64.0, 128.0,
                                  256.0, 512.0, 1024.0};

    ctx.text("(C ~ U[6,24], S = 6, geometric run lengths, constant "
             "latency, never unload)");

    const char *panels[] = {"a", "b", "c"};
    const unsigned files[] = {64, 128, 256};
    for (int p = 0; p < 3; ++p) {
        const unsigned num_regs = files[p];
        const exp::PanelMaker maker =
            [num_regs, threads](mt::ArchKind arch, double r, double l,
                                uint64_t seed) {
                return mt::SimulationSpec()
                    .cacheFaults(r, static_cast<uint64_t>(l))
                    .arch(arch)
                    .numRegs(num_regs)
                    .threads(threads)
                    .seed(seed)
                    .build();
            };
        ctx.panel(std::string("panel_") + panels[p],
                  exp::strf("Figure 5(%s): F = %u registers",
                            panels[p], num_regs),
                  exp::sweepPanel(num_regs, maker, run_lengths,
                                  latencies, seeds));
    }
}
