/**
 * @file
 * Section 4's design comparison: OR-relocation (power-of-two,
 * size-aligned contexts; internal fragmentation) versus
 * Am29000-style ADD base-plus-offset addressing (exact-size
 * contexts; external fragmentation and more complex software). ADD
 * is charged higher allocation costs, reflecting the paper's note
 * that "the software for managing arbitrary-size contexts is likely
 * to be more complex" (first-fit interval search vs bit-parallel
 * scan).
 */

#include <cstdio>
#include <vector>

#include "base/table.hh"
#include "exp/env.hh"
#include "exp/sweep.hh"
#include "multithread/workload.hh"

int
main()
{
    using namespace rr;

    const unsigned seeds = exp::benchSeeds();
    const unsigned threads = exp::benchThreads();
    const std::vector<double> latencies =
        exp::benchFast()
            ? std::vector<double>{128.0, 512.0}
            : std::vector<double>{64.0, 128.0, 256.0, 512.0, 1024.0};

    std::printf("OR relocation vs ADD (Am29000) relocation "
                "(Section 4)\n");
    std::printf("(cache faults, C ~ U[6,24], S = 6; ADD allocation "
                "costs 40/25/10 vs OR 25/15/5)\n\n");

    for (const unsigned num_regs : {64u, 128u}) {
        Table table({"F", "R", "L", "fixed", "or-reloc", "add-reloc",
                     "resident or", "resident add"});
        for (const double run_length : {16.0, 64.0}) {
            for (const double latency : latencies) {
                const exp::ConfigMaker maker =
                    [&](mt::ArchKind arch, uint64_t seed) {
                        mt::MtConfig config = mt::fig5Config(
                            arch, num_regs, run_length,
                            static_cast<uint64_t>(latency), seed);
                        config.workload.numThreads = threads;
                        if (arch == mt::ArchKind::AddReloc) {
                            config.costs.allocSucceed = 40;
                            config.costs.allocFail = 25;
                            config.costs.dealloc = 10;
                        }
                        return config;
                    };
                const auto fixed =
                    exp::replicate(maker, mt::ArchKind::FixedHw,
                                   seeds);
                const auto or_reloc =
                    exp::replicate(maker, mt::ArchKind::Flexible,
                                   seeds);
                const auto add_reloc =
                    exp::replicate(maker, mt::ArchKind::AddReloc,
                                   seeds);
                table.addRow(
                    {Table::num(static_cast<uint64_t>(num_regs)),
                     Table::num(run_length, 0),
                     Table::num(latency, 0),
                     Table::num(fixed.meanEfficiency),
                     Table::num(or_reloc.meanEfficiency),
                     Table::num(add_reloc.meanEfficiency),
                     Table::num(or_reloc.meanResident, 1),
                     Table::num(add_reloc.meanResident, 1)});
            }
        }
        std::printf("%s\n", table.render().c_str());
    }
    std::printf("Expected shape: ADD packs more contexts (no "
                "power-of-two rounding:\nC ~ U[6,24] wastes ~43%% "
                "under OR), so it reaches higher residency and\n"
                "often higher efficiency despite costlier allocation "
                "— the paper's reason\nfor calling ADD 'more "
                "general', traded against an adder on the decode\n"
                "critical path, which our cycle-level model does not "
                "penalize.\n");
    return 0;
}
