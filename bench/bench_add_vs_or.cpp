/**
 * @file
 * Section 4's design comparison: OR-relocation (power-of-two,
 * size-aligned contexts; internal fragmentation) versus
 * Am29000-style ADD base-plus-offset addressing (exact-size
 * contexts; external fragmentation and more complex software). ADD
 * is charged higher allocation costs, reflecting the paper's note
 * that "the software for managing arbitrary-size contexts is likely
 * to be more complex" (first-fit interval search vs bit-parallel
 * scan).
 */

#include <vector>

#include "base/table.hh"
#include "exp/registry.hh"
#include "exp/sweep.hh"
#include "multithread/simulation_spec.hh"
#include "multithread/workload.hh"

RR_BENCH_FIGURE(add_vs_or,
                "OR relocation vs ADD (Am29000) relocation "
                "(Section 4)")
{
    using namespace rr;

    const unsigned seeds = ctx.run().seeds;
    const unsigned threads = ctx.run().threads;
    const std::vector<double> latencies =
        ctx.run().fast
            ? std::vector<double>{128.0, 512.0}
            : std::vector<double>{64.0, 128.0, 256.0, 512.0, 1024.0};
    const std::vector<double> run_lengths = {16.0, 64.0};

    ctx.text("(cache faults, C ~ U[6,24], S = 6; ADD allocation "
             "costs 40/25/10 vs OR 25/15/5)");

    for (const unsigned num_regs : {64u, 128u}) {
        std::vector<exp::ReplicateRequest> requests;
        for (const double run_length : run_lengths) {
            for (const double latency : latencies) {
                const exp::ConfigMaker maker =
                    [num_regs, run_length, latency,
                     threads](mt::ArchKind arch, uint64_t seed) {
                        mt::MtConfig config =
                            mt::SimulationSpec()
                                .cacheFaults(
                                    run_length,
                                    static_cast<uint64_t>(latency))
                                .arch(arch)
                                .numRegs(num_regs)
                                .threads(threads)
                                .seed(seed)
                                .build();
                        if (arch == mt::ArchKind::AddReloc) {
                            config.costs.allocSucceed = 40;
                            config.costs.allocFail = 25;
                            config.costs.dealloc = 10;
                        }
                        return config;
                    };
                requests.push_back({maker, mt::ArchKind::FixedHw});
                requests.push_back({maker, mt::ArchKind::Flexible});
                requests.push_back({maker, mt::ArchKind::AddReloc});
            }
        }
        const std::vector<exp::Replicated> results =
            exp::replicateMany(requests, seeds);

        Table table({"F", "R", "L", "fixed", "or-reloc", "add-reloc",
                     "resident or", "resident add"});
        std::size_t slot = 0;
        for (const double run_length : run_lengths) {
            for (const double latency : latencies) {
                const exp::Replicated &fixed = results[slot];
                const exp::Replicated &or_reloc = results[slot + 1];
                const exp::Replicated &add_reloc = results[slot + 2];
                slot += 3;
                table.addRow(
                    {Table::num(static_cast<uint64_t>(num_regs)),
                     Table::num(run_length, 0),
                     Table::num(latency, 0),
                     Table::num(fixed.meanEfficiency),
                     Table::num(or_reloc.meanEfficiency),
                     Table::num(add_reloc.meanEfficiency),
                     Table::num(or_reloc.meanResident, 1),
                     Table::num(add_reloc.meanResident, 1)});
            }
        }
        ctx.table(exp::strf("f%u", num_regs),
                  exp::strf("F = %u", num_regs), std::move(table));
    }
    ctx.text("Expected shape: ADD packs more contexts (no "
             "power-of-two rounding:\nC ~ U[6,24] wastes ~43% "
             "under OR), so it reaches higher residency and\n"
             "often higher efficiency despite costlier allocation "
             "— the paper's reason\nfor calling ADD 'more "
             "general', traded against an adder on the decode\n"
             "critical path, which our cycle-level model does not "
             "penalize.");
}
