/**
 * @file
 * Figure: flexible vs fixed contexts under *real* contention.
 *
 * Every other figure drives the machine with distribution-drawn run
 * segments. Here the threads execute actual synchronization code —
 * test-and-set spinlocks, counting semaphores, a ring buffer, a
 * sense-reversing barrier (runtime/sync_runtime.hh) — so all wait
 * times are endogenous. The comparison holds the register file fixed
 * at 128 entries and conserves total work: flexible contexts fit
 * eight 16-register threads, a conventional fixed-context machine
 * fits four 32-register threads running twice the per-thread work.
 * More resident threads means more lock holders' fault latencies
 * overlapped — the paper's Figure 5/6 argument, measured on running
 * programs instead of geometric draws.
 *
 * Everything is deterministic (constant fault latency, no RNG), so
 * the committed baseline compares exactly and the report is
 * byte-identical across --jobs.
 */

#include "base/table.hh"
#include "exp/registry.hh"
#include "kernel/sync_workload.hh"
#include "trace/sink.hh"

namespace {

struct Arm
{
    const char *arch;
    unsigned threads;
    unsigned contextSize; ///< 0 = sized from regsUsed (flexible)
    unsigned workScale;   ///< per-thread work multiplier
};

constexpr Arm kFlexible{"flexible", 8, 0, 1};
constexpr Arm kFixed{"fixed-32", 4, 32, 2};

} // namespace

RR_BENCH_FIGURE(fig_contention,
                "Real contention: flexible vs fixed contexts on "
                "synchronization workloads")
{
    using namespace rr;
    using kernel::SyncWorkloadConfig;
    using kernel::SyncWorkloadResult;
    using runtime::SyncScenario;

    const bool fast = ctx.run().fast;
    const unsigned rounds = fast ? 3 : 12;
    const unsigned items = fast ? 4 : 16;

    ctx.text("(128-register file, equal total work per scenario: "
             "flexible = 8 threads x 16-register\n contexts, fixed = "
             "4 threads x 32-register contexts at twice the "
             "per-thread work;\n constant 500-cycle fault service, no "
             "RNG anywhere)");

    Table table({"scenario", "arch", "N", "cycles", "work", "faults",
                 "waits", "efficiency"});
    Table summary({"scenario", "flexible", "fixed-32",
                   "fixed/flexible"});
    uint64_t audited = 0;

    for (const auto scenario :
         {SyncScenario::UncontendedLock, SyncScenario::LockConvoy,
          SyncScenario::ProducerConsumer, SyncScenario::BarrierSkew}) {
        uint64_t cycles_flex = 0;
        uint64_t cycles_fixed = 0;
        for (const Arm &arm : {kFlexible, kFixed}) {
            SyncWorkloadConfig config;
            config.scenario = scenario;
            config.numThreads = arm.threads;
            config.forcedContextSize = arm.contextSize;
            config.rounds = rounds * arm.workScale;
            config.itemsPerProducer = items * arm.workScale;
            // Service latency four resident threads cannot hide (a
            // peer contributes ~80 useful cycles per round), but
            // eight nearly can — the regime Figure 5 studies.
            config.faultLatency = 500;

            // In-figure trace audit: the event stream must reconcile
            // with the architectural counters.
            trace::VectorSink sink;
            config.traceSink = &sink;
            const SyncWorkloadResult result =
                kernel::runSyncWorkload(config);
            rr_assert(result.halted, "scenario did not halt: ",
                      runtime::syncScenarioName(scenario));

            uint64_t issues = 0, completes = 0, polls = 0;
            for (const auto &event : sink.events()) {
                if (event.kind == trace::EventKind::FaultIssue)
                    ++issues;
                else if (event.kind == trace::EventKind::FaultComplete)
                    ++completes;
                else if (event.kind == trace::EventKind::SchedulerPoll)
                    ++polls;
            }
            rr_assert(issues == result.faults &&
                          completes == result.faults &&
                          polls == result.failedPolls,
                      "trace does not reconcile with counters");
            ++audited;

            const uint64_t waits = result.lockSpins +
                                   result.semWaits +
                                   result.barrierWaits +
                                   result.failedPolls;
            table.addRow(
                {runtime::syncScenarioName(scenario), arm.arch,
                 Table::num(uint64_t{arm.threads}),
                 Table::num(result.totalCycles),
                 Table::num(result.workUnits),
                 Table::num(result.faults), Table::num(waits),
                 Table::num(result.efficiencyTotal, 3)});
            (arm.contextSize == 0 ? cycles_flex : cycles_fixed) =
                result.totalCycles;
        }
        summary.addRow(
            {runtime::syncScenarioName(scenario),
             Table::num(cycles_flex), Table::num(cycles_fixed),
             Table::num(static_cast<double>(cycles_fixed) /
                            static_cast<double>(cycles_flex),
                        3)});
    }

    ctx.table("arms", "Per-arm execution", std::move(table));
    ctx.table("speedup",
              "Total cycles to finish the same work", std::move(summary));
    ctx.text(exp::strf("trace audit: %llu runs reconciled "
                       "(issue/complete/poll events match counters)",
                       static_cast<unsigned long long>(audited)));
    ctx.text("Expected shape: where waits overlap with independent "
             "work — uncontended\nlocks, the semaphore-throttled "
             "pipeline — the doubled residency of flexible\ncontexts "
             "hides service latency four threads cannot: "
             "fixed/flexible well\nabove 1. The lock convoy "
             "serializes fault latency *inside* one critical\n"
             "section, so no residency helps (~parity — the classic "
             "convoy pathology),\nand barrier phases are bounded by "
             "the slowest thread on any machine.");
}
