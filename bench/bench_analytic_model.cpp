/**
 * @file
 * Section 3.4's closed-form analysis versus the simulator:
 *
 *   E_sat = R / (R + S)          (saturated)
 *   E_lin = N R / (R + S + L)    (linear regime)
 *   N*    = 1 + L / (R + S)      (saturation point)
 *
 * Deterministic run lengths/latencies (the case the equations cover)
 * and geometric run lengths (the paper notes the deterministic
 * equations remain a reasonable approximation).
 */

#include "analysis/efficiency_model.hh"
#include "base/table.hh"
#include "exp/registry.hh"
#include "multithread/simulation_spec.hh"
#include "multithread/workload.hh"

RR_BENCH_FIGURE(analytic_model,
                "Analytical model vs simulation (Section 3.4)")
{
    using namespace rr;

    ctx.text("Deterministic workloads (exact domain of the "
             "equations):");
    Table det({"R", "L", "N", "N*", "simulated", "model", "error"});
    for (const auto &[run, latency] :
         {std::pair<uint64_t, uint64_t>{100, 400},
          std::pair<uint64_t, uint64_t>{32, 256},
          std::pair<uint64_t, uint64_t>{512, 2048}}) {
        const analysis::EfficiencyModel model(
            static_cast<double>(run), static_cast<double>(latency),
            6.0);
        for (const unsigned n : {1u, 2u, 4u, 8u, 16u}) {
            mt::MtConfig config = mt::SimulationSpec()
                                      .deterministicFaults(run, latency)
                                      .threads(n)
                                      .registerDemand(8)
                                      .numRegs(256)
                                      .build();
            const double sim =
                mt::simulate(std::move(config)).efficiencyCentral;
            const double expected = model.efficiency(n);
            det.addRow({Table::num(run), Table::num(latency),
                        Table::num(static_cast<uint64_t>(n)),
                        Table::num(model.saturationPoint(), 2),
                        Table::num(sim), Table::num(expected),
                        Table::num(sim - expected)});
        }
    }
    ctx.table("deterministic", "", std::move(det));

    ctx.text("Geometric run lengths (stochastic; equations are "
             "approximate):");
    Table geo({"R", "L", "N", "simulated", "model", "error"});
    for (const unsigned n : {2u, 4u, 8u}) {
        const double run = 64.0;
        const uint64_t latency = 512;
        const analysis::EfficiencyModel model(
            run, static_cast<double>(latency), 6.0);
        mt::MtConfig config = mt::SimulationSpec()
                                  .cacheFaults(run, latency)
                                  .numRegs(256)
                                  .build();
        config.workload =
            mt::homogeneousWorkload(n, mt::defaultWorkPerThread(run),
                                    8);
        const double sim =
            mt::simulate(std::move(config)).efficiencyCentral;
        const double expected = model.efficiency(n);
        geo.addRow({Table::num(run, 0), Table::num(latency),
                    Table::num(static_cast<uint64_t>(n)),
                    Table::num(sim), Table::num(expected),
                    Table::num(sim - expected)});
    }
    ctx.table("geometric", "", std::move(geo));
    ctx.text("Expected shape: near-zero error in the deterministic "
             "rows; small positive\nor negative deviations with "
             "geometric run lengths.");
}
