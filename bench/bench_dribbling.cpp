/**
 * @file
 * The dribbling-registers extension (Section 3.4 cites
 * Soundararajan's dribble-back registers as APRIL's answer to long
 * synchronization latencies, "completely orthogonal to the register
 * relocation mechanism"). A background engine trickles context state
 * to/from memory while other threads run, removing the per-register
 * load/unload cost from the critical path.
 *
 * Orthogonality check: dribbling helps both architectures; register
 * relocation's residency advantage persists on top of it, and the
 * combination is the best of all four.
 */

#include <cstdio>
#include <vector>

#include "base/table.hh"
#include "exp/env.hh"
#include "exp/sweep.hh"
#include "multithread/workload.hh"

int
main()
{
    using namespace rr;

    const unsigned seeds = exp::benchSeeds();
    const std::vector<double> latencies =
        exp::benchFast()
            ? std::vector<double>{256.0, 2048.0}
            : std::vector<double>{128.0, 512.0, 2048.0, 8192.0};

    std::printf("Dribbling registers (orthogonal extension, "
                "Section 3.4)\n");
    std::printf("(sync faults, F = 128, R = 32, C ~ U[6,24], "
                "two-phase unloading)\n\n");

    Table table({"L", "fixed", "fixed+dribble", "flexible",
                 "flex+dribble", "best combo vs fixed"});
    for (const double latency : latencies) {
        double values[4];
        int idx = 0;
        for (const mt::ArchKind arch :
             {mt::ArchKind::FixedHw, mt::ArchKind::Flexible}) {
            for (const bool dribble : {false, true}) {
                const exp::ConfigMaker maker =
                    [&](mt::ArchKind a, uint64_t seed) {
                        mt::MtConfig config = mt::fig6Config(
                            a, 128, 32.0, latency, seed);
                        config.costs.dribbleRegisters = dribble;
                        return config;
                    };
                values[idx++] =
                    exp::replicate(maker, arch, seeds)
                        .meanEfficiency;
            }
        }
        table.addRow({Table::num(latency, 0), Table::num(values[0]),
                      Table::num(values[1]), Table::num(values[2]),
                      Table::num(values[3]),
                      Table::num(values[3] / values[0], 2)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Expected shape: dribbling lifts both architectures "
                "(cheaper rotation at\nlong latencies); relocation's "
                "residency advantage stacks on top — the\ntwo "
                "mechanisms are orthogonal, as the paper asserts.\n");
    return 0;
}
