/**
 * @file
 * The dribbling-registers extension (Section 3.4 cites
 * Soundararajan's dribble-back registers as APRIL's answer to long
 * synchronization latencies, "completely orthogonal to the register
 * relocation mechanism"). A background engine trickles context state
 * to/from memory while other threads run, removing the per-register
 * load/unload cost from the critical path.
 *
 * Orthogonality check: dribbling helps both architectures; register
 * relocation's residency advantage persists on top of it, and the
 * combination is the best of all four.
 */

#include <vector>

#include "base/table.hh"
#include "exp/registry.hh"
#include "exp/sweep.hh"
#include "multithread/simulation_spec.hh"
#include "multithread/workload.hh"

RR_BENCH_FIGURE(dribbling,
                "Dribbling registers (orthogonal extension, "
                "Section 3.4)")
{
    using namespace rr;

    const unsigned seeds = ctx.run().seeds;
    const std::vector<double> latencies =
        ctx.run().fast
            ? std::vector<double>{256.0, 2048.0}
            : std::vector<double>{128.0, 512.0, 2048.0, 8192.0};

    ctx.text("(sync faults, F = 128, R = 32, C ~ U[6,24], "
             "two-phase unloading)");

    std::vector<exp::ReplicateRequest> requests;
    for (const double latency : latencies) {
        for (const mt::ArchKind arch :
             {mt::ArchKind::FixedHw, mt::ArchKind::Flexible}) {
            for (const bool dribble : {false, true}) {
                const exp::ConfigMaker maker =
                    [latency, dribble](mt::ArchKind a, uint64_t seed) {
                        mt::MtConfig config =
                            mt::SimulationSpec()
                                .syncFaults(32.0, latency)
                                .arch(a)
                                .numRegs(128)
                                .seed(seed)
                                .build();
                        config.costs.dribbleRegisters = dribble;
                        return config;
                    };
                requests.push_back({maker, arch});
            }
        }
    }
    const std::vector<exp::Replicated> results =
        exp::replicateMany(requests, seeds);

    Table table({"L", "fixed", "fixed+dribble", "flexible",
                 "flex+dribble", "best combo vs fixed"});
    for (std::size_t i = 0; i < latencies.size(); ++i) {
        double values[4];
        for (int j = 0; j < 4; ++j)
            values[j] = results[4 * i + j].meanEfficiency;
        table.addRow({Table::num(latencies[i], 0),
                      Table::num(values[0]), Table::num(values[1]),
                      Table::num(values[2]), Table::num(values[3]),
                      Table::num(values[3] / values[0], 2)});
    }
    ctx.table("dribble", "", std::move(table));
    ctx.text("Expected shape: dribbling lifts both architectures "
             "(cheaper rotation at\nlong latencies); relocation's "
             "residency advantage stacks on top — the\ntwo "
             "mechanisms are orthogonal, as the paper asserts.");
}
