/**
 * @file
 * Reproduces Figure 6 (a), (b), (c): processor efficiency vs
 * synchronization latency, for register files of 64, 128, and 256
 * registers; curves for run lengths R = 32, 128, 512; C ~ U[6, 24];
 * S = 8; geometric run lengths, exponentially distributed waits;
 * competitive two-phase unloading.
 *
 * Paper shapes to look for: flexible above fixed for most points;
 * in panel (a) (F = 64) the flexible advantage diminishes as L grows
 * and fixed contexts marginally win at large L — the software
 * allocation cost effect the paper attributes to continual context
 * loading and unloading (see bench_fig6a_lowcost for the ablation
 * that removes it).
 */

#include <cstdio>
#include <vector>

#include "exp/env.hh"
#include "exp/sweep.hh"
#include "multithread/workload.hh"

int
main()
{
    using namespace rr;

    const unsigned seeds = exp::benchSeeds();
    const unsigned threads = exp::benchThreads();
    const std::vector<double> run_lengths = {32.0, 128.0, 512.0};
    const std::vector<double> latencies =
        exp::benchFast()
            ? std::vector<double>{128.0, 512.0, 2048.0}
            : std::vector<double>{64.0, 128.0, 256.0, 512.0,
                                  1024.0, 2048.0, 4096.0};

    std::printf("Figure 6 — synchronization faults: efficiency vs "
                "latency\n");
    std::printf("(C ~ U[6,24], S = 8, geometric run lengths, "
                "exponential waits,\n two-phase unloading; %u seeds "
                "per point, %u threads)\n\n",
                seeds, threads);

    const char *panels[] = {"(a)", "(b)", "(c)"};
    const unsigned files[] = {64, 128, 256};
    for (int p = 0; p < 3; ++p) {
        const unsigned num_regs = files[p];
        const exp::PanelMaker maker =
            [num_regs, threads](mt::ArchKind arch, double r, double l,
                                uint64_t seed) {
                mt::MtConfig config =
                    mt::fig6Config(arch, num_regs, r, l, seed);
                config.workload.numThreads = threads;
                return config;
            };
        const exp::FigurePanel panel = exp::sweepPanel(
            num_regs, maker, run_lengths, latencies, seeds);
        std::printf("Figure 6%s: F = %u registers\n%s\n", panels[p],
                    num_regs, panel.toTable().render().c_str());
        if (exp::envUnsigned("RR_BENCH_CSV", 0) != 0) {
            std::printf("csv:\n%s\n",
                        panel.toTable().renderCsv().c_str());
        }
    }
    return 0;
}
