/**
 * @file
 * Reproduces Figure 6 (a), (b), (c): processor efficiency vs
 * synchronization latency, for register files of 64, 128, and 256
 * registers; curves for run lengths R = 32, 128, 512; C ~ U[6, 24];
 * S = 8; geometric run lengths, exponentially distributed waits;
 * competitive two-phase unloading.
 *
 * Paper shapes to look for: flexible above fixed for most points;
 * in panel (a) (F = 64) the flexible advantage diminishes as L grows
 * and fixed contexts marginally win at large L — the software
 * allocation cost effect the paper attributes to continual context
 * loading and unloading (see fig6a_lowcost for the ablation that
 * removes it).
 */

#include <vector>

#include "exp/registry.hh"
#include "exp/sweep.hh"
#include "multithread/simulation_spec.hh"

RR_BENCH_FIGURE(fig6_sync,
                "Figure 6 — synchronization faults: efficiency vs "
                "latency")
{
    using namespace rr;

    const unsigned seeds = ctx.run().seeds;
    const unsigned threads = ctx.run().threads;
    const std::vector<double> run_lengths = {32.0, 128.0, 512.0};
    const std::vector<double> latencies =
        ctx.run().fast
            ? std::vector<double>{128.0, 512.0, 2048.0}
            : std::vector<double>{64.0, 128.0, 256.0, 512.0,
                                  1024.0, 2048.0, 4096.0};

    ctx.text("(C ~ U[6,24], S = 8, geometric run lengths, "
             "exponential waits, two-phase unloading)");

    const char *panels[] = {"a", "b", "c"};
    const unsigned files[] = {64, 128, 256};
    for (int p = 0; p < 3; ++p) {
        const unsigned num_regs = files[p];
        const exp::PanelMaker maker =
            [num_regs, threads](mt::ArchKind arch, double r, double l,
                                uint64_t seed) {
                return mt::SimulationSpec()
                    .syncFaults(r, l)
                    .arch(arch)
                    .numRegs(num_regs)
                    .threads(threads)
                    .seed(seed)
                    .build();
            };
        ctx.panel(std::string("panel_") + panels[p],
                  exp::strf("Figure 6(%s): F = %u registers",
                            panels[p], num_regs),
                  exp::sweepPanel(num_regs, maker, run_lengths,
                                  latencies, seeds));
    }
}
