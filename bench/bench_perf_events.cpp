/**
 * @file
 * Event-simulator throughput microbenchmark (rrbench --perf):
 * measures mt::MtProcessor event processing in Mevents/s over
 * Figure 5-style (cache faults, never unload) and Figure 6-style
 * (sync faults, two-phase unload) scenarios, and reports the
 * completion-heap high-water mark from the zero-allocation EventCore.
 *
 * As in bench_perf_interp, only deterministic counters enter the
 * compared table — total cycles, event counts, and the heap bound,
 * all fixed by the seed — while wall-clock throughput lives in notes
 * that --compare ignores.
 */

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "base/table.hh"
#include "exp/registry.hh"
#include "multithread/mt_processor.hh"
#include "multithread/simulation_spec.hh"

namespace {

using namespace rr;

/** Fault completions plus every charged allocator/loader action. */
uint64_t
eventCount(const mt::MtStats &stats)
{
    return 2 * stats.faults + stats.loads + stats.unloads +
           stats.allocSuccesses + stats.allocFailures +
           stats.threadsFinished;
}

struct Scenario
{
    std::string name;
    mt::MtConfig config;
};

} // namespace

RR_PERF_FIGURE(perf_events,
               "Event-simulator throughput: completion heap and "
               "scheduler loop (Mevents/s)")
{
    using namespace rr;

    const unsigned threads = ctx.run().fast ? 48 : 96;
    const unsigned reps = ctx.run().fast ? 3 : 10;

    ctx.text(exp::strf("Each scenario simulates %u threads to "
                       "completion %u times per seed; the table "
                       "carries seed-determined totals (cycles, "
                       "events, heap high-water mark), the notes "
                       "wall-clock throughput.",
                       threads, reps));

    std::vector<Scenario> scenarios;
    scenarios.push_back(
        {"fig5_cache_never",
         mt::SimulationSpec()
             .threads(threads)
             .workPerThread(40'000)
             .registerDemand(8, 24)
             .cacheFaults(50.0, 200)
             .neverUnload()
             .seed(1)
             .build()});
    scenarios.push_back(
        {"fig6_sync_twophase",
         mt::SimulationSpec()
             .threads(threads)
             .workPerThread(40'000)
             .registerDemand(8, 24)
             .syncFaults(100.0, 1'000.0)
             .twoPhaseUnload()
             .seed(1)
             .build()});

    Table table({"scenario", "cycles", "events", "faults", "loads",
                 "unloads", "heap max"});
    double total_events = 0.0, total_secs = 0.0;

    for (const Scenario &scenario : scenarios) {
        mt::MtStats stats;
        std::size_t heap_max = 0;
        const auto start = std::chrono::steady_clock::now();
        for (unsigned rep = 0; rep < reps; ++rep) {
            mt::MtProcessor processor(scenario.config);
            stats = processor.run();
            heap_max = processor.completionCore().maxSize();
        }
        const auto stop = std::chrono::steady_clock::now();
        const double secs = std::max(
            std::chrono::duration<double>(stop - start).count(),
            1e-9);

        const uint64_t events = eventCount(stats);
        table.addRow({scenario.name, Table::num(stats.totalCycles),
                      Table::num(events), Table::num(stats.faults),
                      Table::num(stats.loads),
                      Table::num(stats.unloads),
                      Table::num(static_cast<uint64_t>(heap_max))});

        const double mevents =
            static_cast<double>(events) * reps / secs / 1e6;
        ctx.text(exp::strf("%s: %.2f Mevents/s (heap never exceeded "
                           "%u entries for %u threads)",
                           scenario.name.c_str(), mevents,
                           static_cast<unsigned>(heap_max), threads));

        total_events += static_cast<double>(events) * reps;
        total_secs += secs;
    }
    ctx.table("scenarios", "seed-determined totals per scenario "
                           "(identical on every machine)",
              std::move(table));

    ctx.text(exp::strf("aggregate: %.2f Mevents/s",
                       total_events / total_secs / 1e6));
}
