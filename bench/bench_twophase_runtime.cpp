/**
 * @file
 * The two-phase unloading policy as real code: the all-assembly slot
 * scheduler spins on short faults (first phase) and surrenders the
 * slot after its poll budget on long ones (second phase). This table
 * shows the policy switching regimes as the latency grows — with
 * every cycle below coming from executed RRISC instructions.
 */

#include "base/table.hh"
#include "exp/registry.hh"
#include "kernel/twophase_kernel.hh"

RR_BENCH_FIGURE(twophase_runtime,
                "Two-phase unloading, measured as executed code")
{
    using namespace rr;

    ctx.text("(12 threads over 4 slots of 8 registers; 50-unit "
             "segments; poll budget 3;\n constant fault "
             "latency)");

    Table table({"latency", "swap-outs / faults", "dequeues",
                 "cycles", "efficiency"});
    for (const uint64_t latency :
         {25ull, 100ull, 400ull, 1600ull, 6400ull}) {
        kernel::TwoPhaseConfig config;
        config.numThreads = 12;
        config.numSlots = 4;
        config.segmentsPerThread = 8;
        config.workUnits = 50;
        config.latency = makeConstant(latency);
        const kernel::TwoPhaseResult result =
            kernel::runTwoPhaseKernel(config);
        table.addRow(
            {Table::num(latency),
             Table::num(result.swapOuts) + " / " +
                 Table::num(result.faults),
             Table::num(result.dequeues),
             Table::num(result.totalCycles),
             Table::num(result.efficiency())});
    }
    ctx.table("latency_sweep", "", std::move(table));

    Table over({"threads", "slots", "latency", "efficiency"});
    for (const unsigned threads : {4u, 8u, 16u}) {
        kernel::TwoPhaseConfig config;
        config.numThreads = threads;
        config.numSlots = 4;
        config.segmentsPerThread = 8;
        config.workUnits = 50;
        config.latency = makeConstant(4000);
        const kernel::TwoPhaseResult result =
            kernel::runTwoPhaseKernel(config);
        over.addRow({Table::num(static_cast<uint64_t>(threads)),
                     Table::num(static_cast<uint64_t>(4)),
                     Table::num(static_cast<uint64_t>(4000)),
                     Table::num(result.efficiency())});
    }
    ctx.table("oversubscription",
              "Oversubscription pays exactly when the second phase "
              "engages",
              std::move(over));
    ctx.text("Expected shape: short faults complete in the spin "
             "phase (0 swap-outs);\nas latency crosses the "
             "competitive budget, every fault rotates its slot\n"
             "to a queued thread and the extra threads keep the "
             "processor busy.");
}
