/**
 * @file
 * System-scale study: K nodes share an interconnect whose latency
 * grows with aggregate miss traffic (the paper's constant-L
 * assumption holds only for "lightly loaded networks"). Higher
 * per-node utilization — the very thing register relocation buys —
 * generates more traffic; this bench asks whether the advantage
 * survives its own success.
 */

#include "base/table.hh"
#include "exp/registry.hh"
#include "multithread/simulation_spec.hh"
#include "multithread/workload.hh"
#include "system/multiprocessor.hh"

RR_BENCH_FIGURE(multiprocessor,
                "Multiprocessor fixed point: endogenous remote-miss "
                "latency")
{
    using namespace rr;

    const unsigned threads = ctx.run().threads;

    ctx.text("(per node: F = 128, R = 8, C ~ U[6,24], cache "
             "faults; base latency 50,\n 2 service cycles per "
             "miss on the shared interconnect)");

    Table table({"K", "arch", "L_eff", "net util", "node eff",
                 "aggregate", "flex gain"});
    for (const unsigned nodes : {1u, 16u, 64u, 256u}) {
        double agg[2] = {0.0, 0.0};
        int idx = 0;
        for (const mt::ArchKind arch :
             {mt::ArchKind::FixedHw, mt::ArchKind::Flexible}) {
            system::SystemConfig config;
            config.numNodes = nodes;
            config.baseLatency = 50.0;
            config.msgServiceCycles = 2.0;
            config.nodeConfig = [&](uint64_t latency) {
                mt::MtConfig node = mt::SimulationSpec()
                                        .cacheFaults(8.0, latency)
                                        .arch(arch)
                                        .numRegs(128)
                                        .threads(threads)
                                        .build();
                return node;
            };
            const system::SystemResult result =
                system::simulateSystem(config);
            agg[idx++] = result.aggregateThroughput;
            table.addRow(
                {Table::num(static_cast<uint64_t>(nodes)),
                 mt::archName(arch),
                 Table::num(result.effectiveLatency, 0),
                 Table::num(result.networkUtilization, 2),
                 Table::num(result.nodeEfficiency),
                 Table::num(result.aggregateThroughput, 1),
                 idx == 2 ? Table::num(agg[1] / agg[0], 2) : ""});
        }
    }
    ctx.table("fixed_point", "", std::move(table));
    ctx.text("Expected shape: contention raises the effective "
             "latency with K, pushing\nboth architectures deeper "
             "into the linear regime — where residency matters\n"
             "most, so the flexible advantage persists (and "
             "grows) under load until\nthe interconnect itself "
             "saturates.");
}
