/**
 * @file
 * The register-file sizing argument from the paper's introduction:
 * "better utilization of the register file would permit a smaller
 * register file to support a given number of contexts, which has
 * architectural advantages in terms of chip area and processor
 * cycle-time."
 *
 * For a target number of resident contexts we measure the smallest
 * register file each scheme needs: fixed hardware contexts always
 * consume 32 registers per context; register relocation consumes the
 * power-of-two cover of each thread's true requirement. Both the
 * expected packing (analytical) and the allocator-measured packing
 * (with fragmentation) are reported.
 */

#include <string>

#include "base/bitops.hh"
#include "base/rng.hh"
#include "base/stats.hh"
#include "base/table.hh"
#include "exp/registry.hh"
#include "runtime/context_allocator.hh"

namespace {

using namespace rr;

/** Mean context size for C ~ U[c_lo, c_hi] under power-of-two. */
double
expectedContextSize(unsigned c_lo, unsigned c_hi)
{
    double total = 0.0;
    for (unsigned c = c_lo; c <= c_hi; ++c)
        total += static_cast<double>(roundUpPowerOfTwo(c));
    return total / static_cast<double>(c_hi - c_lo + 1);
}

/**
 * Smallest power-of-two register file that fits @p contexts threads
 * with C ~ U[c_lo, c_hi] in at least 95 of 100 random draws.
 */
unsigned
measuredFileFor(unsigned contexts, unsigned c_lo, unsigned c_hi)
{
    for (unsigned file = 16; file <= 4096; file *= 2) {
        unsigned successes = 0;
        for (uint64_t seed = 1; seed <= 100; ++seed) {
            Rng rng(seed * 7919);
            runtime::ContextAllocator alloc(file, 6);
            bool ok = true;
            for (unsigned i = 0; i < contexts && ok; ++i) {
                const unsigned c = static_cast<unsigned>(
                    rng.nextRange(c_lo, c_hi));
                ok = alloc.allocate(c).has_value();
            }
            successes += ok ? 1 : 0;
        }
        if (successes >= 95)
            return file;
    }
    return 0;
}

} // namespace

RR_BENCH_FIGURE(file_sizing,
                "Register file size needed for a target number of "
                "resident contexts")
{
    ctx.text("(fixed: 32 registers per context; relocation: "
             "power-of-two cover of the\nthread's requirement; "
             "'measured' = smallest power-of-two file that packs\n"
             "the contexts in >= 95% of random draws)");

    for (const auto &[c_lo, c_hi] :
         {std::pair<unsigned, unsigned>{6, 24},
          std::pair<unsigned, unsigned>{8, 8},
          std::pair<unsigned, unsigned>{4, 12}}) {
        Table table({"C dist", "contexts", "fixed needs",
                     "reloc expected", "reloc measured", "saving"});
        const double expected = expectedContextSize(c_lo, c_hi);
        for (const unsigned contexts : {4u, 8u, 16u}) {
            const unsigned fixed_regs = 32 * contexts;
            const unsigned measured =
                measuredFileFor(contexts, c_lo, c_hi);
            std::string dist = "U[" + std::to_string(c_lo) + "," +
                               std::to_string(c_hi) + "]";
            table.addRow(
                {dist, Table::num(static_cast<uint64_t>(contexts)),
                 Table::num(static_cast<uint64_t>(fixed_regs)),
                 Table::num(expected * contexts, 0),
                 Table::num(static_cast<uint64_t>(measured)),
                 Table::num(static_cast<double>(fixed_regs) /
                                static_cast<double>(measured),
                            2)});
        }
        ctx.table(exp::strf("u%u_%u", c_lo, c_hi),
                  exp::strf("C ~ U[%u,%u]", c_lo, c_hi),
                  std::move(table));
    }
    ctx.text("Expected shape: for fine-grained threads (C = 8) "
             "relocation supports the\nsame multithreading degree "
             "with a 2-4x smaller register file — the area /\n"
             "cycle-time argument of the paper's introduction.");
}
