/**
 * @file
 * Section 3.4: "numerous experiments similar to those presented
 * above, using homogeneous context sizes C = 8 and C = 16. The
 * results were similar ... but the relative improvements due to
 * register relocation were often substantially larger."
 *
 * For C = 8, a 64-register file holds 8 relocated contexts versus 2
 * fixed hardware contexts — this is where the paper's headline
 * "factor of two" (and more) improvements live.
 */

#include <cstdio>
#include <vector>

#include "base/table.hh"
#include "exp/env.hh"
#include "exp/sweep.hh"
#include "multithread/workload.hh"

int
main()
{
    using namespace rr;

    const unsigned seeds = exp::benchSeeds();
    const unsigned threads = exp::benchThreads();
    const std::vector<double> latencies =
        exp::benchFast()
            ? std::vector<double>{64.0, 256.0, 1024.0}
            : std::vector<double>{32.0, 64.0, 128.0, 256.0,
                                  512.0, 1024.0};

    std::printf("Homogeneous context sizes (Section 3.4) — cache "
                "faults, S = 6, never unload\n\n");

    for (const unsigned c : {8u, 16u}) {
        for (const unsigned num_regs : {64u, 128u}) {
            Table table({"C", "F", "R", "L", "fixed", "flexible",
                         "flex/fixed"});
            for (const double run_length : {16.0, 64.0}) {
                for (const double latency : latencies) {
                    const exp::ConfigMaker maker =
                        [&](mt::ArchKind arch, uint64_t seed) {
                            mt::MtConfig config = mt::fig5Config(
                                arch, num_regs, run_length,
                                static_cast<uint64_t>(latency), seed);
                            config.workload = mt::homogeneousWorkload(
                                threads,
                                mt::defaultWorkPerThread(run_length),
                                c);
                            return config;
                        };
                    const double fixed =
                        exp::replicate(maker, mt::ArchKind::FixedHw,
                                       seeds)
                            .meanEfficiency;
                    const double flex =
                        exp::replicate(maker, mt::ArchKind::Flexible,
                                       seeds)
                            .meanEfficiency;
                    table.addRow(
                        {Table::num(static_cast<uint64_t>(c)),
                         Table::num(static_cast<uint64_t>(num_regs)),
                         Table::num(run_length, 0),
                         Table::num(latency, 0), Table::num(fixed),
                         Table::num(flex),
                         Table::num(flex / fixed, 2)});
                }
            }
            std::printf("%s\n", table.render().c_str());
        }
    }
    std::printf("Expected shape: much larger flexible/fixed ratios "
                "than the C ~ U[6,24]\nworkloads — with C = 8, "
                "relocation fits 4x as many contexts as fixed\n32-"
                "register hardware contexts (Section 3.4).\n");
    return 0;
}
