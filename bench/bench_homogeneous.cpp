/**
 * @file
 * Section 3.4: "numerous experiments similar to those presented
 * above, using homogeneous context sizes C = 8 and C = 16. The
 * results were similar ... but the relative improvements due to
 * register relocation were often substantially larger."
 *
 * For C = 8, a 64-register file holds 8 relocated contexts versus 2
 * fixed hardware contexts — this is where the paper's headline
 * "factor of two" (and more) improvements live.
 */

#include <vector>

#include "base/table.hh"
#include "exp/registry.hh"
#include "exp/sweep.hh"
#include "multithread/simulation_spec.hh"

RR_BENCH_FIGURE(homogeneous,
                "Homogeneous context sizes (Section 3.4) — cache "
                "faults, S = 6, never unload")
{
    using namespace rr;

    const unsigned seeds = ctx.run().seeds;
    const unsigned threads = ctx.run().threads;
    const std::vector<double> latencies =
        ctx.run().fast
            ? std::vector<double>{64.0, 256.0, 1024.0}
            : std::vector<double>{32.0, 64.0, 128.0, 256.0,
                                  512.0, 1024.0};
    const std::vector<double> run_lengths = {16.0, 64.0};

    for (const unsigned c : {8u, 16u}) {
        for (const unsigned num_regs : {64u, 128u}) {
            std::vector<exp::ReplicateRequest> requests;
            for (const double run_length : run_lengths) {
                for (const double latency : latencies) {
                    const exp::ConfigMaker maker =
                        [c, num_regs, run_length, latency,
                         threads](mt::ArchKind arch, uint64_t seed) {
                            return mt::SimulationSpec()
                                .cacheFaults(
                                    run_length,
                                    static_cast<uint64_t>(latency))
                                .arch(arch)
                                .numRegs(num_regs)
                                .threads(threads)
                                .registerDemand(c)
                                .seed(seed)
                                .build();
                        };
                    requests.push_back({maker, mt::ArchKind::FixedHw});
                    requests.push_back({maker, mt::ArchKind::Flexible});
                }
            }
            const std::vector<exp::Replicated> results =
                exp::replicateMany(requests, seeds);

            Table table({"C", "F", "R", "L", "fixed", "flexible",
                         "flex/fixed"});
            std::size_t slot = 0;
            for (const double run_length : run_lengths) {
                for (const double latency : latencies) {
                    const double fixed =
                        results[slot].meanEfficiency;
                    const double flex =
                        results[slot + 1].meanEfficiency;
                    slot += 2;
                    table.addRow(
                        {Table::num(static_cast<uint64_t>(c)),
                         Table::num(static_cast<uint64_t>(num_regs)),
                         Table::num(run_length, 0),
                         Table::num(latency, 0), Table::num(fixed),
                         Table::num(flex),
                         Table::num(flex / fixed, 2)});
                }
            }
            ctx.table(exp::strf("c%u_f%u", c, num_regs),
                      exp::strf("C = %u, F = %u", c, num_regs),
                      std::move(table));
        }
    }
    ctx.text("Expected shape: much larger flexible/fixed ratios "
             "than the C ~ U[6,24]\nworkloads — with C = 8, "
             "relocation fits 4x as many contexts as fixed\n32-"
             "register hardware contexts (Section 3.4).");
}
