/**
 * @file
 * Measures the complete software runtime path on the machine: the
 * all-assembly rotation scheduler unloads the faulting thread,
 * deallocates its context (Appendix A), dequeues and re-allocates
 * the next thread (FF1 allocator), reloads it, and resumes it — the
 * grand total of every Figure 4 operation chained together, as real
 * executed cycles.
 */

#include "base/table.hh"
#include "exp/registry.hh"
#include "kernel/rotation_kernel.hh"

RR_BENCH_FIGURE(rotation_runtime,
                "The complete software runtime path, measured "
                "(all-assembly rotation scheduler)")
{
    using namespace rr;

    ctx.text("(fault -> unload -> dealloc -> dequeue -> alloc -> "
             "reload -> resume)");

    Table table({"threads", "units/segment", "useful cycles",
                 "total cycles", "overhead/rotation", "efficiency"});
    for (const unsigned threads : {2u, 6u, 20u}) {
        for (const unsigned units : {25u, 100u, 400u}) {
            kernel::RotationConfig config;
            config.numThreads = threads;
            config.segmentsPerThread = 8;
            config.workUnits = units;
            const kernel::RotationResult result =
                kernel::runRotationKernel(config);
            const double overhead =
                static_cast<double>(result.totalCycles -
                                    result.usefulCycles) /
                static_cast<double>(threads * 8);
            table.addRow(
                {Table::num(static_cast<uint64_t>(threads)),
                 Table::num(static_cast<uint64_t>(units)),
                 Table::num(result.usefulCycles),
                 Table::num(result.totalCycles),
                 Table::num(overhead, 1),
                 Table::num(result.efficiency())});
        }
    }
    ctx.table("rotation", "", std::move(table));
    ctx.text("~75 cycles buys a full dynamic context rotation "
             "with zero scheduling\nhardware — the sum of the "
             "Figure 4 entries (unload C+10, queue 2x10,\nalloc "
             "~15 with FF1, dealloc 5, load C+10) measured as real "
             "code. For\ncomparison, a single remote miss in the "
             "paper's regime costs 100-1000\ncycles.");
}
