/**
 * @file
 * Pipeline-effect study: the paper's Figure 3 switch costs 4-6
 * cycles on an ideal 1-CPI machine; APRIL's implementation measured
 * 11. With classic 5-stage penalties (2-cycle taken-branch redirect,
 * 1-cycle load-use stall) the same code reproduces the gap — and
 * the downstream effect on multithreading efficiency follows
 * E_sat = R/(R+S).
 */

#include "assembler/assembler.hh"
#include "base/table.hh"
#include "exp/registry.hh"
#include "kernel/rotation_kernel.hh"
#include "machine/cpu.hh"
#include "multithread/simulation_spec.hh"
#include "multithread/workload.hh"
#include "runtime/asm_routines.hh"
#include "runtime/context_allocator.hh"
#include "runtime/context_loader.hh"

namespace {

using namespace rr;

/** Measured Figure 3 switch cost under the given timing model. */
double
switchCost(const machine::PipelineTimingConfig &timing)
{
    machine::CpuConfig config;
    config.numRegs = 128;
    config.operandWidth = 6;
    config.memWords = 1u << 14;
    config.timing = timing;
    machine::Cpu cpu(config);

    const auto prog =
        assembler::assemble(runtime::roundRobinDemoSource());
    cpu.mem().loadImage(prog.base, prog.words);
    runtime::ContextAllocator allocator(128, 6, 16);
    runtime::MachineScheduler scheduler(cpu, allocator);
    for (int i = 0; i < 2; ++i) {
        runtime::MachineScheduler::ThreadSpec spec;
        spec.entryPc = prog.addressOf("thread_body");
        spec.usedRegs = 10;
        const auto context = scheduler.createThread(spec);
        runtime::pokeContextReg(cpu, context->rrm, 4, 0);
        runtime::pokeContextReg(cpu, context->rrm, 6, 1);
        runtime::pokeContextReg(cpu, context->rrm, 7, 0);
        runtime::pokeContextReg(cpu, context->rrm, 9, 0x2000);
    }
    cpu.mem().write(0x2000, 1000);
    scheduler.start();

    uint64_t visits = 0;
    const uint32_t body = prog.addressOf("thread_body");
    cpu.setTraceHook([&](const machine::TraceEntry &entry) {
        if (entry.pc == body)
            ++visits;
    });
    cpu.run(6000);
    return static_cast<double>(cpu.cycles()) /
               static_cast<double>(visits) -
           3.0;
}

} // namespace

RR_BENCH_FIGURE(pipeline_effects,
                "Pipeline effects on the software context switch")
{
    using namespace rr;

    const machine::PipelineTimingConfig ideal;
    const machine::PipelineTimingConfig five_stage =
        machine::PipelineTimingConfig::classicFiveStage();

    const double s_ideal = switchCost(ideal);
    const double s_real = switchCost(five_stage);

    Table table({"machine", "Figure 3 switch (cycles)", "reference"});
    table.addRow({"ideal 1 CPI", Table::num(s_ideal, 1),
                  "paper: 4-6 (Section 2.2)"});
    table.addRow({"classic 5-stage", Table::num(s_real, 1),
                  "APRIL measured: 11 (Section 3.2)"});
    ctx.table("switch_cost", "", std::move(table));

    // Downstream: what the extra bubbles cost a multithreaded node.
    Table eff({"R", "S=6 (ideal switch)", "S=11 (pipelined switch)",
               "loss"});
    for (const double run_length : {8.0, 32.0, 128.0}) {
        double values[2];
        int idx = 0;
        for (const uint64_t s : {6ull, 11ull}) {
            mt::MtConfig config = mt::SimulationSpec()
                                      .cacheFaults(run_length, 200)
                                      .build();
            config.costs.contextSwitch = s;
            values[idx++] =
                mt::simulate(std::move(config)).efficiencyCentral;
        }
        eff.addRow({Table::num(run_length, 0), Table::num(values[0]),
                    Table::num(values[1]),
                    Table::num(1.0 - values[1] / values[0], 3)});
    }
    ctx.table("efficiency",
              "Efficiency impact (cache faults, F = 128, L = 200, "
              "flexible contexts)",
              std::move(eff));

    Table rot({"machine", "overhead/rotation (cycles)"});
    // The rotation kernel runs on the default ideal machine; the
    // 5-stage number is derived from its instruction mix measured
    // above (each rotation has 6 control transfers and 8 loads).
    kernel::RotationConfig rconfig;
    rconfig.numThreads = 4;
    rconfig.segmentsPerThread = 8;
    rconfig.workUnits = 100;
    const kernel::RotationResult ideal_rot =
        kernel::runRotationKernel(rconfig);
    const double ideal_overhead =
        static_cast<double>(ideal_rot.totalCycles -
                            ideal_rot.usefulCycles) /
        static_cast<double>(4 * 8);
    rot.addRow({"ideal 1 CPI", Table::num(ideal_overhead, 1)});
    ctx.table("rotation",
              "And the full rotation runtime path under both "
              "machines",
              std::move(rot));
    ctx.text("Takeaway: pipeline bubbles roughly double the "
             "switch cost (5 -> 11),\nreproducing the ideal-vs-"
             "APRIL gap the paper cites; the efficiency loss\nis "
             "worst exactly where multithreading is needed most "
             "(short run lengths\nnear saturation).");
}
