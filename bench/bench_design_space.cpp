/**
 * @file
 * The full Section 4 design space in one table: fixed hardware
 * contexts, OR register relocation (the paper), ADD base-plus-offset
 * (Am29000), and the Named State context cache (Nuth & Dally) — the
 * spectrum from coarsest to finest register-file binding
 * granularity. Hardware complexity grows down the table (no decode
 * logic -> OR gates -> adder -> fully associative file); this bench
 * shows what each step buys in processor utilization.
 */

#include <cstdio>

#include "base/table.hh"
#include "exp/env.hh"
#include "exp/sweep.hh"
#include "ext/context_cache.hh"
#include "multithread/workload.hh"

namespace {

using namespace rr;

double
cacheEff(unsigned num_regs, double run, uint64_t latency,
         unsigned threads, unsigned seeds)
{
    double total = 0.0;
    for (uint64_t seed = 1; seed <= seeds; ++seed) {
        ext::ContextCacheConfig config;
        config.numThreads = threads;
        config.workDist =
            makeConstant(mt::defaultWorkPerThread(run));
        config.regsDist = makeUniformInt(6, 24);
        config.faultModel =
            std::make_shared<mt::CacheFaultModel>(run, latency);
        config.numRegs = num_regs;
        config.seed = seed;
        total += ext::simulateContextCache(config).efficiencyCentral;
    }
    return total / seeds;
}

} // namespace

int
main()
{
    using namespace rr;

    const unsigned seeds = exp::benchSeeds();
    const unsigned threads = 32;

    std::printf("The Section 4 design space: binding granularity vs "
                "utilization\n");
    std::printf("(cache faults, C ~ U[6,24], S = 6; context cache: "
                "S = 4, demand\n spill/fill at 2 cycles/register, "
                "LRU)\n\n");

    for (const unsigned num_regs : {64u, 128u}) {
        Table table({"F", "R", "L", "fixed (coarsest)", "or-reloc",
                     "add-reloc", "context cache (finest)"});
        for (const double run : {16.0, 64.0}) {
            for (const uint64_t latency : {128ull, 512ull}) {
                const exp::ConfigMaker maker =
                    [&](mt::ArchKind arch, uint64_t seed) {
                        mt::MtConfig config = mt::fig5Config(
                            arch, num_regs, run, latency, seed);
                        config.workload.numThreads = threads;
                        if (arch == mt::ArchKind::AddReloc) {
                            config.costs.allocSucceed = 40;
                            config.costs.allocFail = 25;
                            config.costs.dealloc = 10;
                        }
                        return config;
                    };
                table.addRow(
                    {Table::num(static_cast<uint64_t>(num_regs)),
                     Table::num(run, 0), Table::num(latency),
                     Table::num(
                         exp::replicate(maker, mt::ArchKind::FixedHw,
                                        seeds)
                             .meanEfficiency),
                     Table::num(
                         exp::replicate(maker,
                                        mt::ArchKind::Flexible,
                                        seeds)
                             .meanEfficiency),
                     Table::num(
                         exp::replicate(maker,
                                        mt::ArchKind::AddReloc,
                                        seeds)
                             .meanEfficiency),
                     Table::num(cacheEff(num_regs, run, latency,
                                         threads, seeds))});
            }
        }
        std::printf("%s\n", table.render().c_str());
    }
    std::printf("Expected shape: utilization rises monotonically "
                "with binding granularity\n(fixed < OR < ADD < "
                "context cache) — but so does decode-path hardware:\n"
                "the paper's argument is that the OR point buys most "
                "of the benefit for a\nsingle gate delay, which the "
                "cycle-level numbers here cannot show.\n");
    return 0;
}
