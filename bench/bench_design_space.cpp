/**
 * @file
 * The full Section 4 design space in one table: fixed hardware
 * contexts, OR register relocation (the paper), ADD base-plus-offset
 * (Am29000), and the Named State context cache (Nuth & Dally) — the
 * spectrum from coarsest to finest register-file binding
 * granularity. Hardware complexity grows down the table (no decode
 * logic -> OR gates -> adder -> fully associative file); this bench
 * shows what each step buys in processor utilization.
 */

#include <vector>

#include "base/table.hh"
#include "exp/registry.hh"
#include "exp/sweep.hh"
#include "ext/context_cache.hh"
#include "multithread/simulation_spec.hh"
#include "multithread/workload.hh"

namespace {

using namespace rr;

double
cacheEff(unsigned num_regs, double run, uint64_t latency,
         unsigned threads, unsigned seeds)
{
    double total = 0.0;
    for (uint64_t seed = 1; seed <= seeds; ++seed) {
        ext::ContextCacheConfig config;
        config.numThreads = threads;
        config.workDist =
            makeConstant(mt::defaultWorkPerThread(run));
        config.regsDist = makeUniformInt(6, 24);
        config.faultModel =
            std::make_shared<mt::CacheFaultModel>(run, latency);
        config.numRegs = num_regs;
        config.seed = seed;
        total += ext::simulateContextCache(config).efficiencyCentral;
    }
    return total / seeds;
}

} // namespace

RR_BENCH_FIGURE(design_space,
                "The Section 4 design space: binding granularity vs "
                "utilization")
{
    const unsigned seeds = ctx.run().seeds;
    const unsigned threads = 32;
    const std::vector<double> runs = {16.0, 64.0};
    const std::vector<uint64_t> latencies = {128ull, 512ull};

    ctx.text("(cache faults, C ~ U[6,24], S = 6; context cache: "
             "S = 4, demand\n spill/fill at 2 cycles/register, "
             "LRU)");

    for (const unsigned num_regs : {64u, 128u}) {
        std::vector<exp::ReplicateRequest> requests;
        for (const double run : runs) {
            for (const uint64_t latency : latencies) {
                const exp::ConfigMaker maker =
                    [num_regs, run, latency,
                     threads](mt::ArchKind arch, uint64_t seed) {
                        mt::MtConfig config =
                            mt::SimulationSpec()
                                .cacheFaults(run, latency)
                                .arch(arch)
                                .numRegs(num_regs)
                                .threads(threads)
                                .seed(seed)
                                .build();
                        if (arch == mt::ArchKind::AddReloc) {
                            config.costs.allocSucceed = 40;
                            config.costs.allocFail = 25;
                            config.costs.dealloc = 10;
                        }
                        return config;
                    };
                requests.push_back({maker, mt::ArchKind::FixedHw});
                requests.push_back({maker, mt::ArchKind::Flexible});
                requests.push_back({maker, mt::ArchKind::AddReloc});
            }
        }
        const std::vector<exp::Replicated> results =
            exp::replicateMany(requests, seeds);

        Table table({"F", "R", "L", "fixed (coarsest)", "or-reloc",
                     "add-reloc", "context cache (finest)"});
        std::size_t slot = 0;
        for (const double run : runs) {
            for (const uint64_t latency : latencies) {
                table.addRow(
                    {Table::num(static_cast<uint64_t>(num_regs)),
                     Table::num(run, 0), Table::num(latency),
                     Table::num(results[slot].meanEfficiency),
                     Table::num(results[slot + 1].meanEfficiency),
                     Table::num(results[slot + 2].meanEfficiency),
                     Table::num(cacheEff(num_regs, run, latency,
                                         threads, seeds))});
                slot += 3;
            }
        }
        ctx.table(exp::strf("f%u", num_regs),
                  exp::strf("F = %u", num_regs), std::move(table));
    }
    ctx.text("Expected shape: utilization rises monotonically "
             "with binding granularity\n(fixed < OR < ADD < "
             "context cache) — but so does decode-path hardware:\n"
             "the paper's argument is that the OR point buys most "
             "of the benefit for a\nsingle gate delay, which the "
             "cycle-level numbers here cannot show.");
}
