#include "exp/sweep.hh"

#include <cmath>

#include "base/stats.hh"
#include "exp/engine.hh"
#include "exp/tracectl.hh"

namespace rr::exp {

namespace {

/** Outcome of one (maker, arch, seed) simulation. */
struct SeedSample
{
    double efficiency = 0.0;
    double resident = 0.0;
};

/**
 * Fold per-seed samples (in seed order) into the replicated
 * statistics. Reduction order is fixed, so the result is identical
 * however the samples were produced.
 */
Replicated
reduceSeeds(const SeedSample *samples, unsigned num_seeds)
{
    RunningStats eff;
    RunningStats resident;
    for (unsigned i = 0; i < num_seeds; ++i) {
        eff.add(samples[i].efficiency);
        resident.add(samples[i].resident);
    }
    Replicated out;
    out.meanEfficiency = eff.mean();
    out.stddev = eff.stddev();
    out.ci95 = ci95HalfWidth(out.stddev, num_seeds);
    out.meanResident = resident.mean();
    out.seeds = num_seeds;
    return out;
}

/**
 * Run one (maker, arch, seed) simulation, routed through the active
 * TraceController (audit / capture) when one is installed. @p unit
 * is the simulation's stable index within the current fan-out batch
 * (sweep point or request index) — part of the deterministic capture
 * identity.
 */
SeedSample
runOne(const ConfigMaker &maker, mt::ArchKind arch, uint64_t seed,
       uint32_t unit = 0)
{
    mt::MtConfig config = maker(arch, seed);
    TraceController *controller = TraceController::active();
    if (controller == nullptr) {
        const mt::MtStats stats = mt::simulate(config);
        return {stats.efficiencyCentral, stats.avgResidentContexts};
    }

    const SimTag tag{unit, static_cast<uint32_t>(seed),
                     static_cast<uint8_t>(arch)};
    TraceController::Session session(*controller, tag, config.costs);
    config.traceSink = session.wrap(config.traceSink);
    const mt::MtStats stats = mt::simulate(config);
    session.finish(stats);
    return {stats.efficiencyCentral, stats.avgResidentContexts};
}

/** Tell the active controller (if any) a fan-out batch starts. */
void
noteBatch()
{
    if (TraceController *controller = TraceController::active())
        controller->beginBatch();
}

} // namespace

double
ci95HalfWidth(double stddev, unsigned count)
{
    if (count < 2)
        return 0.0;
    // Two-sided 97.5% Student's t critical values for df = 1..30;
    // beyond that the normal approximation is within half a percent.
    static const double kT975[] = {
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
        2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
        2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
    const unsigned df = count - 1;
    const double t = df <= 30 ? kT975[df - 1] : 1.960;
    return t * stddev / std::sqrt(static_cast<double>(count));
}

Replicated
replicate(const ConfigMaker &maker, mt::ArchKind arch,
          unsigned num_seeds)
{
    noteBatch();
    std::vector<SeedSample> samples(num_seeds);
    runParallel(num_seeds, [&](std::size_t i) {
        samples[i] =
            runOne(maker, arch, static_cast<uint64_t>(i) + 1);
    });
    return reduceSeeds(samples.data(), num_seeds);
}

std::vector<Replicated>
replicateMany(const std::vector<ReplicateRequest> &requests,
              unsigned num_seeds)
{
    noteBatch();
    std::vector<SeedSample> samples(requests.size() * num_seeds);
    runParallel(samples.size(), [&](std::size_t i) {
        const std::size_t request = i / num_seeds;
        const uint64_t seed = i % num_seeds + 1;
        samples[i] = runOne(requests[request].maker,
                            requests[request].arch, seed,
                            static_cast<uint32_t>(request));
    });
    std::vector<Replicated> out(requests.size());
    for (std::size_t r = 0; r < requests.size(); ++r)
        out[r] = reduceSeeds(&samples[r * num_seeds], num_seeds);
    return out;
}

Table
FigurePanel::toTable() const
{
    Table table({"F", "R", "L", "fixed", "flexible", "flex/fixed"});
    for (const auto &point : points) {
        const double fixed = point.fixed.meanEfficiency;
        const double flexible = point.flexible.meanEfficiency;
        const double ratio = fixed > 0.0 ? flexible / fixed : 0.0;
        table.addRow({Table::num(static_cast<uint64_t>(numRegs)),
                      Table::num(point.runLength, 0),
                      Table::num(point.latency, 0), Table::num(fixed),
                      Table::num(flexible), Table::num(ratio, 2)});
    }
    return table;
}

FigurePanel
sweepPanel(unsigned num_regs, const PanelMaker &maker,
           const std::vector<double> &run_lengths,
           const std::vector<double> &latencies, unsigned num_seeds)
{
    FigurePanel panel;
    panel.numRegs = num_regs;
    for (const double run_length : run_lengths) {
        for (const double latency : latencies) {
            ComparisonPoint point;
            point.runLength = run_length;
            point.latency = latency;
            panel.points.push_back(point);
        }
    }

    // Flatten to (point, arch, seed) tasks; each writes its own slot.
    noteBatch();
    const std::size_t per_point = 2 * num_seeds;
    std::vector<SeedSample> samples(panel.points.size() * per_point);
    runParallel(samples.size(), [&](std::size_t i) {
        const std::size_t p = i / per_point;
        const std::size_t rest = i % per_point;
        const mt::ArchKind arch = rest < num_seeds
                                      ? mt::ArchKind::FixedHw
                                      : mt::ArchKind::Flexible;
        const uint64_t seed = rest % num_seeds + 1;
        const ComparisonPoint &point = panel.points[p];
        samples[i] = runOne(
            [&](mt::ArchKind a, uint64_t s) {
                return maker(a, point.runLength, point.latency, s);
            },
            arch, seed, static_cast<uint32_t>(p));
    });

    for (std::size_t p = 0; p < panel.points.size(); ++p) {
        panel.points[p].fixed =
            reduceSeeds(&samples[p * per_point], num_seeds);
        panel.points[p].flexible = reduceSeeds(
            &samples[p * per_point + num_seeds], num_seeds);
    }
    return panel;
}

} // namespace rr::exp
