#include "exp/sweep.hh"

#include <cmath>

#include "base/stats.hh"

namespace rr::exp {

Replicated
replicate(const ConfigMaker &maker, mt::ArchKind arch,
          unsigned num_seeds)
{
    RunningStats eff;
    RunningStats resident;
    for (unsigned seed = 1; seed <= num_seeds; ++seed) {
        const mt::MtStats stats = mt::simulate(maker(arch, seed));
        eff.add(stats.efficiencyCentral);
        resident.add(stats.avgResidentContexts);
    }
    Replicated out;
    out.meanEfficiency = eff.mean();
    out.stddev = eff.stddev();
    out.meanResident = resident.mean();
    out.seeds = num_seeds;
    return out;
}

Table
FigurePanel::toTable() const
{
    Table table({"F", "R", "L", "fixed", "flexible", "flex/fixed"});
    for (const auto &point : points) {
        const double fixed = point.fixed.meanEfficiency;
        const double flexible = point.flexible.meanEfficiency;
        const double ratio = fixed > 0.0 ? flexible / fixed : 0.0;
        table.addRow({Table::num(static_cast<uint64_t>(numRegs)),
                      Table::num(point.runLength, 0),
                      Table::num(point.latency, 0), Table::num(fixed),
                      Table::num(flexible), Table::num(ratio, 2)});
    }
    return table;
}

FigurePanel
sweepPanel(unsigned num_regs, const PanelMaker &maker,
           const std::vector<double> &run_lengths,
           const std::vector<double> &latencies, unsigned num_seeds)
{
    FigurePanel panel;
    panel.numRegs = num_regs;
    for (const double run_length : run_lengths) {
        for (const double latency : latencies) {
            ComparisonPoint point;
            point.runLength = run_length;
            point.latency = latency;
            const ConfigMaker bound =
                [&](mt::ArchKind arch, uint64_t seed) {
                    return maker(arch, run_length, latency, seed);
                };
            point.fixed =
                replicate(bound, mt::ArchKind::FixedHw, num_seeds);
            point.flexible =
                replicate(bound, mt::ArchKind::Flexible, num_seeds);
            panel.points.push_back(point);
        }
    }
    return panel;
}

} // namespace rr::exp
