#include "exp/env.hh"

#include <cstdio>
#include <cstdlib>
#include <limits>

#include "base/parse_num.hh"

namespace rr::exp {

unsigned
envUnsigned(const char *name, unsigned fallback)
{
    const char *value = std::getenv(name);
    if (value == nullptr || *value == '\0')
        return fallback;
    uint64_t parsed = 0;
    if (!parseUnsigned(value, parsed,
                       std::numeric_limits<unsigned>::max())) {
        std::fprintf(stderr,
                     "%s: expected an unsigned integer, got '%s'\n",
                     name, value);
        std::exit(64);
    }
    return static_cast<unsigned>(parsed);
}

unsigned
benchSeeds()
{
    return envUnsigned("RR_BENCH_SEEDS", 3);
}

unsigned
benchThreads()
{
    return envUnsigned("RR_BENCH_THREADS", 64);
}

bool
benchFast()
{
    return envUnsigned("RR_BENCH_FAST", 0) != 0;
}

unsigned
benchJobs()
{
    return envUnsigned("RR_BENCH_JOBS", 1);
}

} // namespace rr::exp
