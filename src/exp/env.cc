#include "exp/env.hh"

#include <cstdlib>
#include <string>

namespace rr::exp {

unsigned
envUnsigned(const char *name, unsigned fallback)
{
    const char *value = std::getenv(name);
    if (value == nullptr || *value == '\0')
        return fallback;
    char *end = nullptr;
    const unsigned long parsed = std::strtoul(value, &end, 10);
    if (end == value)
        return fallback;
    return static_cast<unsigned>(parsed);
}

unsigned
benchSeeds()
{
    return envUnsigned("RR_BENCH_SEEDS", 3);
}

unsigned
benchThreads()
{
    return envUnsigned("RR_BENCH_THREADS", 64);
}

bool
benchFast()
{
    return envUnsigned("RR_BENCH_FAST", 0) != 0;
}

} // namespace rr::exp
