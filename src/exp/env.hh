/**
 * @file
 * Environment-variable knobs for the benchmark harness, so a full
 * paper-scale reproduction and a quick smoke run use the same
 * binaries:
 *
 *   RR_BENCH_SEEDS   replications per data point (default 3)
 *   RR_BENCH_THREADS thread supply per simulation (default 64)
 *   RR_BENCH_FAST    when set nonzero, benches trim their sweeps
 */

#ifndef RR_EXP_ENV_HH
#define RR_EXP_ENV_HH

namespace rr::exp {

/** Read an unsigned env var, or @p fallback when unset/invalid. */
unsigned envUnsigned(const char *name, unsigned fallback);

/** Number of seeds per data point (RR_BENCH_SEEDS, default 3). */
unsigned benchSeeds();

/** Threads per simulation (RR_BENCH_THREADS, default 64). */
unsigned benchThreads();

/** Whether benches should trim sweeps (RR_BENCH_FAST). */
bool benchFast();

} // namespace rr::exp

#endif // RR_EXP_ENV_HH
