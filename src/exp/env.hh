/**
 * @file
 * Environment-variable knobs for the benchmark harness, so a full
 * paper-scale reproduction and a quick smoke run use the same
 * binaries (see docs/BENCH.md for the complete reference):
 *
 *   RR_BENCH_SEEDS   replications per data point (default 3)
 *   RR_BENCH_THREADS thread supply per simulation (default 64)
 *   RR_BENCH_FAST    when set nonzero, figures trim their sweeps
 *   RR_BENCH_JOBS    worker threads for the sweep engine (default 1;
 *                    0 = hardware concurrency). Results are
 *                    identical for every job count (engine.hh).
 *
 * Values must parse completely as unsigned integers: garbage such as
 * "3x" or "banana" terminates the process with exit code 64 instead
 * of being silently truncated by strtoul (the same bug class the
 * rrasm/rrsim CLIs fix with tools/arg_num.hh).
 */

#ifndef RR_EXP_ENV_HH
#define RR_EXP_ENV_HH

namespace rr::exp {

/**
 * Read an unsigned env var, or @p fallback when unset/empty.
 * A set-but-invalid value (non-numeric, trailing junk, out of
 * unsigned range) prints a diagnostic on stderr and exits with the
 * usage status (64) — a misconfigured benchmark run must not
 * silently measure the wrong thing.
 */
unsigned envUnsigned(const char *name, unsigned fallback);

/** Number of seeds per data point (RR_BENCH_SEEDS, default 3). */
unsigned benchSeeds();

/** Threads per simulation (RR_BENCH_THREADS, default 64). */
unsigned benchThreads();

/** Whether figures should trim sweeps (RR_BENCH_FAST). */
bool benchFast();

/** Sweep-engine worker threads (RR_BENCH_JOBS, default 1). */
unsigned benchJobs();

} // namespace rr::exp

#endif // RR_EXP_ENV_HH
