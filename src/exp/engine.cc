#include "exp/engine.hh"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "exp/env.hh"

namespace rr::exp {

namespace {

/// -1 = not overridden, fall back to RR_BENCH_JOBS.
std::atomic<int> g_jobs{-1};

unsigned
resolveHardware(unsigned jobs)
{
    if (jobs != 0)
        return jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

} // namespace

void
setDefaultJobs(unsigned jobs)
{
    g_jobs.store(static_cast<int>(jobs), std::memory_order_relaxed);
}

unsigned
defaultJobs()
{
    const int overridden = g_jobs.load(std::memory_order_relaxed);
    const unsigned jobs = overridden >= 0
                              ? static_cast<unsigned>(overridden)
                              : benchJobs();
    return resolveHardware(jobs);
}

void
runParallel(std::size_t count,
            const std::function<void(std::size_t)> &fn, unsigned jobs)
{
    const unsigned effective =
        jobs == 0 ? defaultJobs() : resolveHardware(jobs);
    if (effective <= 1 || count <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::mutex error_mutex;
    std::exception_ptr error;

    const auto worker = [&]() {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            try {
                fn(i);
            } catch (...) {
                const std::lock_guard<std::mutex> lock(error_mutex);
                if (!error)
                    error = std::current_exception();
            }
        }
    };

    const std::size_t num_threads =
        std::min<std::size_t>(effective, count);
    std::vector<std::thread> pool;
    pool.reserve(num_threads - 1);
    for (std::size_t t = 1; t < num_threads; ++t)
        pool.emplace_back(worker);
    worker(); // the caller is worker 0
    for (std::thread &thread : pool)
        thread.join();

    if (error)
        std::rethrow_exception(error);
}

} // namespace rr::exp
