#include "exp/tracectl.hh"

#include <atomic>

#include "exp/report.hh"

namespace rr::exp {

namespace {

std::atomic<TraceController *> g_active{nullptr};

/** Render a simulation identity for problem messages. */
std::string
tagLabel(uint32_t batch, uint32_t unit, uint8_t arch, uint32_t seed)
{
    return strf("batch %u unit %u %s seed %u", batch, unit,
                mt::archName(static_cast<mt::ArchKind>(arch)), seed);
}

} // namespace

TraceController *
TraceController::active()
{
    return g_active.load(std::memory_order_acquire);
}

void
TraceController::activate(TraceController *controller)
{
    g_active.store(controller, std::memory_order_release);
}

void
TraceController::beginBatch()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++batch_;
    if (captureBatch_ == 0)
        captureBatch_ = batch_;
}

TraceController::Session::Session(TraceController &owner,
                                  const SimTag &tag,
                                  const runtime::CostModel &costs)
    : owner_(owner), tag_(tag)
{
    if (owner_.options_.audit)
        auditor_.emplace(costs);

    {
        std::lock_guard<std::mutex> lock(owner_.mutex_);
        batch_ = owner_.batch_;
        // The capture predicate is a pure function of the simulation
        // identity (first batch, point 0, seed 1), so the captured
        // traces are the same for any worker-pool size.
        const std::size_t arch_slot =
            tag_.arch < 4 ? tag_.arch : std::size_t{3};
        if (owner_.options_.capture &&
            batch_ == owner_.captureBatch_ && tag_.unit == 0 &&
            tag_.seed == 1 && !owner_.captureReserved_[arch_slot]) {
            owner_.captureReserved_[arch_slot] = true;
            capture_.emplace(owner_.options_.maxCaptureEvents);
        }
    }

    if (auditor_ && capture_)
        tee_.emplace(&*auditor_, &*capture_);
}

trace::TraceSink *
TraceController::Session::wrap(trace::TraceSink *upstream)
{
    trace::TraceSink *own = nullptr;
    if (tee_)
        own = &*tee_;
    else if (auditor_)
        own = &*auditor_;
    else if (capture_)
        own = &*capture_;

    if (own == nullptr)
        return upstream;
    if (upstream == nullptr)
        return own;
    upstreamTee_.emplace(upstream, own);
    return &*upstreamTee_;
}

void
TraceController::Session::finish(const mt::MtStats &stats)
{
    std::vector<std::string> problems;
    uint64_t events = 0;
    if (auditor_) {
        problems = auditor_->reconcile(mt::auditTotals(stats));
        events = auditor_->eventsSeen();
    }

    std::lock_guard<std::mutex> lock(owner_.mutex_);
    ++owner_.simulations_;
    owner_.events_ += events;
    if (!problems.empty()) {
        ++owner_.problemSims_;
        owner_.problemsTotal_ += problems.size();
        owner_.problems_.emplace(
            ProblemKey{batch_, tag_.unit, tag_.arch, tag_.seed},
            std::move(problems));
    }
    if (capture_) {
        trace::ChromeStream stream;
        stream.process =
            mt::archName(static_cast<mt::ArchKind>(tag_.arch));
        stream.dropped = capture_->dropped();
        stream.events = capture_->takeEvents();
        owner_.captures_[tag_.arch] = std::move(stream);
    }
}

TraceSummary
TraceController::summary() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    TraceSummary out;
    out.simulations = simulations_;
    out.events = events_;
    out.problemSims = problemSims_;
    out.problemsTotal = problemsTotal_;
    for (const auto &[key, lines] : problems_) {
        const auto &[batch, unit, arch, seed] = key;
        for (const std::string &line : lines) {
            if (out.problems.size() >= kMaxProblemLines) {
                out.problems.push_back(
                    strf("... and %llu more violation(s)",
                         static_cast<unsigned long long>(
                             problemsTotal_ - kMaxProblemLines)));
                break;
            }
            out.problems.push_back(
                strf("[%s] %s",
                     tagLabel(batch, unit, arch, seed).c_str(),
                     line.c_str()));
        }
        if (out.problems.size() > kMaxProblemLines)
            break;
    }
    for (const auto &[arch, stream] : captures_)
        out.captures.push_back(stream);
    return out;
}

} // namespace rr::exp
