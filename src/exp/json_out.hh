/**
 * @file
 * Dependency-free streaming JSON writer for the benchmark results
 * layer (schema "rr.bench.v1", documented in docs/BENCH.md).
 *
 * Output is fully deterministic: keys are emitted in call order,
 * indentation is fixed (two spaces), and doubles are formatted with
 * std::to_chars (shortest round-trip form), so two runs that compute
 * identical numbers produce byte-identical files — the property the
 * --jobs invariance contract is verified against.
 */

#ifndef RR_EXP_JSON_OUT_HH
#define RR_EXP_JSON_OUT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace rr::exp {

/** Escape and double-quote @p text as a JSON string literal. */
std::string jsonQuote(const std::string &text);

/**
 * Format @p value as a JSON number: shortest representation that
 * round-trips to the same double. Non-finite values (which JSON
 * cannot represent) are emitted as null.
 */
std::string jsonNumber(double value);

/**
 * Structured JSON emitter. Usage:
 *
 *   JsonWriter w;
 *   w.beginObject();
 *   w.key("schema"); w.value("rr.bench.v1");
 *   w.key("points"); w.beginArray();
 *   ...
 *   w.endArray();
 *   w.endObject();
 *   std::string text = w.str();
 *
 * The writer tracks nesting and comma placement; mismatched
 * begin/end pairs are programming errors and assert in debug builds.
 */
class JsonWriter
{
  public:
    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit an object key; must be followed by a value or begin*. */
    void key(const std::string &name);

    void value(const std::string &text);
    void value(const char *text);
    void value(double number);
    void value(uint64_t number);
    void value(int number);
    void value(unsigned number);
    void value(bool flag);

    /** The complete document (call after the final end*). */
    const std::string &str() const { return out_; }

  private:
    /** Emit separators/indentation before a value or container. */
    void prepare();
    void indent();

    enum class Frame : uint8_t { Object, Array };
    std::vector<Frame> stack_;
    std::vector<bool> has_items_;
    bool pending_key_ = false;
    std::string out_;
};

} // namespace rr::exp

#endif // RR_EXP_JSON_OUT_HH
