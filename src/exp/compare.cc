#include "exp/compare.hh"

#include <charconv>
#include <cmath>

#include "exp/report.hh"

namespace rr::exp {

namespace {

/** Relative drift of @p cur against @p base. */
double
relDrift(double cur, double base)
{
    const double denom = std::max(std::fabs(base), 1e-12);
    return std::fabs(cur - base) / denom;
}

/** Whole-string numeric parse (so "n/a" and "8 / 84" are skipped). */
bool
parseCell(const std::string &cell, double &out)
{
    if (cell.empty())
        return false;
    const auto result = std::from_chars(
        cell.data(), cell.data() + cell.size(), out);
    return result.ec == std::errc() &&
           result.ptr == cell.data() + cell.size();
}

const JsonValue *
findSection(const JsonValue &doc, const std::string &id)
{
    const JsonValue *sections = doc.find("sections");
    if (sections == nullptr || !sections->isArray())
        return nullptr;
    for (const JsonValue &section : sections->elements) {
        if (section.stringOr("id", "") == id)
            return &section;
    }
    return nullptr;
}

const JsonValue *
findPoint(const JsonValue &section, double r, double l)
{
    const JsonValue *points = section.find("points");
    if (points == nullptr || !points->isArray())
        return nullptr;
    for (const JsonValue &point : points->elements) {
        if (point.numberOr("R", -1.0) == r &&
            point.numberOr("L", -1.0) == l)
            return &point;
    }
    return nullptr;
}

void
comparePanel(const std::string &where, const JsonValue &current,
             const JsonValue &baseline, const CompareOptions &options,
             CompareResult &result)
{
    const JsonValue *base_points = baseline.find("points");
    if (base_points == nullptr || !base_points->isArray())
        return;
    for (const JsonValue &base_point : base_points->elements) {
        const double r = base_point.numberOr("R", 0.0);
        const double l = base_point.numberOr("L", 0.0);
        const std::string pwhere =
            where + " R=" + strf("%g", r) + " L=" + strf("%g", l);
        const JsonValue *cur_point = findPoint(current, r, l);
        if (cur_point == nullptr) {
            result.issues.push_back(pwhere +
                                    ": point missing from current");
            continue;
        }
        for (const char *arm : {"fixed", "flexible"}) {
            const JsonValue *base_stats = base_point.find(arm);
            const JsonValue *cur_stats = cur_point->find(arm);
            if (base_stats == nullptr || cur_stats == nullptr)
                continue;
            const double base_mean =
                base_stats->numberOr("mean", 0.0);
            const double cur_mean = cur_stats->numberOr("mean", 0.0);
            const double drift = relDrift(cur_mean, base_mean);
            if (drift > options.tolerance) {
                result.issues.push_back(strf(
                    "%s: %s efficiency drifted %.1f%% "
                    "(baseline %.4f, current %.4f)",
                    pwhere.c_str(), arm, 100.0 * drift, base_mean,
                    cur_mean));
            }
        }
        const double base_ratio = base_point.numberOr("ratio", 0.0);
        const double cur_ratio = cur_point->numberOr("ratio", 0.0);
        const double ratio_drift = relDrift(cur_ratio, base_ratio);
        if (ratio_drift > options.tolerance) {
            result.issues.push_back(strf(
                "%s: flexible/fixed ratio drifted %.1f%% "
                "(baseline %.3f, current %.3f)",
                pwhere.c_str(), 100.0 * ratio_drift, base_ratio,
                cur_ratio));
        }
        // Crossover movement: the point switched sides of ratio = 1
        // by more than noise — the shape the figures are about.
        if ((base_ratio - 1.0) * (cur_ratio - 1.0) < 0.0 &&
            std::fabs(cur_ratio - base_ratio) > 0.02) {
            result.issues.push_back(strf(
                "%s: fixed-vs-flexible crossover moved "
                "(ratio %.3f -> %.3f)",
                pwhere.c_str(), base_ratio, cur_ratio));
        }
    }
}

void
compareTable(const std::string &where, const JsonValue &current,
             const JsonValue &baseline, const CompareOptions &options,
             CompareResult &result)
{
    const JsonValue *base_cols = baseline.find("columns");
    const JsonValue *cur_cols = current.find("columns");
    const JsonValue *base_rows = baseline.find("rows");
    const JsonValue *cur_rows = current.find("rows");
    if (base_cols == nullptr || cur_cols == nullptr ||
        base_rows == nullptr || cur_rows == nullptr)
        return;
    if (base_cols->elements.size() != cur_cols->elements.size()) {
        result.issues.push_back(where + ": column count changed");
        return;
    }
    if (base_rows->elements.size() != cur_rows->elements.size()) {
        result.issues.push_back(strf(
            "%s: row count changed (baseline %zu, current %zu)",
            where.c_str(), base_rows->elements.size(),
            cur_rows->elements.size()));
        return;
    }
    for (size_t r = 0; r < base_rows->elements.size(); ++r) {
        const JsonValue &base_row = base_rows->elements[r];
        const JsonValue &cur_row = cur_rows->elements[r];
        if (!base_row.isArray() || !cur_row.isArray() ||
            base_row.elements.size() != cur_row.elements.size())
            continue;
        for (size_t c = 0; c < base_row.elements.size(); ++c) {
            if (!base_row.elements[c].isString() ||
                !cur_row.elements[c].isString())
                continue;
            const std::string &base_cell =
                base_row.elements[c].string;
            const std::string &cur_cell = cur_row.elements[c].string;
            double base_num = 0.0;
            double cur_num = 0.0;
            const bool base_is_num = parseCell(base_cell, base_num);
            const bool cur_is_num = parseCell(cur_cell, cur_num);
            if (base_is_num != cur_is_num) {
                result.issues.push_back(strf(
                    "%s row %zu col %zu: cell changed kind "
                    "('%s' -> '%s')",
                    where.c_str(), r, c, base_cell.c_str(),
                    cur_cell.c_str()));
                continue;
            }
            if (!base_is_num)
                continue;
            const double drift = relDrift(cur_num, base_num);
            if (drift > options.tolerance) {
                result.issues.push_back(strf(
                    "%s row %zu col %zu: value drifted %.1f%% "
                    "(baseline %s, current %s)",
                    where.c_str(), r, c, 100.0 * drift,
                    base_cell.c_str(), cur_cell.c_str()));
            }
        }
    }
}

} // namespace

CompareResult
compareReports(const JsonValue &current, const JsonValue &baseline,
               const CompareOptions &options)
{
    CompareResult result;

    const std::string base_schema = baseline.stringOr("schema", "");
    if (base_schema != current.stringOr("schema", "")) {
        result.issues.push_back("schema version mismatch");
        return result;
    }
    const std::string figure = baseline.stringOr("figure", "");
    if (figure != current.stringOr("figure", "")) {
        result.issues.push_back(
            "figure mismatch: baseline '" + figure + "' vs '" +
            current.stringOr("figure", "") + "'");
        return result;
    }

    const JsonValue *base_run = baseline.find("run");
    const JsonValue *cur_run = current.find("run");
    if (base_run != nullptr && cur_run != nullptr) {
        for (const char *field : {"seeds", "threads"}) {
            if (base_run->numberOr(field, -1.0) !=
                cur_run->numberOr(field, -1.0)) {
                result.issues.push_back(
                    std::string("run config mismatch on '") + field +
                    "' — results are not comparable");
            }
        }
        const JsonValue *base_fast = base_run->find("fast");
        const JsonValue *cur_fast = cur_run->find("fast");
        if (base_fast != nullptr && cur_fast != nullptr &&
            base_fast->boolean != cur_fast->boolean) {
            result.issues.push_back(
                "run config mismatch on 'fast' — results are not "
                "comparable");
        }
    }
    if (!result.issues.empty())
        return result;

    const JsonValue *base_sections = baseline.find("sections");
    if (base_sections == nullptr || !base_sections->isArray()) {
        result.issues.push_back("baseline has no sections");
        return result;
    }
    for (const JsonValue &base_section : base_sections->elements) {
        const std::string id = base_section.stringOr("id", "");
        const std::string kind = base_section.stringOr("kind", "");
        if (kind == "note")
            continue; // commentary may change freely
        const std::string where = figure + "/" + id;
        const JsonValue *cur_section = findSection(current, id);
        if (cur_section == nullptr) {
            result.issues.push_back(where +
                                    ": section missing from current");
            continue;
        }
        if (cur_section->stringOr("kind", "") != kind) {
            result.issues.push_back(where + ": section kind changed");
            continue;
        }
        if (kind == "panel")
            comparePanel(where, *cur_section, base_section, options,
                         result);
        else if (kind == "table")
            compareTable(where, *cur_section, base_section, options,
                         result);
    }
    return result;
}

} // namespace rr::exp
