/**
 * @file
 * The figure registry behind tools/rrbench: every figure source in
 * bench/ registers one figure function at static-initialization time with
 * the RR_BENCH_FIGURE macro, and the driver discovers, filters, and
 * runs them through a single interface — no per-binary main()
 * boilerplate.
 *
 *   RR_BENCH_FIGURE(fig5_cache,
 *                   "Figure 5 — cache faults: efficiency vs memory "
 *                   "latency")
 *   {
 *       ctx.text("...");
 *       ctx.panel("panel_a", "...", exp::sweepPanel(...));
 *   }
 *
 * Figures are listed and executed in name order regardless of link
 * order, so --list output and run order are deterministic.
 */

#ifndef RR_EXP_REGISTRY_HH
#define RR_EXP_REGISTRY_HH

#include <functional>
#include <string>
#include <vector>

#include "exp/report.hh"

namespace rr::exp {

/** A figure body: fills the report through the builder. */
using FigureFn = std::function<void(ReportBuilder &ctx)>;

/** One registered figure. */
struct FigureInfo
{
    std::string name;  ///< registry key; also names BENCH_<name>.json
    std::string title; ///< one-line description (--list)
    FigureFn fn;

    /**
     * Performance microbenchmark (RR_PERF_FIGURE): measures simulator
     * wall-clock throughput rather than a paper result. Run only
     * under `rrbench --perf`, and excluded from normal figure runs so
     * paper sweeps never pay for timing loops.
     */
    bool perf = false;
};

/** The process-wide figure registry. */
class Registry
{
  public:
    static Registry &instance();

    /** Register a figure (called by the RR_BENCH_FIGURE macro). */
    void add(FigureInfo info);

    /** All figures, sorted by name. */
    std::vector<FigureInfo> figures() const;

    /** Run one figure and return its completed report. */
    static Report run(const FigureInfo &figure, const RunMeta &run);

  private:
    std::vector<FigureInfo> figures_;
};

/** Static registrar used by RR_BENCH_FIGURE / RR_PERF_FIGURE. */
struct FigureRegistrar
{
    FigureRegistrar(const char *name, const char *title, FigureFn fn,
                    bool perf = false)
    {
        Registry::instance().add({name, title, std::move(fn), perf});
    }
};

} // namespace rr::exp

/**
 * Define and register the figure function for @p name. The function
 * body follows the macro and receives `rr::exp::ReportBuilder &ctx`.
 */
#define RR_BENCH_FIGURE(name, title)                                   \
    static void rr_bench_figure_##name(::rr::exp::ReportBuilder &ctx); \
    static const ::rr::exp::FigureRegistrar rr_bench_registrar_##name{ \
        #name, title, &rr_bench_figure_##name};                        \
    static void rr_bench_figure_##name(::rr::exp::ReportBuilder &ctx)

/**
 * Like RR_BENCH_FIGURE, but registers a performance microbenchmark
 * run only by `rrbench --perf` (see FigureInfo::perf).
 */
#define RR_PERF_FIGURE(name, title)                                    \
    static void rr_bench_figure_##name(::rr::exp::ReportBuilder &ctx); \
    static const ::rr::exp::FigureRegistrar rr_bench_registrar_##name{ \
        #name, title, &rr_bench_figure_##name, true};                  \
    static void rr_bench_figure_##name(::rr::exp::ReportBuilder &ctx)

#endif // RR_EXP_REGISTRY_HH
