/**
 * @file
 * Baseline comparison for benchmark results (rrbench --compare):
 * detects *shape* regressions between two "rr.bench.v1" documents of
 * the same figure — efficiency or flexible/fixed-ratio drift beyond
 * a relative tolerance, movement of a fixed-vs-flexible crossover to
 * the other side of 1.0, and structural changes (missing sections,
 * points, or table rows).
 *
 * Free-form note sections and non-numeric table cells are ignored:
 * commentary may be reworded freely without failing a baseline
 * check. Run configurations (seeds/threads/fast) must match, since
 * numbers from different sweep configurations are not comparable.
 */

#ifndef RR_EXP_COMPARE_HH
#define RR_EXP_COMPARE_HH

#include <string>
#include <vector>

#include "exp/json_in.hh"

namespace rr::exp {

/** Comparison knobs. */
struct CompareOptions
{
    /**
     * Maximum relative drift |cur - base| / max(|base|, eps) allowed
     * for efficiencies, ratios, and numeric table cells.
     */
    double tolerance = 0.05;
};

/** The outcome of one figure comparison. */
struct CompareResult
{
    std::vector<std::string> issues; ///< regressions (fail the run)
    std::vector<std::string> notes;  ///< informational only

    bool ok() const { return issues.empty(); }
};

/**
 * Compare @p current against @p baseline (both parsed "rr.bench.v1"
 * documents for the same figure) under @p options.
 */
CompareResult compareReports(const JsonValue &current,
                             const JsonValue &baseline,
                             const CompareOptions &options);

} // namespace rr::exp

#endif // RR_EXP_COMPARE_HH
