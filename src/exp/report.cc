#include "exp/report.hh"

#include <cstdarg>
#include <cstdio>

#include "exp/json_in.hh"
#include "exp/json_out.hh"

namespace rr::exp {

std::string
strf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    const int size = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string out;
    if (size > 0) {
        out.resize(static_cast<size_t>(size));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    }
    va_end(args);
    return out;
}

namespace {

void
writeReplicated(JsonWriter &w, const Replicated &rep)
{
    w.beginObject();
    w.key("mean");
    w.value(rep.meanEfficiency);
    w.key("stddev");
    w.value(rep.stddev);
    w.key("ci95");
    w.value(rep.ci95);
    w.key("resident");
    w.value(rep.meanResident);
    w.key("seeds");
    w.value(rep.seeds);
    w.endObject();
}

void
writePanel(JsonWriter &w, const FigurePanel &panel)
{
    w.key("numRegs");
    w.value(panel.numRegs);
    w.key("points");
    w.beginArray();
    for (const ComparisonPoint &point : panel.points) {
        w.beginObject();
        w.key("R");
        w.value(point.runLength);
        w.key("L");
        w.value(point.latency);
        w.key("fixed");
        writeReplicated(w, point.fixed);
        w.key("flexible");
        writeReplicated(w, point.flexible);
        w.key("ratio");
        w.value(point.fixed.meanEfficiency > 0.0
                    ? point.flexible.meanEfficiency /
                          point.fixed.meanEfficiency
                    : 0.0);
        w.endObject();
    }
    w.endArray();
}

void
writeTable(JsonWriter &w, const Table &table)
{
    w.key("columns");
    w.beginArray();
    for (const std::string &header : table.headers())
        w.value(header);
    w.endArray();
    w.key("rows");
    w.beginArray();
    for (const auto &row : table.rows()) {
        w.beginArray();
        for (const std::string &cell : row)
            w.value(cell);
        w.endArray();
    }
    w.endArray();
}

const char *
kindName(ReportSection::Kind kind)
{
    switch (kind) {
      case ReportSection::Kind::Note: return "note";
      case ReportSection::Kind::Table: return "table";
      case ReportSection::Kind::Panel: return "panel";
    }
    return "?";
}

} // namespace

std::string
Report::renderText() const
{
    std::string out = title + "\n";
    out += strf("(seeds %u, threads %u%s)\n\n", run.seeds,
                run.threads, run.fast ? ", fast sweep" : "");
    for (const ReportSection &section : sections) {
        if (!section.caption.empty()) {
            out += section.caption;
            out += '\n';
        }
        switch (section.kind) {
          case ReportSection::Kind::Note:
            out += section.note;
            out += '\n';
            break;
          case ReportSection::Kind::Table:
            out += section.table->render();
            out += '\n';
            break;
          case ReportSection::Kind::Panel:
            out += section.panel->toTable().render();
            out += '\n';
            break;
        }
    }
    return out;
}

std::string
Report::toJson() const
{
    JsonWriter w;
    w.beginObject();
    w.key("schema");
    w.value("rr.bench.v1");
    w.key("figure");
    w.value(figure);
    w.key("title");
    w.value(title);
    w.key("run");
    w.beginObject();
    w.key("seeds");
    w.value(run.seeds);
    w.key("threads");
    w.value(run.threads);
    w.key("fast");
    w.value(run.fast);
    w.endObject();
    w.key("sections");
    w.beginArray();
    for (const ReportSection &section : sections) {
        w.beginObject();
        w.key("id");
        w.value(section.id);
        w.key("kind");
        w.value(kindName(section.kind));
        if (!section.caption.empty()) {
            w.key("caption");
            w.value(section.caption);
        }
        switch (section.kind) {
          case ReportSection::Kind::Note:
            w.key("text");
            w.value(section.note);
            break;
          case ReportSection::Kind::Table:
            writeTable(w, *section.table);
            break;
          case ReportSection::Kind::Panel:
            writePanel(w, *section.panel);
            break;
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str() + "\n";
}

ReportBuilder::ReportBuilder(std::string figure, std::string title,
                             RunMeta run)
{
    report_.figure = std::move(figure);
    report_.title = std::move(title);
    report_.run = run;
}

void
ReportBuilder::text(std::string note)
{
    ReportSection section;
    section.kind = ReportSection::Kind::Note;
    section.id = "note" + std::to_string(num_notes_++);
    section.note = std::move(note);
    report_.sections.push_back(std::move(section));
}

void
ReportBuilder::table(std::string id, std::string caption, Table table)
{
    ReportSection section;
    section.kind = ReportSection::Kind::Table;
    section.id = std::move(id);
    section.caption = std::move(caption);
    section.table = std::move(table);
    report_.sections.push_back(std::move(section));
}

void
ReportBuilder::panel(std::string id, std::string caption,
                     FigurePanel panel)
{
    ReportSection section;
    section.kind = ReportSection::Kind::Panel;
    section.id = std::move(id);
    section.caption = std::move(caption);
    section.panel = std::move(panel);
    report_.sections.push_back(std::move(section));
}

namespace {

void
validateStats(const JsonValue &point, const char *arm,
              const std::string &where,
              std::vector<std::string> &issues)
{
    const JsonValue *stats = point.find(arm);
    if (stats == nullptr || !stats->isObject()) {
        issues.push_back(where + ": missing '" + arm + "' object");
        return;
    }
    for (const char *field :
         {"mean", "stddev", "ci95", "resident", "seeds"}) {
        const JsonValue *value = stats->find(field);
        if (value == nullptr || !value->isNumber())
            issues.push_back(where + "." + arm + ": missing number '" +
                             field + "'");
    }
}

} // namespace

std::vector<std::string>
validateReportJson(const JsonValue &doc)
{
    std::vector<std::string> issues;
    if (!doc.isObject()) {
        issues.push_back("document is not a JSON object");
        return issues;
    }
    if (doc.stringOr("schema", "") != "rr.bench.v1")
        issues.push_back("schema is not 'rr.bench.v1'");
    if (doc.stringOr("figure", "").empty())
        issues.push_back("missing 'figure' string");
    if (doc.stringOr("title", "").empty())
        issues.push_back("missing 'title' string");

    const JsonValue *run = doc.find("run");
    if (run == nullptr || !run->isObject()) {
        issues.push_back("missing 'run' object");
    } else {
        for (const char *field : {"seeds", "threads"}) {
            const JsonValue *value = run->find(field);
            if (value == nullptr || !value->isNumber())
                issues.push_back(std::string("run: missing number '") +
                                 field + "'");
        }
        const JsonValue *fast = run->find("fast");
        if (fast == nullptr || !fast->isBool())
            issues.push_back("run: missing bool 'fast'");
    }

    const JsonValue *sections = doc.find("sections");
    if (sections == nullptr || !sections->isArray()) {
        issues.push_back("missing 'sections' array");
        return issues;
    }
    for (size_t i = 0; i < sections->elements.size(); ++i) {
        const JsonValue &section = sections->elements[i];
        const std::string where =
            "sections[" + std::to_string(i) + "]";
        if (!section.isObject()) {
            issues.push_back(where + ": not an object");
            continue;
        }
        if (section.stringOr("id", "").empty())
            issues.push_back(where + ": missing 'id'");
        const std::string kind = section.stringOr("kind", "");
        if (kind == "note") {
            const JsonValue *text = section.find("text");
            if (text == nullptr || !text->isString())
                issues.push_back(where + ": note without 'text'");
        } else if (kind == "table") {
            const JsonValue *columns = section.find("columns");
            const JsonValue *rows = section.find("rows");
            if (columns == nullptr || !columns->isArray()) {
                issues.push_back(where + ": table without 'columns'");
            } else if (rows == nullptr || !rows->isArray()) {
                issues.push_back(where + ": table without 'rows'");
            } else {
                for (const JsonValue &row : rows->elements) {
                    if (!row.isArray() ||
                        row.elements.size() !=
                            columns->elements.size()) {
                        issues.push_back(where +
                                         ": row arity != columns");
                        break;
                    }
                }
            }
        } else if (kind == "panel") {
            const JsonValue *points = section.find("points");
            if (points == nullptr || !points->isArray()) {
                issues.push_back(where + ": panel without 'points'");
                continue;
            }
            for (size_t p = 0; p < points->elements.size(); ++p) {
                const JsonValue &point = points->elements[p];
                const std::string pwhere =
                    where + ".points[" + std::to_string(p) + "]";
                if (!point.isObject()) {
                    issues.push_back(pwhere + ": not an object");
                    continue;
                }
                for (const char *axis : {"R", "L", "ratio"}) {
                    const JsonValue *value = point.find(axis);
                    if (value == nullptr || !value->isNumber())
                        issues.push_back(pwhere +
                                         ": missing number '" +
                                         axis + "'");
                }
                validateStats(point, "fixed", pwhere, issues);
                validateStats(point, "flexible", pwhere, issues);
            }
        } else {
            issues.push_back(where + ": unknown kind '" + kind + "'");
        }
    }
    return issues;
}

} // namespace rr::exp
