#include "exp/json_in.hh"

#include <cctype>
#include <charconv>
#include <cstring>

namespace rr::exp {

const JsonValue *
JsonValue::find(const std::string &name) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[key, value] : members) {
        if (key == name)
            return &value;
    }
    return nullptr;
}

double
JsonValue::numberOr(const std::string &name, double fallback) const
{
    const JsonValue *member = find(name);
    return member != nullptr && member->isNumber() ? member->number
                                                   : fallback;
}

std::string
JsonValue::stringOr(const std::string &name,
                    const std::string &fallback) const
{
    const JsonValue *member = find(name);
    return member != nullptr && member->isString() ? member->string
                                                   : fallback;
}

namespace {

/** Recursive-descent parser state over the input buffer. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {}

    std::optional<JsonValue>
    run()
    {
        JsonValue value;
        if (!parseValue(value, 0))
            return std::nullopt;
        skipSpace();
        if (pos_ != text_.size()) {
            fail("trailing garbage after document");
            return std::nullopt;
        }
        return value;
    }

  private:
    static constexpr int kMaxDepth = 64;

    bool
    fail(const std::string &message)
    {
        if (error_ != nullptr && error_->empty())
            *error_ = message + " at offset " + std::to_string(pos_);
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word, JsonValue &out, JsonValue::Kind kind,
            bool boolean)
    {
        const size_t len = std::strlen(word);
        if (text_.compare(pos_, len, word) != 0)
            return fail("invalid literal");
        pos_ += len;
        out.kind = kind;
        out.boolean = boolean;
        return true;
    }

    /** Read four hex digits of a \\u escape into @p code. */
    bool
    readHex4(unsigned &code)
    {
        if (pos_ + 4 > text_.size())
            return fail("truncated \\u escape");
        code = 0;
        for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
                code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
            else
                return fail("invalid \\u escape");
        }
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected string");
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                unsigned code = 0;
                if (!readHex4(code))
                    return false;
                // A high surrogate must be followed by a low one;
                // together they denote one astral code point.
                // Decoding each half separately would emit CESU-8,
                // which is not valid UTF-8.
                if (code >= 0xd800 && code <= 0xdbff) {
                    if (pos_ + 1 >= text_.size() ||
                        text_[pos_] != '\\' || text_[pos_ + 1] != 'u')
                        return fail("unpaired surrogate");
                    pos_ += 2;
                    unsigned low = 0;
                    if (!readHex4(low))
                        return false;
                    if (low < 0xdc00 || low > 0xdfff)
                        return fail("unpaired surrogate");
                    code = 0x10000 + ((code - 0xd800) << 10) +
                           (low - 0xdc00);
                } else if (code >= 0xdc00 && code <= 0xdfff) {
                    return fail("unpaired surrogate");
                }
                // Encode the code point as UTF-8.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else if (code < 0x10000) {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xf0 | (code >> 18));
                    out += static_cast<char>(0x80 |
                                             ((code >> 12) & 0x3f));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                return fail("invalid escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        const size_t start = pos_;
        if (consume('-')) {}
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        double value = 0.0;
        const auto result = std::from_chars(
            text_.data() + start, text_.data() + pos_, value);
        if (result.ec != std::errc() ||
            result.ptr != text_.data() + pos_) {
            pos_ = start;
            return fail("invalid number");
        }
        out.kind = JsonValue::Kind::Number;
        out.number = value;
        return true;
    }

    bool
    parseValue(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipSpace();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        const char c = text_[pos_];
        switch (c) {
          case '{': {
            ++pos_;
            out.kind = JsonValue::Kind::Object;
            skipSpace();
            if (consume('}'))
                return true;
            for (;;) {
                skipSpace();
                std::string key;
                if (!parseString(key))
                    return false;
                skipSpace();
                if (!consume(':'))
                    return fail("expected ':'");
                JsonValue value;
                if (!parseValue(value, depth + 1))
                    return false;
                out.members.emplace_back(std::move(key),
                                         std::move(value));
                skipSpace();
                if (consume(','))
                    continue;
                if (consume('}'))
                    return true;
                return fail("expected ',' or '}'");
            }
          }
          case '[': {
            ++pos_;
            out.kind = JsonValue::Kind::Array;
            skipSpace();
            if (consume(']'))
                return true;
            for (;;) {
                JsonValue value;
                if (!parseValue(value, depth + 1))
                    return false;
                out.elements.push_back(std::move(value));
                skipSpace();
                if (consume(','))
                    continue;
                if (consume(']'))
                    return true;
                return fail("expected ',' or ']'");
            }
          }
          case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.string);
          case 't':
            return literal("true", out, JsonValue::Kind::Bool, true);
          case 'f':
            return literal("false", out, JsonValue::Kind::Bool,
                           false);
          case 'n':
            return literal("null", out, JsonValue::Kind::Null, false);
          default:
            return parseNumber(out);
        }
    }

    const std::string &text_;
    std::string *error_;
    size_t pos_ = 0;
};

} // namespace

std::optional<JsonValue>
parseJson(const std::string &text, std::string *error)
{
    if (error != nullptr)
        error->clear();
    return Parser(text, error).run();
}

} // namespace rr::exp
