/**
 * @file
 * Minimal recursive-descent JSON parser for reading benchmark
 * baselines back in (rrbench --compare / --validate). Parses the
 * full JSON grammar into a JsonValue tree; no external dependencies.
 * Object member order is preserved so a parse/re-emit round trip is
 * stable.
 */

#ifndef RR_EXP_JSON_IN_HH
#define RR_EXP_JSON_IN_HH

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace rr::exp {

/** A parsed JSON document node. */
struct JsonValue
{
    enum class Kind : uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> elements;                     ///< Array
    std::vector<std::pair<std::string, JsonValue>> members; ///< Object

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Member lookup (objects only); nullptr when absent. */
    const JsonValue *find(const std::string &name) const;

    /** Member's number, or @p fallback when absent/not a number. */
    double numberOr(const std::string &name, double fallback) const;

    /** Member's string, or @p fallback when absent/not a string. */
    std::string stringOr(const std::string &name,
                         const std::string &fallback) const;
};

/**
 * Parse @p text as one JSON document (trailing whitespace allowed,
 * trailing garbage rejected). On failure returns std::nullopt and,
 * when @p error is non-null, stores a message with the byte offset.
 */
std::optional<JsonValue> parseJson(const std::string &text,
                                   std::string *error = nullptr);

} // namespace rr::exp

#endif // RR_EXP_JSON_IN_HH
