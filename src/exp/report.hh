/**
 * @file
 * Structured benchmark reports: what every registered figure
 * produces instead of printing free-form text.
 *
 * A Report is an ordered list of sections — commentary notes,
 * generic tables (base/table.hh), and fixed-vs-flexible sweep panels
 * (sweep.hh) with full per-point statistics. The same report renders
 * both ways:
 *
 *  - renderText(): the human-readable form rrbench prints, matching
 *    the style of the original standalone bench binaries;
 *  - toJson(): the machine-readable "rr.bench.v1" document written
 *    to BENCH_<figure>.json and consumed by rrbench --compare
 *    (schema reference in docs/BENCH.md).
 *
 * Figure functions receive a ReportBuilder (registry.hh) and call
 * text()/table()/panel(); section ids are the stable keys baseline
 * comparison matches on, so keep them unchanged across runs.
 */

#ifndef RR_EXP_REPORT_HH
#define RR_EXP_REPORT_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "base/table.hh"
#include "exp/sweep.hh"

namespace rr::exp {

struct JsonValue;

/** printf-style formatting into a std::string (for report notes). */
std::string strf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** The harness configuration a report was produced under. */
struct RunMeta
{
    unsigned seeds = 0;   ///< replications per data point
    unsigned threads = 0; ///< synthetic thread supply
    bool fast = false;    ///< trimmed sweeps (RR_BENCH_FAST / --fast)
};

/** One report section: a note, a table, or a sweep panel. */
struct ReportSection
{
    enum class Kind : uint8_t
    {
        Note,  ///< free-form commentary (ignored by --compare)
        Table, ///< generic table; numeric cells are compared
        Panel, ///< fixed-vs-flexible sweep with per-point statistics
    };

    Kind kind = Kind::Note;
    std::string id;      ///< stable key for baseline comparison
    std::string caption; ///< printed above the content (may be empty)
    std::string note;    ///< Kind::Note payload
    std::optional<Table> table;       ///< Kind::Table payload
    std::optional<FigurePanel> panel; ///< Kind::Panel payload
};

/** A complete figure report. */
struct Report
{
    std::string figure; ///< registry name (e.g. "fig5_cache")
    std::string title;  ///< one-line description
    RunMeta run;
    std::vector<ReportSection> sections;

    /** Human-readable rendering (what rrbench prints). */
    std::string renderText() const;

    /** The versioned "rr.bench.v1" JSON document. */
    std::string toJson() const;
};

/** The interface figure functions build their report through. */
class ReportBuilder
{
  public:
    ReportBuilder(std::string figure, std::string title, RunMeta run);

    /** Append a commentary note (auto-assigned id "note<N>"). */
    void text(std::string note);

    /** Append a generic table under the stable id @p id. */
    void table(std::string id, std::string caption, Table table);

    /** Append a sweep panel under the stable id @p id. */
    void panel(std::string id, std::string caption,
               FigurePanel panel);

    const RunMeta &run() const { return report_.run; }
    const Report &report() const { return report_; }
    Report takeReport() { return std::move(report_); }

  private:
    Report report_;
    unsigned num_notes_ = 0;
};

/**
 * Shape-check a parsed results document against the "rr.bench.v1"
 * schema (rrbench --validate, and CI's artifact validation).
 * @return a list of problems; empty means the document is valid.
 */
std::vector<std::string> validateReportJson(const JsonValue &doc);

} // namespace rr::exp

#endif // RR_EXP_REPORT_HH
