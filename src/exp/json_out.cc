#include "exp/json_out.hh"

#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace rr::exp {

std::string
jsonQuote(const std::string &text)
{
    std::string out = "\"";
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        return "null";
    char buf[32];
    const auto result =
        std::to_chars(buf, buf + sizeof(buf), value);
    assert(result.ec == std::errc());
    return std::string(buf, result.ptr);
}

void
JsonWriter::prepare()
{
    if (pending_key_) {
        pending_key_ = false;
        return;
    }
    if (!stack_.empty()) {
        assert(stack_.back() == Frame::Array &&
               "object members need a key() first");
        if (has_items_.back())
            out_ += ',';
        has_items_.back() = true;
        out_ += '\n';
        indent();
    }
}

void
JsonWriter::indent()
{
    out_.append(2 * stack_.size(), ' ');
}

void
JsonWriter::beginObject()
{
    prepare();
    out_ += '{';
    stack_.push_back(Frame::Object);
    has_items_.push_back(false);
}

void
JsonWriter::endObject()
{
    assert(!stack_.empty() && stack_.back() == Frame::Object);
    const bool had_items = has_items_.back();
    stack_.pop_back();
    has_items_.pop_back();
    if (had_items) {
        out_ += '\n';
        indent();
    }
    out_ += '}';
}

void
JsonWriter::beginArray()
{
    prepare();
    out_ += '[';
    stack_.push_back(Frame::Array);
    has_items_.push_back(false);
}

void
JsonWriter::endArray()
{
    assert(!stack_.empty() && stack_.back() == Frame::Array);
    const bool had_items = has_items_.back();
    stack_.pop_back();
    has_items_.pop_back();
    if (had_items) {
        out_ += '\n';
        indent();
    }
    out_ += ']';
}

void
JsonWriter::key(const std::string &name)
{
    assert(!stack_.empty() && stack_.back() == Frame::Object);
    assert(!pending_key_);
    if (has_items_.back())
        out_ += ',';
    has_items_.back() = true;
    out_ += '\n';
    indent();
    out_ += jsonQuote(name);
    out_ += ": ";
    pending_key_ = true;
}

void
JsonWriter::value(const std::string &text)
{
    prepare();
    out_ += jsonQuote(text);
}

void
JsonWriter::value(const char *text)
{
    value(std::string(text));
}

void
JsonWriter::value(double number)
{
    prepare();
    out_ += jsonNumber(number);
}

void
JsonWriter::value(uint64_t number)
{
    prepare();
    out_ += std::to_string(number);
}

void
JsonWriter::value(int number)
{
    prepare();
    out_ += std::to_string(number);
}

void
JsonWriter::value(unsigned number)
{
    prepare();
    out_ += std::to_string(number);
}

void
JsonWriter::value(bool flag)
{
    prepare();
    out_ += flag ? "true" : "false";
}

} // namespace rr::exp
