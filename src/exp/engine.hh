/**
 * @file
 * Deterministic parallel execution engine for the sweep harness.
 *
 * The figure sweeps decompose into a flat list of independent
 * simulation tasks (one per sweep point, architecture, and seed).
 * runParallel() executes such a list on a fixed-size worker pool;
 * each task writes only its own by-index result slot, and all
 * reductions happen afterwards in deterministic index order. The
 * job count therefore changes wall-clock time but never a single
 * digit of any result — the determinism contract documented in
 * docs/BENCH.md and enforced by tests/test_exp_sweep.cc.
 *
 * The pool size defaults to RR_BENCH_JOBS (see env.hh) and can be
 * overridden programmatically (rrbench's --jobs flag).
 */

#ifndef RR_EXP_ENGINE_HH
#define RR_EXP_ENGINE_HH

#include <cstddef>
#include <functional>

namespace rr::exp {

/**
 * Set the worker-pool size used when runParallel() is called with
 * jobs = 0. A value of 0 selects std::thread::hardware_concurrency.
 */
void setDefaultJobs(unsigned jobs);

/**
 * The effective worker-pool size: the last setDefaultJobs() value,
 * or RR_BENCH_JOBS when unset (default 1); 0 is resolved to the
 * hardware concurrency.
 */
unsigned defaultJobs();

/**
 * Run fn(0), fn(1), ..., fn(count - 1), distributing indices over
 * @p jobs worker threads (jobs = 0 uses defaultJobs()). Tasks must
 * be independent: each may touch only its own result slot. Every
 * index runs exactly once; the call returns after all complete.
 * The first exception thrown by any task is rethrown on the caller.
 */
void runParallel(std::size_t count,
                 const std::function<void(std::size_t)> &fn,
                 unsigned jobs = 0);

} // namespace rr::exp

#endif // RR_EXP_ENGINE_HH
