/**
 * @file
 * Sweep-wide trace control (rr::exp): the bridge between the trace
 * subsystem (src/trace/) and the parameter-sweep harness.
 *
 * A TraceController, when activated, observes every simulation the
 * sweep functions (sweep.hh) run:
 *
 *  - **audit**: each simulation gets its own streaming TraceAuditor
 *    (audit.hh); after the run, the auditor reconciles against the
 *    reported MtStats, and violations are aggregated under a mutex.
 *    This is how `rrbench --audit` proves cycle conservation for
 *    every point of a full figure sweep.
 *  - **capture**: a deterministic representative subset of the
 *    simulations — point 0, seed 1, both architectures of the first
 *    fan-out batch — records its full event stream (up to a cap,
 *    with explicit truncation counts) for the Chrome trace_event
 *    exporter. The capture predicate depends only on the simulation's
 *    identity, never on scheduling, so `--jobs` cannot change a byte
 *    of the exported trace (the determinism contract of
 *    docs/BENCH.md, extended to traces).
 *
 * Aggregated problems are keyed by (batch, unit, arch, seed) and
 * rendered in sorted key order, so audit output is also identical
 * for every job count.
 */

#ifndef RR_EXP_TRACECTL_HH
#define RR_EXP_TRACECTL_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "multithread/mt_processor.hh"
#include "trace/audit.hh"
#include "trace/chrome_export.hh"
#include "trace/sink.hh"

namespace rr::exp {

/** Stable identity of one simulation inside a fan-out batch. */
struct SimTag
{
    uint32_t unit = 0;  ///< point / request index within the batch
    uint32_t seed = 0;  ///< replication seed (1-based)
    uint8_t arch = 0;   ///< mt::ArchKind value
};

/** Capture sink: keeps the FIRST @p cap events, counts the rest. */
class CappedSink : public trace::TraceSink
{
  public:
    explicit CappedSink(std::size_t cap) : cap_(cap) {}

    void
    emit(const trace::TraceEvent &event) override
    {
        if (events_.size() < cap_)
            events_.push_back(event);
        else
            ++dropped_;
    }

    std::vector<trace::TraceEvent> takeEvents()
    {
        return std::move(events_);
    }
    uint64_t dropped() const { return dropped_; }

  private:
    std::size_t cap_;
    uint64_t dropped_ = 0;
    std::vector<trace::TraceEvent> events_;
};

/** What a controller observed, for reporting (rrbench --audit). */
struct TraceSummary
{
    uint64_t simulations = 0;   ///< sessions observed
    uint64_t events = 0;        ///< trace events audited
    uint64_t problemSims = 0;   ///< simulations with >= 1 violation
    uint64_t problemsTotal = 0; ///< violations found (before capping)

    /** Violation lines in deterministic order (capped, with note). */
    std::vector<std::string> problems;

    /** Captured streams in architecture-id order (empty without
     *  capture). */
    std::vector<trace::ChromeStream> captures;
};

/**
 * Observes every simulation run by the sweep harness while active.
 * Activate with TraceController::activate(&controller) before running
 * figures, deactivate with activate(nullptr) after; the sweep
 * functions consult active() per simulation.
 */
class TraceController
{
  public:
    struct Options
    {
        bool audit = true;    ///< audit every simulation
        bool capture = false; ///< capture the representative traces
        std::size_t maxCaptureEvents = 50000; ///< per-sim capture cap
    };

    explicit TraceController(const Options &options)
        : options_(options)
    {
    }

    /** The controller observing the sweeps, or null when off. */
    static TraceController *active();

    /** Install (or with null, remove) the active controller. */
    static void activate(TraceController *controller);

    /**
     * Mark the start of one fan-out batch (one replicate /
     * replicateMany / sweepPanel call). The first batch is the
     * capture batch. Called by the sweep harness.
     */
    void beginBatch();

    /**
     * Per-simulation observer, stack-allocated around mt::simulate()
     * by the sweep harness. Owns the simulation's private sinks, so
     * the emit path never takes the controller mutex.
     */
    class Session
    {
      public:
        Session(TraceController &owner, const SimTag &tag,
                const runtime::CostModel &costs);

        /**
         * The sink the simulation should emit into, chained in front
         * of @p upstream (a sink the figure itself configured, may be
         * null). Null when this session observes nothing.
         */
        trace::TraceSink *wrap(trace::TraceSink *upstream);

        /** Reconcile and hand the results to the controller. */
        void finish(const mt::MtStats &stats);

      private:
        TraceController &owner_;
        SimTag tag_;
        uint32_t batch_ = 0;
        std::optional<trace::TraceAuditor> auditor_;
        std::optional<CappedSink> capture_;
        std::optional<trace::TeeSink> tee_;
        std::optional<trace::TeeSink> upstreamTee_;
    };

    /** Snapshot of everything observed so far. */
    TraceSummary summary() const;

  private:
    friend class Session;

    /** Sort key for deterministic problem ordering. */
    using ProblemKey = std::tuple<uint32_t, uint32_t, uint8_t,
                                  uint32_t>; // batch, unit, arch, seed

    Options options_;

    mutable std::mutex mutex_;
    uint32_t batch_ = 0;
    uint32_t captureBatch_ = 0;
    bool captureReserved_[4] = {};
    uint64_t simulations_ = 0;
    uint64_t events_ = 0;
    uint64_t problemSims_ = 0;
    uint64_t problemsTotal_ = 0;
    std::map<ProblemKey, std::vector<std::string>> problems_;
    std::map<uint8_t, trace::ChromeStream> captures_;

    static constexpr std::size_t kMaxProblemLines = 64;
};

} // namespace rr::exp

#endif // RR_EXP_TRACECTL_HH
