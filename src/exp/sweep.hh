/**
 * @file
 * Parameter-sweep harness for the figure reproductions: runs a
 * configuration over multiple seeds, averages the central-window
 * efficiency, and assembles fixed-vs-flexible comparison series in
 * the shape of the paper's figures (efficiency vs latency, one curve
 * per run length, one panel per register file size).
 */

#ifndef RR_EXP_SWEEP_HH
#define RR_EXP_SWEEP_HH

#include <functional>
#include <string>
#include <vector>

#include "base/table.hh"
#include "multithread/mt_processor.hh"

namespace rr::exp {

/** Builds an MtConfig for (arch, seed); the sweep varies the rest. */
using ConfigMaker =
    std::function<mt::MtConfig(mt::ArchKind arch, uint64_t seed)>;

/** Replicated measurement of one configuration. */
struct Replicated
{
    double meanEfficiency = 0.0;
    double stddev = 0.0;
    double meanResident = 0.0;
    unsigned seeds = 0;
};

/**
 * Run @p maker for @p num_seeds seeds (1, 2, ...) with the given
 * architecture and aggregate the central-window efficiency.
 */
Replicated replicate(const ConfigMaker &maker, mt::ArchKind arch,
                     unsigned num_seeds);

/** One (x, curve) data point comparing the two architectures. */
struct ComparisonPoint
{
    double latency = 0.0;     ///< x axis (L)
    double runLength = 0.0;   ///< curve parameter (R)
    Replicated fixed;         ///< fixed-size hardware contexts
    Replicated flexible;      ///< register relocation
};

/**
 * A full figure panel: a sweep of latencies for each run length at
 * one register file size.
 */
struct FigurePanel
{
    unsigned numRegs = 0;                 ///< F for this panel
    std::vector<ComparisonPoint> points;  ///< all (R, L) points

    /**
     * Render as an aligned table with one row per point:
     * F, R, L, fixed eff, flexible eff, and the flexible/fixed ratio.
     */
    Table toTable() const;
};

/** Builds an MtConfig for (arch, R, L, seed). */
using PanelMaker = std::function<mt::MtConfig(
    mt::ArchKind arch, double run_length, double latency,
    uint64_t seed)>;

/**
 * Sweep a panel: for every run length in @p run_lengths and latency
 * in @p latencies, measure both architectures over @p num_seeds
 * seeds.
 */
FigurePanel sweepPanel(unsigned num_regs, const PanelMaker &maker,
                       const std::vector<double> &run_lengths,
                       const std::vector<double> &latencies,
                       unsigned num_seeds);

} // namespace rr::exp

#endif // RR_EXP_SWEEP_HH
