/**
 * @file
 * Parameter-sweep harness for the figure reproductions: runs a
 * configuration over multiple seeds, averages the central-window
 * efficiency, and assembles fixed-vs-flexible comparison series in
 * the shape of the paper's figures (efficiency vs latency, one curve
 * per run length, one panel per register file size).
 *
 * All fan-out goes through the deterministic worker pool in
 * engine.hh: every (point, architecture, seed) simulation is an
 * independent task, and results are reduced in fixed index order, so
 * the configured job count never changes a result digit.
 */

#ifndef RR_EXP_SWEEP_HH
#define RR_EXP_SWEEP_HH

#include <functional>
#include <string>
#include <vector>

#include "base/table.hh"
#include "multithread/mt_processor.hh"

namespace rr::exp {

/** Builds an MtConfig for (arch, seed); the sweep varies the rest. */
using ConfigMaker =
    std::function<mt::MtConfig(mt::ArchKind arch, uint64_t seed)>;

/**
 * Replicated measurement of one configuration: per-point statistics
 * over the seed replications (mean, sample stddev, and the
 * half-width of the 95% confidence interval of the mean, from
 * Student's t for the small seed counts the harness uses).
 */
struct Replicated
{
    double meanEfficiency = 0.0;
    double stddev = 0.0;
    double ci95 = 0.0; ///< 95% CI half-width of the mean (0 if n < 2)
    double meanResident = 0.0;
    unsigned seeds = 0;
};

/**
 * Half-width of the two-sided 95% confidence interval of the mean
 * for @p count samples with sample standard deviation @p stddev
 * (Student's t critical value; 0 when count < 2).
 */
double ci95HalfWidth(double stddev, unsigned count);

/**
 * Run @p maker for @p num_seeds seeds (1, 2, ...) with the given
 * architecture and aggregate the central-window efficiency. The
 * seed simulations run on the worker pool (engine.hh).
 */
Replicated replicate(const ConfigMaker &maker, mt::ArchKind arch,
                     unsigned num_seeds);

/** One architecture measurement requested from replicateMany(). */
struct ReplicateRequest
{
    ConfigMaker maker;
    mt::ArchKind arch = mt::ArchKind::Flexible;
};

/**
 * Measure many (maker, arch) configurations at once, each over
 * @p num_seeds seeds, fanning every individual simulation out to the
 * worker pool. Returns one Replicated per request, in request order
 * — the parallel equivalent of calling replicate() in a loop, for
 * figures whose tables are not plain fixed-vs-flexible panels.
 */
std::vector<Replicated>
replicateMany(const std::vector<ReplicateRequest> &requests,
              unsigned num_seeds);

/** One (x, curve) data point comparing the two architectures. */
struct ComparisonPoint
{
    double latency = 0.0;     ///< x axis (L)
    double runLength = 0.0;   ///< curve parameter (R)
    Replicated fixed;         ///< fixed-size hardware contexts
    Replicated flexible;      ///< register relocation
};

/**
 * A full figure panel: a sweep of latencies for each run length at
 * one register file size.
 */
struct FigurePanel
{
    unsigned numRegs = 0;                 ///< F for this panel
    std::vector<ComparisonPoint> points;  ///< all (R, L) points

    /**
     * Render as an aligned table with one row per point:
     * F, R, L, fixed eff, flexible eff, and the flexible/fixed ratio.
     */
    Table toTable() const;
};

/** Builds an MtConfig for (arch, R, L, seed). */
using PanelMaker = std::function<mt::MtConfig(
    mt::ArchKind arch, double run_length, double latency,
    uint64_t seed)>;

/**
 * Sweep a panel: for every run length in @p run_lengths and latency
 * in @p latencies, measure both architectures over @p num_seeds
 * seeds. All (point, arch, seed) simulations run concurrently on
 * the worker pool; the assembled panel is identical for any job
 * count.
 */
FigurePanel sweepPanel(unsigned num_regs, const PanelMaker &maker,
                       const std::vector<double> &run_lengths,
                       const std::vector<double> &latencies,
                       unsigned num_seeds);

} // namespace rr::exp

#endif // RR_EXP_SWEEP_HH
