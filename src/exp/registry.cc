#include "exp/registry.hh"

#include <algorithm>

namespace rr::exp {

Registry &
Registry::instance()
{
    static Registry registry;
    return registry;
}

void
Registry::add(FigureInfo info)
{
    figures_.push_back(std::move(info));
}

std::vector<FigureInfo>
Registry::figures() const
{
    std::vector<FigureInfo> sorted = figures_;
    std::sort(sorted.begin(), sorted.end(),
              [](const FigureInfo &a, const FigureInfo &b) {
                  return a.name < b.name;
              });
    return sorted;
}

Report
Registry::run(const FigureInfo &figure, const RunMeta &run)
{
    ReportBuilder builder(figure.name, figure.title, run);
    figure.fn(builder);
    return builder.takeReport();
}

} // namespace rr::exp
