/**
 * @file
 * Static context-boundary checker — the debugging tool suggested in
 * Section 2.4 of the paper: since the compiler (not the hardware) is
 * responsible for protection among thread contexts under OR
 * relocation, "a separate tool could be used to statically check
 * executables or object files for most violations of context
 * boundaries."
 *
 * The checker decodes every instruction in an assembled program and
 * reports register operands that address beyond the declared context
 * size. Different regions of the image may declare different sizes
 * (per-thread code), and the dual-RRM extension's bank-select bit
 * can be honoured.
 */

#ifndef RR_CHECKER_BOUNDARY_CHECKER_HH
#define RR_CHECKER_BOUNDARY_CHECKER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "assembler/assembler.hh"

namespace rr::checker {

/** Which operand slot violated the boundary. */
enum class OperandKind : uint8_t
{
    Rd,
    Rs1,
    Rs2,
};

/** @return printable operand-slot name. */
const char *operandKindName(OperandKind kind);

/** One boundary violation. */
struct Violation
{
    uint32_t address = 0;     ///< word address of the instruction
    int line = 0;             ///< source line (0 when unknown)
    OperandKind operand = OperandKind::Rd;
    unsigned reg = 0;         ///< offending context-relative register
    unsigned limit = 0;       ///< declared context size
    std::string text;         ///< disassembly

    /** Render as "addr N (line L): <disasm>: rs1 r17 >= context 16". */
    std::string str() const;
};

/** A code region with a declared context size. */
struct Region
{
    uint32_t begin = 0;   ///< first word address (inclusive)
    uint32_t end = 0;     ///< one past the last word address
    unsigned contextSize = 32; ///< registers the code may address
};

/** Checker options. */
struct CheckOptions
{
    /**
     * When nonzero, the top log2(banks) bits of each operand select
     * an RRM bank (Section 5.3) and only the remaining offset bits
     * are checked against the context size.
     */
    unsigned multiRrmBanks = 0;

    /** Operand field width w (offset interpretation for banks). */
    unsigned operandWidth = 6;

    /**
     * Treat undecodable words as violations-by-proxy? When false
     * (default) they are skipped — data words are legal in an image.
     */
    bool flagInvalidWords = false;
};

/**
 * Check the whole program against one context size.
 */
std::vector<Violation> checkProgram(const assembler::Program &program,
                                    unsigned context_size,
                                    const CheckOptions &options = {});

/**
 * Check a program whose image is divided into regions of differing
 * context sizes; words outside every region are not checked.
 */
std::vector<Violation>
checkRegions(const assembler::Program &program,
             const std::vector<Region> &regions,
             const CheckOptions &options = {});

} // namespace rr::checker

#endif // RR_CHECKER_BOUNDARY_CHECKER_HH
