#include "checker/boundary_checker.hh"

#include <sstream>

#include "base/bitops.hh"
#include "base/logging.hh"
#include "isa/instruction.hh"

namespace rr::checker {

const char *
operandKindName(OperandKind kind)
{
    switch (kind) {
      case OperandKind::Rd:
        return "rd";
      case OperandKind::Rs1:
        return "rs1";
      case OperandKind::Rs2:
        return "rs2";
    }
    return "?";
}

std::string
Violation::str() const
{
    std::ostringstream os;
    os << "addr " << address;
    if (line > 0)
        os << " (line " << line << ")";
    os << ": " << text << ": " << operandKindName(operand) << " r"
       << reg << " outside context of " << limit << " registers";
    return os.str();
}

namespace {

/** Offset bits of @p operand under the bank-select interpretation. */
unsigned
operandOffset(unsigned operand, const CheckOptions &options)
{
    if (options.multiRrmBanks <= 1)
        return operand;
    const unsigned bank_bits = log2Ceil(options.multiRrmBanks);
    const unsigned offset_bits = options.operandWidth - bank_bits;
    return operand & static_cast<unsigned>(lowMask(offset_bits));
}

void
checkWord(const assembler::Program &program, uint32_t address,
          unsigned context_size, const CheckOptions &options,
          std::vector<Violation> &out)
{
    const size_t index = address - program.base;
    const uint32_t word = program.words[index];
    const int line = index < program.lines.size()
                         ? program.lines[index]
                         : 0;

    isa::Instruction inst;
    if (!isa::decode(word, inst)) {
        if (options.flagInvalidWords) {
            Violation v;
            v.address = address;
            v.line = line;
            v.reg = 0;
            v.limit = context_size;
            v.text = "<invalid instruction word>";
            out.push_back(v);
        }
        return;
    }

    const isa::FormatInfo info = isa::formatInfo(inst.format());
    auto check = [&](bool present, unsigned reg, OperandKind kind) {
        if (!present)
            return;
        if (operandOffset(reg, options) < context_size)
            return;
        Violation v;
        v.address = address;
        v.line = line;
        v.operand = kind;
        v.reg = reg;
        v.limit = context_size;
        v.text = isa::disassemble(inst);
        out.push_back(v);
    };

    // Slot usage mirrors the decoder: B-format has no rd; R1S-style
    // formats have no rd; etc.
    check(info.hasRd, inst.rd, OperandKind::Rd);
    check(info.hasRs1, inst.rs1, OperandKind::Rs1);
    check(info.hasRs2, inst.rs2, OperandKind::Rs2);
}

} // namespace

std::vector<Violation>
checkProgram(const assembler::Program &program, unsigned context_size,
             const CheckOptions &options)
{
    rr_assert(context_size >= 1, "context size must be positive");
    std::vector<Violation> out;
    for (size_t i = 0; i < program.words.size(); ++i) {
        checkWord(program, program.base + static_cast<uint32_t>(i),
                  context_size, options, out);
    }
    return out;
}

std::vector<Violation>
checkRegions(const assembler::Program &program,
             const std::vector<Region> &regions,
             const CheckOptions &options)
{
    std::vector<Violation> out;
    for (const Region &region : regions) {
        rr_assert(region.begin <= region.end, "inverted region");
        for (uint32_t addr = region.begin; addr < region.end; ++addr) {
            if (addr < program.base ||
                addr - program.base >= program.words.size()) {
                continue;
            }
            checkWord(program, addr, region.contextSize, options, out);
        }
    }
    return out;
}

} // namespace rr::checker
