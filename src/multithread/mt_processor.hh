/**
 * @file
 * The multithreaded-node simulator used for every experiment in
 * Section 3 of the paper.
 *
 * It models one node of a coarsely multithreaded multiprocessor
 * (APRIL-like): the processor executes the current thread until a
 * long-latency fault occurs, then spends S cycles switching to the
 * next loaded, runnable context. Context allocation, loading and
 * unloading, and thread queue manipulation are charged the cycle
 * costs of Figure 4 (see runtime::CostModel). The simulation is
 * event-driven: time advances in lumps (run segments and charged
 * overheads), with a heap of outstanding fault completions.
 *
 * Two unloading policies are provided:
 *  - Never (Section 3.2): contexts stay resident while blocked; used
 *    for the cache-fault experiments "to avoid effects due to the
 *    selection of a particular thread unloading policy".
 *  - TwoPhase (Section 3.3): the competitive two-phase algorithm of
 *    Lim & Agarwal — "a context is unloaded when the cost of
 *    repeated, unsuccessful attempts to continue execution equals
 *    the cost of unloading and blocking the context". Unsuccessful
 *    resume attempts (the scheduler polling a still-blocked
 *    context) only consume processor cycles while nothing else is
 *    runnable, so each blocked resident context accrues its
 *    round-robin share of the processor's spin time; when a
 *    context's accrual reaches its unload + block cost, it is
 *    unloaded, freeing registers for queued threads. While other
 *    contexts keep the processor busy, blocked contexts accrue
 *    nothing and stay resident — waiting costs nothing then.
 *
 * The load/unload cost is based on C, the number of registers the
 * thread actually uses (Section 2.5), for BOTH architectures — the
 * paper's deliberately conservative choice in favour of the fixed
 * baseline.
 */

#ifndef RR_MULTITHREAD_MT_PROCESSOR_HH
#define RR_MULTITHREAD_MT_PROCESSOR_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/stats.hh"
#include "ckpt/snapshot.hh"
#include "multithread/context_policy.hh"
#include "multithread/event_core.hh"
#include "multithread/fault_model.hh"
#include "multithread/thread.hh"
#include "runtime/context_ring.hh"
#include "runtime/cost_model.hh"
#include "trace/audit.hh"
#include "trace/tracer.hh"

namespace rr::mt {

/** Which register-file architecture to simulate. */
enum class ArchKind : uint8_t
{
    Flexible, ///< register relocation (the paper's mechanism)
    FixedHw,  ///< conventional fixed-size hardware contexts
    AddReloc, ///< Am29000-style exact-size contexts (Section 4)
};

/** @return printable architecture name. */
const char *archName(ArchKind kind);

/** Thread unloading policy. */
enum class UnloadPolicyKind : uint8_t
{
    Never,    ///< blocked contexts stay resident (Section 3.2)
    TwoPhase, ///< competitive two-phase unloading (Section 3.3)
};

/** The synthetic thread supply (Section 3.1). */
struct WorkloadSpec
{
    unsigned numThreads = 64;

    /** Total useful cycles per thread. */
    std::shared_ptr<Distribution> workDist;

    /** Registers required per thread (C). */
    std::shared_ptr<Distribution> regsDist;

    /**
     * Optional priority per thread (0 = highest); null = all
     * threads share one class. Values are clamped to the
     * configuration's priority level count.
     */
    std::shared_ptr<Distribution> priorityDist;
};

/** Full configuration of one simulation. */
struct MtConfig
{
    WorkloadSpec workload;

    /** Stochastic fault process (shared, stateless). */
    std::shared_ptr<const FaultModel> faultModel;

    /** Figure 4 cycle costs. */
    runtime::CostModel costs;

    ArchKind arch = ArchKind::Flexible;

    /**
     * Optional policy override: when set, it is used instead of the
     * policy implied by `arch` (extensions such as the Section 5.1
     * software-only scheme plug in here).
     */
    std::function<std::unique_ptr<ContextPolicy>()> customPolicy;

    unsigned numRegs = 128;        ///< F
    unsigned operandWidth = 5;     ///< w (max context size 2^w)
    unsigned minContextSize = 4;   ///< smallest flexible context
    unsigned fixedContextRegs = 32; ///< hardware context size

    UnloadPolicyKind unloadPolicy = UnloadPolicyKind::Never;

    /**
     * Upper bound on simultaneously resident contexts; 0 = no cap.
     * Used by the Section 5.2 adaptive-residency extension to trade
     * multithreading against cache interference.
     */
    unsigned residencyCap = 0;

    uint64_t seed = 12345;

    /** Scheduler priority levels (Section 2.2 thread classes). */
    unsigned priorityLevels = 1;

    /**
     * Optional structured-event sink (not owned). Every charged
     * cycle is emitted as a typed trace::TraceEvent; null (the
     * default) reduces each emission site to one branch.
     */
    trace::TraceSink *traceSink = nullptr;

    /** Central measurement window (transient exclusion). */
    double statsLoFrac = 0.2;
    double statsHiFrac = 0.8;

    // ---- checkpointing (rr.ckpt.v1; none of these affect results) --

    /**
     * Write a checkpoint to `checkpointPath` every N event-loop
     * iterations (0 = never). Snapshots land at the event boundary —
     * the top of the loop — so a run resumed from any of them
     * produces the identical remaining trace and statistics.
     */
    uint64_t checkpointEvery = 0;

    /** Where periodic checkpoints are written (latest wins). */
    std::string checkpointPath;

    /** Restore from this checkpoint file instead of starting fresh. */
    std::string resumeFrom;
};

/** Results of one simulation. */
struct MtStats
{
    // Cycle accounting; the categories partition totalCycles.
    uint64_t totalCycles = 0;
    uint64_t usefulCycles = 0;
    uint64_t idleCycles = 0;
    uint64_t switchCycles = 0;
    uint64_t allocCycles = 0;
    uint64_t deallocCycles = 0;
    uint64_t loadCycles = 0;
    uint64_t unloadCycles = 0;
    uint64_t queueCycles = 0;

    // Event counts.
    uint64_t faults = 0;
    uint64_t cacheFaults = 0;
    uint64_t syncFaults = 0;
    uint64_t loads = 0;
    uint64_t unloads = 0;
    uint64_t allocSuccesses = 0;
    uint64_t allocFailures = 0;

    // Derived measures.
    double efficiencyCentral = 0.0; ///< useful rate, central window
    double efficiencyTotal = 0.0;   ///< useful rate, whole run
    double avgResidentContexts = 0.0; ///< time-weighted mean residency
    unsigned maxResidentContexts = 0;
    unsigned threadsFinished = 0;

    /** Sum of all overhead + useful + idle buckets (= totalCycles). */
    uint64_t accountedCycles() const;
};

/**
 * The reconciliation targets a simulation's trace must conserve
 * against (feed to trace::TraceAuditor::reconcile()).
 */
trace::AuditTotals auditTotals(const MtStats &stats);

/** Single-node multithreaded processor simulator. */
class MtProcessor : public ckpt::Restorable
{
  public:
    explicit MtProcessor(MtConfig config);

    /**
     * Run the workload to completion and return the statistics.
     * Honors MtConfig::resumeFrom (restore before the first event)
     * and MtConfig::checkpointEvery / checkpointPath (periodic
     * snapshots at event boundaries).
     */
    MtStats run();

    // ---- stepwise execution (run() = begin + step* + finish) -------

    /**
     * Create threads and perform the initial refill — everything up
     * to the first event-loop iteration. Idempotent via run(); call
     * directly only when driving step() by hand.
     */
    void begin();

    /**
     * Execute one event-loop iteration: drain due completions, then
     * run the next context or idle/evict. Every boundary between
     * step() calls is a valid snapshot point.
     */
    void step();

    /** @return true when every thread has finished. */
    bool done() const
    {
        return finished_ >= config_.workload.numThreads;
    }

    /** Finalize derived statistics and flush the tracer. */
    MtStats finish();

    /** Event-loop iterations executed so far. */
    uint64_t eventIndex() const { return eventIndex_; }

    // ---- checkpointing (rr.ckpt.v1, kind "mt") ---------------------

    /**
     * Configuration fingerprint for cross-spec restore detection:
     * covers the workload, fault model, cost model, architecture and
     * geometry, policies, seed, and measurement window — everything
     * that determines the simulation's future, and nothing that does
     * not (sinks, checkpoint settings).
     */
    std::string fingerprint() const;

    /** Complete simulation state as a sealed rr.ckpt.v1 document. */
    std::vector<uint8_t> snapshot() const;

    /**
     * Restore from a sealed document produced by snapshot() under a
     * matching configuration. Throws ckpt::Error on version, kind,
     * or fingerprint mismatch and on any malformed section.
     */
    void restore(const std::vector<uint8_t> &document);

    void saveState(ckpt::Writer &writer) const override;
    void restoreState(const ckpt::Reader &reader) override;

    /** Thread table after run() (per-thread statistics). */
    const std::vector<Thread> &threads() const { return threads_; }

    /** The configuration in use. */
    const MtConfig &config() const { return config_; }

    /**
     * The completion-event core (heap statistics survive run(); used
     * by tests and the perf benchmarks to assert bounded growth).
     */
    const EventCore &completionCore() const { return completions_; }

  private:
    /** Sentinel for rrmIndex_ slots with no resident thread. */
    static constexpr unsigned kNoThread = ~0u;

    void createThreads();
    std::unique_ptr<ContextPolicy> makePolicy() const;

    /** Event template stamped with the architecture and current time. */
    trace::TraceEvent traceEvent(trace::EventKind kind,
                                 uint64_t cycles) const;

    /** Charge @p cycles of overhead to @p bucket and advance time. */
    void charge(uint64_t cycles, uint64_t &bucket);

    /** Track the time-weighted resident-context integral. */
    void noteResidencyChange(int delta);

    /** Wake fault completions due at or before now. */
    void processCompletions();

    /** The two-phase waiting budget for thread @p t (cycles). */
    uint64_t twoPhaseBudget(const Thread &t) const;

    /** Unload blocked, loaded thread @p tid (two-phase second phase). */
    void evict(unsigned tid);

    /**
     * Advance through an interval with nothing runnable: spin-poll
     * time accrues against blocked resident contexts (two-phase) and
     * may trigger an eviction; otherwise idle until the next fault
     * completion.
     */
    void idleOrEvict();

    /** Load threads from the queue head while allocation succeeds. */
    void refill();

    /** Run the current ring context until its next fault or finish. */
    void runNext();

    /** Earliest pending fault completion; false when none. */
    bool nextCompletionTime(uint64_t &out);

    /** Resident-context index: rrm -> thread id (kNoThread = free). */
    unsigned rrmLookup(uint32_t rrm) const;
    void rrmInsert(uint32_t rrm, unsigned tid);
    void rrmErase(uint32_t rrm);

    MtConfig config_;
    std::unique_ptr<ContextPolicy> policy_;
    std::vector<Thread> threads_;
    trace::Tracer tracer_;

    uint64_t now_ = 0;
    uint64_t useful_ = 0;
    unsigned finished_ = 0;
    bool begun_ = false;
    uint64_t eventIndex_ = 0;

    // Zero-allocation steady state: the rrm index is a flat array
    // over register numbers, the software thread queue a reserved
    // vector, and the completion heap an EventCore — all sized up
    // front in createThreads(), so the event loop never allocates.
    runtime::PriorityRing ring_{1};
    std::vector<unsigned> rrmIndex_;
    std::vector<unsigned> threadQueue_;

    EventCore completions_;

    IntervalRecorder recorder_;
    MtStats stats_;

    unsigned residentCount_ = 0;
    uint64_t lastResidencyTime_ = 0;
    double residencyIntegral_ = 0.0;
};

/** Convenience: construct, run, and return the statistics. */
MtStats simulate(MtConfig config);

} // namespace rr::mt

#endif // RR_MULTITHREAD_MT_PROCESSOR_HH
