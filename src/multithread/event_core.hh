/**
 * @file
 * Zero-allocation completion-event core for the event-driven
 * multithreaded simulator (MtProcessor).
 *
 * The simulator's inner loop pushes one fault-completion event per
 * blocking episode and pops the earliest one. Epoch-mismatched
 * ("stale") events — left behind when a blocking episode ends through
 * another path — were previously discarded only when they reached the
 * top of a std::priority_queue, so a workload whose threads re-fault
 * faster than stale entries drain could grow the heap without bound
 * within one run. EventCore keeps the exact pop discipline of the old
 * priority_queue (std::push_heap / std::pop_heap over a vector with
 * the same earliest-time-first comparator, so equal-time ties resolve
 * identically) and adds:
 *
 *  - O(1) stale/live accounting: the owner calls invalidateThread()
 *    whenever a thread's block epoch advances, so the core always
 *    knows how many heap entries are dead.
 *  - bounded growth: when stale entries outnumber live ones the heap
 *    is compacted in place (erase + make_heap), bounding the heap at
 *    2x the live event count. Compaction only ever removes events the
 *    owner has already invalidated, so it cannot change which events
 *    are delivered — only reclaim memory earlier than lazy deletion
 *    would. (Current workloads never strand events, so compaction is
 *    exercised by unit tests and by re-faulting extensions.)
 *  - up-front reservation (reserve()) so steady-state operation
 *    performs no allocation: the live set is bounded by one event per
 *    thread.
 */

#ifndef RR_MULTITHREAD_EVENT_CORE_HH
#define RR_MULTITHREAD_EVENT_CORE_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/logging.hh"
#include "ckpt/snapshot.hh"

namespace rr::mt {

/** One pending fault completion; earliest time pops first. */
struct CompletionEvent
{
    uint64_t time = 0;   ///< absolute completion cycle
    uint64_t epoch = 0;  ///< thread block epoch the event belongs to
    unsigned tid = 0;    ///< thread id
};

/** Min-heap of completion events with stale-entry compaction. */
class EventCore : public ckpt::Restorable
{
  public:
    /** Pre-size all storage for @p threads concurrent threads. */
    void
    reserve(std::size_t threads)
    {
        heap_.reserve(threads);
        liveCount_.reserve(threads);
        lastEpoch_.reserve(threads);
        staleBelow_.reserve(threads);
    }

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    /** Earliest pending event (live or stale). */
    const CompletionEvent &
    top() const
    {
        rr_assert(!heap_.empty(), "top() on empty event core");
        return heap_.front();
    }

    /** Add a pending completion for its thread's current epoch. */
    void
    push(const CompletionEvent &event)
    {
        ensureThread(event.tid);
        heap_.push_back(event);
        std::push_heap(heap_.begin(), heap_.end(), Later{});
        ++liveCount_[event.tid];
        lastEpoch_[event.tid] = event.epoch;
        maxSize_ = std::max(maxSize_, heap_.size());
    }

    /** Pop the top event, which the owner matched as live. */
    void
    pop()
    {
        const unsigned tid = top().tid;
        rr_assert(liveCount_[tid] > 0, "live pop without live event");
        --liveCount_[tid];
        popRaw();
    }

    /** Pop the top event, which the owner found stale. */
    void
    popStale()
    {
        rr_assert(stale_ > 0, "stale pop without stale events");
        --stale_;
        popRaw();
    }

    /**
     * Note that @p tid's block epoch advanced: all its pending events
     * are now stale. Compacts the heap when stale entries outnumber
     * live ones.
     */
    void
    invalidateThread(unsigned tid)
    {
        if (tid >= liveCount_.size() || liveCount_[tid] == 0)
            return;
        stale_ += liveCount_[tid];
        liveCount_[tid] = 0;
        staleBelow_[tid] = lastEpoch_[tid];
        if (stale_ > heap_.size() - stale_)
            compact();
    }

    /** Live (deliverable) events currently pending. */
    std::size_t live() const { return heap_.size() - stale_; }

    /** Stale (invalidated, undelivered) events currently pending. */
    std::size_t stale() const { return stale_; }

    /** High-water mark of the heap across the core's lifetime. */
    std::size_t maxSize() const { return maxSize_; }

    /** Number of compaction passes performed. */
    uint64_t compactions() const { return compactions_; }

    // ---- checkpointing (rr.ckpt.v1, section 0x20) -------------------

    /**
     * Serializes the heap vector in its *raw array order*, not
     * sorted: std::push_heap/pop_heap tie-breaking among equal-time
     * events depends on element positions, so restoring the exact
     * layout is what makes post-restore delivery byte-identical.
     */
    void
    saveState(ckpt::Writer &writer) const override
    {
        std::vector<uint64_t> times, epochs;
        std::vector<uint32_t> tids;
        times.reserve(heap_.size());
        epochs.reserve(heap_.size());
        tids.reserve(heap_.size());
        for (const CompletionEvent &event : heap_) {
            times.push_back(event.time);
            epochs.push_back(event.epoch);
            tids.push_back(event.tid);
        }
        writer.beginSection(kCkptSection);
        writer.u64vec(1, times);
        writer.u64vec(2, epochs);
        writer.u32vec(3, tids);
        writer.u32vec(4, liveCount_);
        writer.u64vec(5, lastEpoch_);
        writer.u64vec(6, staleBelow_);
        writer.u64(7, stale_);
        writer.u64(8, maxSize_);
        writer.u64(9, compactions_);
        writer.endSection();
    }

    void
    restoreState(const ckpt::Reader &reader) override
    {
        const std::vector<uint64_t> times =
            reader.u64vec(kCkptSection, 1);
        const std::vector<uint64_t> epochs =
            reader.u64vec(kCkptSection, 2);
        const std::vector<uint32_t> tids =
            reader.u32vec(kCkptSection, 3);
        if (times.size() != epochs.size() ||
            times.size() != tids.size())
            throw ckpt::Error("event heap arrays disagree in length");
        liveCount_ = reader.u32vec(kCkptSection, 4);
        lastEpoch_ = reader.u64vec(kCkptSection, 5);
        staleBelow_ = reader.u64vec(kCkptSection, 6);
        if (liveCount_.size() != lastEpoch_.size() ||
            liveCount_.size() != staleBelow_.size())
            throw ckpt::Error(
                "event accounting arrays disagree in length");
        heap_.clear();
        heap_.reserve(times.size());
        std::size_t liveTotal = 0;
        for (std::size_t i = 0; i < times.size(); ++i) {
            if (tids[i] >= liveCount_.size())
                throw ckpt::Error("event names a thread beyond the "
                                  "accounting arrays");
            heap_.push_back({times[i], epochs[i], tids[i]});
        }
        for (const uint32_t count : liveCount_)
            liveTotal += count;
        stale_ = reader.u64(kCkptSection, 7);
        if (liveTotal + stale_ != heap_.size())
            throw ckpt::Error("event live/stale accounting does not "
                              "cover the heap");
        if (!std::is_heap(heap_.begin(), heap_.end(), Later{}))
            throw ckpt::Error("event heap order is corrupt");
        maxSize_ = reader.u64(kCkptSection, 8);
        compactions_ = reader.u64(kCkptSection, 9);
    }

    /** Checkpoint section tag used by EventCore. */
    static constexpr uint32_t kCkptSection = 0x20;

  private:
    /** Same ordering as the old priority_queue: min-heap on time. */
    struct Later
    {
        bool
        operator()(const CompletionEvent &a,
                   const CompletionEvent &b) const
        {
            return a.time > b.time;
        }
    };

    void
    popRaw()
    {
        std::pop_heap(heap_.begin(), heap_.end(), Later{});
        heap_.pop_back();
    }

    void
    ensureThread(unsigned tid)
    {
        if (tid >= liveCount_.size()) {
            liveCount_.resize(tid + 1, 0);
            lastEpoch_.resize(tid + 1, 0);
            staleBelow_.resize(tid + 1, 0);
        }
    }

    /** Drop every stale event and re-heapify the survivors. */
    void
    compact()
    {
        std::erase_if(heap_, [this](const CompletionEvent &event) {
            return event.epoch <= staleBelow_[event.tid];
        });
        std::make_heap(heap_.begin(), heap_.end(), Later{});
        stale_ = 0;
        ++compactions_;
    }

    std::vector<CompletionEvent> heap_;

    // Per-thread bookkeeping. Block epochs are strictly increasing
    // and every push carries the thread's current epoch, so an event
    // is stale exactly when its epoch is at or below the epoch that
    // was current at the thread's last invalidation.
    std::vector<uint32_t> liveCount_;
    std::vector<uint64_t> lastEpoch_;
    std::vector<uint64_t> staleBelow_;

    std::size_t stale_ = 0;
    std::size_t maxSize_ = 0;
    uint64_t compactions_ = 0;
};

} // namespace rr::mt

#endif // RR_MULTITHREAD_EVENT_CORE_HH
