/**
 * @file
 * Synthetic thread state for the multithreading experiments
 * (Section 3.1: "a supply of synthetic threads was created with
 * particular fault rates and fault service latencies").
 */

#ifndef RR_MULTITHREAD_THREAD_HH
#define RR_MULTITHREAD_THREAD_HH

#include <cstdint>
#include <optional>

#include "base/rng.hh"
#include "runtime/context_allocator.hh"

namespace rr::mt {

/** Lifecycle of a synthetic thread. */
enum class ThreadState : uint8_t
{
    UnloadedReady,   ///< runnable, waiting in the software thread queue
    LoadedReady,     ///< resident and runnable (in the context ring)
    Running,         ///< currently executing
    BlockedLoaded,   ///< fault outstanding, context still resident
    BlockedUnloaded, ///< fault outstanding, context released
    Finished,        ///< all work completed
};

/** @return printable state name. */
constexpr const char *
threadStateName(ThreadState state)
{
    switch (state) {
      case ThreadState::UnloadedReady:
        return "unloaded-ready";
      case ThreadState::LoadedReady:
        return "loaded-ready";
      case ThreadState::Running:
        return "running";
      case ThreadState::BlockedLoaded:
        return "blocked-loaded";
      case ThreadState::BlockedUnloaded:
        return "blocked-unloaded";
      case ThreadState::Finished:
        return "finished";
    }
    return "unknown";
}

/** One synthetic thread. */
struct Thread
{
    unsigned id = 0;
    unsigned regsUsed = 0;       ///< C: registers this thread requires
    uint64_t totalWork = 0;      ///< useful cycles to execute in total
    uint64_t remainingWork = 0;  ///< useful cycles still to execute

    ThreadState state = ThreadState::UnloadedReady;

    /**
     * Scheduling priority (0 = highest). The software scheduler
     * keeps one NextRRM ring per priority level (Section 2.2:
     * "separate linked lists of register relocation masks could be
     * maintained to implement different thread classes or
     * priorities").
     */
    unsigned priority = 0;

    /** Simulation time at which the thread finished (0 if running). */
    uint64_t finishTime = 0;

    /** Resident context, when loaded. */
    std::optional<runtime::Context> context;

    /** Absolute completion time of the outstanding fault. */
    uint64_t faultCompletion = 0;

    /** Time at which the thread blocked (two-phase accounting). */
    uint64_t blockedAt = 0;

    /**
     * Monotonic counter bumped on every block/unblock; stale heap
     * entries are detected by comparing epochs.
     */
    uint64_t blockEpoch = 0;

    /**
     * Wasted-poll cycles accrued against this blocked, loaded
     * context (two-phase competitive accounting): while the
     * processor spins with nothing runnable, each blocked resident
     * context accrues its share of the spin time; the context is
     * unloaded when the accrual reaches the cost of unloading and
     * blocking it.
     */
    uint64_t spinAccrued = 0;

    /** Private random stream for run lengths and latencies. */
    Rng rng{0};

    // Per-thread statistics.
    uint64_t faults = 0;
    uint64_t timesLoaded = 0;
    uint64_t timesUnloaded = 0;
};

} // namespace rr::mt

#endif // RR_MULTITHREAD_THREAD_HH
