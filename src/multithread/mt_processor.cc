#include "multithread/mt_processor.hh"

#include "base/logging.hh"

namespace rr::mt {

const char *
archName(ArchKind kind)
{
    switch (kind) {
      case ArchKind::Flexible:
        return "flexible";
      case ArchKind::FixedHw:
        return "fixed";
      case ArchKind::AddReloc:
        return "add";
    }
    return "unknown";
}

uint64_t
MtStats::accountedCycles() const
{
    return usefulCycles + idleCycles + switchCycles + allocCycles +
           deallocCycles + loadCycles + unloadCycles + queueCycles;
}

trace::AuditTotals
auditTotals(const MtStats &stats)
{
    trace::AuditTotals totals;
    totals.totalCycles = stats.totalCycles;
    totals.usefulCycles = stats.usefulCycles;
    totals.idleCycles = stats.idleCycles;
    totals.switchCycles = stats.switchCycles;
    totals.allocCycles = stats.allocCycles;
    totals.deallocCycles = stats.deallocCycles;
    totals.loadCycles = stats.loadCycles;
    totals.unloadCycles = stats.unloadCycles;
    totals.queueCycles = stats.queueCycles;
    totals.faults = stats.faults;
    totals.loads = stats.loads;
    totals.unloads = stats.unloads;
    totals.allocSuccesses = stats.allocSuccesses;
    totals.allocFailures = stats.allocFailures;
    totals.threadsFinished = stats.threadsFinished;
    return totals;
}

MtProcessor::MtProcessor(MtConfig config)
    : config_(std::move(config)), ring_(std::max(1u, config_.priorityLevels))
{
    rr_assert(config_.workload.workDist != nullptr,
              "workload work distribution missing");
    rr_assert(config_.workload.regsDist != nullptr,
              "workload register distribution missing");
    rr_assert(config_.faultModel != nullptr, "fault model missing");
    rr_assert(config_.workload.numThreads > 0, "no threads");
    policy_ = makePolicy();
    tracer_.attach(config_.traceSink);
}

trace::TraceEvent
MtProcessor::traceEvent(trace::EventKind kind, uint64_t cycles) const
{
    trace::TraceEvent event;
    event.kind = kind;
    event.arch = static_cast<uint8_t>(config_.arch);
    event.cycle = now_;
    event.cycles = cycles;
    return event;
}

std::unique_ptr<ContextPolicy>
MtProcessor::makePolicy() const
{
    if (config_.customPolicy)
        return config_.customPolicy();
    switch (config_.arch) {
      case ArchKind::Flexible:
        return std::make_unique<FlexibleContextPolicy>(
            config_.numRegs, config_.operandWidth,
            config_.minContextSize);
      case ArchKind::FixedHw:
        return std::make_unique<FixedContextPolicy>(
            config_.numRegs, config_.fixedContextRegs);
      case ArchKind::AddReloc:
        return std::make_unique<AddContextPolicy>(config_.numRegs);
    }
    rr_panic("unknown architecture");
}

unsigned
MtProcessor::rrmLookup(uint32_t rrm) const
{
    rr_assert(rrm < rrmIndex_.size() && rrmIndex_[rrm] != kNoThread,
              "ring rrm without thread");
    return rrmIndex_[rrm];
}

void
MtProcessor::rrmInsert(uint32_t rrm, unsigned tid)
{
    // Built-in policies hand out rrm values below the file size; a
    // custom policy may exceed it, so grow on demand (rare, not on
    // the steady-state path).
    if (rrm >= rrmIndex_.size())
        rrmIndex_.resize(rrm + 1, kNoThread);
    rrmIndex_[rrm] = tid;
}

void
MtProcessor::rrmErase(uint32_t rrm)
{
    rr_assert(rrm < rrmIndex_.size(), "erasing unknown rrm");
    rrmIndex_[rrm] = kNoThread;
}

void
MtProcessor::createThreads()
{
    // Reserve all steady-state storage up front: at most one pending
    // completion and one queue slot per thread.
    threadQueue_.reserve(config_.workload.numThreads);
    completions_.reserve(config_.workload.numThreads);
    rrmIndex_.assign(config_.numRegs, kNoThread);

    Rng master(config_.seed);
    // Priorities draw from their own stream so that enabling them
    // does not perturb the workload's run-length/latency draws.
    Rng priority_rng(config_.seed ^ 0xa5a5a5a55a5a5a5aull);
    threads_.resize(config_.workload.numThreads);
    for (unsigned i = 0; i < config_.workload.numThreads; ++i) {
        Thread &t = threads_[i];
        t.id = i;
        t.rng = master.split();
        t.regsUsed = static_cast<unsigned>(
            config_.workload.regsDist->sample(t.rng));
        rr_assert(t.regsUsed >= 1, "thread requires zero registers");
        t.totalWork =
            std::max<uint64_t>(1, config_.workload.workDist->sample(t.rng));
        if (config_.workload.priorityDist) {
            const uint64_t level =
                config_.workload.priorityDist->sample(priority_rng);
            t.priority = static_cast<unsigned>(std::min<uint64_t>(
                level, std::max(1u, config_.priorityLevels) - 1));
        }
        t.remainingWork = t.totalWork;
        t.state = ThreadState::UnloadedReady;
        threadQueue_.push_back(i);
    }
}

void
MtProcessor::charge(uint64_t cycles, uint64_t &bucket)
{
    bucket += cycles;
    now_ += cycles;
}

void
MtProcessor::noteResidencyChange(int delta)
{
    residencyIntegral_ += static_cast<double>(residentCount_) *
                          static_cast<double>(now_ - lastResidencyTime_);
    lastResidencyTime_ = now_;
    residentCount_ = static_cast<unsigned>(
        static_cast<int>(residentCount_) + delta);
    stats_.maxResidentContexts =
        std::max(stats_.maxResidentContexts, residentCount_);
}

void
MtProcessor::processCompletions()
{
    for (;;) {
        // Completions apply to both blocked states; prune manually.
        while (!completions_.empty()) {
            const CompletionEvent &top = completions_.top();
            const Thread &t = threads_[top.tid];
            if (t.blockEpoch == top.epoch &&
                (t.state == ThreadState::BlockedLoaded ||
                 t.state == ThreadState::BlockedUnloaded)) {
                break;
            }
            completions_.popStale();
        }
        if (completions_.empty() || completions_.top().time > now_)
            return;

        const CompletionEvent event = completions_.top();
        completions_.pop();
        Thread &t = threads_[event.tid];
        ++t.blockEpoch; // invalidate any pending unload deadline
        completions_.invalidateThread(t.id);

        if (tracer_.enabled()) {
            auto e = traceEvent(trace::EventKind::FaultComplete, 0);
            e.tid = t.id;
            if (t.context)
                e.ctx = t.context->rrm;
            e.aux = now_ - t.blockedAt;
            tracer_.emit(e);
        }

        if (t.state == ThreadState::BlockedLoaded) {
            // The context is still resident: it simply becomes
            // runnable again in the ring.
            t.state = ThreadState::LoadedReady;
            ring_.insert(t.context->rrm, t.priority);
        } else {
            // The context was unloaded while blocked: the thread
            // re-enters the software thread queue (10-cycle insert)
            // and must be re-allocated + re-loaded before running.
            charge(config_.costs.queueOp, stats_.queueCycles);
            if (tracer_.enabled()) {
                auto e = traceEvent(trace::EventKind::Queue,
                                    config_.costs.queueOp);
                e.tid = t.id;
                tracer_.emit(e);
            }
            t.state = ThreadState::UnloadedReady;
            threadQueue_.push_back(t.id);
            refill();
        }
    }
}

uint64_t
MtProcessor::twoPhaseBudget(const Thread &t) const
{
    // Competitive waiting: spin for as long as blocking would cost.
    // Blocking a context and resuming it later costs the unload, the
    // deallocation, a queue insert and remove, a fresh allocation,
    // and the reload — all avoided if the fault completes while the
    // context spins.
    const runtime::CostModel &costs = config_.costs;
    return costs.unloadCost(t.regsUsed) + costs.dealloc +
           2 * costs.queueOp + costs.allocSucceed +
           costs.loadCost(t.regsUsed);
}

void
MtProcessor::evict(unsigned tid)
{
    Thread &t = threads_[tid];
    rr_assert(t.state == ThreadState::BlockedLoaded,
              "evicting thread in state ", threadStateName(t.state));

    // Two-phase second phase: the accrued cost of failed resume
    // attempts has reached the cost of unloading — give up the
    // registers.
    const uint32_t rrm = t.context->rrm;
    charge(config_.costs.unloadCost(t.regsUsed), stats_.unloadCycles);
    if (tracer_.enabled()) {
        auto e = traceEvent(trace::EventKind::Unload,
                            config_.costs.unloadCost(t.regsUsed));
        e.tid = t.id;
        e.ctx = rrm;
        e.regs = t.regsUsed;
        tracer_.emit(e);
    }
    charge(config_.costs.dealloc, stats_.deallocCycles);
    if (tracer_.enabled()) {
        auto e = traceEvent(trace::EventKind::Free, config_.costs.dealloc);
        e.tid = t.id;
        e.ctx = rrm;
        e.aux = trace::TraceEvent::kFreeEvicted;
        tracer_.emit(e);
    }
    policy_->release(*t.context);
    rrmErase(t.context->rrm);
    t.context.reset();
    t.state = ThreadState::BlockedUnloaded;
    ++t.timesUnloaded;
    ++stats_.unloads;
    noteResidencyChange(-1);
}

void
MtProcessor::refill()
{
    // First-fit scan of the software thread queue: FCFS order, but a
    // thread whose context cannot fit the free registers does not
    // block smaller threads behind it. (With fixed hardware contexts
    // every thread needs one identical slot, so this degenerates to
    // plain FCFS.)
    auto it = threadQueue_.begin();
    while (it != threadQueue_.end()) {
        if (config_.residencyCap != 0 &&
            residentCount_ >= config_.residencyCap) {
            return; // adaptive limit (Section 5.2): leave space idle
        }
        const unsigned tid = *it;
        Thread &t = threads_[tid];
        rr_assert(t.state == ThreadState::UnloadedReady,
                  "queued thread in state ", threadStateName(t.state));

        // Constant-time capacity check against the runtime's free-
        // register counter: a search that cannot possibly succeed is
        // never attempted, so it costs nothing. (Figure 4's failed-
        // allocation cost is for genuine searches defeated by
        // fragmentation.)
        const unsigned needed = policy_->requiredSpace(t.regsUsed);
        if (needed == 0 || needed > policy_->freeRegs()) {
            ++it;
            continue;
        }

        const auto context = policy_->allocate(t.regsUsed);
        if (context) {
            charge(config_.costs.allocSucceed, stats_.allocCycles);
            ++stats_.allocSuccesses;
            if (tracer_.enabled()) {
                auto e = traceEvent(trace::EventKind::Alloc,
                                    config_.costs.allocSucceed);
                e.tid = tid;
                e.ctx = context->rrm;
                e.regs = t.regsUsed;
                tracer_.emit(e);
            }
        } else {
            // A genuine search defeated by fragmentation.
            charge(config_.costs.allocFail, stats_.allocCycles);
            ++stats_.allocFailures;
            if (tracer_.enabled()) {
                auto e = traceEvent(trace::EventKind::Alloc,
                                    config_.costs.allocFail);
                e.ok = false;
                e.tid = tid;
                e.regs = t.regsUsed;
                tracer_.emit(e);
            }
            ++it;
            continue;
        }

        charge(config_.costs.queueOp, stats_.queueCycles);
        if (tracer_.enabled()) {
            auto e = traceEvent(trace::EventKind::Queue,
                                config_.costs.queueOp);
            e.tid = tid;
            tracer_.emit(e);
        }
        charge(config_.costs.loadCost(t.regsUsed), stats_.loadCycles);
        ++stats_.loads;
        ++t.timesLoaded;
        if (tracer_.enabled()) {
            auto e = traceEvent(trace::EventKind::Load,
                                config_.costs.loadCost(t.regsUsed));
            e.tid = tid;
            e.ctx = context->rrm;
            e.regs = t.regsUsed;
            tracer_.emit(e);
        }

        it = threadQueue_.erase(it);
        t.context = context;
        t.state = ThreadState::LoadedReady;
        ring_.insert(context->rrm, t.priority);
        rrmInsert(context->rrm, tid);
        noteResidencyChange(+1);
    }
}

void
MtProcessor::runNext()
{
    const uint32_t rrm = ring_.current();
    Thread &t = threads_[rrmLookup(rrm)];
    rr_assert(t.state == ThreadState::LoadedReady,
              "scheduled thread in state ", threadStateName(t.state));

    t.state = ThreadState::Running;
    const FaultSample fault =
        config_.faultModel->next(t.rng, t.faults);
    const uint64_t segment = std::min(fault.runLength, t.remainingWork);

    now_ += segment;
    useful_ += segment;
    stats_.usefulCycles += segment;
    t.remainingWork -= segment;

    if (tracer_.enabled()) {
        auto e = traceEvent(trace::EventKind::RunSegment, segment);
        e.tid = t.id;
        e.ctx = rrm;
        tracer_.emit(e);
    }

    if (t.remainingWork == 0) {
        // Thread completes: its context is deallocated and the freed
        // registers may admit a queued thread.
        t.state = ThreadState::Finished;
        t.finishTime = now_;
        ++finished_;
        ring_.remove(rrm);
        rrmErase(rrm);
        charge(config_.costs.dealloc, stats_.deallocCycles);
        if (tracer_.enabled()) {
            auto e = traceEvent(trace::EventKind::Free,
                                config_.costs.dealloc);
            e.tid = t.id;
            e.ctx = rrm;
            e.aux = trace::TraceEvent::kFreeFinished;
            tracer_.emit(e);
        }
        policy_->release(*t.context);
        t.context.reset();
        noteResidencyChange(-1);
        ++stats_.threadsFinished;
        refill();
        return;
    }

    // Long-latency fault: block the thread and switch away.
    ++t.faults;
    ++stats_.faults;
    if (fault.kind == FaultClass::Cache)
        ++stats_.cacheFaults;
    else
        ++stats_.syncFaults;

    t.state = ThreadState::BlockedLoaded;
    t.blockedAt = now_;
    ++t.blockEpoch;
    completions_.invalidateThread(t.id);
    t.faultCompletion = now_ + fault.latency;
    completions_.push({t.faultCompletion, t.blockEpoch, t.id});
    ring_.remove(rrm);

    if (tracer_.enabled()) {
        auto e = traceEvent(trace::EventKind::FaultIssue, 0);
        e.tid = t.id;
        e.ctx = rrm;
        e.aux = fault.latency;
        tracer_.emit(e);
    }

    // Two-phase accounting starts afresh for this blocking episode.
    t.spinAccrued = 0;

    charge(config_.costs.contextSwitch, stats_.switchCycles);
    if (tracer_.enabled()) {
        auto e = traceEvent(trace::EventKind::Switch,
                            config_.costs.contextSwitch);
        e.tid = t.id;
        tracer_.emit(e);
    }
}

bool
MtProcessor::nextCompletionTime(uint64_t &out)
{
    while (!completions_.empty()) {
        const CompletionEvent &top = completions_.top();
        const Thread &t = threads_[top.tid];
        if (t.blockEpoch == top.epoch &&
            (t.state == ThreadState::BlockedLoaded ||
             t.state == ThreadState::BlockedUnloaded)) {
            out = top.time;
            return true;
        }
        completions_.popStale();
    }
    return false;
}

void
MtProcessor::idleOrEvict()
{
    uint64_t completion = 0;
    const bool have_completion = nextCompletionTime(completion);

    // Two-phase: while the processor spins with nothing runnable,
    // the scheduler repeatedly polls the blocked resident contexts;
    // each accrues a 1/N share of the spin time. The first context
    // whose accrual would reach its waiting budget is unloaded at a
    // computable instant — but only when a queued thread could use
    // the freed registers.
    bool have_evict = false;
    uint64_t evict_time = 0;
    unsigned evict_tid = 0;
    unsigned num_blocked_loaded = 0;

    if (config_.unloadPolicy == UnloadPolicyKind::TwoPhase &&
        !threadQueue_.empty()) {
        uint64_t best_remaining = 0;
        for (const Thread &t : threads_) {
            if (t.state != ThreadState::BlockedLoaded)
                continue;
            ++num_blocked_loaded;
            const uint64_t budget = twoPhaseBudget(t);
            const uint64_t remaining =
                budget > t.spinAccrued ? budget - t.spinAccrued : 0;
            if (!have_evict || remaining < best_remaining) {
                best_remaining = remaining;
                evict_tid = t.id;
                have_evict = true;
            }
        }
        if (have_evict)
            evict_time = now_ + best_remaining * num_blocked_loaded;
    }

    if (!have_completion && !have_evict) {
        rr_fatal("deadlock: no runnable context, no pending event, ",
                 config_.workload.numThreads - finished_,
                 " unfinished threads (a thread may require more "
                 "registers than any context can hold)");
    }

    uint64_t until = 0;
    if (have_completion && have_evict)
        until = std::min(completion, evict_time);
    else if (have_completion)
        until = completion;
    else
        until = evict_time;
    rr_assert(until >= now_, "event in the past");

    // The spin interval is wasted processor time; accrue the
    // round-robin poll shares against the blocked residents.
    const uint64_t interval = until - now_;
    if (num_blocked_loaded > 0) {
        for (Thread &t : threads_) {
            if (t.state == ThreadState::BlockedLoaded)
                t.spinAccrued += interval / num_blocked_loaded;
        }
    }
    stats_.idleCycles += interval;
    now_ = until;

    if (tracer_.enabled() && interval > 0) {
        auto e = traceEvent(trace::EventKind::SchedulerPoll, interval);
        e.aux = num_blocked_loaded;
        tracer_.emit(e);
    }

    if (have_evict && until == evict_time) {
        if (tracer_.enabled()) {
            auto e = traceEvent(trace::EventKind::UnloadDecision, 0);
            e.tid = evict_tid;
            e.aux = threads_[evict_tid].spinAccrued;
            tracer_.emit(e);
        }
        evict(evict_tid);
        refill();
    }
}

MtStats
MtProcessor::run()
{
    createThreads();
    recorder_.record(0, 0);
    refill();

    const unsigned total = config_.workload.numThreads;
    while (finished_ < total) {
        // Charging overheads while processing completions can push
        // the clock past further completions, so iterate to a
        // fixpoint: when no cycles were charged, every event due at
        // or before now has been handled.
        for (;;) {
            const uint64_t before = now_;
            processCompletions();
            if (now_ == before)
                break;
        }

        if (!ring_.empty())
            runNext();
        else
            idleOrEvict();
        recorder_.record(now_, useful_);
    }

    // Finalize.
    noteResidencyChange(0);
    stats_.totalCycles = now_;
    stats_.efficiencyTotal = recorder_.totalRate();
    stats_.efficiencyCentral =
        recorder_.centralRate(config_.statsLoFrac, config_.statsHiFrac);
    stats_.avgResidentContexts =
        now_ == 0 ? 0.0 : residencyIntegral_ / static_cast<double>(now_);
    tracer_.flush();
    return stats_;
}

MtStats
simulate(MtConfig config)
{
    MtProcessor processor(std::move(config));
    return processor.run();
}

} // namespace rr::mt
