#include "multithread/mt_processor.hh"

#include <algorithm>
#include <cstdio>

#include "base/logging.hh"

namespace rr::mt {

const char *
archName(ArchKind kind)
{
    switch (kind) {
      case ArchKind::Flexible:
        return "flexible";
      case ArchKind::FixedHw:
        return "fixed";
      case ArchKind::AddReloc:
        return "add";
    }
    return "unknown";
}

uint64_t
MtStats::accountedCycles() const
{
    return usefulCycles + idleCycles + switchCycles + allocCycles +
           deallocCycles + loadCycles + unloadCycles + queueCycles;
}

trace::AuditTotals
auditTotals(const MtStats &stats)
{
    trace::AuditTotals totals;
    totals.totalCycles = stats.totalCycles;
    totals.usefulCycles = stats.usefulCycles;
    totals.idleCycles = stats.idleCycles;
    totals.switchCycles = stats.switchCycles;
    totals.allocCycles = stats.allocCycles;
    totals.deallocCycles = stats.deallocCycles;
    totals.loadCycles = stats.loadCycles;
    totals.unloadCycles = stats.unloadCycles;
    totals.queueCycles = stats.queueCycles;
    totals.faults = stats.faults;
    totals.loads = stats.loads;
    totals.unloads = stats.unloads;
    totals.allocSuccesses = stats.allocSuccesses;
    totals.allocFailures = stats.allocFailures;
    totals.threadsFinished = stats.threadsFinished;
    return totals;
}

MtProcessor::MtProcessor(MtConfig config)
    : config_(std::move(config)), ring_(std::max(1u, config_.priorityLevels))
{
    rr_assert(config_.workload.workDist != nullptr,
              "workload work distribution missing");
    rr_assert(config_.workload.regsDist != nullptr,
              "workload register distribution missing");
    rr_assert(config_.faultModel != nullptr, "fault model missing");
    rr_assert(config_.workload.numThreads > 0, "no threads");
    policy_ = makePolicy();
    tracer_.attach(config_.traceSink);
}

trace::TraceEvent
MtProcessor::traceEvent(trace::EventKind kind, uint64_t cycles) const
{
    trace::TraceEvent event;
    event.kind = kind;
    event.arch = static_cast<uint8_t>(config_.arch);
    event.cycle = now_;
    event.cycles = cycles;
    return event;
}

std::unique_ptr<ContextPolicy>
MtProcessor::makePolicy() const
{
    if (config_.customPolicy)
        return config_.customPolicy();
    switch (config_.arch) {
      case ArchKind::Flexible:
        return std::make_unique<FlexibleContextPolicy>(
            config_.numRegs, config_.operandWidth,
            config_.minContextSize);
      case ArchKind::FixedHw:
        return std::make_unique<FixedContextPolicy>(
            config_.numRegs, config_.fixedContextRegs);
      case ArchKind::AddReloc:
        return std::make_unique<AddContextPolicy>(config_.numRegs);
    }
    rr_panic("unknown architecture");
}

unsigned
MtProcessor::rrmLookup(uint32_t rrm) const
{
    rr_assert(rrm < rrmIndex_.size() && rrmIndex_[rrm] != kNoThread,
              "ring rrm without thread");
    return rrmIndex_[rrm];
}

void
MtProcessor::rrmInsert(uint32_t rrm, unsigned tid)
{
    // Built-in policies hand out rrm values below the file size; a
    // custom policy may exceed it, so grow on demand (rare, not on
    // the steady-state path).
    if (rrm >= rrmIndex_.size())
        rrmIndex_.resize(rrm + 1, kNoThread);
    rrmIndex_[rrm] = tid;
}

void
MtProcessor::rrmErase(uint32_t rrm)
{
    rr_assert(rrm < rrmIndex_.size(), "erasing unknown rrm");
    rrmIndex_[rrm] = kNoThread;
}

void
MtProcessor::createThreads()
{
    // Reserve all steady-state storage up front: at most one pending
    // completion and one queue slot per thread.
    threadQueue_.reserve(config_.workload.numThreads);
    completions_.reserve(config_.workload.numThreads);
    rrmIndex_.assign(config_.numRegs, kNoThread);

    Rng master(config_.seed);
    // Priorities draw from their own stream so that enabling them
    // does not perturb the workload's run-length/latency draws.
    Rng priority_rng(config_.seed ^ 0xa5a5a5a55a5a5a5aull);
    threads_.resize(config_.workload.numThreads);
    for (unsigned i = 0; i < config_.workload.numThreads; ++i) {
        Thread &t = threads_[i];
        t.id = i;
        t.rng = master.split();
        t.regsUsed = static_cast<unsigned>(
            config_.workload.regsDist->sample(t.rng));
        rr_assert(t.regsUsed >= 1, "thread requires zero registers");
        t.totalWork =
            std::max<uint64_t>(1, config_.workload.workDist->sample(t.rng));
        if (config_.workload.priorityDist) {
            const uint64_t level =
                config_.workload.priorityDist->sample(priority_rng);
            t.priority = static_cast<unsigned>(std::min<uint64_t>(
                level, std::max(1u, config_.priorityLevels) - 1));
        }
        t.remainingWork = t.totalWork;
        t.state = ThreadState::UnloadedReady;
        threadQueue_.push_back(i);
    }
}

void
MtProcessor::charge(uint64_t cycles, uint64_t &bucket)
{
    bucket += cycles;
    now_ += cycles;
}

void
MtProcessor::noteResidencyChange(int delta)
{
    residencyIntegral_ += static_cast<double>(residentCount_) *
                          static_cast<double>(now_ - lastResidencyTime_);
    lastResidencyTime_ = now_;
    residentCount_ = static_cast<unsigned>(
        static_cast<int>(residentCount_) + delta);
    stats_.maxResidentContexts =
        std::max(stats_.maxResidentContexts, residentCount_);
}

void
MtProcessor::processCompletions()
{
    for (;;) {
        // Completions apply to both blocked states; prune manually.
        while (!completions_.empty()) {
            const CompletionEvent &top = completions_.top();
            const Thread &t = threads_[top.tid];
            if (t.blockEpoch == top.epoch &&
                (t.state == ThreadState::BlockedLoaded ||
                 t.state == ThreadState::BlockedUnloaded)) {
                break;
            }
            completions_.popStale();
        }
        if (completions_.empty() || completions_.top().time > now_)
            return;

        const CompletionEvent event = completions_.top();
        completions_.pop();
        Thread &t = threads_[event.tid];
        ++t.blockEpoch; // invalidate any pending unload deadline
        completions_.invalidateThread(t.id);

        if (tracer_.enabled()) {
            auto e = traceEvent(trace::EventKind::FaultComplete, 0);
            e.tid = t.id;
            if (t.context)
                e.ctx = t.context->rrm;
            e.aux = now_ - t.blockedAt;
            tracer_.emit(e);
        }

        if (t.state == ThreadState::BlockedLoaded) {
            // The context is still resident: it simply becomes
            // runnable again in the ring.
            t.state = ThreadState::LoadedReady;
            ring_.insert(t.context->rrm, t.priority);
        } else {
            // The context was unloaded while blocked: the thread
            // re-enters the software thread queue (10-cycle insert)
            // and must be re-allocated + re-loaded before running.
            charge(config_.costs.queueOp, stats_.queueCycles);
            if (tracer_.enabled()) {
                auto e = traceEvent(trace::EventKind::Queue,
                                    config_.costs.queueOp);
                e.tid = t.id;
                tracer_.emit(e);
            }
            t.state = ThreadState::UnloadedReady;
            threadQueue_.push_back(t.id);
            refill();
        }
    }
}

uint64_t
MtProcessor::twoPhaseBudget(const Thread &t) const
{
    // Competitive waiting: spin for as long as blocking would cost.
    // Blocking a context and resuming it later costs the unload, the
    // deallocation, a queue insert and remove, a fresh allocation,
    // and the reload — all avoided if the fault completes while the
    // context spins.
    const runtime::CostModel &costs = config_.costs;
    return costs.unloadCost(t.regsUsed) + costs.dealloc +
           2 * costs.queueOp + costs.allocSucceed +
           costs.loadCost(t.regsUsed);
}

void
MtProcessor::evict(unsigned tid)
{
    Thread &t = threads_[tid];
    rr_assert(t.state == ThreadState::BlockedLoaded,
              "evicting thread in state ", threadStateName(t.state));

    // Two-phase second phase: the accrued cost of failed resume
    // attempts has reached the cost of unloading — give up the
    // registers.
    const uint32_t rrm = t.context->rrm;
    charge(config_.costs.unloadCost(t.regsUsed), stats_.unloadCycles);
    if (tracer_.enabled()) {
        auto e = traceEvent(trace::EventKind::Unload,
                            config_.costs.unloadCost(t.regsUsed));
        e.tid = t.id;
        e.ctx = rrm;
        e.regs = t.regsUsed;
        tracer_.emit(e);
    }
    charge(config_.costs.dealloc, stats_.deallocCycles);
    if (tracer_.enabled()) {
        auto e = traceEvent(trace::EventKind::Free, config_.costs.dealloc);
        e.tid = t.id;
        e.ctx = rrm;
        e.aux = trace::TraceEvent::kFreeEvicted;
        tracer_.emit(e);
    }
    policy_->release(*t.context);
    rrmErase(t.context->rrm);
    t.context.reset();
    t.state = ThreadState::BlockedUnloaded;
    ++t.timesUnloaded;
    ++stats_.unloads;
    noteResidencyChange(-1);
}

void
MtProcessor::refill()
{
    // First-fit scan of the software thread queue: FCFS order, but a
    // thread whose context cannot fit the free registers does not
    // block smaller threads behind it. (With fixed hardware contexts
    // every thread needs one identical slot, so this degenerates to
    // plain FCFS.)
    auto it = threadQueue_.begin();
    while (it != threadQueue_.end()) {
        if (config_.residencyCap != 0 &&
            residentCount_ >= config_.residencyCap) {
            return; // adaptive limit (Section 5.2): leave space idle
        }
        const unsigned tid = *it;
        Thread &t = threads_[tid];
        rr_assert(t.state == ThreadState::UnloadedReady,
                  "queued thread in state ", threadStateName(t.state));

        // Constant-time capacity check against the runtime's free-
        // register counter: a search that cannot possibly succeed is
        // never attempted, so it costs nothing. (Figure 4's failed-
        // allocation cost is for genuine searches defeated by
        // fragmentation.)
        const unsigned needed = policy_->requiredSpace(t.regsUsed);
        if (needed == 0 || needed > policy_->freeRegs()) {
            ++it;
            continue;
        }

        const auto context = policy_->allocate(t.regsUsed);
        if (context) {
            charge(config_.costs.allocSucceed, stats_.allocCycles);
            ++stats_.allocSuccesses;
            if (tracer_.enabled()) {
                auto e = traceEvent(trace::EventKind::Alloc,
                                    config_.costs.allocSucceed);
                e.tid = tid;
                e.ctx = context->rrm;
                e.regs = t.regsUsed;
                tracer_.emit(e);
            }
        } else {
            // A genuine search defeated by fragmentation.
            charge(config_.costs.allocFail, stats_.allocCycles);
            ++stats_.allocFailures;
            if (tracer_.enabled()) {
                auto e = traceEvent(trace::EventKind::Alloc,
                                    config_.costs.allocFail);
                e.ok = false;
                e.tid = tid;
                e.regs = t.regsUsed;
                tracer_.emit(e);
            }
            ++it;
            continue;
        }

        charge(config_.costs.queueOp, stats_.queueCycles);
        if (tracer_.enabled()) {
            auto e = traceEvent(trace::EventKind::Queue,
                                config_.costs.queueOp);
            e.tid = tid;
            tracer_.emit(e);
        }
        charge(config_.costs.loadCost(t.regsUsed), stats_.loadCycles);
        ++stats_.loads;
        ++t.timesLoaded;
        if (tracer_.enabled()) {
            auto e = traceEvent(trace::EventKind::Load,
                                config_.costs.loadCost(t.regsUsed));
            e.tid = tid;
            e.ctx = context->rrm;
            e.regs = t.regsUsed;
            tracer_.emit(e);
        }

        it = threadQueue_.erase(it);
        t.context = context;
        t.state = ThreadState::LoadedReady;
        ring_.insert(context->rrm, t.priority);
        rrmInsert(context->rrm, tid);
        noteResidencyChange(+1);
    }
}

void
MtProcessor::runNext()
{
    const uint32_t rrm = ring_.current();
    Thread &t = threads_[rrmLookup(rrm)];
    rr_assert(t.state == ThreadState::LoadedReady,
              "scheduled thread in state ", threadStateName(t.state));

    t.state = ThreadState::Running;
    const FaultSample fault =
        config_.faultModel->next(t.rng, t.faults);
    const uint64_t segment = std::min(fault.runLength, t.remainingWork);

    now_ += segment;
    useful_ += segment;
    stats_.usefulCycles += segment;
    t.remainingWork -= segment;

    if (tracer_.enabled()) {
        auto e = traceEvent(trace::EventKind::RunSegment, segment);
        e.tid = t.id;
        e.ctx = rrm;
        tracer_.emit(e);
    }

    if (t.remainingWork == 0) {
        // Thread completes: its context is deallocated and the freed
        // registers may admit a queued thread.
        t.state = ThreadState::Finished;
        t.finishTime = now_;
        ++finished_;
        ring_.remove(rrm);
        rrmErase(rrm);
        charge(config_.costs.dealloc, stats_.deallocCycles);
        if (tracer_.enabled()) {
            auto e = traceEvent(trace::EventKind::Free,
                                config_.costs.dealloc);
            e.tid = t.id;
            e.ctx = rrm;
            e.aux = trace::TraceEvent::kFreeFinished;
            tracer_.emit(e);
        }
        policy_->release(*t.context);
        t.context.reset();
        noteResidencyChange(-1);
        ++stats_.threadsFinished;
        refill();
        return;
    }

    // Long-latency fault: block the thread and switch away.
    ++t.faults;
    ++stats_.faults;
    if (fault.kind == FaultClass::Cache)
        ++stats_.cacheFaults;
    else
        ++stats_.syncFaults;

    t.state = ThreadState::BlockedLoaded;
    t.blockedAt = now_;
    ++t.blockEpoch;
    completions_.invalidateThread(t.id);
    t.faultCompletion = now_ + fault.latency;
    completions_.push({t.faultCompletion, t.blockEpoch, t.id});
    ring_.remove(rrm);

    if (tracer_.enabled()) {
        auto e = traceEvent(trace::EventKind::FaultIssue, 0);
        e.tid = t.id;
        e.ctx = rrm;
        e.aux = fault.latency;
        tracer_.emit(e);
    }

    // Two-phase accounting starts afresh for this blocking episode.
    t.spinAccrued = 0;

    charge(config_.costs.contextSwitch, stats_.switchCycles);
    if (tracer_.enabled()) {
        auto e = traceEvent(trace::EventKind::Switch,
                            config_.costs.contextSwitch);
        e.tid = t.id;
        tracer_.emit(e);
    }
}

bool
MtProcessor::nextCompletionTime(uint64_t &out)
{
    while (!completions_.empty()) {
        const CompletionEvent &top = completions_.top();
        const Thread &t = threads_[top.tid];
        if (t.blockEpoch == top.epoch &&
            (t.state == ThreadState::BlockedLoaded ||
             t.state == ThreadState::BlockedUnloaded)) {
            out = top.time;
            return true;
        }
        completions_.popStale();
    }
    return false;
}

void
MtProcessor::idleOrEvict()
{
    uint64_t completion = 0;
    const bool have_completion = nextCompletionTime(completion);

    // Two-phase: while the processor spins with nothing runnable,
    // the scheduler repeatedly polls the blocked resident contexts;
    // each accrues a 1/N share of the spin time. The first context
    // whose accrual would reach its waiting budget is unloaded at a
    // computable instant — but only when a queued thread could use
    // the freed registers.
    bool have_evict = false;
    uint64_t evict_time = 0;
    unsigned evict_tid = 0;
    unsigned num_blocked_loaded = 0;

    if (config_.unloadPolicy == UnloadPolicyKind::TwoPhase &&
        !threadQueue_.empty()) {
        uint64_t best_remaining = 0;
        for (const Thread &t : threads_) {
            if (t.state != ThreadState::BlockedLoaded)
                continue;
            ++num_blocked_loaded;
            const uint64_t budget = twoPhaseBudget(t);
            const uint64_t remaining =
                budget > t.spinAccrued ? budget - t.spinAccrued : 0;
            if (!have_evict || remaining < best_remaining) {
                best_remaining = remaining;
                evict_tid = t.id;
                have_evict = true;
            }
        }
        if (have_evict)
            evict_time = now_ + best_remaining * num_blocked_loaded;
    }

    if (!have_completion && !have_evict) {
        rr_fatal("deadlock: no runnable context, no pending event, ",
                 config_.workload.numThreads - finished_,
                 " unfinished threads (a thread may require more "
                 "registers than any context can hold)");
    }

    uint64_t until = 0;
    if (have_completion && have_evict)
        until = std::min(completion, evict_time);
    else if (have_completion)
        until = completion;
    else
        until = evict_time;
    rr_assert(until >= now_, "event in the past");

    // The spin interval is wasted processor time; accrue the
    // round-robin poll shares against the blocked residents.
    const uint64_t interval = until - now_;
    if (num_blocked_loaded > 0) {
        for (Thread &t : threads_) {
            if (t.state == ThreadState::BlockedLoaded)
                t.spinAccrued += interval / num_blocked_loaded;
        }
    }
    stats_.idleCycles += interval;
    now_ = until;

    if (tracer_.enabled() && interval > 0) {
        auto e = traceEvent(trace::EventKind::SchedulerPoll, interval);
        e.aux = num_blocked_loaded;
        tracer_.emit(e);
    }

    if (have_evict && until == evict_time) {
        if (tracer_.enabled()) {
            auto e = traceEvent(trace::EventKind::UnloadDecision, 0);
            e.tid = evict_tid;
            e.aux = threads_[evict_tid].spinAccrued;
            tracer_.emit(e);
        }
        evict(evict_tid);
        refill();
    }
}

void
MtProcessor::begin()
{
    if (begun_)
        return;
    begun_ = true;
    if (!config_.resumeFrom.empty()) {
        restore(ckpt::readFile(config_.resumeFrom));
        return;
    }
    createThreads();
    recorder_.record(0, 0);
    refill();
}

void
MtProcessor::step()
{
    // Charging overheads while processing completions can push
    // the clock past further completions, so iterate to a
    // fixpoint: when no cycles were charged, every event due at
    // or before now has been handled.
    for (;;) {
        const uint64_t before = now_;
        processCompletions();
        if (now_ == before)
            break;
    }

    if (!ring_.empty())
        runNext();
    else
        idleOrEvict();
    recorder_.record(now_, useful_);
    ++eventIndex_;
}

MtStats
MtProcessor::finish()
{
    noteResidencyChange(0);
    stats_.totalCycles = now_;
    stats_.efficiencyTotal = recorder_.totalRate();
    stats_.efficiencyCentral =
        recorder_.centralRate(config_.statsLoFrac, config_.statsHiFrac);
    stats_.avgResidentContexts =
        now_ == 0 ? 0.0 : residencyIntegral_ / static_cast<double>(now_);
    tracer_.flush();
    return stats_;
}

MtStats
MtProcessor::run()
{
    begin();
    while (!done()) {
        if (config_.checkpointEvery != 0 &&
            eventIndex_ % config_.checkpointEvery == 0)
            ckpt::writeFile(config_.checkpointPath, snapshot());
        step();
    }
    return finish();
}

// ---------------------------------------------------------------------
// Checkpointing (rr.ckpt.v1, kind "mt")

namespace {

// Section tags for the mt checkpoint kind. 0x01 is the rr::ckpt
// meta section; 0x20 EventCore; 0x30 TraceAuditor (written by sinks
// that are themselves auditors, not by the processor).
constexpr uint32_t kSectionProc = 0x40;
constexpr uint32_t kSectionThreads = 0x41;
constexpr uint32_t kSectionRecorder = 0x42;

enum ProcField : uint32_t
{
    kProcNow = 1,
    kProcUseful = 2,
    kProcFinished = 3,
    kProcEventIndex = 4,
    kProcThreadQueue = 5,
    kProcRingLevels = 6,   ///< u64: number of priority levels
    kProcRingBase = 0x100, ///< u32vec per level: members in ring order
    kProcResidentCount = 7,
    kProcLastResidencyTime = 8,
    kProcResidencyIntegral = 9,
    kProcStats = 10,          ///< u64vec: every integer MtStats field
    kProcMaxResident = 11,
    kProcAllocStats = 12,     ///< u64vec: allocator call counters
};

enum ThreadField : uint32_t
{
    kThrRegsUsed = 1,
    kThrState = 2,
    kThrPriority = 3,
    kThrTotalWork = 4,
    kThrRemainingWork = 5,
    kThrFinishTime = 6,
    kThrHasContext = 7,
    kThrCtxRrm = 8,
    kThrCtxSize = 9,
    kThrFaultCompletion = 10,
    kThrBlockedAt = 11,
    kThrBlockEpoch = 12,
    kThrSpinAccrued = 13,
    kThrFaults = 14,
    kThrTimesLoaded = 15,
    kThrTimesUnloaded = 16,
    kThrRng0 = 17,
    kThrRng1 = 18,
    kThrRng2 = 19,
    kThrRng3 = 20,
};

} // namespace

std::string
MtProcessor::fingerprint() const
{
    const runtime::CostModel &c = config_.costs;
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "mt threads=%u work=%s regs=%s prio=%s faults=%s "
        "costs=%llu/%llu/%llu/%llu/%llu/%llu/%d arch=%s policy=%s "
        "F=%u w=%u min=%u fixed=%u unload=%u cap=%u seed=%llu "
        "levels=%u window=%.17g..%.17g",
        config_.workload.numThreads,
        config_.workload.workDist->describe().c_str(),
        config_.workload.regsDist->describe().c_str(),
        config_.workload.priorityDist
            ? config_.workload.priorityDist->describe().c_str()
            : "none",
        config_.faultModel->describe().c_str(),
        static_cast<unsigned long long>(c.allocSucceed),
        static_cast<unsigned long long>(c.allocFail),
        static_cast<unsigned long long>(c.dealloc),
        static_cast<unsigned long long>(c.queueOp),
        static_cast<unsigned long long>(c.blockOverhead),
        static_cast<unsigned long long>(c.contextSwitch),
        c.dribbleRegisters ? 1 : 0, archName(config_.arch),
        policy_->describe().c_str(), config_.numRegs,
        config_.operandWidth, config_.minContextSize,
        config_.fixedContextRegs,
        static_cast<unsigned>(config_.unloadPolicy),
        config_.residencyCap,
        static_cast<unsigned long long>(config_.seed),
        config_.priorityLevels, config_.statsLoFrac,
        config_.statsHiFrac);
    return buf;
}

void
MtProcessor::saveState(ckpt::Writer &writer) const
{
    const unsigned numThreads = config_.workload.numThreads;

    writer.beginSection(kSectionProc);
    writer.u64(kProcNow, now_);
    writer.u64(kProcUseful, useful_);
    writer.u64(kProcFinished, finished_);
    writer.u64(kProcEventIndex, eventIndex_);
    {
        std::vector<uint32_t> queue;
        queue.reserve(threadQueue_.size());
        for (const unsigned tid : threadQueue_)
            queue.push_back(tid);
        writer.u32vec(kProcThreadQueue, queue);
    }
    const unsigned levels = std::max(1u, config_.priorityLevels);
    writer.u64(kProcRingLevels, levels);
    for (unsigned l = 0; l < levels; ++l) {
        // members() walks from the current element, and insert()
        // appends at the tail, so re-inserting this sequence in
        // order reproduces both the ring linkage and the current
        // pointer exactly.
        writer.u32vec(kProcRingBase + l,
                      const_cast<runtime::PriorityRing &>(ring_)
                          .level(l)
                          .members());
    }
    writer.u64(kProcResidentCount, residentCount_);
    writer.u64(kProcLastResidencyTime, lastResidencyTime_);
    writer.f64(kProcResidencyIntegral, residencyIntegral_);
    writer.u64vec(
        kProcStats,
        {stats_.totalCycles, stats_.usefulCycles, stats_.idleCycles,
         stats_.switchCycles, stats_.allocCycles,
         stats_.deallocCycles, stats_.loadCycles,
         stats_.unloadCycles, stats_.queueCycles, stats_.faults,
         stats_.cacheFaults, stats_.syncFaults, stats_.loads,
         stats_.unloads, stats_.allocSuccesses,
         stats_.allocFailures});
    writer.u64(kProcMaxResident, stats_.maxResidentContexts);
    if (const auto *flexible =
            dynamic_cast<const FlexibleContextPolicy *>(policy_.get())) {
        const runtime::AllocatorStats &as =
            flexible->allocator().stats();
        writer.u64vec(kProcAllocStats, {as.allocCalls,
                                        as.allocFailures,
                                        as.deallocCalls});
    }
    writer.endSection();

    writer.beginSection(kSectionThreads);
    std::vector<uint32_t> regsUsed, state, priority, hasContext,
        ctxRrm, ctxSize;
    std::vector<uint64_t> totalWork, remainingWork, finishTime,
        faultCompletion, blockedAt, blockEpoch, spinAccrued, faults,
        timesLoaded, timesUnloaded;
    std::vector<uint64_t> rngState[4];
    for (unsigned f = 0; f < 4; ++f)
        rngState[f].reserve(numThreads);
    for (const Thread &t : threads_) {
        regsUsed.push_back(t.regsUsed);
        state.push_back(static_cast<uint32_t>(t.state));
        priority.push_back(t.priority);
        hasContext.push_back(t.context ? 1 : 0);
        ctxRrm.push_back(t.context ? t.context->rrm : 0);
        ctxSize.push_back(t.context ? t.context->size : 0);
        totalWork.push_back(t.totalWork);
        remainingWork.push_back(t.remainingWork);
        finishTime.push_back(t.finishTime);
        faultCompletion.push_back(t.faultCompletion);
        blockedAt.push_back(t.blockedAt);
        blockEpoch.push_back(t.blockEpoch);
        spinAccrued.push_back(t.spinAccrued);
        faults.push_back(t.faults);
        timesLoaded.push_back(t.timesLoaded);
        timesUnloaded.push_back(t.timesUnloaded);
        uint64_t s[4];
        t.rng.state(s);
        for (unsigned f = 0; f < 4; ++f)
            rngState[f].push_back(s[f]);
    }
    writer.u32vec(kThrRegsUsed, regsUsed);
    writer.u32vec(kThrState, state);
    writer.u32vec(kThrPriority, priority);
    writer.u64vec(kThrTotalWork, totalWork);
    writer.u64vec(kThrRemainingWork, remainingWork);
    writer.u64vec(kThrFinishTime, finishTime);
    writer.u32vec(kThrHasContext, hasContext);
    writer.u32vec(kThrCtxRrm, ctxRrm);
    writer.u32vec(kThrCtxSize, ctxSize);
    writer.u64vec(kThrFaultCompletion, faultCompletion);
    writer.u64vec(kThrBlockedAt, blockedAt);
    writer.u64vec(kThrBlockEpoch, blockEpoch);
    writer.u64vec(kThrSpinAccrued, spinAccrued);
    writer.u64vec(kThrFaults, faults);
    writer.u64vec(kThrTimesLoaded, timesLoaded);
    writer.u64vec(kThrTimesUnloaded, timesUnloaded);
    writer.u64vec(kThrRng0, rngState[0]);
    writer.u64vec(kThrRng1, rngState[1]);
    writer.u64vec(kThrRng2, rngState[2]);
    writer.u64vec(kThrRng3, rngState[3]);
    writer.endSection();

    completions_.saveState(writer);

    writer.beginSection(kSectionRecorder);
    writer.u64vec(1, recorder_.times());
    writer.u64vec(2, recorder_.values());
    writer.endSection();

    // A sink that audits (TraceAuditor) checkpoints its own running
    // sums so a resumed run still reconciles end to end.
    if (auto *auditor =
            dynamic_cast<trace::TraceAuditor *>(config_.traceSink))
        auditor->saveState(writer);
}

void
MtProcessor::restoreState(const ckpt::Reader &reader)
{
    const unsigned numThreads = config_.workload.numThreads;

    const std::vector<uint32_t> regsUsed =
        reader.u32vec(kSectionThreads, kThrRegsUsed);
    const std::vector<uint32_t> state =
        reader.u32vec(kSectionThreads, kThrState);
    const std::vector<uint32_t> priority =
        reader.u32vec(kSectionThreads, kThrPriority);
    const std::vector<uint32_t> hasContext =
        reader.u32vec(kSectionThreads, kThrHasContext);
    const std::vector<uint32_t> ctxRrm =
        reader.u32vec(kSectionThreads, kThrCtxRrm);
    const std::vector<uint32_t> ctxSize =
        reader.u32vec(kSectionThreads, kThrCtxSize);
    const std::vector<uint64_t> totalWork =
        reader.u64vec(kSectionThreads, kThrTotalWork);
    const std::vector<uint64_t> remainingWork =
        reader.u64vec(kSectionThreads, kThrRemainingWork);
    const std::vector<uint64_t> finishTime =
        reader.u64vec(kSectionThreads, kThrFinishTime);
    const std::vector<uint64_t> faultCompletion =
        reader.u64vec(kSectionThreads, kThrFaultCompletion);
    const std::vector<uint64_t> blockedAt =
        reader.u64vec(kSectionThreads, kThrBlockedAt);
    const std::vector<uint64_t> blockEpoch =
        reader.u64vec(kSectionThreads, kThrBlockEpoch);
    const std::vector<uint64_t> spinAccrued =
        reader.u64vec(kSectionThreads, kThrSpinAccrued);
    const std::vector<uint64_t> faults =
        reader.u64vec(kSectionThreads, kThrFaults);
    const std::vector<uint64_t> timesLoaded =
        reader.u64vec(kSectionThreads, kThrTimesLoaded);
    const std::vector<uint64_t> timesUnloaded =
        reader.u64vec(kSectionThreads, kThrTimesUnloaded);
    const std::vector<uint64_t> rng0 =
        reader.u64vec(kSectionThreads, kThrRng0);
    const std::vector<uint64_t> rng1 =
        reader.u64vec(kSectionThreads, kThrRng1);
    const std::vector<uint64_t> rng2 =
        reader.u64vec(kSectionThreads, kThrRng2);
    const std::vector<uint64_t> rng3 =
        reader.u64vec(kSectionThreads, kThrRng3);

    const auto sized = [numThreads](std::size_t n) {
        return n == numThreads;
    };
    if (!sized(regsUsed.size()) || !sized(state.size()) ||
        !sized(priority.size()) || !sized(hasContext.size()) ||
        !sized(ctxRrm.size()) || !sized(ctxSize.size()) ||
        !sized(totalWork.size()) || !sized(remainingWork.size()) ||
        !sized(finishTime.size()) || !sized(faultCompletion.size()) ||
        !sized(blockedAt.size()) || !sized(blockEpoch.size()) ||
        !sized(spinAccrued.size()) || !sized(faults.size()) ||
        !sized(timesLoaded.size()) || !sized(timesUnloaded.size()) ||
        !sized(rng0.size()) || !sized(rng1.size()) ||
        !sized(rng2.size()) || !sized(rng3.size()))
        throw ckpt::Error(
            "thread arrays do not match the configured " +
            std::to_string(numThreads) + " threads");

    // Validate every restored context before touching any live
    // structure: in bounds, non-overlapping, and sized so the policy
    // adopt cannot trip an internal assertion.
    {
        std::vector<bool> occupied(config_.numRegs, false);
        for (unsigned i = 0; i < numThreads; ++i) {
            if (state[i] >
                static_cast<uint32_t>(ThreadState::Finished))
                throw ckpt::Error("invalid thread state " +
                                  std::to_string(state[i]));
            if (!hasContext[i])
                continue;
            const uint64_t base = ctxRrm[i];
            const uint64_t size = ctxSize[i];
            if (size == 0 || base + size > config_.numRegs)
                throw ckpt::Error(
                    "restored context exceeds the register file");
            if (config_.arch != ArchKind::AddReloc &&
                ((size & (size - 1)) != 0 || base % size != 0))
                throw ckpt::Error("restored context is not an "
                                  "aligned power-of-two block");
            for (uint64_t r = base; r < base + size; ++r) {
                if (occupied[static_cast<std::size_t>(r)])
                    throw ckpt::Error(
                        "restored contexts overlap at register " +
                        std::to_string(r));
                occupied[static_cast<std::size_t>(r)] = true;
            }
        }
    }

    // Rebuild thread and allocator state. The policy is fresh (the
    // processor was just constructed), so adopting every live
    // context reproduces the allocator maps exactly.
    threads_.assign(numThreads, Thread{});
    for (unsigned i = 0; i < numThreads; ++i) {
        Thread &t = threads_[i];
        t.id = i;
        t.regsUsed = regsUsed[i];
        t.state = static_cast<ThreadState>(state[i]);
        t.priority = priority[i];
        t.totalWork = totalWork[i];
        t.remainingWork = remainingWork[i];
        t.finishTime = finishTime[i];
        t.faultCompletion = faultCompletion[i];
        t.blockedAt = blockedAt[i];
        t.blockEpoch = blockEpoch[i];
        t.spinAccrued = spinAccrued[i];
        t.faults = faults[i];
        t.timesLoaded = timesLoaded[i];
        t.timesUnloaded = timesUnloaded[i];
        const uint64_t s[4] = {rng0[i], rng1[i], rng2[i], rng3[i]};
        t.rng.setState(s);
        if (hasContext[i]) {
            runtime::Context context;
            context.rrm = ctxRrm[i];
            context.size = ctxSize[i];
            policy_->adopt(context);
            t.context = context;
        }
    }

    rrmIndex_.assign(config_.numRegs, kNoThread);
    for (const Thread &t : threads_)
        if (t.context)
            rrmInsert(t.context->rrm, t.id);

    threadQueue_.clear();
    threadQueue_.reserve(numThreads);
    for (const uint32_t tid :
         reader.u32vec(kSectionProc, kProcThreadQueue)) {
        if (tid >= numThreads)
            throw ckpt::Error("thread queue names thread " +
                              std::to_string(tid));
        threadQueue_.push_back(tid);
    }

    const unsigned levels = std::max(1u, config_.priorityLevels);
    if (reader.u64(kSectionProc, kProcRingLevels) != levels)
        throw ckpt::Error(
            "priority level count does not match the configuration");
    std::vector<bool> queued(rrmIndex_.size(), false);
    for (unsigned l = 0; l < levels; ++l) {
        runtime::ContextRing &ring = ring_.level(l);
        for (const uint32_t rrm : ring.members())
            ring.remove(rrm);
        for (const uint32_t rrm :
             reader.u32vec(kSectionProc, kProcRingBase + l)) {
            if (rrm >= rrmIndex_.size() ||
                rrmIndex_[rrm] == kNoThread)
                throw ckpt::Error(
                    "ring references rrm " + std::to_string(rrm) +
                    " with no resident context");
            if (queued[rrm])
                throw ckpt::Error("ring lists rrm " +
                                  std::to_string(rrm) + " twice");
            queued[rrm] = true;
            ring.insert(rrm);
        }
    }

    const std::vector<uint64_t> stats =
        reader.u64vec(kSectionProc, kProcStats);
    if (stats.size() != 16)
        throw ckpt::Error("stats array has the wrong length");
    stats_ = MtStats{};
    stats_.totalCycles = stats[0];
    stats_.usefulCycles = stats[1];
    stats_.idleCycles = stats[2];
    stats_.switchCycles = stats[3];
    stats_.allocCycles = stats[4];
    stats_.deallocCycles = stats[5];
    stats_.loadCycles = stats[6];
    stats_.unloadCycles = stats[7];
    stats_.queueCycles = stats[8];
    stats_.faults = stats[9];
    stats_.cacheFaults = stats[10];
    stats_.syncFaults = stats[11];
    stats_.loads = stats[12];
    stats_.unloads = stats[13];
    stats_.allocSuccesses = stats[14];
    stats_.allocFailures = stats[15];
    stats_.maxResidentContexts = static_cast<unsigned>(
        reader.u64(kSectionProc, kProcMaxResident));
    stats_.threadsFinished = 0; // re-derived below

    now_ = reader.u64(kSectionProc, kProcNow);
    useful_ = reader.u64(kSectionProc, kProcUseful);
    finished_ = static_cast<unsigned>(
        reader.u64(kSectionProc, kProcFinished));
    eventIndex_ = reader.u64(kSectionProc, kProcEventIndex);
    residentCount_ = static_cast<unsigned>(
        reader.u64(kSectionProc, kProcResidentCount));
    lastResidencyTime_ =
        reader.u64(kSectionProc, kProcLastResidencyTime);
    residencyIntegral_ =
        reader.f64(kSectionProc, kProcResidencyIntegral);

    unsigned finishedThreads = 0;
    for (const Thread &t : threads_)
        if (t.state == ThreadState::Finished)
            ++finishedThreads;
    if (finishedThreads != finished_)
        throw ckpt::Error("finished-thread counter disagrees with "
                          "the thread states");
    stats_.threadsFinished = finishedThreads;

    if (reader.has(kSectionProc, kProcAllocStats)) {
        const std::vector<uint64_t> as =
            reader.u64vec(kSectionProc, kProcAllocStats);
        if (as.size() != 3)
            throw ckpt::Error(
                "allocator stats array has the wrong length");
        if (auto *flexible = dynamic_cast<FlexibleContextPolicy *>(
                policy_.get()))
            flexible->restoreAllocatorStats(
                {as[0], as[1], as[2]});
    }

    // The event core validates its own internal consistency; the
    // processor additionally requires every event to name one of its
    // threads, or processCompletions() would index out of bounds.
    for (const uint32_t tid :
         reader.u32vec(EventCore::kCkptSection, 3))
        if (tid >= numThreads)
            throw ckpt::Error("completion event names thread " +
                              std::to_string(tid));
    completions_.reserve(numThreads);
    completions_.restoreState(reader);

    recorder_.restore(reader.u64vec(kSectionRecorder, 1),
                      reader.u64vec(kSectionRecorder, 2));

    if (auto *auditor =
            dynamic_cast<trace::TraceAuditor *>(config_.traceSink))
        if (reader.hasSection(trace::TraceAuditor::kCkptSection))
            auditor->restoreState(reader);

    begun_ = true;
}

std::vector<uint8_t>
MtProcessor::snapshot() const
{
    ckpt::Writer writer;
    ckpt::writeMeta(writer, "mt", fingerprint());
    saveState(writer);
    return writer.seal();
}

void
MtProcessor::restore(const std::vector<uint8_t> &document)
{
    const ckpt::Reader reader(document);
    ckpt::checkMeta(reader, "mt", fingerprint());
    restoreState(reader);
}

MtStats
simulate(MtConfig config)
{
    MtProcessor processor(std::move(config));
    return processor.run();
}

} // namespace rr::mt
