/**
 * @file
 * Context residency policies — how the register file is carved into
 * thread contexts. These are the architectures the paper compares:
 *
 *  - FlexibleContextPolicy: the register relocation mechanism.
 *    Power-of-two contexts sized to each thread's requirement,
 *    allocated in software by the Appendix A bitmap allocator.
 *  - FixedContextPolicy: a conventional multithreaded processor with
 *    F / 32 fixed hardware contexts of 32 registers each
 *    (Section 3.1), allocation managed by hardware at zero cost.
 *  - AddContextPolicy: Am29000-style base-plus-offset relocation
 *    (Section 4) — contexts of exactly C registers with first-fit
 *    interval allocation; no internal waste but external
 *    fragmentation and costlier software management.
 */

#ifndef RR_MULTITHREAD_CONTEXT_POLICY_HH
#define RR_MULTITHREAD_CONTEXT_POLICY_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "runtime/context_allocator.hh"
#include "runtime/interval_allocator.hh"

namespace rr::mt {

/** Abstract register-file partitioning policy. */
class ContextPolicy
{
  public:
    virtual ~ContextPolicy() = default;

    /**
     * Try to allocate a resident context for a thread using
     * @p regs_used registers.
     */
    virtual std::optional<runtime::Context>
    allocate(unsigned regs_used) = 0;

    /**
     * Registers a thread using @p regs_used registers would consume
     * (its context size). A runtime keeps a free-register counter,
     * so `requiredSpace(c) > freeRegs()` is a constant-time check
     * that makes a doomed allocation search unnecessary; only
     * genuine searches are charged the Figure 4 failure cost.
     * Returns 0 when the thread can never fit.
     */
    virtual unsigned requiredSpace(unsigned regs_used) const = 0;

    /** Release a context returned by allocate(). */
    virtual void release(const runtime::Context &context) = 0;

    /**
     * Re-occupy @p context during checkpoint restore, exactly as if
     * allocate() had returned it, without charging any allocation
     * statistics. The built-in policies reconstruct their internal
     * maps from the live context set this way; the default
     * implementation throws ckpt::Error because a custom policy's
     * private state cannot be recovered generically.
     */
    virtual void adopt(const runtime::Context &context);

    /** Register file size F. */
    virtual unsigned numRegs() const = 0;

    /** Currently unallocated registers. */
    virtual unsigned freeRegs() const = 0;

    /** Human-readable description. */
    virtual std::string describe() const = 0;
};

/** Register relocation: software-managed power-of-two contexts. */
class FlexibleContextPolicy : public ContextPolicy
{
  public:
    /**
     * @param num_regs       register file size F
     * @param operand_width  w (max context size 2^w)
     * @param min_size       smallest context size
     */
    FlexibleContextPolicy(unsigned num_regs, unsigned operand_width,
                          unsigned min_size = 4);

    std::optional<runtime::Context> allocate(unsigned regs_used) override;
    unsigned requiredSpace(unsigned regs_used) const override;
    void release(const runtime::Context &context) override;
    void adopt(const runtime::Context &context) override;
    unsigned numRegs() const override;
    unsigned freeRegs() const override;
    std::string describe() const override;

    /** Underlying allocator (for inspection). */
    const runtime::ContextAllocator &allocator() const
    {
        return allocator_;
    }

    /** Overwrite allocator statistics (checkpoint restore). */
    void restoreAllocatorStats(const runtime::AllocatorStats &stats)
    {
        allocator_.restoreStats(stats);
    }

  private:
    runtime::ContextAllocator allocator_;
};

/** Conventional fixed-size hardware contexts. */
class FixedContextPolicy : public ContextPolicy
{
  public:
    /**
     * @param num_regs      register file size F
     * @param context_regs  registers per hardware context (paper: 32)
     */
    FixedContextPolicy(unsigned num_regs, unsigned context_regs = 32);

    std::optional<runtime::Context> allocate(unsigned regs_used) override;
    unsigned requiredSpace(unsigned regs_used) const override;
    void release(const runtime::Context &context) override;
    void adopt(const runtime::Context &context) override;
    unsigned numRegs() const override;
    unsigned freeRegs() const override;
    std::string describe() const override;

    /** Number of hardware context slots. */
    unsigned numSlots() const
    {
        return static_cast<unsigned>(slotFree_.size());
    }

  private:
    unsigned numRegs_;
    unsigned contextRegs_;
    std::vector<bool> slotFree_;
};

/** Am29000-style exact-size contexts via ADD relocation. */
class AddContextPolicy : public ContextPolicy
{
  public:
    explicit AddContextPolicy(unsigned num_regs);

    std::optional<runtime::Context> allocate(unsigned regs_used) override;
    unsigned requiredSpace(unsigned regs_used) const override;
    void release(const runtime::Context &context) override;
    void adopt(const runtime::Context &context) override;
    unsigned numRegs() const override;
    unsigned freeRegs() const override;
    std::string describe() const override;

    /** Underlying interval allocator (for inspection). */
    const runtime::IntervalAllocator &allocator() const
    {
        return allocator_;
    }

  private:
    runtime::IntervalAllocator allocator_;
};

} // namespace rr::mt

#endif // RR_MULTITHREAD_CONTEXT_POLICY_HH
