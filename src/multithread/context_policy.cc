#include "multithread/context_policy.hh"

#include <sstream>

#include "base/logging.hh"
#include "ckpt/io.hh"

namespace rr::mt {

using runtime::Context;

void
ContextPolicy::adopt(const Context &)
{
    throw ckpt::Error("checkpoint restore is not supported for "
                      "custom context policy \"" +
                      describe() + "\"");
}

FlexibleContextPolicy::FlexibleContextPolicy(unsigned num_regs,
                                             unsigned operand_width,
                                             unsigned min_size)
    : allocator_(num_regs, operand_width, min_size)
{
}

std::optional<Context>
FlexibleContextPolicy::allocate(unsigned regs_used)
{
    return allocator_.allocate(regs_used);
}

unsigned
FlexibleContextPolicy::requiredSpace(unsigned regs_used) const
{
    return allocator_.contextSizeFor(regs_used);
}

void
FlexibleContextPolicy::release(const Context &context)
{
    allocator_.release(context);
}

void
FlexibleContextPolicy::adopt(const Context &context)
{
    allocator_.reserve(context);
}

unsigned
FlexibleContextPolicy::numRegs() const
{
    return allocator_.numRegs();
}

unsigned
FlexibleContextPolicy::freeRegs() const
{
    return allocator_.freeRegs();
}

std::string
FlexibleContextPolicy::describe() const
{
    std::ostringstream os;
    os << "flexible(F=" << allocator_.numRegs()
       << ", sizes " << allocator_.minSize() << ".."
       << allocator_.maxSize() << ")";
    return os.str();
}

FixedContextPolicy::FixedContextPolicy(unsigned num_regs,
                                       unsigned context_regs)
    : numRegs_(num_regs),
      contextRegs_(context_regs),
      slotFree_(num_regs / context_regs, true)
{
    rr_assert(context_regs > 0 && num_regs % context_regs == 0,
              "file size ", num_regs,
              " not a multiple of the context size ", context_regs);
    rr_assert(!slotFree_.empty(), "no hardware context slots");
}

std::optional<Context>
FixedContextPolicy::allocate(unsigned regs_used)
{
    if (regs_used > contextRegs_)
        return std::nullopt;
    for (size_t slot = 0; slot < slotFree_.size(); ++slot) {
        if (!slotFree_[slot])
            continue;
        slotFree_[slot] = false;
        Context context;
        context.rrm = static_cast<uint32_t>(slot) * contextRegs_;
        context.size = contextRegs_;
        return context;
    }
    return std::nullopt;
}

unsigned
FixedContextPolicy::requiredSpace(unsigned regs_used) const
{
    return regs_used <= contextRegs_ ? contextRegs_ : 0;
}

void
FixedContextPolicy::release(const Context &context)
{
    rr_assert(context.size == contextRegs_ &&
                  context.rrm % contextRegs_ == 0,
              "context was not allocated by this policy");
    const unsigned slot = context.rrm / contextRegs_;
    rr_assert(slot < slotFree_.size(), "bad slot ", slot);
    rr_assert(!slotFree_[slot], "double free of slot ", slot);
    slotFree_[slot] = true;
}

void
FixedContextPolicy::adopt(const Context &context)
{
    rr_assert(context.size == contextRegs_ &&
                  context.rrm % contextRegs_ == 0,
              "context was not allocated by this policy");
    const unsigned slot = context.rrm / contextRegs_;
    rr_assert(slot < slotFree_.size(), "bad slot ", slot);
    rr_assert(slotFree_[slot], "adopt of occupied slot ", slot);
    slotFree_[slot] = false;
}

unsigned
FixedContextPolicy::numRegs() const
{
    return numRegs_;
}

unsigned
FixedContextPolicy::freeRegs() const
{
    unsigned free_slots = 0;
    for (const bool f : slotFree_)
        free_slots += f ? 1 : 0;
    return free_slots * contextRegs_;
}

std::string
FixedContextPolicy::describe() const
{
    std::ostringstream os;
    os << "fixed(F=" << numRegs_ << ", " << slotFree_.size() << " x "
       << contextRegs_ << " regs)";
    return os.str();
}

AddContextPolicy::AddContextPolicy(unsigned num_regs)
    : allocator_(num_regs)
{
}

std::optional<Context>
AddContextPolicy::allocate(unsigned regs_used)
{
    rr_assert(regs_used > 0, "thread uses no registers");
    const auto interval = allocator_.allocate(regs_used);
    if (!interval)
        return std::nullopt;
    Context context;
    context.rrm = interval->base; // an ADD base, not an OR mask
    context.size = interval->size;
    return context;
}

unsigned
AddContextPolicy::requiredSpace(unsigned regs_used) const
{
    return regs_used;
}

void
AddContextPolicy::release(const Context &context)
{
    allocator_.release({context.rrm, context.size});
}

void
AddContextPolicy::adopt(const Context &context)
{
    allocator_.reserve({context.rrm, context.size});
}

unsigned
AddContextPolicy::numRegs() const
{
    return allocator_.numRegs();
}

unsigned
AddContextPolicy::freeRegs() const
{
    return allocator_.freeRegs();
}

std::string
AddContextPolicy::describe() const
{
    std::ostringstream os;
    os << "add-relocation(F=" << allocator_.numRegs()
       << ", exact-size contexts)";
    return os.str();
}

} // namespace rr::mt
