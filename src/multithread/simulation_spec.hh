/**
 * @file
 * SimulationSpec: the validated entry point for configuring one
 * multithreaded-node simulation (rr::mt).
 *
 * MtConfig grew organically — a workload struct, a shared fault
 * model, a cost table, and a dozen loose knobs — and every harness
 * (rrsim, rrbench, the figure benches, the tests) assembled it by
 * hand, each with its own copy of the paper's defaults. SimulationSpec
 * unifies that: one fluent builder that
 *
 *  - owns the paper's experimental defaults (64-thread supply,
 *    C ~ U[6, 24], work scaled to the mean run length, Figure 4
 *    costs keyed to the architecture, the switch cost and unload
 *    policy conventional for each fault process);
 *  - validates the combination *before* the simulator runs, throwing
 *    SpecError with a message that names the offending setting and
 *    its limit (a mis-sized register demand fails in microseconds
 *    with "demand 6..80 exceeds the largest context", not minutes
 *    later with a simulator deadlock panic);
 *  - produces a plain MtConfig via build(), so everything downstream
 *    (MtProcessor, the sweep engine, the tests) is unchanged.
 *
 * Every harness and test configures the simulator through this
 * builder (the former fig5Config/fig6Config-style helpers are gone):
 *
 *   MtStats stats = SimulationSpec()
 *                       .cacheFaults(mean_run, 60)
 *                       .arch(ArchKind::Flexible)
 *                       .numRegs(128)
 *                       .seed(7)
 *                       .run();
 */

#ifndef RR_MULTITHREAD_SIMULATION_SPEC_HH
#define RR_MULTITHREAD_SIMULATION_SPEC_HH

#include <optional>
#include <stdexcept>
#include <string>

#include "multithread/mt_processor.hh"
#include "multithread/workload.hh"

namespace rr::mt {

/** An invalid simulation specification (message names the setting). */
class SpecError : public std::runtime_error
{
  public:
    explicit SpecError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Fluent, validated builder for one simulation's MtConfig. */
class SimulationSpec
{
  public:
    SimulationSpec() = default;

    // ----- thread supply (defaults: the paper's standard workload)

    /** Thread count (default 64, defaultThreadCount). */
    SimulationSpec &threads(unsigned count);

    /**
     * Useful cycles per thread. Default: scaled to the fault
     * process's mean run length (defaultWorkPerThread), so every
     * run observes many faults per thread.
     */
    SimulationSpec &workPerThread(uint64_t cycles);

    /** Register demand C ~ U[lo, hi] (default 6..24, Section 3.1). */
    SimulationSpec &registerDemand(unsigned lo, unsigned hi);

    /** Homogeneous register demand: every thread uses C (Sec. 3.4). */
    SimulationSpec &registerDemand(unsigned c);

    /** Scheduler priority classes and the per-thread level draw. */
    SimulationSpec &priorities(unsigned levels,
                               std::shared_ptr<Distribution> dist);

    // ----- fault process (exactly one; sets the conventional switch
    //       cost and unload policy for that experiment family)

    /** Cache faults (Figure 5): S = 6, contexts never unloaded. */
    SimulationSpec &cacheFaults(double mean_run, uint64_t latency);

    /** Synchronization faults (Figure 6): S = 8, two-phase unload. */
    SimulationSpec &syncFaults(double mean_run, double mean_latency);

    /** Combined cache + synchronization faults (Section 3). */
    SimulationSpec &combinedFaults(double cache_run,
                                   uint64_t cache_latency,
                                   double sync_run,
                                   double sync_latency);

    /** Deterministic run/latency (the Section 3.4 analytic setting). */
    SimulationSpec &deterministicFaults(uint64_t run, uint64_t latency);

    /**
     * Custom fault process. @p mean_run scales the default work per
     * thread; conventional defaults fall back to the cache-fault
     * family (S = 6, never unload).
     */
    SimulationSpec &faultModel(std::shared_ptr<const FaultModel> model,
                               double mean_run);

    // ----- architecture

    /** Register-file architecture (default Flexible). */
    SimulationSpec &arch(ArchKind kind);

    /** Register file size F (default 128). */
    SimulationSpec &numRegs(unsigned f);

    /** Operand width w; the largest context holds 2^w regs (def. 5). */
    SimulationSpec &operandWidth(unsigned w);

    /** Smallest flexible context (default 4). */
    SimulationSpec &minContextSize(unsigned regs);

    /** Hardware context size for ArchKind::FixedHw (default 32). */
    SimulationSpec &fixedContextRegs(unsigned regs);

    /** Policy override (Section 5 extensions plug in here). */
    SimulationSpec &
    customPolicy(std::function<std::unique_ptr<ContextPolicy>()> make);

    // ----- costs

    /**
     * Context switch cost S; the Figure 4 column for the chosen
     * architecture is derived from it at build time. Overrides the
     * fault family's conventional S.
     */
    SimulationSpec &switchCost(uint64_t s);

    /** Explicit cost table (overrides the derived Figure 4 column). */
    SimulationSpec &costs(const runtime::CostModel &model);

    // ----- unload policy

    /** Blocked contexts stay resident (Section 3.2). */
    SimulationSpec &neverUnload();

    /** Competitive two-phase unloading (Section 3.3). */
    SimulationSpec &twoPhaseUnload();

    /** Residency cap (Section 5.2 adaptive extension); 0 = none. */
    SimulationSpec &residencyCap(unsigned cap);

    // ----- run control

    /** Workload RNG seed (default 1). */
    SimulationSpec &seed(uint64_t value);

    /** Central measurement window as run fractions (default .2/.8). */
    SimulationSpec &statsWindow(double lo, double hi);

    /** Structured-event sink for the run (not owned; default none). */
    SimulationSpec &traceSink(trace::TraceSink *sink);

    // ----- checkpointing (rr.ckpt.v1; does not affect results)

    /**
     * Write an rr.ckpt.v1 snapshot to @p path every @p n event-loop
     * iterations (latest wins). build() rejects n > 0 with an empty
     * path and a path with n == 0.
     */
    SimulationSpec &checkpointEvery(uint64_t n, std::string path);

    /** Restore from @p checkpoint instead of starting fresh. */
    SimulationSpec &resumeFrom(std::string checkpoint);

    /**
     * Validate and assemble the MtConfig.
     * @throws SpecError naming the first invalid setting.
     */
    MtConfig build() const;

    /** build() + simulate(). */
    MtStats run() const;

  private:
    /** Experiment family implied by the chosen fault process. */
    enum class FaultFamily : uint8_t
    {
        None,
        Cache,
        Sync,
        Combined,
        Deterministic,
        Custom,
    };

    [[noreturn]] static void fail(const std::string &what);

    // Thread supply.
    unsigned threads_ = defaultThreadCount;
    std::optional<uint64_t> workPerThread_;
    unsigned regsLo_ = 6;
    unsigned regsHi_ = 24;
    unsigned priorityLevels_ = 1;
    std::shared_ptr<Distribution> priorityDist_;

    // Fault process.
    FaultFamily family_ = FaultFamily::None;
    std::shared_ptr<const FaultModel> faultModel_;
    double meanRun_ = 0.0;

    // Architecture.
    ArchKind arch_ = ArchKind::Flexible;
    unsigned numRegs_ = 128;
    unsigned operandWidth_ = 5;
    unsigned minContextSize_ = 4;
    unsigned fixedContextRegs_ = 32;
    std::function<std::unique_ptr<ContextPolicy>()> customPolicy_;

    // Costs and policy.
    std::optional<uint64_t> switchCost_;
    std::optional<runtime::CostModel> costs_;
    std::optional<UnloadPolicyKind> unloadPolicy_;
    unsigned residencyCap_ = 0;

    // Run control.
    uint64_t seed_ = 1;
    double statsLoFrac_ = 0.2;
    double statsHiFrac_ = 0.8;
    trace::TraceSink *traceSink_ = nullptr;

    // Checkpointing.
    uint64_t checkpointEvery_ = 0;
    std::string checkpointPath_;
    std::string resumeFrom_;
};

} // namespace rr::mt

#endif // RR_MULTITHREAD_SIMULATION_SPEC_HH
