/**
 * @file
 * Fault models for the experiments of Section 3.
 *
 * Cache faults (Section 3.2): run lengths between faults are
 * geometrically distributed with mean R (fixed per-cycle miss
 * probability) and fault latency is a constant L (uniform network
 * response time on a lightly loaded network).
 *
 * Synchronization faults (Section 3.3): run lengths are geometric
 * with mean R and wait times are exponentially distributed with mean
 * L (producer-consumer synchronization).
 *
 * Combined (Section 3, "we also ran experiments involving both types
 * of faults"): two independent fault processes; the earlier fault of
 * the two fires.
 */

#ifndef RR_MULTITHREAD_FAULT_MODEL_HH
#define RR_MULTITHREAD_FAULT_MODEL_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/distributions.hh"
#include "base/rng.hh"

namespace rr::mt {

/** What kind of long-latency event occurred. */
enum class FaultClass : uint8_t
{
    Cache,
    Synchronization,
};

/** One drawn fault: run until it, then wait for it. */
struct FaultSample
{
    uint64_t runLength = 0; ///< useful cycles before the fault
    uint64_t latency = 0;   ///< service time of the fault
    FaultClass kind = FaultClass::Cache;
};

/** Generates the per-thread stochastic fault process. */
class FaultModel
{
  public:
    virtual ~FaultModel() = default;

    /**
     * Draw the (run length, latency) pair for the @p sequence-th
     * fault of a thread (0-based). Stateless models ignore the
     * sequence number (their draw stream depends only on @p rng);
     * phase-structured models use it to vary parameters over a
     * thread's lifetime. This is the only draw entry point: every
     * caller must track its per-thread fault count, so a model
     * cannot silently be pinned to the first phase by a caller
     * using a sequence-blind overload (which is exactly the bug the
     * old two-overload API permitted).
     */
    virtual FaultSample next(Rng &rng, uint64_t sequence) const = 0;

    /** Mean run length R (for analytical comparison). */
    virtual double meanRunLength() const = 0;

    /** Mean latency L (for analytical comparison). */
    virtual double meanLatency() const = 0;

    /** Human-readable description. */
    virtual std::string describe() const = 0;
};

/** Geometric run lengths, constant latency. */
class CacheFaultModel : public FaultModel
{
  public:
    CacheFaultModel(double mean_run, uint64_t latency);

    FaultSample next(Rng &rng, uint64_t sequence) const override;
    double meanRunLength() const override;
    double meanLatency() const override;
    std::string describe() const override;

  private:
    GeometricDist run_;
    uint64_t latency_;
};

/** Geometric run lengths, exponential latency. */
class SyncFaultModel : public FaultModel
{
  public:
    SyncFaultModel(double mean_run, double mean_latency);

    FaultSample next(Rng &rng, uint64_t sequence) const override;
    double meanRunLength() const override;
    double meanLatency() const override;
    std::string describe() const override;

  private:
    GeometricDist run_;
    ExponentialDist latency_;
};

/**
 * Two independent processes (cache + synchronization); each draw
 * races a geometric cache-fault run against a geometric sync-fault
 * run and the earlier one fires with its own latency distribution.
 */
class CombinedFaultModel : public FaultModel
{
  public:
    CombinedFaultModel(double cache_run, uint64_t cache_latency,
                       double sync_run, double sync_latency);

    FaultSample next(Rng &rng, uint64_t sequence) const override;
    double meanRunLength() const override;
    double meanLatency() const override;
    std::string describe() const override;

  private:
    GeometricDist cacheRun_;
    uint64_t cacheLatency_;
    GeometricDist syncRun_;
    ExponentialDist syncLatency_;
};

/**
 * A phase-structured workload: threads cycle through phases with
 * different fault behaviour (e.g. a compute phase with long run
 * lengths and rare cache misses followed by a communication phase
 * with short runs and synchronization waits) — the shape of real
 * parallel applications, beyond the paper's single-regime synthetic
 * threads.
 */
class PhasedFaultModel : public FaultModel
{
  public:
    /** One phase of the repeating schedule. */
    struct Phase
    {
        uint64_t faults = 1;      ///< faults spent in this phase
        double meanRun = 32.0;    ///< geometric run-length mean
        double meanLatency = 100.0; ///< latency mean
        bool exponentialLatency = false; ///< else constant
        FaultClass kind = FaultClass::Cache;
    };

    /** @param phases repeating schedule; must be nonempty. */
    explicit PhasedFaultModel(std::vector<Phase> phases);

    /** The phase governing the @p sequence-th fault. */
    const Phase &phaseFor(uint64_t sequence) const;

    FaultSample next(Rng &rng, uint64_t sequence) const override;
    double meanRunLength() const override;
    double meanLatency() const override;
    std::string describe() const override;

  private:
    std::vector<Phase> phases_;
    uint64_t cycleLength_ = 0; ///< total faults per schedule cycle
};

/**
 * Deterministic model (constant run length and latency) used to
 * validate the simulator against the closed-form efficiency
 * equations of Section 3.4.
 */
class DeterministicFaultModel : public FaultModel
{
  public:
    DeterministicFaultModel(uint64_t run, uint64_t latency);

    FaultSample next(Rng &rng, uint64_t sequence) const override;
    double meanRunLength() const override;
    double meanLatency() const override;
    std::string describe() const override;

  private:
    uint64_t run_;
    uint64_t latency_;
};

} // namespace rr::mt

#endif // RR_MULTITHREAD_FAULT_MODEL_HH
