#include "multithread/workload.hh"

#include <algorithm>


namespace rr::mt {

WorkloadSpec
paperWorkload(unsigned num_threads, uint64_t work_per_thread,
              unsigned c_lo, unsigned c_hi)
{
    WorkloadSpec spec;
    spec.numThreads = num_threads;
    spec.workDist = makeConstant(work_per_thread);
    spec.regsDist = makeUniformInt(c_lo, c_hi);
    return spec;
}

WorkloadSpec
homogeneousWorkload(unsigned num_threads, uint64_t work_per_thread,
                    unsigned c)
{
    WorkloadSpec spec;
    spec.numThreads = num_threads;
    spec.workDist = makeConstant(work_per_thread);
    spec.regsDist = makeConstant(c);
    return spec;
}

uint64_t
defaultWorkPerThread(double mean_run)
{
    // At least ~250 faults per thread, with a floor so short-run
    // workloads still dominate the fixed transients.
    return std::max<uint64_t>(20000,
                              static_cast<uint64_t>(mean_run * 250.0));
}

} // namespace rr::mt
