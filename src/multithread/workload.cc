#include "multithread/workload.hh"

#include <algorithm>

namespace rr::mt {

WorkloadSpec
paperWorkload(unsigned num_threads, uint64_t work_per_thread,
              unsigned c_lo, unsigned c_hi)
{
    WorkloadSpec spec;
    spec.numThreads = num_threads;
    spec.workDist = makeConstant(work_per_thread);
    spec.regsDist = makeUniformInt(c_lo, c_hi);
    return spec;
}

WorkloadSpec
homogeneousWorkload(unsigned num_threads, uint64_t work_per_thread,
                    unsigned c)
{
    WorkloadSpec spec;
    spec.numThreads = num_threads;
    spec.workDist = makeConstant(work_per_thread);
    spec.regsDist = makeConstant(c);
    return spec;
}

uint64_t
defaultWorkPerThread(double mean_run)
{
    // At least ~250 faults per thread, with a floor so short-run
    // workloads still dominate the fixed transients.
    return std::max<uint64_t>(20000,
                              static_cast<uint64_t>(mean_run * 250.0));
}

MtConfig
fig5Config(ArchKind arch, unsigned num_regs, double mean_run,
           uint64_t latency, uint64_t seed)
{
    MtConfig config;
    config.workload = paperWorkload(defaultThreadCount,
                                    defaultWorkPerThread(mean_run));
    config.faultModel =
        std::make_shared<CacheFaultModel>(mean_run, latency);
    config.costs = arch == ArchKind::FixedHw
                       ? runtime::CostModel::paperFixed(6)
                       : runtime::CostModel::paperFlexible(6);
    config.arch = arch;
    config.numRegs = num_regs;
    config.unloadPolicy = UnloadPolicyKind::Never;
    config.seed = seed;
    return config;
}

MtConfig
fig6Config(ArchKind arch, unsigned num_regs, double mean_run,
           double mean_latency, uint64_t seed)
{
    MtConfig config;
    config.workload = paperWorkload(defaultThreadCount,
                                    defaultWorkPerThread(mean_run));
    config.faultModel =
        std::make_shared<SyncFaultModel>(mean_run, mean_latency);
    config.costs = arch == ArchKind::FixedHw
                       ? runtime::CostModel::paperFixed(8)
                       : runtime::CostModel::paperFlexible(8);
    config.arch = arch;
    config.numRegs = num_regs;
    config.unloadPolicy = UnloadPolicyKind::TwoPhase;
    config.seed = seed;
    return config;
}

MtConfig
combinedConfig(ArchKind arch, unsigned num_regs, double cache_run,
               uint64_t cache_latency, double sync_run,
               double sync_latency, uint64_t seed)
{
    MtConfig config;
    const double combined_run =
        1.0 / (1.0 / cache_run + 1.0 / sync_run);
    config.workload = paperWorkload(
        defaultThreadCount, defaultWorkPerThread(combined_run));
    config.faultModel = std::make_shared<CombinedFaultModel>(
        cache_run, cache_latency, sync_run, sync_latency);
    config.costs = arch == ArchKind::FixedHw
                       ? runtime::CostModel::paperFixed(8)
                       : runtime::CostModel::paperFlexible(8);
    config.arch = arch;
    config.numRegs = num_regs;
    config.unloadPolicy = UnloadPolicyKind::TwoPhase;
    config.seed = seed;
    return config;
}

MtConfig
deterministicConfig(ArchKind arch, unsigned num_regs, uint64_t run,
                    uint64_t latency, unsigned num_threads,
                    unsigned regs_used, uint64_t seed)
{
    MtConfig config;
    config.workload = homogeneousWorkload(
        num_threads, defaultWorkPerThread(static_cast<double>(run)),
        regs_used);
    config.faultModel =
        std::make_shared<DeterministicFaultModel>(run, latency);
    config.costs = arch == ArchKind::FixedHw
                       ? runtime::CostModel::paperFixed(6)
                       : runtime::CostModel::paperFlexible(6);
    config.arch = arch;
    config.numRegs = num_regs;
    config.unloadPolicy = UnloadPolicyKind::Never;
    config.seed = seed;
    return config;
}

} // namespace rr::mt
